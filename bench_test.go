// Benchmark harness regenerating every figure and demonstration
// scenario of the paper (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for paper-vs-measured). The paper is a demo paper
// with no quantitative tables; the benches therefore measure the
// system behaviours the demo shows on stage: elicitation suggestion
// latency, requirement interpretation, incremental integration,
// deployment artifact generation, and the headline claim — reduced
// overall execution effort for integrated ETL processes.
package quarry_test

import (
	"fmt"
	"testing"

	"quarry"
	"quarry/internal/elicitor"
	"quarry/internal/engine"
	"quarry/internal/etlintegrator"
	"quarry/internal/expr"
	"quarry/internal/interpreter"
	"quarry/internal/mdintegrator"
	"quarry/internal/olap"
	"quarry/internal/ontology"
	"quarry/internal/pdi"
	"quarry/internal/quality"
	"quarry/internal/repo"
	"quarry/internal/sqlgen"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
	"quarry/internal/xmljson"
	"quarry/internal/xrq"
)

// xrqMeasure aliases the xRQ measure type for the workload builders.
type xrqMeasure = xrq.Measure

// tpchInterp builds the shared interpreter fixture.
func tpchInterp(b *testing.B, sf float64) (*interpreter.Interpreter, *quality.ExecutionTimeModel) {
	b.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		b.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		b.Fatal(err)
	}
	c, err := tpch.Catalog(sf)
	if err != nil {
		b.Fatal(err)
	}
	in, err := interpreter.New(o, m, c)
	if err != nil {
		b.Fatal(err)
	}
	return in, quality.DefaultETLCost(c)
}

// BenchmarkFig1_EndToEndLifecycle runs the full Figure 1 pipeline:
// four requirements through interpretation, MD+ETL integration,
// validation and deployment artifact generation.
func BenchmarkFig1_EndToEndLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, _, err := quarry.NewTPCHPlatform(1, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range quarry.CanonicalRequirements() {
			if _, err := p.AddRequirement(r); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.Deploy("demo"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_ElicitorSuggestions measures the Requirements
// Elicitor's perspective suggestion over ontologies of growing size
// (the TPC-H ontology plus synthetic chains around it).
func BenchmarkFig2_ElicitorSuggestions(b *testing.B) {
	for _, extra := range []int{0, 32, 128, 512} {
		b.Run(fmt.Sprintf("concepts=%d", 8+extra), func(b *testing.B) {
			o, err := tpch.Ontology()
			if err != nil {
				b.Fatal(err)
			}
			m, err := tpch.Mapping()
			if err != nil {
				b.Fatal(err)
			}
			// Grow the ontology: chains of to-one hops hanging off
			// Part (unmapped concepts are skipped by suggestion, so
			// they only exercise graph traversal).
			prev := "Part"
			for i := 0; i < extra; i++ {
				id := fmt.Sprintf("Synth%04d", i)
				o.AddConcept(id, "")
				o.AddProperty(id, "name", "string", "")
				o.AddObjectProperty(fmt.Sprintf("synth_%04d", i), "", prev, id, ontology.ManyToOne)
				if i%8 != 7 {
					prev = id
				} else {
					prev = "Part" // branch
				}
			}
			e := elicitor.New(o, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Suggest("Lineitem"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3_IntegrationAndDeployment measures the Figure 3 step:
// integrating the net-profit partial design into the revenue design
// (MD + ETL) and generating the deployment artifacts.
func BenchmarkFig3_IntegrationAndDeployment(b *testing.B) {
	in, cost := tpchInterp(b, 10)
	pd1, err := in.Interpret(tpch.RevenueRequirement())
	if err != nil {
		b.Fatal(err)
	}
	pd2, err := in.Interpret(tpch.NetProfitRequirement())
	if err != nil {
		b.Fatal(err)
	}
	mdInt := mdintegrator.New(nil, nil)
	etlInt := etlintegrator.New(cost, true)
	b.ResetTimer()
	var lastReuse float64
	for i := 0; i < b.N; i++ {
		md, _, err := mdInt.Integrate(nil, pd1.MD)
		if err != nil {
			b.Fatal(err)
		}
		if md, _, err = mdInt.Integrate(md, pd2.MD); err != nil {
			b.Fatal(err)
		}
		etl, _, err := etlInt.Integrate(nil, pd1.ETL)
		if err != nil {
			b.Fatal(err)
		}
		etl, rep, err := etlInt.Integrate(etl, pd2.ETL)
		if err != nil {
			b.Fatal(err)
		}
		lastReuse = rep.ReuseRatio()
		if _, err := quarryDeployArtifacts(md, etl); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastReuse, "reuse_ratio")
}

// quarryDeployArtifacts mirrors core.Deploy without a platform.
func quarryDeployArtifacts(md *xmd.Schema, etl *xlm.Design) (int, error) {
	ddl, err := sqlgen.DDL("demo", etl)
	if err != nil {
		return 0, err
	}
	ktr, err := pdi.Marshal(etl, "demo")
	if err != nil {
		return 0, err
	}
	_ = md
	return len(ddl) + len(ktr), nil
}

// BenchmarkFig4_RequirementInterpretation measures xRQ → (xMD, xLM)
// translation for the Figure 4 revenue requirement.
func BenchmarkFig4_RequirementInterpretation(b *testing.B) {
	in, _ := tpchInterp(b, 10)
	r := tpch.RevenueRequirement()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Interpret(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioA_AssistedDesign measures the non-expert path:
// focus ranking, suggestion, guided requirement assembly, and
// interpretation.
func BenchmarkScenarioA_AssistedDesign(b *testing.B) {
	in, _ := tpchInterp(b, 1)
	o, _ := tpch.Ontology()
	m, _ := tpch.Mapping()
	e := elicitor.New(o, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		foci := e.SuggestFoci()
		sg, err := e.Suggest(foci[0].Concept)
		if err != nil {
			b.Fatal(err)
		}
		r, err := e.NewRequirement(fmt.Sprintf("IR_a_%d", i), "assisted").
			AddMeasure("quantity", "Lineitem.l_quantity").
			AddDimension(sg.Dimensions[0].Attributes[0]).
			Build()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.Interpret(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioB_IncrementalVsRedesign compares accommodating the
// N-th requirement incrementally against redesigning from scratch —
// the efficiency argument of the evolution scenario.
func BenchmarkScenarioB_IncrementalVsRedesign(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		in, cost := tpchInterp(b, 1)
		reqs := tpch.GenerateRequirements(n + 1)
		partials := make([]*interpreter.PartialDesign, 0, n+1)
		for _, r := range reqs {
			pd, err := in.Interpret(r)
			if err != nil {
				b.Fatal(err)
			}
			partials = append(partials, pd)
		}
		mdInt := mdintegrator.New(nil, nil)
		etlInt := etlintegrator.New(cost, true)
		// Pre-build the unified design over the first n requirements.
		var baseMD *xmd.Schema
		var baseETL *xlm.Design
		for _, pd := range partials[:n] {
			var err error
			baseMD, _, err = mdInt.Integrate(baseMD, pd.MD)
			if err != nil {
				b.Fatal(err)
			}
			baseETL, _, err = etlInt.Integrate(baseETL, pd.ETL)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := mdInt.Integrate(baseMD, partials[n].MD); err != nil {
					b.Fatal(err)
				}
				if _, _, err := etlInt.Integrate(baseETL, partials[n].ETL); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("redesign/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var md *xmd.Schema
				var etl *xlm.Design
				for _, pd := range partials[:n+1] {
					var err error
					md, _, err = mdInt.Integrate(md, pd.MD)
					if err != nil {
						b.Fatal(err)
					}
					etl, _, err = etlInt.Integrate(etl, pd.ETL)
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// relatedRequirements is a family of Lineitem-based reports sharing
// dimensions and slicer but differing in measures — the "many related
// reports over the same subject" workload where ETL integration pays
// off most (the flows share the whole extraction + join + selection
// prefix).
func relatedRequirements() []*quarry.Requirement {
	base := tpch.RevenueRequirement()
	mk := func(id, measure, formula string) *quarry.Requirement {
		r := base.Clone()
		r.ID = id
		r.Measures = []xrqMeasure{{ID: measure, Function: formula}}
		r.Aggs = nil
		return r
	}
	return []*quarry.Requirement{
		base,
		mk("IR_quantity", "quantity", "Lineitem.l_quantity"),
		mk("IR_charged", "charged", "Lineitem.l_extendedprice * (1 + Lineitem.l_tax)"),
		mk("IR_discounted", "discounted", "Lineitem.l_extendedprice * Lineitem.l_discount"),
	}
}

// BenchmarkScenarioB_IntegratedETLExecution measures the headline
// demo claim: the integrated ETL flow does less total work (and runs
// faster) than executing each requirement's flow separately. Sweeps
// scale factor and workload shape; reports the work-reduction ratio.
func BenchmarkScenarioB_IntegratedETLExecution(b *testing.B) {
	workloads := []struct {
		name string
		reqs []*quarry.Requirement
	}{
		{"diverse", []*quarry.Requirement{tpch.RevenueRequirement(), tpch.NetProfitRequirement()}},
		{"related", relatedRequirements()},
	}
	for _, wl := range workloads {
		for _, sf := range []float64{5, 20, 50} {
			in, cost := tpchInterp(b, sf)
			var partials []*interpreter.PartialDesign
			etlInt := etlintegrator.New(cost, true)
			var unified *xlm.Design
			for _, r := range wl.reqs {
				pd, err := in.Interpret(r)
				if err != nil {
					b.Fatal(err)
				}
				partials = append(partials, pd)
				unified, _, err = etlInt.Integrate(unified, pd.ETL)
				if err != nil {
					b.Fatal(err)
				}
			}
			db := storage.NewDB()
			if _, err := tpch.Generate(db, sf, 42); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/sf=%v", wl.name, sf), func(b *testing.B) {
				var ratio float64
				for i := 0; i < b.N; i++ {
					res, err := engine.Run(unified, db)
					if err != nil {
						b.Fatal(err)
					}
					var sep int64
					for _, pd := range partials {
						r, err := engine.Run(pd.ETL, db)
						if err != nil {
							b.Fatal(err)
						}
						sep += r.RowsProcessed()
					}
					ratio = float64(sep) / float64(res.RowsProcessed())
				}
				b.ReportMetric(ratio, "work_reduction_x")
			})
		}
	}
}

// BenchmarkScenarioC_Deployment measures Design Deployer artifact
// generation (PostgreSQL DDL + PDI .ktr + star queries).
func BenchmarkScenarioC_Deployment(b *testing.B) {
	p, _, err := quarry.NewTPCHPlatform(1, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range []*quarry.Requirement{quarry.RevenueRequirement(), quarry.NetProfitRequirement()} {
		if _, err := p.AddRequirement(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Deploy("demo"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ETLReordering quantifies the equivalence-rule
// reordering of the ETL integrator: reuse with and without it when
// the incoming flow orders operations differently.
func BenchmarkAblation_ETLReordering(b *testing.B) {
	mk := func(selFirst bool, name string) *xlm.Design {
		d := xlm.NewDesign(name)
		d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
			Fields: []xlm.Field{{Name: "a", Type: "int"}, {Name: "b", Type: "float"}, {Name: "g", Type: "string"}},
			Params: map[string]string{"store": "s", "table": "t"}})
		fn := &xlm.Node{Name: "F", Type: xlm.OpFunction, Params: map[string]string{"name": "f", "expr": "b * 2"}}
		sel := &xlm.Node{Name: "SEL", Type: xlm.OpSelection, Params: map[string]string{"predicate": "g = 'x'"}}
		first, second := fn, sel
		if selFirst {
			first, second = sel, fn
		}
		d.AddNode(first)
		d.AddNode(second)
		d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "out_" + name}})
		d.AddEdge("DS", first.Name)
		d.AddEdge(first.Name, second.Name)
		d.AddEdge(second.Name, "LOAD")
		return d
	}
	for _, reorder := range []bool{true, false} {
		b.Run(fmt.Sprintf("reorder=%v", reorder), func(b *testing.B) {
			it := etlintegrator.New(nil, reorder)
			var reuse float64
			for i := 0; i < b.N; i++ {
				u, _, err := it.Integrate(nil, mk(false, "u"))
				if err != nil {
					b.Fatal(err)
				}
				_, rep, err := it.Integrate(u, mk(true, "p"))
				if err != nil {
					b.Fatal(err)
				}
				reuse = rep.ReuseRatio()
			}
			b.ReportMetric(reuse, "reuse_ratio")
		})
	}
}

// BenchmarkAblation_MDCostModel compares cost-guided MD integration
// against the naive side-by-side union over a growing requirement
// set; reports the final structural complexity of each.
func BenchmarkAblation_MDCostModel(b *testing.B) {
	in, _ := tpchInterp(b, 1)
	reqs := tpch.GenerateRequirements(12)
	var partials []*xmd.Schema
	for _, r := range reqs {
		pd, err := in.Interpret(r)
		if err != nil {
			b.Fatal(err)
		}
		partials = append(partials, pd.MD)
	}
	cost := quality.DefaultMDCost()
	for _, guided := range []bool{true, false} {
		b.Run(fmt.Sprintf("cost_guided=%v", guided), func(b *testing.B) {
			it := mdintegrator.New(cost, nil)
			var complexity float64
			for i := 0; i < b.N; i++ {
				var u *xmd.Schema
				var err error
				for _, p := range partials {
					if guided {
						u, _, err = it.Integrate(u, p)
					} else {
						u, err = it.IntegrateNaive(u, p)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				complexity = cost.Complexity(u)
			}
			b.ReportMetric(complexity, "structural_complexity")
		})
	}
}

// BenchmarkAblation_OLAPFromDWvsSources quantifies the paper's §1
// motivation for the DW: answering an analytical question (total
// revenue per nation) from the pre-aggregated, ETL-maintained fact
// table versus recomputing it from the raw sources on every ask.
func BenchmarkAblation_OLAPFromDWvsSources(b *testing.B) {
	for _, sf := range []float64{10, 50} {
		p, db, err := quarry.NewTPCHPlatform(sf, 42)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.AddRequirement(quarry.RevenueRequirement()); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			b.Fatal(err)
		}
		oe, err := p.OLAP()
		if err != nil {
			b.Fatal(err)
		}
		q := olap.CubeQuery{
			Fact:     "fact_table_revenue",
			GroupBy:  []string{"n_name"},
			Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
		}
		rev, ok := p.Partial("IR_revenue")
		if !ok {
			b.Fatal("partial missing")
		}
		b.Run(fmt.Sprintf("from_dw/sf=%v", sf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := oe.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("from_sources/sf=%v", sf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Recomputation = re-running the requirement's full
				// ETL flow against the raw sources.
				if _, err := engine.Run(rev.ETL, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MetadataLayer measures the Communication &
// Metadata layer: XML↔JSON conversion and repository save/load of a
// unified ETL design of realistic size.
func BenchmarkAblation_MetadataLayer(b *testing.B) {
	in, cost := tpchInterp(b, 1)
	etlInt := etlintegrator.New(cost, true)
	var unified *xlm.Design
	for _, r := range tpch.CanonicalRequirements() {
		pd, err := in.Interpret(r)
		if err != nil {
			b.Fatal(err)
		}
		unified, _, err = etlInt.Integrate(unified, pd.ETL)
		if err != nil {
			b.Fatal(err)
		}
	}
	text, err := xlm.Marshal(unified)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("xml_json_roundtrip", func(b *testing.B) {
		b.SetBytes(int64(len(text)))
		for i := 0; i < b.N; i++ {
			doc, err := xmljson.DecodeString(text)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := xmljson.EncodeString(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("repository_save_load", func(b *testing.B) {
		store, err := repo.Open("")
		if err != nil {
			b.Fatal(err)
		}
		designs := repo.NewDesigns(store)
		for i := 0; i < b.N; i++ {
			if err := designs.SaveETL("unified", unified); err != nil {
				b.Fatal(err)
			}
			if _, err := designs.ETL("unified"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchOLAPEngine builds a deployed TPC-H warehouse at SF 5 (the
// ISSUE 2 benchmark setting) and returns its OLAP engine.
func benchOLAPEngine(b *testing.B) *olap.Engine {
	b.Helper()
	p, _, err := quarry.NewTPCHPlatform(5, 42)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.AddRequirement(quarry.RevenueRequirement()); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		b.Fatal(err)
	}
	oe, err := p.OLAP()
	if err != nil {
		b.Fatal(err)
	}
	return oe
}

// benchCubeQuery is the serving benchmark's workload: a two-dimension
// star join with two aggregates at the Nation roll-up level.
func benchCubeQuery() olap.CubeQuery {
	return olap.CubeQuery{
		Fact:    "fact_table_revenue",
		GroupBy: []string{"p_brand"},
		RollUp:  map[string]string{"Supplier": "Nation"},
		Measures: []olap.MeasureSpec{
			{Out: "total", Func: "SUM", Col: "revenue"},
			{Out: "n", Func: "COUNT", Col: ""},
		},
	}
}

// BenchmarkOLAPQuery_StarFlow measures the star-flow oracle: the cube
// query compiled to a throwaway xLM flow and executed by the full
// engine in a scratch database.
func BenchmarkOLAPQuery_StarFlow(b *testing.B) {
	oe := benchOLAPEngine(b)
	q := benchCubeQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oe.QueryStarFlow(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOLAPQuery_FastPath measures the vectorized serving path:
// hash joins and aggregation planned directly over snapshot cursors,
// no design construction, no warehouse writes.
func BenchmarkOLAPQuery_FastPath(b *testing.B) {
	oe := benchOLAPEngine(b)
	q := benchCubeQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oe.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDiskWarehouse builds the SF 5 disk-backed deployed warehouse
// the disk serving benchmarks share.
func benchDiskWarehouse(b *testing.B) (*quarry.Platform, *quarry.DB) {
	b.Helper()
	db, err := quarry.OpenDB(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tpch.Generate(db, 5, 42); err != nil {
		b.Fatal(err)
	}
	onto, _ := tpch.Ontology()
	mapg, _ := tpch.Mapping()
	cat, _ := tpch.Catalog(5)
	p, err := quarry.New(quarry.Config{Ontology: onto, Mapping: mapg, Catalog: cat, DB: db})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.AddRequirement(quarry.RevenueRequirement()); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		b.Fatal(err)
	}
	return p, db
}

// BenchmarkOLAPQuery_FastPath_Disk is the fast-path serving benchmark
// over a disk-backed warehouse: the star join streams the fact table
// through paged snapshot cursors (decoded pages served from the
// buffer pool after the first touch) instead of resident row slices.
// Gated in CI against BENCH_baseline.json.
func BenchmarkOLAPQuery_FastPath_Disk(b *testing.B) {
	p, _ := benchDiskWarehouse(b)
	oe, err := p.OLAP()
	if err != nil {
		b.Fatal(err)
	}
	q := benchCubeQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oe.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiskFootprint_SF5 measures the on-disk size of the
// complete SF 5 warehouse (sources + deployed star schema) under the
// format-2 encodings, and reports it against the raw baseline
// (TestingForceRaw): disk_bytes_sf5, disk_raw_bytes_sf5 and the
// resulting compression_ratio (the ISSUE 6 acceptance floor is 0.30).
func BenchmarkDiskFootprint_SF5(b *testing.B) {
	size := func() int64 {
		_, db := benchDiskWarehouse(b)
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		var total int64
		for _, st := range db.DiskStats() {
			total += st.Bytes
		}
		return total
	}
	var encoded int64
	for i := 0; i < b.N; i++ {
		encoded = size()
	}
	b.StopTimer()
	storage.TestingForceRaw = true
	raw := size()
	storage.TestingForceRaw = false
	b.ReportMetric(float64(encoded), "disk_bytes_sf5")
	b.ReportMetric(float64(raw), "disk_raw_bytes_sf5")
	b.ReportMetric(1-float64(encoded)/float64(raw), "compression_ratio")
}

// benchEventsEngine deploys a synthetic clustered fact — 400k events
// whose day column arrives in ascending order, the natural shape of
// any time-partitioned append stream — on a disk store, with a
// minimal hand-built design so the OLAP engine can serve it. The
// TPC-H revenue fact is too small and unclustered to show page
// pruning; this one gives zone maps real teeth (each 64 KiB raw page
// spans a handful of days).
func benchEventsEngine(b *testing.B) *olap.Engine {
	b.Helper()
	db, err := quarry.OpenDB(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cols := []storage.Column{
		{Name: "day", Type: "int"},
		{Name: "bucket", Type: "string"},
		{Name: "v", Type: "float"},
	}
	tbl, err := db.CreateTable("events", cols)
	if err != nil {
		b.Fatal(err)
	}
	const n, perDay = 400_000, 2000
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			expr.Int(int64(i / perDay)),
			expr.Str(fmt.Sprintf("b%02d", i%16)),
			expr.Float(float64(i%997) * 1.5),
		}
	}
	if err := tbl.InsertAll(rows); err != nil {
		b.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	d := xlm.NewDesign("evbench")
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "day", Type: "int"}, {Name: "bucket", Type: "string"}, {Name: "v", Type: "float"}},
		Params: map[string]string{"store": "events_src", "table": "events_src"}})
	d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "events"}})
	d.AddEdge("DS", "LOAD")
	oe, err := olap.New(&xmd.Schema{Name: "evbench"}, d, db)
	if err != nil {
		b.Fatal(err)
	}
	return oe
}

// BenchmarkOLAPQuery_FastPath_Disk_Filtered measures what zone maps
// buy a selective filtered aggregation over the clustered events
// fact: the day >= 195 predicate (2.5% of rows) is pushed into the
// fact cursor, which skips every page whose day range falls below the
// cut. The zonemap=off leg runs the identical query with pruning
// disabled — the delta is pure page-skip win.
func BenchmarkOLAPQuery_FastPath_Disk_Filtered(b *testing.B) {
	oe := benchEventsEngine(b)
	q := olap.CubeQuery{
		Fact:     "events",
		GroupBy:  []string{"bucket"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "v"}},
		Filter:   "day >= 195",
	}
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("zonemap=%v", on), func(b *testing.B) {
			prev := storage.SetZoneMapPruning(on)
			defer storage.SetZoneMapPruning(prev)
			if _, err := oe.Query(q); err != nil { // warm the buffer pool
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := oe.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOLAPQuery_Materialized measures the materialized-aggregate
// path: the store is trained on the serving workload and refreshed
// once, then every query is rewritten onto its aggregate (a
// projection over ~tens of rows instead of a star join over the fact
// table). The acceptance bar is ≥2× over BenchmarkOLAPQuery_FastPath
// for covered roll-ups.
func BenchmarkOLAPQuery_Materialized(b *testing.B) {
	oe := benchOLAPEngine(b).WithMatAgg(olap.NewMatAgg(8))
	q := benchCubeQuery()
	if _, err := oe.Query(q); err != nil { // record the pattern
		b.Fatal(err)
	}
	if _, err := oe.MatAgg().Refresh(oe); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oe.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := oe.MatAgg().Stats(); st.Hits+st.Rewrites == 0 {
		b.Fatalf("benchmark never hit a materialized aggregate: %+v", st)
	}
}

// BenchmarkOLAPDice measures the diamond-dicing fixpoint (incremental
// worklist algorithm) on top of the fast path.
func BenchmarkOLAPDice(b *testing.B) {
	oe := benchOLAPEngine(b)
	q := benchCubeQuery()
	q.Dice = &olap.DiceSpec{Func: "COUNT", Thresholds: map[string]float64{"p_brand": 3, "n_name": 5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oe.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
