#!/usr/bin/env bash
# Load smoke: boot a real quarryd, deploy the revenue requirement,
# then drive it with quarrybench — open-loop traffic with reload
# churn and oracle spot checks — and hold the run to zero errors and
# at least one materialized-aggregate hit. This is the leg that
# proves the serving layer stays correct AND observable under
# sustained concurrent load with the warehouse republishing
# underneath it; the unit/e2e tests cover the same parts one request
# at a time.
#
# CI runs this as-is; locally plain `./ci/load_smoke.sh` works too
# (tunables: SF, QPS, DURATION, OUT). Only bash + curl + go.
set -euo pipefail

SF="${SF:-1}"
QPS="${QPS:-50}"
DURATION="${DURATION:-10s}"
OUT="${OUT:-BENCH_load_local.json}"
PORT=18070

BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

log() { echo "load-smoke: $*" >&2; }
die() {
    log "FAIL: $*"
    exit 1
}

wait_until() {
    local desc=$1 url=$2 want=$3 body=""
    for _ in $(seq 1 120); do
        body="$(curl -fsS -m 2 "$url" 2>/dev/null || true)"
        if grep -q "$want" <<<"$body"; then return 0; fi
        sleep 0.5
    done
    die "$desc: $url never matched '$want' (last body: $body)"
}

log "building binaries (GOFLAGS=${GOFLAGS:-})"
go build -o "$BIN" ./cmd/quarryd ./cmd/quarry ./cmd/quarrybench

log "starting quarryd (sf=$SF, matagg on, data dir $WORK/primary)"
"$BIN/quarryd" -addr ":$PORT" -sf "$SF" -data-dir "$WORK/primary" -matagg &
PIDS+=($!)
wait_until "quarryd up" "http://localhost:$PORT/api/health" '"role":"primary"'

log "registering the revenue requirement and running ETL"
"$BIN/quarry" xrq -name revenue |
    curl -fsS -X POST --data-binary @- "http://localhost:$PORT/api/requirements" >/dev/null
curl -fsS -X POST "http://localhost:$PORT/api/run" >/dev/null

# Reload churn every 3s purges the version-keyed result cache, so
# repeated queries cannot hide behind it — the matagg hit floor below
# is only reachable if the aggregate store itself serves traffic.
# -max-error-rate 0 fails the job on ANY non-2xx answer, and
# quarrybench exits non-zero by itself if an oracle spot check ever
# diverges from the reference executor.
log "driving load: $QPS qps for $DURATION with reload churn"
"$BIN/quarrybench" \
    -target "http://localhost:$PORT" \
    -qps "$QPS" -duration "$DURATION" \
    -reload-interval 3s -oracle-every 10 \
    -max-error-rate 0 -min-matagg-hits 1 \
    -out "$OUT" || die "quarrybench gate tripped"

log "PASS (artifact: $OUT)"
