#!/usr/bin/env bash
# Overload smoke: boot a real quarryd with a deliberately tiny
# executor pool and an SLO target, then drive it far past capacity
# with quarrybench and prove GRACEFUL degradation end to end:
#
#   - the server sheds (429 + Retry-After) instead of queueing without
#     bound — the run must contain sheds (-min-shed) or the server
#     never actually defended its SLO;
#   - nothing breaks: zero non-shed errors (-max-error-rate 0) and
#     zero oracle mismatches (quarrybench exits non-zero on any), so
#     the answers served DURING overload are still byte-correct;
#   - admitted latency stays bounded: the p99 of answered requests
#     stays at the SLO's scale (-max-p99) even though offered load is
#     ~3x capacity — without admission the queue (and with it the
#     tail) grows for the whole run and ends tens of seconds deep;
#   - the books balance exactly: server counter deltas must satisfy
#     queries = answered + shed + query_errors and agree with the
#     client's own 429 count (-expect-reconcile).
#
# The result cache is disabled so every request costs real executor
# time; cache-hit fast-pathing under overload is covered by the unit
# tests (hits bypass admission entirely).
#
# CI runs this as-is; locally plain `./ci/overload_smoke.sh` works too
# (tunables: SF, QPS, DURATION, SLO, OUT). Only bash + curl + go.
set -euo pipefail

SF="${SF:-1000}"
QPS="${QPS:-300}"
DURATION="${DURATION:-10s}"
SLO="${SLO:-250ms}"
# The p99 gate is deliberately loose relative to the SLO because CI
# runners can be single-core: the server, the open-loop client, and
# the GC share one CPU there, and contended service times swing ~4x
# around the per-class mean the admission controller projects with
# (observed tails on a 1-core box: 0.4-3.2s). The property this
# proves is still sharp: at ~3x capacity the admitted tail stays
# BOUNDED at the low seconds for the whole run, where an unprotected
# queue would end tens of seconds deep and every request would blow
# the client timeout — which the zero-error gate would also catch.
MAX_P99="${MAX_P99:-4s}"
OUT="${OUT:-BENCH_overload_local.json}"
PORT=18075

BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

log() { echo "overload-smoke: $*" >&2; }
die() {
    log "FAIL: $*"
    exit 1
}

wait_until() {
    local desc=$1 url=$2 want=$3 body=""
    for _ in $(seq 1 120); do
        body="$(curl -fsS -m 2 "$url" 2>/dev/null || true)"
        if grep -q "$want" <<<"$body"; then return 0; fi
        sleep 0.5
    done
    die "$desc: $url never matched '$want' (last body: $body)"
}

log "building binaries (GOFLAGS=${GOFLAGS:-})"
go build -o "$BIN" ./cmd/quarryd ./cmd/quarry ./cmd/quarrybench

# Two executor slots + no result cache = a small, known capacity the
# offered load can dependably exceed; -default-deadline (kept under
# quarrybench's 10s client timeout, far over the admitted tail)
# backstops any query the admission projection underestimates.
log "starting quarryd (sf=$SF, 2 executor slots, slo $SLO, cache off)"
"$BIN/quarryd" -addr ":$PORT" -sf "$SF" -data-dir "$WORK/primary" \
    -olap-concurrency 2 -olap-cache -1 -matagg=false \
    -slo-target "$SLO" -shed-policy expensive-first -default-deadline 8s &
PIDS+=($!)
wait_until "quarryd up" "http://localhost:$PORT/api/health" '"role":"primary"'

log "registering the revenue requirement and running ETL"
"$BIN/quarry" xrq -name revenue |
    curl -fsS -X POST --data-binary @- "http://localhost:$PORT/api/requirements" >/dev/null
curl -fsS -X POST "http://localhost:$PORT/api/run" >/dev/null

# Warm the admission controller's per-class cost model before the
# gated run. The EWMA priors are deliberately cheap (they describe a
# tiny warehouse); at this SF real queries cost ~40x more, so a cold
# controller over-admits for the first second and that one-time queue
# drains for seconds — exactly the latency cliff admission exists to
# prevent in steady state. A short ungated burst converges the
# estimates, the same way an operator would soak a node before
# pointing SLO-gated traffic at it.
log "warming the admission cost model (ungated ${WARMUP:-3s} burst)"
"$BIN/quarrybench" -target "http://localhost:$PORT" \
    -qps "$QPS" -duration "${WARMUP:-3s}" -oracle-every 3 >/dev/null 2>&1 || true
sleep 1 # let warmup stragglers settle so the gated run's counter deltas reconcile

log "driving overload: $QPS qps for $DURATION (oracle every 3rd request)"
"$BIN/quarrybench" \
    -target "http://localhost:$PORT" \
    -qps "$QPS" -duration "$DURATION" \
    -oracle-every 3 \
    -max-error-rate 0 -min-shed 1 -max-p99 "$MAX_P99" -expect-reconcile \
    -out "$OUT" || die "quarrybench gate tripped"

# Belt and braces on top of quarrybench's own gates: the health
# endpoint must report the shed counter the run produced, and goodput
# must be real (the server answered under overload, not just refused).
HEALTH="$(curl -fsS "http://localhost:$PORT/api/health")"
grep -q '"shed"' <<<"$HEALTH" || die "/api/health does not expose the shed counter: $HEALTH"
SHED="$(jq -r .shed <<<"$HEALTH")"
[ "$SHED" -ge 1 ] || die "/api/health shed counter is $SHED after an overload run"
GOODPUT="$(jq -r .goodput_rps "$OUT")"
awk -v g="$GOODPUT" 'BEGIN{exit !(g > 0)}' || die "goodput $GOODPUT rps: the server refused everything"

log "PASS: shed=$SHED goodput=${GOODPUT}rps (artifact: $OUT)"
