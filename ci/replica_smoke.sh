#!/usr/bin/env bash
# Replica smoke: boot the real binaries — a primary quarryd over a
# disk-backed data dir, a shared-dir replica, an HTTP-transport
# replica, and the scatter router — then identity-check /api/olap
# answers across every serving path, exercise a republish (the
# replicas must converge and re-agree), fail a replica under the
# router, and confirm writes are refused everywhere but the primary.
#
# CI runs this with race-enabled binaries (GOFLAGS=-race); locally
# plain `./ci/replica_smoke.sh` works too. Only bash + curl + go.
set -euo pipefail

SF="${SF:-1}"
PRIMARY_PORT=18080
REPLICA1_PORT=18081 # shared-dir transport
REPLICA2_PORT=18082 # HTTP transport
ROUTER_PORT=18090

BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

log() { echo "replica-smoke: $*" >&2; }
die() {
    log "FAIL: $*"
    exit 1
}

# wait_until DESC URL GREP: poll URL (2s curl timeout) until the body
# matches GREP, for up to ~60s.
wait_until() {
    local desc=$1 url=$2 want=$3 body=""
    for _ in $(seq 1 120); do
        body="$(curl -fsS -m 2 "$url" 2>/dev/null || true)"
        if grep -q "$want" <<<"$body"; then return 0; fi
        sleep 0.5
    done
    die "$desc: $url never matched '$want' (last body: $body)"
}

log "building binaries (GOFLAGS=${GOFLAGS:-})"
go build -o "$BIN" ./cmd/quarryd ./cmd/quarryrouter ./cmd/quarry

log "starting primary (sf=$SF, data dir $WORK/primary)"
"$BIN/quarryd" -addr ":$PRIMARY_PORT" -sf "$SF" -data-dir "$WORK/primary" &
PIDS+=($!)
wait_until "primary up" "http://localhost:$PRIMARY_PORT/api/health" '"role":"primary"'

log "registering the revenue requirement and running ETL"
"$BIN/quarry" xrq -name revenue |
    curl -fsS -X POST --data-binary @- "http://localhost:$PRIMARY_PORT/api/requirements" >/dev/null
curl -fsS -X POST "http://localhost:$PRIMARY_PORT/api/run" >/dev/null

log "starting replicas (shared-dir and HTTP transports)"
"$BIN/quarryd" -addr ":$REPLICA1_PORT" -sf "$SF" \
    -replica-of "http://localhost:$PRIMARY_PORT" \
    -data-dir "$WORK/replica1" -replica-dir "$WORK/primary" \
    -replica-interval 250ms &
PIDS+=($!)
"$BIN/quarryd" -addr ":$REPLICA2_PORT" -sf "$SF" \
    -replica-of "http://localhost:$PRIMARY_PORT" \
    -data-dir "$WORK/replica2" \
    -replica-interval 250ms &
PIDS+=($!)
wait_until "replica1 converged" "http://localhost:$REPLICA1_PORT/api/health" '"converged":true'
wait_until "replica2 converged" "http://localhost:$REPLICA2_PORT/api/health" '"converged":true'

log "starting router over both replicas"
"$BIN/quarryrouter" -addr ":$ROUTER_PORT" \
    -replicas "http://localhost:$REPLICA1_PORT,http://localhost:$REPLICA2_PORT" \
    -health-interval 500ms &
PIDS+=($!)
wait_until "router up" "http://localhost:$ROUTER_PORT/api/health" '"role":"router"'

OLAP_BODY='{"fact":"fact_table_revenue","group_by":["n_name"],"measures":[{"out":"total","func":"SUM","col":"revenue"}]}'
olap() { # olap PORT -> body (fails the script on a non-200)
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "$OLAP_BODY" "http://localhost:$1/api/olap"
}

# check_identity DESC: the primary's answer is the reference; every
# replica and two routed requests (round-robin covers both backends)
# must return byte-identical bodies.
check_identity() {
    local desc=$1 ref got
    ref="$(olap "$PRIMARY_PORT")"
    grep -q '"rows"' <<<"$ref" || die "$desc: primary answer has no rows: $ref"
    for port in "$REPLICA1_PORT" "$REPLICA2_PORT" "$ROUTER_PORT" "$ROUTER_PORT"; do
        got="$(olap "$port")"
        [ "$got" = "$ref" ] || die "$desc: answer from :$port diverges
primary: $ref
:$port : $got"
    done
    log "$desc: identical answers across primary, replicas, router"
}

check_identity "initial fleet"

log "republishing on the primary (second ETL run) and waiting for the replicas to follow"
curl -fsS -X POST "http://localhost:$PRIMARY_PORT/api/run" >/dev/null
NEW_VERSION="$(curl -fsS "http://localhost:$PRIMARY_PORT/api/health" |
    sed -n 's/.*"warehouse_version":\([0-9]*\).*/\1/p')"
[ -n "$NEW_VERSION" ] || die "could not read the primary's post-run version"
wait_until "replica1 at v$NEW_VERSION" "http://localhost:$REPLICA1_PORT/api/health" "\"local_version\":$NEW_VERSION"
wait_until "replica2 at v$NEW_VERSION" "http://localhost:$REPLICA2_PORT/api/health" "\"local_version\":$NEW_VERSION"
check_identity "after republish"

log "checking writes are refused off the primary"
for port in "$REPLICA1_PORT" "$REPLICA2_PORT" "$ROUTER_PORT"; do
    code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://localhost:$port/api/run")"
    [ "$code" = "403" ] || die "POST /api/run on :$port = $code, want 403"
done

log "killing replica1; the router must keep answering from replica2"
kill "${PIDS[1]}" 2>/dev/null || true
wait "${PIDS[1]}" 2>/dev/null || true
ref="$(olap "$PRIMARY_PORT")"
for i in 1 2 3 4; do
    got="$(olap "$ROUTER_PORT")"
    [ "$got" = "$ref" ] || die "failover request $i diverges from the primary"
done
log "router failover: 4/4 identical answers with one replica down"

log "PASS"
