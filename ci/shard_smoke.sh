#!/usr/bin/env bash
# Shard smoke: boot the real binaries — two quarryd shards each
# holding one hash partition of the fact table, the gather router in
# front of them, and an unsharded single-node control over the full
# data — then demand byte-identical /api/olap answers from the gather
# and the control across a query mix covering the whole merge algebra
# (float SUM/AVG, COUNT, string MIN/MAX, filters, roll-ups), through
# a lockstep republish. Then kill one shard and confirm the
# documented failure mode: a whole-query 502 naming the dead shard,
# never a partial answer.
#
# CI runs this with race-enabled binaries (GOFLAGS=-race); locally
# plain `./ci/shard_smoke.sh` works too. Only bash + curl + go.
set -euo pipefail

SF="${SF:-3}"
CONTROL_PORT=19080
SHARD0_PORT=19081
SHARD1_PORT=19082
GATHER_PORT=19090

BIN="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

log() { echo "shard-smoke: $*" >&2; }
die() {
    log "FAIL: $*"
    exit 1
}

# wait_until DESC URL GREP: poll URL (2s curl timeout) until the body
# matches GREP, for up to ~60s.
wait_until() {
    local desc=$1 url=$2 want=$3 body=""
    for _ in $(seq 1 120); do
        body="$(curl -fsS -m 2 "$url" 2>/dev/null || true)"
        if grep -q "$want" <<<"$body"; then return 0; fi
        sleep 0.5
    done
    die "$desc: $url never matched '$want' (last body: $body)"
}

log "building binaries (GOFLAGS=${GOFLAGS:-})"
go build -o "$BIN" ./cmd/quarryd ./cmd/quarryrouter ./cmd/quarry

log "starting single-node control (sf=$SF) and a 2-way shard fleet"
"$BIN/quarryd" -addr ":$CONTROL_PORT" -sf "$SF" &
PIDS+=($!)
"$BIN/quarryd" -addr ":$SHARD0_PORT" -sf "$SF" -shards 2 -shard-index 0 &
PIDS+=($!)
"$BIN/quarryd" -addr ":$SHARD1_PORT" -sf "$SF" -shards 2 -shard-index 1 &
PIDS+=($!)
wait_until "control up" "http://localhost:$CONTROL_PORT/api/health" '"role":"primary"'
wait_until "shard 0 up" "http://localhost:$SHARD0_PORT/api/health" '"shard_index":0'
wait_until "shard 1 up" "http://localhost:$SHARD1_PORT/api/health" '"shard_index":1'

# The requirement lifecycle runs on every node in the same order —
# the lockstep contract that keeps the fleet's epochs equal.
log "registering the revenue requirement and running ETL on all nodes"
XRQ="$("$BIN/quarry" xrq -name revenue)"
for port in "$CONTROL_PORT" "$SHARD0_PORT" "$SHARD1_PORT"; do
    curl -fsS -X POST --data-binary "$XRQ" "http://localhost:$port/api/requirements" >/dev/null
    curl -fsS -X POST "http://localhost:$port/api/run" >/dev/null
done

epoch_of() { # epoch_of PORT
    curl -fsS "http://localhost:$1/api/health" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p'
}
E0="$(epoch_of "$SHARD0_PORT")"
E1="$(epoch_of "$SHARD1_PORT")"
[ -n "$E0" ] && [ "$E0" = "$E1" ] || die "shard epochs diverge after lockstep load: shard0=$E0 shard1=$E1"
log "shards agree on epoch $E0"

log "starting the gather router over both shards"
"$BIN/quarryrouter" -addr ":$GATHER_PORT" \
    -shard-of "http://localhost:$SHARD0_PORT,http://localhost:$SHARD1_PORT" &
PIDS+=($!)
wait_until "gather up" "http://localhost:$GATHER_PORT/api/health" '"role":"shard-gather"'
wait_until "gather sees a complete fleet" "http://localhost:$GATHER_PORT/api/health" '"status":"ok"'

# The golden mix covers every measure type the merge algebra handles;
# float SUM and AVG are the exactness-critical ones (the merge must
# reproduce the single node's bits, not just its approximate values).
QUERIES=(
    '{"fact":"fact_table_revenue","group_by":["n_name"],"measures":[{"out":"total","func":"SUM","col":"revenue"}]}'
    '{"fact":"fact_table_revenue","group_by":["r_name"],"measures":[{"out":"avg_rev","func":"AVG","col":"revenue"},{"out":"n","func":"COUNT"}]}'
    '{"fact":"fact_table_revenue","group_by":["p_brand"],"measures":[{"out":"min_type","func":"MIN","col":"p_type"},{"out":"max_type","func":"MAX","col":"p_type"},{"out":"total","func":"SUM","col":"revenue"}]}'
    '{"fact":"fact_table_revenue","group_by":["s_name"],"measures":[{"out":"total","func":"SUM","col":"revenue"}],"filter":"p_retailprice > 950"}'
    '{"fact":"fact_table_revenue","roll_up":{"Supplier":"Region"},"measures":[{"out":"avg_bal","func":"AVG","col":"s_acctbal"},{"out":"total","func":"SUM","col":"revenue"}]}'
)
olap() { # olap PORT BODY -> response body (fails the script on a non-200)
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "$2" "http://localhost:$1/api/olap"
}

# check_identity DESC: every query in the mix must come back from the
# gather byte-identical to the single-node control over the full data.
check_identity() {
    local desc=$1 i=0 ref got
    for q in "${QUERIES[@]}"; do
        ref="$(olap "$CONTROL_PORT" "$q")"
        grep -q '"rows"' <<<"$ref" || die "$desc: control answer $i has no rows: $ref"
        got="$(olap "$GATHER_PORT" "$q")"
        [ "$got" = "$ref" ] || die "$desc: gathered answer $i diverges from the control
query  : $q
control: $ref
gather : $got"
        i=$((i + 1))
    done
    log "$desc: ${#QUERIES[@]}/${#QUERIES[@]} gathered answers byte-identical to the control"
}

check_identity "initial fleet"

log "republishing in lockstep (second ETL run on every node)"
for port in "$CONTROL_PORT" "$SHARD0_PORT" "$SHARD1_PORT"; do
    curl -fsS -X POST "http://localhost:$port/api/run" >/dev/null
done
E0B="$(epoch_of "$SHARD0_PORT")"
E1B="$(epoch_of "$SHARD1_PORT")"
[ -n "$E0B" ] && [ "$E0B" = "$E1B" ] || die "shard epochs diverge after republish: shard0=$E0B shard1=$E1B"
[ "$E0B" != "$E0" ] || die "republish did not advance the epoch (still $E0)"
check_identity "after republish"

log "checking the non-distributive dice contract (shard rejection forwarded)"
DICE='{"fact":"fact_table_revenue","group_by":["n_name"],"measures":[{"out":"n","func":"COUNT"}],"dice":{"func":"COUNT","thresholds":{"n_name":2}}}'
code="$(curl -s -o /tmp/dice_body -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d "$DICE" "http://localhost:$GATHER_PORT/api/olap")"
[ "$code" = "422" ] || die "diced query through the gather = $code, want 422 ($(cat /tmp/dice_body))"
grep -q "not distributive" /tmp/dice_body || die "dice rejection reason missing: $(cat /tmp/dice_body)"

log "checking design/load operations are refused at the gather"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://localhost:$GATHER_PORT/api/run")"
[ "$code" = "403" ] || die "POST /api/run on the gather = $code, want 403"

log "killing shard 1; the gather must refuse partial answers"
kill "${PIDS[2]}" 2>/dev/null || true
wait "${PIDS[2]}" 2>/dev/null || true
code="$(curl -s -o /tmp/fail_body -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d "${QUERIES[0]}" "http://localhost:$GATHER_PORT/api/olap")"
[ "$code" = "502" ] || die "query with shard 1 down = $code, want 502 ($(cat /tmp/fail_body))"
grep -q "shard 1" /tmp/fail_body || die "502 does not name the dead shard: $(cat /tmp/fail_body)"
grep -q "refusing partial answer" /tmp/fail_body || die "failure mode not stated: $(cat /tmp/fail_body)"
wait_until "gather health degraded" "http://localhost:$GATHER_PORT/api/health" '"status":"degraded"'
log "dead shard fails the whole query loudly (502) and degrades health"

log "PASS"
