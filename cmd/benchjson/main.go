// Command benchjson converts `go test -bench` text output into a
// stable JSON document and optionally gates it against a checked-in
// baseline — the CI bench job's regression tripwire.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | tee bench.txt
//	benchjson -in bench.txt -sha $GITHUB_SHA -out BENCH_$GITHUB_SHA.json
//	benchjson -in bench.txt -baseline BENCH_baseline.json \
//	          -gate '^BenchmarkOLAP' -threshold 0.25
//
// The gate fails (exit 1) when any baseline benchmark whose name
// matches -gate is either missing from the current run or slower than
// baseline × (1 + threshold).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document.
type Report struct {
	SHA        string      `json:"sha,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8   100   123456 ns/op  4.5 extra_metric`;
// the -N GOMAXPROCS suffix is stripped from the stored name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.eE+]+) ns/op(.*)$`)

// parse reads `go test -bench` output. Duplicate names (re-runs across
// packages) keep the last occurrence.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	byName := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", line, err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if extra := strings.Fields(m[4]); len(extra) >= 2 {
			b.Metrics = map[string]float64{}
			for i := 0; i+1 < len(extra); i += 2 {
				v, err := strconv.ParseFloat(extra[i], 64)
				if err != nil {
					continue // allocation columns etc. stay numeric, but be lenient
				}
				b.Metrics[extra[i+1]] = v
			}
		}
		if i, dup := byName[b.Name]; dup {
			rep.Benchmarks[i] = b
			continue
		}
		byName[b.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// gate compares the current report against the baseline and returns
// one human-readable failure per regressed (or vanished) benchmark.
func gate(current, baseline *Report, match *regexp.Regexp, threshold float64) []string {
	cur := map[string]Benchmark{}
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	var failures []string
	for _, base := range baseline.Benchmarks {
		if !match.MatchString(base.Name) {
			continue
		}
		got, ok := cur[base.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from this run", base.Name))
			continue
		}
		limit := base.NsPerOp * (1 + threshold)
		if got.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f ns/op exceeds baseline %.0f ns/op by %.1f%% (limit +%.0f%%)",
				base.Name, got.NsPerOp, base.NsPerOp,
				100*(got.NsPerOp-base.NsPerOp)/base.NsPerOp, 100*threshold))
		}
	}
	return failures
}

func run() error {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "write the parsed report as JSON to this file")
	sha := flag.String("sha", "", "commit SHA recorded in the report")
	baselinePath := flag.String("baseline", "", "baseline JSON to gate against")
	gateExpr := flag.String("gate", "^Benchmark", "regexp of baseline benchmarks the gate enforces")
	threshold := flag.Float64("threshold", 0.25, "allowed slowdown vs baseline (0.25 = +25%)")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	if err != nil {
		return err
	}
	rep.SHA = *sha
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark results in input")
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	}
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			return err
		}
		var baseline Report
		if err := json.Unmarshal(data, &baseline); err != nil {
			return fmt.Errorf("benchjson: parsing baseline %s: %w", *baselinePath, err)
		}
		match, err := regexp.Compile(*gateExpr)
		if err != nil {
			return fmt.Errorf("benchjson: bad -gate regexp: %w", err)
		}
		failures := gate(rep, &baseline, match, *threshold)
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", f)
			}
			return fmt.Errorf("benchjson: %d benchmark(s) regressed beyond +%.0f%%", len(failures), 100**threshold)
		}
		fmt.Printf("benchjson: gate passed (%s, threshold +%.0f%%)\n", *gateExpr, 100**threshold)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
