// Command benchjson converts `go test -bench` text output into a
// stable JSON document and gates it against regressions — the CI
// bench job's tripwire.
//
// Usage:
//
//	go test -bench . -benchtime 1x -count 5 -run '^$' ./... | tee bench.txt
//	benchjson -in bench.txt -sha $GITHUB_SHA -out BENCH_$GITHUB_SHA.json
//	benchjson -in bench.txt -prev BENCH_prev.json \
//	          -gate '^BenchmarkOLAP' -threshold 0.25
//
// Repeated runs of the same benchmark (`-count N`) accumulate as
// samples; ns_per_op reports their median, so a single noisy
// iteration cannot move the headline number.
//
// Two gates exist. The RELATIVE gate (-prev) compares this run
// against the previous run on the same runner — benchstat-style: it
// fails (exit 1) when a gated benchmark is missing, or its median is
// past threshold AND, when both runs carry ≥ minSamples samples, an
// exact Mann-Whitney U test agrees the slowdown is real rather than
// scheduler noise. The ABSOLUTE gate (-baseline) compares against a
// checked-in reference; because those numbers were measured on
// different hardware, it only WARNS by default (-baseline-mode warn);
// -baseline-mode gate restores the hard failure for runners that
// match the baseline's environment.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result. When the bench run used
// -count N, Samples holds every observation and NsPerOp their median.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Samples    []float64          `json:"samples,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// samplesOf returns the observations to compare: explicit samples
// when present, else the headline number (reports written before
// multi-sample support carry only ns_per_op).
func (b Benchmark) samplesOf() []float64 {
	if len(b.Samples) > 0 {
		return b.Samples
	}
	return []float64{b.NsPerOp}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Report is the JSON document.
type Report struct {
	SHA        string      `json:"sha,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8   100   123456 ns/op  4.5 extra_metric`;
// the -N GOMAXPROCS suffix is stripped from the stored name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.eE+]+) ns/op(.*)$`)

// parse reads `go test -bench` output. Repeated occurrences of a name
// (from -count N) accumulate as samples of one benchmark, with the
// headline NsPerOp kept at their median; iterations and extra metrics
// keep the last occurrence.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	byName := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", line, err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if extra := strings.Fields(m[4]); len(extra) >= 2 {
			b.Metrics = map[string]float64{}
			for i := 0; i+1 < len(extra); i += 2 {
				v, err := strconv.ParseFloat(extra[i], 64)
				if err != nil {
					continue // allocation columns etc. stay numeric, but be lenient
				}
				b.Metrics[extra[i+1]] = v
			}
		}
		if i, dup := byName[b.Name]; dup {
			prev := rep.Benchmarks[i]
			b.Samples = append(prev.Samples, ns)
			b.NsPerOp = median(b.Samples)
			rep.Benchmarks[i] = b
			continue
		}
		b.Samples = []float64{ns}
		byName[b.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// gate compares the current report against the baseline and returns
// one human-readable failure per regressed (or vanished) benchmark.
func gate(current, baseline *Report, match *regexp.Regexp, threshold float64) []string {
	cur := map[string]Benchmark{}
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	var failures []string
	for _, base := range baseline.Benchmarks {
		if !match.MatchString(base.Name) {
			continue
		}
		got, ok := cur[base.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from this run", base.Name))
			continue
		}
		limit := base.NsPerOp * (1 + threshold)
		if got.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f ns/op exceeds baseline %.0f ns/op by %.1f%% (limit +%.0f%%)",
				base.Name, got.NsPerOp, base.NsPerOp,
				100*(got.NsPerOp-base.NsPerOp)/base.NsPerOp, 100*threshold))
		}
	}
	return failures
}

// minSamples is the per-side sample count from which the relative
// gate demands statistical significance on top of the median
// threshold: with 3 vs 3 the exact test's smallest possible p-value
// is 1/C(6,3) = 0.05, so that is the first size at which a test CAN
// reach alpha — below it the median comparison stands alone.
const minSamples = 3

// alpha is the one-sided significance level of the relative gate.
const alpha = 0.05

// mannWhitneyP returns the exact one-sided p-value for "cur is
// stochastically slower than prev" under the Mann-Whitney U null (all
// interleavings equally likely). CI runs carry single-digit sample
// counts, so the exact distribution is cheap and the large-sample
// normal approximation — which is unsound at these sizes — is never
// needed. Ties contribute ½ to U and the no-ties null is used, which
// is the conservative direction.
func mannWhitneyP(prev, cur []float64) float64 {
	n, m := len(prev), len(cur)
	if n == 0 || m == 0 {
		return 1
	}
	var u float64
	for _, x := range prev {
		for _, y := range cur {
			switch {
			case y > x:
				u++
			case y == x:
				u += 0.5
			}
		}
	}
	// ways[j][v] = number of interleavings of i prev- and j
	// cur-samples with statistic v, rolled over i. Recurrence on the
	// smallest element: if it is a prev-sample, all j cur-samples
	// exceed it (adds j to the statistic, consumes one prev-sample);
	// if it is a cur-sample, it exceeds nothing (consumes one
	// cur-sample at the same i) — hence j ascending and v descending,
	// so reads hit exactly the (i-1, j) and (i, j-1) states.
	ways := make([][]float64, m+1)
	for j := range ways {
		ways[j] = make([]float64, n*m+1)
		ways[j][0] = 1 // N(0; 0, j): no prev-samples, statistic 0
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			row, left := ways[j], ways[j-1]
			for v := n * m; v >= 0; v-- {
				var w float64
				if v >= j {
					w = row[v-j]
				}
				row[v] = w + left[v]
			}
		}
	}
	var total, tail float64
	uMin := int(math.Ceil(u - 1e-9))
	for v, w := range ways[m] {
		total += w
		if v >= uMin {
			tail += w
		}
	}
	if total == 0 {
		return 1
	}
	return tail / total
}

// gateRelative compares this run against the previous run on the
// same runner. A gated benchmark fails when it vanished, or when its
// median slowed past the threshold and — once both runs carry enough
// samples for the test to be able to fire — the exact Mann-Whitney
// test confirms the shift (p ≤ alpha). The significance requirement
// is what lets the gate run with a tight threshold without tripping
// on scheduler noise.
func gateRelative(current, prev *Report, match *regexp.Regexp, threshold float64) []string {
	cur := map[string]Benchmark{}
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	var failures []string
	for _, base := range prev.Benchmarks {
		if !match.MatchString(base.Name) {
			continue
		}
		got, ok := cur[base.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in previous run but missing from this one", base.Name))
			continue
		}
		prevS, curS := base.samplesOf(), got.samplesOf()
		medPrev, medCur := median(prevS), median(curS)
		if medCur <= medPrev*(1+threshold) {
			continue
		}
		if len(prevS) >= minSamples && len(curS) >= minSamples {
			if p := mannWhitneyP(prevS, curS); p > alpha {
				continue // past threshold but indistinguishable from noise
			}
		}
		failures = append(failures, fmt.Sprintf(
			"%s: median %.0f ns/op vs previous %.0f ns/op, +%.1f%% (limit +%.0f%%, %d vs %d samples)",
			base.Name, medCur, medPrev, 100*(medCur-medPrev)/medPrev, 100*threshold,
			len(curS), len(prevS)))
	}
	return failures
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	return &rep, nil
}

func run() error {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "write the parsed report as JSON to this file")
	sha := flag.String("sha", "", "commit SHA recorded in the report")
	prevPath := flag.String("prev", "", "previous same-runner report JSON for the relative gate")
	baselinePath := flag.String("baseline", "", "absolute baseline JSON to compare against")
	baselineMode := flag.String("baseline-mode", "warn", "absolute-baseline mismatches: warn (report only) or gate (exit 1)")
	gateExpr := flag.String("gate", "^Benchmark", "regexp of benchmarks the gates enforce")
	threshold := flag.Float64("threshold", 0.25, "allowed slowdown (0.25 = +25%)")
	flag.Parse()
	if *baselineMode != "warn" && *baselineMode != "gate" {
		return fmt.Errorf("benchjson: -baseline-mode must be warn or gate, got %q", *baselineMode)
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	if err != nil {
		return err
	}
	rep.SHA = *sha
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark results in input")
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	}
	match, err := regexp.Compile(*gateExpr)
	if err != nil {
		return fmt.Errorf("benchjson: bad -gate regexp: %w", err)
	}
	if *prevPath != "" {
		prev, err := loadReport(*prevPath)
		if err != nil {
			return err
		}
		failures := gateRelative(rep, prev, match, *threshold)
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", f)
			}
			return fmt.Errorf("benchjson: %d benchmark(s) regressed vs the previous run beyond +%.0f%%", len(failures), 100**threshold)
		}
		fmt.Printf("benchjson: relative gate passed vs %s (%s, threshold +%.0f%%)\n", *prevPath, *gateExpr, 100**threshold)
	}
	if *baselinePath != "" {
		baseline, err := loadReport(*baselinePath)
		if err != nil {
			return err
		}
		failures := gate(rep, baseline, match, *threshold)
		switch {
		case len(failures) == 0:
			fmt.Printf("benchjson: absolute baseline matched (%s, threshold +%.0f%%)\n", *gateExpr, 100**threshold)
		case *baselineMode == "gate":
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", f)
			}
			return fmt.Errorf("benchjson: %d benchmark(s) regressed beyond +%.0f%%", len(failures), 100**threshold)
		default:
			// The checked-in baseline was measured on specific hardware;
			// on any other runner a mismatch is expected noise, so it is
			// reported without failing the run (satellite bugfix: this
			// used to hard-fail CI on every runner-class change).
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "benchjson: WARNING (absolute baseline, not gating):", f)
			}
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
