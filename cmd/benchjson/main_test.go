package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: quarry
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkOLAPQuery_StarFlow-8     	       1	    253000 ns/op
BenchmarkOLAPQuery_FastPath-8     	       1	    113000 ns/op
BenchmarkOLAPQuery_Materialized-8 	       1	     16000 ns/op
BenchmarkOLAPDice-8               	       1	    131000 ns/op
BenchmarkFig3_IntegrationAndDeployment-8 	       1	   1795000 ns/op	         4.000 reuse_ratio
PASS
ok  	quarry	12.3s
?   	quarry/cmd/quarryd	[no test files]
`

func parseSample(t *testing.T, text string) *Report {
	t.Helper()
	rep, err := parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseBenchOutput(t *testing.T) {
	rep := parseSample(t, sampleOutput)
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("environment = %q/%q/%q", rep.GOOS, rep.GOARCH, rep.CPU)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}
	fast := rep.Benchmarks[1]
	if fast.Name != "BenchmarkOLAPQuery_FastPath" || fast.Iterations != 1 || fast.NsPerOp != 113000 {
		t.Errorf("fast path parsed as %+v", fast)
	}
	fig3 := rep.Benchmarks[4]
	if fig3.Metrics["reuse_ratio"] != 4 {
		t.Errorf("extra metric parsed as %+v", fig3.Metrics)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := parseSample(t, sampleOutput)
	cur := parseSample(t, strings.ReplaceAll(sampleOutput, "113000 ns/op", "130000 ns/op")) // +15%
	match := regexp.MustCompile(`^BenchmarkOLAP`)
	if failures := gate(cur, base, match, 0.25); len(failures) != 0 {
		t.Fatalf("gate tripped within threshold: %v", failures)
	}
}

// TestGateTripsOnInjectedSlowdown is the acceptance check: a 2× slower
// fast path must trip the 25% gate.
func TestGateTripsOnInjectedSlowdown(t *testing.T) {
	base := parseSample(t, sampleOutput)
	cur := parseSample(t, strings.ReplaceAll(sampleOutput, "113000 ns/op", "226000 ns/op")) // 2×
	match := regexp.MustCompile(`^BenchmarkOLAP`)
	failures := gate(cur, base, match, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkOLAPQuery_FastPath") {
		t.Fatalf("gate failures = %v, want exactly the fast-path regression", failures)
	}
	// Benchmarks outside the gate regexp never trip it.
	slowFig := parseSample(t, strings.ReplaceAll(sampleOutput, "1795000 ns/op", "9795000 ns/op"))
	if failures := gate(slowFig, base, match, 0.25); len(failures) != 0 {
		t.Fatalf("ungated benchmark tripped the gate: %v", failures)
	}
}

// TestParseMultiSample: -count N re-runs of a benchmark accumulate
// as samples of ONE entry whose headline number is their median, so a
// single outlier iteration cannot move it.
func TestParseMultiSample(t *testing.T) {
	rep := parseSample(t, `
BenchmarkOLAPDice-8	1	100000 ns/op
BenchmarkOLAPDice-8	1	120000 ns/op
BenchmarkOLAPDice-8	1	900000 ns/op
BenchmarkOLAPDice-8	1	110000 ns/op
BenchmarkOLAPDice-8	1	105000 ns/op
`)
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1 accumulated", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if len(b.Samples) != 5 {
		t.Fatalf("samples = %v, want 5", b.Samples)
	}
	if b.NsPerOp != 110000 {
		t.Fatalf("NsPerOp = %v, want the median 110000 (outlier-resistant)", b.NsPerOp)
	}
}

// TestMannWhitneyExact pins the exact test on hand-checkable cases.
func TestMannWhitneyExact(t *testing.T) {
	// Perfect separation, 3 vs 3: U = 9, the single most extreme of
	// C(6,3) = 20 interleavings → p = 1/20.
	p := mannWhitneyP([]float64{1, 2, 3}, []float64{10, 11, 12})
	if diff := p - 0.05; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("separated 3v3: p = %v, want 0.05", p)
	}
	// Reversed direction: cur entirely FASTER → p = 1 (one-sided).
	if p := mannWhitneyP([]float64{10, 11, 12}, []float64{1, 2, 3}); p != 1 {
		t.Fatalf("faster cur: p = %v, want 1", p)
	}
	// Interleaved samples: nowhere near significant.
	if p := mannWhitneyP([]float64{1, 3, 5}, []float64{2, 4, 6}); p <= 0.05 {
		t.Fatalf("interleaved: p = %v, want > 0.05", p)
	}
}

func relativeReports(t *testing.T, prev, cur string) (*Report, *Report) {
	t.Helper()
	return parseSample(t, cur), parseSample(t, prev)
}

// TestRelativeGateTripsOnRealRegression: a consistent 2× slowdown
// across samples must fail the relative gate.
func TestRelativeGateTripsOnRealRegression(t *testing.T) {
	cur, prev := relativeReports(t, `
BenchmarkOLAPDice-8	1	100000 ns/op
BenchmarkOLAPDice-8	1	101000 ns/op
BenchmarkOLAPDice-8	1	102000 ns/op
`, `
BenchmarkOLAPDice-8	1	200000 ns/op
BenchmarkOLAPDice-8	1	201000 ns/op
BenchmarkOLAPDice-8	1	202000 ns/op
`)
	failures := gateRelative(cur, prev, regexp.MustCompile(`^BenchmarkOLAP`), 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkOLAPDice") {
		t.Fatalf("failures = %v, want the dice regression", failures)
	}
}

// TestRelativeGateToleratesNoise: the median is past the threshold
// but the sample distributions overlap heavily — the significance
// requirement keeps the gate quiet instead of flaking.
func TestRelativeGateToleratesNoise(t *testing.T) {
	cur, prev := relativeReports(t, `
BenchmarkOLAPDice-8	1	100000 ns/op
BenchmarkOLAPDice-8	1	300000 ns/op
BenchmarkOLAPDice-8	1	90000 ns/op
BenchmarkOLAPDice-8	1	310000 ns/op
`, `
BenchmarkOLAPDice-8	1	290000 ns/op
BenchmarkOLAPDice-8	1	95000 ns/op
BenchmarkOLAPDice-8	1	305000 ns/op
BenchmarkOLAPDice-8	1	280000 ns/op
`)
	if failures := gateRelative(cur, prev, regexp.MustCompile(`^BenchmarkOLAP`), 0.25); len(failures) != 0 {
		t.Fatalf("noisy overlap tripped the gate: %v", failures)
	}
}

// TestRelativeGateSingleSampleFallsBackToMedian: without enough
// samples for significance, the median threshold alone decides (old
// reports carry only ns_per_op).
func TestRelativeGateSingleSampleFallsBackToMedian(t *testing.T) {
	cur, prev := relativeReports(t,
		"BenchmarkOLAPDice-8	1	100000 ns/op\n",
		"BenchmarkOLAPDice-8	1	200000 ns/op\n")
	if failures := gateRelative(cur, prev, regexp.MustCompile(`^BenchmarkOLAP`), 0.25); len(failures) != 1 {
		t.Fatalf("single-sample 2× slowdown not caught: %v", failures)
	}
}

func TestRelativeGateFailsOnMissing(t *testing.T) {
	cur, prev := relativeReports(t,
		"BenchmarkOLAPDice-8	1	100000 ns/op\n",
		"BenchmarkOther-8	1	100000 ns/op\n")
	failures := gateRelative(cur, prev, regexp.MustCompile(`^BenchmarkOLAP`), 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("failures = %v, want a missing-benchmark failure", failures)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := parseSample(t, sampleOutput)
	var lines []string
	for _, l := range strings.Split(sampleOutput, "\n") {
		if !strings.Contains(l, "BenchmarkOLAPDice") {
			lines = append(lines, l)
		}
	}
	cur := parseSample(t, strings.Join(lines, "\n"))
	match := regexp.MustCompile(`^BenchmarkOLAP`)
	failures := gate(cur, base, match, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("gate failures = %v, want a missing-benchmark failure", failures)
	}
}
