package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: quarry
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkOLAPQuery_StarFlow-8     	       1	    253000 ns/op
BenchmarkOLAPQuery_FastPath-8     	       1	    113000 ns/op
BenchmarkOLAPQuery_Materialized-8 	       1	     16000 ns/op
BenchmarkOLAPDice-8               	       1	    131000 ns/op
BenchmarkFig3_IntegrationAndDeployment-8 	       1	   1795000 ns/op	         4.000 reuse_ratio
PASS
ok  	quarry	12.3s
?   	quarry/cmd/quarryd	[no test files]
`

func parseSample(t *testing.T, text string) *Report {
	t.Helper()
	rep, err := parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseBenchOutput(t *testing.T) {
	rep := parseSample(t, sampleOutput)
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("environment = %q/%q/%q", rep.GOOS, rep.GOARCH, rep.CPU)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}
	fast := rep.Benchmarks[1]
	if fast.Name != "BenchmarkOLAPQuery_FastPath" || fast.Iterations != 1 || fast.NsPerOp != 113000 {
		t.Errorf("fast path parsed as %+v", fast)
	}
	fig3 := rep.Benchmarks[4]
	if fig3.Metrics["reuse_ratio"] != 4 {
		t.Errorf("extra metric parsed as %+v", fig3.Metrics)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := parseSample(t, sampleOutput)
	cur := parseSample(t, strings.ReplaceAll(sampleOutput, "113000 ns/op", "130000 ns/op")) // +15%
	match := regexp.MustCompile(`^BenchmarkOLAP`)
	if failures := gate(cur, base, match, 0.25); len(failures) != 0 {
		t.Fatalf("gate tripped within threshold: %v", failures)
	}
}

// TestGateTripsOnInjectedSlowdown is the acceptance check: a 2× slower
// fast path must trip the 25% gate.
func TestGateTripsOnInjectedSlowdown(t *testing.T) {
	base := parseSample(t, sampleOutput)
	cur := parseSample(t, strings.ReplaceAll(sampleOutput, "113000 ns/op", "226000 ns/op")) // 2×
	match := regexp.MustCompile(`^BenchmarkOLAP`)
	failures := gate(cur, base, match, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkOLAPQuery_FastPath") {
		t.Fatalf("gate failures = %v, want exactly the fast-path regression", failures)
	}
	// Benchmarks outside the gate regexp never trip it.
	slowFig := parseSample(t, strings.ReplaceAll(sampleOutput, "1795000 ns/op", "9795000 ns/op"))
	if failures := gate(slowFig, base, match, 0.25); len(failures) != 0 {
		t.Fatalf("ungated benchmark tripped the gate: %v", failures)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := parseSample(t, sampleOutput)
	var lines []string
	for _, l := range strings.Split(sampleOutput, "\n") {
		if !strings.Contains(l, "BenchmarkOLAPDice") {
			lines = append(lines, l)
		}
	}
	cur := parseSample(t, strings.Join(lines, "\n"))
	match := regexp.MustCompile(`^BenchmarkOLAP`)
	failures := gate(cur, base, match, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("gate failures = %v, want a missing-benchmark failure", failures)
	}
}
