// Command quarry drives the DW design lifecycle from the command
// line over a generated micro-TPC-H domain. It covers the three
// demonstration scenarios of the paper (§3):
//
//	quarry elicit [-focus Lineitem]       assisted data exploration
//	quarry demo [-sf 10]                  DW design: Figure 3 end-to-end
//	quarry evolve [-sf 10]                accommodating a design to changes
//	quarry export [-sf 10] [-out DIR]     deployment artifacts (DDL, .ktr)
//	quarry xrq [-name revenue]            print a built-in requirement as xRQ XML
//
// The xrq subcommand emits the canonical xRQ document for one of the
// built-in micro-TPC-H requirements — exactly the body that quarryd's
// POST /api/requirements expects — so scripts can drive a running
// server without hand-writing XML.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"quarry"
	"quarry/internal/olap"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "elicit":
		err = cmdElicit(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "evolve":
		err = cmdEvolve(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "olap":
		err = cmdOLAP(os.Args[2:])
	case "xrq":
		err = cmdXRQ(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarry: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: quarry <elicit|demo|evolve|export|olap|xrq> [flags]")
}

// cmdOLAP: consume the deployed DW — build it for the revenue
// requirement, then answer an analytical question from it on the
// vectorized fast path (or the star-flow oracle with -oracle).
func cmdOLAP(args []string) error {
	fs := flag.NewFlagSet("olap", flag.ExitOnError)
	sf := fs.Float64("sf", 10, "scale factor")
	by := fs.String("by", "n_name", "comma-separated group-by columns")
	measure := fs.String("measure", "SUM:revenue", "FUNC:column aggregate")
	filter := fs.String("filter", "", "optional predicate over fact/dimension columns")
	rollup := fs.String("rollup", "", "comma-separated Dimension=Level roll-ups (e.g. Supplier=Nation)")
	dice := fs.String("dice", "", "diamond dice: comma-separated column=minCarat thresholds")
	diceCarat := fs.String("dice-carat", "COUNT:", "dice carat aggregate, FUNC:column (COUNT: counts rows)")
	oracle := fs.Bool("oracle", false, "answer via the star-flow oracle instead of the fast path")
	fs.Parse(args)
	p, err := newPlatform(*sf)
	if err != nil {
		return err
	}
	if _, err := p.AddRequirement(quarry.RevenueRequirement()); err != nil {
		return err
	}
	if _, err := p.Run(); err != nil {
		return err
	}
	oe, err := p.OLAP()
	if err != nil {
		return err
	}
	parts := strings.SplitN(*measure, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("measure must be FUNC:column, got %q", *measure)
	}
	q := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  strings.Split(*by, ","),
		Measures: []olap.MeasureSpec{{Out: "answer", Func: parts[0], Col: parts[1]}},
		Filter:   *filter,
	}
	if *rollup != "" {
		q.RollUp = map[string]string{}
		for _, pair := range strings.Split(*rollup, ",") {
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("rollup must be Dimension=Level, got %q", pair)
			}
			q.RollUp[strings.TrimSpace(kv[0])] = strings.TrimSpace(kv[1])
		}
	}
	if *dice != "" {
		cp := strings.SplitN(*diceCarat, ":", 2)
		if len(cp) != 2 {
			return fmt.Errorf("dice-carat must be FUNC:column, got %q", *diceCarat)
		}
		spec := &olap.DiceSpec{Func: cp[0], Col: cp[1], Thresholds: map[string]float64{}}
		for _, pair := range strings.Split(*dice, ",") {
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("dice must be column=minCarat, got %q", pair)
			}
			min, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
			if err != nil {
				return fmt.Errorf("dice threshold %q: %w", pair, err)
			}
			spec.Thresholds[strings.TrimSpace(kv[0])] = min
		}
		q.Dice = spec
	}
	query := oe.Query
	if *oracle {
		query = oe.QueryStarFlow
	}
	res, err := query(q)
	if err != nil {
		return err
	}
	for _, c := range res.Columns {
		fmt.Printf("%-20s", c)
	}
	fmt.Println()
	for _, row := range res.Rows {
		for _, v := range row {
			fmt.Printf("%-20s", strings.Trim(v.String(), "'"))
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
	return nil
}

func newPlatform(sf float64) (*quarry.Platform, error) {
	p, _, err := quarry.NewTPCHPlatform(sf, 42)
	return p, err
}

// cmdElicit: scenario "DW design", elicitation phase — explore the
// ontology and print suggested analytical perspectives.
func cmdElicit(args []string) error {
	fs := flag.NewFlagSet("elicit", flag.ExitOnError)
	focus := fs.String("focus", "Lineitem", "analysis focus concept")
	sf := fs.Float64("sf", 1, "scale factor")
	fs.Parse(args)
	p, err := newPlatform(*sf)
	if err != nil {
		return err
	}
	e := p.Elicitor()
	fmt.Println("Ranked analysis foci:")
	for i, f := range e.SuggestFoci() {
		fmt.Printf("  %d. %-10s score=%.1f (measures=%d, dimensions=%d)\n",
			i+1, f.Concept, f.Score, f.Measures, f.Dimensions)
	}
	s, err := e.Suggest(*focus)
	if err != nil {
		return err
	}
	fmt.Printf("\nSuggestions for focus %s:\n  measures:\n", *focus)
	for _, m := range s.Measures {
		fmt.Printf("    %-35s %s\n", m.Attribute, m.Type)
	}
	fmt.Println("  dimensions:")
	for _, d := range s.Dimensions {
		fmt.Printf("    %-12s distance=%d score=%.2f attrs=%v\n", d.Concept, d.Distance, d.Score, d.Attributes)
	}
	return nil
}

// cmdDemo: scenario "DW design" — the Figure 3 pipeline end-to-end.
func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	sf := fs.Float64("sf", 10, "scale factor")
	fs.Parse(args)
	p, err := newPlatform(*sf)
	if err != nil {
		return err
	}
	for _, r := range []*quarry.Requirement{quarry.RevenueRequirement(), quarry.NetProfitRequirement()} {
		rep, err := p.AddRequirement(r)
		if err != nil {
			return err
		}
		fmt.Printf("added %-14s: ETL reused=%d added=%d; MD matches=%d\n",
			r.ID, rep.ETL.Reused, rep.ETL.Added,
			len(rep.MD.MatchedFacts)+len(rep.MD.MatchedDimensions))
	}
	md, etl := p.Unified()
	fmt.Printf("unified MD: %d facts, %d dimensions (shared: %v)\n",
		len(md.Facts), len(md.Dimensions), md.SharedDimensions())
	fmt.Printf("unified ETL: %d operations, %d edges\n", len(etl.Nodes()), len(etl.Edges()))
	res, err := p.Run()
	if err != nil {
		return err
	}
	fmt.Println("native execution loaded:")
	var tables []string
	for tbl := range res.Loaded {
		tables = append(tables, tbl)
	}
	sort.Strings(tables)
	for _, tbl := range tables {
		fmt.Printf("  %-22s %6d rows\n", tbl, res.Loaded[tbl])
	}
	sep, err := p.RunSeparately()
	if err != nil {
		return err
	}
	fmt.Printf("integration benefit: %d rows processed vs %d separate (%.2fx)\n",
		res.RowsProcessed(), sep.RowsProcessed(),
		float64(sep.RowsProcessed())/float64(res.RowsProcessed()))
	return nil
}

// cmdEvolve: scenario "accommodating a DW design to changes".
func cmdEvolve(args []string) error {
	fs := flag.NewFlagSet("evolve", flag.ExitOnError)
	sf := fs.Float64("sf", 10, "scale factor")
	fs.Parse(args)
	p, err := newPlatform(*sf)
	if err != nil {
		return err
	}
	for _, r := range quarry.CanonicalRequirements() {
		if _, err := p.AddRequirement(r); err != nil {
			return err
		}
	}
	cost, _ := p.EstimatedETLCost()
	fmt.Printf("after 4 requirements: estimated ETL cost %.0f\n", cost)

	changed := quarry.RevenueRequirement()
	changed.Slicers[0].Value = "FRANCE"
	if _, err := p.ChangeRequirement(changed); err != nil {
		return err
	}
	fmt.Println("changed IR_revenue slicer SPAIN → FRANCE (design re-derived)")

	if _, err := p.RemoveRequirement("IR_quantity_market"); err != nil {
		return err
	}
	fmt.Println("removed IR_quantity_market (design re-derived)")

	if err := p.CheckSatisfiability(); err != nil {
		return fmt.Errorf("satisfiability broken: %w", err)
	}
	md, _ := p.Unified()
	cost, _ = p.EstimatedETLCost()
	fmt.Printf("final design: %d facts, %d dimensions, estimated ETL cost %.0f; all requirements satisfied\n",
		len(md.Facts), len(md.Dimensions), cost)
	return nil
}

// cmdExport: scenario "design deployment" — write the artifacts.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	sf := fs.Float64("sf", 10, "scale factor")
	out := fs.String("out", ".", "output directory")
	fs.Parse(args)
	p, err := newPlatform(*sf)
	if err != nil {
		return err
	}
	for _, r := range []*quarry.Requirement{quarry.RevenueRequirement(), quarry.NetProfitRequirement()} {
		if _, err := p.AddRequirement(r); err != nil {
			return err
		}
	}
	dep, err := p.Deploy("quarry_dw")
	if err != nil {
		return err
	}
	ddlPath := filepath.Join(*out, "quarry_dw.sql")
	if err := os.WriteFile(ddlPath, []byte(dep.DDL), 0o644); err != nil {
		return err
	}
	ktrPath := filepath.Join(*out, "quarry_dw.ktr")
	if err := os.WriteFile(ktrPath, []byte(dep.PDI), 0o644); err != nil {
		return err
	}
	flowSQLPath := filepath.Join(*out, "quarry_dw_etl.sql")
	if err := os.WriteFile(flowSQLPath, []byte(dep.FlowSQL), 0o644); err != nil {
		return err
	}
	pigPath := filepath.Join(*out, "quarry_dw_etl.pig")
	if err := os.WriteFile(pigPath, []byte(dep.PigLatin), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (PostgreSQL DDL, %d tables)\n", ddlPath, len(dep.Tables))
	fmt.Printf("wrote %s (Pentaho PDI transformation)\n", ktrPath)
	fmt.Printf("wrote %s (ETL as SQL INSERT…SELECT)\n", flowSQLPath)
	fmt.Printf("wrote %s (ETL as Apache PigLatin)\n", pigPath)
	var facts []string
	for f := range dep.StarQueries {
		facts = append(facts, f)
	}
	sort.Strings(facts)
	for _, f := range facts {
		fmt.Printf("\n-- sample star query for %s:\n%s\n", f, dep.StarQueries[f])
	}
	return nil
}

// cmdXRQ: print a built-in requirement as its canonical xRQ document —
// the exact body quarryd's POST /api/requirements accepts. This is the
// scripting bridge between the CLI and the HTTP service: pipe it into
// curl to register a requirement on a running primary.
func cmdXRQ(args []string) error {
	fs := flag.NewFlagSet("xrq", flag.ExitOnError)
	name := fs.String("name", "revenue", "built-in requirement: revenue or netprofit")
	fs.Parse(args)
	var req *quarry.Requirement
	switch *name {
	case "revenue":
		req = quarry.RevenueRequirement()
	case "netprofit":
		req = quarry.NetProfitRequirement()
	default:
		return fmt.Errorf("unknown requirement %q (want revenue or netprofit)", *name)
	}
	text, err := quarry.MarshalRequirement(req)
	if err != nil {
		return err
	}
	fmt.Println(text)
	return nil
}
