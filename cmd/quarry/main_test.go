package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCmdElicit(t *testing.T) {
	if err := cmdElicit([]string{"-focus", "Lineitem", "-sf", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdElicit([]string{"-focus", "Ghost", "-sf", "1"}); err == nil {
		t.Error("unknown focus accepted")
	}
}

func TestCmdDemo(t *testing.T) {
	if err := cmdDemo([]string{"-sf", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdEvolve(t *testing.T) {
	if err := cmdEvolve([]string{"-sf", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdOLAP(t *testing.T) {
	if err := cmdOLAP([]string{"-sf", "1", "-by", "n_name", "-measure", "SUM:revenue"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdOLAP([]string{"-sf", "1", "-measure", "nonsense"}); err == nil {
		t.Error("bad measure accepted")
	}
	if err := cmdOLAP([]string{"-sf", "1", "-by", "ghost_col"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestCmdExport(t *testing.T) {
	dir := t.TempDir()
	if err := cmdExport([]string{"-sf", "1", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"quarry_dw.sql", "quarry_dw.ktr", "quarry_dw_etl.sql", "quarry_dw_etl.pig"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", f)
		}
	}
	ddl, _ := os.ReadFile(filepath.Join(dir, "quarry_dw.sql"))
	if !strings.Contains(string(ddl), "CREATE TABLE") {
		t.Error("DDL artifact malformed")
	}
	pig, _ := os.ReadFile(filepath.Join(dir, "quarry_dw_etl.pig"))
	if !strings.Contains(string(pig), "STORE") {
		t.Error("Pig artifact malformed")
	}
}
