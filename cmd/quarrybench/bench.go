package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// benchConfig parameterizes one load run.
type benchConfig struct {
	Target string // base URL of the quarryd/quarryrouter endpoint
	QPS    float64
	// Duration is how long the schedule runs; in-flight requests are
	// drained after the last scheduled send.
	Duration time.Duration
	ZipfS    float64 // Zipf skew of the query mix (> 1)
	Seed     int64
	// OracleEvery makes every Nth scheduled request an oracle spot
	// check: the fast-path answer is re-fetched through the star-flow
	// reference executor and compared byte-for-byte. 0 disables.
	OracleEvery int
	// ReloadInterval, when > 0, POSTs /api/run at this interval to
	// exercise warehouse churn (cache purges + aggregate refreshes)
	// under load.
	ReloadInterval time.Duration
	Timeout        time.Duration
	Fact           string
}

// Percentiles reports latency in microseconds.
type Percentiles struct {
	P50  float64 `json:"p50_us"`
	P95  float64 `json:"p95_us"`
	P99  float64 `json:"p99_us"`
	P999 float64 `json:"p999_us"`
	Max  float64 `json:"max_us"`
	Mean float64 `json:"mean_us"`
}

// StatsDelta is the server-side counter movement over the run,
// scraped from GET /api/olap/stats before and after.
type StatsDelta struct {
	Queries int64 `json:"queries"`
	// The server's accounting identity: Queries = Answered + Shed +
	// QueryErrors, exact once the run has drained (the harness scrapes
	// after the last in-flight request completes). DeadlineExceeded is
	// the 504 subset of QueryErrors, not an extra term.
	Answered         int64   `json:"answered"`
	Shed             int64   `json:"shed"`
	QueryErrors      int64   `json:"query_errors"`
	DeadlineExceeded int64   `json:"deadline_exceeded"`
	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	CacheHitRatio    float64 `json:"cache_hit_ratio"`
	// Materialized-aggregate traffic; all zero when matagg is off.
	MatAggHits         int64   `json:"matagg_hits"`
	MatAggRewrites     int64   `json:"matagg_rewrites"`
	MatAggMisses       int64   `json:"matagg_misses"`
	MatAggHitRatio     float64 `json:"matagg_hit_ratio"`
	MatAggMaterialized int     `json:"matagg_materialized"`
	MatAggBytes        int64   `json:"matagg_bytes"`
}

// QueryCount is one mix entry's share of the run.
type QueryCount struct {
	Name     string `json:"name"`
	Requests int64  `json:"requests"`
}

// LoadReport is the run artifact (BENCH_load_<sha>.json).
type LoadReport struct {
	SHA             string  `json:"sha,omitempty"`
	Target          string  `json:"target"`
	OfferedQPS      float64 `json:"offered_qps"`
	ZipfS           float64 `json:"zipf_s"`
	Seed            int64   `json:"seed"`
	DurationSeconds float64 `json:"duration_seconds"`
	Scheduled       int64   `json:"scheduled"`
	Requests        int64   `json:"requests"` // completed, incl. oracle re-fetches
	// Every completed request is exactly one of answered (2xx), shed
	// (429 admission refusal — the server working as designed under
	// overload, NOT an error) or error (transport failure or any other
	// non-2xx, including 504 deadline expiries).
	Answered      int64        `json:"answered"`
	Shed          int64        `json:"shed"`
	ShedRate      float64      `json:"shed_rate"`
	Errors        int64        `json:"errors"`
	ErrorRate     float64      `json:"error_rate"`
	ThroughputRPS float64      `json:"throughput_rps"`
	GoodputRPS    float64      `json:"goodput_rps"` // answered (2xx) per second
	Latency       Percentiles  `json:"latency"`     // admitted (2xx) requests only
	Mix           []QueryCount `json:"mix"`
	// Oracle spot-check accounting. Mismatches MUST be zero: a
	// non-zero value means the fast path diverged from the reference
	// executor. A pair whose two fetches report different warehouse
	// epochs (X-Quarry-Version response header) is skipped — the
	// answers may legitimately differ across versions. Against servers
	// that predate the header, pairs that straddled one of this
	// client's own reloads are skipped instead; that fallback cannot
	// see reloads triggered elsewhere (e.g. a shard fleet republishing
	// behind a gather router), which is why the header takes priority.
	OracleChecks     int64 `json:"oracle_checks"`
	OracleMismatches int64 `json:"oracle_mismatches"`
	OracleSkipped    int64 `json:"oracle_skipped"`
	// Reload churn accounting.
	Reloads      int64       `json:"reloads"`
	ReloadErrors int64       `json:"reload_errors"`
	Stats        *StatsDelta `json:"stats,omitempty"`
	StatsError   string      `json:"stats_error,omitempty"`
}

// runBench drives the target open-loop: requests fire on a fixed
// schedule derived from QPS alone, never gated on responses, and each
// latency is measured from the request's SCHEDULED time — so a server
// that stalls accumulates the stall into every latency that queued
// behind it instead of silently thinning the arrival rate
// (coordinated omission). A closed loop would measure a stalled
// server as "slow but fine"; this measures it as what a real caller
// population would experience.
func runBench(cfg benchConfig) (*LoadReport, error) {
	if cfg.QPS <= 0 {
		return nil, fmt.Errorf("qps must be > 0 (got %g)", cfg.QPS)
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("zipf skew must be > 1 (got %g)", cfg.ZipfS)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	queries := goldenWorkload(cfg.Fact)
	bodies := make([][]byte, len(queries))
	oracleBodies := make([][]byte, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(q.Body)
		if err != nil {
			return nil, fmt.Errorf("marshal %s: %w", q.Name, err)
		}
		bodies[i] = b
		ob := make(map[string]any, len(q.Body)+1)
		for k, v := range q.Body {
			ob[k] = v
		}
		ob["oracle"] = true
		if oracleBodies[i], err = json.Marshal(ob); err != nil {
			return nil, fmt.Errorf("marshal %s oracle: %w", q.Name, err)
		}
	}
	client := &http.Client{Timeout: cfg.Timeout}
	target := strings.TrimRight(cfg.Target, "/")
	statsBefore, statsErr := scrapeStats(client, cfg.Target)

	var (
		h          = newHist()
		requests   atomic.Int64
		answered   atomic.Int64
		shed       atomic.Int64
		errors     atomic.Int64
		perQuery   = make([]atomic.Int64, len(queries))
		oracleChk  atomic.Int64
		oracleBad  atomic.Int64
		oracleSkip atomic.Int64
		reloads    atomic.Int64
		reloadErrs atomic.Int64
		// reloadGen counts completed reloads; an oracle pair that saw
		// the generation move between its two fetches is skipped, since
		// the answers may legitimately differ across versions.
		reloadGen atomic.Int64
	)

	post := func(path string, body []byte) (int, http.Header, []byte, error) {
		resp, err := client.Post(target+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, resp.Header, nil, err
		}
		return resp.StatusCode, resp.Header, data, nil
	}

	// Reload churn: POST /api/run on its own clock until the schedule
	// ends. Runs concurrently with queries on purpose — the point is
	// to measure serving behaviour while the warehouse republishes.
	stopReload := make(chan struct{})
	var reloadWG sync.WaitGroup
	if cfg.ReloadInterval > 0 {
		reloadWG.Add(1)
		go func() {
			defer reloadWG.Done()
			tick := time.NewTicker(cfg.ReloadInterval)
			defer tick.Stop()
			for {
				select {
				case <-stopReload:
					return
				case <-tick.C:
					code, _, _, err := post("/api/run", []byte("{}"))
					reloads.Add(1)
					if err != nil || code/100 != 2 {
						reloadErrs.Add(1)
					} else {
						reloadGen.Add(1)
					}
				}
			}
		}()
	}

	// outcome buckets one completed request: every request is exactly
	// one of answered / shed / error, and only ADMITTED (2xx) latencies
	// feed the histogram — under deliberate overload a shed answers in
	// microseconds, and mixing those into the percentiles would make an
	// overloaded server look faster the harder it sheds.
	outcome := func(code int, err error, latNs int64) (ok bool) {
		requests.Add(1)
		switch {
		case err == nil && code/100 == 2:
			h.Record(latNs)
			answered.Add(1)
			return true
		case err == nil && code == http.StatusTooManyRequests:
			// Admission-control shed: the server protecting its SLO is
			// correct behaviour, accounted apart from real errors.
			shed.Add(1)
		default:
			errors.Add(1)
		}
		return false
	}

	fire := func(sched time.Time, qi int, oracle bool) {
		perQuery[qi].Add(1)
		genBefore := reloadGen.Load()
		code, fastHdr, fastBody, err := post("/api/olap", bodies[qi])
		ok := outcome(code, err, time.Since(sched).Nanoseconds())
		if !oracle || !ok {
			return
		}
		// Oracle spot check: same query through the star-flow reference
		// executor; its latency counts (it is real offered load), and
		// the two answers must be byte-identical unless the warehouse
		// republished between the fetches.
		oStart := time.Now()
		oCode, oHdr, oBody, oErr := post("/api/olap", oracleBodies[qi])
		if !outcome(oCode, oErr, time.Since(oStart).Nanoseconds()) {
			return
		}
		// Version-skew detection. The X-Quarry-Version header names the
		// warehouse epoch each answer was computed at (on a shard gather,
		// the merge epoch of the whole fleet). When both fetches carry
		// it, it is authoritative: differing epochs mean the comparison
		// is meaningless and is skipped; equal epochs mean the answers
		// came from the same snapshot and MUST match, even if a reload
		// completed in between. The local reload counter is only a
		// fallback for servers that predate the header — it cannot see
		// reloads triggered by other clients or by shard fleets
		// republishing on their own clock.
		fastVer, oVer := fastHdr.Get("X-Quarry-Version"), oHdr.Get("X-Quarry-Version")
		if fastVer != "" && oVer != "" {
			if fastVer != oVer {
				oracleSkip.Add(1)
				return
			}
		} else if reloadGen.Load() != genBefore {
			oracleSkip.Add(1)
			return
		}
		oracleChk.Add(1)
		if !bytes.Equal(fastBody, oBody) {
			oracleBad.Add(1)
		}
	}

	pick := newPicker(cfg.Seed, cfg.ZipfS, len(queries))
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	var wg sync.WaitGroup
	start := time.Now()
	var scheduled int64
	for {
		sched := start.Add(time.Duration(scheduled) * interval)
		if sched.Sub(start) >= cfg.Duration {
			break
		}
		time.Sleep(time.Until(sched))
		qi := pick()
		oracle := cfg.OracleEvery > 0 && scheduled%int64(cfg.OracleEvery) == int64(cfg.OracleEvery)-1
		wg.Add(1)
		go func() {
			defer wg.Done()
			fire(sched, qi, oracle)
		}()
		scheduled++
	}
	wg.Wait()
	close(stopReload)
	reloadWG.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Target:          cfg.Target,
		OfferedQPS:      cfg.QPS,
		ZipfS:           cfg.ZipfS,
		Seed:            cfg.Seed,
		DurationSeconds: elapsed.Seconds(),
		Scheduled:       scheduled,
		Requests:        requests.Load(),
		Answered:        answered.Load(),
		Shed:            shed.Load(),
		Errors:          errors.Load(),
		ThroughputRPS:   float64(requests.Load()) / elapsed.Seconds(),
		GoodputRPS:      float64(answered.Load()) / elapsed.Seconds(),
		Latency: Percentiles{
			P50:  float64(h.Quantile(0.50)) / 1e3,
			P95:  float64(h.Quantile(0.95)) / 1e3,
			P99:  float64(h.Quantile(0.99)) / 1e3,
			P999: float64(h.Quantile(0.999)) / 1e3,
			Max:  float64(h.Max()) / 1e3,
			Mean: h.Mean() / 1e3,
		},
		OracleChecks:     oracleChk.Load(),
		OracleMismatches: oracleBad.Load(),
		OracleSkipped:    oracleSkip.Load(),
		Reloads:          reloads.Load(),
		ReloadErrors:     reloadErrs.Load(),
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	}
	for i, q := range queries {
		rep.Mix = append(rep.Mix, QueryCount{Name: q.Name, Requests: perQuery[i].Load()})
	}
	statsAfter, afterErr := scrapeStats(client, cfg.Target)
	switch {
	case statsErr != nil:
		rep.StatsError = statsErr.Error()
	case afterErr != nil:
		rep.StatsError = afterErr.Error()
	default:
		rep.Stats = statsDelta(statsBefore, statsAfter)
	}
	return rep, nil
}

// statsDelta subtracts the pre-run counter snapshot so the report
// reflects only this run's traffic, even against a long-lived server.
func statsDelta(before, after *serverStats) *StatsDelta {
	d := &StatsDelta{
		Queries:          after.Queries - before.Queries,
		Answered:         after.Answered - before.Answered,
		Shed:             after.Shed - before.Shed,
		QueryErrors:      after.QueryErrors - before.QueryErrors,
		DeadlineExceeded: after.DeadlineExceeded - before.DeadlineExceeded,
		CacheHits:        after.CacheHits - before.CacheHits,
		CacheMisses:      after.CacheMisses - before.CacheMisses,
	}
	if tot := d.CacheHits + d.CacheMisses; tot > 0 {
		d.CacheHitRatio = float64(d.CacheHits) / float64(tot)
	}
	if after.MatAgg != nil {
		var bh, br, bm int64
		if before.MatAgg != nil {
			bh, br, bm = before.MatAgg.Hits, before.MatAgg.Rewrites, before.MatAgg.Misses
		}
		d.MatAggHits = after.MatAgg.Hits - bh
		d.MatAggRewrites = after.MatAgg.Rewrites - br
		d.MatAggMisses = after.MatAgg.Misses - bm
		if tot := d.MatAggHits + d.MatAggRewrites + d.MatAggMisses; tot > 0 {
			d.MatAggHitRatio = float64(d.MatAggHits+d.MatAggRewrites) / float64(tot)
		}
		d.MatAggMaterialized = after.MatAgg.Materialized
		d.MatAggBytes = after.MatAgg.MaterializedBytes
	}
	return d
}
