package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeOLAP is an httptest stand-in for quarryd's serving layer with
// deterministic fault injection: every failEvery-th /api/olap request
// returns 500, and oracleDiverge makes oracle-flagged answers differ
// from fast-path ones so mismatch detection can be exercised.
type fakeOLAP struct {
	olapRequests atomic.Int64
	olapFailures atomic.Int64
	olapSheds    atomic.Int64
	reloads      atomic.Int64
	failEvery    int64
	// shedEvery makes every shedEvery-th surviving request answer 429 +
	// Retry-After, imitating quarryd's admission control under overload.
	shedEvery     int64
	oracleDiverge bool
	// versionEachRequest stamps a fresh X-Quarry-Version on every
	// /api/olap response and makes the answer version-dependent,
	// simulating a warehouse republished between any two fetches by
	// someone other than this bench client (a shard fleet, another
	// loader). staticVersion stamps a constant header instead.
	versionEachRequest bool
	staticVersion      string
}

func (f *fakeOLAP) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/olap", func(w http.ResponseWriter, r *http.Request) {
		n := f.olapRequests.Add(1)
		if f.failEvery > 0 && n%f.failEvery == 0 {
			f.olapFailures.Add(1)
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return
		}
		if f.shedEvery > 0 && n%f.shedEvery == 0 {
			f.olapSheds.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"shed":true,"class":"fast"}`, http.StatusTooManyRequests)
			return
		}
		var body map[string]any
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			f.olapFailures.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		oracle, _ := body["oracle"].(bool)
		delete(body, "oracle")
		// Answer derived only from the query (map marshal sorts keys),
		// so fast and oracle fetches are byte-identical — unless
		// divergence is being injected.
		if f.oracleDiverge && oracle {
			body["divergence"] = true
		}
		if f.versionEachRequest {
			w.Header().Set("X-Quarry-Version", fmt.Sprint(n))
			body["version"] = n
		} else if f.staticVersion != "" {
			w.Header().Set("X-Quarry-Version", f.staticVersion)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("POST /api/run", func(w http.ResponseWriter, _ *http.Request) {
		f.reloads.Add(1)
		fmt.Fprint(w, "{}")
	})
	mux.HandleFunc("GET /api/olap/stats", func(w http.ResponseWriter, _ *http.Request) {
		// Counters shaped like quarryd's /api/olap/stats; matagg hits
		// track request count so the delta is observable.
		n, errs, sheds := f.olapRequests.Load(), f.olapFailures.Load(), f.olapSheds.Load()
		fmt.Fprintf(w, `{"queries":%d,"answered":%d,"shed":%d,"query_errors":%d,"deadline_exceeded":0,`+
			`"cache_hits":%d,"cache_misses":%d,`+
			`"matagg":{"hits":%d,"rewrites":0,"misses":0,"materialized":2,"materialized_bytes":4096}}`,
			n, n-errs-sheds, sheds, errs, n/2, n-n/2, n)
	})
	return mux
}

// TestBenchSmoke drives the harness against the fake server with
// fault injection, reload churn, and oracle checks all on, and holds
// it to exact accounting: every request the server saw is in the
// report, every injected 500 is an error, percentiles are monotone,
// and the stats delta reconciles with the server's own counters.
func TestBenchSmoke(t *testing.T) {
	fake := &fakeOLAP{failEvery: 7}
	srv := httptest.NewServer(fake.handler())
	defer srv.Close()

	rep, err := runBench(benchConfig{
		Target:         srv.URL,
		QPS:            300,
		Duration:       time.Second,
		ZipfS:          1.3,
		Seed:           42,
		OracleEvery:    5,
		ReloadInterval: 200 * time.Millisecond,
		Timeout:        5 * time.Second,
		Fact:           "fact_table_revenue",
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Scheduled < 290 {
		t.Fatalf("open-loop schedule issued %d requests, want ~300", rep.Scheduled)
	}
	// Exact accounting: the client's request and error counts must
	// equal what the server actually saw and injected.
	if got := fake.olapRequests.Load(); rep.Requests != got {
		t.Fatalf("report counts %d requests, server saw %d", rep.Requests, got)
	}
	if got := fake.olapFailures.Load(); rep.Errors != got {
		t.Fatalf("report counts %d errors, server injected %d", rep.Errors, got)
	}
	if rep.Errors == 0 {
		t.Fatal("fault injection produced no errors; the error path is untested")
	}
	if want := float64(rep.Errors) / float64(rep.Requests); rep.ErrorRate != want {
		t.Fatalf("ErrorRate = %v, want %v", rep.ErrorRate, want)
	}

	// Percentiles must be monotone and within the recorded range.
	l := rep.Latency
	if !(l.P50 <= l.P95 && l.P95 <= l.P99 && l.P99 <= l.P999 && l.P999 <= l.Max) {
		t.Fatalf("percentiles not monotone: %+v", l)
	}
	if l.P50 <= 0 || l.Mean <= 0 {
		t.Fatalf("degenerate latencies: %+v", l)
	}

	// Oracle checks ran and found no divergence (the fake server is
	// honest); reload churn happened and is accounted.
	if rep.OracleChecks == 0 {
		t.Fatal("no oracle spot checks ran")
	}
	if rep.OracleMismatches != 0 {
		t.Fatalf("%d oracle mismatches against an honest server", rep.OracleMismatches)
	}
	if rep.Reloads == 0 || rep.Reloads != fake.reloads.Load() {
		t.Fatalf("reloads: report %d, server %d", rep.Reloads, fake.reloads.Load())
	}
	if rep.ReloadErrors != 0 {
		t.Fatalf("unexpected reload errors: %d", rep.ReloadErrors)
	}

	// The mix covers every query, sums to the scheduled count, and is
	// Zipf-skewed toward the head.
	var mixSum int64
	for _, m := range rep.Mix {
		mixSum += m.Requests
	}
	if mixSum != rep.Scheduled {
		t.Fatalf("mix sums to %d, scheduled %d", mixSum, rep.Scheduled)
	}
	if rep.Mix[0].Requests <= rep.Mix[len(rep.Mix)-1].Requests {
		t.Fatalf("mix not skewed toward rank 0: %+v", rep.Mix)
	}

	// Stats delta reconciles with the server's counters.
	if rep.Stats == nil {
		t.Fatalf("stats not scraped: %s", rep.StatsError)
	}
	if rep.Stats.Queries != rep.Requests {
		t.Fatalf("stats delta counts %d queries, report %d", rep.Stats.Queries, rep.Requests)
	}
	if rep.Stats.QueryErrors != rep.Errors {
		t.Fatalf("stats delta counts %d errors, report %d", rep.Stats.QueryErrors, rep.Errors)
	}
	if rep.Stats.MatAggHits != rep.Requests || rep.Stats.MatAggHitRatio != 1 {
		t.Fatalf("matagg delta wrong: %+v", rep.Stats)
	}
	if rep.Stats.CacheHitRatio <= 0 || rep.Stats.CacheHitRatio > 1 {
		t.Fatalf("cache hit ratio out of range: %+v", rep.Stats)
	}
}

// TestBenchOracleMismatchDetected: a server whose oracle path answers
// differently must be caught — this is the tripwire the load harness
// adds over plain latency measurement.
func TestBenchOracleMismatchDetected(t *testing.T) {
	fake := &fakeOLAP{oracleDiverge: true}
	srv := httptest.NewServer(fake.handler())
	defer srv.Close()

	rep, err := runBench(benchConfig{
		Target:      srv.URL,
		QPS:         200,
		Duration:    300 * time.Millisecond,
		ZipfS:       1.3,
		Seed:        1,
		OracleEvery: 2,
		Timeout:     5 * time.Second,
		Fact:        "fact_table_revenue",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OracleMismatches == 0 {
		t.Fatal("diverging oracle answers were not detected")
	}
	if rep.OracleMismatches > rep.OracleChecks {
		t.Fatalf("mismatches %d exceed checks %d", rep.OracleMismatches, rep.OracleChecks)
	}
}

// TestBenchOracleSkipOnVersionSkew: when the target is a shard fleet
// behind a gather router (or any server reloaded by another client),
// the bench's own reload counter never moves, yet warehouse epochs
// do. The skip must key on the X-Quarry-Version response header: a
// pair that straddles an epoch change is skipped, never reported as
// a fast-path divergence. Here EVERY response carries a new epoch
// and a version-dependent body — the old counter-based logic would
// flag each pair as a mismatch.
func TestBenchOracleSkipOnVersionSkew(t *testing.T) {
	fake := &fakeOLAP{versionEachRequest: true}
	srv := httptest.NewServer(fake.handler())
	defer srv.Close()

	rep, err := runBench(benchConfig{
		Target:      srv.URL,
		QPS:         200,
		Duration:    300 * time.Millisecond,
		ZipfS:       1.3,
		Seed:        7,
		OracleEvery: 2,
		Timeout:     5 * time.Second,
		Fact:        "fact_table_revenue",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OracleMismatches != 0 {
		t.Fatalf("%d cross-epoch pairs reported as mismatches; version skew must skip, not fail", rep.OracleMismatches)
	}
	if rep.OracleChecks != 0 {
		t.Fatalf("%d cross-epoch pairs were compared; every pair straddled an epoch change", rep.OracleChecks)
	}
	if rep.OracleSkipped == 0 {
		t.Fatal("no pairs skipped despite every pair straddling an epoch change")
	}
}

// TestBenchOracleChecksWhenVersionStable: a constant X-Quarry-Version
// must not suppress checking — skipping is only for actual skew.
func TestBenchOracleChecksWhenVersionStable(t *testing.T) {
	fake := &fakeOLAP{staticVersion: "7"}
	srv := httptest.NewServer(fake.handler())
	defer srv.Close()

	rep, err := runBench(benchConfig{
		Target:      srv.URL,
		QPS:         200,
		Duration:    300 * time.Millisecond,
		ZipfS:       1.3,
		Seed:        7,
		OracleEvery: 2,
		Timeout:     5 * time.Second,
		Fact:        "fact_table_revenue",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OracleChecks == 0 {
		t.Fatal("no oracle checks ran against an epoch-stable server")
	}
	if rep.OracleSkipped != 0 {
		t.Fatalf("%d pairs skipped with a constant epoch", rep.OracleSkipped)
	}
	if rep.OracleMismatches != 0 {
		t.Fatalf("%d mismatches against an honest server", rep.OracleMismatches)
	}
}

// TestBenchDeterministicSequence: same seed, same query sequence —
// the property that makes a load run reproducible across hosts.
func TestBenchDeterministicSequence(t *testing.T) {
	a := newPicker(42, 1.3, 8)
	b := newPicker(42, 1.3, 8)
	for i := 0; i < 1000; i++ {
		if x, y := a(), b(); x != y {
			t.Fatalf("sequence diverged at %d: %d vs %d", i, x, y)
		}
	}
}

func TestBenchRejectsBadConfig(t *testing.T) {
	if _, err := runBench(benchConfig{QPS: 0, ZipfS: 1.3, Duration: time.Second}); err == nil {
		t.Fatal("qps 0 accepted")
	}
	if _, err := runBench(benchConfig{QPS: 10, ZipfS: 1.0, Duration: time.Second}); err == nil {
		t.Fatal("zipf 1.0 accepted")
	}
}

// TestBenchShedAccounting: 429s are sheds, not errors — they carry
// their own counter and rate, goodput counts only 2xx answers, and
// the client's books reconcile exactly with the server's delta under
// the identity queries = answered + shed + query_errors.
func TestBenchShedAccounting(t *testing.T) {
	fake := &fakeOLAP{failEvery: 9, shedEvery: 4}
	srv := httptest.NewServer(fake.handler())
	defer srv.Close()

	rep, err := runBench(benchConfig{
		Target:      srv.URL,
		QPS:         300,
		Duration:    time.Second,
		ZipfS:       1.3,
		Seed:        42,
		OracleEvery: 5,
		Timeout:     5 * time.Second,
		Fact:        "fact_table_revenue",
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Shed == 0 {
		t.Fatal("fake server shed nothing; the shed path is untested")
	}
	if got := fake.olapSheds.Load(); rep.Shed != got {
		t.Fatalf("report counts %d sheds, server issued %d", rep.Shed, got)
	}
	if got := fake.olapFailures.Load(); rep.Errors != got {
		t.Fatalf("sheds leaked into errors: report %d errors, server injected %d", rep.Errors, got)
	}
	if rep.Answered != rep.Requests-rep.Shed-rep.Errors {
		t.Fatalf("client books broken: answered=%d != requests=%d - shed=%d - errors=%d",
			rep.Answered, rep.Requests, rep.Shed, rep.Errors)
	}
	if want := float64(rep.Shed) / float64(rep.Requests); rep.ShedRate != want {
		t.Fatalf("ShedRate = %v, want %v", rep.ShedRate, want)
	}
	if rep.GoodputRPS <= 0 || rep.GoodputRPS >= rep.ThroughputRPS {
		t.Fatalf("goodput %.1f not strictly inside (0, throughput %.1f)", rep.GoodputRPS, rep.ThroughputRPS)
	}

	// Server-side delta reconciles exactly.
	if rep.Stats == nil {
		t.Fatalf("stats not scraped: %s", rep.StatsError)
	}
	s := rep.Stats
	if s.Queries != s.Answered+s.Shed+s.QueryErrors {
		t.Fatalf("server identity broken: queries=%d != answered=%d + shed=%d + query_errors=%d",
			s.Queries, s.Answered, s.Shed, s.QueryErrors)
	}
	if s.Shed != rep.Shed || s.Answered != rep.Answered || s.QueryErrors != rep.Errors {
		t.Fatalf("client/server disagreement: client (a=%d s=%d e=%d) vs server delta (a=%d s=%d e=%d)",
			rep.Answered, rep.Shed, rep.Errors, s.Answered, s.Shed, s.QueryErrors)
	}

	// No oracle mismatches: a shed first fetch never triggers the
	// oracle re-fetch, and a shed re-fetch skips the comparison.
	if rep.OracleMismatches != 0 {
		t.Fatalf("%d oracle mismatches; sheds must not be compared as answers", rep.OracleMismatches)
	}
}
