package main

import (
	"math"
	"math/bits"
	"sync"
)

// HDR-style log-linear latency histogram: 5 bits of sub-octave
// precision give 32 linear buckets per power of two, so any int64
// nanosecond value lands in one of ~1900 fixed buckets with a
// relative width — and therefore worst-case quantile error — of
// about 3%. Fixed buckets mean recording is one increment with no
// allocation, which is what lets the load loop record every request
// without perturbing the latencies it measures.
const (
	histSubBits = 5
	histSubSize = 1 << histSubBits
	histBuckets = (64 - histSubBits) * histSubSize
)

type hist struct {
	mu     sync.Mutex
	counts [histBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

func newHist() *hist { return &hist{min: math.MaxInt64} }

// bucketOf maps a value to its bucket: values below 32 get exact
// linear buckets; above, the top 5 bits below the leading bit select
// a linear bucket within the value's octave.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubSize {
		return int(v)
	}
	h := bits.Len64(uint64(v)) - 1 // position of the leading bit, ≥ histSubBits
	return (h-histSubBits)*histSubSize + int(v>>(h-histSubBits))
}

// bucketMid returns the midpoint of a bucket's value range — the
// representative reported for quantiles that land in it.
func bucketMid(idx int) int64 {
	if idx < histSubSize {
		return int64(idx)
	}
	shift := idx/histSubSize - 1
	low := int64(histSubSize+idx%histSubSize) << shift
	return low + int64(1)<<shift/2
}

func (h *hist) Record(v int64) {
	h.mu.Lock()
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

func (h *hist) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Quantile returns the value at quantile q in [0,1], clamped to the
// exact recorded min/max so the tails are never widened by bucket
// granularity. Returns 0 on an empty histogram.
func (h *hist) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.n {
		// The top order statistic is tracked exactly; no bucket
		// midpoint can undershoot it.
		return h.max
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

func (h *hist) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

func (h *hist) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.max
}
