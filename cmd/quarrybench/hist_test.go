package main

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestHistBucketRoundTrip pins the log-linear bucketing property the
// quantile error bound rests on: every value's bucket midpoint is
// within one sub-bucket width (~3.2% relative) of the value itself.
func TestHistBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 12345,
		1_000_000, 87_654_321, 1 << 40, math.MaxInt64 / 2}
	for _, v := range values {
		idx := bucketOf(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		mid := bucketMid(idx)
		if v < histSubSize {
			if mid != v {
				t.Fatalf("linear bucket not exact: bucketMid(bucketOf(%d)) = %d", v, mid)
			}
			continue
		}
		if rel := math.Abs(float64(mid-v)) / float64(v); rel > 1.0/float64(histSubSize) {
			t.Fatalf("bucketMid(bucketOf(%d)) = %d, relative error %.4f > %.4f",
				v, mid, rel, 1.0/float64(histSubSize))
		}
	}
	// Buckets are monotone in the value: sorting by bucket index never
	// reorders values by more than one bucket's width.
	for v := int64(1); v < 1<<20; v = v*7/5 + 1 {
		if bucketOf(v) > bucketOf(v+1) {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
	}
}

// TestHistQuantileAccuracy records a heavy-tailed sample and checks
// every reported quantile against the exact order statistic, within
// the histogram's documented ~3.2% relative error.
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := newHist()
	exact := make([]int64, 0, 50_000)
	for i := 0; i < 50_000; i++ {
		// Log-uniform latencies from ~1us to ~1s, in nanoseconds.
		v := int64(math.Exp(rng.Float64()*math.Log(1e9/1e3)) * 1e3)
		h.Record(v)
		exact = append(exact, v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(len(exact)))) - 1
		want := exact[rank]
		got := h.Quantile(q)
		if rel := math.Abs(float64(got-want)) / float64(want); rel > 0.04 {
			t.Errorf("q%.3f: got %d, exact %d, relative error %.4f", q, got, want, rel)
		}
	}
	if h.Max() != exact[len(exact)-1] {
		t.Errorf("Max = %d, want %d", h.Max(), exact[len(exact)-1])
	}
}

// TestHistQuantileMonotone: quantiles never decrease as q grows, and
// the extremes clamp to the recorded min/max.
func TestHistQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := newHist()
	for i := 0; i < 10_000; i++ {
		h.Record(rng.Int63n(1_000_000_000))
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%.3f) = %d < previous %d", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(1.0) != h.Max() {
		t.Fatalf("Quantile(1.0) = %d, Max = %d", h.Quantile(1.0), h.Max())
	}
}

func TestHistEmpty(t *testing.T) {
	h := newHist()
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}
