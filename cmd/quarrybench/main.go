// Command quarrybench is Quarry's open-loop load harness: it drives a
// live quarryd (or quarryrouter) endpoint with a Zipf-skewed mix of
// the golden TPC-H cube queries at a fixed request schedule,
// optionally republishing the warehouse underneath the load, and
// reports latency percentiles from an HDR-style histogram plus the
// server's cache and materialized-aggregate hit ratios.
//
// Open-loop means the schedule never waits for responses: a request
// fires every 1/qps seconds regardless of how many are outstanding,
// and each latency is measured from its SCHEDULED send time. Closed
// loops (fire, wait, fire) let a slow server throttle its own load
// and hide queueing delay — the coordinated-omission trap; this
// harness reports the delay a constant-rate caller population would
// actually see.
//
// Usage:
//
//	quarrybench -target http://localhost:8080 [-qps 100] [-duration 30s]
//	    [-zipf 1.3] [-seed 42] [-oracle-every 50] [-reload-interval 0]
//	    [-timeout 10s] [-fact fact_table_revenue] [-sha abc123] [-out FILE]
//	    [-max-error-rate -1] [-min-matagg-hits -1] [-max-shed-rate -1]
//	    [-min-shed -1] [-max-p99 0] [-expect-reconcile]
//
// A 429 is a shed — the server's admission control refusing work to
// protect its SLO — and is accounted separately from errors: the
// report carries answered/shed/errors (every completed request is
// exactly one of the three), a shed rate, and goodput (answered 2xx
// per second) beside raw throughput. Latency percentiles cover
// ADMITTED requests only; sheds answer in microseconds and would
// otherwise make an overloaded server look fast.
//
// The run fails (exit 1) when any oracle spot check mismatches, when
// -max-error-rate ≥ 0 and the observed error rate exceeds it, when
// -min-matagg-hits ≥ 0 and the server's materialized-aggregate store
// served fewer hits+rewrites than that over the run, when
// -max-shed-rate ≥ 0 and the shed rate exceeds it, when -min-shed ≥ 0
// and fewer requests were shed (overload smoke tests use this to
// prove the server actually shed), when -max-p99 > 0 and the admitted
// p99 exceeds it, or when -expect-reconcile is set and the server's
// counter deltas fail the accounting identity
// queries = answered + shed + query_errors or disagree with the
// client-observed shed count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	var (
		target      = flag.String("target", "http://localhost:8080", "base URL of the quarryd/quarryrouter endpoint")
		qps         = flag.Float64("qps", 100, "offered request rate (open-loop schedule)")
		duration    = flag.Duration("duration", 30*time.Second, "length of the request schedule")
		zipfS       = flag.Float64("zipf", 1.3, "Zipf skew of the query mix (must be > 1)")
		seed        = flag.Int64("seed", 42, "seed for the query-mix sequence (same seed, same sequence)")
		oracleEach  = flag.Int("oracle-every", 50, "every Nth request is an oracle spot check (0 disables)")
		reloadInt   = flag.Duration("reload-interval", 0, "POST /api/run at this interval during the run (0 disables)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
		fact        = flag.String("fact", "fact_table_revenue", "deployed fact table the mix queries")
		sha         = flag.String("sha", "", "commit SHA recorded in the artifact")
		out         = flag.String("out", "", "write the JSON artifact here (e.g. BENCH_load_<sha>.json)")
		maxErrRate  = flag.Float64("max-error-rate", -1, "fail if the error rate exceeds this (-1 disables)")
		minMatHits  = flag.Int64("min-matagg-hits", -1, "fail if matagg hits+rewrites over the run fall below this (-1 disables)")
		maxShedRate = flag.Float64("max-shed-rate", -1, "fail if the shed (429) rate exceeds this (-1 disables)")
		minShed     = flag.Int64("min-shed", -1, "fail if fewer than this many requests were shed (-1 disables; overload smokes use it to prove shedding happened)")
		maxP99      = flag.Duration("max-p99", 0, "fail if the admitted-request p99 latency exceeds this (0 disables)")
		reconcile   = flag.Bool("expect-reconcile", false, "fail unless server counter deltas satisfy queries = answered + shed + query_errors and match the client-observed shed count")
	)
	flag.Parse()

	rep, err := runBench(benchConfig{
		Target:         *target,
		QPS:            *qps,
		Duration:       *duration,
		ZipfS:          *zipfS,
		Seed:           *seed,
		OracleEvery:    *oracleEach,
		ReloadInterval: *reloadInt,
		Timeout:        *timeout,
		Fact:           *fact,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quarrybench:", err)
		os.Exit(2)
	}
	rep.SHA = *sha
	printReport(rep)
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "quarrybench:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "quarrybench:", err)
			os.Exit(2)
		}
		fmt.Printf("artifact: %s\n", *out)
	}

	failed := false
	if rep.OracleMismatches > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d oracle spot check(s) diverged from the reference executor\n", rep.OracleMismatches)
		failed = true
	}
	if *maxErrRate >= 0 && rep.ErrorRate > *maxErrRate {
		fmt.Fprintf(os.Stderr, "FAIL: error rate %.4f exceeds limit %.4f (%d/%d requests)\n",
			rep.ErrorRate, *maxErrRate, rep.Errors, rep.Requests)
		failed = true
	}
	if *minMatHits >= 0 {
		if rep.Stats == nil {
			fmt.Fprintf(os.Stderr, "FAIL: -min-matagg-hits set but server stats unavailable: %s\n", rep.StatsError)
			failed = true
		} else if got := rep.Stats.MatAggHits + rep.Stats.MatAggRewrites; got < *minMatHits {
			fmt.Fprintf(os.Stderr, "FAIL: matagg served %d hit(s) over the run, need ≥ %d\n", got, *minMatHits)
			failed = true
		}
	}
	if *maxShedRate >= 0 && rep.ShedRate > *maxShedRate {
		fmt.Fprintf(os.Stderr, "FAIL: shed rate %.4f exceeds limit %.4f (%d/%d requests)\n",
			rep.ShedRate, *maxShedRate, rep.Shed, rep.Requests)
		failed = true
	}
	if *minShed >= 0 && rep.Shed < *minShed {
		fmt.Fprintf(os.Stderr, "FAIL: %d request(s) shed, need ≥ %d (the server never hit its admission limit)\n",
			rep.Shed, *minShed)
		failed = true
	}
	if *maxP99 > 0 {
		if p99 := time.Duration(rep.Latency.P99 * float64(time.Microsecond)); p99 > *maxP99 {
			fmt.Fprintf(os.Stderr, "FAIL: admitted p99 %s exceeds limit %s\n", p99, *maxP99)
			failed = true
		}
	}
	if *reconcile {
		switch {
		case rep.Stats == nil:
			fmt.Fprintf(os.Stderr, "FAIL: -expect-reconcile set but server stats unavailable: %s\n", rep.StatsError)
			failed = true
		case rep.Stats.Queries != rep.Stats.Answered+rep.Stats.Shed+rep.Stats.QueryErrors:
			fmt.Fprintf(os.Stderr, "FAIL: server counters do not reconcile: queries=%d != answered=%d + shed=%d + query_errors=%d\n",
				rep.Stats.Queries, rep.Stats.Answered, rep.Stats.Shed, rep.Stats.QueryErrors)
			failed = true
		case rep.Stats.Shed != rep.Shed:
			fmt.Fprintf(os.Stderr, "FAIL: server shed delta %d disagrees with the %d shed (429) answers this client received\n",
				rep.Stats.Shed, rep.Shed)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func printReport(r *LoadReport) {
	fmt.Printf("target       %s\n", r.Target)
	fmt.Printf("offered      %.0f qps for %.1fs (zipf %.2f, seed %d)\n",
		r.OfferedQPS, r.DurationSeconds, r.ZipfS, r.Seed)
	fmt.Printf("requests     %d completed / %d scheduled, %.1f rps achieved\n",
		r.Requests, r.Scheduled, r.ThroughputRPS)
	fmt.Printf("answered     %d (goodput %.1f rps)\n", r.Answered, r.GoodputRPS)
	fmt.Printf("shed         %d (rate %.4f)\n", r.Shed, r.ShedRate)
	fmt.Printf("errors       %d (rate %.4f)\n", r.Errors, r.ErrorRate)
	fmt.Printf("latency(us)  admitted p50=%.0f p95=%.0f p99=%.0f p99.9=%.0f max=%.0f mean=%.0f\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.P999, r.Latency.Max, r.Latency.Mean)
	fmt.Printf("oracle       %d checked, %d mismatched, %d skipped (reload straddle)\n",
		r.OracleChecks, r.OracleMismatches, r.OracleSkipped)
	if r.Reloads > 0 || r.ReloadErrors > 0 {
		fmt.Printf("reloads      %d (%d failed)\n", r.Reloads, r.ReloadErrors)
	}
	if r.Stats != nil {
		s := r.Stats
		fmt.Printf("server       %d queries = %d answered + %d shed + %d errors (%d deadline), cache %d/%d hit ratio %.2f\n",
			s.Queries, s.Answered, s.Shed, s.QueryErrors, s.DeadlineExceeded, s.CacheHits, s.CacheHits+s.CacheMisses, s.CacheHitRatio)
		fmt.Printf("matagg       hits=%d rewrites=%d misses=%d ratio=%.2f materialized=%d (%d bytes)\n",
			s.MatAggHits, s.MatAggRewrites, s.MatAggMisses, s.MatAggHitRatio, s.MatAggMaterialized, s.MatAggBytes)
	} else if r.StatsError != "" {
		fmt.Printf("server       stats unavailable: %s\n", r.StatsError)
	}
	fmt.Printf("mix          ")
	for i, m := range r.Mix {
		if i > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("%s=%d", m.Name, m.Requests)
	}
	fmt.Println()
}
