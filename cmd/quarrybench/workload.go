package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
)

// workQuery is one entry of the benchmark mix: a name for reporting
// and the POST /api/olap body it sends.
type workQuery struct {
	Name string
	Body map[string]any
}

// goldenWorkload is the query mix, derived from the golden TPC-H
// cube-query set (internal/olap/golden_test.go) plus lattice
// neighbours of those shapes: per-supplier and rolled-up revenue,
// brand slices, a diamond dice, and a filtered drill. Order matters —
// the Zipf picker makes earlier entries hotter — so the list leads
// with the cheap aggregate shapes a real dashboard hammers and trails
// off into ad-hoc drill-downs.
func goldenWorkload(fact string) []workQuery {
	revenue := []any{
		map[string]any{"out": "total", "func": "SUM", "col": "revenue"},
		map[string]any{"out": "n", "func": "COUNT", "col": ""},
	}
	count := []any{map[string]any{"out": "n", "func": "COUNT", "col": ""}}
	return []workQuery{
		{"revenue_by_nation", map[string]any{
			"fact": fact, "roll_up": map[string]any{"Supplier": "Nation"}, "measures": revenue,
		}},
		{"revenue_by_supplier", map[string]any{
			"fact": fact, "group_by": []any{"s_name"}, "measures": revenue,
		}},
		{"revenue_by_region", map[string]any{
			"fact": fact, "roll_up": map[string]any{"Supplier": "Region"}, "measures": revenue,
		}},
		{"revenue_by_brand", map[string]any{
			"fact": fact, "group_by": []any{"p_brand"}, "measures": revenue,
		}},
		{"count_by_brand", map[string]any{
			"fact": fact, "group_by": []any{"p_brand"}, "measures": count,
		}},
		{"revenue_brand_dice", map[string]any{
			"fact": fact, "group_by": []any{"p_brand"},
			"measures": []any{map[string]any{"out": "total", "func": "SUM", "col": "revenue"}},
			"dice": map[string]any{
				"func": "COUNT", "thresholds": map[string]any{"p_brand": 4},
			},
		}},
		{"supplier_brand_cross", map[string]any{
			"fact": fact, "group_by": []any{"s_name", "p_brand"}, "measures": count,
		}},
		{"filtered_brand_drill", map[string]any{
			"fact": fact, "group_by": []any{"p_name"}, "measures": revenue,
			"filter": "p_brand = 'Brand#12'",
		}},
	}
}

// newPicker returns a deterministic Zipf-distributed index source
// over [0, n): rank 0 is the hottest query. s must be > 1 (the
// rand.Zipf constraint); the generator is seeded, so two runs with
// the same seed issue the same request sequence.
func newPicker(seed int64, s float64, n int) func() int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

// serverStats mirrors the fields of GET /api/olap/stats that the
// harness reports on. Decoded loosely: fields the server does not
// send stay zero, so the harness keeps working against older nodes.
type serverStats struct {
	Queries          int64 `json:"queries"`
	Answered         int64 `json:"answered"`
	Shed             int64 `json:"shed"`
	QueryErrors      int64 `json:"query_errors"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	MatAgg           *struct {
		Hits              int64 `json:"hits"`
		Rewrites          int64 `json:"rewrites"`
		Misses            int64 `json:"misses"`
		Materialized      int   `json:"materialized"`
		MaterializedBytes int64 `json:"materialized_bytes"`
		BudgetBytes       int64 `json:"budget_bytes"`
	} `json:"matagg"`
}

func scrapeStats(client *http.Client, target string) (*serverStats, error) {
	resp, err := client.Get(strings.TrimRight(target, "/") + "/api/olap/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET /api/olap/stats: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var st serverStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
