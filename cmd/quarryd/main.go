// Command quarryd serves the Quarry platform over HTTP: the RESTful
// service-oriented deployment of §2.6. By default it hosts a
// generated micro-TPC-H domain (the paper's demo setting).
//
// Usage:
//
//	quarryd [-addr :8080] [-sf 10] [-seed 42] [-store DIR]
//	        [-data-dir DIR] [-compact]
//	        [-parallelism 0] [-batch-size 0]
//	        [-olap-concurrency 0] [-olap-cache 256]
//	        [-matagg] [-matagg-top-k 8]
//
// With -data-dir the warehouse lives in a paged on-disk store: the
// first start generates and checkpoints the micro-TPC-H sources, a
// restart recovers the last committed version — sources and any
// deployed DW tables — and skips regeneration. -compact folds each
// recovered table into a single freshly encoded segment before
// serving, which also rewrites legacy format-1 directories into the
// compressed format-2 encodings.
package main

import (
	"flag"
	"log"
	"net/http"

	"quarry/internal/core"
	"quarry/internal/engine"
	"quarry/internal/server"
	"quarry/internal/storage"
	"quarry/internal/tpch"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sf := flag.Float64("sf", 10, "micro-TPC-H scale factor")
	seed := flag.Int64("seed", 42, "data generator seed")
	store := flag.String("store", "", "metadata repository directory (empty: in-memory)")
	dataDir := flag.String("data-dir", "", "disk-backed warehouse directory (empty: in-memory); reopening recovers the committed tables and skips generation")
	compact := flag.Bool("compact", false, "compact the recovered warehouse before serving (merges delta segments; rewrites legacy format-1 segments into compressed format 2)")
	parallelism := flag.Int("parallelism", 0, "ETL engine worker pool size (0: GOMAXPROCS)")
	batchSize := flag.Int("batch-size", 0, "ETL engine rows per batch (0: engine default)")
	olapConc := flag.Int("olap-concurrency", 0, "max concurrent OLAP queries (0: 2×GOMAXPROCS)")
	olapCache := flag.Int("olap-cache", 256, "OLAP result cache capacity (negative disables)")
	matagg := flag.Bool("matagg", true, "materialize hot OLAP aggregates (adaptive, version-keyed)")
	mataggTopK := flag.Int("matagg-top-k", 8, "materialized aggregates kept per refresh")
	flag.Parse()

	onto, err := tpch.Ontology()
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	mapg, err := tpch.Mapping()
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	cat, err := tpch.Catalog(*sf)
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	var db *storage.DB
	if *dataDir != "" {
		if db, err = storage.Open(*dataDir); err != nil {
			log.Fatalf("quarryd: %v", err)
		}
	} else {
		db = storage.NewDB()
	}
	// A directory counts as recovered only when it holds committed
	// DATA, not just schema: a crash during a previous start's
	// generate/checkpoint window commits the (empty) tables before
	// their rows, and trusting table names alone would then serve an
	// empty warehouse forever. tpch.Generate replaces tables, so
	// regenerating over a schema-only directory is safe.
	if li, ok := db.Table("lineitem"); ok && li.NumRows() > 0 {
		log.Printf("quarryd: recovered %d tables at version %d from %s; skipping generation (-sf/-seed ignored: the warehouse keeps the scale it was generated at)",
			len(db.TableNames()), db.Version(), *dataDir)
		if *compact {
			if err := db.Compact(); err != nil {
				log.Fatalf("quarryd: compacting %s: %v", *dataDir, err)
			}
		}
	} else {
		if _, err := tpch.Generate(db, *sf, *seed); err != nil {
			log.Fatalf("quarryd: %v", err)
		}
		// Commit the generated sources so a restart recovers them
		// (no-op for the in-memory backend).
		if err := db.Checkpoint(); err != nil {
			log.Fatalf("quarryd: checkpointing %s: %v", *dataDir, err)
		}
	}
	topK := 0
	if *matagg {
		topK = *mataggTopK
	}
	p, err := core.New(core.Config{
		Ontology: onto, Mapping: mapg, Catalog: cat, DB: db, StoreDir: *store,
		Engine:     engine.Options{Parallelism: *parallelism, BatchSize: *batchSize},
		MatAggTopK: topK,
	})
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	srv := server.NewWithOptions(p, server.Options{
		OLAPConcurrency: *olapConc,
		OLAPCacheSize:   *olapCache,
	})
	var lineitems int64
	if li, ok := db.Table("lineitem"); ok {
		lineitems = li.NumRows()
	}
	if stats := db.DiskStats(); stats != nil {
		segs, bytes := 0, int64(0)
		for _, st := range stats {
			segs += st.Segments
			bytes += st.Bytes
		}
		log.Printf("quarryd: disk footprint: %d tables, %d segments, %d bytes", len(stats), segs, bytes)
	}
	log.Printf("quarryd: micro-TPC-H ready (%d lineitems); listening on %s", lineitems, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("quarryd: %v", err)
	}
}
