// Command quarryd serves the Quarry platform over HTTP: the RESTful
// service-oriented deployment of §2.6. By default it hosts a
// generated micro-TPC-H domain (the paper's demo setting).
//
// Usage:
//
//	quarryd [-addr :8080] [-sf 10] [-seed 42] [-store DIR]
//	        [-data-dir DIR] [-compact]
//	        [-parallelism 0] [-batch-size 0]
//	        [-olap-concurrency 0] [-olap-cache 256]
//	        [-slo-target 0] [-shed-policy expensive-first] [-default-deadline 0]
//	        [-matagg] [-matagg-top-k 8] [-matagg-budget-bytes 0]
//	        [-replica-of URL] [-replica-dir DIR] [-replica-interval 1s]
//	        [-shards N] [-shard-index I]
//
// With -slo-target the serving tier defends a latency budget instead
// of melting under overload: per-class service times (cache hit /
// materialized aggregate / fast path / dice / oracle) are tracked as
// EWMAs, each arriving query's queue wait is projected from the
// current backlog, and requests whose projection blows the SLO are
// shed with 429 + Retry-After — most expensive class first under the
// default -shed-policy, with result-cache hits always admitted.
// -default-deadline (or a client's X-Quarry-Deadline header) bounds
// each query end-to-end; expiry frees the executor slot at the next
// batch boundary and answers 504 with partial-progress stats.
//
// With -data-dir the warehouse lives in a paged on-disk store: the
// first start generates and checkpoints the micro-TPC-H sources, a
// restart recovers the last committed version — sources and any
// deployed DW tables — and skips regeneration. -compact folds each
// recovered table into a single freshly encoded segment before
// serving, which also rewrites legacy format-1 directories into the
// compressed format-2 encodings.
//
// With -replica-of the node starts as a read replica of the named
// primary: it ships committed segments from the primary into its own
// -data-dir (required), replays the primary's requirement designs to
// rebuild the unified OLAP view locally, serves /api/olap from its
// own snapshot/materialized-aggregate/result-cache stack, rejects
// every write with 403, and reports replication lag in /api/health.
// -replica-dir switches the DATA transport from the primary's HTTP
// replication endpoints to direct reads of a shared directory (the
// primary's -data-dir over a shared filesystem); requirement designs
// still replay over HTTP from -replica-of. -replica-interval sets
// the poll cadence for tailing the primary's commits.
//
// With -shards N -shard-index I the node is shard I of an N-way
// hash-partitioned warehouse: ETL runs load only this shard's
// partition of each fact table (dimensions load in full), POST
// /api/olap/partial answers pre-finalisation partial aggregates, and
// /api/health reports the shard identity and epoch. Front the fleet
// with quarryrouter -shard-of. Every shard must run with the same
// -sf/-seed and receive the same requirement lifecycle (in the same
// order), so the fleet's warehouse versions advance in lockstep.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"quarry/internal/core"
	"quarry/internal/engine"
	"quarry/internal/replication"
	"quarry/internal/server"
	"quarry/internal/shard"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xrq"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sf := flag.Float64("sf", 10, "micro-TPC-H scale factor")
	seed := flag.Int64("seed", 42, "data generator seed")
	store := flag.String("store", "", "metadata repository directory (empty: in-memory)")
	dataDir := flag.String("data-dir", "", "disk-backed warehouse directory (empty: in-memory); reopening recovers the committed tables and skips generation")
	compact := flag.Bool("compact", false, "compact the recovered warehouse before serving (merges delta segments; rewrites legacy format-1 segments into compressed format 2)")
	parallelism := flag.Int("parallelism", 0, "ETL engine worker pool size (0: GOMAXPROCS)")
	batchSize := flag.Int("batch-size", 0, "ETL engine rows per batch (0: engine default)")
	olapConc := flag.Int("olap-concurrency", 0, "max concurrent OLAP queries (0: 2×GOMAXPROCS)")
	olapCache := flag.Int("olap-cache", 256, "OLAP result cache capacity (negative disables)")
	sloTarget := flag.Duration("slo-target", 0, "latency SLO the admission controller defends: requests whose projected queue wait blows it are shed with 429 + Retry-After (0 disables shedding)")
	shedPolicy := flag.String("shed-policy", server.PolicyExpensiveFirst, "how to refuse work past the SLO: expensive-first (costly classes shed at lower backlog), fair (class-blind), off")
	defaultDeadline := flag.Duration("default-deadline", 0, "per-query deadline when the client sends no X-Quarry-Deadline header; expiry answers 504 (0: no server-side deadline)")
	matagg := flag.Bool("matagg", true, "materialize hot OLAP aggregates (adaptive, version-keyed)")
	mataggTopK := flag.Int("matagg-top-k", 8, "materialized aggregates kept per refresh")
	mataggBudget := flag.Int64("matagg-budget-bytes", 0, "byte budget for materialized aggregates; candidates admitted by benefit per byte (0: unlimited, benefit-ranked)")
	replicaOf := flag.String("replica-of", "", "primary base URL (e.g. http://primary:8080); start as a read replica of it")
	replicaDir := flag.String("replica-dir", "", "with -replica-of: ship segments by reading this shared directory (the primary's -data-dir) instead of the primary's HTTP replication endpoints")
	replicaInterval := flag.Duration("replica-interval", time.Second, "with -replica-of: how often to poll the primary for new commits")
	shards := flag.Int("shards", 0, "total shard count of a hash-partitioned warehouse (0: not sharded)")
	shardIndex := flag.Int("shard-index", 0, "this node's shard index in [0,shards)")
	flag.Parse()

	if err := server.ValidateShedPolicy(*shedPolicy); err != nil {
		log.Fatalf("quarryd: -shed-policy: %v", err)
	}

	shardSpec := shard.Spec{Index: *shardIndex, Count: *shards}
	if shardSpec.Enabled() {
		if err := shardSpec.Validate(); err != nil {
			log.Fatalf("quarryd: %v", err)
		}
		if *replicaOf != "" {
			log.Fatalf("quarryd: -shards and -replica-of are mutually exclusive (a shard owns a partition; a replica mirrors all of one node)")
		}
	}

	if *replicaOf != "" {
		runReplica(*addr, *dataDir, *replicaOf, *replicaDir, *replicaInterval, replicaConfig{
			store: *store, sf: *sf, parallelism: *parallelism, batchSize: *batchSize,
			olapConc: *olapConc, olapCache: *olapCache, matagg: *matagg, mataggTopK: *mataggTopK,
			mataggBudget: *mataggBudget,
			sloTarget:    *sloTarget, shedPolicy: *shedPolicy, defaultDeadline: *defaultDeadline,
		})
		return
	}

	onto, err := tpch.Ontology()
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	mapg, err := tpch.Mapping()
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	cat, err := tpch.Catalog(*sf)
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	var db *storage.DB
	if *dataDir != "" {
		if db, err = storage.Open(*dataDir); err != nil {
			log.Fatalf("quarryd: %v", err)
		}
	} else {
		db = storage.NewDB()
	}
	// A directory counts as recovered only when it holds committed
	// DATA, not just schema: a crash during a previous start's
	// generate/checkpoint window commits the (empty) tables before
	// their rows, and trusting table names alone would then serve an
	// empty warehouse forever. tpch.Generate replaces tables, so
	// regenerating over a schema-only directory is safe.
	if li, ok := db.Table("lineitem"); ok && li.NumRows() > 0 {
		log.Printf("quarryd: recovered %d tables at version %d from %s; skipping generation (-sf/-seed ignored: the warehouse keeps the scale it was generated at)",
			len(db.TableNames()), db.Version(), *dataDir)
		if *compact {
			if err := db.Compact(); err != nil {
				log.Fatalf("quarryd: compacting %s: %v", *dataDir, err)
			}
		}
	} else {
		if _, err := tpch.Generate(db, *sf, *seed); err != nil {
			log.Fatalf("quarryd: %v", err)
		}
		// Commit the generated sources so a restart recovers them
		// (no-op for the in-memory backend).
		if err := db.Checkpoint(); err != nil {
			log.Fatalf("quarryd: checkpointing %s: %v", *dataDir, err)
		}
	}
	topK := 0
	if *matagg {
		topK = *mataggTopK
	}
	p, err := core.New(core.Config{
		Ontology: onto, Mapping: mapg, Catalog: cat, DB: db, StoreDir: *store,
		Engine:            engine.Options{Parallelism: *parallelism, BatchSize: *batchSize},
		MatAggTopK:        topK,
		MatAggBudgetBytes: *mataggBudget,
		Shard:             shardSpec,
	})
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	srv := server.NewWithOptions(p, server.Options{
		OLAPConcurrency: *olapConc,
		OLAPCacheSize:   *olapCache,
		SLOTarget:       *sloTarget,
		ShedPolicy:      *shedPolicy,
		DefaultDeadline: *defaultDeadline,
	})
	if *sloTarget > 0 {
		log.Printf("quarryd: admission control on: SLO %s, policy %s", *sloTarget, *shedPolicy)
	}
	if shardSpec.Enabled() {
		log.Printf("quarryd: serving as shard %s of a hash-partitioned warehouse", shardSpec)
	}
	var lineitems int64
	if li, ok := db.Table("lineitem"); ok {
		lineitems = li.NumRows()
	}
	if stats := db.DiskStats(); stats != nil {
		segs, bytes := 0, int64(0)
		for _, st := range stats {
			segs += st.Segments
			bytes += st.Bytes
		}
		log.Printf("quarryd: disk footprint: %d tables, %d segments, %d bytes", len(stats), segs, bytes)
	}
	log.Printf("quarryd: micro-TPC-H ready (%d lineitems); listening on %s", lineitems, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("quarryd: %v", err)
	}
}

// replicaConfig carries the serving knobs a replica shares with a
// primary (engine sizing, OLAP concurrency/cache, matagg).
type replicaConfig struct {
	store           string
	sf              float64
	parallelism     int
	batchSize       int
	olapConc        int
	olapCache       int
	matagg          bool
	mataggTopK      int
	mataggBudget    int64
	sloTarget       time.Duration
	shedPolicy      string
	defaultDeadline time.Duration
}

// runReplica starts quarryd as a read replica: ship the primary's
// committed segments into dataDir, replay its requirement designs to
// rebuild the unified OLAP view, and serve reads from the local
// snapshot stack. The node never generates data, never deploys, and
// never runs ETL — every byte of warehouse state arrives through the
// manifest-shipping protocol, and every write endpoint answers 403.
func runReplica(addr, dataDir, primary, sharedDir string, interval time.Duration, cfg replicaConfig) {
	if dataDir == "" {
		log.Fatalf("quarryd: -replica-of requires -data-dir (replicas keep a local disk copy of the shipped segments)")
	}
	db, err := storage.Open(dataDir)
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	var src replication.Source
	if sharedDir != "" {
		src = &replication.DirSource{Dir: sharedDir}
	} else {
		src = &replication.HTTPSource{Base: primary}
	}
	syncer, err := replication.NewSyncer(db, src, primary)
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	ctx := context.Background()
	// Converge on the primary's current state before serving: first the
	// data (segments + manifest), then the designs. Both retry until the
	// primary is reachable — a replica is typically started while the
	// primary is still warming up.
	for {
		if _, err := syncer.Sync(ctx); err != nil {
			log.Printf("quarryd: initial sync from %s: %v (retrying)", primary, err)
			time.Sleep(interval)
			continue
		}
		break
	}
	onto, err := tpch.Ontology()
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	mapg, err := tpch.Mapping()
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	cat, err := tpch.Catalog(cfg.sf)
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	topK := 0
	if cfg.matagg {
		topK = cfg.mataggTopK
	}
	p, err := core.New(core.Config{
		Ontology: onto, Mapping: mapg, Catalog: cat, DB: db, StoreDir: cfg.store,
		Engine:            engine.Options{Parallelism: cfg.parallelism, BatchSize: cfg.batchSize},
		MatAggTopK:        topK,
		MatAggBudgetBytes: cfg.mataggBudget,
	})
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	for {
		if err := reconcileDesigns(ctx, p, primary); err != nil {
			log.Printf("quarryd: replaying designs from %s: %v (retrying)", primary, err)
			time.Sleep(interval)
			continue
		}
		break
	}
	srv := server.NewWithOptions(p, server.Options{
		OLAPConcurrency: cfg.olapConc,
		OLAPCacheSize:   cfg.olapCache,
		ReadOnly:        true,
		ReplicaStatus:   syncer.Status,
		SLOTarget:       cfg.sloTarget,
		ShedPolicy:      cfg.shedPolicy,
		DefaultDeadline: cfg.defaultDeadline,
	})
	srv.WarehouseChanged()
	go syncer.Tail(ctx, interval, func(rep replication.Report) {
		log.Printf("quarryd: synced to version %d (%d segments, %d bytes)",
			rep.ToVersion, rep.Segments, rep.Bytes)
		// Designs can change alongside data (a republish follows a
		// requirement change), so re-reconcile before invalidating the
		// serving caches at the new version.
		if err := reconcileDesigns(ctx, p, primary); err != nil {
			log.Printf("quarryd: replaying designs from %s: %v", primary, err)
		}
		srv.WarehouseChanged()
	})
	st := syncer.Status()
	log.Printf("quarryd: replica of %s ready at version %d (converged=%v); listening on %s",
		primary, st.LocalVersion, st.Converged, addr)
	if err := http.ListenAndServe(addr, srv.Handler()); err != nil {
		log.Fatalf("quarryd: %v", err)
	}
}

// reconcileDesigns makes the local requirement set equal to the
// primary's: fetch the primary's requirements (canonical xRQ, in
// registration order), add the missing, change the differing, and
// remove the ones the primary no longer has. Both sides' XML comes
// from xrq.Marshal, so string equality is design equality.
func reconcileDesigns(ctx context.Context, p *core.Platform, primary string) error {
	remote, err := replication.FetchRequirements(ctx, primary, nil)
	if err != nil {
		return err
	}
	localXML := make(map[string]string)
	for _, r := range p.Requirements() {
		s, err := xrq.Marshal(r)
		if err != nil {
			return err
		}
		localXML[r.ID] = s
	}
	remoteIDs := make(map[string]bool, len(remote))
	for _, rr := range remote {
		remoteIDs[rr.ID] = true
		cur, have := localXML[rr.ID]
		if have && cur == rr.XML {
			continue
		}
		req, err := xrq.Unmarshal(rr.XML)
		if err != nil {
			return fmt.Errorf("requirement %s: %w", rr.ID, err)
		}
		if !have {
			if _, err := p.AddRequirement(req); err != nil {
				return err
			}
		} else if _, err := p.ChangeRequirement(req); err != nil {
			return err
		}
	}
	for id := range localXML {
		if !remoteIDs[id] {
			if _, err := p.RemoveRequirement(id); err != nil {
				return err
			}
		}
	}
	return nil
}
