// Command quarryd serves the Quarry platform over HTTP: the RESTful
// service-oriented deployment of §2.6. By default it hosts a
// generated micro-TPC-H domain (the paper's demo setting).
//
// Usage:
//
//	quarryd [-addr :8080] [-sf 10] [-seed 42] [-store DIR]
//	        [-parallelism 0] [-batch-size 0]
//	        [-olap-concurrency 0] [-olap-cache 256]
//	        [-matagg] [-matagg-top-k 8]
package main

import (
	"flag"
	"log"
	"net/http"

	"quarry/internal/core"
	"quarry/internal/engine"
	"quarry/internal/server"
	"quarry/internal/storage"
	"quarry/internal/tpch"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sf := flag.Float64("sf", 10, "micro-TPC-H scale factor")
	seed := flag.Int64("seed", 42, "data generator seed")
	store := flag.String("store", "", "metadata repository directory (empty: in-memory)")
	parallelism := flag.Int("parallelism", 0, "ETL engine worker pool size (0: GOMAXPROCS)")
	batchSize := flag.Int("batch-size", 0, "ETL engine rows per batch (0: engine default)")
	olapConc := flag.Int("olap-concurrency", 0, "max concurrent OLAP queries (0: 2×GOMAXPROCS)")
	olapCache := flag.Int("olap-cache", 256, "OLAP result cache capacity (negative disables)")
	matagg := flag.Bool("matagg", true, "materialize hot OLAP aggregates (adaptive, version-keyed)")
	mataggTopK := flag.Int("matagg-top-k", 8, "materialized aggregates kept per refresh")
	flag.Parse()

	onto, err := tpch.Ontology()
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	mapg, err := tpch.Mapping()
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	cat, err := tpch.Catalog(*sf)
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	db := storage.NewDB()
	sizes, err := tpch.Generate(db, *sf, *seed)
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	topK := 0
	if *matagg {
		topK = *mataggTopK
	}
	p, err := core.New(core.Config{
		Ontology: onto, Mapping: mapg, Catalog: cat, DB: db, StoreDir: *store,
		Engine:     engine.Options{Parallelism: *parallelism, BatchSize: *batchSize},
		MatAggTopK: topK,
	})
	if err != nil {
		log.Fatalf("quarryd: %v", err)
	}
	srv := server.NewWithOptions(p, server.Options{
		OLAPConcurrency: *olapConc,
		OLAPCacheSize:   *olapCache,
	})
	log.Printf("quarryd: micro-TPC-H ready (%d lineitems); listening on %s", sizes.Lineitem, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("quarryd: %v", err)
	}
}
