// Command quarryrouter is the scatter front of a distributed Quarry
// deployment, in one of two modes:
//
// Replica mode (-replicas): fan /api/olap (and other reads) across a
// fleet of read replicas with health-checked round-robin, retrying a
// failed request on the next replica. Replicas answer byte-identically,
// so failover never changes an answer.
//
// Shard-gather mode (-shard-of): front a hash-partitioned warehouse.
// Each backend is one shard holding one partition of the fact tables
// (quarryd -shards N -shard-index I); a cube query is scattered to
// EVERY shard's partial-aggregate endpoint and the pre-finalisation
// states are merged into an answer byte-identical to a single node
// holding all rows. The order of -shard-of URLs is the topology:
// the i-th URL must be the shard running with -shard-index i (the
// merge verifies this and refuses miswired fleets). The gather never
// serves partial answers: a dead shard fails the query with 502, and
// epoch-skewed shards (a reload racing the query) cause a bounded
// rescatter, then 503.
//
// Both modes distinguish busy from dead. A backend answering 429 or
// 503 is shedding load, not failing: it stays in rotation (no
// demotion), its Retry-After is honored with jittered backoff, and
// retries stop at a per-query budget (-retry-budget / -busy-retries)
// so the router never amplifies the overload it is routing around.
// When every candidate is busy the router answers an aggregated 429
// with a Retry-After — "back off", never a 502 "outage".
//
// Usage:
//
//	quarryrouter -replicas http://r1:8081,http://r2:8082 [-addr :8090]
//	             [-health-interval 2s] [-retry-budget 2]
//	             [-max-retry-after 2s]
//	quarryrouter -shard-of http://s0:8080,http://s1:8081 [-addr :8090]
//	             [-shard-attempts 2] [-shard-skew-retries 2]
//	             [-shard-timeout 30s] [-busy-retries 1]
//	             [-max-retry-after 2s]
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"quarry/internal/router"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (replica mode)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "replica health probe cadence")
	shardOf := flag.String("shard-of", "", "comma-separated shard base URLs in shard-index order (shard-gather mode)")
	shardAttempts := flag.Int("shard-attempts", 2, "attempts per shard per scatter (transport errors and 5xx retry)")
	shardSkewRetries := flag.Int("shard-skew-retries", 2, "whole-scatter retries when shards answer at different epochs")
	shardTimeout := flag.Duration("shard-timeout", 30*time.Second, "per-request timeout towards one shard")
	retryBudget := flag.Int("retry-budget", 2, "replica mode: extra all-busy passes per query before answering 429 (0 disables busy retries)")
	busyRetries := flag.Int("busy-retries", 1, "shard-gather mode: whole-scatter retries while some (not all) shards answer busy")
	maxRetryAfter := flag.Duration("max-retry-after", 2*time.Second, "cap on backend Retry-After suggestions used for backoff")
	flag.Parse()

	if *shardOf != "" && *replicas != "" {
		log.Fatalf("quarryrouter: -replicas and -shard-of are mutually exclusive")
	}
	if *shardOf != "" {
		urls := splitURLs(*shardOf)
		g, err := router.NewShardGatherWithOptions(urls, &http.Client{Timeout: *shardTimeout}, router.GatherOptions{
			Attempts:      *shardAttempts,
			SkewRetries:   *shardSkewRetries,
			BusyRetries:   *busyRetries,
			MaxRetryAfter: *maxRetryAfter,
		})
		if err != nil {
			log.Fatalf("quarryrouter: %v", err)
		}
		log.Printf("quarryrouter: gathering over %d shards; listening on %s", len(urls), *addr)
		if err := http.ListenAndServe(*addr, g.Handler()); err != nil {
			log.Fatalf("quarryrouter: %v", err)
		}
		return
	}

	urls := splitURLs(*replicas)
	budget := *retryBudget
	if budget <= 0 {
		budget = -1 // Options treats 0 as "default"; the flag's 0 means off.
	}
	rt, err := router.NewWithOptions(urls, nil, router.Options{
		RetryBudget:   budget,
		MaxRetryAfter: *maxRetryAfter,
	})
	if err != nil {
		log.Fatalf("quarryrouter: %v (use -replicas or -shard-of)", err)
	}
	go rt.HealthLoop(context.Background(), *healthInterval)
	log.Printf("quarryrouter: scattering over %d replicas; listening on %s", len(urls), *addr)
	if err := http.ListenAndServe(*addr, rt.Handler()); err != nil {
		log.Fatalf("quarryrouter: %v", err)
	}
}

func splitURLs(csv string) []string {
	var urls []string
	for _, u := range strings.Split(csv, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}
