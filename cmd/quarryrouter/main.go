// Command quarryrouter is the scatter front of a replicated Quarry
// deployment: it fans /api/olap (and other reads) across a fleet of
// read replicas with health-checked round-robin, retrying a failed
// request on the next replica. Replicas answer byte-identically, so
// failover never changes an answer.
//
// Usage:
//
//	quarryrouter -replicas http://r1:8081,http://r2:8082 [-addr :8090]
//	             [-health-interval 2s]
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"quarry/internal/router"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "replica health probe cadence")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	rt, err := router.New(urls, nil)
	if err != nil {
		log.Fatalf("quarryrouter: %v (use -replicas)", err)
	}
	go rt.HealthLoop(context.Background(), *healthInterval)
	log.Printf("quarryrouter: scattering over %d replicas; listening on %s", len(urls), *addr)
	if err := http.ListenAndServe(*addr, rt.Handler()); err != nil {
		log.Fatalf("quarryrouter: %v", err)
	}
}
