package quarry_test

// End-to-end acceptance test for the disk backend: a TPC-H SF 5
// warehouse loaded on disk answers OLAP queries byte-identically to
// the in-memory run, and keeps doing so after a process "restart"
// (reopening the data directory cold, with no re-generation and no
// re-run of the ETL).

import (
	"reflect"
	"testing"

	"quarry"
	"quarry/internal/olap"
	"quarry/internal/tpch"
)

// restartQueries is a small OLAP workload covering plain group-bys,
// roll-ups, filters and a dice.
func restartQueries() []olap.CubeQuery {
	return []olap.CubeQuery{
		{
			Fact:    "fact_table_revenue",
			GroupBy: []string{"p_brand"},
			RollUp:  map[string]string{"Supplier": "Nation"},
			Measures: []olap.MeasureSpec{
				{Out: "total", Func: "SUM", Col: "revenue"},
				{Out: "n", Func: "COUNT", Col: ""},
			},
		},
		{
			Fact:    "fact_table_revenue",
			GroupBy: []string{"s_name"},
			Filter:  "p_retailprice > 950",
			Measures: []olap.MeasureSpec{
				{Out: "avg_rev", Func: "AVG", Col: "revenue"},
				{Out: "max_type", Func: "MAX", Col: "p_type"},
			},
		},
		{
			Fact:     "fact_table_revenue",
			GroupBy:  []string{"n_name"},
			Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
			Dice:     &olap.DiceSpec{Func: "COUNT", Thresholds: map[string]float64{"n_name": 3}},
		},
	}
}

func buildPlatform(t *testing.T, db *quarry.DB) *quarry.Platform {
	t.Helper()
	onto, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	mapg, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := tpch.Catalog(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := quarry.New(quarry.Config{Ontology: onto, Mapping: mapg, Catalog: cat, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(quarry.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	return p
}

// answers runs the workload on both executors (vectorized fast path
// and star-flow oracle), asserting they agree with each other, and
// returns the results.
func answers(t *testing.T, p *quarry.Platform, label string) []*olap.Result {
	t.Helper()
	oe, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	var out []*olap.Result
	for i, q := range restartQueries() {
		fast, err := oe.Query(q)
		if err != nil {
			t.Fatalf("%s: query %d fast path: %v", label, i, err)
		}
		oracle, err := oe.QueryStarFlow(q)
		if err != nil {
			t.Fatalf("%s: query %d oracle: %v", label, i, err)
		}
		// The answer-source tag names which executor produced the rows,
		// so it differs between the two by construction; identity is
		// about the data, not the path that computed it.
		fastData, oracleData := *fast, *oracle
		fastData.Class, oracleData.Class = "", ""
		if !reflect.DeepEqual(fastData, oracleData) {
			t.Fatalf("%s: query %d fast path and oracle disagree", label, i)
		}
		out = append(out, fast)
	}
	return out
}

func TestDiskRestartByteIdenticalToMemory(t *testing.T) {
	// Oracle run: the in-memory backend end to end.
	memDB := quarry.NewMemDB()
	if _, err := tpch.Generate(memDB, 5, 42); err != nil {
		t.Fatal(err)
	}
	memP := buildPlatform(t, memDB)
	if _, err := memP.Run(); err != nil {
		t.Fatal(err)
	}
	want := answers(t, memP, "memory")

	// Same load on the disk backend.
	dir := t.TempDir()
	db, err := quarry.OpenDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpch.Generate(db, 5, 42); err != nil {
		t.Fatal(err)
	}
	diskP := buildPlatform(t, db)
	if _, err := diskP.Run(); err != nil {
		t.Fatal(err)
	}
	got := answers(t, diskP, "disk")
	if !reflect.DeepEqual(got, want) {
		t.Fatal("disk-backed OLAP answers differ from the in-memory run")
	}

	// "Restart": reopen the directory cold. No generation, no Run —
	// sources and the deployed fact/dimension tables must all be
	// recovered from the manifest.
	reDB, err := quarry.OpenDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reDB.Version() != db.Version() {
		t.Fatalf("reopened version %d, want %d", reDB.Version(), db.Version())
	}
	reP := buildPlatform(t, reDB)
	reGot := answers(t, reP, "reopened")
	if !reflect.DeepEqual(reGot, want) {
		t.Fatal("OLAP answers after restart differ from the in-memory run")
	}
}
