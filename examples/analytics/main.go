// analytics demonstrates the consumption side of the lifecycle: after
// Quarry deploys and populates the warehouse, analytical questions
// are answered from the pre-aggregated fact tables (orders of
// magnitude faster than recomputing from the raw sources — the §1
// motivation for the DW), and the unified ETL process is exported in
// the metadata layer's external notations (SQL, Apache PigLatin) for
// engines Quarry does not run natively.
package main

import (
	"fmt"
	"log"
	"time"

	"quarry"
	"quarry/internal/engine"
	"quarry/internal/olap"
)

func main() {
	p, _, err := quarry.NewTPCHPlatform(20, 42)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.AddRequirement(quarry.RevenueRequirement()); err != nil {
		log.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		log.Fatal(err)
	}

	// Ask the warehouse: total and average revenue per part brand.
	oe, err := p.OLAP()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := oe.Query(olap.CubeQuery{
		Fact:    "fact_table_revenue",
		GroupBy: []string{"p_brand"},
		Measures: []olap.MeasureSpec{
			{Out: "total", Func: "SUM", Col: "revenue"},
			{Out: "avg", Func: "AVG", Col: "revenue"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	dwLatency := time.Since(start)
	fmt.Printf("%-10s %14s %14s\n", "brand", "total", "avg")
	for i, row := range res.Rows {
		if i == 5 {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-5)
			break
		}
		total, _ := row[1].AsFloat()
		avg, _ := row[2].AsFloat()
		fmt.Printf("%-10s %14.2f %14.2f\n", row[0].AsString(), total, avg)
	}

	// The same answer recomputed from the raw sources = re-running
	// the whole ETL flow.
	rev, _ := p.Partial("IR_revenue")
	start = time.Now()
	if _, err := engine.Run(rev.ETL, p.DB()); err != nil {
		log.Fatal(err)
	}
	rawLatency := time.Since(start)
	fmt.Printf("\nanswer from DW: %v; recomputing from sources: %v (%.0fx slower)\n",
		dwLatency, rawLatency, float64(rawLatency)/float64(dwLatency))

	// Export the ETL process for external engines.
	for _, notation := range []string{"sql", "pig"} {
		text, err := p.ExportFlow(notation)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s export: %d bytes; first line: %.70s...\n",
			notation, len(text), firstLine(text))
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
