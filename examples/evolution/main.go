// evolution demonstrates the paper's second scenario — accommodating
// a DW design to changes: new requirements are posed, existing ones
// change or are removed, and Quarry incrementally re-derives an
// optimal unified design, tracking the quality factors (structural MD
// complexity and estimated ETL cost) after every change.
package main

import (
	"fmt"
	"log"

	"quarry"
)

func main() {
	p, _, err := quarry.NewTPCHPlatform(10, 42)
	if err != nil {
		log.Fatal(err)
	}
	report := func(event string) {
		md, etl := p.Unified()
		cost, _ := p.EstimatedETLCost()
		sat := "satisfied"
		if err := p.CheckSatisfiability(); err != nil {
			sat = "BROKEN: " + err.Error()
		}
		facts, dims, ops := 0, 0, 0
		if md != nil {
			facts, dims = len(md.Facts), len(md.Dimensions)
		}
		if etl != nil {
			ops = len(etl.Nodes())
		}
		fmt.Printf("%-46s facts=%d dims=%d etl_ops=%-3d est_cost=%-8.0f requirements %s\n",
			event, facts, dims, ops, cost, sat)
	}

	// Phase 1: the business poses four requirements over time.
	for _, r := range quarry.CanonicalRequirements() {
		if _, err := p.AddRequirement(r); err != nil {
			log.Fatal(err)
		}
		report("added " + r.ID + ":")
	}

	// Phase 2: the business changes its mind — the revenue analysis
	// must slice on France instead of Spain.
	changed := quarry.RevenueRequirement()
	changed.Slicers[0].Value = "FRANCE"
	if _, err := p.ChangeRequirement(changed); err != nil {
		log.Fatal(err)
	}
	report("changed IR_revenue (SPAIN → FRANCE):")

	// Phase 3: the quantity analysis is retired.
	if _, err := p.RemoveRequirement("IR_quantity_market"); err != nil {
		log.Fatal(err)
	}
	report("removed IR_quantity_market:")

	// Phase 4: a brand-new requirement arrives; integration reuses
	// the existing conformed dimensions.
	extra := quarry.GenerateRequirements(8)[2]
	if _, err := p.AddRequirement(extra); err != nil {
		log.Fatal(err)
	}
	report("added " + extra.ID + ":")

	// The final design still answers every active requirement.
	if err := p.CheckSatisfiability(); err != nil {
		log.Fatalf("final design unsatisfiable: %v", err)
	}
	fmt.Println("\nall active requirements remain satisfied after every change")
}
