// exploration demonstrates the paper's first scenario from the
// non-expert user's perspective: assisted data exploration with the
// Requirements Elicitor. The user searches the business vocabulary,
// picks an analysis focus, reviews the automatically suggested
// analytical perspectives (Figure 2), accepts some of them, and the
// assembled requirement flows through the whole lifecycle.
package main

import (
	"fmt"
	"log"

	"quarry"
)

func main() {
	p, _, err := quarry.NewTPCHPlatform(5, 42)
	if err != nil {
		log.Fatal(err)
	}
	e := p.Elicitor()

	// "What can I analyse about prices?"
	fmt.Println("vocabulary search for 'price':")
	for _, hit := range e.Search("price") {
		fmt.Printf("  %s\n", hit)
	}

	// The system ranks analysis foci; Lineitem wins.
	foci := e.SuggestFoci()
	fmt.Println("\ntop analysis foci:")
	for _, f := range foci[:3] {
		fmt.Printf("  %-10s score=%.1f (measures=%d, dimension candidates=%d)\n",
			f.Concept, f.Score, f.Measures, f.Dimensions)
	}
	focus := foci[0].Concept

	// Suggestions for the chosen focus (the paper's example: focus
	// Lineitem → suggested Supplier, Nation, Part ...).
	sg, err := e.Suggest(focus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsuggested perspectives for %s:\n", focus)
	for _, d := range sg.Dimensions {
		fmt.Printf("  dimension %-10s (distance %d): %v\n", d.Concept, d.Distance, d.Attributes)
	}
	fmt.Println("suggested measures:")
	for _, m := range sg.Measures {
		fmt.Printf("  %s (%s)\n", m.Attribute, m.Type)
	}

	// The user accepts: quantity by part brand and supplier nation,
	// only for discounted items.
	r, err := e.NewRequirement("IR_explored", "discounted quantity by brand and nation").
		AddMeasure("quantity", "Lineitem.l_quantity").
		AddDimension("Part.p_brand").
		AddDimension("Nation.n_name").
		AddSlicer("Lineitem.l_discount", ">", "0").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nassembled requirement %s validates against the ontology\n", r.ID)

	// Straight through the lifecycle.
	if _, err := p.AddRequirement(r); err != nil {
		log.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed and executed: fact_table_quantity holds %d rows\n",
		res.Loaded["fact_table_quantity"])
}
