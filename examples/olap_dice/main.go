// olap_dice walks through the OLAP serving layer over the TPC-H data
// warehouse: the vectorized fast path versus the star-flow oracle,
// roll-up navigation along the xMD Supplier hierarchy
// (Supplier → Nation → Region), and diamond dicing — iteratively
// pruning attribute values whose carat (aggregate mass) falls below a
// threshold until the remaining "diamond" subcube is stable (Webb,
// Kaser, Lemire).
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"quarry"
)

func main() {
	p, _, err := quarry.NewTPCHPlatform(20, 42)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.AddRequirement(quarry.RevenueRequirement()); err != nil {
		log.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		log.Fatal(err)
	}
	oe, err := p.OLAP()
	if err != nil {
		log.Fatal(err)
	}

	// Revenue per supplier, at the base level of the Supplier
	// dimension.
	q := quarry.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"s_name"},
		Measures: []quarry.OLAPMeasure{{Out: "total", Func: "SUM", Col: "revenue"}},
	}
	levels, err := oe.Levels("Supplier")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Supplier hierarchy: %s\n\n", strings.Join(levels, " → "))

	// Walk the hierarchy with RollUp: supplier → nation → region.
	for {
		start := time.Now()
		res, err := oe.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("group by %v: %d groups in %v (fast path)\n", res.Columns[:1], len(res.Rows), time.Since(start))
		show(res, 3)
		next, err := oe.RollUp(q, "Supplier")
		if err != nil {
			break // coarsest level reached
		}
		q = next
		// Rolled-up queries group by the level key alone.
		q.GroupBy = nil
	}

	// The oracle returns byte-identical answers through the full
	// engine (compiled star flow in a scratch DB).
	start := time.Now()
	if _, err := oe.QueryStarFlow(q); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstar-flow oracle answered the same query in %v\n", time.Since(start))

	// Diamond dice: keep only (brand, supplier) cells where every
	// surviving brand carries >= 4 detail rows and every surviving
	// supplier >= 40 — pruned iteratively to a fixpoint.
	diced, err := oe.Query(quarry.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"p_brand", "s_name"},
		Measures: []quarry.OLAPMeasure{{Out: "total", Func: "SUM", Col: "revenue"}},
		Dice: &quarry.DiceSpec{
			Func:       "COUNT",
			Thresholds: map[string]float64{"p_brand": 4, "s_name": 40},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiamond dice (brand carat ≥ 4 rows, supplier carat ≥ 40 rows): %d cells survive\n", len(diced.Rows))
	show(diced, 5)
}

func show(res *quarry.OLAPResult, n int) {
	for i, row := range res.Rows {
		if i >= n {
			fmt.Printf("  … %d more\n", len(res.Rows)-n)
			return
		}
		var vals []string
		for _, v := range row {
			vals = append(vals, strings.Trim(v.String(), "'"))
		}
		fmt.Printf("  %s\n", strings.Join(vals, " | "))
	}
}
