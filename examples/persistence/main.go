// persistence demonstrates the paged disk-backed warehouse: a data
// directory is loaded once (micro-TPC-H sources + a deployed fact
// table), then reopened as a fresh process would after a restart —
// recovering the committed tables from the manifest without
// regenerating or re-running anything — and the OLAP answers before
// and after the "restart" are compared byte for byte.
//
//	go run ./examples/persistence [-dir ./warehouse]
package main

import (
	"flag"
	"fmt"
	"log"
	"reflect"

	"quarry"
	"quarry/internal/tpch"
)

func main() {
	dir := flag.String("dir", "warehouse", "data directory for the disk-backed warehouse")
	flag.Parse()

	// First open: generate sources and run the ETL only when the
	// directory is fresh (invoking this program again reuses it).
	db, err := quarry.OpenDB(*dir)
	if err != nil {
		log.Fatal(err)
	}
	// "Loaded" means committed DATA, not just schema: a kill during a
	// previous invocation's load can leave empty tables in the
	// manifest, and both Generate (replace-mode tables) and Run
	// (staged publish) are safe to repeat over them.
	fact, ok := db.Table("fact_table_revenue")
	if !ok || fact.NumRows() == 0 {
		fmt.Printf("fresh directory %s: generating micro-TPC-H and running the ETL\n", *dir)
		if _, err := tpch.Generate(db, 5, 42); err != nil {
			log.Fatal(err)
		}
		res, err := platformOver(db).Run() // the run's commit makes everything durable
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d rows across %d tables (warehouse version %d)\n\n",
			res.TotalLoaded(), len(res.Loaded), db.Version())
	} else {
		fmt.Printf("reusing %s: %d tables at version %d\n\n", *dir, len(db.TableNames()), db.Version())
	}
	before := query(db)
	fmt.Printf("revenue by nation (%d groups) served from the open process\n", len(before.Rows))

	// "Restart": reopen the directory cold. Recovery rehydrates the
	// manifest's committed tables — sources and the deployed fact
	// table — so the same query is answerable with no run.
	reopened, err := quarry.OpenDB(*dir)
	if err != nil {
		log.Fatal(err)
	}
	after := query(reopened)
	if !reflect.DeepEqual(before, after) {
		log.Fatal("answers diverged across restart")
	}
	fmt.Printf("reopened at version %d: answers byte-identical across restart\n", reopened.Version())
	for i, row := range after.Rows {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %v\n", row)
	}
}

// platformOver builds the TPC-H platform over an existing database
// and registers the revenue requirement.
func platformOver(db *quarry.DB) *quarry.Platform {
	onto, err := tpch.Ontology()
	if err != nil {
		log.Fatal(err)
	}
	mapg, err := tpch.Mapping()
	if err != nil {
		log.Fatal(err)
	}
	cat, err := tpch.Catalog(5)
	if err != nil {
		log.Fatal(err)
	}
	p, err := quarry.New(quarry.Config{Ontology: onto, Mapping: mapg, Catalog: cat, DB: db})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.AddRequirement(quarry.RevenueRequirement()); err != nil {
		log.Fatal(err)
	}
	return p
}

func query(db *quarry.DB) *quarry.OLAPResult {
	oe, err := platformOver(db).OLAP()
	if err != nil {
		log.Fatal(err)
	}
	res, err := oe.Query(quarry.CubeQuery{
		Fact:   "fact_table_revenue",
		RollUp: map[string]string{"Supplier": "Nation"},
		Measures: []quarry.OLAPMeasure{
			{Out: "total_revenue", Func: "SUM", Col: "revenue"},
			{Out: "line_count", Func: "COUNT", Col: ""},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
