// Quickstart: the minimal Quarry lifecycle — one information
// requirement in, a deployed and populated data warehouse out.
package main

import (
	"fmt"
	"log"

	"quarry"
)

func main() {
	// A platform over a generated micro-TPC-H instance (SF 5).
	p, db, err := quarry.NewTPCHPlatform(5, 42)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Figure 4 requirement: average revenue per part and
	// supplier, for parts ordered from Spain.
	rep, err := p.AddRequirement(quarry.RevenueRequirement())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreted + integrated %s: %d ETL operations generated\n",
		rep.RequirementID, rep.ETL.Added)

	// Deployment artifacts: PostgreSQL DDL and a Pentaho PDI .ktr.
	dep, err := p.Deploy("demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment produces %d tables; DDL is %d bytes, PDI %d bytes\n",
		len(dep.Tables), len(dep.DDL), len(dep.PDI))

	// Execute the unified ETL natively to populate the DW.
	res, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows into fact_table_revenue\n", res.Loaded["fact_table_revenue"])

	// The warehouse is ordinary tables in the embedded store.
	fact, _ := db.Table("fact_table_revenue")
	fmt.Printf("fact table now holds %d rows with columns %v\n",
		fact.NumRows(), fact.Columns)
}
