// tpch_dw reproduces the paper's Figure 3 end to end: the revenue and
// net-profit requirements are interpreted into partial designs,
// incrementally integrated into a unified constellation with
// conformed dimensions and a consolidated ETL flow, deployed
// (PostgreSQL DDL + Pentaho PDI), and executed natively — showing the
// reduced overall execution effort of the integrated flow.
package main

import (
	"fmt"
	"log"
	"sort"

	"quarry"
)

func main() {
	p, _, err := quarry.NewTPCHPlatform(20, 42)
	if err != nil {
		log.Fatal(err)
	}

	// IR1: revenue per part and supplier, from Spain (Figure 4).
	rep1, err := p.AddRequirement(quarry.RevenueRequirement())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IR_revenue:   %d operations generated\n", rep1.ETL.Added)

	// IR2: net profit — the Design Integrator matches facts and
	// dimensions and maximises ETL reuse (Figure 3's MD Int. + ETL
	// Int. step).
	rep2, err := p.AddRequirement(quarry.NetProfitRequirement())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IR_netprofit: %d operations reused, %d added (reuse ratio %.0f%%)\n",
		rep2.ETL.Reused, rep2.ETL.Added, 100*rep2.ETL.ReuseRatio())
	fmt.Printf("              MD matches: facts=%d dimensions=%d\n",
		len(rep2.MD.MatchedFacts), len(rep2.MD.MatchedDimensions))

	md, etl := p.Unified()
	fmt.Printf("\nunified MD schema: %d facts, %d dimensions, conformed: %v\n",
		len(md.Facts), len(md.Dimensions), md.SharedDimensions())
	fmt.Printf("unified ETL flow:  %d operations, %d edges\n\n", len(etl.Nodes()), len(etl.Edges()))

	// Deployment: the two artifacts of Figure 3's right-hand side.
	dep, err := p.Deploy("demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- PostgreSQL DDL (excerpt) ---")
	printHead(dep.DDL, 16)
	fmt.Println("--- Pentaho PDI .ktr (excerpt) ---")
	printHead(dep.PDI, 12)

	// Native execution: integrated vs separate flows.
	integrated, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}
	separate, err := p.RunSeparately()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- execution (native engine) ---")
	var tables []string
	for t := range integrated.Loaded {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		fmt.Printf("  %-22s %7d rows\n", t, integrated.Loaded[t])
	}
	fmt.Printf("\nintegrated flow processed %d rows in %v\n",
		integrated.RowsProcessed(), integrated.Elapsed)
	fmt.Printf("separate flows processed  %d rows in %v\n",
		separate.RowsProcessed(), separate.Elapsed)
	fmt.Printf("work reduction: %.2fx fewer rows processed\n",
		float64(separate.RowsProcessed())/float64(integrated.RowsProcessed()))
}

func printHead(s string, lines int) {
	n := 0
	start := 0
	for i := 0; i < len(s) && n < lines; i++ {
		if s[i] == '\n' {
			fmt.Println(s[start:i])
			start = i + 1
			n++
		}
	}
	fmt.Println("  ...")
}
