module quarry

go 1.24
