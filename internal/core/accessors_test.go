package core

import (
	"strings"
	"testing"

	"quarry/internal/olap"
	"quarry/internal/tpch"
)

func TestAccessors(t *testing.T) {
	p := newPlatform(t, 1)
	if p.Elicitor() == nil || p.DB() == nil || p.Repository() == nil {
		t.Fatal("nil component accessor")
	}
	// Empty-platform behaviour.
	if cost, err := p.EstimatedETLCost(); err != nil || cost != 0 {
		t.Errorf("empty cost = %v, %v", cost, err)
	}
	if _, ok := p.Partial("ghost"); ok {
		t.Error("phantom partial")
	}
	if _, err := p.ExportFlow("sql"); err == nil {
		t.Error("export with no design succeeded")
	}
	if _, err := p.RunSeparately(); err != nil {
		t.Errorf("empty RunSeparately should no-op: %v", err)
	}
}

func TestRunWithoutDB(t *testing.T) {
	o, _ := tpch.Ontology()
	m, _ := tpch.Mapping()
	c, _ := tpch.Catalog(1)
	p, err := New(Config{Ontology: o, Mapping: m, Catalog: c}) // no DB
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err == nil {
		t.Error("Run without DB succeeded")
	}
	if _, err := p.RunSeparately(); err == nil {
		t.Error("RunSeparately without DB succeeded")
	}
	// Deploy works without a DB (artifacts only).
	if _, err := p.Deploy("demo"); err != nil {
		t.Errorf("Deploy without DB: %v", err)
	}
}

func TestExportFlowNotations(t *testing.T) {
	p := newPlatform(t, 1)
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	sql, err := p.ExportFlow("sql")
	if err != nil || !strings.Contains(sql, "INSERT INTO") {
		t.Errorf("sql export: %v", err)
	}
	pig, err := p.ExportFlow("pig")
	if err != nil || !strings.Contains(pig, "STORE") {
		t.Errorf("pig export: %v", err)
	}
	dot, err := p.ExportFlow("dot")
	if err != nil || !strings.Contains(dot, "digraph") {
		t.Errorf("dot export: %v", err)
	}
	if _, err := p.ExportFlow("cobol"); err == nil {
		t.Error("unknown notation exported")
	}
}

func TestDeploymentIncludesFlowExports(t *testing.T) {
	p := newPlatform(t, 1)
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	dep, err := p.Deploy("demo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dep.FlowSQL, "INSERT INTO") {
		t.Error("FlowSQL missing")
	}
	if !strings.Contains(dep.PigLatin, "LOAD") {
		t.Error("PigLatin missing")
	}
}

func TestOLAPThroughPlatform(t *testing.T) {
	p := newPlatform(t, 2)
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	oe, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	res, err := oe.Query(olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"r_name"},
		Measures: []olap.MeasureSpec{{Out: "t", Func: "SUM", Col: "revenue"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("no answer rows")
	}
}
