// Package core wires Quarry's components into the end-to-end platform
// of the paper's Figure 1: Requirements Elicitor → Requirements
// Interpreter → Design Integrator (MD + ETL) → Design Deployer, all
// communicating through the metadata repository.
//
// The Platform owns the DW design lifecycle: requirements are added,
// changed or removed; each change re-derives validated partial
// designs, incrementally integrates them into the unified design
// solutions, re-checks soundness (MD integrity constraints) and
// satisfiability (every registered requirement is still answerable),
// and keeps the repository current. Deployment produces the
// platform-specific artifacts (PostgreSQL DDL, Pentaho PDI .ktr) and
// can execute the unified ETL natively to populate the deployed DW.
package core

import (
	"fmt"
	"sort"
	"sync"

	"quarry/internal/elicitor"
	"quarry/internal/engine"
	"quarry/internal/etlintegrator"
	"quarry/internal/export"
	"quarry/internal/interpreter"
	"quarry/internal/mapping"
	"quarry/internal/mdintegrator"
	"quarry/internal/olap"
	"quarry/internal/ontology"
	"quarry/internal/pdi"
	"quarry/internal/quality"
	"quarry/internal/repo"
	"quarry/internal/shard"
	"quarry/internal/sources"
	"quarry/internal/sqlgen"
	"quarry/internal/storage"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
	"quarry/internal/xrq"
)

// Config assembles a Platform.
type Config struct {
	// Ontology, Mapping and Catalog describe the source domain; all
	// three are required.
	Ontology *ontology.Ontology
	Mapping  *mapping.Mapping
	Catalog  *sources.Catalog
	// DB is the execution platform holding source data and receiving
	// the deployed DW tables; optional (required only for Run).
	DB *storage.DB
	// StorageDir opens a paged, disk-backed execution platform rooted
	// at the given directory (storage.Open) when DB is nil: warehouse
	// tables survive process restarts, every ETL run commits
	// crash-safely, and reopening recovers the last committed version.
	// Ignored when DB is set; empty with a nil DB leaves the platform
	// without an execution database.
	StorageDir string
	// StoreDir persists the metadata repository; empty keeps it in
	// memory.
	StoreDir string
	// MDCost / ETLCost override the default quality factors.
	MDCost  quality.MDCostModel
	ETLCost quality.ETLCostModel
	// Resolver overrides the end-user feedback hook (default:
	// auto-approve).
	Resolver mdintegrator.Resolver
	// DisableReordering turns off the ETL integrator's
	// equivalence-rule alignment (ablation).
	DisableReordering bool
	// Engine tunes native ETL execution (DAG parallelism, batch
	// size); the zero value uses the engine defaults (GOMAXPROCS
	// workers, 1024-row batches).
	Engine engine.Options
	// MatAggTopK enables the OLAP materialized-aggregate store (plus
	// the per-dimension build-side cache), materializing up to K hot
	// aggregates per refresh; 0 disables the subsystem. See
	// internal/olap/matagg.go.
	MatAggTopK int
	// MatAggBudgetBytes caps the estimated in-memory footprint of the
	// installed aggregates; candidates are then admitted by benefit
	// per byte instead of plain benefit. 0 means unlimited.
	MatAggBudgetBytes int64
	// Shard, when enabled (Count > 0), makes this platform one shard of
	// an N-way hash-partitioned warehouse: ETL runs keep only the fact
	// rows this shard owns (dimensions load in full), and the serving
	// layer answers partial-aggregate queries for the gather router.
	// See internal/shard.
	Shard shard.Spec
}

// Platform is the running Quarry instance.
type Platform struct {
	onto *ontology.Ontology
	mapg *mapping.Mapping
	cat  *sources.Catalog
	db   *storage.DB

	elic       *elicitor.Elicitor
	interp     *interpreter.Interpreter
	mdInt      *mdintegrator.Integrator
	etlInt     *etlintegrator.Integrator
	repo       *repo.Designs
	etlCost    quality.ETLCostModel
	engineOpts engine.Options
	shardSpec  shard.Spec

	mu         sync.Mutex
	order      []string // requirement ids in registration order
	reqs       map[string]*xrq.Requirement
	partials   map[string]*interpreter.PartialDesign
	unifiedMD  *xmd.Schema
	unifiedETL *xlm.Design
	// olapEng is the lazily-built OLAP engine over the current unified
	// design; it is immutable (built from clones) and shared by every
	// concurrent query until a design change invalidates it.
	olapEng *olap.Engine
	// matAgg outlives engine rebuilds (entries are DB-version-keyed);
	// design changes invalidate it wholesale. Nil when disabled.
	matAgg *olap.MatAgg
}

// New builds a Platform from the configuration.
func New(cfg Config) (*Platform, error) {
	if cfg.Ontology == nil || cfg.Mapping == nil || cfg.Catalog == nil {
		return nil, fmt.Errorf("core: ontology, mapping and catalog are required")
	}
	if cfg.Shard.Enabled() {
		if err := cfg.Shard.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	interp, err := interpreter.New(cfg.Ontology, cfg.Mapping, cfg.Catalog)
	if err != nil {
		return nil, err
	}
	db := cfg.DB
	if db == nil && cfg.StorageDir != "" {
		if db, err = storage.Open(cfg.StorageDir); err != nil {
			return nil, fmt.Errorf("core: opening warehouse at %s: %w", cfg.StorageDir, err)
		}
	}
	store, err := repo.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	etlCost := cfg.ETLCost
	if etlCost == nil {
		etlCost = quality.DefaultETLCost(cfg.Catalog)
	}
	p := &Platform{
		onto:       cfg.Ontology,
		mapg:       cfg.Mapping,
		cat:        cfg.Catalog,
		db:         db,
		elic:       elicitor.New(cfg.Ontology, cfg.Mapping),
		interp:     interp,
		mdInt:      mdintegrator.New(cfg.MDCost, cfg.Resolver),
		etlInt:     etlintegrator.New(etlCost, !cfg.DisableReordering),
		repo:       repo.NewDesigns(store),
		etlCost:    etlCost,
		engineOpts: cfg.Engine,
		shardSpec:  cfg.Shard,
		reqs:       map[string]*xrq.Requirement{},
		partials:   map[string]*interpreter.PartialDesign{},
	}
	if cfg.MatAggTopK > 0 {
		p.matAgg = olap.NewMatAggBudget(cfg.MatAggTopK, cfg.MatAggBudgetBytes)
	}
	// A persistent repository may already hold a lifecycle; restore
	// it so the platform resumes where the previous session stopped.
	if cfg.StoreDir != "" {
		if err := p.restore(); err != nil {
			return nil, fmt.Errorf("core: restoring lifecycle from %s: %w", cfg.StoreDir, err)
		}
	}
	return p, nil
}

// restore reloads registered requirements from the repository,
// re-interprets them and re-derives the unified designs.
func (p *Platform) restore() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range p.repo.Requirements() {
		r, err := p.repo.Requirement(id)
		if err != nil {
			return err
		}
		pd, err := p.interp.Interpret(r)
		if err != nil {
			return err
		}
		p.reqs[id] = r
		p.partials[id] = pd
		p.order = append(p.order, id)
	}
	if len(p.order) == 0 {
		return nil
	}
	return p.rederiveLocked()
}

// Elicitor exposes the Requirements Elicitor backend.
func (p *Platform) Elicitor() *elicitor.Elicitor { return p.elic }

// Repository exposes the metadata repository.
func (p *Platform) Repository() *repo.Designs { return p.repo }

// DB exposes the execution platform.
func (p *Platform) DB() *storage.DB { return p.db }

// ChangeReport describes the effect of one lifecycle change.
type ChangeReport struct {
	RequirementID string
	// Rederived is true when the unified designs were rebuilt from
	// scratch (removal/change) rather than extended incrementally.
	Rederived bool
	MD        *mdintegrator.Report
	ETL       *etlintegrator.Report
}

// AddRequirement validates, interprets, stores and integrates a new
// information requirement; the unified designs grow incrementally.
func (p *Platform) AddRequirement(r *xrq.Requirement) (*ChangeReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r == nil {
		return nil, fmt.Errorf("core: nil requirement")
	}
	if _, dup := p.reqs[r.ID]; dup {
		return nil, fmt.Errorf("core: requirement %q already registered (use ChangeRequirement)", r.ID)
	}
	pd, err := p.interp.Interpret(r)
	if err != nil {
		return nil, err
	}
	newMD, mdRep, err := p.mdInt.Integrate(p.unifiedMD, pd.MD)
	if err != nil {
		return nil, err
	}
	newETL, etlRep, err := p.etlInt.Integrate(p.unifiedETL, pd.ETL)
	if err != nil {
		return nil, err
	}
	// Satisfiability of every requirement against the new design.
	if err := p.checkAllSatisfiedLocked(newMD, r); err != nil {
		return nil, err
	}
	// Commit.
	p.reqs[r.ID] = r.Clone()
	p.partials[r.ID] = pd
	p.order = append(p.order, r.ID)
	p.unifiedMD = newMD
	p.unifiedETL = newETL
	p.olapEng = nil
	p.matAgg.Invalidate()
	if err := p.persistLocked(r, pd); err != nil {
		return nil, err
	}
	return &ChangeReport{RequirementID: r.ID, MD: mdRep, ETL: etlRep}, nil
}

// RemoveRequirement drops a requirement and re-derives the unified
// designs from the remaining ones (the paper's "requirements might be
// changed or even removed from the analysis" scenario).
func (p *Platform) RemoveRequirement(id string) (*ChangeReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.reqs[id]; !ok {
		return nil, fmt.Errorf("core: requirement %q not registered", id)
	}
	delete(p.reqs, id)
	delete(p.partials, id)
	for i, oid := range p.order {
		if oid == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.repo.DeleteRequirement(id)
	if err := p.rederiveLocked(); err != nil {
		return nil, err
	}
	return &ChangeReport{RequirementID: id, Rederived: true}, nil
}

// ChangeRequirement replaces a registered requirement with a new
// version (same ID) and re-derives the unified designs.
func (p *Platform) ChangeRequirement(r *xrq.Requirement) (*ChangeReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r == nil {
		return nil, fmt.Errorf("core: nil requirement")
	}
	if _, ok := p.reqs[r.ID]; !ok {
		return nil, fmt.Errorf("core: requirement %q not registered", r.ID)
	}
	pd, err := p.interp.Interpret(r)
	if err != nil {
		return nil, err
	}
	old := p.reqs[r.ID]
	oldPD := p.partials[r.ID]
	p.reqs[r.ID] = r.Clone()
	p.partials[r.ID] = pd
	if err := p.rederiveLocked(); err != nil {
		// Roll back.
		p.reqs[r.ID] = old
		p.partials[r.ID] = oldPD
		_ = p.rederiveLocked()
		return nil, err
	}
	if err := p.persistLocked(r, pd); err != nil {
		return nil, err
	}
	return &ChangeReport{RequirementID: r.ID, Rederived: true}, nil
}

// rederiveLocked rebuilds the unified designs by re-integrating all
// registered partial designs in registration order.
func (p *Platform) rederiveLocked() error {
	var md *xmd.Schema
	var etl *xlm.Design
	for _, id := range p.order {
		pd := p.partials[id]
		var err error
		md, _, err = p.mdInt.Integrate(md, pd.MD)
		if err != nil {
			return err
		}
		etl, _, err = p.etlInt.Integrate(etl, pd.ETL)
		if err != nil {
			return err
		}
	}
	if md != nil {
		for _, id := range p.order {
			if err := interpreter.Satisfies(md, p.reqs[id]); err != nil {
				return fmt.Errorf("core: re-derived design unsatisfiable: %w", err)
			}
		}
	}
	p.unifiedMD = md
	p.unifiedETL = etl
	p.olapEng = nil
	p.matAgg.Invalidate()
	if md != nil {
		if err := p.repo.SaveMD("unified", md); err != nil {
			return err
		}
	}
	if etl != nil {
		if err := p.repo.SaveETL("unified", etl); err != nil {
			return err
		}
	}
	return nil
}

// checkAllSatisfiedLocked verifies every registered requirement plus
// the incoming one against a candidate unified MD schema.
func (p *Platform) checkAllSatisfiedLocked(md *xmd.Schema, incoming *xrq.Requirement) error {
	if err := interpreter.Satisfies(md, incoming); err != nil {
		return fmt.Errorf("core: new design does not satisfy %q: %w", incoming.ID, err)
	}
	for _, id := range p.order {
		if err := interpreter.Satisfies(md, p.reqs[id]); err != nil {
			return fmt.Errorf("core: integration would break requirement %q: %w", id, err)
		}
	}
	return nil
}

func (p *Platform) persistLocked(r *xrq.Requirement, pd *interpreter.PartialDesign) error {
	if err := p.repo.SaveRequirement(r); err != nil {
		return err
	}
	if err := p.repo.SaveMD("partial:"+r.ID, pd.MD); err != nil {
		return err
	}
	if err := p.repo.SaveETL("partial:"+r.ID, pd.ETL); err != nil {
		return err
	}
	if p.unifiedMD != nil {
		if err := p.repo.SaveMD("unified", p.unifiedMD); err != nil {
			return err
		}
	}
	if p.unifiedETL != nil {
		if err := p.repo.SaveETL("unified", p.unifiedETL); err != nil {
			return err
		}
	}
	return p.repo.Flush()
}

// Requirements returns the registered requirements in registration
// order.
func (p *Platform) Requirements() []*xrq.Requirement {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*xrq.Requirement, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.reqs[id].Clone())
	}
	return out
}

// Unified returns the current unified design solutions (clones), or
// nil before the first requirement.
func (p *Platform) Unified() (*xmd.Schema, *xlm.Design) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var md *xmd.Schema
	var etl *xlm.Design
	if p.unifiedMD != nil {
		md = p.unifiedMD.Clone()
	}
	if p.unifiedETL != nil {
		etl = p.unifiedETL.Clone()
	}
	return md, etl
}

// Partial returns the stored partial design of a requirement.
func (p *Platform) Partial(id string) (*interpreter.PartialDesign, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pd, ok := p.partials[id]
	return pd, ok
}

// CheckSatisfiability re-verifies that every registered requirement
// is answerable by the unified MD schema.
func (p *Platform) CheckSatisfiability() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.unifiedMD == nil {
		if len(p.order) == 0 {
			return nil
		}
		return fmt.Errorf("core: no unified design")
	}
	for _, id := range p.order {
		if err := interpreter.Satisfies(p.unifiedMD, p.reqs[id]); err != nil {
			return err
		}
	}
	return nil
}

// EstimatedETLCost returns the quality-factor estimate of the
// unified ETL flow (0 before the first requirement).
func (p *Platform) EstimatedETLCost() (float64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.unifiedETL == nil {
		return 0, nil
	}
	c, _, err := p.etlCost.Estimate(p.unifiedETL)
	return c, err
}

// Deployment bundles the Design Deployer's artifacts.
type Deployment struct {
	Database string
	// DDL is the PostgreSQL deployment script for the DW schema.
	DDL string
	// PDI is the Pentaho Data Integration transformation (.ktr).
	PDI string
	// StarQueries holds one sample OLAP query per fact table.
	StarQueries map[string]string
	// Tables lists the deployed table definitions.
	Tables []sqlgen.TableDef
	// FlowSQL is the ETL process as INSERT…SELECT statements (the
	// metadata layer's SQL export notation).
	FlowSQL string
	// PigLatin is the ETL process as an Apache PigLatin script.
	PigLatin string
}

// ExportFlow renders the unified ETL design in a registered external
// notation ("sql", "pig", ...).
func (p *Platform) ExportFlow(notation string) (string, error) {
	p.mu.Lock()
	etl := p.unifiedETL
	p.mu.Unlock()
	if etl == nil {
		return "", fmt.Errorf("core: nothing to export; add requirements first")
	}
	return export.Export(notation, etl)
}

// Deploy generates the platform-specific artifacts for the unified
// design (PostgreSQL DDL + PDI transformation + sample star queries).
func (p *Platform) Deploy(database string) (*Deployment, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.unifiedETL == nil || p.unifiedMD == nil {
		return nil, fmt.Errorf("core: nothing to deploy; add requirements first")
	}
	ddl, err := sqlgen.DDL(database, p.unifiedETL)
	if err != nil {
		return nil, err
	}
	ktr, err := pdi.Marshal(p.unifiedETL, database)
	if err != nil {
		return nil, err
	}
	dep := &Deployment{Database: database, DDL: ddl, PDI: ktr, StarQueries: map[string]string{}}
	dep.Tables, err = sqlgen.Tables(p.unifiedETL)
	if err != nil {
		return nil, err
	}
	if dep.FlowSQL, err = export.Export("sql", p.unifiedETL); err != nil {
		return nil, err
	}
	if dep.PigLatin, err = export.Export("pig", p.unifiedETL); err != nil {
		return nil, err
	}
	var factTables []string
	for _, f := range p.unifiedMD.Facts {
		factTables = append(factTables, f.Name)
	}
	sort.Strings(factTables)
	for _, ft := range factTables {
		q, err := sqlgen.StarQuery(p.unifiedMD, p.unifiedETL, ft)
		if err == nil {
			dep.StarQueries[ft] = q
		}
	}
	return dep, nil
}

// Run executes the unified ETL natively against the platform's
// database with the configured engine options, creating and
// populating the deployed DW tables.
func (p *Platform) Run() (*engine.Result, error) {
	return p.RunWith(p.EngineOptions())
}

// RunWith executes the unified ETL natively with explicit engine
// options (overriding the configured defaults for this run only).
// The design is cloned for the run, so concurrent runs — and
// concurrent OLAP queries — never share mutable design state
// (validation caches inferred schemas on the design's nodes).
//
// On a sharded platform (Config.Shard enabled) the run loads only
// this shard's partition of each fact table — dimensions load in
// full — via the engine's load-filter hook, unless the caller set a
// LoadFilter of its own.
func (p *Platform) RunWith(opts engine.Options) (*engine.Result, error) {
	p.mu.Lock()
	var etl *xlm.Design
	if p.unifiedETL != nil {
		etl = p.unifiedETL.Clone()
	}
	db := p.db
	p.mu.Unlock()
	if etl == nil {
		return nil, fmt.Errorf("core: nothing to run; add requirements first")
	}
	if db == nil {
		return nil, fmt.Errorf("core: platform has no execution database")
	}
	if p.shardSpec.Enabled() && opts.LoadFilter == nil {
		defs, err := sqlgen.Tables(etl)
		if err != nil {
			return nil, fmt.Errorf("core: deriving shard partition keys: %w", err)
		}
		opts.LoadFilter = p.shardSpec.LoadFilter(shard.PartitionKeys(defs))
	}
	return engine.RunWithOptions(etl, db, opts)
}

// Shard returns the platform's shard identity (zero value when not
// sharded).
func (p *Platform) Shard() shard.Spec { return p.shardSpec }

// EngineOptions returns the configured native execution options.
func (p *Platform) EngineOptions() engine.Options {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engineOpts
}

// OLAP returns a query engine over the deployed DW (after Run). The
// engine is immutable and safe for concurrent use; it is built once
// per unified design (from clones, so queries never touch the live
// design) and rebuilt after the next lifecycle change.
func (p *Platform) OLAP() (*olap.Engine, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.unifiedMD == nil || p.unifiedETL == nil {
		return nil, fmt.Errorf("core: no unified design; add requirements first")
	}
	if p.olapEng == nil {
		eng, err := olap.New(p.unifiedMD.Clone(), p.unifiedETL.Clone(), p.db)
		if err != nil {
			return nil, err
		}
		if p.matAgg != nil {
			eng = eng.WithMatAgg(p.matAgg)
		}
		p.olapEng = eng
	}
	return p.olapEng, nil
}

// MatAgg exposes the materialized-aggregate store, or nil when the
// subsystem is disabled (Config.MatAggTopK == 0). Serving layers call
// its Refresh after warehouse reloads to re-materialize hot aggregates
// at the new version.
func (p *Platform) MatAgg() *olap.MatAgg {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.matAgg
}

// RunSeparately executes every requirement's partial ETL flow
// independently — the non-integrated baseline the demo compares
// against.
func (p *Platform) RunSeparately() (*engine.Result, error) {
	p.mu.Lock()
	order := append([]string(nil), p.order...)
	flows := make([]*xlm.Design, 0, len(order))
	for _, id := range order {
		flows = append(flows, p.partials[id].ETL.Clone())
	}
	db := p.db
	p.mu.Unlock()
	if db == nil {
		return nil, fmt.Errorf("core: platform has no execution database")
	}
	total := &engine.Result{Loaded: map[string]int64{}}
	for _, etl := range flows {
		res, err := engine.RunWithOptions(etl, db, p.EngineOptions())
		if err != nil {
			return nil, err
		}
		for k, v := range res.Loaded {
			total.Loaded[k] += v
		}
		total.Stats = append(total.Stats, res.Stats...)
		total.Elapsed += res.Elapsed
	}
	return total, nil
}
