package core

import (
	"strings"
	"testing"

	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xrq"
)

func newPlatform(t *testing.T, sf float64) *Platform {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(sf)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, sf, 42); err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Ontology: o, Mapping: m, Catalog: c, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRequiresDomain(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestLifecycleAddIntegrateDeployRun(t *testing.T) {
	p := newPlatform(t, 2)
	// Scenario "DW design": two requirements from Figure 3.
	rep1, err := p.AddRequirement(tpch.RevenueRequirement())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.MD == nil || rep1.ETL == nil {
		t.Fatal("missing reports")
	}
	rep2, err := p.AddRequirement(tpch.NetProfitRequirement())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ETL.Reused == 0 {
		t.Error("second requirement reused nothing")
	}
	md, etl := p.Unified()
	if md == nil || etl == nil {
		t.Fatal("no unified designs")
	}
	if len(md.Facts) != 2 {
		t.Errorf("facts = %d", len(md.Facts))
	}
	if err := p.CheckSatisfiability(); err != nil {
		t.Fatal(err)
	}
	// Deployment artifacts.
	dep, err := p.Deploy("demo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dep.DDL, "CREATE TABLE \"fact_table_revenue\"") ||
		!strings.Contains(dep.DDL, "CREATE TABLE \"fact_table_netprofit\"") {
		t.Error("DDL missing fact tables")
	}
	if !strings.Contains(dep.PDI, "<transformation>") {
		t.Error("PDI artifact missing")
	}
	if len(dep.StarQueries) != 2 {
		t.Errorf("star queries = %d", len(dep.StarQueries))
	}
	// Native execution populates the DW.
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"fact_table_revenue", "fact_table_netprofit", "dim_part", "dim_supplier"} {
		if res.Loaded[table] == 0 {
			t.Errorf("table %s not loaded: %v", table, res.Loaded)
		}
	}
	// Integrated execution does less work than separate runs.
	sep, err := p.RunSeparately()
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsProcessed() >= sep.RowsProcessed() {
		t.Errorf("integrated work %d >= separate %d", res.RowsProcessed(), sep.RowsProcessed())
	}
	// Estimated quality factor available.
	cost, err := p.EstimatedETLCost()
	if err != nil || cost <= 0 {
		t.Errorf("cost = %v, %v", cost, err)
	}
}

func TestDuplicateRequirementRejected(t *testing.T) {
	p := newPlatform(t, 1)
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestInvalidRequirementRejectedAtomically(t *testing.T) {
	p := newPlatform(t, 1)
	bad := &xrq.Requirement{
		ID:         "IR_bad",
		Dimensions: []xrq.Dimension{{Concept: "Lineitem.l_returnflag"}},
		Measures:   []xrq.Measure{{ID: "m", Function: "Orders.o_totalprice"}},
	}
	if _, err := p.AddRequirement(bad); err == nil {
		t.Fatal("MD-invalid requirement accepted")
	}
	if len(p.Requirements()) != 0 {
		t.Error("failed add left state behind")
	}
	md, etl := p.Unified()
	if md != nil || etl != nil {
		t.Error("failed add produced designs")
	}
}

func TestRemoveRequirementRederives(t *testing.T) {
	p := newPlatform(t, 1)
	for _, r := range tpch.CanonicalRequirements() {
		if _, err := p.AddRequirement(r); err != nil {
			t.Fatal(err)
		}
	}
	mdBefore, _ := p.Unified()
	// Before removal: netprofit and supplycost share the Partsupp
	// fact; revenue and quantity share the Lineitem fact.
	if _, ok := mdBefore.Fact("fact_table_netprofit"); !ok {
		t.Fatal("netprofit fact missing before removal")
	}
	rep, err := p.RemoveRequirement("IR_netprofit")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rederived {
		t.Error("removal did not re-derive")
	}
	mdAfter, _ := p.Unified()
	if _, ok := mdAfter.Fact("fact_table_netprofit"); ok {
		t.Error("removed fact still present")
	}
	// The Partsupp fact is now anchored by the supplycost requirement.
	if _, ok := mdAfter.Fact("fact_table_supplycost"); !ok {
		t.Errorf("supplycost fact missing after re-derivation: %v", mdAfter.Facts)
	}
	found := false
	for _, f := range mdAfter.Facts {
		if _, ok := f.Measure("netprofit"); ok {
			found = true
		}
	}
	if found {
		t.Error("netprofit measure survived removal")
	}
	if err := p.CheckSatisfiability(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RemoveRequirement("ghost"); err == nil {
		t.Error("removing unknown requirement succeeded")
	}
	// Remove everything; platform returns to empty state.
	for _, id := range []string{"IR_revenue", "IR_quantity_market", "IR_supplycost"} {
		if _, err := p.RemoveRequirement(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.CheckSatisfiability(); err != nil {
		t.Errorf("empty platform unsatisfiable: %v", err)
	}
}

func TestChangeRequirement(t *testing.T) {
	p := newPlatform(t, 1)
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	// Change the slicer to France.
	changed := tpch.RevenueRequirement()
	changed.Slicers[0].Value = "FRANCE"
	rep, err := p.ChangeRequirement(changed)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rederived {
		t.Error("change did not re-derive")
	}
	_, etl := p.Unified()
	sel, ok := etl.Node("SELECTION_n_name")
	if !ok {
		t.Fatal("selection missing")
	}
	if !strings.Contains(sel.Param("predicate"), "FRANCE") {
		t.Errorf("predicate = %q", sel.Param("predicate"))
	}
	// Changing an unregistered requirement fails.
	ghost := tpch.NetProfitRequirement()
	if _, err := p.ChangeRequirement(ghost); err == nil {
		t.Error("changing unregistered requirement succeeded")
	}
	// An invalid change rolls back.
	bad := tpch.RevenueRequirement()
	bad.Measures[0].Function = "Part.p_name" // non-numeric
	if _, err := p.ChangeRequirement(bad); err == nil {
		t.Fatal("invalid change accepted")
	}
	if err := p.CheckSatisfiability(); err != nil {
		t.Errorf("rollback broke satisfiability: %v", err)
	}
}

func TestRepositoryHoldsArtifacts(t *testing.T) {
	p := newPlatform(t, 1)
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	r, err := p.Repository().Requirement("IR_revenue")
	if err != nil || r.ID != "IR_revenue" {
		t.Errorf("repo requirement = %v, %v", r, err)
	}
	if _, err := p.Repository().MD("partial:IR_revenue"); err != nil {
		t.Errorf("partial MD missing: %v", err)
	}
	if _, err := p.Repository().MD("unified"); err != nil {
		t.Errorf("unified MD missing: %v", err)
	}
	if _, err := p.Repository().ETL("unified"); err != nil {
		t.Errorf("unified ETL missing: %v", err)
	}
}

func TestDeployAndRunRequireDesigns(t *testing.T) {
	p := newPlatform(t, 1)
	if _, err := p.Deploy("demo"); err == nil {
		t.Error("deploy with no designs succeeded")
	}
	if _, err := p.Run(); err == nil {
		t.Error("run with no designs succeeded")
	}
}

func TestElicitorDrivenLifecycle(t *testing.T) {
	p := newPlatform(t, 1)
	e := p.Elicitor()
	s, err := e.Suggest("Lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dimensions) == 0 || len(s.Measures) == 0 {
		t.Fatal("no suggestions")
	}
	r, err := e.NewRequirement("IR_elicited", "from suggestions").
		AddMeasure("qty", "Lineitem.l_quantity").
		AddDimension(s.Dimensions[0].Concept + "." + strings.SplitN(s.Dimensions[0].Attributes[0], ".", 2)[1]).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(r); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckSatisfiability(); err != nil {
		t.Fatal(err)
	}
}
