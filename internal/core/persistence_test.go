package core

import (
	"testing"

	"quarry/internal/storage"
	"quarry/internal/tpch"
)

// newPersistentPlatform builds a platform over a metadata repository
// directory.
func newPersistentPlatform(t *testing.T, dir string) *Platform {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, 1, 42); err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Ontology: o, Mapping: m, Catalog: c, DB: db, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLifecycleSurvivesRestart: a new platform over the same
// repository directory resumes the previous session's lifecycle.
func TestLifecycleSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	p1 := newPersistentPlatform(t, dir)
	if _, err := p1.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.AddRequirement(tpch.NetProfitRequirement()); err != nil {
		t.Fatal(err)
	}
	md1, etl1 := p1.Unified()

	// "Restart": a fresh platform over the same directory.
	p2 := newPersistentPlatform(t, dir)
	reqs := p2.Requirements()
	if len(reqs) != 2 {
		t.Fatalf("restored %d requirements, want 2", len(reqs))
	}
	if reqs[0].ID != "IR_revenue" || reqs[1].ID != "IR_netprofit" {
		t.Errorf("restored order = %s, %s", reqs[0].ID, reqs[1].ID)
	}
	md2, etl2 := p2.Unified()
	if md2 == nil || etl2 == nil {
		t.Fatal("unified designs not restored")
	}
	if md1.Stats() != md2.Stats() {
		t.Errorf("restored MD differs: %+v vs %+v", md1.Stats(), md2.Stats())
	}
	if len(etl1.Nodes()) != len(etl2.Nodes()) {
		t.Errorf("restored ETL differs: %d vs %d nodes", len(etl1.Nodes()), len(etl2.Nodes()))
	}
	if err := p2.CheckSatisfiability(); err != nil {
		t.Fatal(err)
	}
	// Lifecycle continues after restore.
	if _, err := p2.AddRequirement(tpch.SupplyCostRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartAfterRemoval: removals persist too.
func TestRestartAfterRemoval(t *testing.T) {
	dir := t.TempDir()
	p1 := newPersistentPlatform(t, dir)
	for _, r := range tpch.CanonicalRequirements() {
		if _, err := p1.AddRequirement(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p1.RemoveRequirement("IR_netprofit"); err != nil {
		t.Fatal(err)
	}
	if err := p1.Repository().Flush(); err != nil {
		t.Fatal(err)
	}
	p2 := newPersistentPlatform(t, dir)
	for _, r := range p2.Requirements() {
		if r.ID == "IR_netprofit" {
			t.Error("removed requirement restored")
		}
	}
	if len(p2.Requirements()) != 3 {
		t.Errorf("restored %d requirements, want 3", len(p2.Requirements()))
	}
}

// TestEmptyDirRestoresNothing: a fresh directory yields an empty
// lifecycle.
func TestEmptyDirRestoresNothing(t *testing.T) {
	p := newPersistentPlatform(t, t.TempDir())
	if len(p.Requirements()) != 0 {
		t.Error("phantom requirements restored")
	}
	md, etl := p.Unified()
	if md != nil || etl != nil {
		t.Error("phantom designs restored")
	}
}
