// Package elicitor implements the backend of Quarry's Requirements
// Elicitor (§2.1): the component that supports non-expert users in
// expressing analytical needs over a graphical domain ontology. It
// provides the vocabulary search, the analysis-focus ranking, and the
// automatic suggestion of potentially interesting analytical
// perspectives (dimensions, measures, slicers) for a chosen focus —
// e.g. focus Lineitem → suggested dimensions Supplier, Nation, Part —
// plus a guided requirement builder that assembles and validates xRQ
// documents from accepted suggestions.
package elicitor

import (
	"fmt"
	"sort"

	"quarry/internal/mapping"
	"quarry/internal/ontology"
	"quarry/internal/xrq"
)

// Elicitor answers exploration queries over one ontology and its
// source mapping (only mapped elements are suggested — an unmapped
// concept cannot be answered by any generated design).
type Elicitor struct {
	onto *ontology.Ontology
	mapg *mapping.Mapping
}

// New creates an elicitor.
func New(onto *ontology.Ontology, mapg *mapping.Mapping) *Elicitor {
	return &Elicitor{onto: onto, mapg: mapg}
}

// Search finds vocabulary entries matching the query (concepts and
// attributes by ID or business label).
func (e *Elicitor) Search(query string) []string {
	var out []string
	for _, hit := range e.onto.SearchVocabulary(query) {
		if e.isMapped(hit) {
			out = append(out, hit)
		}
	}
	return out
}

func (e *Elicitor) isMapped(id string) bool {
	if c, attr, err := ontology.SplitQualified(id); err == nil {
		cm, ok := e.mapg.Concept(c)
		if !ok {
			return false
		}
		_, ok = cm.Attrs[attr]
		return ok
	}
	_, ok := e.mapg.Concept(id)
	return ok
}

// SuggestFoci ranks the mapped concepts by suitability as analysis
// foci (measure-rich, dimension-rich concepts first).
func (e *Elicitor) SuggestFoci() []ontology.ScoredConcept {
	var out []ontology.ScoredConcept
	for _, sc := range e.onto.FactCandidates() {
		if _, ok := e.mapg.Concept(sc.Concept); ok {
			out = append(out, sc)
		}
	}
	return out
}

// DimensionSuggestion proposes one analytical perspective.
type DimensionSuggestion struct {
	Concept    string
	Attributes []string // qualified descriptor candidates
	Distance   int      // to-one hops from the focus
	Score      float64  // closer and richer perspectives score higher
}

// MeasureSuggestion proposes one numeric attribute as a measure.
type MeasureSuggestion struct {
	Attribute string // qualified
	Type      string
}

// SlicerSuggestion proposes an attribute to slice on.
type SlicerSuggestion struct {
	Attribute string // qualified
	Type      string
	Operators []string
}

// Suggestion is the full result of analysing a focus concept.
type Suggestion struct {
	Focus      string
	Dimensions []DimensionSuggestion
	Measures   []MeasureSuggestion
	Slicers    []SlicerSuggestion
}

// Suggest analyses the relationships of the focus concept in the
// domain ontology and proposes analytical perspectives: every mapped
// concept functionally reachable from the focus becomes a dimension
// candidate, the focus's (and its neighbours') numeric properties
// become measure candidates, and discrete attributes become slicers.
func (e *Elicitor) Suggest(focus string) (*Suggestion, error) {
	c, ok := e.onto.Concept(focus)
	if !ok {
		return nil, fmt.Errorf("elicitor: unknown concept %q", focus)
	}
	if _, ok := e.mapg.Concept(focus); !ok {
		return nil, fmt.Errorf("elicitor: concept %q has no source mapping", focus)
	}
	s := &Suggestion{Focus: focus}
	// Measures: numeric mapped properties of the focus.
	cm, _ := e.mapg.Concept(focus)
	for _, p := range c.NumericProperties() {
		if _, mapped := cm.Attrs[p.Name]; mapped {
			s.Measures = append(s.Measures, MeasureSuggestion{
				Attribute: ontology.Qualify(focus, p.Name), Type: p.Type,
			})
		}
	}
	// Dimensions + slicers from the functional closure.
	for concept, path := range e.onto.ToOneClosure(focus) {
		dcm, mapped := e.mapg.Concept(concept)
		if !mapped {
			continue
		}
		dc, _ := e.onto.Concept(concept)
		var attrs []string
		for _, p := range dc.Properties() {
			if _, ok := dcm.Attrs[p.Name]; !ok {
				continue
			}
			q := ontology.Qualify(concept, p.Name)
			if p.Type == "string" || p.Type == "bool" {
				attrs = append(attrs, q)
				s.Slicers = append(s.Slicers, SlicerSuggestion{
					Attribute: q, Type: p.Type, Operators: []string{"=", "!="},
				})
			} else if concept != focus {
				// Numeric attributes of reachable concepts can still
				// slice by range.
				s.Slicers = append(s.Slicers, SlicerSuggestion{
					Attribute: q, Type: p.Type, Operators: []string{"=", "!=", "<", "<=", ">", ">="},
				})
			}
		}
		if concept == focus || len(attrs) == 0 {
			continue
		}
		s.Dimensions = append(s.Dimensions, DimensionSuggestion{
			Concept:    concept,
			Attributes: attrs,
			Distance:   len(path),
			Score:      float64(len(attrs)) / float64(1+len(path)),
		})
	}
	sort.Slice(s.Dimensions, func(i, j int) bool {
		if s.Dimensions[i].Score != s.Dimensions[j].Score {
			return s.Dimensions[i].Score > s.Dimensions[j].Score
		}
		return s.Dimensions[i].Concept < s.Dimensions[j].Concept
	})
	sort.Slice(s.Slicers, func(i, j int) bool { return s.Slicers[i].Attribute < s.Slicers[j].Attribute })
	return s, nil
}

// Graph is the ontology rendered as a node-link structure for the
// web front-end (the D3 visualisation of Figure 2).
type Graph struct {
	Nodes []GraphNode `json:"nodes"`
	Links []GraphLink `json:"links"`
}

// GraphNode is one concept with its attributes.
type GraphNode struct {
	ID         string   `json:"id"`
	Label      string   `json:"label"`
	Attributes []string `json:"attributes"`
	Mapped     bool     `json:"mapped"`
}

// GraphLink is one object property.
type GraphLink struct {
	Source       string `json:"source"`
	Target       string `json:"target"`
	Property     string `json:"property"`
	Multiplicity string `json:"multiplicity"`
}

// Graph exports the ontology for visualisation.
func (e *Elicitor) Graph() *Graph {
	g := &Graph{}
	for _, c := range e.onto.Concepts() {
		n := GraphNode{ID: c.ID, Label: c.Label}
		for _, p := range c.Properties() {
			n.Attributes = append(n.Attributes, p.Name)
		}
		_, n.Mapped = e.mapg.Concept(c.ID)
		g.Nodes = append(g.Nodes, n)
	}
	for _, p := range e.onto.ObjectProperties() {
		g.Links = append(g.Links, GraphLink{
			Source: p.Domain, Target: p.Range, Property: p.ID, Multiplicity: p.Mult.String(),
		})
	}
	return g
}

// Builder assembles a requirement from accepted suggestions; the
// guided path a non-expert user takes in the UI.
type Builder struct {
	e   *Elicitor
	req *xrq.Requirement
	err error
}

// NewRequirement starts a builder.
func (e *Elicitor) NewRequirement(id, name string) *Builder {
	return &Builder{e: e, req: &xrq.Requirement{ID: id, Name: name}}
}

// AddMeasure adds a named measure with an expression over qualified
// attributes.
func (b *Builder) AddMeasure(id, formula string) *Builder {
	if b.err != nil {
		return b
	}
	b.req.Measures = append(b.req.Measures, xrq.Measure{ID: id, Function: formula})
	return b
}

// AddDimension accepts a dimension suggestion (one qualified
// attribute).
func (b *Builder) AddDimension(qualified string) *Builder {
	if b.err != nil {
		return b
	}
	b.req.Dimensions = append(b.req.Dimensions, xrq.Dimension{Concept: qualified})
	return b
}

// AddSlicer adds a filter.
func (b *Builder) AddSlicer(qualified, op, value string) *Builder {
	if b.err != nil {
		return b
	}
	b.req.Slicers = append(b.req.Slicers, xrq.Slicer{Concept: qualified, Operator: op, Value: value})
	return b
}

// Aggregate declares how a measure aggregates along a dimension.
func (b *Builder) Aggregate(dimension, measure string, fn xrq.AggFunc) *Builder {
	if b.err != nil {
		return b
	}
	b.req.Aggs = append(b.req.Aggs, xrq.Aggregation{
		Order: 1, Dimension: dimension, Measure: measure, Function: fn,
	})
	return b
}

// Build validates and returns the assembled requirement.
func (b *Builder) Build() (*xrq.Requirement, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.req.Validate(b.e.onto); err != nil {
		return nil, err
	}
	return b.req.Clone(), nil
}
