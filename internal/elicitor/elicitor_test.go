package elicitor

import (
	"encoding/json"
	"testing"

	"quarry/internal/tpch"
	"quarry/internal/xrq"
)

func newElicitor(t *testing.T) *Elicitor {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	return New(o, m)
}

func TestSuggestFoci(t *testing.T) {
	e := newElicitor(t)
	foci := e.SuggestFoci()
	if len(foci) == 0 {
		t.Fatal("no foci")
	}
	if foci[0].Concept != "Lineitem" {
		t.Errorf("top focus = %s, want Lineitem", foci[0].Concept)
	}
}

// TestSuggestLineitem reproduces the paper's §2.1 example: choosing
// focus Lineitem, the system suggests dimensions Supplier, Nation,
// Part (among others).
func TestSuggestLineitem(t *testing.T) {
	e := newElicitor(t)
	s, err := e.Suggest("Lineitem")
	if err != nil {
		t.Fatal(err)
	}
	byConcept := map[string]DimensionSuggestion{}
	for _, d := range s.Dimensions {
		byConcept[d.Concept] = d
	}
	for _, want := range []string{"Supplier", "Nation", "Part"} {
		if _, ok := byConcept[want]; !ok {
			t.Errorf("suggested dimensions missing %s: %v", want, byConcept)
		}
	}
	// Measures include the revenue ingredients.
	foundPrice := false
	for _, m := range s.Measures {
		if m.Attribute == "Lineitem.l_extendedprice" {
			foundPrice = true
		}
	}
	if !foundPrice {
		t.Errorf("measures = %v", s.Measures)
	}
	// Slicers include Nation.n_name.
	foundNation := false
	for _, sl := range s.Slicers {
		if sl.Attribute == "Nation.n_name" {
			foundNation = true
		}
	}
	if !foundNation {
		t.Error("Nation.n_name slicer missing")
	}
	// Closer concepts score higher than farther ones with equal
	// attribute richness: Part (distance 2) vs Region (distance 4).
	if byConcept["Part"].Distance >= byConcept["Region"].Distance {
		t.Errorf("distances: Part=%d Region=%d", byConcept["Part"].Distance, byConcept["Region"].Distance)
	}
}

func TestSuggestErrors(t *testing.T) {
	e := newElicitor(t)
	if _, err := e.Suggest("Ghost"); err == nil {
		t.Error("unknown focus accepted")
	}
}

func TestSearchOnlyMapped(t *testing.T) {
	e := newElicitor(t)
	hits := e.Search("name")
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	for _, h := range hits {
		if !e.isMapped(h) {
			t.Errorf("unmapped hit %s", h)
		}
	}
	if hits2 := e.Search("lineitem"); len(hits2) == 0 || hits2[0] != "Lineitem" {
		t.Errorf("Search(lineitem) = %v", hits2)
	}
}

func TestGraphExport(t *testing.T) {
	e := newElicitor(t)
	g := e.Graph()
	if len(g.Nodes) != 8 || len(g.Links) != 8 {
		t.Errorf("graph = %d nodes, %d links", len(g.Nodes), len(g.Links))
	}
	// JSON-serialisable for the web front-end.
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(g.Nodes) {
		t.Error("round trip lost nodes")
	}
}

// TestGuidedRequirementAssembly drives the builder the way the demo's
// participants would: pick focus, accept suggestions, build, and the
// result is the Figure 4 revenue requirement.
func TestGuidedRequirementAssembly(t *testing.T) {
	e := newElicitor(t)
	s, err := e.Suggest("Lineitem")
	if err != nil {
		t.Fatal(err)
	}
	// Accept the Part and Supplier dimension suggestions.
	var partAttr, supAttr string
	for _, d := range s.Dimensions {
		if d.Concept == "Part" {
			for _, a := range d.Attributes {
				if a == "Part.p_name" {
					partAttr = a
				}
			}
		}
		if d.Concept == "Supplier" {
			for _, a := range d.Attributes {
				if a == "Supplier.s_name" {
					supAttr = a
				}
			}
		}
	}
	if partAttr == "" || supAttr == "" {
		t.Fatal("expected suggestions missing")
	}
	r, err := e.NewRequirement("IR_guided", "guided revenue").
		AddMeasure("revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)").
		AddDimension(partAttr).
		AddDimension(supAttr).
		AddSlicer("Nation.n_name", "=", "SPAIN").
		Aggregate(partAttr, "revenue", xrq.AggAvg).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Dimensions) != 2 || len(r.Slicers) != 1 {
		t.Errorf("built requirement = %+v", r)
	}
}

func TestBuilderRejectsInvalid(t *testing.T) {
	e := newElicitor(t)
	if _, err := e.NewRequirement("IR_bad", "").
		AddMeasure("m", "Part.p_name"). // non-numeric
		AddDimension("Part.p_name").
		Build(); err == nil {
		t.Error("invalid requirement built")
	}
	if _, err := e.NewRequirement("IR_empty", "").Build(); err == nil {
		t.Error("empty requirement built")
	}
}
