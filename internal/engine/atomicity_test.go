package engine

import (
	"fmt"
	"reflect"
	"testing"

	"quarry/internal/expr"
	"quarry/internal/storage"
	"quarry/internal/xlm"
)

// Crash-injection regression tests for append-mode load atomicity:
// a run that fails after an append loader has already consumed batches
// must leave the live target table byte-identical to its pre-run state
// (appends are staged as detached deltas and merged only at the run's
// commit point), and must not bump the database version.

// poisonedAppendDesign streams src through `10 / a` into an append
// loader on sink; a row with a = 0 makes the Function operator fail
// mid-stream, after earlier batches have already reached the loader.
func poisonedAppendDesign() *xlm.Design {
	d := xlm.NewDesign("append_crash")
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "a", Type: "int"}},
		Params: map[string]string{"table": "src"}})
	d.AddNode(&xlm.Node{Name: "F", Type: xlm.OpFunction,
		Params: map[string]string{"name": "f", "expr": "10 / a"}})
	d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader,
		Params: map[string]string{"table": "sink", "mode": "append"}})
	d.AddEdge("DS", "F")
	d.AddEdge("F", "LOAD")
	return d
}

func TestAppendModeFailedRunLeavesLiveTableUntouched(t *testing.T) {
	runs := map[string]func(*xlm.Design, *storage.DB) (*Result, error){
		"materializing": RunMaterializing,
		"pipelined": func(d *xlm.Design, db *storage.DB) (*Result, error) {
			// Batch size 1 guarantees several batches land in the
			// loader before the poison row aborts the run.
			return RunWithOptions(d, db, Options{Parallelism: 1, BatchSize: 1})
		},
	}
	for mode, run := range runs {
		t.Run(mode, func(t *testing.T) {
			db := storage.NewDB()
			src, err := db.CreateTable("src", []storage.Column{{Name: "a", Type: "int"}})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range []int64{1, 2, 5} {
				if err := src.Insert(storage.Row{expr.Int(a)}); err != nil {
					t.Fatal(err)
				}
			}
			// First run succeeds and creates sink (append to a missing
			// table stages it like a replace).
			if _, err := run(poisonedAppendDesign(), db); err != nil {
				t.Fatalf("clean run: %v", err)
			}
			sink, ok := db.Table("sink")
			if !ok {
				t.Fatal("clean run did not create sink")
			}
			before := sink.Rows()
			if len(before) != 3 {
				t.Fatalf("clean run loaded %d rows, want 3", len(before))
			}
			versionBefore := db.Version()

			// Poison the source: 10 / 0 fails the Function mid-stream.
			if err := src.Insert(storage.Row{expr.Int(0)}); err != nil {
				t.Fatal(err)
			}
			if _, err := run(poisonedAppendDesign(), db); err == nil {
				t.Fatal("poisoned run succeeded, want division error")
			}
			if got := db.Version(); got != versionBefore {
				t.Errorf("failed run bumped version %d → %d", versionBefore, got)
			}
			after := sink.Rows()
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("failed append mutated live table:\nbefore: %v\nafter:  %v", before, after)
			}

			// Recovery: removing the poison, the next run appends its
			// whole delta atomically with exactly one version bump.
			src.Truncate()
			if err := src.Insert(storage.Row{expr.Int(5)}); err != nil {
				t.Fatal(err)
			}
			res, err := run(poisonedAppendDesign(), db)
			if err != nil {
				t.Fatalf("recovery run: %v", err)
			}
			if res.Loaded["sink"] != 1 {
				t.Errorf("recovery run loaded %d rows, want 1", res.Loaded["sink"])
			}
			if got := sink.NumRows(); got != 4 {
				t.Errorf("sink rows after recovery = %d, want 4", got)
			}
			if got := db.Version(); got != versionBefore+1 {
				t.Errorf("recovery run version = %d, want %d", got, versionBefore+1)
			}
		})
	}
}

// TestDiskRunCrashAtCommitRecoversPreviousVersion drives a whole ETL
// run on a disk-backed warehouse into a simulated crash at the run's
// single commit point (between the staged tables' segment writes and
// the manifest rename), then reopens the directory and asserts the
// recovered warehouse is byte-identical to the previous committed
// version with the crashed run's segments garbage-collected.
func TestDiskRunCrashAtCommitRecoversPreviousVersion(t *testing.T) {
	for _, stage := range []string{"segments", "rename"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			db, err := storage.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			src, err := db.CreateTable("src", []storage.Column{{Name: "a", Type: "int"}})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range []int64{1, 2, 5} {
				if err := src.Insert(storage.Row{expr.Int(a)}); err != nil {
					t.Fatal(err)
				}
			}
			// Clean run commits version 2 (create + run).
			if _, err := Run(poisonedAppendDesign(), db); err != nil {
				t.Fatalf("clean run: %v", err)
			}
			sink, _ := db.Table("sink")
			before := sink.Rows()
			versionBefore := db.Version()

			// Second run crashes at its commit point.
			storage.TestingCommitFault = func(s string) error {
				if s == stage {
					return fmt.Errorf("injected crash at %s", s)
				}
				return nil
			}
			_, err = Run(poisonedAppendDesign(), db)
			storage.TestingCommitFault = nil
			if err == nil {
				t.Fatal("crashed run reported success")
			}
			if db.Version() != versionBefore {
				t.Errorf("crashed run bumped version %d → %d", versionBefore, db.Version())
			}

			// "Restart": reopen from disk.
			re, err := storage.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if re.Version() != versionBefore {
				t.Errorf("recovered version %d, want %d", re.Version(), versionBefore)
			}
			reSink, ok := re.Table("sink")
			if !ok {
				t.Fatal("recovered warehouse lost sink")
			}
			if !reflect.DeepEqual(reSink.Rows(), before) {
				t.Fatal("recovered sink differs from last committed version")
			}
			// A post-recovery run succeeds and is durable.
			if _, err := Run(poisonedAppendDesign(), re); err != nil {
				t.Fatalf("post-recovery run: %v", err)
			}
			final, err := storage.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			fSink, _ := final.Table("sink")
			if got := fSink.NumRows(); got != int64(2*len(before)) {
				t.Errorf("post-recovery sink rows = %d, want %d", got, 2*len(before))
			}
		})
	}
}

// TestAppendDeltaInvisibleBeforeCommit pins the snapshot-isolation
// contract directly at the storage layer: rows staged in a delta are
// invisible to the live table until CommitRun merges them.
func TestAppendDeltaInvisibleBeforeCommit(t *testing.T) {
	db := storage.NewDB()
	live, err := db.CreateTable("t", []storage.Column{{Name: "x", Type: "int"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Insert(storage.Row{expr.Int(1)}); err != nil {
		t.Fatal(err)
	}
	delta, err := storage.NewStagingTable("t", []storage.Column{{Name: "x", Type: "int"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := delta.Insert(storage.Row{expr.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if got := live.NumRows(); got != 1 {
		t.Fatalf("delta visible before commit: %d rows", got)
	}
	v := db.Version()
	db.CommitRun(nil, []storage.AppendDelta{{Target: live, Delta: delta}})
	if got := live.NumRows(); got != 2 {
		t.Errorf("rows after commit = %d, want 2", got)
	}
	if got := db.Version(); got != v+1 {
		t.Errorf("commit version = %d, want %d", got, v+1)
	}
}
