// Package engine executes xLM ETL designs against the embedded store.
// It is Quarry's native execution platform, standing in for the
// Pentaho PDI runs of the paper's demonstration: the Design Deployer
// compiles a unified xLM design here to populate the deployed DW
// tables, and the benchmarks use the per-operation instrumentation to
// measure the demo's headline claim (integrated flows do less total
// work than separate flows).
//
// Execution is materialising: operations run in topological order,
// each consuming its inputs' buffered rows and producing its own. Row
// counts and wall-clock duration are recorded per operation.
package engine

import (
	"fmt"
	"sort"
	"time"

	"quarry/internal/expr"
	"quarry/internal/storage"
	"quarry/internal/xlm"
)

// OpStat is the execution record of one operation.
type OpStat struct {
	Node     string
	Type     xlm.OpType
	RowsIn   int64
	RowsOut  int64
	Duration time.Duration
}

// Result is the outcome of executing a design.
type Result struct {
	// Loaded maps loader target tables to the number of rows written.
	Loaded map[string]int64
	// Stats holds one entry per operation, in execution order.
	Stats []OpStat
	// Elapsed is the total wall-clock execution time.
	Elapsed time.Duration
}

// RowsProcessed sums every operation's output rows: the "total work"
// metric the integration benchmarks compare.
func (r *Result) RowsProcessed() int64 {
	var total int64
	for _, s := range r.Stats {
		total += s.RowsOut
	}
	return total
}

// TotalLoaded sums rows written across loaders.
func (r *Result) TotalLoaded() int64 {
	var total int64
	for _, n := range r.Loaded {
		total += n
	}
	return total
}

// materialised rows of one operation.
type mat struct {
	fields []xlm.Field
	rows   [][]expr.Value
	index  map[string]int
}

func newMat(fields []xlm.Field) *mat {
	m := &mat{fields: fields, index: map[string]int{}}
	for i, f := range fields {
		m.index[f.Name] = i
	}
	return m
}

func (m *mat) env(row []expr.Value) expr.Env {
	return func(name string) (expr.Value, bool) {
		i, ok := m.index[name]
		if !ok {
			return expr.Null(), false
		}
		return row[i], true
	}
}

// Run validates and executes the design against the database. Source
// Datastore nodes read the tables named by their "table" parameter;
// Loader nodes create-or-replace (default) or append to their target
// tables.
func Run(d *xlm.Design, db *storage.DB) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	order, err := d.TopoSort()
	if err != nil {
		return nil, err
	}
	res := &Result{Loaded: map[string]int64{}}
	mats := map[string]*mat{}
	start := time.Now()
	for _, n := range order {
		opStart := time.Now()
		inputs := d.Inputs(n.Name)
		inMats := make([]*mat, len(inputs))
		var rowsIn int64
		for i, in := range inputs {
			inMats[i] = mats[in.Name]
			rowsIn += int64(len(inMats[i].rows))
		}
		out, err := execNode(n, inMats, db, res)
		if err != nil {
			return nil, fmt.Errorf("engine: node %q: %w", n.Name, err)
		}
		mats[n.Name] = out
		res.Stats = append(res.Stats, OpStat{
			Node:     n.Name,
			Type:     n.Type,
			RowsIn:   rowsIn,
			RowsOut:  int64(len(out.rows)),
			Duration: time.Since(opStart),
		})
		// Free inputs consumed by all their consumers to bound memory.
		for _, in := range inputs {
			if allConsumed(d, in.Name, mats, order) {
				mats[in.Name].rows = nil
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// allConsumed reports whether every consumer of the node has already
// executed (present in mats).
func allConsumed(d *xlm.Design, name string, mats map[string]*mat, order []*xlm.Node) bool {
	for _, out := range d.Outputs(name) {
		if _, done := mats[out.Name]; !done {
			return false
		}
	}
	return true
}

func execNode(n *xlm.Node, inputs []*mat, db *storage.DB, res *Result) (*mat, error) {
	switch n.Type {
	case xlm.OpDatastore:
		return execDatastore(n, db)
	case xlm.OpExtraction:
		out := newMat(n.Fields)
		out.rows = inputs[0].rows
		return out, nil
	case xlm.OpSelection:
		return execSelection(n, inputs[0])
	case xlm.OpProjection:
		return execProjection(n, inputs[0])
	case xlm.OpFunction:
		return execFunction(n, inputs[0])
	case xlm.OpJoin:
		return execJoin(n, inputs[0], inputs[1])
	case xlm.OpAggregation:
		return execAggregation(n, inputs[0])
	case xlm.OpUnion:
		return execUnion(n, inputs)
	case xlm.OpSort:
		return execSort(n, inputs[0])
	case xlm.OpSurrogateKey:
		return execSurrogateKey(n, inputs[0])
	case xlm.OpLoader:
		return execLoader(n, inputs[0], db, res)
	}
	return nil, fmt.Errorf("unsupported operation type %q", n.Type)
}

func execDatastore(n *xlm.Node, db *storage.DB) (*mat, error) {
	table := n.Param("table")
	t, ok := db.Table(table)
	if !ok {
		return nil, fmt.Errorf("source table %q not found", table)
	}
	// Map the declared xLM schema onto the physical table (order may
	// differ; extra physical columns are ignored).
	idx := make([]int, len(n.Fields))
	for i, f := range n.Fields {
		j, ok := t.ColumnIndex(f.Name)
		if !ok {
			return nil, fmt.Errorf("source table %q lacks column %q", table, f.Name)
		}
		idx[i] = j
	}
	out := newMat(n.Fields)
	err := t.Scan(func(r storage.Row) error {
		row := make([]expr.Value, len(idx))
		for i, j := range idx {
			row[i] = r[j]
		}
		out.rows = append(out.rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func execSelection(n *xlm.Node, in *mat) (*mat, error) {
	pred, err := n.Predicate()
	if err != nil {
		return nil, err
	}
	out := newMat(n.Fields)
	for _, row := range in.rows {
		ok, err := expr.EvalBool(pred, in.env(row))
		if err != nil {
			return nil, err
		}
		if ok {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

func execProjection(n *xlm.Node, in *mat) (*mat, error) {
	specs, err := n.Projections()
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(specs))
	for i, sp := range specs {
		j, ok := in.index[sp.In]
		if !ok {
			return nil, fmt.Errorf("projection input lacks column %q", sp.In)
		}
		idx[i] = j
	}
	out := newMat(n.Fields)
	for _, row := range in.rows {
		nr := make([]expr.Value, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

func execFunction(n *xlm.Node, in *mat) (*mat, error) {
	e, err := expr.Parse(n.Param("expr"))
	if err != nil {
		return nil, err
	}
	out := newMat(n.Fields)
	for _, row := range in.rows {
		v, err := expr.Eval(e, in.env(row))
		if err != nil {
			return nil, err
		}
		nr := make([]expr.Value, 0, len(row)+1)
		nr = append(nr, row...)
		nr = append(nr, v)
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

// execJoin is a hash join: build on the right input, probe with the
// left. NULL keys never match (SQL semantics).
func execJoin(n *xlm.Node, left, right *mat) (*mat, error) {
	pairs, err := n.JoinPairs()
	if err != nil {
		return nil, err
	}
	lIdx := make([]int, len(pairs))
	rIdx := make([]int, len(pairs))
	for i, p := range pairs {
		li, ok := left.index[p[0]]
		if !ok {
			return nil, fmt.Errorf("join left input lacks column %q", p[0])
		}
		ri, ok := right.index[p[1]]
		if !ok {
			return nil, fmt.Errorf("join right input lacks column %q", p[1])
		}
		lIdx[i], rIdx[i] = li, ri
	}
	build := make(map[uint64][][]expr.Value, len(right.rows))
	for _, rr := range right.rows {
		h, null := hashKey(rr, rIdx)
		if null {
			continue
		}
		build[h] = append(build[h], rr)
	}
	out := newMat(n.Fields)
	for _, lr := range left.rows {
		h, null := hashKey(lr, lIdx)
		if null {
			continue
		}
		for _, rr := range build[h] {
			if !keysEqual(lr, rr, lIdx, rIdx) {
				continue
			}
			nr := make([]expr.Value, 0, len(lr)+len(rr))
			nr = append(nr, lr...)
			nr = append(nr, rr...)
			out.rows = append(out.rows, nr)
		}
	}
	return out, nil
}

func hashKey(row []expr.Value, idx []int) (h uint64, anyNull bool) {
	h = 1469598103934665603
	for _, i := range idx {
		v := row[i]
		if v.IsNull() {
			return 0, true
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, false
}

func keysEqual(l, r []expr.Value, lIdx, rIdx []int) bool {
	for i := range lIdx {
		if !l[lIdx[i]].Equal(r[rIdx[i]]) {
			return false
		}
	}
	return true
}

type aggState struct {
	groupVals []expr.Value
	sums      []float64
	sumIsInt  []bool
	intSums   []int64
	mins      []expr.Value
	maxs      []expr.Value
	counts    []int64 // non-null count per aggregate
	rows      int64
}

func execAggregation(n *xlm.Node, in *mat) (*mat, error) {
	group := n.GroupBy()
	aggs, err := n.Aggregates()
	if err != nil {
		return nil, err
	}
	gIdx := make([]int, len(group))
	for i, g := range group {
		j, ok := in.index[g]
		if !ok {
			return nil, fmt.Errorf("aggregation input lacks group column %q", g)
		}
		gIdx[i] = j
	}
	aIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Func == "COUNT" && a.Col == "" {
			aIdx[i] = -1
			continue
		}
		j, ok := in.index[a.Col]
		if !ok {
			return nil, fmt.Errorf("aggregation input lacks column %q", a.Col)
		}
		aIdx[i] = j
	}
	states := map[uint64][]*aggState{}
	var orderKeys []uint64
	for _, row := range in.rows {
		h := uint64(1469598103934665603)
		for _, i := range gIdx {
			h = h*1099511628211 ^ row[i].Hash()
		}
		var st *aggState
		for _, cand := range states[h] {
			match := true
			for k, i := range gIdx {
				if !valuesIdentical(cand.groupVals[k], row[i]) {
					match = false
					break
				}
			}
			if match {
				st = cand
				break
			}
		}
		if st == nil {
			st = &aggState{
				sums:     make([]float64, len(aggs)),
				sumIsInt: make([]bool, len(aggs)),
				intSums:  make([]int64, len(aggs)),
				mins:     make([]expr.Value, len(aggs)),
				maxs:     make([]expr.Value, len(aggs)),
				counts:   make([]int64, len(aggs)),
			}
			for i := range st.sumIsInt {
				st.sumIsInt[i] = true
			}
			st.groupVals = make([]expr.Value, len(gIdx))
			for k, i := range gIdx {
				st.groupVals[k] = row[i]
			}
			if len(states[h]) == 0 {
				orderKeys = append(orderKeys, h)
			}
			states[h] = append(states[h], st)
		}
		st.rows++
		for i, a := range aggs {
			if aIdx[i] == -1 { // COUNT(*)
				st.counts[i]++
				continue
			}
			v := row[aIdx[i]]
			if v.IsNull() {
				continue
			}
			st.counts[i]++
			switch a.Func {
			case "COUNT":
			case "MIN":
				if st.mins[i].IsNull() {
					st.mins[i] = v
				} else if c, err := v.Compare(st.mins[i]); err == nil && c < 0 {
					st.mins[i] = v
				}
			case "MAX":
				if st.maxs[i].IsNull() {
					st.maxs[i] = v
				} else if c, err := v.Compare(st.maxs[i]); err == nil && c > 0 {
					st.maxs[i] = v
				}
			default: // SUM, AVG
				f, ok := v.AsFloat()
				if !ok {
					return nil, fmt.Errorf("aggregation %s over non-numeric value %s", a.Func, v)
				}
				st.sums[i] += f
				if v.Kind() == expr.KindInt {
					st.intSums[i] += v.AsInt()
				} else {
					st.sumIsInt[i] = false
				}
			}
		}
	}
	out := newMat(n.Fields)
	// Global aggregate over zero rows still emits one row of zero
	// counts / NULLs, like SQL.
	if len(group) == 0 && len(states) == 0 {
		st := &aggState{
			sums:     make([]float64, len(aggs)),
			sumIsInt: make([]bool, len(aggs)),
			intSums:  make([]int64, len(aggs)),
			mins:     make([]expr.Value, len(aggs)),
			maxs:     make([]expr.Value, len(aggs)),
			counts:   make([]int64, len(aggs)),
		}
		states[0] = []*aggState{st}
		orderKeys = append(orderKeys, 0)
	}
	for _, h := range orderKeys {
		for _, st := range states[h] {
			row := make([]expr.Value, 0, len(gIdx)+len(aggs))
			row = append(row, st.groupVals...)
			for i, a := range aggs {
				switch a.Func {
				case "COUNT":
					row = append(row, expr.Int(st.counts[i]))
				case "MIN":
					row = append(row, st.mins[i])
				case "MAX":
					row = append(row, st.maxs[i])
				case "SUM":
					if st.counts[i] == 0 {
						row = append(row, expr.Null())
					} else if st.sumIsInt[i] {
						row = append(row, expr.Int(st.intSums[i]))
					} else {
						row = append(row, expr.Float(st.sums[i]))
					}
				case "AVG":
					if st.counts[i] == 0 {
						row = append(row, expr.Null())
					} else {
						row = append(row, expr.Float(st.sums[i]/float64(st.counts[i])))
					}
				}
			}
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// valuesIdentical groups NULLs together (unlike Value.Equal, which is
// SQL-style and never matches NULL).
func valuesIdentical(a, b expr.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return a.Equal(b)
}

func execUnion(n *xlm.Node, inputs []*mat) (*mat, error) {
	out := newMat(n.Fields)
	for _, in := range inputs {
		out.rows = append(out.rows, in.rows...)
	}
	return out, nil
}

func execSort(n *xlm.Node, in *mat) (*mat, error) {
	by := n.SortBy()
	idx := make([]int, len(by))
	for i, c := range by {
		j, ok := in.index[c]
		if !ok {
			return nil, fmt.Errorf("sort input lacks column %q", c)
		}
		idx[i] = j
	}
	out := newMat(n.Fields)
	out.rows = append(out.rows, in.rows...)
	sort.SliceStable(out.rows, func(a, b int) bool {
		ra, rb := out.rows[a], out.rows[b]
		for _, j := range idx {
			va, vb := ra[j], rb[j]
			// NULLs first.
			if va.IsNull() || vb.IsNull() {
				if va.IsNull() && vb.IsNull() {
					continue
				}
				return va.IsNull()
			}
			c, err := va.Compare(vb)
			if err != nil || c == 0 {
				continue
			}
			return c < 0
		}
		return false
	})
	return out, nil
}

func execSurrogateKey(n *xlm.Node, in *mat) (*mat, error) {
	on := n.Param("on")
	var idx []int
	for _, c := range splitCSV(on) {
		j, ok := in.index[c]
		if !ok {
			return nil, fmt.Errorf("surrogate key input lacks column %q", c)
		}
		idx = append(idx, j)
	}
	type bucket struct {
		keys []([]expr.Value)
		ids  []int64
	}
	assigned := map[uint64]*bucket{}
	var next int64 = 1
	out := newMat(n.Fields)
	for _, row := range in.rows {
		h := uint64(1469598103934665603)
		for _, j := range idx {
			h = h*1099511628211 ^ row[j].Hash()
		}
		b := assigned[h]
		if b == nil {
			b = &bucket{}
			assigned[h] = b
		}
		var id int64
		found := false
		for i, k := range b.keys {
			same := true
			for p, j := range idx {
				if !valuesIdentical(k[p], row[j]) {
					same = false
					break
				}
			}
			if same {
				id = b.ids[i]
				found = true
				break
			}
		}
		if !found {
			id = next
			next++
			key := make([]expr.Value, len(idx))
			for p, j := range idx {
				key[p] = row[j]
			}
			b.keys = append(b.keys, key)
			b.ids = append(b.ids, id)
		}
		nr := make([]expr.Value, 0, len(row)+1)
		nr = append(nr, row...)
		nr = append(nr, expr.Int(id))
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

func execLoader(n *xlm.Node, in *mat, db *storage.DB, res *Result) (*mat, error) {
	table := n.Param("table")
	cols := make([]storage.Column, len(in.fields))
	for i, f := range in.fields {
		cols[i] = storage.Column{Name: f.Name, Type: f.Type}
	}
	var t *storage.Table
	var err error
	switch n.Param("mode") {
	case "", "replace":
		t, err = db.CreateOrReplaceTable(table, cols)
	case "append":
		var ok bool
		t, ok = db.Table(table)
		if !ok {
			t, err = db.CreateTable(table, cols)
		}
	default:
		return nil, fmt.Errorf("loader mode %q unknown", n.Param("mode"))
	}
	if err != nil {
		return nil, err
	}
	rows := make([]storage.Row, len(in.rows))
	for i, r := range in.rows {
		rows[i] = storage.Row(r)
	}
	if err := t.InsertAll(rows); err != nil {
		return nil, err
	}
	res.Loaded[table] += int64(len(rows))
	out := newMat(n.Fields)
	return out, nil
}

func splitCSV(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			part := trimSpace(s[start:i])
			if part != "" {
				out = append(out, part)
			}
			start = i + 1
		}
	}
	return out
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}
