// Package engine executes xLM ETL designs against the embedded store.
// It is Quarry's native execution platform, standing in for the
// Pentaho PDI runs of the paper's demonstration: the Design Deployer
// compiles a unified xLM design here to populate the deployed DW
// tables, and the benchmarks use the per-operation instrumentation to
// measure the demo's headline claim (integrated flows do less total
// work than separate flows).
//
// Two execution strategies share one set of operator kernels
// (kernels.go):
//
//   - Run / RunWithOptions — the default batch-vectorised, pipelined,
//     DAG-parallel executor (pipeline.go). Operators stream fixed-size
//     row batches along the design's edges; streaming operators
//     (Extraction, Selection, Projection, Function, Union, Loader and
//     the probe side of Join) pipeline without buffering, blocking
//     operators (Join build, Aggregation, Sort) consume their input
//     incrementally, and independent DAG branches run concurrently on
//     a worker pool bounded by Options.Parallelism.
//   - RunMaterializing — the original single-threaded strategy:
//     operations run in topological order, each consuming its inputs'
//     fully buffered rows. It is the semantic reference the pipelined
//     path is tested against, and the baseline its speedup is measured
//     from.
//
// Both strategies produce byte-identical loaded tables, per-operation
// row counts and Loaded totals. Row counts and per-operation durations
// are recorded in either mode.
//
// Loads are transactional in both strategies: loaders stream into
// detached staging tables (replace mode) or delta tables (append
// mode), and the whole run is published in one storage.DB.CommitRun
// critical section — concurrent snapshot readers see all of a run or
// none of it, and a failed run leaves every live table byte-identical
// to its pre-run state. Against a disk-backed database that same
// commit is one crash-safe manifest rename, so durability rides on
// the existing commit point: the engine reads sources through the
// same ReadBatch cursors either way and needs no disk-specific code.
package engine

import (
	"context"
	"fmt"
	"time"

	"quarry/internal/expr"
	"quarry/internal/storage"
	"quarry/internal/xlm"
)

// OpStat is the execution record of one operation.
type OpStat struct {
	Node    string
	Type    xlm.OpType
	RowsIn  int64
	RowsOut int64
	// Duration is the operator's processing time: in the pipelined
	// executor the time spent computing batches (excluding waits on
	// upstream operators), in the materialising executor the
	// wall-clock time of the operation's turn.
	Duration time.Duration
}

// Result is the outcome of executing a design.
type Result struct {
	// Loaded maps loader target tables to the number of rows written.
	Loaded map[string]int64
	// Stats holds one entry per operation, in topological execution
	// order.
	Stats []OpStat
	// Elapsed is the total wall-clock execution time.
	Elapsed time.Duration
}

// RowsProcessed sums every operation's output rows: the "total work"
// metric the integration benchmarks compare.
func (r *Result) RowsProcessed() int64 {
	var total int64
	for _, s := range r.Stats {
		total += s.RowsOut
	}
	return total
}

// TotalLoaded sums rows written across loaders.
func (r *Result) TotalLoaded() int64 {
	var total int64
	for _, n := range r.Loaded {
		total += n
	}
	return total
}

// Run validates and executes the design against the database with the
// default pipelined executor (see RunWithOptions). Source Datastore
// nodes read the tables named by their "table" parameter; Loader nodes
// create-or-replace (default) or append to their target tables.
func Run(d *xlm.Design, db *storage.DB) (*Result, error) {
	return RunWithOptions(d, db, Options{})
}

// RunContext is Run under a context: cancellation aborts the run
// through the executor's first-error path and commits nothing.
func RunContext(ctx context.Context, d *xlm.Design, db *storage.DB) (*Result, error) {
	return RunWithOptionsContext(ctx, d, db, Options{})
}

// materialised rows of one operation.
type mat struct {
	fields []xlm.Field
	rows   [][]expr.Value
}

// RunMaterializing executes the design with the single-threaded,
// fully-materialising strategy: operations run in topological order,
// each consuming its inputs' buffered rows and producing its own. It
// is the reference implementation the pipelined executor is verified
// against and benchmarked from; production callers should prefer Run.
func RunMaterializing(d *xlm.Design, db *storage.DB) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	order, err := d.TopoSort()
	if err != nil {
		return nil, err
	}
	res := &Result{Loaded: map[string]int64{}}
	mats := map[string]*mat{}
	staged := newStagedLoads()
	start := time.Now()
	for _, n := range order {
		opStart := time.Now()
		inputs := d.Inputs(n.Name)
		inMats := make([]*mat, len(inputs))
		var rowsIn int64
		for i, in := range inputs {
			inMats[i] = mats[in.Name]
			rowsIn += int64(len(inMats[i].rows))
		}
		out, err := execNode(n, inMats, db, staged, res)
		if err != nil {
			return nil, fmt.Errorf("engine: node %q: %w", n.Name, err)
		}
		mats[n.Name] = out
		res.Stats = append(res.Stats, OpStat{
			Node:     n.Name,
			Type:     n.Type,
			RowsIn:   rowsIn,
			RowsOut:  int64(len(out.rows)),
			Duration: time.Since(opStart),
		})
		// Free inputs consumed by all their consumers to bound memory.
		for _, in := range inputs {
			if allConsumed(d, in.Name, mats) {
				mats[in.Name].rows = nil
			}
		}
	}
	// Commit point: publish every staged load — replace tables and
	// append deltas — in one critical section, mirroring the pipelined
	// executor.
	if err := staged.commit(db); err != nil {
		return nil, fmt.Errorf("engine: committing run: %w", err)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// allConsumed reports whether every consumer of the node has already
// executed (present in mats).
func allConsumed(d *xlm.Design, name string, mats map[string]*mat) bool {
	for _, out := range d.Outputs(name) {
		if _, done := mats[out.Name]; !done {
			return false
		}
	}
	return true
}

func execNode(n *xlm.Node, inputs []*mat, db *storage.DB, staged *stagedLoads, res *Result) (*mat, error) {
	out := &mat{fields: n.Fields}
	switch n.Type {
	case xlm.OpDatastore:
		op, err := newDatastoreOp(n, db)
		if err != nil {
			return nil, err
		}
		out.rows = op.read(0, op.limit)
		return out, nil
	case xlm.OpExtraction:
		out.rows = inputs[0].rows
		return out, nil
	case xlm.OpSelection:
		op, err := newSelectionOp(n, inputs[0].fields)
		if err != nil {
			return nil, err
		}
		out.rows, err = op.filter(nil, inputs[0].rows)
		return out, err
	case xlm.OpProjection:
		op, err := newProjectionOp(n, inputs[0].fields)
		if err != nil {
			return nil, err
		}
		out.rows = op.apply(nil, inputs[0].rows)
		return out, nil
	case xlm.OpFunction:
		op, err := newFunctionOp(n, inputs[0].fields)
		if err != nil {
			return nil, err
		}
		out.rows, err = op.apply(nil, inputs[0].rows)
		return out, err
	case xlm.OpJoin:
		op, err := newJoinOp(n, inputs[0].fields, inputs[1].fields)
		if err != nil {
			return nil, err
		}
		op.addBuild(inputs[1].rows)
		out.rows = op.probe(nil, inputs[0].rows)
		return out, nil
	case xlm.OpAggregation:
		op, err := newAggregationOp(n, inputs[0].fields)
		if err != nil {
			return nil, err
		}
		if err := op.add(inputs[0].rows); err != nil {
			return nil, err
		}
		out.rows = op.result()
		return out, nil
	case xlm.OpUnion:
		for _, in := range inputs {
			out.rows = append(out.rows, in.rows...)
		}
		return out, nil
	case xlm.OpSort:
		op, err := newSortOp(n, inputs[0].fields)
		if err != nil {
			return nil, err
		}
		op.add(inputs[0].rows)
		out.rows = op.result()
		return out, nil
	case xlm.OpSurrogateKey:
		op, err := newSurrogateKeyOp(n, inputs[0].fields)
		if err != nil {
			return nil, err
		}
		out.rows = op.apply(nil, inputs[0].rows)
		return out, nil
	case xlm.OpLoader:
		op, err := newLoaderOp(n, inputs[0].fields, db, staged)
		if err != nil {
			return nil, err
		}
		if err := op.write(inputs[0].rows); err != nil {
			return nil, err
		}
		op.finish()
		res.Loaded[op.table] += op.written
		return out, nil
	}
	return nil, fmt.Errorf("unsupported operation type %q", n.Type)
}
