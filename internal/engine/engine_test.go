package engine

import (
	"fmt"
	"testing"

	"quarry/internal/expr"
	"quarry/internal/storage"
	"quarry/internal/xlm"
)

// miniDB populates a three-table source: lineitem / supplier / nation.
func miniDB(t *testing.T) *storage.DB {
	t.Helper()
	db := storage.NewDB()
	sup, err := db.CreateTable("supplier", []storage.Column{
		{Name: "s_suppkey", Type: "int"},
		{Name: "s_name", Type: "string"},
		{Name: "s_nationkey", Type: "int"},
	})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := db.CreateTable("nation", []storage.Column{
		{Name: "n_nationkey", Type: "int"},
		{Name: "n_name", Type: "string"},
	})
	if err != nil {
		t.Fatal(err)
	}
	li, err := db.CreateTable("lineitem", []storage.Column{
		{Name: "l_suppkey", Type: "int"},
		{Name: "l_extendedprice", Type: "float"},
		{Name: "l_discount", Type: "float"},
	})
	if err != nil {
		t.Fatal(err)
	}
	nat.InsertAll([]storage.Row{
		{expr.Int(1), expr.Str("Spain")},
		{expr.Int(2), expr.Str("France")},
	})
	sup.InsertAll([]storage.Row{
		{expr.Int(10), expr.Str("Acme"), expr.Int(1)},    // Spain
		{expr.Int(20), expr.Str("Globex"), expr.Int(1)},  // Spain
		{expr.Int(30), expr.Str("Initech"), expr.Int(2)}, // France
	})
	li.InsertAll([]storage.Row{
		{expr.Int(10), expr.Float(100), expr.Float(0.1)}, // Acme: 90
		{expr.Int(10), expr.Float(50), expr.Float(0)},    // Acme: 50
		{expr.Int(20), expr.Float(200), expr.Float(0.5)}, // Globex: 100
		{expr.Int(30), expr.Float(999), expr.Float(0)},   // Initech (France, filtered)
	})
	return db
}

// revenueFlow is the Figure 3 revenue ETL: join lineitem⋈supplier⋈nation,
// slice Spain, derive revenue, sum per supplier, load.
func revenueFlow(t *testing.T) *xlm.Design {
	t.Helper()
	d := xlm.NewDesign("etl_revenue")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddNode(&xlm.Node{Name: "DS_lineitem", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "l_suppkey", Type: "int"}, {Name: "l_extendedprice", Type: "float"}, {Name: "l_discount", Type: "float"}},
		Params: map[string]string{"store": "src", "table": "lineitem"}}))
	must(d.AddNode(&xlm.Node{Name: "DS_supplier", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "s_suppkey", Type: "int"}, {Name: "s_name", Type: "string"}, {Name: "s_nationkey", Type: "int"}},
		Params: map[string]string{"store": "src", "table": "supplier"}}))
	must(d.AddNode(&xlm.Node{Name: "DS_nation", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "n_nationkey", Type: "int"}, {Name: "n_name", Type: "string"}},
		Params: map[string]string{"store": "src", "table": "nation"}}))
	must(d.AddNode(&xlm.Node{Name: "J_ls", Type: xlm.OpJoin, Params: map[string]string{"on": "l_suppkey=s_suppkey"}}))
	must(d.AddNode(&xlm.Node{Name: "J_lsn", Type: xlm.OpJoin, Params: map[string]string{"on": "s_nationkey=n_nationkey"}}))
	must(d.AddNode(&xlm.Node{Name: "SEL_spain", Type: xlm.OpSelection, Params: map[string]string{"predicate": "n_name = 'Spain'"}}))
	must(d.AddNode(&xlm.Node{Name: "F_rev", Type: xlm.OpFunction, Params: map[string]string{"name": "revenue", "expr": "l_extendedprice * (1 - l_discount)"}}))
	must(d.AddNode(&xlm.Node{Name: "AGG", Type: xlm.OpAggregation, Params: map[string]string{"group": "s_name", "aggregates": "revenue_sum:SUM:revenue"}}))
	must(d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "fact_revenue"}}))
	must(d.AddEdge("DS_lineitem", "J_ls"))
	must(d.AddEdge("DS_supplier", "J_ls"))
	must(d.AddEdge("J_ls", "J_lsn"))
	must(d.AddEdge("DS_nation", "J_lsn"))
	must(d.AddEdge("J_lsn", "SEL_spain"))
	must(d.AddEdge("SEL_spain", "F_rev"))
	must(d.AddEdge("F_rev", "AGG"))
	must(d.AddEdge("AGG", "LOAD"))
	return d
}

func TestRunRevenueFlow(t *testing.T) {
	db := miniDB(t)
	res, err := Run(revenueFlow(t), db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loaded["fact_revenue"] != 2 {
		t.Errorf("loaded = %v", res.Loaded)
	}
	fact, ok := db.Table("fact_revenue")
	if !ok {
		t.Fatal("fact table not created")
	}
	byName := map[string]float64{}
	for _, r := range fact.Rows() {
		f, _ := r[1].AsFloat()
		byName[r[0].AsString()] = f
	}
	if byName["Acme"] != 140 || byName["Globex"] != 100 {
		t.Errorf("revenue = %v", byName)
	}
	if res.TotalLoaded() != 2 {
		t.Errorf("TotalLoaded = %d", res.TotalLoaded())
	}
	if res.RowsProcessed() == 0 || res.Elapsed <= 0 {
		t.Error("instrumentation missing")
	}
	if len(res.Stats) != 9 {
		t.Errorf("stats = %d entries", len(res.Stats))
	}
	// Selection drops the France row: 4 join rows → 3.
	for _, s := range res.Stats {
		if s.Node == "SEL_spain" && (s.RowsIn != 4 || s.RowsOut != 3) {
			t.Errorf("selection stats = %+v", s)
		}
	}
}

func TestProjectionUnionSortSK(t *testing.T) {
	db := storage.NewDB()
	a, _ := db.CreateTable("a", []storage.Column{{Name: "k", Type: "int"}, {Name: "v", Type: "string"}})
	b, _ := db.CreateTable("b", []storage.Column{{Name: "k", Type: "int"}, {Name: "v", Type: "string"}})
	a.InsertAll([]storage.Row{{expr.Int(2), expr.Str("x")}, {expr.Int(1), expr.Str("y")}})
	b.InsertAll([]storage.Row{{expr.Int(3), expr.Str("x")}})

	d := xlm.NewDesign("pus")
	d.AddNode(&xlm.Node{Name: "DS_a", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "k", Type: "int"}, {Name: "v", Type: "string"}},
		Params: map[string]string{"table": "a"}})
	d.AddNode(&xlm.Node{Name: "DS_b", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "k", Type: "int"}, {Name: "v", Type: "string"}},
		Params: map[string]string{"table": "b"}})
	d.AddNode(&xlm.Node{Name: "U", Type: xlm.OpUnion})
	d.AddNode(&xlm.Node{Name: "SORT", Type: xlm.OpSort, Params: map[string]string{"by": "k"}})
	d.AddNode(&xlm.Node{Name: "SK", Type: xlm.OpSurrogateKey, Params: map[string]string{"key": "v_sk", "on": "v"}})
	d.AddNode(&xlm.Node{Name: "PROJ", Type: xlm.OpProjection, Params: map[string]string{"columns": "key=k, v_sk"}})
	d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("DS_a", "U")
	d.AddEdge("DS_b", "U")
	d.AddEdge("U", "SORT")
	d.AddEdge("SORT", "SK")
	d.AddEdge("SK", "PROJ")
	d.AddEdge("PROJ", "LOAD")

	res, err := Run(d, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loaded["out"] != 3 {
		t.Fatalf("loaded = %v", res.Loaded)
	}
	out, _ := db.Table("out")
	rows := out.Rows()
	// Sorted by k: 1(y), 2(x), 3(x). Surrogate keys first-seen: y→1, x→2.
	wantK := []int64{1, 2, 3}
	wantSK := []int64{1, 2, 2}
	for i, r := range rows {
		if r[0].AsInt() != wantK[i] || r[1].AsInt() != wantSK[i] {
			t.Errorf("row %d = %v, want k=%d sk=%d", i, r, wantK[i], wantSK[i])
		}
	}
}

func TestAggregationSemantics(t *testing.T) {
	db := storage.NewDB()
	tb, _ := db.CreateTable("t", []storage.Column{{Name: "g", Type: "string"}, {Name: "x", Type: "int"}})
	tb.InsertAll([]storage.Row{
		{expr.Str("a"), expr.Int(1)},
		{expr.Str("a"), expr.Int(3)},
		{expr.Str("b"), expr.Null()},
		{expr.Str("b"), expr.Int(10)},
	})
	d := xlm.NewDesign("agg")
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "g", Type: "string"}, {Name: "x", Type: "int"}},
		Params: map[string]string{"table": "t"}})
	d.AddNode(&xlm.Node{Name: "AGG", Type: xlm.OpAggregation, Params: map[string]string{
		"group":      "g",
		"aggregates": "s:SUM:x; a:AVG:x; mn:MIN:x; mx:MAX:x; c:COUNT:x; n:COUNT:",
	}})
	d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("DS", "AGG")
	d.AddEdge("AGG", "LOAD")
	if _, err := Run(d, db); err != nil {
		t.Fatal(err)
	}
	out, _ := db.Table("out")
	got := map[string]storage.Row{}
	for _, r := range out.Rows() {
		got[r[0].AsString()] = r
	}
	a := got["a"]
	if a[1].AsInt() != 4 { // SUM stays int for int input
		t.Errorf("SUM(a) = %v", a[1])
	}
	if f, _ := a[2].AsFloat(); f != 2 {
		t.Errorf("AVG(a) = %v", a[2])
	}
	if a[3].AsInt() != 1 || a[4].AsInt() != 3 {
		t.Errorf("MIN/MAX(a) = %v %v", a[3], a[4])
	}
	if a[5].AsInt() != 2 || a[6].AsInt() != 2 {
		t.Errorf("COUNT(a) = %v %v", a[5], a[6])
	}
	b := got["b"]
	// NULL skipped: SUM=10, COUNT(x)=1, COUNT(*)=2.
	if b[1].AsInt() != 10 || b[5].AsInt() != 1 || b[6].AsInt() != 2 {
		t.Errorf("b aggregates = %v", b)
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	db := storage.NewDB()
	db.CreateTable("t", []storage.Column{{Name: "x", Type: "int"}})
	d := xlm.NewDesign("agg0")
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "x", Type: "int"}},
		Params: map[string]string{"table": "t"}})
	d.AddNode(&xlm.Node{Name: "AGG", Type: xlm.OpAggregation, Params: map[string]string{
		"aggregates": "c:COUNT:; s:SUM:x",
	}})
	d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("DS", "AGG")
	d.AddEdge("AGG", "LOAD")
	if _, err := Run(d, db); err != nil {
		t.Fatal(err)
	}
	out, _ := db.Table("out")
	rows := out.Rows()
	if len(rows) != 1 || rows[0][0].AsInt() != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty global aggregate = %v", rows)
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	db := storage.NewDB()
	l, _ := db.CreateTable("l", []storage.Column{{Name: "k", Type: "int"}})
	r, _ := db.CreateTable("r", []storage.Column{{Name: "rk", Type: "int"}, {Name: "v", Type: "string"}})
	l.InsertAll([]storage.Row{{expr.Null()}, {expr.Int(1)}})
	r.InsertAll([]storage.Row{{expr.Null(), expr.Str("null")}, {expr.Int(1), expr.Str("one")}})
	d := xlm.NewDesign("nulljoin")
	d.AddNode(&xlm.Node{Name: "L", Type: xlm.OpDatastore, Fields: []xlm.Field{{Name: "k", Type: "int"}}, Params: map[string]string{"table": "l"}})
	d.AddNode(&xlm.Node{Name: "R", Type: xlm.OpDatastore, Fields: []xlm.Field{{Name: "rk", Type: "int"}, {Name: "v", Type: "string"}}, Params: map[string]string{"table": "r"}})
	d.AddNode(&xlm.Node{Name: "J", Type: xlm.OpJoin, Params: map[string]string{"on": "k=rk"}})
	d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("L", "J")
	d.AddEdge("R", "J")
	d.AddEdge("J", "LOAD")
	res, err := Run(d, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loaded["out"] != 1 {
		t.Errorf("NULL keys matched: loaded %d rows", res.Loaded["out"])
	}
}

func TestLoaderAppendMode(t *testing.T) {
	db := storage.NewDB()
	tb, _ := db.CreateTable("t", []storage.Column{{Name: "x", Type: "int"}})
	tb.Insert(storage.Row{expr.Int(1)})
	mk := func(mode string) *xlm.Design {
		d := xlm.NewDesign("load_" + mode)
		d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore, Fields: []xlm.Field{{Name: "x", Type: "int"}}, Params: map[string]string{"table": "t"}})
		d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "sink", "mode": mode}})
		d.AddEdge("DS", "LOAD")
		return d
	}
	if _, err := Run(mk("append"), db); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(mk("append"), db); err != nil {
		t.Fatal(err)
	}
	sink, _ := db.Table("sink")
	if sink.NumRows() != 2 {
		t.Errorf("append rows = %d", sink.NumRows())
	}
	if _, err := Run(mk("replace"), db); err != nil {
		t.Fatal(err)
	}
	sink, _ = db.Table("sink")
	if sink.NumRows() != 1 {
		t.Errorf("replace rows = %d", sink.NumRows())
	}
	if _, err := Run(mk("bogus"), db); err == nil {
		t.Error("bogus loader mode accepted")
	}
}

// TestLoaderAppendRemapsByName is the regression test for the append
// loader bug: appending to an existing table whose columns match the
// flow's by name but in a different order must remap by name, not
// insert positionally (which silently loaded corrupted data when the
// swapped columns shared a type).
func TestLoaderAppendRemapsByName(t *testing.T) {
	for _, mode := range []string{"materializing", "pipelined"} {
		t.Run(mode, func(t *testing.T) {
			db := storage.NewDB()
			sink, _ := db.CreateTable("sink", []storage.Column{
				{Name: "x", Type: "int"}, {Name: "y", Type: "int"},
			})
			sink.Insert(storage.Row{expr.Int(1), expr.Int(100)})
			// Source schema lists the same columns in the opposite order.
			src, _ := db.CreateTable("t", []storage.Column{
				{Name: "y", Type: "int"}, {Name: "x", Type: "int"},
			})
			src.Insert(storage.Row{expr.Int(200), expr.Int(2)})
			d := xlm.NewDesign("append_reorder")
			d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
				Fields: []xlm.Field{{Name: "y", Type: "int"}, {Name: "x", Type: "int"}},
				Params: map[string]string{"table": "t"}})
			d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader,
				Params: map[string]string{"table": "sink", "mode": "append"}})
			d.AddEdge("DS", "LOAD")
			var err error
			if mode == "materializing" {
				_, err = RunMaterializing(d, db)
			} else {
				_, err = Run(d, db)
			}
			if err != nil {
				t.Fatal(err)
			}
			rows := sink.Rows()
			if len(rows) != 2 {
				t.Fatalf("sink rows = %d", len(rows))
			}
			if rows[1][0].AsInt() != 2 || rows[1][1].AsInt() != 200 {
				t.Errorf("appended row = %v, want x=2 y=200 (columns remapped by name)", rows[1])
			}
		})
	}
}

func TestLoaderAppendSchemaMismatch(t *testing.T) {
	mk := func(srcCols []storage.Column, sinkCols []storage.Column, fields []xlm.Field) (*xlm.Design, *storage.DB) {
		db := storage.NewDB()
		db.CreateTable("t", srcCols)
		db.CreateTable("sink", sinkCols)
		d := xlm.NewDesign("append_mismatch")
		d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
			Fields: fields, Params: map[string]string{"table": "t"}})
		d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader,
			Params: map[string]string{"table": "sink", "mode": "append"}})
		d.AddEdge("DS", "LOAD")
		return d, db
	}
	intCol := func(n string) storage.Column { return storage.Column{Name: n, Type: "int"} }
	cases := []struct {
		name string
		src  []storage.Column
		sink []storage.Column
		flds []xlm.Field
	}{
		{"missing column", []storage.Column{intCol("a"), intCol("c")},
			[]storage.Column{intCol("a"), intCol("b")},
			[]xlm.Field{{Name: "a", Type: "int"}, {Name: "c", Type: "int"}}},
		{"arity", []storage.Column{intCol("a"), intCol("b")},
			[]storage.Column{intCol("a")},
			[]xlm.Field{{Name: "a", Type: "int"}, {Name: "b", Type: "int"}}},
		{"type conflict", []storage.Column{{Name: "a", Type: "string"}},
			[]storage.Column{intCol("a")},
			[]xlm.Field{{Name: "a", Type: "string"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, db := mk(tc.src, tc.sink, tc.flds)
			if _, err := Run(d, db); err == nil {
				t.Error("pipelined run accepted schema mismatch")
			}
			d, db = mk(tc.src, tc.sink, tc.flds)
			if _, err := RunMaterializing(d, db); err == nil {
				t.Error("materializing run accepted schema mismatch")
			}
		})
	}
	// Widening int → float stays legal, as for direct inserts.
	d, db := mk([]storage.Column{intCol("a")},
		[]storage.Column{{Name: "a", Type: "float"}},
		[]xlm.Field{{Name: "a", Type: "int"}})
	if _, err := Run(d, db); err != nil {
		t.Errorf("int→float append rejected: %v", err)
	}
	_ = db
}

// TestFailedRunLeavesTargetsUntouched: a run that errors before any
// data reaches a replace-mode loader must not have replaced the
// pre-existing target table with an empty one.
func TestFailedRunLeavesTargetsUntouched(t *testing.T) {
	mkDB := func() *storage.DB {
		db := storage.NewDB()
		src, _ := db.CreateTable("t", []storage.Column{{Name: "k", Type: "int"}})
		src.Insert(storage.Row{expr.Int(1)})
		out, _ := db.CreateTable("out", []storage.Column{{Name: "old", Type: "int"}})
		out.Insert(storage.Row{expr.Int(42)})
		return db
	}
	d := xlm.NewDesign("boom")
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "k", Type: "int"}},
		Params: map[string]string{"table": "t"}})
	// Every row divides by zero: the flow fails before the loader
	// sees any batch.
	d.AddNode(&xlm.Node{Name: "FN", Type: xlm.OpFunction,
		Params: map[string]string{"name": "f", "expr": "k / 0"}})
	d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("DS", "FN")
	d.AddEdge("FN", "LOAD")
	for _, mode := range []string{"materializing", "pipelined"} {
		t.Run(mode, func(t *testing.T) {
			db := mkDB()
			var err error
			if mode == "materializing" {
				_, err = RunMaterializing(d, db)
			} else {
				_, err = Run(d, db)
			}
			if err == nil {
				t.Fatal("division by zero accepted")
			}
			out, _ := db.Table("out")
			rows := out.Rows()
			if len(rows) != 1 || rows[0][0].AsInt() != 42 {
				t.Errorf("failed run touched target table: %v", rows)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	db := miniDB(t)
	// Missing source table.
	d := revenueFlow(t)
	n, _ := d.Node("DS_nation")
	n.Params["table"] = "ghost"
	if _, err := Run(d, db); err == nil {
		t.Error("missing source table accepted")
	}
	// Missing source column.
	d = revenueFlow(t)
	n, _ = d.Node("DS_nation")
	n.Fields = append(n.Fields, xlm.Field{Name: "ghost", Type: "int"})
	if _, err := Run(d, db); err == nil {
		t.Error("missing source column accepted")
	}
	// Invalid design (validation runs first).
	d = revenueFlow(t)
	sel, _ := d.Node("SEL_spain")
	sel.Params["predicate"] = "ghost = 1"
	if _, err := Run(d, db); err == nil {
		t.Error("invalid design executed")
	}
}

func TestSourceColumnOrderIndependence(t *testing.T) {
	// The xLM datastore schema may list columns in a different order
	// than the physical table; extraction must map by name.
	db := storage.NewDB()
	tb, _ := db.CreateTable("t", []storage.Column{
		{Name: "a", Type: "int"}, {Name: "b", Type: "string"},
	})
	tb.Insert(storage.Row{expr.Int(7), expr.Str("x")})
	d := xlm.NewDesign("reorder")
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "b", Type: "string"}, {Name: "a", Type: "int"}},
		Params: map[string]string{"table": "t"}})
	d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("DS", "LOAD")
	if _, err := Run(d, db); err != nil {
		t.Fatal(err)
	}
	out, _ := db.Table("out")
	r := out.Rows()[0]
	if r[0].AsString() != "x" || r[1].AsInt() != 7 {
		t.Errorf("reordered row = %v", r)
	}
}

func TestSharedPrefixForkExecutesOnce(t *testing.T) {
	// Two loaders fed from one selection: the shared prefix must be
	// executed once — the core of the integration benefit.
	db := miniDB(t)
	d := xlm.NewDesign("fork")
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "l_suppkey", Type: "int"}, {Name: "l_extendedprice", Type: "float"}},
		Params: map[string]string{"table": "lineitem"}})
	d.AddNode(&xlm.Node{Name: "SEL", Type: xlm.OpSelection, Params: map[string]string{"predicate": "l_extendedprice > 60"}})
	d.AddNode(&xlm.Node{Name: "AGG1", Type: xlm.OpAggregation, Params: map[string]string{"group": "l_suppkey", "aggregates": "s:SUM:l_extendedprice"}})
	d.AddNode(&xlm.Node{Name: "AGG2", Type: xlm.OpAggregation, Params: map[string]string{"aggregates": "c:COUNT:"}})
	d.AddNode(&xlm.Node{Name: "L1", Type: xlm.OpLoader, Params: map[string]string{"table": "out1"}})
	d.AddNode(&xlm.Node{Name: "L2", Type: xlm.OpLoader, Params: map[string]string{"table": "out2"}})
	d.AddEdge("DS", "SEL")
	d.AddEdge("SEL", "AGG1")
	d.AddEdge("SEL", "AGG2")
	d.AddEdge("AGG1", "L1")
	d.AddEdge("AGG2", "L2")
	res, err := Run(d, db)
	if err != nil {
		t.Fatal(err)
	}
	selRuns := 0
	for _, s := range res.Stats {
		if s.Node == "SEL" {
			selRuns++
		}
	}
	if selRuns != 1 {
		t.Errorf("selection executed %d times", selRuns)
	}
	if res.Loaded["out1"] == 0 || res.Loaded["out2"] != 1 {
		t.Errorf("loaded = %v", res.Loaded)
	}
}

func BenchmarkJoinAggregate(b *testing.B) {
	db := storage.NewDB()
	li, _ := db.CreateTable("lineitem", []storage.Column{
		{Name: "l_suppkey", Type: "int"},
		{Name: "l_extendedprice", Type: "float"},
		{Name: "l_discount", Type: "float"},
	})
	sup, _ := db.CreateTable("supplier", []storage.Column{
		{Name: "s_suppkey", Type: "int"},
		{Name: "s_name", Type: "string"},
		{Name: "s_nationkey", Type: "int"},
	})
	nat, _ := db.CreateTable("nation", []storage.Column{
		{Name: "n_nationkey", Type: "int"},
		{Name: "n_name", Type: "string"},
	})
	nat.InsertAll([]storage.Row{{expr.Int(1), expr.Str("Spain")}, {expr.Int(2), expr.Str("France")}})
	for s := 0; s < 50; s++ {
		sup.Insert(storage.Row{expr.Int(int64(s)), expr.Str(fmt.Sprintf("sup%d", s)), expr.Int(int64(s%2 + 1))})
	}
	for i := 0; i < 5000; i++ {
		li.Insert(storage.Row{expr.Int(int64(i % 50)), expr.Float(float64(i)), expr.Float(0.1)})
	}
	var tt testing.T
	d := revenueFlow(&tt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(d, db); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRunCommitsAtomically: a run with several replace-mode loaders
// bumps the DB version exactly once (the PublishAll commit point), so
// a concurrent snapshot can never see a mix of the run's outputs, and
// every run — even one that reloads identical data — is observable to
// version-keyed caches.
func TestRunCommitsAtomically(t *testing.T) {
	db := storage.NewDB()
	src, err := db.CreateTable("src", []storage.Column{{Name: "k", Type: "int"}, {Name: "v", Type: "int"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := src.Insert(storage.Row{expr.Int(int64(i)), expr.Int(int64(i * 2))}); err != nil {
			t.Fatal(err)
		}
	}
	d := xlm.NewDesign("atomic")
	ds := &xlm.Node{
		Name: "SRC", Type: xlm.OpDatastore, Optype: "TableInput",
		Fields: []xlm.Field{{Name: "k", Type: "int"}, {Name: "v", Type: "int"}},
		Params: map[string]string{"store": "s", "table": "src"},
	}
	if err := d.AddNode(ds); err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"out_a", "out_b"} {
		ld := &xlm.Node{
			Name: "LOAD_" + target, Type: xlm.OpLoader, Optype: "TableOutput",
			Params: map[string]string{"table": target, "mode": "replace"},
		}
		if err := d.AddNode(ld); err != nil {
			t.Fatal(err)
		}
		if err := d.AddEdge("SRC", ld.Name); err != nil {
			t.Fatal(err)
		}
	}
	for name, run := range map[string]func() (*Result, error){
		"pipelined":     func() (*Result, error) { return Run(d.Clone(), db) },
		"materializing": func() (*Result, error) { return RunMaterializing(d.Clone(), db) },
	} {
		before := db.Version()
		if _, err := run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := db.Version() - before; got != 1 {
			t.Errorf("%s: run bumped version by %d, want exactly 1", name, got)
		}
		for _, target := range []string{"out_a", "out_b"} {
			tb, ok := db.Table(target)
			if !ok || tb.NumRows() != 10 {
				t.Fatalf("%s: table %s not loaded", name, target)
			}
		}
	}
}
