package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"quarry/internal/etlintegrator"
	"quarry/internal/interpreter"
	"quarry/internal/quality"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xlm"
)

// outcome captures everything the equivalence oracle compares: loaded
// row counts, per-operation row counts, and the full rendered content
// of every loaded table (byte-identical, order included).
type outcome struct {
	loaded map[string]int64
	stats  map[string][2]int64
	tables map[string]string
}

func capture(res *Result, db *storage.DB) outcome {
	o := outcome{
		loaded: res.Loaded,
		stats:  map[string][2]int64{},
		tables: map[string]string{},
	}
	for _, s := range res.Stats {
		o.stats[s.Node] = [2]int64{s.RowsIn, s.RowsOut}
	}
	for table := range res.Loaded {
		t, ok := db.Table(table)
		if !ok {
			continue
		}
		var b strings.Builder
		for _, c := range t.Columns {
			fmt.Fprintf(&b, "%s:%s|", c.Name, c.Type)
		}
		b.WriteByte('\n')
		for _, r := range t.Rows() {
			for _, v := range r {
				b.WriteString(v.String())
				b.WriteByte('|')
			}
			b.WriteByte('\n')
		}
		o.tables[table] = b.String()
	}
	return o
}

// assertEngineEquivalence runs the design through the materialising
// reference, the pipelined executor at Parallelism 1, and the
// pipelined executor at high parallelism with a stress batch size,
// each against an independently rebuilt database, and requires
// byte-identical results.
func assertEngineEquivalence(t *testing.T, mkDB func() *storage.DB, d *xlm.Design) {
	t.Helper()
	modes := []struct {
		name string
		run  func(*xlm.Design, *storage.DB) (*Result, error)
	}{
		{"materializing", RunMaterializing},
		{"parallel=1", func(d *xlm.Design, db *storage.DB) (*Result, error) {
			return RunWithOptions(d, db, Options{Parallelism: 1, BatchSize: 7})
		}},
		{"parallel=N", func(d *xlm.Design, db *storage.DB) (*Result, error) {
			return RunWithOptions(d, db, Options{Parallelism: 8, BatchSize: 64})
		}},
	}
	var ref outcome
	for i, m := range modes {
		db := mkDB()
		res, err := m.run(d, db)
		if err != nil {
			t.Fatalf("%s: design %q: %v", m.name, d.Name, err)
		}
		got := capture(res, db)
		if i == 0 {
			ref = got
			continue
		}
		if len(got.loaded) != len(ref.loaded) {
			t.Fatalf("%s: loaded tables %v, want %v", m.name, got.loaded, ref.loaded)
		}
		for table, n := range ref.loaded {
			if got.loaded[table] != n {
				t.Errorf("%s: Loaded[%q] = %d, want %d", m.name, table, got.loaded[table], n)
			}
			if got.tables[table] != ref.tables[table] {
				t.Errorf("%s: table %q content differs from reference\n got: %s\nwant: %s",
					m.name, table, got.tables[table], ref.tables[table])
			}
		}
		if len(got.stats) != len(ref.stats) {
			t.Fatalf("%s: %d op stats, want %d", m.name, len(got.stats), len(ref.stats))
		}
		for node, want := range ref.stats {
			if got.stats[node] != want {
				t.Errorf("%s: node %q rows in/out = %v, want %v", m.name, node, got.stats[node], want)
			}
		}
	}
}

func TestEquivalenceRevenueFlow(t *testing.T) {
	assertEngineEquivalence(t, func() *storage.DB {
		return miniDB(t)
	}, revenueFlow(t))
}

func TestEquivalenceSharedPrefixFork(t *testing.T) {
	d := xlm.NewDesign("fork")
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "l_suppkey", Type: "int"}, {Name: "l_extendedprice", Type: "float"}},
		Params: map[string]string{"table": "lineitem"}})
	d.AddNode(&xlm.Node{Name: "SEL", Type: xlm.OpSelection, Params: map[string]string{"predicate": "l_extendedprice > 60"}})
	d.AddNode(&xlm.Node{Name: "AGG1", Type: xlm.OpAggregation, Params: map[string]string{"group": "l_suppkey", "aggregates": "s:SUM:l_extendedprice"}})
	d.AddNode(&xlm.Node{Name: "AGG2", Type: xlm.OpAggregation, Params: map[string]string{"aggregates": "c:COUNT:"}})
	d.AddNode(&xlm.Node{Name: "L1", Type: xlm.OpLoader, Params: map[string]string{"table": "out1"}})
	d.AddNode(&xlm.Node{Name: "L2", Type: xlm.OpLoader, Params: map[string]string{"table": "out2"}})
	d.AddEdge("DS", "SEL")
	d.AddEdge("SEL", "AGG1")
	d.AddEdge("SEL", "AGG2")
	d.AddEdge("AGG1", "L1")
	d.AddEdge("AGG2", "L2")
	assertEngineEquivalence(t, func() *storage.DB { return miniDB(t) }, d)
}

func TestEquivalenceUnionSortSurrogate(t *testing.T) {
	mkDB := func() *storage.DB {
		db := storage.NewDB()
		r := rand.New(rand.NewSource(7))
		randTable(r, db, "a", 300)
		randTable(r, db, "b", 150)
		return db
	}
	fields := []xlm.Field{{Name: "k", Type: "int"}, {Name: "g", Type: "string"}, {Name: "x", Type: "float"}}
	d := xlm.NewDesign("uss")
	d.AddNode(&xlm.Node{Name: "DS_a", Type: xlm.OpDatastore, Fields: fields, Params: map[string]string{"table": "a"}})
	d.AddNode(&xlm.Node{Name: "DS_b", Type: xlm.OpDatastore, Fields: fields, Params: map[string]string{"table": "b"}})
	d.AddNode(&xlm.Node{Name: "U", Type: xlm.OpUnion})
	d.AddNode(&xlm.Node{Name: "SORT", Type: xlm.OpSort, Params: map[string]string{"by": "k,g"}})
	d.AddNode(&xlm.Node{Name: "SK", Type: xlm.OpSurrogateKey, Params: map[string]string{"key": "g_sk", "on": "g"}})
	d.AddNode(&xlm.Node{Name: "PROJ", Type: xlm.OpProjection, Params: map[string]string{"columns": "key=k, g_sk, x"}})
	d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("DS_a", "U")
	d.AddEdge("DS_b", "U")
	d.AddEdge("U", "SORT")
	d.AddEdge("SORT", "SK")
	d.AddEdge("SK", "PROJ")
	d.AddEdge("PROJ", "LOAD")
	assertEngineEquivalence(t, mkDB, d)
}

// TestEquivalenceSharedTargetLoaders: two loaders writing the same
// table must not race — they are chained in topological order, so
// append interleaving and replace-mode outcomes match the
// materialising reference exactly.
func TestEquivalenceSharedTargetLoaders(t *testing.T) {
	for _, mode := range []string{"append", "replace"} {
		t.Run(mode, func(t *testing.T) {
			mkDB := func() *storage.DB {
				db := storage.NewDB()
				r := rand.New(rand.NewSource(11))
				randTable(r, db, "a", 400)
				randTable(r, db, "b", 250)
				return db
			}
			fields := []xlm.Field{{Name: "k", Type: "int"}, {Name: "g", Type: "string"}, {Name: "x", Type: "float"}}
			d := xlm.NewDesign("shared_target_" + mode)
			d.AddNode(&xlm.Node{Name: "DS_a", Type: xlm.OpDatastore, Fields: fields, Params: map[string]string{"table": "a"}})
			d.AddNode(&xlm.Node{Name: "DS_b", Type: xlm.OpDatastore, Fields: fields, Params: map[string]string{"table": "b"}})
			d.AddNode(&xlm.Node{Name: "L1", Type: xlm.OpLoader, Params: map[string]string{"table": "out", "mode": mode}})
			d.AddNode(&xlm.Node{Name: "L2", Type: xlm.OpLoader, Params: map[string]string{"table": "out", "mode": mode}})
			d.AddEdge("DS_a", "L1")
			d.AddEdge("DS_b", "L2")
			assertEngineEquivalence(t, mkDB, d)
		})
	}
}

// randomDesign grows a chain off a (k, g, x) datastore, forks it at a
// random point into two branches, and loads both — exercising every
// streaming operator plus fan-out, aggregation and sorting under the
// quick-check style the package's other property tests use.
func randomDesign(r *rand.Rand) *xlm.Design {
	d := xlm.NewDesign(fmt.Sprintf("rand%d", r.Int63()))
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "k", Type: "int"}, {Name: "g", Type: "string"}, {Name: "x", Type: "float"}},
		Params: map[string]string{"table": "t"}})
	seq := 0
	addOp := func(prev string) string {
		seq++
		name := fmt.Sprintf("OP%d", seq)
		switch r.Intn(4) {
		case 0:
			d.AddNode(&xlm.Node{Name: name, Type: xlm.OpSelection,
				Params: map[string]string{"predicate": fmt.Sprintf("x > %d", r.Intn(250))}})
		case 1:
			d.AddNode(&xlm.Node{Name: name, Type: xlm.OpFunction,
				Params: map[string]string{"name": fmt.Sprintf("f%d", seq), "expr": fmt.Sprintf("x * %d + k", 1+r.Intn(3))}})
		case 2:
			d.AddNode(&xlm.Node{Name: name, Type: xlm.OpSurrogateKey,
				Params: map[string]string{"key": fmt.Sprintf("sk%d", seq), "on": "g,k"}})
		case 3:
			d.AddNode(&xlm.Node{Name: name, Type: xlm.OpSort,
				Params: map[string]string{"by": "k,g"}})
		}
		d.AddEdge(prev, name)
		return name
	}
	prev := "DS"
	for i := 0; i < r.Intn(3); i++ {
		prev = addOp(prev)
	}
	fork := prev // both branches consume this node
	for b := 0; b < 2; b++ {
		prev = fork
		for i := 0; i < r.Intn(3); i++ {
			prev = addOp(prev)
		}
		if r.Intn(2) == 0 {
			seq++
			name := fmt.Sprintf("AGG%d", seq)
			d.AddNode(&xlm.Node{Name: name, Type: xlm.OpAggregation,
				Params: map[string]string{"group": "g", "aggregates": "s:SUM:x; c:COUNT:; mn:MIN:x; a:AVG:x"}})
			d.AddEdge(prev, name)
			prev = name
		}
		load := fmt.Sprintf("LOAD%d", b)
		d.AddNode(&xlm.Node{Name: load, Type: xlm.OpLoader,
			Params: map[string]string{"table": fmt.Sprintf("out%d", b)}})
		d.AddEdge(prev, load)
	}
	return d
}

func TestEquivalenceRandomDesigns(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			d := randomDesign(rand.New(rand.NewSource(seed)))
			mkDB := func() *storage.DB {
				db := storage.NewDB()
				r := rand.New(rand.NewSource(seed + 1000))
				randTable(r, db, "t", 200+r.Intn(400))
				return db
			}
			assertEngineEquivalence(t, mkDB, d)
		})
	}
}

// TestEquivalenceTPCHCanonical runs every canonical TPC-H requirement's
// partial flow plus the integrated unified flow — the designs the
// paper's demonstration executes — through all engine modes.
func TestEquivalenceTPCHCanonical(t *testing.T) {
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := interpreter.New(o, m, c)
	if err != nil {
		t.Fatal(err)
	}
	mkDB := func() *storage.DB {
		db := storage.NewDB()
		if _, err := tpch.Generate(db, 1, 42); err != nil {
			t.Fatal(err)
		}
		return db
	}
	etlInt := etlintegrator.New(quality.DefaultETLCost(c), true)
	var unified *xlm.Design
	for _, r := range tpch.CanonicalRequirements() {
		pd, err := in.Interpret(r)
		if err != nil {
			t.Fatal(err)
		}
		t.Run("partial/"+r.ID, func(t *testing.T) {
			assertEngineEquivalence(t, mkDB, pd.ETL)
		})
		if unified, _, err = etlInt.Integrate(unified, pd.ETL); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("unified", func(t *testing.T) {
		assertEngineEquivalence(t, mkDB, unified)
	})
}
