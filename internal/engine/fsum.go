package engine

import "math"

// FloatSum is an exactly-rounded, order-independent float accumulator:
// it tracks the running sum as a non-overlapping expansion of floats
// (Shewchuk's grow-expansion, the algorithm behind math.fsum) so the
// exact real-number sum of everything added is held without rounding
// error, and Round() produces the nearest float64 to that exact sum
// with ties to even.
//
// Order independence is the property the sharded scatter-gather path
// is built on: naive float64 += folds are associative only up to
// rounding, so partitioning rows across shards and merging per-shard
// naive sums in ANY fixed order is still not bit-identical to the
// single-node fold. An exact sum is a function of the multiset of
// inputs alone, so every partitioning — including the single-node
// "partitioning" — rounds to the same bits. Both OLAP executors and
// the ETL aggregation kernel share this accumulator, which is what
// keeps fast path == star-flow oracle == any shard merge, byte for
// byte.
//
// Non-finite inputs (NaN, ±Inf) are routed to a separate naive
// accumulator: IEEE special values absorb ordering anyway (Inf+x=Inf,
// NaN poisons everything), so a plain += keeps the same propagation
// the old naive fold had while leaving the exact expansion finite.
// Intermediate overflow of the exact sum (|sum| > MaxFloat64)
// likewise degrades to the special accumulator; within the finite
// range the result is exact.
//
// The zero value is an empty sum and ready to use.
type FloatSum struct {
	parts      []float64 // non-overlapping expansion, increasing magnitude
	special    float64   // naive fold of non-finite inputs / overflow
	hasSpecial bool
}

// Add folds one value into the sum.
func (s *FloatSum) Add(x float64) {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		s.special += x
		s.hasSpecial = true
		return
	}
	if x == 0 {
		// Zeros never move an exact sum, and dropping them keeps the
		// signed-zero behaviour of the naive fold (0.0 + -0.0 = +0.0).
		return
	}
	// Grow-expansion with zero elimination: two-sum x against each
	// existing partial, keeping the low (roundoff) words as the new
	// partials and carrying the high word forward.
	i := 0
	for _, y := range s.parts {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		lo := y - (hi - x)
		if lo != 0 {
			s.parts[i] = lo
			i++
		}
		x = hi
	}
	if math.IsInf(x, 0) {
		// The exact sum left the representable range; degrade to the
		// naive (infinite) result, like the old += fold would have.
		s.special += x
		s.hasSpecial = true
		s.parts = s.parts[:0]
		return
	}
	if x != 0 {
		s.parts = append(s.parts[:i], x)
	} else {
		s.parts = s.parts[:i]
	}
}

// Merge folds another sum into this one. Because each expansion is an
// exact decomposition of its sum, merging is exact too, and the merged
// Round() equals Round() over the combined input multiset — in any
// merge order.
func (s *FloatSum) Merge(o FloatSum) {
	for _, p := range o.parts {
		s.Add(p)
	}
	if o.hasSpecial {
		s.special += o.special
		s.hasSpecial = true
	}
}

// Round returns the float64 nearest the exact sum, ties to even. The
// tail is the math.fsum finalisation: sum the expansion from the top
// until an add is inexact, then nudge for the case where the remaining
// partials push the discarded half-ulp across the round-half-even
// boundary.
func (s *FloatSum) Round() float64 {
	if s.hasSpecial {
		return s.special
	}
	n := len(s.parts)
	if n == 0 {
		return 0
	}
	n--
	hi := s.parts[n]
	lo := 0.0
	for n > 0 {
		x := hi
		n--
		y := s.parts[n]
		hi = x + y
		yr := hi - x
		lo = y - yr
		if lo != 0 {
			break
		}
	}
	if n > 0 && ((lo < 0 && s.parts[n-1] < 0) || (lo > 0 && s.parts[n-1] > 0)) {
		y := lo * 2.0
		x := hi + y
		if y == x-hi {
			hi = x
		}
	}
	return hi
}

// Export returns the sum's wire representation: the expansion parts,
// plus the special accumulator when any non-finite input was seen.
// The parts slice is a copy.
func (s *FloatSum) Export() (parts []float64, special float64, hasSpecial bool) {
	return append([]float64(nil), s.parts...), s.special, s.hasSpecial
}

// ImportFloatSum rebuilds a sum from its wire representation. It only
// trusts the values, not the expansion invariant: parts are re-added
// one by one, so a malformed expansion still yields the exact sum of
// the transmitted values.
func ImportFloatSum(parts []float64, special float64, hasSpecial bool) FloatSum {
	var s FloatSum
	for _, p := range parts {
		s.Add(p)
	}
	if hasSpecial {
		s.special += special
		s.hasSpecial = true
	}
	return s
}
