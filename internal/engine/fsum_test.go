package engine

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"quarry/internal/expr"
	"quarry/internal/xlm"
)

// bigRound computes the correctly-rounded (nearest, ties to even)
// float64 of the exact sum of xs, via arbitrary-precision arithmetic.
func bigRound(xs []float64) float64 {
	sum := new(big.Float).SetPrec(8192).SetMode(big.ToNearestEven)
	for _, x := range xs {
		sum.Add(sum, new(big.Float).SetPrec(8192).SetFloat64(x))
	}
	f, _ := sum.Float64()
	return f
}

func randFloats(r *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		// Wildly mixed magnitudes and signs so naive summation would
		// visibly depend on order.
		xs[i] = (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(30)-15))
	}
	return xs
}

// TestFloatSumExact checks Round against the big.Float oracle.
func TestFloatSumExact(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		xs := randFloats(r, 1+r.Intn(200))
		var s FloatSum
		for _, x := range xs {
			s.Add(x)
		}
		if got, want := s.Round(), bigRound(xs); got != want {
			t.Fatalf("trial %d: Round()=%g want %g (exact)", trial, got, want)
		}
	}
	// Classic fsum stress cases.
	cases := [][]float64{
		{1e100, 1, -1e100},
		{1, 1e-16, 1e-16, 1e-16},
		{math.MaxFloat64 / 2, math.MaxFloat64 / 2, -math.MaxFloat64 / 4},
		{0.1, 0.2, 0.3, -0.6},
		{1e16, 1, 1e16, 1, -2e16},
	}
	for _, xs := range cases {
		var s FloatSum
		for _, x := range xs {
			s.Add(x)
		}
		if got, want := s.Round(), bigRound(xs); got != want {
			t.Fatalf("case %v: Round()=%g want %g", xs, got, want)
		}
	}
}

// TestFloatSumOrderAndPartitionIndependent is the property the shard
// merge relies on: any permutation, any partitioning into sub-sums
// merged in any order, same bits.
func TestFloatSumOrderAndPartitionIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		xs := randFloats(r, 2+r.Intn(150))
		var base FloatSum
		for _, x := range xs {
			base.Add(x)
		}
		want := base.Round()

		// Random permutation.
		perm := append([]float64(nil), xs...)
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var ps FloatSum
		for _, x := range perm {
			ps.Add(x)
		}
		if got := ps.Round(); got != want {
			t.Fatalf("trial %d: permutation changed bits: %x vs %x", trial, math.Float64bits(got), math.Float64bits(want))
		}

		// Random partitioning into 1..8 shards, merged in random order.
		n := 1 + r.Intn(8)
		shards := make([]FloatSum, n)
		for _, x := range xs {
			shards[r.Intn(n)].Add(x)
		}
		order := r.Perm(n)
		var merged FloatSum
		for _, i := range order {
			// Round-trip each shard through the wire representation.
			parts, special, has := shards[i].Export()
			imp := ImportFloatSum(parts, special, has)
			merged.Merge(imp)
		}
		if got := merged.Round(); got != want {
			t.Fatalf("trial %d: %d-way partition merge changed bits: %x vs %x", trial, n, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestFloatSumSpecials checks NaN/Inf propagate like a naive fold.
func TestFloatSumSpecials(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, inf, 2}, inf},
		{[]float64{-inf, 5}, -inf},
		{[]float64{inf, -inf}, math.NaN()},
		{[]float64{math.NaN(), 1}, math.NaN()},
	}
	for _, c := range cases {
		var s FloatSum
		for _, x := range c.xs {
			s.Add(x)
		}
		got := s.Round()
		if math.IsNaN(c.want) {
			if !math.IsNaN(got) {
				t.Fatalf("%v: got %g want NaN", c.xs, got)
			}
			continue
		}
		if got != c.want {
			t.Fatalf("%v: got %g want %g", c.xs, got, c.want)
		}
		// Specials must survive the wire too.
		parts, special, has := s.Export()
		if rt := ImportFloatSum(parts, special, has); rt.Round() != c.want {
			t.Fatalf("%v: wire round-trip got %g want %g", c.xs, rt.Round(), c.want)
		}
	}
}

// TestAggregatorPartialsAbsorb checks the full kernel-level merge: rows
// partitioned across N aggregators, partials absorbed in shard order,
// finalised + sorted result identical to one aggregator over all rows.
func TestAggregatorPartialsAbsorb(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	aggs := []xlm.AggSpec{
		{Func: "COUNT", Col: "", Out: "cnt"},
		{Func: "SUM", Col: "f", Out: "fsum"},
		{Func: "AVG", Col: "f", Out: "favg"},
		{Func: "SUM", Col: "i", Out: "isum"},
		{Func: "MIN", Col: "s", Out: "smin"},
		{Func: "MAX", Col: "s", Out: "smax"},
	}
	aggIdx := []int{-1, 1, 1, 2, 3, 3}
	groupIdx := []int{0}
	mkAgg := func() *HashAggregator {
		a, err := NewHashAggregator(groupIdx, aggs, aggIdx)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	for trial := 0; trial < 30; trial++ {
		nRows := 50 + r.Intn(300)
		rows := make([][]expr.Value, nRows)
		for i := range rows {
			row := []expr.Value{
				expr.Int(int64(r.Intn(7))), // group key
				expr.Float((r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(20)-10))),
				expr.Int(int64(r.Intn(1000) - 500)),
				expr.Str(string(rune('a' + r.Intn(26)))),
			}
			if r.Intn(10) == 0 {
				row[1] = expr.Null()
			}
			rows[i] = row
		}

		single := mkAgg()
		if err := single.Add(rows); err != nil {
			t.Fatal(err)
		}
		want := SortRowsBy(single.Result(), []int{0})

		n := 1 + r.Intn(8)
		shards := make([]*HashAggregator, n)
		for i := range shards {
			shards[i] = mkAgg()
		}
		for _, row := range rows {
			si := int(row[0].Hash() % uint64(n))
			if err := shards[si].Add([][]expr.Value{row}); err != nil {
				t.Fatal(err)
			}
		}
		merged := mkAgg()
		for _, sh := range shards {
			if err := merged.Absorb(sh.Partials()); err != nil {
				t.Fatal(err)
			}
		}
		got := SortRowsBy(merged.Result(), []int{0})
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d merged groups, want %d", trial, len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				wv, gv := want[i][j], got[i][j]
				if wv.IsNull() != gv.IsNull() {
					t.Fatalf("trial %d row %d col %d: null mismatch %s vs %s", trial, i, j, gv, wv)
				}
				if wv.IsNull() {
					continue
				}
				if wf, ok := wv.AsFloat(); ok {
					gf, _ := gv.AsFloat()
					if math.Float64bits(wf) != math.Float64bits(gf) || wv.Kind() != gv.Kind() {
						t.Fatalf("trial %d row %d col %d: %s (bits %x) != %s (bits %x)", trial, i, j, gv, math.Float64bits(gf), wv, math.Float64bits(wf))
					}
					continue
				}
				if !wv.Equal(gv) {
					t.Fatalf("trial %d row %d col %d: %s != %s", trial, i, j, gv, wv)
				}
			}
		}
	}
}
