package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"quarry/internal/expr"
	"quarry/internal/storage"
	"quarry/internal/xlm"
)

// This file holds the per-operation kernels shared by both execution
// strategies: the materialising reference path (RunMaterializing)
// calls each kernel once over a node's full input, the pipelined
// executor calls the same kernel incrementally, batch by batch. Any
// semantic rule (NULL handling, grouping order, surrogate-key
// assignment order, loader column mapping) therefore lives in exactly
// one place, which is what makes the two paths byte-identical.

// fieldIndex maps column names to positions of a schema.
func fieldIndex(fields []xlm.Field) map[string]int {
	idx := make(map[string]int, len(fields))
	for i, f := range fields {
		idx[f.Name] = i
	}
	return idx
}

// datastoreOp scans a source table in batches, remapping the physical
// column order onto the declared xLM schema (extra physical columns
// are ignored). The row-count limit is snapshotted at construction so
// loaders appending to the same table mid-run cannot extend the scan.
type datastoreOp struct {
	t     *storage.Table
	idx   []int // nil: schema matches physical layout, rows pass through
	limit int
}

func newDatastoreOp(n *xlm.Node, db *storage.DB) (*datastoreOp, error) {
	table := n.Param("table")
	t, ok := db.Table(table)
	if !ok {
		return nil, fmt.Errorf("source table %q not found", table)
	}
	idx := make([]int, len(n.Fields))
	identity := len(n.Fields) == len(t.Columns)
	for i, f := range n.Fields {
		j, ok := t.ColumnIndex(f.Name)
		if !ok {
			return nil, fmt.Errorf("source table %q lacks column %q", table, f.Name)
		}
		idx[i] = j
		if j != i {
			identity = false
		}
	}
	op := &datastoreOp{t: t, idx: idx, limit: int(t.NumRows())}
	if identity {
		op.idx = nil
	}
	return op, nil
}

// read returns up to max rows starting at start, nil at the end.
func (o *datastoreOp) read(start, max int) [][]expr.Value {
	if start >= o.limit {
		return nil
	}
	if start+max > o.limit {
		max = o.limit - start
	}
	rows := o.t.ReadBatch(start, max)
	out := make([][]expr.Value, len(rows))
	for i, r := range rows {
		if o.idx == nil {
			out[i] = r
			continue
		}
		row := make([]expr.Value, len(o.idx))
		for k, j := range o.idx {
			row[k] = r[j]
		}
		out[i] = row
	}
	return out
}

// selectionOp filters rows through a predicate (SQL WHERE semantics:
// NULL counts as false).
type selectionOp struct {
	pred expr.Node
	env  *expr.SliceEnv
}

func newSelectionOp(n *xlm.Node, in []xlm.Field) (*selectionOp, error) {
	pred, err := n.Predicate()
	if err != nil {
		return nil, err
	}
	return &selectionOp{pred: pred, env: expr.NewSliceEnv(fieldIndex(in))}, nil
}

// filter appends the passing rows (shared, not copied) to dst.
func (o *selectionOp) filter(dst, rows [][]expr.Value) ([][]expr.Value, error) {
	env := o.env.Env()
	for _, row := range rows {
		o.env.Bind(row)
		ok, err := expr.EvalBool(o.pred, env)
		if err != nil {
			return nil, err
		}
		if ok {
			dst = append(dst, row)
		}
	}
	return dst, nil
}

// projectionOp projects/renames columns.
type projectionOp struct {
	idx []int
}

func newProjectionOp(n *xlm.Node, in []xlm.Field) (*projectionOp, error) {
	specs, err := n.Projections()
	if err != nil {
		return nil, err
	}
	index := fieldIndex(in)
	idx := make([]int, len(specs))
	for i, sp := range specs {
		j, ok := index[sp.In]
		if !ok {
			return nil, fmt.Errorf("projection input lacks column %q", sp.In)
		}
		idx[i] = j
	}
	return &projectionOp{idx: idx}, nil
}

func (o *projectionOp) apply(dst, rows [][]expr.Value) [][]expr.Value {
	for _, row := range rows {
		nr := make([]expr.Value, len(o.idx))
		for i, j := range o.idx {
			nr[i] = row[j]
		}
		dst = append(dst, nr)
	}
	return dst
}

// functionOp derives one new attribute per row.
type functionOp struct {
	e   expr.Node
	env *expr.SliceEnv
}

func newFunctionOp(n *xlm.Node, in []xlm.Field) (*functionOp, error) {
	e, err := expr.Parse(n.Param("expr"))
	if err != nil {
		return nil, err
	}
	return &functionOp{e: e, env: expr.NewSliceEnv(fieldIndex(in))}, nil
}

func (o *functionOp) apply(dst, rows [][]expr.Value) ([][]expr.Value, error) {
	env := o.env.Env()
	for _, row := range rows {
		o.env.Bind(row)
		v, err := expr.Eval(o.e, env)
		if err != nil {
			return nil, err
		}
		nr := make([]expr.Value, 0, len(row)+1)
		nr = append(nr, row...)
		nr = append(nr, v)
		dst = append(dst, nr)
	}
	return dst, nil
}

// joinOp is a hash join: the build side (right input) is consumed
// incrementally into the hash table, then probe streams the left
// input through it. NULL keys never match (SQL semantics).
type joinOp struct {
	lIdx, rIdx []int
	build      map[uint64][][]expr.Value
}

func newJoinOp(n *xlm.Node, left, right []xlm.Field) (*joinOp, error) {
	pairs, err := n.JoinPairs()
	if err != nil {
		return nil, err
	}
	lIndex, rIndex := fieldIndex(left), fieldIndex(right)
	lIdx := make([]int, len(pairs))
	rIdx := make([]int, len(pairs))
	for i, p := range pairs {
		li, ok := lIndex[p[0]]
		if !ok {
			return nil, fmt.Errorf("join left input lacks column %q", p[0])
		}
		ri, ok := rIndex[p[1]]
		if !ok {
			return nil, fmt.Errorf("join right input lacks column %q", p[1])
		}
		lIdx[i], rIdx[i] = li, ri
	}
	return &joinOp{lIdx: lIdx, rIdx: rIdx, build: map[uint64][][]expr.Value{}}, nil
}

// addBuild folds build-side rows into the hash table.
func (o *joinOp) addBuild(rows [][]expr.Value) {
	for _, rr := range rows {
		h, null := hashKey(rr, o.rIdx)
		if null {
			continue
		}
		o.build[h] = append(o.build[h], rr)
	}
}

// probe appends the join of the probe rows against the build table to
// dst, preserving probe order (and build insertion order per key).
func (o *joinOp) probe(dst, rows [][]expr.Value) [][]expr.Value {
	for _, lr := range rows {
		h, null := hashKey(lr, o.lIdx)
		if null {
			continue
		}
		for _, rr := range o.build[h] {
			if !keysEqual(lr, rr, o.lIdx, o.rIdx) {
				continue
			}
			nr := make([]expr.Value, 0, len(lr)+len(rr))
			nr = append(nr, lr...)
			nr = append(nr, rr...)
			dst = append(dst, nr)
		}
	}
	return dst
}

func hashKey(row []expr.Value, idx []int) (h uint64, anyNull bool) {
	h = 1469598103934665603
	for _, i := range idx {
		v := row[i]
		if v.IsNull() {
			return 0, true
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, false
}

func keysEqual(l, r []expr.Value, lIdx, rIdx []int) bool {
	for i := range lIdx {
		if !l[lIdx[i]].Equal(r[rIdx[i]]) {
			return false
		}
	}
	return true
}

type aggState struct {
	groupVals []expr.Value
	sums      []FloatSum
	sumIsInt  []bool
	intSums   []int64
	mins      []expr.Value
	maxs      []expr.Value
	counts    []int64 // non-null count per aggregate
}

// aggregationOp groups and aggregates incrementally; result emits
// groups in first-seen order (NULLs group together).
type aggregationOp struct {
	group     []string
	aggs      []xlm.AggSpec
	gIdx      []int
	aIdx      []int
	states    map[uint64][]*aggState
	orderKeys []uint64
}

func newAggregationOp(n *xlm.Node, in []xlm.Field) (*aggregationOp, error) {
	group := n.GroupBy()
	aggs, err := n.Aggregates()
	if err != nil {
		return nil, err
	}
	index := fieldIndex(in)
	gIdx := make([]int, len(group))
	for i, g := range group {
		j, ok := index[g]
		if !ok {
			return nil, fmt.Errorf("aggregation input lacks group column %q", g)
		}
		gIdx[i] = j
	}
	aIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Func == "COUNT" && a.Col == "" {
			aIdx[i] = -1
			continue
		}
		j, ok := index[a.Col]
		if !ok {
			return nil, fmt.Errorf("aggregation input lacks column %q", a.Col)
		}
		aIdx[i] = j
	}
	return &aggregationOp{
		group: group, aggs: aggs, gIdx: gIdx, aIdx: aIdx,
		states: map[uint64][]*aggState{},
	}, nil
}

func (o *aggregationOp) newState() *aggState {
	st := &aggState{
		sums:     make([]FloatSum, len(o.aggs)),
		sumIsInt: make([]bool, len(o.aggs)),
		intSums:  make([]int64, len(o.aggs)),
		mins:     make([]expr.Value, len(o.aggs)),
		maxs:     make([]expr.Value, len(o.aggs)),
		counts:   make([]int64, len(o.aggs)),
	}
	for i := range st.sumIsInt {
		st.sumIsInt[i] = true
	}
	return st
}

// add folds rows into the running group states.
func (o *aggregationOp) add(rows [][]expr.Value) error {
	for _, row := range rows {
		h := uint64(1469598103934665603)
		for _, i := range o.gIdx {
			h = h*1099511628211 ^ row[i].Hash()
		}
		var st *aggState
		for _, cand := range o.states[h] {
			match := true
			for k, i := range o.gIdx {
				if !valuesIdentical(cand.groupVals[k], row[i]) {
					match = false
					break
				}
			}
			if match {
				st = cand
				break
			}
		}
		if st == nil {
			st = o.newState()
			st.groupVals = make([]expr.Value, len(o.gIdx))
			for k, i := range o.gIdx {
				st.groupVals[k] = row[i]
			}
			if len(o.states[h]) == 0 {
				o.orderKeys = append(o.orderKeys, h)
			}
			o.states[h] = append(o.states[h], st)
		}
		for i, a := range o.aggs {
			if o.aIdx[i] == -1 { // COUNT(*)
				st.counts[i]++
				continue
			}
			v := row[o.aIdx[i]]
			if v.IsNull() {
				continue
			}
			st.counts[i]++
			switch a.Func {
			case "COUNT":
			case "MIN":
				if st.mins[i].IsNull() {
					st.mins[i] = v
				} else if c, err := v.Compare(st.mins[i]); err == nil && c < 0 {
					st.mins[i] = v
				}
			case "MAX":
				if st.maxs[i].IsNull() {
					st.maxs[i] = v
				} else if c, err := v.Compare(st.maxs[i]); err == nil && c > 0 {
					st.maxs[i] = v
				}
			default: // SUM, AVG
				f, ok := v.AsFloat()
				if !ok {
					return fmt.Errorf("aggregation %s over non-numeric value %s", a.Func, v)
				}
				st.sums[i].Add(f)
				if v.Kind() == expr.KindInt {
					st.intSums[i] += v.AsInt()
				} else {
					st.sumIsInt[i] = false
				}
			}
		}
	}
	return nil
}

// result finalises the aggregation. A global aggregate over zero rows
// still emits one row of zero counts / NULLs, like SQL.
func (o *aggregationOp) result() [][]expr.Value {
	if len(o.group) == 0 && len(o.states) == 0 {
		o.states[0] = []*aggState{o.newState()}
		o.orderKeys = append(o.orderKeys, 0)
	}
	var out [][]expr.Value
	for _, h := range o.orderKeys {
		for _, st := range o.states[h] {
			row := make([]expr.Value, 0, len(o.gIdx)+len(o.aggs))
			row = append(row, st.groupVals...)
			for i, a := range o.aggs {
				switch a.Func {
				case "COUNT":
					row = append(row, expr.Int(st.counts[i]))
				case "MIN":
					row = append(row, st.mins[i])
				case "MAX":
					row = append(row, st.maxs[i])
				case "SUM":
					if st.counts[i] == 0 {
						row = append(row, expr.Null())
					} else if st.sumIsInt[i] {
						row = append(row, expr.Int(st.intSums[i]))
					} else {
						row = append(row, expr.Float(st.sums[i].Round()))
					}
				case "AVG":
					if st.counts[i] == 0 {
						row = append(row, expr.Null())
					} else {
						row = append(row, expr.Float(st.sums[i].Round()/float64(st.counts[i])))
					}
				}
			}
			out = append(out, row)
		}
	}
	return out
}

// valuesIdentical groups NULLs together (unlike Value.Equal, which is
// SQL-style and never matches NULL).
func valuesIdentical(a, b expr.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return a.Equal(b)
}

// sortOp buffers its input and emits it stably ordered (NULLs first).
type sortOp struct {
	idx  []int
	rows [][]expr.Value
}

func newSortOp(n *xlm.Node, in []xlm.Field) (*sortOp, error) {
	by := n.SortBy()
	index := fieldIndex(in)
	idx := make([]int, len(by))
	for i, c := range by {
		j, ok := index[c]
		if !ok {
			return nil, fmt.Errorf("sort input lacks column %q", c)
		}
		idx[i] = j
	}
	return &sortOp{idx: idx}, nil
}

func (o *sortOp) add(rows [][]expr.Value) {
	o.rows = append(o.rows, rows...)
}

func (o *sortOp) result() [][]expr.Value {
	sort.SliceStable(o.rows, func(a, b int) bool {
		ra, rb := o.rows[a], o.rows[b]
		for _, j := range o.idx {
			va, vb := ra[j], rb[j]
			// NULLs first.
			if va.IsNull() || vb.IsNull() {
				if va.IsNull() && vb.IsNull() {
					continue
				}
				return va.IsNull()
			}
			c, err := va.Compare(vb)
			if err != nil || c == 0 {
				continue
			}
			return c < 0
		}
		return false
	})
	return o.rows
}

// surrogateKeyOp assigns a dense 1-based integer key per distinct
// natural key, in first-seen order. Assignment only depends on the
// prefix already consumed, so it streams.
type surrogateKeyOp struct {
	idx      []int
	assigned map[uint64]*skBucket
	next     int64
}

type skBucket struct {
	keys [][]expr.Value
	ids  []int64
}

func newSurrogateKeyOp(n *xlm.Node, in []xlm.Field) (*surrogateKeyOp, error) {
	index := fieldIndex(in)
	var idx []int
	for _, c := range strings.Split(n.Param("on"), ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		j, ok := index[c]
		if !ok {
			return nil, fmt.Errorf("surrogate key input lacks column %q", c)
		}
		idx = append(idx, j)
	}
	return &surrogateKeyOp{idx: idx, assigned: map[uint64]*skBucket{}, next: 1}, nil
}

func (o *surrogateKeyOp) apply(dst, rows [][]expr.Value) [][]expr.Value {
	for _, row := range rows {
		h := uint64(1469598103934665603)
		for _, j := range o.idx {
			h = h*1099511628211 ^ row[j].Hash()
		}
		b := o.assigned[h]
		if b == nil {
			b = &skBucket{}
			o.assigned[h] = b
		}
		var id int64
		found := false
		for i, k := range b.keys {
			same := true
			for p, j := range o.idx {
				if !valuesIdentical(k[p], row[j]) {
					same = false
					break
				}
			}
			if same {
				id = b.ids[i]
				found = true
				break
			}
		}
		if !found {
			id = o.next
			o.next++
			key := make([]expr.Value, len(o.idx))
			for p, j := range o.idx {
				key[p] = row[j]
			}
			b.keys = append(b.keys, key)
			b.ids = append(b.ids, id)
		}
		nr := make([]expr.Value, 0, len(row)+1)
		nr = append(nr, row...)
		nr = append(nr, expr.Int(id))
		dst = append(dst, nr)
	}
	return dst
}

// stagedLoads collects a run's completed loads — replace-mode staging
// tables and append-mode deltas — so they can all be committed in one
// critical section at the end of the run (storage.DB.CommitRun):
// concurrent snapshots see either the whole run or none of it, never a
// new fact table joined against old dimension tables or a partial
// append. Later loaders of the same run resolve their targets through
// it first, so an append after a replace lands in the staged table.
type stagedLoads struct {
	mu      sync.Mutex
	tables  []*storage.Table
	byName  map[string]*storage.Table
	appends []storage.AppendDelta
}

func newStagedLoads() *stagedLoads {
	return &stagedLoads{byName: map[string]*storage.Table{}}
}

// add registers a completed staging table (last writer wins, matching
// the old immediate-replace semantics for repeated loaders).
func (s *stagedLoads) add(t *storage.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[t.Name]; dup {
		for i, old := range s.tables {
			if old.Name == t.Name {
				s.tables[i] = t
				break
			}
		}
	} else {
		s.tables = append(s.tables, t)
	}
	s.byName[t.Name] = t
}

// lookup resolves a table already staged by this run.
func (s *stagedLoads) lookup(name string) (*storage.Table, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byName[name]
	return t, ok
}

// addAppend registers a completed append-mode load: a detached delta
// table merged into its live target at commit. Deltas are merged in
// registration order, which the per-table loader chain makes the
// topological order — the same order the rows would have landed in
// had they been appended live.
func (s *stagedLoads) addAppend(target, delta *storage.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appends = append(s.appends, storage.AppendDelta{Target: target, Delta: delta})
}

// commit publishes the run's loads atomically; it is the single
// version bump every successful run causes (append-only runs included,
// so version-keyed result caches always observe a load). On a
// disk-backed database it can fail — the crash-safe manifest commit
// hit an I/O error — in which case no load of the run is visible and
// no version was bumped.
func (s *stagedLoads) commit(db *storage.DB) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return db.CommitRun(s.tables, s.appends)
}

// loaderOp creates-or-replaces (default) or appends to the target
// table and streams batches into it. Replace-mode loads are staged:
// batches stream into a detached table registered with the run's
// stagedLoads on finish() and committed atomically when the whole run
// succeeds. Append-mode loads onto an existing live table are staged
// too: batches stream into a detached delta table (with the target's
// column layout) that is merged into the live table at the run's
// commit point. Either way, concurrent readers (OLAP queries,
// snapshots) never observe a half-loaded table or a
// partially-published run — and a failing run leaves every live table
// byte-identical to its pre-run state. In append mode the incoming
// schema is remapped onto the table's column order by name — matching
// names in a different order load correctly, and a true schema
// mismatch (missing column, arity or type conflict) is an error
// instead of silently corrupting data positionally.
type loaderOp struct {
	table    string
	t        *storage.Table
	staged   *stagedLoads
	publish  bool           // replace mode: t is a staging table, registered by finish
	appendTo *storage.Table // append mode onto a live table: t is the delta, merged at commit
	remap    []int          // remap[i] = input position of table column i; nil = positional
	filter   func(row []expr.Value) bool
	written  int64
}

// bindFilter resolves the run's load filter (Options.LoadFilter)
// against this loader's target. The predicate sees rows in the
// target table's column layout.
func (o *loaderOp) bindFilter(lf func(table string, cols []string) (func(row []expr.Value) bool, error)) error {
	if lf == nil {
		return nil
	}
	cols := make([]string, len(o.t.Columns))
	for i, c := range o.t.Columns {
		cols[i] = c.Name
	}
	f, err := lf(o.table, cols)
	if err != nil {
		return err
	}
	o.filter = f
	return nil
}

func newLoaderOp(n *xlm.Node, in []xlm.Field, db *storage.DB, staged *stagedLoads) (*loaderOp, error) {
	table := n.Param("table")
	cols := make([]storage.Column, len(in))
	for i, f := range in {
		cols[i] = storage.Column{Name: f.Name, Type: f.Type}
	}
	op := &loaderOp{table: table, staged: staged}
	var err error
	switch n.Param("mode") {
	case "", "replace":
		op.t, err = storage.NewStagingTable(table, cols)
		op.publish = true
	case "append":
		if t, ok := staged.lookup(table); ok {
			// Appending after a replace of the same run: the staged
			// table is detached, so writing into it directly is already
			// atomic with the run's commit.
			op.t = t
			op.remap, err = appendRemap(table, in, t.Columns)
			break
		}
		live, ok := db.Table(table)
		if !ok {
			// Append to a missing table creates it — staged like a
			// replace so the creation also commits atomically.
			op.t, err = storage.NewStagingTable(table, cols)
			op.publish = true
			break
		}
		// Stage the delta with the live table's column layout; write()
		// remaps incoming rows into it, and the run's commit merges it.
		if op.remap, err = appendRemap(table, in, live.Columns); err != nil {
			break
		}
		op.appendTo = live
		op.t, err = storage.NewStagingTable(table, live.Columns)
	default:
		return nil, fmt.Errorf("loader mode %q unknown", n.Param("mode"))
	}
	if err != nil {
		return nil, err
	}
	return op, nil
}

// finish records the completed load with the run's staged set.
// Callers invoke it exactly once, after the loader's input is fully
// consumed and only on success paths; the run publishes the set when
// every operation has succeeded.
func (o *loaderOp) finish() {
	if o.publish {
		o.staged.add(o.t)
	} else if o.appendTo != nil {
		o.staged.addAppend(o.appendTo, o.t)
	}
}

// appendRemap maps the incoming fields onto an existing table's column
// order by name; nil means the orders already coincide.
func appendRemap(table string, in []xlm.Field, cols []storage.Column) ([]int, error) {
	if len(in) != len(cols) {
		return nil, fmt.Errorf("append to table %q: flow has %d columns, table has %d", table, len(in), len(cols))
	}
	index := fieldIndex(in)
	remap := make([]int, len(cols))
	identity := true
	for i, c := range cols {
		j, ok := index[c.Name]
		if !ok {
			return nil, fmt.Errorf("append to table %q: flow lacks column %q", table, c.Name)
		}
		f := in[j]
		if f.Type != c.Type && !(f.Type == "int" && c.Type == "float") {
			return nil, fmt.Errorf("append to table %q: column %q is %s in the flow but %s in the table", table, c.Name, f.Type, c.Type)
		}
		remap[i] = j
		if j != i {
			identity = false
		}
	}
	if identity {
		return nil, nil
	}
	return remap, nil
}

// write appends one batch to the target table, dropping rows the
// bound load filter rejects.
func (o *loaderOp) write(rows [][]expr.Value) error {
	batch := make([]storage.Row, 0, len(rows))
	for _, r := range rows {
		var nr storage.Row
		if o.remap == nil {
			nr = r
		} else {
			nr = make(storage.Row, len(o.remap))
			for k, j := range o.remap {
				nr[k] = r[j]
			}
		}
		if o.filter != nil && !o.filter(nr) {
			continue
		}
		batch = append(batch, nr)
	}
	if err := o.t.AppendBatch(batch); err != nil {
		return err
	}
	o.written += int64(len(batch))
	return nil
}
