package engine

import (
	"fmt"

	"quarry/internal/expr"
	"quarry/internal/xlm"
)

// This file exports the engine's vectorized operator kernels for
// consumers outside the xLM executor — primarily the OLAP fast path,
// which plans star joins and hash aggregation directly over storage
// cursors without constructing a design. The exported types are thin
// wrappers over the same kernel state the two xLM execution strategies
// use, so semantics (NULL handling, grouping order, float fold order,
// sort order) are identical across all three consumers by
// construction.

// HashJoin is the streaming hash-join kernel on explicit key
// positions: build rows are folded into the hash table incrementally,
// then probe streams batches through it, preserving probe order (and
// build insertion order per key). NULL keys never match.
type HashJoin struct {
	op *joinOp
}

// NewHashJoin builds a join kernel: probeIdx are the key positions in
// probe-side rows, buildIdx the key positions in build-side rows.
func NewHashJoin(probeIdx, buildIdx []int) (*HashJoin, error) {
	if len(probeIdx) == 0 || len(probeIdx) != len(buildIdx) {
		return nil, fmt.Errorf("engine: hash join needs matching, non-empty key position lists")
	}
	return &HashJoin{op: &joinOp{
		lIdx:  append([]int(nil), probeIdx...),
		rIdx:  append([]int(nil), buildIdx...),
		build: map[uint64][][]expr.Value{},
	}}, nil
}

// Build folds a batch of build-side rows into the hash table. The rows
// are retained (shared, not copied).
func (j *HashJoin) Build(rows [][]expr.Value) { j.op.addBuild(rows) }

// Probe appends the join of the probe rows against the build table to
// dst and returns it. Output rows are probe row ++ build row.
func (j *HashJoin) Probe(dst, rows [][]expr.Value) [][]expr.Value {
	return j.op.probe(dst, rows)
}

// HashAggregator is the incremental grouping/aggregation kernel:
// groups emit in first-seen order (NULLs group together). Float sums
// fold through an exact expansion (FloatSum), so SUM/AVG bits depend
// only on the multiset of input values — not arrival order and not
// how rows were partitioned across aggregators merged via
// Partials/Absorb.
type HashAggregator struct {
	op *aggregationOp
}

// NewHashAggregator builds an aggregation kernel. groupIdx are the
// group-key positions in input rows; aggs declares the aggregates
// (Func SUM/AVG/MIN/MAX/COUNT) and aggIdx the matching input
// positions, with -1 meaning COUNT(*).
func NewHashAggregator(groupIdx []int, aggs []xlm.AggSpec, aggIdx []int) (*HashAggregator, error) {
	if len(aggs) != len(aggIdx) {
		return nil, fmt.Errorf("engine: hash aggregator needs one input position per aggregate")
	}
	for i, a := range aggs {
		switch a.Func {
		case "SUM", "AVG", "MIN", "MAX", "COUNT":
		default:
			return nil, fmt.Errorf("engine: unknown aggregate %q", a.Func)
		}
		if aggIdx[i] == -1 && a.Func != "COUNT" {
			return nil, fmt.Errorf("engine: aggregate %s requires an input column", a.Func)
		}
	}
	return &HashAggregator{op: &aggregationOp{
		group:  make([]string, len(groupIdx)),
		aggs:   append([]xlm.AggSpec(nil), aggs...),
		gIdx:   append([]int(nil), groupIdx...),
		aIdx:   append([]int(nil), aggIdx...),
		states: map[uint64][]*aggState{},
	}}, nil
}

// Add folds a batch of rows into the running group states. Rows are
// not retained.
func (a *HashAggregator) Add(rows [][]expr.Value) error { return a.op.add(rows) }

// Result finalises the aggregation: one row per group (group values
// then aggregates), groups in first-seen order.
func (a *HashAggregator) Result() [][]expr.Value { return a.op.result() }

// SortRowsBy stably sorts rows in place by the given column positions
// with the engine's Sort-operator semantics (NULLs first, numerics
// numerically, strings lexicographically) and returns the slice.
func SortRowsBy(rows [][]expr.Value, by []int) [][]expr.Value {
	op := &sortOp{idx: by, rows: rows}
	return op.result()
}
