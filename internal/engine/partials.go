package engine

import (
	"fmt"

	"quarry/internal/expr"
)

// Partial aggregation: the scatter-gather path runs the normal
// aggregation kernel on every shard, exports each shard's pre-
// finalisation group states (AggPartial), ships them, and Absorbs
// them into a fresh kernel on the gather side. Finalisation
// (aggregationOp.result) then runs exactly once, over merged states
// that are value-identical to what a single node folding all rows
// would hold — COUNT/int-SUM by integer addition, float SUM by exact
// expansion merge (FloatSum), MIN/MAX by the same Compare the fold
// uses — so the gathered answer is byte-identical to the single-node
// one by construction.

// MeasurePartial is one aggregate's mergeable state for one group.
type MeasurePartial struct {
	Count    int64
	IntSum   int64
	SumIsInt bool
	// Float-sum expansion (see FloatSum.Export).
	SumParts      []float64
	SumSpecial    float64
	SumHasSpecial bool
	Min           expr.Value
	Max           expr.Value
}

// AggPartial is one group's mergeable aggregation state: the group key
// values and one MeasurePartial per declared aggregate.
type AggPartial struct {
	Group    []expr.Value
	Measures []MeasurePartial
}

// Partials exports the aggregator's current group states in
// first-seen order. A global aggregate that saw zero rows exports
// zero partials: the zero-rows row (COUNT 0, NULL sums) is a
// finalisation artifact and is injected exactly once, by the merge
// side's Result.
func (a *HashAggregator) Partials() []AggPartial {
	o := a.op
	out := make([]AggPartial, 0, len(o.orderKeys))
	for _, h := range o.orderKeys {
		for _, st := range o.states[h] {
			p := AggPartial{
				Group:    append([]expr.Value(nil), st.groupVals...),
				Measures: make([]MeasurePartial, len(o.aggs)),
			}
			for i := range o.aggs {
				m := &p.Measures[i]
				m.Count = st.counts[i]
				m.IntSum = st.intSums[i]
				m.SumIsInt = st.sumIsInt[i]
				m.SumParts, m.SumSpecial, m.SumHasSpecial = st.sums[i].Export()
				m.Min = st.mins[i]
				m.Max = st.maxs[i]
			}
			out = append(out, p)
		}
	}
	return out
}

// Absorb merges exported partials into this aggregator's running
// states, as if the rows behind them had been Added here. New groups
// are created in absorption order, so absorbing shard partials in
// shard-index order gives a deterministic (if arbitrary) pre-sort
// emission order; callers that need a canonical order sort the
// finalised rows, exactly like the single-node paths do.
func (a *HashAggregator) Absorb(ps []AggPartial) error {
	o := a.op
	for pi := range ps {
		p := &ps[pi]
		if len(p.Group) != len(o.gIdx) {
			return fmt.Errorf("engine: partial has %d group values, aggregator expects %d", len(p.Group), len(o.gIdx))
		}
		if len(p.Measures) != len(o.aggs) {
			return fmt.Errorf("engine: partial has %d measures, aggregator expects %d", len(p.Measures), len(o.aggs))
		}
		st := o.findOrCreate(p.Group)
		for i := range o.aggs {
			m := &p.Measures[i]
			st.counts[i] += m.Count
			st.intSums[i] += m.IntSum
			st.sumIsInt[i] = st.sumIsInt[i] && m.SumIsInt
			st.sums[i].Merge(ImportFloatSum(m.SumParts, m.SumSpecial, m.SumHasSpecial))
			// MIN/MAX merge with the fold's semantics: NULL means "no
			// value yet", Compare errors keep the incumbent.
			if !m.Min.IsNull() {
				if st.mins[i].IsNull() {
					st.mins[i] = m.Min
				} else if c, err := m.Min.Compare(st.mins[i]); err == nil && c < 0 {
					st.mins[i] = m.Min
				}
			}
			if !m.Max.IsNull() {
				if st.maxs[i].IsNull() {
					st.maxs[i] = m.Max
				} else if c, err := m.Max.Compare(st.maxs[i]); err == nil && c > 0 {
					st.maxs[i] = m.Max
				}
			}
		}
	}
	return nil
}

// findOrCreate locates the state for a group key (same FNV hash and
// identity rules as the add fold), creating it in first-seen order.
func (o *aggregationOp) findOrCreate(group []expr.Value) *aggState {
	h := uint64(1469598103934665603)
	for _, v := range group {
		h = h*1099511628211 ^ v.Hash()
	}
	for _, cand := range o.states[h] {
		match := true
		for k := range group {
			if !valuesIdentical(cand.groupVals[k], group[k]) {
				match = false
				break
			}
		}
		if match {
			return cand
		}
	}
	st := o.newState()
	st.groupVals = append([]expr.Value(nil), group...)
	if len(o.states[h]) == 0 {
		o.orderKeys = append(o.orderKeys, h)
	}
	o.states[h] = append(o.states[h], st)
	return st
}
