package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"quarry/internal/expr"
	"quarry/internal/storage"
	"quarry/internal/xlm"
)

// DefaultBatchSize is the number of rows per pipeline batch.
const DefaultBatchSize = 1024

// pipeDepth is the per-edge buffer of in-flight batches on bounded
// (single-consumer) edges.
const pipeDepth = 4

// Options tunes the pipelined executor.
type Options struct {
	// Parallelism bounds how many operators may process batches
	// concurrently (the worker pool size). Zero or negative uses
	// GOMAXPROCS. Parallelism 1 executes one operator at a time and is
	// byte-identical to RunMaterializing's output — as is any other
	// setting: per-edge batch order is deterministic, so parallelism
	// never changes results, only wall-clock time.
	Parallelism int
	// BatchSize is the number of rows per batch streamed between
	// operators. Zero or negative uses DefaultBatchSize.
	BatchSize int
	// LoadFilter, when non-nil, is consulted once per loader target
	// with the table name and its column names (in table layout
	// order); a non-nil returned predicate is applied to every row at
	// the load boundary, after remapping to the table layout, and rows
	// it rejects are dropped before they reach storage. An error from
	// the hook fails the run. This is the shard partitioning hook: a
	// fact shard loads only the rows its hash partition owns while
	// every operator upstream of the loader stays byte-identical to
	// the single-node run.
	LoadFilter func(table string, cols []string) (func(row []expr.Value) bool, error)
}

func (o Options) withDefaults() Options {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	return o
}

// Batch is a run of rows streamed along one design edge. Batches are
// immutable once emitted: a batch may be shared by every consumer of a
// fan-out node, so operators must never mutate received rows.
type Batch struct {
	Rows [][]expr.Value
}

// source is the consumer side of an edge: next returns the following
// batch, or false at end-of-stream (or abort).
type source interface {
	next() (*Batch, bool)
}

// sink is the producer side of an edge.
type sink interface {
	send(*Batch) bool // false when the run has been aborted
	close()
}

// pipeEdge is a bounded single-consumer edge. Producers block when the
// consumer falls behind (backpressure), which keeps the memory of a
// streaming pipeline segment bounded at pipeDepth batches.
type pipeEdge struct {
	ch    chan *Batch
	abort <-chan struct{}
}

func (e *pipeEdge) send(b *Batch) bool {
	select {
	case e.ch <- b:
		return true
	case <-e.abort:
		return false
	}
}

func (e *pipeEdge) close() { close(e.ch) }

func (e *pipeEdge) next() (*Batch, bool) {
	select {
	case b, ok := <-e.ch:
		return b, ok
	case <-e.abort:
		return nil, false
	}
}

// fanEdge is one consumer's private cursor over a multi-consumer
// node's output. Sends never block: a slow consumer buffers batches
// instead of stalling its siblings. That is what makes
// order-preserving consumers deadlock-free on shared subplans — a
// Union draining its first input to completion, or a Join building
// from its right input before probing, must not be able to wedge a
// shared upstream producer. Worst-case buffering equals what the
// materialising executor held anyway; consumed slots are released
// eagerly.
type fanEdge struct {
	mu      sync.Mutex
	cond    sync.Cond
	items   []*Batch
	head    int
	closed  bool
	aborted bool
}

func newFanEdge() *fanEdge {
	e := &fanEdge{}
	e.cond.L = &e.mu
	return e
}

func (e *fanEdge) send(b *Batch) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.aborted {
		return false
	}
	e.items = append(e.items, b)
	e.cond.Signal()
	return true
}

func (e *fanEdge) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

func (e *fanEdge) forceClose() {
	e.mu.Lock()
	e.aborted = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

func (e *fanEdge) next() (*Batch, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.aborted {
			return nil, false
		}
		if e.head < len(e.items) {
			b := e.items[e.head]
			e.items[e.head] = nil // release the slot
			e.head++
			return b, true
		}
		if e.closed {
			return nil, false
		}
		e.cond.Wait()
	}
}

// nodeStats accumulates one operator's instrumentation. Today each
// runner goroutine is the sole writer of its own counters (the main
// goroutine reads only after wg.Wait), so plain fields would do; they
// are atomic deliberately, so that future intra-operator parallelism
// (a partitioned probe or scan writing from several goroutines)
// cannot silently race them.
type nodeStats struct {
	rowsIn  atomic.Int64
	rowsOut atomic.Int64
	nanos   atomic.Int64
}

// executor owns one pipelined run.
type executor struct {
	opts Options
	db   *storage.DB

	sem   chan struct{} // worker-pool tokens
	abort chan struct{} // closed on first error
	fails sync.Once
	err   error
	fans  []*fanEdge

	loadedMu sync.Mutex
	loaded   map[string]int64

	// staged collects completed replace-mode loads; the run commits
	// them all at once on success (storage.DB.PublishAll).
	staged *stagedLoads
}

func (ex *executor) fail(err error) {
	ex.fails.Do(func() {
		ex.err = err
		close(ex.abort)
		for _, f := range ex.fans {
			f.forceClose()
		}
	})
}

func (ex *executor) failed() bool {
	select {
	case <-ex.abort:
		return true
	default:
		return false
	}
}

func (ex *executor) addLoaded(table string, n int64) {
	ex.loadedMu.Lock()
	ex.loaded[table] += n
	ex.loadedMu.Unlock()
}

// errAborted signals that another operator already failed; it is never
// surfaced to the caller.
var errAborted = errors.New("engine: run aborted")

// runner executes one operation as a goroutine over its edges.
type runner struct {
	ex    *executor
	node  *xlm.Node
	infds [][]xlm.Field // input schemas, in edge order
	ins   []source
	outs  []sink
	stats *nodeStats

	// Source bindings are resolved at graph construction (before any
	// goroutine starts), so a datastore always observes the table
	// version that existed when the run began, even when a loader
	// replaces it mid-run — exactly like the materialising executor.
	// Loader targets, in contrast, are bound lazily (see runLoader):
	// a run that fails upstream must not have replaced its target
	// tables with empty ones.
	ds *datastoreOp

	// Loaders sharing one target table are chained in topological
	// order — each waits for loadAfter and closes loadDone on success
	// — reproducing the materialising execution order instead of
	// racing on the table. (A waiting loader cannot deadlock its
	// predecessor: the chains feeding two loaders only meet at
	// fan-out nodes, whose edges never block.)
	loadAfter <-chan struct{}
	loadDone  chan struct{}
}

// work runs fn holding a worker-pool token and charges its wall time
// to the operator. The token is held only while computing — never
// while blocked on an edge — so Parallelism bounds CPU concurrency
// without the pool starvation a blocked-holder design would risk.
func (r *runner) work(fn func() error) error {
	r.ex.sem <- struct{}{}
	start := time.Now()
	err := fn()
	r.stats.nanos.Add(int64(time.Since(start)))
	<-r.ex.sem
	return err
}

// emit forwards a batch to every consumer, counting its rows once.
func (r *runner) emit(b *Batch) bool {
	if len(b.Rows) == 0 {
		return true
	}
	r.stats.rowsOut.Add(int64(len(b.Rows)))
	for _, o := range r.outs {
		if !o.send(b) {
			return false
		}
	}
	return true
}

func (r *runner) emitRows(rows [][]expr.Value) bool {
	if len(rows) == 0 {
		return true
	}
	return r.emit(&Batch{Rows: rows})
}

// emitAll chunks a blocking operator's materialised result into
// batches.
func (r *runner) emitAll(rows [][]expr.Value) bool {
	bs := r.ex.opts.BatchSize
	for start := 0; start < len(rows); start += bs {
		end := start + bs
		if end > len(rows) {
			end = len(rows)
		}
		if !r.emitRows(rows[start:end]) {
			return false
		}
	}
	return true
}

// drain consumes input i to end-of-stream, counting rows in.
func (r *runner) drain(i int, fn func(*Batch) error) error {
	for {
		b, ok := r.ins[i].next()
		if !ok {
			return nil
		}
		r.stats.rowsIn.Add(int64(len(b.Rows)))
		if err := fn(b); err != nil {
			return err
		}
	}
}

func (r *runner) run() {
	defer func() {
		for _, o := range r.outs {
			o.close()
		}
	}()
	var err error
	switch r.node.Type {
	case xlm.OpDatastore:
		err = r.runDatastore()
	case xlm.OpExtraction, xlm.OpUnion:
		err = r.runPassthrough()
	case xlm.OpSelection:
		err = r.runSelection()
	case xlm.OpProjection:
		err = r.runProjection()
	case xlm.OpFunction:
		err = r.runFunction()
	case xlm.OpJoin:
		err = r.runJoin()
	case xlm.OpAggregation:
		err = r.runAggregation()
	case xlm.OpSort:
		err = r.runSort()
	case xlm.OpSurrogateKey:
		err = r.runSurrogateKey()
	case xlm.OpLoader:
		err = r.runLoader()
	default:
		err = fmt.Errorf("unsupported operation type %q", r.node.Type)
	}
	if err != nil && err != errAborted {
		r.ex.fail(fmt.Errorf("engine: node %q: %w", r.node.Name, err))
	}
}

func (r *runner) runDatastore() error {
	bs := r.ex.opts.BatchSize
	for start := 0; start < r.ds.limit; start += bs {
		var rows [][]expr.Value
		if err := r.work(func() error {
			rows = r.ds.read(start, bs)
			return nil
		}); err != nil {
			return err
		}
		if !r.emitRows(rows) {
			return errAborted
		}
	}
	return nil
}

// runPassthrough forwards batches unchanged: Extraction (one input)
// and Union (≥2 inputs, concatenated in edge order).
func (r *runner) runPassthrough() error {
	for i := range r.ins {
		if err := r.drain(i, func(b *Batch) error {
			if !r.emit(b) {
				return errAborted
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) runSelection() error {
	op, err := newSelectionOp(r.node, r.infds[0])
	if err != nil {
		return err
	}
	return r.drain(0, func(b *Batch) error {
		var out [][]expr.Value
		if err := r.work(func() error {
			var err error
			out, err = op.filter(nil, b.Rows)
			return err
		}); err != nil {
			return err
		}
		if !r.emitRows(out) {
			return errAborted
		}
		return nil
	})
}

func (r *runner) runProjection() error {
	op, err := newProjectionOp(r.node, r.infds[0])
	if err != nil {
		return err
	}
	return r.drain(0, func(b *Batch) error {
		var out [][]expr.Value
		if err := r.work(func() error {
			out = op.apply(nil, b.Rows)
			return nil
		}); err != nil {
			return err
		}
		if !r.emitRows(out) {
			return errAborted
		}
		return nil
	})
}

func (r *runner) runFunction() error {
	op, err := newFunctionOp(r.node, r.infds[0])
	if err != nil {
		return err
	}
	return r.drain(0, func(b *Batch) error {
		var out [][]expr.Value
		if err := r.work(func() error {
			var err error
			out, err = op.apply(nil, b.Rows)
			return err
		}); err != nil {
			return err
		}
		if !r.emitRows(out) {
			return errAborted
		}
		return nil
	})
}

func (r *runner) runJoin() error {
	op, err := newJoinOp(r.node, r.infds[0], r.infds[1])
	if err != nil {
		return err
	}
	// Build incrementally from the right input...
	if err := r.drain(1, func(b *Batch) error {
		return r.work(func() error {
			op.addBuild(b.Rows)
			return nil
		})
	}); err != nil {
		return err
	}
	// ...then stream the left input through the probe.
	return r.drain(0, func(b *Batch) error {
		var out [][]expr.Value
		if err := r.work(func() error {
			out = op.probe(nil, b.Rows)
			return nil
		}); err != nil {
			return err
		}
		if !r.emitRows(out) {
			return errAborted
		}
		return nil
	})
}

func (r *runner) runAggregation() error {
	op, err := newAggregationOp(r.node, r.infds[0])
	if err != nil {
		return err
	}
	if err := r.drain(0, func(b *Batch) error {
		return r.work(func() error { return op.add(b.Rows) })
	}); err != nil {
		return err
	}
	if r.ex.failed() {
		return errAborted
	}
	var rows [][]expr.Value
	if err := r.work(func() error {
		rows = op.result()
		return nil
	}); err != nil {
		return err
	}
	if !r.emitAll(rows) {
		return errAborted
	}
	return nil
}

func (r *runner) runSort() error {
	op, err := newSortOp(r.node, r.infds[0])
	if err != nil {
		return err
	}
	if err := r.drain(0, func(b *Batch) error {
		return r.work(func() error {
			op.add(b.Rows)
			return nil
		})
	}); err != nil {
		return err
	}
	if r.ex.failed() {
		return errAborted
	}
	var rows [][]expr.Value
	if err := r.work(func() error {
		rows = op.result()
		return nil
	}); err != nil {
		return err
	}
	if !r.emitAll(rows) {
		return errAborted
	}
	return nil
}

func (r *runner) runSurrogateKey() error {
	op, err := newSurrogateKeyOp(r.node, r.infds[0])
	if err != nil {
		return err
	}
	return r.drain(0, func(b *Batch) error {
		var out [][]expr.Value
		if err := r.work(func() error {
			out = op.apply(nil, b.Rows)
			return nil
		}); err != nil {
			return err
		}
		if !r.emitRows(out) {
			return errAborted
		}
		return nil
	})
}

// runLoader streams batches into the target table. The table is bound
// (staged for replace, or delta-staged and remapped for append) on the
// first batch — or at a clean end-of-stream for zero-row loads, which
// still create their target like the materialising path. Replace-mode
// loads stream into a detached staging table published atomically on
// success; append-mode loads stream into a detached delta table merged
// into the live target at the same commit point. Concurrent readers
// therefore never see a half-loaded table or a partial append, and
// failed runs leave every live table untouched.
func (r *runner) runLoader() error {
	if r.loadAfter != nil {
		select {
		case <-r.loadAfter:
		case <-r.ex.abort:
			return errAborted
		}
	}
	var op *loaderOp
	bind := func() error {
		if op != nil {
			return nil
		}
		var err error
		op, err = newLoaderOp(r.node, r.infds[0], r.ex.db, r.ex.staged)
		if err == nil {
			err = op.bindFilter(r.ex.opts.LoadFilter)
		}
		return err
	}
	if err := r.drain(0, func(b *Batch) error {
		return r.work(func() error {
			if err := bind(); err != nil {
				return err
			}
			return op.write(b.Rows)
		})
	}); err != nil {
		return err
	}
	if r.ex.failed() {
		return errAborted
	}
	if err := bind(); err != nil {
		return err
	}
	// Register the completed load with the run's staged set before
	// successor loaders of the same table are released (they resolve
	// their target through it); the run publishes everything at once
	// when all operations have succeeded.
	op.finish()
	r.ex.addLoaded(op.table, op.written)
	// Release the next loader of this table, if any. On failure paths
	// loadDone stays open and successors unblock through abort.
	close(r.loadDone)
	return nil
}

// RunWithOptions validates and executes the design with the pipelined,
// DAG-parallel executor. Every operation runs as a batch iterator over
// its input edges; single-consumer edges are bounded channels
// (backpressure), multi-consumer nodes fan out through per-consumer
// cursors. On success, results — loaded tables, per-operation row
// counts, Loaded totals — are byte-identical to RunMaterializing for
// any Options. Replace-mode loads are staged and published atomically
// on success, and append-mode loads are staged as deltas merged at the
// same commit point, so a failed run leaves every live table — replace
// and append targets alike — in its pre-run state.
func RunWithOptions(d *xlm.Design, db *storage.DB, opts Options) (*Result, error) {
	return RunWithOptionsContext(context.Background(), d, db, opts)
}

// RunWithOptionsContext is RunWithOptions under a context: when ctx is
// cancelled the run aborts through the same first-error path as an
// operation failure — every runner observes the closed abort channel
// at its next batch boundary — and nothing is committed (the staged
// loads are simply dropped, so live tables keep their pre-run state).
// The serving layer uses this to stop star-flow oracle queries whose
// client has disconnected.
func RunWithOptionsContext(ctx context.Context, d *xlm.Design, db *storage.DB, opts Options) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	order, err := d.TopoSort()
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	ex := &executor{
		opts:   opts,
		db:     db,
		sem:    make(chan struct{}, opts.Parallelism),
		abort:  make(chan struct{}),
		loaded: map[string]int64{},
		staged: newStagedLoads(),
	}
	// One edge object per design edge. A node with several consumers
	// gets one never-blocking fanEdge cursor per consumer; a node with
	// a single consumer streams through a bounded pipe.
	type edgeKey struct{ from, to string }
	type duplex interface {
		source
		sink
	}
	edges := map[edgeKey]duplex{}
	for _, e := range d.Edges() {
		if len(d.Outputs(e.From)) > 1 {
			fe := newFanEdge()
			ex.fans = append(ex.fans, fe)
			edges[edgeKey{e.From, e.To}] = fe
		} else {
			edges[edgeKey{e.From, e.To}] = &pipeEdge{
				ch:    make(chan *Batch, pipeDepth),
				abort: ex.abort,
			}
		}
	}
	// Build runners in topological order. Datastore bindings happen
	// here, sequentially and before any goroutine starts, so "table
	// not found" surfaces without side effects and scans snapshot the
	// pre-run table versions.
	runners := make([]*runner, 0, len(order))
	stats := make(map[string]*nodeStats, len(order))
	loaderChain := map[string]chan struct{}{}
	for _, n := range order {
		r := &runner{ex: ex, node: n, stats: &nodeStats{}}
		stats[n.Name] = r.stats
		for _, in := range d.Inputs(n.Name) {
			r.infds = append(r.infds, in.Fields)
			r.ins = append(r.ins, edges[edgeKey{in.Name, n.Name}])
		}
		for _, out := range d.Outputs(n.Name) {
			r.outs = append(r.outs, edges[edgeKey{n.Name, out.Name}])
		}
		switch n.Type {
		case xlm.OpDatastore:
			if r.ds, err = newDatastoreOp(n, db); err != nil {
				return nil, fmt.Errorf("engine: node %q: %w", n.Name, err)
			}
		case xlm.OpLoader:
			table := n.Param("table")
			r.loadAfter = loaderChain[table]
			r.loadDone = make(chan struct{})
			loaderChain[table] = r.loadDone
		}
		runners = append(runners, r)
	}
	start := time.Now()
	// Cancellation watcher: fold ctx into the executor's own abort
	// machinery so a cancel behaves exactly like an operation error.
	if ctx != nil && ctx.Done() != nil {
		watcherDone := make(chan struct{})
		defer close(watcherDone)
		go func() {
			select {
			case <-ctx.Done():
				ex.fail(ctx.Err())
			case <-ex.abort:
			case <-watcherDone:
			}
		}()
	}
	var wg sync.WaitGroup
	for _, r := range runners {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.run()
		}()
	}
	wg.Wait()
	if ex.err != nil {
		return nil, ex.err
	}
	// Commit point: publish every staged load — replace tables and
	// append deltas — in one critical section, so concurrent snapshots
	// see the whole run or none of it.
	if err := ex.staged.commit(db); err != nil {
		return nil, fmt.Errorf("engine: committing run: %w", err)
	}
	res := &Result{Loaded: ex.loaded, Elapsed: time.Since(start)}
	for _, n := range order {
		st := stats[n.Name]
		res.Stats = append(res.Stats, OpStat{
			Node:     n.Name,
			Type:     n.Type,
			RowsIn:   st.rowsIn.Load(),
			RowsOut:  st.rowsOut.Load(),
			Duration: time.Duration(st.nanos.Load()),
		})
	}
	return res, nil
}
