package engine

import (
	"testing"

	"quarry/internal/etlintegrator"
	"quarry/internal/interpreter"
	"quarry/internal/quality"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xlm"
)

// benchIntegratedDesign builds the multi-branch unified ETL flow over
// all canonical TPC-H requirements plus a generated micro-TPC-H
// instance at the given scale factor — the workload the
// materializing-vs-pipelined speedup is tracked on.
func benchIntegratedDesign(b *testing.B, sf float64) (*xlm.Design, *storage.DB) {
	b.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		b.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		b.Fatal(err)
	}
	c, err := tpch.Catalog(sf)
	if err != nil {
		b.Fatal(err)
	}
	in, err := interpreter.New(o, m, c)
	if err != nil {
		b.Fatal(err)
	}
	etlInt := etlintegrator.New(quality.DefaultETLCost(c), true)
	var unified *xlm.Design
	for _, r := range tpch.CanonicalRequirements() {
		pd, err := in.Interpret(r)
		if err != nil {
			b.Fatal(err)
		}
		if unified, _, err = etlInt.Integrate(unified, pd.ETL); err != nil {
			b.Fatal(err)
		}
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, sf, 42); err != nil {
		b.Fatal(err)
	}
	return unified, db
}

func BenchmarkEngineExec_Materializing(b *testing.B) {
	d, db := benchIntegratedDesign(b, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMaterializing(d, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineExec_Pipelined(b *testing.B) {
	d, db := benchIntegratedDesign(b, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(d, db); err != nil {
			b.Fatal(err)
		}
	}
}
