package engine

import (
	"testing"

	"quarry/internal/etlintegrator"
	"quarry/internal/interpreter"
	"quarry/internal/quality"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xlm"
)

// benchIntegratedDesign builds the multi-branch unified ETL flow over
// all canonical TPC-H requirements plus a generated micro-TPC-H
// instance at the given scale factor — the workload the
// materializing-vs-pipelined speedup is tracked on.
func benchIntegratedDesign(b *testing.B, sf float64) (*xlm.Design, *storage.DB) {
	b.Helper()
	return benchIntegratedDesignIn(b, sf, storage.NewDB())
}

// benchIntegratedDesignIn generates the workload into a
// caller-provided database (e.g. a disk-backed one).
func benchIntegratedDesignIn(b *testing.B, sf float64, db *storage.DB) (*xlm.Design, *storage.DB) {
	b.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		b.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		b.Fatal(err)
	}
	c, err := tpch.Catalog(sf)
	if err != nil {
		b.Fatal(err)
	}
	in, err := interpreter.New(o, m, c)
	if err != nil {
		b.Fatal(err)
	}
	etlInt := etlintegrator.New(quality.DefaultETLCost(c), true)
	var unified *xlm.Design
	for _, r := range tpch.CanonicalRequirements() {
		pd, err := in.Interpret(r)
		if err != nil {
			b.Fatal(err)
		}
		if unified, _, err = etlInt.Integrate(unified, pd.ETL); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := tpch.Generate(db, sf, 42); err != nil {
		b.Fatal(err)
	}
	return unified, db
}

func BenchmarkEngineExec_Materializing(b *testing.B) {
	d, db := benchIntegratedDesign(b, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMaterializing(d, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineExec_Pipelined(b *testing.B) {
	d, db := benchIntegratedDesign(b, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(d, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineExec_Disk is BenchmarkEngineExec_Pipelined against a
// disk-backed warehouse: sources stream through paged cursors and
// every run pays its crash-safe commit (segment writes + manifest
// fsync/rename). The delta over the pipelined benchmark is the whole
// price of durability.
func BenchmarkEngineExec_Disk(b *testing.B) {
	db, err := storage.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	d, _ := benchIntegratedDesignIn(b, 5, db)
	if err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(d, db); err != nil {
			b.Fatal(err)
		}
	}
}
