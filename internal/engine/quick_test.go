package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"quarry/internal/expr"
	"quarry/internal/storage"
	"quarry/internal/xlm"
)

// randTable fills a table with n random rows over (k int, g string,
// x float-with-nulls).
func randTable(r *rand.Rand, db *storage.DB, name string, n int) *storage.Table {
	t, err := db.CreateOrReplaceTable(name, []storage.Column{
		{Name: "k", Type: "int"},
		{Name: "g", Type: "string"},
		{Name: "x", Type: "float"},
	})
	if err != nil {
		panic(err)
	}
	groups := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		x := expr.Null()
		if r.Intn(10) != 0 {
			x = expr.Float(float64(r.Intn(1000)) / 4)
		}
		if err := t.Insert(storage.Row{
			expr.Int(int64(r.Intn(20))),
			expr.Str(groups[r.Intn(len(groups))]),
			x,
		}); err != nil {
			panic(err)
		}
	}
	return t
}

func runFlow(db *storage.DB, mid ...*xlm.Node) (*storage.Table, error) {
	d := xlm.NewDesign("quick")
	if err := d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "k", Type: "int"}, {Name: "g", Type: "string"}, {Name: "x", Type: "float"}},
		Params: map[string]string{"table": "t"}}); err != nil {
		return nil, err
	}
	prev := "DS"
	for _, n := range mid {
		if err := d.AddNode(n); err != nil {
			return nil, err
		}
		if err := d.AddEdge(prev, n.Name); err != nil {
			return nil, err
		}
		prev = n.Name
	}
	if err := d.AddNode(&xlm.Node{Name: "OUT", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}}); err != nil {
		return nil, err
	}
	if err := d.AddEdge(prev, "OUT"); err != nil {
		return nil, err
	}
	if _, err := Run(d, db); err != nil {
		return nil, err
	}
	out, _ := db.Table("out")
	return out, nil
}

// Property: Selection matches a direct reference filter (row counts
// and multiset of keys).
func TestQuickSelectionMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := storage.NewDB()
		src := randTable(r, db, "t", 50+r.Intn(100))
		threshold := float64(r.Intn(250))
		pred := fmt.Sprintf("x > %g", threshold)
		out, err := runFlow(db, &xlm.Node{Name: "SEL", Type: xlm.OpSelection,
			Params: map[string]string{"predicate": pred}})
		if err != nil {
			return false
		}
		// Reference: NULL x never passes.
		var want int64
		src.Scan(func(row storage.Row) error {
			if !row[2].IsNull() {
				if v, _ := row[2].AsFloat(); v > threshold {
					want++
				}
			}
			return nil
		})
		return out.NumRows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SUM/COUNT aggregation matches a reference computed by
// direct scanning; AVG = SUM/COUNT.
func TestQuickAggregationMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := storage.NewDB()
		src := randTable(r, db, "t", 80+r.Intn(120))
		out, err := runFlow(db, &xlm.Node{Name: "AGG", Type: xlm.OpAggregation,
			Params: map[string]string{"group": "g", "aggregates": "s:SUM:x; c:COUNT:x; a:AVG:x"}})
		if err != nil {
			return false
		}
		sums := map[string]float64{}
		counts := map[string]int64{}
		groups := map[string]bool{}
		src.Scan(func(row storage.Row) error {
			g := row[1].AsString()
			groups[g] = true
			if !row[2].IsNull() {
				v, _ := row[2].AsFloat()
				sums[g] += v
				counts[g]++
			}
			return nil
		})
		if int(out.NumRows()) != len(groups) {
			return false
		}
		ok := true
		out.Scan(func(row storage.Row) error {
			g := row[0].AsString()
			if counts[g] == 0 {
				if !row[1].IsNull() || row[2].AsInt() != 0 || !row[3].IsNull() {
					ok = false
				}
				return nil
			}
			s, _ := row[1].AsFloat()
			a, _ := row[3].AsFloat()
			if !approxEq(s, sums[g]) || row[2].AsInt() != counts[g] || !approxEq(a, sums[g]/float64(counts[g])) {
				ok = false
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

// Property: join output size equals the reference nested-loop count,
// and joining is insensitive to input order (left/right swap with
// mirrored keys).
func TestQuickJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := storage.NewDB()
		l, _ := db.CreateOrReplaceTable("l", []storage.Column{{Name: "lk", Type: "int"}, {Name: "lv", Type: "float"}})
		rt, _ := db.CreateOrReplaceTable("r", []storage.Column{{Name: "rk", Type: "int"}, {Name: "rv", Type: "string"}})
		for i := 0; i < 30+r.Intn(50); i++ {
			k := expr.Null()
			if r.Intn(8) != 0 {
				k = expr.Int(int64(r.Intn(10)))
			}
			l.Insert(storage.Row{k, expr.Float(float64(i))})
		}
		for i := 0; i < 20+r.Intn(30); i++ {
			k := expr.Null()
			if r.Intn(8) != 0 {
				k = expr.Int(int64(r.Intn(10)))
			}
			rt.Insert(storage.Row{k, expr.Str(fmt.Sprintf("v%d", i))})
		}
		build := func(leftFirst bool) (int64, bool) {
			d := xlm.NewDesign("j")
			d.AddNode(&xlm.Node{Name: "L", Type: xlm.OpDatastore,
				Fields: []xlm.Field{{Name: "lk", Type: "int"}, {Name: "lv", Type: "float"}},
				Params: map[string]string{"table": "l"}})
			d.AddNode(&xlm.Node{Name: "R", Type: xlm.OpDatastore,
				Fields: []xlm.Field{{Name: "rk", Type: "int"}, {Name: "rv", Type: "string"}},
				Params: map[string]string{"table": "r"}})
			on := "lk=rk"
			a, b := "L", "R"
			if !leftFirst {
				on = "rk=lk"
				a, b = "R", "L"
			}
			d.AddNode(&xlm.Node{Name: "J", Type: xlm.OpJoin, Params: map[string]string{"on": on}})
			d.AddNode(&xlm.Node{Name: "O", Type: xlm.OpLoader, Params: map[string]string{"table": "out_" + a}})
			d.AddEdge(a, "J")
			d.AddEdge(b, "J")
			d.AddEdge("J", "O")
			res, err := Run(d, db)
			if err != nil {
				return 0, false
			}
			return res.Loaded["out_"+a], true
		}
		n1, ok1 := build(true)
		n2, ok2 := build(false)
		if !ok1 || !ok2 {
			return false
		}
		// Reference nested loop.
		var want int64
		l.Scan(func(lr storage.Row) error {
			if lr[0].IsNull() {
				return nil
			}
			rt.Scan(func(rr storage.Row) error {
				if !rr[0].IsNull() && lr[0].Equal(rr[0]) {
					want++
				}
				return nil
			})
			return nil
		})
		return n1 == want && n2 == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: selection pushdown through a function is
// semantics-preserving: Function→Selection ≡ Selection→Function when
// the predicate only references source columns.
func TestQuickSelectionFunctionCommute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := storage.NewDB()
		randTable(r, db, "t", 60+r.Intn(60))
		threshold := float64(r.Intn(200))
		sel := func(name string) *xlm.Node {
			return &xlm.Node{Name: name, Type: xlm.OpSelection,
				Params: map[string]string{"predicate": fmt.Sprintf("x > %g", threshold)}}
		}
		fn := func(name string) *xlm.Node {
			return &xlm.Node{Name: name, Type: xlm.OpFunction,
				Params: map[string]string{"name": "y", "expr": "x * 2 + 1"}}
		}
		out1, err := runFlow(db, fn("F"), sel("S"))
		if err != nil {
			return false
		}
		rows1 := out1.NumRows()
		sum1 := sumCol(out1, "y")
		out2, err := runFlow(db, sel("S"), fn("F"))
		if err != nil {
			return false
		}
		return rows1 == out2.NumRows() && approxEq(sum1, sumCol(out2, "y"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sumCol(t *storage.Table, col string) float64 {
	i, ok := t.ColumnIndex(col)
	if !ok {
		return -1
	}
	var s float64
	t.Scan(func(r storage.Row) error {
		if !r[i].IsNull() {
			v, _ := r[i].AsFloat()
			s += v
		}
		return nil
	})
	return s
}

// Property: surrogate keys are dense, 1-based, and identical natural
// keys always get identical surrogate keys.
func TestQuickSurrogateKeyDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := storage.NewDB()
		randTable(r, db, "t", 50+r.Intn(100))
		out, err := runFlow(db, &xlm.Node{Name: "SK", Type: xlm.OpSurrogateKey,
			Params: map[string]string{"key": "sk", "on": "g"}})
		if err != nil {
			return false
		}
		gIdx, _ := out.ColumnIndex("g")
		skIdx, _ := out.ColumnIndex("sk")
		byGroup := map[string]int64{}
		seen := map[int64]bool{}
		ok := true
		out.Scan(func(row storage.Row) error {
			g := row[gIdx].AsString()
			sk := row[skIdx].AsInt()
			if prev, has := byGroup[g]; has && prev != sk {
				ok = false
			}
			byGroup[g] = sk
			seen[sk] = true
			return nil
		})
		if !ok {
			return false
		}
		// Dense 1..N.
		for i := int64(1); i <= int64(len(byGroup)); i++ {
			if !seen[i] {
				return false
			}
		}
		return len(seen) == len(byGroup)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
