// Package etlintegrator implements Quarry's ETL Process Integrator:
// the incremental consolidation of partial ETL flows into a unified
// flow answering all requirements processed so far (§2.3, after [5]).
//
// For each new partial flow the integrator maximises reuse by walking
// the partial design in topological order and, for every operation,
// looking for an existing unified operation with the same canonical
// signature fed by the same (already matched) inputs. When the
// direct match fails, it aligns operation order by applying generic
// equivalence rules — selections commute with other row-wise
// operations — hoisting an equivalent downstream selection up the
// unified flow to expose the match (which simultaneously pushes the
// selection towards the sources). Remaining operations are attached
// as new branches. A configurable cost model (quality.ETLCostModel)
// quantifies the integration benefit: the unified flow's estimated
// execution time versus running the flows separately.
package etlintegrator

import (
	"fmt"
	"sort"
	"strings"

	"quarry/internal/expr"
	"quarry/internal/quality"
	"quarry/internal/xlm"
)

// Report summarises one integration step.
type Report struct {
	// Reused counts partial operations matched to existing unified
	// operations; Added counts operations copied in as new; Hoisted
	// counts equivalence-rule reorderings applied.
	Reused  int
	Added   int
	Hoisted int
	// Mapping maps every partial node name to its unified node name.
	Mapping map[string]string
	// CostBefore/CostAfter estimate the unified flow before and after
	// integration; CostSeparate estimates executing the previous
	// unified flow and the partial flow independently (the baseline
	// the paper's demo compares against).
	CostBefore   float64
	CostAfter    float64
	CostSeparate float64
}

// ReuseRatio is the fraction of partial operations that were matched
// rather than copied.
func (r *Report) ReuseRatio() float64 {
	total := r.Reused + r.Added
	if total == 0 {
		return 0
	}
	return float64(r.Reused) / float64(total)
}

// Integrator consolidates partial ETL designs.
type Integrator struct {
	cost    quality.ETLCostModel
	reorder bool
}

// New creates an integrator. A nil cost model disables cost
// reporting; reorder enables the equivalence-rule alignment.
func New(cost quality.ETLCostModel, reorder bool) *Integrator {
	return &Integrator{cost: cost, reorder: reorder}
}

// Integrate consolidates the partial flow into the unified one and
// returns the new unified design; inputs are not mutated. A nil
// unified design starts a fresh flow.
func (it *Integrator) Integrate(unified, partial *xlm.Design) (*xlm.Design, *Report, error) {
	if partial == nil {
		return nil, nil, fmt.Errorf("etlintegrator: nil partial design")
	}
	if err := partial.Validate(); err != nil {
		return nil, nil, fmt.Errorf("etlintegrator: partial design invalid: %w", err)
	}
	rep := &Report{Mapping: map[string]string{}}
	if unified == nil || len(unified.Nodes()) == 0 {
		out := partial.Clone()
		out.Name = "etl_unified"
		mergeRequirementMetadata(out, nil, partial)
		rep.Added = len(out.Nodes())
		for _, n := range out.Nodes() {
			rep.Mapping[n.Name] = n.Name
		}
		if it.cost != nil {
			c, _, err := it.cost.Estimate(out)
			if err != nil {
				return nil, nil, err
			}
			rep.CostAfter, rep.CostSeparate = c, c
		}
		return out, rep, nil
	}
	if err := unified.Validate(); err != nil {
		return nil, nil, fmt.Errorf("etlintegrator: unified design invalid: %w", err)
	}
	out := unified.Clone()
	out.Name = "etl_unified"
	mergeRequirementMetadata(out, unified, partial)

	if it.cost != nil {
		before, _, err := it.cost.Estimate(unified)
		if err != nil {
			return nil, nil, err
		}
		partCost, _, err := it.cost.Estimate(partial)
		if err != nil {
			return nil, nil, err
		}
		rep.CostBefore = before
		rep.CostSeparate = before + partCost
	}

	order, err := partial.TopoSort()
	if err != nil {
		return nil, nil, err
	}
	for _, p := range order {
		inputs := partial.Inputs(p.Name)
		mappedInputs := make([]string, len(inputs))
		for i, in := range inputs {
			mi, ok := rep.Mapping[in.Name]
			if !ok {
				return nil, nil, fmt.Errorf("etlintegrator: internal: input %q of %q not yet mapped", in.Name, p.Name)
			}
			mappedInputs[i] = mi
		}
		// Direct reuse: same signature, same ordered inputs.
		if u := findEquivalent(out, p, mappedInputs); u != "" {
			rep.Mapping[p.Name] = u
			rep.Reused++
			continue
		}
		// Equivalence-rule alignment: hoist a matching downstream
		// selection up to the mapped input.
		if it.reorder && p.Type == xlm.OpSelection && len(mappedInputs) == 1 {
			if s := it.hoistSelection(out, p, mappedInputs[0]); s != "" {
				rep.Mapping[p.Name] = s
				rep.Reused++
				rep.Hoisted++
				continue
			}
		}
		// No reuse: copy the operation in as a new node.
		name := uniqueName(out, p.Name)
		nn := &xlm.Node{Name: name, Type: p.Type, Optype: p.Optype}
		nn.Fields = append([]xlm.Field(nil), p.Fields...)
		nn.Params = map[string]string{}
		for k, v := range p.Params {
			nn.Params[k] = v
		}
		if err := out.AddNode(nn); err != nil {
			return nil, nil, err
		}
		for _, mi := range mappedInputs {
			if err := out.AddEdge(mi, name); err != nil {
				return nil, nil, err
			}
		}
		rep.Mapping[p.Name] = name
		rep.Added++
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("etlintegrator: integrated design invalid: %w", err)
	}
	if it.cost != nil {
		after, _, err := it.cost.Estimate(out)
		if err != nil {
			return nil, nil, err
		}
		rep.CostAfter = after
	}
	return out, rep, nil
}

// findEquivalent searches for a unified node with the same signature
// and the same ordered inputs.
func findEquivalent(d *xlm.Design, p *xlm.Node, mappedInputs []string) string {
	sig := p.Signature()
	for _, u := range d.Nodes() {
		if u.Signature() != sig {
			continue
		}
		ins := d.Inputs(u.Name)
		if len(ins) != len(mappedInputs) {
			continue
		}
		same := true
		for i, in := range ins {
			if in.Name != mappedInputs[i] {
				same = false
				break
			}
		}
		if same {
			return u.Name
		}
	}
	return ""
}

// hoistSelection looks for a selection equivalent to p downstream of
// the anchor node through a linear chain of row-wise operations
// (selections and functions with single consumers) and, if found,
// hoists it to sit directly after the anchor. This is the generic
// equivalence rule of [5]: a selection commutes with any operation
// that neither drops nor creates the attributes it references —
// guaranteed here by requiring the predicate to be evaluable on the
// anchor's output schema.
func (it *Integrator) hoistSelection(d *xlm.Design, p *xlm.Node, anchor string) string {
	anchorNode, ok := d.Node(anchor)
	if !ok {
		return ""
	}
	predOK := func(sel *xlm.Node) bool {
		pred, err := sel.Predicate()
		if err != nil {
			return false
		}
		for _, id := range expr.Idents(pred) {
			if _, has := anchorNode.Field(id); !has {
				return false
			}
		}
		return true
	}
	sig := p.Signature()
	// Walk every linear chain leaving the anchor.
	for _, start := range d.Outputs(anchor) {
		cur := start
		for {
			if cur.Type == xlm.OpSelection && cur.Signature() == sig && predOK(cur) {
				if cur.Name == "" {
					return ""
				}
				// Direct child needs no hoisting (the caller's direct
				// match would have found it with identical inputs);
				// still handle it uniformly.
				if hoist(d, anchor, start.Name, cur.Name) {
					return cur.Name
				}
				return ""
			}
			// Continue only through commuting, linear, single-consumer
			// row-wise operations.
			if cur.Type != xlm.OpSelection && cur.Type != xlm.OpFunction {
				break
			}
			outs := d.Outputs(cur.Name)
			if len(outs) != 1 || len(d.Inputs(cur.Name)) != 1 {
				break
			}
			cur = outs[0]
		}
	}
	return ""
}

// hoist splices sel out of its position and re-inserts it between
// anchor and chainStart. All intermediate chain nodes must have a
// single consumer (verified during the walk). Returns false when the
// graph shape is unexpected.
func hoist(d *xlm.Design, anchor, chainStart, sel string) bool {
	if chainStart == sel {
		return true // already directly after the anchor
	}
	selInputs := d.Inputs(sel)
	if len(selInputs) != 1 {
		return false
	}
	x := selInputs[0].Name
	consumers := d.Outputs(sel)
	// Splice out: x → (sel's consumers).
	d.RemoveEdgeBetween(x, sel)
	for _, y := range consumers {
		d.RemoveEdgeBetween(sel, y.Name)
		if err := d.AddEdge(x, y.Name); err != nil {
			return false
		}
	}
	// Re-insert: anchor → sel → chainStart.
	d.RemoveEdgeBetween(anchor, chainStart)
	if err := d.AddEdge(anchor, sel); err != nil {
		return false
	}
	if err := d.AddEdge(sel, chainStart); err != nil {
		return false
	}
	return true
}

// uniqueName returns name, or name with a numeric suffix when taken.
func uniqueName(d *xlm.Design, name string) string {
	if _, exists := d.Node(name); !exists {
		return name
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s__%d", name, i)
		if _, exists := d.Node(cand); !exists {
			return cand
		}
	}
}

// mergeRequirementMetadata accumulates the requirement IDs answered
// by the unified flow in metadata["requirements"].
func mergeRequirementMetadata(out, unified, partial *xlm.Design) {
	set := map[string]bool{}
	collect := func(d *xlm.Design) {
		if d == nil {
			return
		}
		if v := d.Metadata["requirements"]; v != "" {
			for _, r := range strings.Split(v, ",") {
				set[r] = true
			}
		}
		if v := d.Metadata["requirement"]; v != "" {
			set[v] = true
		}
	}
	collect(unified)
	collect(partial)
	ids := make([]string, 0, len(set))
	for r := range set {
		ids = append(ids, r)
	}
	sort.Strings(ids)
	out.Metadata["requirements"] = strings.Join(ids, ",")
	delete(out.Metadata, "requirement")
}
