package etlintegrator

import (
	"strings"
	"testing"

	"quarry/internal/engine"
	"quarry/internal/expr"
	"quarry/internal/interpreter"
	"quarry/internal/quality"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xlm"
)

func tpchFlows(t *testing.T) (flows []*xlm.Design, cost quality.ETLCostModel) {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(10)
	if err != nil {
		t.Fatal(err)
	}
	in, err := interpreter.New(o, m, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tpch.CanonicalRequirements() {
		pd, err := in.Interpret(r)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, pd.ETL)
	}
	return flows, quality.DefaultETLCost(c)
}

func TestIntegrateFirstFlow(t *testing.T) {
	flows, cost := tpchFlows(t)
	it := New(cost, true)
	u, rep, err := it.Integrate(nil, flows[0])
	if err != nil {
		t.Fatal(err)
	}
	if u.Name != "etl_unified" {
		t.Errorf("name = %q", u.Name)
	}
	if rep.Added != len(flows[0].Nodes()) || rep.Reused != 0 {
		t.Errorf("report = %+v", rep)
	}
	if u.Metadata["requirements"] != "IR_revenue" {
		t.Errorf("requirements metadata = %q", u.Metadata["requirements"])
	}
}

// TestFigure3ETLIntegration reproduces the ETL side of Figure 3:
// integrating the net-profit flow into the revenue flow reuses the
// shared extraction and dimension-load pipelines.
func TestFigure3ETLIntegration(t *testing.T) {
	flows, cost := tpchFlows(t)
	it := New(cost, true)
	u, _, err := it.Integrate(nil, flows[0])
	if err != nil {
		t.Fatal(err)
	}
	u, rep, err := it.Integrate(u, flows[1])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reused == 0 {
		t.Fatal("no operations reused")
	}
	// Shared datastores appear once.
	for _, name := range []string{"DATASTORE_Partsupp", "DATASTORE_Supplier", "DATASTORE_Nation", "DATASTORE_Part"} {
		count := 0
		for _, n := range u.Nodes() {
			if n.Name == name || strings.HasPrefix(n.Name, name+"__") {
				count++
			}
		}
		if count != 1 {
			t.Errorf("%s appears %d times", name, count)
		}
	}
	// Shared dimension loads appear once.
	loaders := 0
	for _, n := range u.Nodes() {
		if n.Type == xlm.OpLoader && n.Param("table") == "dim_part" {
			loaders++
		}
	}
	if loaders != 1 {
		t.Errorf("dim_part loaders = %d, want 1 (reused)", loaders)
	}
	// Both fact loaders exist.
	hasRevenue, hasNetprofit := false, false
	for _, n := range u.Nodes() {
		if n.Type == xlm.OpLoader {
			switch n.Param("table") {
			case "fact_table_revenue":
				hasRevenue = true
			case "fact_table_netprofit":
				hasNetprofit = true
			}
		}
	}
	if !hasRevenue || !hasNetprofit {
		t.Error("fact loaders missing")
	}
	// The integrated flow is estimated cheaper than separate runs.
	if rep.CostAfter >= rep.CostSeparate {
		t.Errorf("integrated cost %v >= separate %v", rep.CostAfter, rep.CostSeparate)
	}
	// Metadata accumulates requirements.
	if u.Metadata["requirements"] != "IR_netprofit,IR_revenue" {
		t.Errorf("requirements = %q", u.Metadata["requirements"])
	}
	if rep.ReuseRatio() <= 0.2 {
		t.Errorf("reuse ratio = %v, want substantial reuse", rep.ReuseRatio())
	}
}

func TestIncrementalIntegrationAllCanonical(t *testing.T) {
	flows, cost := tpchFlows(t)
	it := New(cost, true)
	var u *xlm.Design
	var err error
	totalReused := 0
	for _, f := range flows {
		var rep *Report
		u, rep, err = it.Integrate(u, f)
		if err != nil {
			t.Fatal(err)
		}
		totalReused += rep.Reused
		if err := u.Validate(); err != nil {
			t.Fatalf("unified invalid after %s: %v", f.Name, err)
		}
	}
	if totalReused == 0 {
		t.Error("nothing reused across four requirements")
	}
}

func TestIdempotentIntegration(t *testing.T) {
	flows, cost := tpchFlows(t)
	it := New(cost, true)
	u1, _, err := it.Integrate(nil, flows[0])
	if err != nil {
		t.Fatal(err)
	}
	u2, rep, err := it.Integrate(u1, flows[0])
	if err != nil {
		t.Fatal(err)
	}
	// Re-integrating the same flow reuses every operation.
	if rep.Added != 0 {
		t.Errorf("re-integration added %d nodes", rep.Added)
	}
	if len(u2.Nodes()) != len(u1.Nodes()) {
		t.Errorf("design grew: %d → %d", len(u1.Nodes()), len(u2.Nodes()))
	}
}

// mkSel builds a small hand-written flow src → ops… → load, with the
// given middle operations, standing in for an externally designed
// partial flow (the paper allows plugging in external design tools).
func mkFlow(t *testing.T, name string, mid ...*xlm.Node) *xlm.Design {
	t.Helper()
	d := xlm.NewDesign(name)
	if err := d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "a", Type: "int"}, {Name: "b", Type: "float"}, {Name: "g", Type: "string"}},
		Params: map[string]string{"store": "s", "table": "t"}}); err != nil {
		t.Fatal(err)
	}
	prev := "DS"
	for _, n := range mid {
		if err := d.AddNode(n); err != nil {
			t.Fatal(err)
		}
		if err := d.AddEdge(prev, n.Name); err != nil {
			t.Fatal(err)
		}
		prev = n.Name
	}
	if err := d.AddNode(&xlm.Node{Name: "LOAD_" + name, Type: xlm.OpLoader, Params: map[string]string{"table": "out_" + name}}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(prev, "LOAD_"+name); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestReorderingHoistsSelection: the unified flow computes
// Function(f) before Selection(g='x'); the partial flow wants the
// selection directly after the source. With reordering the integrator
// hoists the unified selection and reuses it; without, it duplicates.
func TestReorderingHoistsSelection(t *testing.T) {
	unifiedFlow := func() *xlm.Design {
		return mkFlow(t, "u",
			&xlm.Node{Name: "F", Type: xlm.OpFunction, Params: map[string]string{"name": "f", "expr": "b * 2"}},
			&xlm.Node{Name: "SEL", Type: xlm.OpSelection, Params: map[string]string{"predicate": "g = 'x'"}},
		)
	}
	partialFlow := func() *xlm.Design {
		return mkFlow(t, "p",
			&xlm.Node{Name: "SEL_P", Type: xlm.OpSelection, Params: map[string]string{"predicate": "g = 'x'"}},
			&xlm.Node{Name: "AGG", Type: xlm.OpAggregation, Params: map[string]string{"group": "g", "aggregates": "s:SUM:a"}},
		)
	}

	// With reordering.
	it := New(nil, true)
	u, _, err := it.Integrate(nil, unifiedFlow())
	if err != nil {
		t.Fatal(err)
	}
	u, rep, err := it.Integrate(u, partialFlow())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hoisted != 1 {
		t.Fatalf("hoisted = %d, want 1 (report %+v)", rep.Hoisted, rep)
	}
	// The hoisted selection now sits directly after the source and
	// feeds both the function chain and the new aggregation.
	sel, ok := u.Node("SEL")
	if !ok {
		t.Fatal("SEL missing")
	}
	ins := u.Inputs(sel.Name)
	if len(ins) != 1 || ins[0].Name != "DS" {
		t.Errorf("SEL inputs = %v", names(ins))
	}
	if got := len(u.Outputs("SEL")); got != 2 {
		t.Errorf("SEL consumers = %d, want 2 (F chain + AGG)", got)
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("hoisted design invalid: %v", err)
	}

	// Without reordering: the selection is duplicated.
	it2 := New(nil, false)
	u2, _, err := it2.Integrate(nil, unifiedFlow())
	if err != nil {
		t.Fatal(err)
	}
	u2, rep2, err := it2.Integrate(u2, partialFlow())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Hoisted != 0 {
		t.Errorf("reordering disabled but hoisted = %d", rep2.Hoisted)
	}
	selCount := 0
	for _, n := range u2.Nodes() {
		if n.Type == xlm.OpSelection {
			selCount++
		}
	}
	if selCount != 2 {
		t.Errorf("selections = %d, want 2 (duplicated)", selCount)
	}
	if rep2.Reused >= rep.Reused {
		t.Errorf("reordering should increase reuse: %d vs %d", rep.Reused, rep2.Reused)
	}
}

// TestHoistPreservesSemantics executes the flows before and after a
// hoisting integration and compares loaded results.
func TestHoistPreservesSemantics(t *testing.T) {
	db := storage.NewDB()
	tb, _ := db.CreateTable("t", []storage.Column{
		{Name: "a", Type: "int"}, {Name: "b", Type: "float"}, {Name: "g", Type: "string"},
	})
	rows := []struct {
		a int64
		b float64
		g string
	}{
		{1, 2.5, "x"}, {2, 1.0, "y"}, {3, 4.0, "x"}, {4, 8.0, "x"}, {5, 0.5, "y"},
	}
	for _, r := range rows {
		tb.Insert(storage.Row{expr.Int(r.a), expr.Float(r.b), expr.Str(r.g)})
	}

	unifiedFlow := mkFlow(t, "u",
		&xlm.Node{Name: "F", Type: xlm.OpFunction, Params: map[string]string{"name": "f", "expr": "b * 2"}},
		&xlm.Node{Name: "SEL", Type: xlm.OpSelection, Params: map[string]string{"predicate": "g = 'x'"}},
	)
	// Reference result of the unified flow alone.
	ref, err := engine.Run(unifiedFlow.Clone(), db)
	if err != nil {
		t.Fatal(err)
	}
	refRows := tableRows(t, db, "out_u")

	partialFlow := mkFlow(t, "p",
		&xlm.Node{Name: "SEL_P", Type: xlm.OpSelection, Params: map[string]string{"predicate": "g = 'x'"}},
		&xlm.Node{Name: "AGG", Type: xlm.OpAggregation, Params: map[string]string{"group": "g", "aggregates": "s:SUM:a"}},
	)
	it := New(nil, true)
	u, _, err := it.Integrate(nil, unifiedFlow)
	if err != nil {
		t.Fatal(err)
	}
	u, rep, err := it.Integrate(u, partialFlow)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hoisted != 1 {
		t.Fatalf("expected hoist, report %+v", rep)
	}
	if _, err := engine.Run(u, db); err != nil {
		t.Fatal(err)
	}
	// out_u unchanged by the reordering.
	gotRows := tableRows(t, db, "out_u")
	if len(gotRows) != len(refRows) {
		t.Fatalf("out_u rows = %d, want %d", len(gotRows), len(refRows))
	}
	// Both flows loaded: out_p has SUM(a) over g='x' → 1+3+4 = 8.
	pRows := tableRows(t, db, "out_p")
	if len(pRows) != 1 || pRows[0][1].AsInt() != 8 {
		t.Errorf("out_p = %v", pRows)
	}
	_ = ref
}

func TestHoistRefusedAcrossFork(t *testing.T) {
	// The function node has a second consumer; hoisting the selection
	// above it would change that consumer's data — must not happen.
	d := mkFlow(t, "u",
		&xlm.Node{Name: "F", Type: xlm.OpFunction, Params: map[string]string{"name": "f", "expr": "b * 2"}},
		&xlm.Node{Name: "SEL", Type: xlm.OpSelection, Params: map[string]string{"predicate": "g = 'x'"}},
	)
	// Second consumer of F.
	if err := d.AddNode(&xlm.Node{Name: "LOAD2", Type: xlm.OpLoader, Params: map[string]string{"table": "other"}}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("F", "LOAD2"); err != nil {
		t.Fatal(err)
	}
	partial := mkFlow(t, "p",
		&xlm.Node{Name: "SEL_P", Type: xlm.OpSelection, Params: map[string]string{"predicate": "g = 'x'"}},
	)
	it := New(nil, true)
	u, _, err := it.Integrate(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := it.Integrate(u, partial)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hoisted != 0 {
		t.Errorf("hoisted across a fork: %+v", rep)
	}
}

func TestIntegrateRejectsInvalidInputs(t *testing.T) {
	it := New(nil, true)
	if _, _, err := it.Integrate(nil, nil); err == nil {
		t.Error("nil partial accepted")
	}
	bad := xlm.NewDesign("bad") // empty
	if _, _, err := it.Integrate(nil, bad); err == nil {
		t.Error("invalid partial accepted")
	}
}

func TestNameCollisionGetsSuffix(t *testing.T) {
	// Same node name, different signature → must be copied in under a
	// fresh name.
	a := mkFlow(t, "a", &xlm.Node{Name: "SEL", Type: xlm.OpSelection, Params: map[string]string{"predicate": "g = 'x'"}})
	b := mkFlow(t, "b", &xlm.Node{Name: "SEL", Type: xlm.OpSelection, Params: map[string]string{"predicate": "g = 'y'"}})
	it := New(nil, false)
	u, _, err := it.Integrate(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	u, _, err = it.Integrate(u, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.Node("SEL__2"); !ok {
		t.Errorf("expected SEL__2; nodes = %v", names(u.Nodes()))
	}
}

func names(ns []*xlm.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Name
	}
	return out
}

func tableRows(t *testing.T, db *storage.DB, table string) []storage.Row {
	t.Helper()
	tb, ok := db.Table(table)
	if !ok {
		t.Fatalf("table %s missing", table)
	}
	return tb.Rows()
}
