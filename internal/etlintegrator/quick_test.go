package etlintegrator

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"quarry/internal/xlm"
)

// genLinearFlow builds a random linear flow src → ops… → loader with
// parameters drawn from a small pool (so independently generated
// flows share operations and reuse is plausible).
func genLinearFlow(r *rand.Rand, name string) *xlm.Design {
	d := xlm.NewDesign(name)
	d.Metadata["requirement"] = name
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{
			{Name: "k", Type: "int"}, {Name: "v", Type: "float"}, {Name: "g", Type: "string"},
		},
		Params: map[string]string{"store": "s", "table": "t"}})
	cur := "DS"
	preds := []string{"v > 10", "g = 'x'", "v < 100"}
	exprs := [][2]string{{"f1", "v * 2"}, {"f2", "v + 1"}, {"f3", "v * v"}}
	used := map[string]bool{}
	for i := 0; i < 1+r.Intn(4); i++ {
		name := fmt.Sprintf("OP%d", i)
		var n *xlm.Node
		if r.Intn(2) == 0 {
			n = &xlm.Node{Name: name, Type: xlm.OpSelection,
				Params: map[string]string{"predicate": preds[r.Intn(len(preds))]}}
		} else {
			e := exprs[r.Intn(len(exprs))]
			if used[e[0]] {
				continue // a column cannot be derived twice in a chain
			}
			used[e[0]] = true
			n = &xlm.Node{Name: name, Type: xlm.OpFunction,
				Params: map[string]string{"name": e[0], "expr": e[1]}}
		}
		d.AddNode(n)
		d.AddEdge(cur, name)
		cur = name
	}
	d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader,
		Params: map[string]string{"table": "out_" + name}})
	d.AddEdge(cur, "LOAD")
	return d
}

// Property: integrating a flow into itself is a fixpoint — everything
// is reused, nothing is added, the design does not grow.
func TestQuickSelfIntegrationFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		flow := genLinearFlow(r, "a")
		it := New(nil, true)
		u, _, err := it.Integrate(nil, flow)
		if err != nil {
			return false
		}
		u2, rep, err := it.Integrate(u, flow)
		if err != nil {
			return false
		}
		return rep.Added == 0 &&
			rep.Reused == len(flow.Nodes()) &&
			len(u2.Nodes()) == len(u.Nodes()) &&
			len(u2.Edges()) == len(u.Edges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: integration with reordering never reuses less than
// integration without it, and both results validate.
func TestQuickReorderingNeverHurtsReuse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genLinearFlow(r, "a")
		b := genLinearFlow(r, "b")
		with := New(nil, true)
		without := New(nil, false)
		u1, _, err := with.Integrate(nil, a)
		if err != nil {
			return false
		}
		u1, rep1, err := with.Integrate(u1, b)
		if err != nil {
			return false
		}
		u2, _, err := without.Integrate(nil, a)
		if err != nil {
			return false
		}
		u2, rep2, err := without.Integrate(u2, b)
		if err != nil {
			return false
		}
		if u1.Validate() != nil || u2.Validate() != nil {
			return false
		}
		return rep1.Reused >= rep2.Reused
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the mapping covers every partial node and maps it to an
// existing unified node; loaders map to loaders with the same target
// table.
func TestQuickMappingIsTotalAndTyped(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genLinearFlow(r, "a")
		b := genLinearFlow(r, "b")
		it := New(nil, true)
		u, _, err := it.Integrate(nil, a)
		if err != nil {
			return false
		}
		u, rep, err := it.Integrate(u, b)
		if err != nil {
			return false
		}
		for _, p := range b.Nodes() {
			un, ok := rep.Mapping[p.Name]
			if !ok {
				return false
			}
			target, ok := u.Node(un)
			if !ok || target.Type != p.Type {
				return false
			}
			if p.Type == xlm.OpLoader && target.Param("table") != p.Param("table") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: integration is monotone in nodes — the unified design
// contains at least as many operations as the larger input, and at
// most the sum of both.
func TestQuickIntegrationSizeBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genLinearFlow(r, "a")
		b := genLinearFlow(r, "b")
		it := New(nil, true)
		u, _, err := it.Integrate(nil, a)
		if err != nil {
			return false
		}
		u, _, err = it.Integrate(u, b)
		if err != nil {
			return false
		}
		n := len(u.Nodes())
		lo := len(a.Nodes())
		if len(b.Nodes()) > lo {
			lo = len(b.Nodes())
		}
		hi := len(a.Nodes()) + len(b.Nodes())
		return n >= lo && n <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
