package export

import (
	"fmt"
	"strings"

	"quarry/internal/xlm"
)

// DotExporter renders an xLM design as a Graphviz digraph for
// visual inspection of unified flows — the textual counterpart of the
// flow graphs in the paper's Figure 3.
type DotExporter struct{}

// Name implements Exporter.
func (DotExporter) Name() string { return "dot" }

// dotShape picks a node shape per operation kind.
func dotShape(op xlm.OpType) string {
	switch op {
	case xlm.OpDatastore:
		return "cylinder"
	case xlm.OpLoader:
		return "folder"
	case xlm.OpJoin:
		return "diamond"
	case xlm.OpAggregation:
		return "hexagon"
	case xlm.OpSelection:
		return "trapezium"
	default:
		return "box"
	}
}

func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Export implements Exporter.
func (DotExporter) Export(d *xlm.Design) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", d.Name)
	b.WriteString("  rankdir=LR;\n  node [fontsize=10];\n")
	for _, n := range d.Nodes() {
		label := string(n.Type) + "\\n" + n.Name
		switch n.Type {
		case xlm.OpSelection:
			label += "\\n" + dotEscape(n.Param("predicate"))
		case xlm.OpFunction:
			label += "\\n" + dotEscape(n.Param("name")+" = "+n.Param("expr"))
		case xlm.OpJoin:
			label += "\\n" + dotEscape(n.Param("on"))
		case xlm.OpAggregation:
			label += "\\nby " + dotEscape(n.Param("group"))
		case xlm.OpDatastore, xlm.OpLoader:
			label += "\\n" + dotEscape(n.Param("table"))
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\", shape=%s];\n", n.Name, label, dotShape(n.Type))
	}
	for _, e := range d.Edges() {
		style := ""
		if !e.Enabled {
			style = " [style=dashed]"
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", e.From, e.To, style)
	}
	b.WriteString("}\n")
	return b.String(), nil
}

func init() {
	if err := Register(DotExporter{}); err != nil {
		panic(err)
	}
}
