// Package export implements the plug-in export side of Quarry's
// Communication & Metadata layer (§2.5): translating the logical xLM
// representation of an ETL process into external notations. The paper
// names SQL and Apache PigLatin (following the engine-independence
// work of [7]); both are provided here, next to the Pentaho PDI
// exporter of internal/pdi, behind a registry that external code can
// extend with further notations.
package export

import (
	"fmt"
	"sort"
	"sync"

	"quarry/internal/xlm"
)

// Exporter renders a validated xLM design in an external notation.
type Exporter interface {
	// Name is the registry key ("sql", "pig", ...).
	Name() string
	// Export renders the design; implementations must not mutate it.
	Export(d *xlm.Design) (string, error)
}

// registry of available exporters.
var (
	regMu    sync.RWMutex
	registry = map[string]Exporter{}
)

// Register installs an exporter; it fails on duplicate names.
func Register(e Exporter) error {
	regMu.Lock()
	defer regMu.Unlock()
	if e == nil || e.Name() == "" {
		return fmt.Errorf("export: invalid exporter")
	}
	if _, dup := registry[e.Name()]; dup {
		return fmt.Errorf("export: exporter %q already registered", e.Name())
	}
	registry[e.Name()] = e
	return nil
}

// Lookup returns a registered exporter.
func Lookup(name string) (Exporter, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Names lists registered exporters, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Export renders a design with the named exporter.
func Export(name string, d *xlm.Design) (string, error) {
	e, ok := Lookup(name)
	if !ok {
		return "", fmt.Errorf("export: no exporter %q (have %v)", name, Names())
	}
	if err := d.Validate(); err != nil {
		return "", err
	}
	return e.Export(d)
}

func init() {
	// Built-in notations.
	if err := Register(SQLExporter{}); err != nil {
		panic(err)
	}
	if err := Register(PigExporter{}); err != nil {
		panic(err)
	}
}
