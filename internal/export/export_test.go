package export

import (
	"strings"
	"testing"

	"quarry/internal/interpreter"
	"quarry/internal/tpch"
	"quarry/internal/xlm"
)

func revenueETL(t *testing.T) *xlm.Design {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := interpreter.New(o, m, c)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := in.Interpret(tpch.RevenueRequirement())
	if err != nil {
		t.Fatal(err)
	}
	return pd.ETL
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 2 {
		t.Fatalf("registry = %v", names)
	}
	for _, want := range []string{"pig", "sql"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("exporter %q missing", want)
		}
	}
	if _, ok := Lookup("ghost"); ok {
		t.Error("ghost exporter found")
	}
	if _, err := Export("ghost", revenueETL(t)); err == nil {
		t.Error("Export with unknown notation succeeded")
	}
	if err := Register(nil); err == nil {
		t.Error("nil exporter registered")
	}
	if err := Register(SQLExporter{}); err == nil {
		t.Error("duplicate exporter registered")
	}
}

func TestSQLExport(t *testing.T) {
	sql, err := Export("sql", revenueETL(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`INSERT INTO "fact_table_revenue"`,
		`INSERT INTO "dim_part"`,
		`INSERT INTO "dim_supplier"`,
		`FROM "lineitem"`,
		`WHERE n_name = 'SPAIN'`,
		`AVG("revenue") AS "revenue"`,
		"GROUP BY",
		"JOIN (",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL export missing %q", want)
		}
	}
	// One statement per loader, each terminated.
	if got := strings.Count(sql, "INSERT INTO"); got != 3 {
		t.Errorf("INSERT count = %d, want 3", got)
	}
	if got := strings.Count(sql, ";"); got != 3 {
		t.Errorf("statement terminator count = %d, want 3", got)
	}
}

func TestSQLExportCoversAllOperators(t *testing.T) {
	// A design exercising union, sort and surrogate key.
	d := xlm.NewDesign("full")
	add := func(n *xlm.Node) {
		if err := d.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	add(&xlm.Node{Name: "A", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "k", Type: "int"}, {Name: "v", Type: "string"}},
		Params: map[string]string{"table": "a"}})
	add(&xlm.Node{Name: "B", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "k", Type: "int"}, {Name: "v", Type: "string"}},
		Params: map[string]string{"table": "b"}})
	add(&xlm.Node{Name: "U", Type: xlm.OpUnion})
	add(&xlm.Node{Name: "S", Type: xlm.OpSort, Params: map[string]string{"by": "k"}})
	add(&xlm.Node{Name: "SK", Type: xlm.OpSurrogateKey, Params: map[string]string{"key": "sk", "on": "v"}})
	add(&xlm.Node{Name: "P", Type: xlm.OpProjection, Params: map[string]string{"columns": "key=k, sk"}})
	add(&xlm.Node{Name: "L", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("A", "U")
	d.AddEdge("B", "U")
	d.AddEdge("U", "S")
	d.AddEdge("S", "SK")
	d.AddEdge("SK", "P")
	d.AddEdge("P", "L")
	sql, err := Export("sql", d)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"UNION ALL", "ORDER BY", "DENSE_RANK() OVER", `"k" AS "key"`} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL export missing %q:\n%s", want, sql)
		}
	}
}

func TestPigExport(t *testing.T) {
	pig, err := Export("pig", revenueETL(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"DATASTORE_Lineitem = LOAD 'lineitem' USING PigStorage(',') AS (",
		"l_extendedprice:double",
		"FILTER",
		"n_name == 'SPAIN'",
		"JOIN",
		"GROUP",
		"AVG(",
		"STORE",
		"INTO 'fact_table_revenue'",
	} {
		if !strings.Contains(pig, want) {
			t.Errorf("Pig export missing %q", want)
		}
	}
	// One STORE per loader.
	if got := strings.Count(pig, "STORE "); got != 3 {
		t.Errorf("STORE count = %d, want 3", got)
	}
}

func TestPigExpr(t *testing.T) {
	got, err := pigExpr("a = 1 AND NOT (b <> 2) OR c = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"==", "and", "or", "not", "!="} {
		if !strings.Contains(got, want) {
			t.Errorf("pigExpr = %q missing %q", got, want)
		}
	}
	if strings.Contains(got, " = ") {
		t.Errorf("pigExpr left SQL equality: %q", got)
	}
	if _, err := pigExpr("1 +"); err == nil {
		t.Error("bad expression exported")
	}
}

func TestExportRejectsInvalidDesign(t *testing.T) {
	d := xlm.NewDesign("empty")
	if _, err := Export("sql", d); err == nil {
		t.Error("invalid design exported")
	}
}

func TestPigAliasSanitisation(t *testing.T) {
	if got := pigAlias("JOIN a-b.c"); got != "JOIN_a_b_c" {
		t.Errorf("pigAlias = %q", got)
	}
}

func TestDotExport(t *testing.T) {
	dot, err := Export("dot", revenueETL(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"digraph", "rankdir=LR",
		`"DATASTORE_Lineitem"`, "shape=cylinder",
		`"SELECTION_n_name"`, "shape=trapezium",
		`"DATASTORE_Lineitem" -> "EXTRACTION_Lineitem";`,
		"shape=folder",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot export missing %q", want)
		}
	}
	// Braces balance and every edge's endpoints are declared.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces")
	}
}

func TestDotEscaping(t *testing.T) {
	d := xlm.NewDesign("esc")
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "g", Type: "string"}},
		Params: map[string]string{"table": "t"}})
	d.AddNode(&xlm.Node{Name: "SEL", Type: xlm.OpSelection,
		Params: map[string]string{"predicate": `g = 'quo"te'`}})
	d.AddNode(&xlm.Node{Name: "L", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("DS", "SEL")
	d.AddEdge("SEL", "L")
	dot, err := Export("dot", d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, `quo\"te`) {
		t.Errorf("quote not escaped:\n%s", dot)
	}
}
