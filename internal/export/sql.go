package export

import (
	"fmt"
	"sort"
	"strings"

	"quarry/internal/xlm"
)

// SQLExporter renders an xLM design as one INSERT INTO … SELECT
// statement per loader, composing the upstream operations into nested
// subqueries. The output targets the same PostgreSQL dialect the
// Design Deployer's DDL uses, so a deployment script plus this export
// is a complete SQL-only realisation of the ETL process.
type SQLExporter struct{}

// Name implements Exporter.
func (SQLExporter) Name() string { return "sql" }

// Export implements Exporter.
func (SQLExporter) Export(d *xlm.Design) (string, error) {
	g := &sqlGen{d: d}
	var stmts []string
	var loaders []*xlm.Node
	for _, n := range d.Nodes() {
		if n.Type == xlm.OpLoader {
			loaders = append(loaders, n)
		}
	}
	sort.Slice(loaders, func(i, j int) bool { return loaders[i].Param("table") < loaders[j].Param("table") })
	for _, l := range loaders {
		stmt, err := g.loader(l)
		if err != nil {
			return "", err
		}
		stmts = append(stmts, stmt)
	}
	if len(stmts) == 0 {
		return "", fmt.Errorf("export: design %q has no loaders", d.Name)
	}
	return strings.Join(stmts, "\n\n"), nil
}

type sqlGen struct {
	d     *xlm.Design
	alias int
}

func (g *sqlGen) nextAlias() string {
	g.alias++
	return fmt.Sprintf("q%d", g.alias)
}

func q(ident string) string { return `"` + strings.ReplaceAll(ident, `"`, `""`) + `"` }

func (g *sqlGen) loader(l *xlm.Node) (string, error) {
	inputs := g.d.Inputs(l.Name)
	if len(inputs) != 1 {
		return "", fmt.Errorf("export: loader %q has %d inputs", l.Name, len(inputs))
	}
	body, err := g.render(inputs[0])
	if err != nil {
		return "", err
	}
	cols := make([]string, len(inputs[0].Fields))
	for i, f := range inputs[0].Fields {
		cols[i] = q(f.Name)
	}
	return fmt.Sprintf("INSERT INTO %s (%s)\n%s;", q(l.Param("table")), strings.Join(cols, ", "), body), nil
}

// render produces a SELECT query equivalent to the node's output.
func (g *sqlGen) render(n *xlm.Node) (string, error) {
	inputs := g.d.Inputs(n.Name)
	switch n.Type {
	case xlm.OpDatastore:
		cols := make([]string, len(n.Fields))
		for i, f := range n.Fields {
			cols[i] = q(f.Name)
		}
		return fmt.Sprintf("SELECT %s FROM %s", strings.Join(cols, ", "), q(n.Param("table"))), nil

	case xlm.OpExtraction:
		return g.render(inputs[0])

	case xlm.OpSelection:
		in, err := g.render(inputs[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("SELECT * FROM (\n%s\n) %s WHERE %s", indent(in), g.nextAlias(), n.Param("predicate")), nil

	case xlm.OpProjection:
		in, err := g.render(inputs[0])
		if err != nil {
			return "", err
		}
		specs, err := n.Projections()
		if err != nil {
			return "", err
		}
		var cols []string
		for _, sp := range specs {
			if sp.In == sp.Out {
				cols = append(cols, q(sp.Out))
			} else {
				cols = append(cols, fmt.Sprintf("%s AS %s", q(sp.In), q(sp.Out)))
			}
		}
		return fmt.Sprintf("SELECT %s FROM (\n%s\n) %s", strings.Join(cols, ", "), indent(in), g.nextAlias()), nil

	case xlm.OpFunction:
		in, err := g.render(inputs[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("SELECT *, %s AS %s FROM (\n%s\n) %s",
			n.Param("expr"), q(n.Param("name")), indent(in), g.nextAlias()), nil

	case xlm.OpJoin:
		l, err := g.render(inputs[0])
		if err != nil {
			return "", err
		}
		r, err := g.render(inputs[1])
		if err != nil {
			return "", err
		}
		pairs, err := n.JoinPairs()
		if err != nil {
			return "", err
		}
		la, ra := g.nextAlias(), g.nextAlias()
		var conds []string
		for _, p := range pairs {
			conds = append(conds, fmt.Sprintf("%s.%s = %s.%s", la, q(p[0]), ra, q(p[1])))
		}
		return fmt.Sprintf("SELECT * FROM (\n%s\n) %s JOIN (\n%s\n) %s ON %s",
			indent(l), la, indent(r), ra, strings.Join(conds, " AND ")), nil

	case xlm.OpAggregation:
		in, err := g.render(inputs[0])
		if err != nil {
			return "", err
		}
		group := n.GroupBy()
		aggs, err := n.Aggregates()
		if err != nil {
			return "", err
		}
		var sel []string
		for _, gcol := range group {
			sel = append(sel, q(gcol))
		}
		for _, a := range aggs {
			if a.Func == "COUNT" && a.Col == "" {
				sel = append(sel, fmt.Sprintf("COUNT(*) AS %s", q(a.Out)))
				continue
			}
			sel = append(sel, fmt.Sprintf("%s(%s) AS %s", a.Func, q(a.Col), q(a.Out)))
		}
		stmt := fmt.Sprintf("SELECT %s FROM (\n%s\n) %s", strings.Join(sel, ", "), indent(in), g.nextAlias())
		if len(group) > 0 {
			quoted := make([]string, len(group))
			for i, gc := range group {
				quoted[i] = q(gc)
			}
			stmt += " GROUP BY " + strings.Join(quoted, ", ")
		}
		return stmt, nil

	case xlm.OpUnion:
		var parts []string
		for _, in := range inputs {
			s, err := g.render(in)
			if err != nil {
				return "", err
			}
			parts = append(parts, "("+s+")")
		}
		return strings.Join(parts, "\nUNION ALL\n"), nil

	case xlm.OpSort:
		in, err := g.render(inputs[0])
		if err != nil {
			return "", err
		}
		by := n.SortBy()
		quoted := make([]string, len(by))
		for i, c := range by {
			quoted[i] = q(c)
		}
		return fmt.Sprintf("SELECT * FROM (\n%s\n) %s ORDER BY %s",
			indent(in), g.nextAlias(), strings.Join(quoted, ", ")), nil

	case xlm.OpSurrogateKey:
		in, err := g.render(inputs[0])
		if err != nil {
			return "", err
		}
		on := strings.Split(n.Param("on"), ",")
		quoted := make([]string, 0, len(on))
		for _, c := range on {
			if c = strings.TrimSpace(c); c != "" {
				quoted = append(quoted, q(c))
			}
		}
		return fmt.Sprintf("SELECT *, DENSE_RANK() OVER (ORDER BY %s) AS %s FROM (\n%s\n) %s",
			strings.Join(quoted, ", "), q(n.Param("key")), indent(in), g.nextAlias()), nil
	}
	return "", fmt.Errorf("export: cannot render %s node %q as SQL", n.Type, n.Name)
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
