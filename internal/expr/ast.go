package expr

import (
	"sort"
	"strconv"
	"strings"
)

// Node is a parsed expression tree node. Nodes are immutable after
// construction; transformations return new trees.
type Node interface {
	// String renders the node as canonical, re-parseable source text.
	String() string
	// precedence of the node's top construct, for minimal-paren printing.
	precedence() int
}

// Ident is an attribute (column) reference.
type Ident struct {
	Name string
}

// Literal is a constant value.
type Literal struct {
	Val Value
}

// Unary is a prefix operation: NOT x or -x.
type Unary struct {
	Op Token
	X  Node
}

// Binary is an infix operation.
type Binary struct {
	Op   Token
	L, R Node
}

// Call is a builtin function application.
type Call struct {
	Name string
	Args []Node
}

const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAdd
	precMul
	precUnary
	precPrimary
)

func (n *Ident) precedence() int   { return precPrimary }
func (n *Literal) precedence() int { return precPrimary }
func (n *Call) precedence() int    { return precPrimary }

func (n *Unary) precedence() int {
	if n.Op == tokNot {
		return precNot
	}
	return precUnary
}

func (n *Binary) precedence() int {
	switch n.Op {
	case tokOr:
		return precOr
	case tokAnd:
		return precAnd
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		return precCmp
	case tokPlus, tokMinus:
		return precAdd
	default:
		return precMul
	}
}

func (n *Ident) String() string   { return n.Name }
func (n *Literal) String() string { return n.Val.String() }

func (n *Unary) String() string {
	inner := n.X.String()
	if n.X.precedence() < n.precedence() {
		inner = "(" + inner + ")"
	}
	if n.Op == tokNot {
		return "NOT " + inner
	}
	return "-" + inner
}

func (n *Binary) String() string {
	l := n.L.String()
	if n.L.precedence() < n.precedence() {
		l = "(" + l + ")"
	}
	r := n.R.String()
	// Right child needs parens at equal precedence too (left assoc).
	if n.R.precedence() <= n.precedence() {
		r = "(" + r + ")"
	}
	return l + " " + n.Op.String() + " " + r
}

func (n *Call) String() string {
	parts := make([]string, len(n.Args))
	for i, a := range n.Args {
		parts[i] = a.String()
	}
	return n.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Equal reports structural equality of two expression trees.
func Equal(a, b Node) bool {
	switch x := a.(type) {
	case *Ident:
		y, ok := b.(*Ident)
		return ok && x.Name == y.Name
	case *Literal:
		y, ok := b.(*Literal)
		return ok && x.Val.Equal(y.Val) && x.Val.Kind() == y.Val.Kind()
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && Equal(x.X, y.X)
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Call:
		y, ok := b.(*Call)
		if !ok || !strings.EqualFold(x.Name, y.Name) || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Idents returns the sorted, de-duplicated set of attribute names the
// expression references.
func Idents(n Node) []string {
	set := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Ident:
			set[x.Name] = true
		case *Unary:
			walk(x.X)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Call:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(n)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Rename returns a copy of the tree with identifiers substituted
// according to the given mapping; identifiers absent from the map are
// kept as-is.
func Rename(n Node, m map[string]string) Node {
	switch x := n.(type) {
	case *Ident:
		if nn, ok := m[x.Name]; ok {
			return &Ident{Name: nn}
		}
		return &Ident{Name: x.Name}
	case *Literal:
		return &Literal{Val: x.Val}
	case *Unary:
		return &Unary{Op: x.Op, X: Rename(x.X, m)}
	case *Binary:
		return &Binary{Op: x.Op, L: Rename(x.L, m), R: Rename(x.R, m)}
	case *Call:
		args := make([]Node, len(x.Args))
		for i, a := range x.Args {
			args[i] = Rename(a, m)
		}
		return &Call{Name: x.Name, Args: args}
	}
	return n
}

// Conjuncts splits a predicate into its top-level AND-ed conjuncts.
// A non-AND expression yields a single-element slice.
func Conjuncts(n Node) []Node {
	if b, ok := n.(*Binary); ok && b.Op == tokAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Node{n}
}

// And combines predicates into a single conjunction. And() of an empty
// slice returns the TRUE literal; of one element, the element itself.
func And(preds ...Node) Node {
	var out Node
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
			continue
		}
		out = &Binary{Op: tokAnd, L: out, R: p}
	}
	if out == nil {
		return &Literal{Val: Bool(true)}
	}
	return out
}

// Comparison destructures a node of the form `column OP literal` (or
// `literal OP column`, with the operator flipped accordingly) into
// its parts. op is spelled "=", "!=", "<", "<=", ">" or ">=". ok is
// false for any other node shape — callers use this to recognise
// filter conjuncts that can be pushed down as storage prune
// predicates.
func Comparison(n Node) (col string, op string, lit Value, ok bool) {
	b, isBin := n.(*Binary)
	if !isBin {
		return "", "", Value{}, false
	}
	switch b.Op {
	case tokEq:
		op = "="
	case tokNeq:
		op = "!="
	case tokLt:
		op = "<"
	case tokLe:
		op = "<="
	case tokGt:
		op = ">"
	case tokGe:
		op = ">="
	default:
		return "", "", Value{}, false
	}
	if id, okL := b.L.(*Ident); okL {
		if l, okR := b.R.(*Literal); okR {
			return id.Name, op, l.Val, true
		}
		return "", "", Value{}, false
	}
	id, okR := b.R.(*Ident)
	l, okL := b.L.(*Literal)
	if !okR || !okL {
		return "", "", Value{}, false
	}
	switch op { // literal on the left: flip the ordering
	case "<":
		op = ">"
	case "<=":
		op = ">="
	case ">":
		op = "<"
	case ">=":
		op = "<="
	}
	return id.Name, op, l.Val, true
}

// Eq builds the comparison `left = right-literal`, a convenience used
// by generators.
func Eq(name string, v Value) Node {
	return &Binary{Op: tokEq, L: &Ident{Name: name}, R: &Literal{Val: v}}
}

// CompareOp builds a comparison node from an operator spelled as in
// xRQ (`=`, `!=`, `<>`, `<`, `<=`, `>`, `>=`).
func CompareOp(op string, l, r Node) (Node, error) {
	var t Token
	switch op {
	case "=", "==":
		t = tokEq
	case "!=", "<>":
		t = tokNeq
	case "<":
		t = tokLt
	case "<=":
		t = tokLe
	case ">":
		t = tokGt
	case ">=":
		t = tokGe
	default:
		return nil, &ParseError{Msg: "unknown comparison operator " + strconv.Quote(op)}
	}
	return &Binary{Op: t, L: l, R: r}, nil
}
