package expr

import (
	"fmt"
	"math"
	"strings"
)

// builtin describes a builtin scalar function: its arity bounds, its
// evaluator and its result-type rule.
type builtin struct {
	minArgs, maxArgs int
	eval             func(args []Value) (Value, error)
	// typ derives the result kind from argument kinds.
	typ func(args []Kind) (Kind, error)
}

func numericResult(args []Kind) (Kind, error) {
	for _, k := range args {
		if k == KindFloat {
			return KindFloat, nil
		}
		if k != KindInt && k != KindNull {
			return KindNull, fmt.Errorf("expr: numeric function applied to %s", k)
		}
	}
	return KindInt, nil
}

// builtins is the registry of supported scalar functions.
var builtins = map[string]builtin{
	"ABS": {1, 1, func(a []Value) (Value, error) {
		v := a[0]
		if v.IsNull() {
			return Null(), nil
		}
		switch v.Kind() {
		case KindInt:
			if v.AsInt() < 0 {
				return Int(-v.AsInt()), nil
			}
			return v, nil
		case KindFloat:
			f, _ := v.AsFloat()
			return Float(math.Abs(f)), nil
		}
		return Null(), fmt.Errorf("expr: ABS of %s", v.Kind())
	}, numericResult},

	"ROUND": {1, 2, func(a []Value) (Value, error) {
		if a[0].IsNull() {
			return Null(), nil
		}
		f, ok := a[0].AsFloat()
		if !ok {
			return Null(), fmt.Errorf("expr: ROUND of %s", a[0].Kind())
		}
		digits := int64(0)
		if len(a) == 2 {
			if a[1].IsNull() {
				return Null(), nil
			}
			if a[1].Kind() != KindInt {
				return Null(), fmt.Errorf("expr: ROUND digits must be int")
			}
			digits = a[1].AsInt()
		}
		scale := math.Pow(10, float64(digits))
		return Float(math.Round(f*scale) / scale), nil
	}, func(args []Kind) (Kind, error) { return KindFloat, nil }},

	"LENGTH": {1, 1, func(a []Value) (Value, error) {
		if a[0].IsNull() {
			return Null(), nil
		}
		if a[0].Kind() != KindString {
			return Null(), fmt.Errorf("expr: LENGTH of %s", a[0].Kind())
		}
		return Int(int64(len(a[0].AsString()))), nil
	}, func(args []Kind) (Kind, error) { return KindInt, nil }},

	"UPPER": {1, 1, stringFn(strings.ToUpper), stringType},
	"LOWER": {1, 1, stringFn(strings.ToLower), stringType},

	"SUBSTR": {2, 3, func(a []Value) (Value, error) {
		if a[0].IsNull() || a[1].IsNull() {
			return Null(), nil
		}
		if a[0].Kind() != KindString || a[1].Kind() != KindInt {
			return Null(), fmt.Errorf("expr: SUBSTR(string, int[, int])")
		}
		s := a[0].AsString()
		start := int(a[1].AsInt()) - 1 // SQL 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(a) == 3 {
			if a[2].IsNull() {
				return Null(), nil
			}
			if a[2].Kind() != KindInt {
				return Null(), fmt.Errorf("expr: SUBSTR length must be int")
			}
			if n := int(a[2].AsInt()); start+n < end {
				end = start + n
			}
		}
		if end < start {
			end = start
		}
		return Str(s[start:end]), nil
	}, stringType},

	"CONCAT": {1, 16, func(a []Value) (Value, error) {
		var b strings.Builder
		for _, v := range a {
			if v.IsNull() {
				return Null(), nil
			}
			switch v.Kind() {
			case KindString:
				b.WriteString(v.AsString())
			default:
				// Render non-strings without quotes.
				if v.Kind() == KindInt || v.Kind() == KindFloat || v.Kind() == KindBool {
					s := v.String()
					b.WriteString(strings.Trim(s, "'"))
				} else {
					return Null(), fmt.Errorf("expr: CONCAT of %s", v.Kind())
				}
			}
		}
		return Str(b.String()), nil
	}, stringType},

	"COALESCE": {1, 16, func(a []Value) (Value, error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null(), nil
	}, func(args []Kind) (Kind, error) {
		for _, k := range args {
			if k != KindNull {
				return k, nil
			}
		}
		return KindNull, nil
	}},

	"MIN2": {2, 2, extremum(-1), numericResult},
	"MAX2": {2, 2, extremum(1), numericResult},
}

func stringFn(f func(string) string) func([]Value) (Value, error) {
	return func(a []Value) (Value, error) {
		if a[0].IsNull() {
			return Null(), nil
		}
		if a[0].Kind() != KindString {
			return Null(), fmt.Errorf("expr: string function applied to %s", a[0].Kind())
		}
		return Str(f(a[0].AsString())), nil
	}
}

func stringType(args []Kind) (Kind, error) { return KindString, nil }

func extremum(sign int) func([]Value) (Value, error) {
	return func(a []Value) (Value, error) {
		if a[0].IsNull() || a[1].IsNull() {
			return Null(), nil
		}
		c, err := a[0].Compare(a[1])
		if err != nil {
			return Null(), err
		}
		if c*sign > 0 {
			return a[0], nil
		}
		return a[1], nil
	}
}

// Builtins returns the sorted names of all builtin functions; used by
// documentation and the REST introspection endpoint.
func Builtins() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
