package expr

// SliceEnv is a reusable environment over positional rows: the
// name→position index is fixed at construction and Bind repoints the
// environment at a new row without allocating. Row-at-a-time executors
// that build a fresh closure per row spend a large share of their
// inner loop in that allocation; a SliceEnv is built once per operator
// and rebound per row (or per batch element) for free.
//
//	env := expr.NewSliceEnv(index)
//	f := env.Env() // one closure, reused for every row
//	for _, row := range rows {
//		env.Bind(row)
//		v, err := expr.Eval(node, f)
//		...
//	}
//
// A SliceEnv is not safe for concurrent use; each evaluating goroutine
// needs its own.
type SliceEnv struct {
	index map[string]int
	row   []Value
	env   Env
}

// NewSliceEnv builds a SliceEnv resolving names through index.
func NewSliceEnv(index map[string]int) *SliceEnv {
	e := &SliceEnv{index: index}
	e.env = e.lookup
	return e
}

func (e *SliceEnv) lookup(name string) (Value, bool) {
	i, ok := e.index[name]
	if !ok || i >= len(e.row) {
		return Null(), false
	}
	return e.row[i], true
}

// Bind points the environment at a new row. The row is read, never
// mutated.
func (e *SliceEnv) Bind(row []Value) { e.row = row }

// Env returns the reusable Env closure bound to the current row.
func (e *SliceEnv) Env() Env { return e.env }
