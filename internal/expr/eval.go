package expr

import (
	"fmt"
	"math"
	"strings"
)

// Env resolves identifier names to runtime values during evaluation.
// The boolean result reports whether the name is bound at all (an
// unbound name is an evaluation error, distinct from a NULL binding).
type Env func(name string) (Value, bool)

// MapEnv adapts a plain map to an Env.
func MapEnv(m map[string]Value) Env {
	return func(name string) (Value, bool) {
		v, ok := m[name]
		return v, ok
	}
}

// Eval evaluates the expression under the environment. NULL propagates
// through arithmetic and comparisons (three-valued logic collapses to
// NULL=false at the boolean connectives, like SQL WHERE).
func Eval(n Node, env Env) (Value, error) {
	switch x := n.(type) {
	case *Ident:
		v, ok := env(x.Name)
		if !ok {
			return Null(), fmt.Errorf("expr: unbound identifier %q", x.Name)
		}
		return v, nil
	case *Literal:
		return x.Val, nil
	case *Unary:
		v, err := Eval(x.X, env)
		if err != nil {
			return Null(), err
		}
		return evalUnary(x.Op, v)
	case *Binary:
		return evalBinary(x, env)
	case *Call:
		fn, ok := builtins[strings.ToUpper(x.Name)]
		if !ok {
			return Null(), fmt.Errorf("expr: unknown function %q", x.Name)
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := Eval(a, env)
			if err != nil {
				return Null(), err
			}
			args[i] = v
		}
		return fn.eval(args)
	}
	return Null(), fmt.Errorf("expr: cannot evaluate %T", n)
}

// EvalBool evaluates a predicate; NULL results count as false (SQL
// WHERE semantics).
func EvalBool(n Node, env Env) (bool, error) {
	v, err := Eval(n, env)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.Kind() != KindBool {
		return false, fmt.Errorf("expr: predicate evaluated to %s, want bool", v.Kind())
	}
	return v.AsBool(), nil
}

func evalUnary(op Token, v Value) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	switch op {
	case tokMinus:
		switch v.Kind() {
		case KindInt:
			return Int(-v.AsInt()), nil
		case KindFloat:
			f, _ := v.AsFloat()
			return Float(-f), nil
		}
		return Null(), fmt.Errorf("expr: cannot negate %s", v.Kind())
	case tokNot:
		if v.Kind() != KindBool {
			return Null(), fmt.Errorf("expr: NOT applied to %s", v.Kind())
		}
		return Bool(!v.AsBool()), nil
	}
	return Null(), fmt.Errorf("expr: unknown unary operator %s", op)
}

func evalBinary(x *Binary, env Env) (Value, error) {
	// AND/OR get short-circuit + three-valued NULL handling.
	switch x.Op {
	case tokAnd, tokOr:
		return evalLogical(x, env)
	}
	l, err := Eval(x.L, env)
	if err != nil {
		return Null(), err
	}
	r, err := Eval(x.R, env)
	if err != nil {
		return Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	switch x.Op {
	case tokPlus, tokMinus, tokStar, tokSlash, tokPercent:
		return evalArith(x.Op, l, r)
	case tokEq:
		return Bool(l.Equal(r)), nil
	case tokNeq:
		return Bool(!l.Equal(r)), nil
	case tokLt, tokLe, tokGt, tokGe:
		c, err := l.Compare(r)
		if err != nil {
			return Null(), err
		}
		switch x.Op {
		case tokLt:
			return Bool(c < 0), nil
		case tokLe:
			return Bool(c <= 0), nil
		case tokGt:
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	}
	return Null(), fmt.Errorf("expr: unknown binary operator %s", x.Op)
}

func evalLogical(x *Binary, env Env) (Value, error) {
	l, err := Eval(x.L, env)
	if err != nil {
		return Null(), err
	}
	boolOrNull := func(v Value) (bool, bool, error) { // (val, isNull, err)
		if v.IsNull() {
			return false, true, nil
		}
		if v.Kind() != KindBool {
			return false, false, fmt.Errorf("expr: %s operand is %s, want bool", x.Op, v.Kind())
		}
		return v.AsBool(), false, nil
	}
	lb, lnull, err := boolOrNull(l)
	if err != nil {
		return Null(), err
	}
	// Short circuit.
	if !lnull {
		if x.Op == tokAnd && !lb {
			return Bool(false), nil
		}
		if x.Op == tokOr && lb {
			return Bool(true), nil
		}
	}
	r, err := Eval(x.R, env)
	if err != nil {
		return Null(), err
	}
	rb, rnull, err := boolOrNull(r)
	if err != nil {
		return Null(), err
	}
	if x.Op == tokAnd {
		switch {
		case !rnull && !rb:
			return Bool(false), nil
		case lnull || rnull:
			return Null(), nil
		default:
			return Bool(lb && rb), nil
		}
	}
	// OR
	switch {
	case !rnull && rb:
		return Bool(true), nil
	case lnull || rnull:
		return Null(), nil
	default:
		return Bool(lb || rb), nil
	}
}

func evalArith(op Token, l, r Value) (Value, error) {
	if !l.IsNumeric() || !r.IsNumeric() {
		return Null(), fmt.Errorf("expr: arithmetic on %s and %s", l.Kind(), r.Kind())
	}
	// Integer op integer stays integer (except division by zero guard);
	// any float operand promotes to float.
	if l.Kind() == KindInt && r.Kind() == KindInt {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case tokPlus:
			return Int(a + b), nil
		case tokMinus:
			return Int(a - b), nil
		case tokStar:
			return Int(a * b), nil
		case tokSlash:
			if b == 0 {
				return Null(), fmt.Errorf("expr: division by zero")
			}
			if a%b == 0 {
				return Int(a / b), nil
			}
			return Float(float64(a) / float64(b)), nil
		case tokPercent:
			if b == 0 {
				return Null(), fmt.Errorf("expr: modulo by zero")
			}
			return Int(a % b), nil
		}
	}
	a, _ := l.AsFloat()
	b, _ := r.AsFloat()
	switch op {
	case tokPlus:
		return Float(a + b), nil
	case tokMinus:
		return Float(a - b), nil
	case tokStar:
		return Float(a * b), nil
	case tokSlash:
		if b == 0 {
			return Null(), fmt.Errorf("expr: division by zero")
		}
		return Float(a / b), nil
	case tokPercent:
		if b == 0 {
			return Null(), fmt.Errorf("expr: modulo by zero")
		}
		return Float(math.Mod(a, b)), nil
	}
	return Null(), fmt.Errorf("expr: unknown arithmetic operator %s", op)
}
