package expr

import (
	"testing"
)

func TestParseLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"42", Int(42)},
		{"3.25", Float(3.25)},
		{"'Spain'", Str("Spain")},
		{"'O''Brien'", Str("O'Brien")},
		{"TRUE", Bool(true)},
		{"false", Bool(false)},
		{"NULL", Null()},
		{"-7", Int(-7)}, // unary minus over literal
	}
	for _, c := range cases {
		n, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		got, err := Eval(n, MapEnv(nil))
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if !got.Equal(c.want) || got.IsNull() != c.want.IsNull() {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "((1)", "'unterminated", "1 ! 2", "foo(", "unknownfn(1)",
		"AND 1", "1 2", "@", "1 = = 2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestArithmetic(t *testing.T) {
	env := MapEnv(map[string]Value{
		"x": Int(10),
		"y": Float(2.5),
		"z": Int(3),
	})
	cases := []struct {
		src  string
		want Value
	}{
		{"x + z", Int(13)},
		{"x - z", Int(7)},
		{"x * z", Int(30)},
		{"x / 2", Int(5)},
		{"x / 4", Float(2.5)},
		{"x % z", Int(1)},
		{"x * y", Float(25)},
		{"-x + 1", Int(-9)},
		{"2 + 3 * 4", Int(14)},
		{"(2 + 3) * 4", Int(20)},
		{"x / z * z", Float(10.0 / 3.0 * 3.0)}, // float division path
	}
	for _, c := range cases {
		n := MustParse(c.src)
		got, err := Eval(n, env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("Eval(%q) = %v (%v), want %v (%v)", c.src, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, src := range []string{"1 / 0", "1 % 0", "1.0 / 0"} {
		if _, err := Eval(MustParse(src), MapEnv(nil)); err == nil {
			t.Errorf("Eval(%q) succeeded, want division error", src)
		}
	}
}

func TestComparisons(t *testing.T) {
	env := MapEnv(map[string]Value{
		"n_name": Str("Spain"),
		"qty":    Int(5),
		"price":  Float(10.5),
	})
	cases := []struct {
		src  string
		want bool
	}{
		{"n_name = 'Spain'", true},
		{"n_name <> 'France'", true},
		{"n_name != 'Spain'", false},
		{"qty < 10", true},
		{"qty <= 5", true},
		{"qty > 5", false},
		{"qty >= 5", true},
		{"price > qty", true},
		{"qty = 5.0", true}, // cross-kind numeric equality
		{"NOT (qty = 5)", false},
		{"qty = 5 AND n_name = 'Spain'", true},
		{"qty = 6 OR n_name = 'Spain'", true},
		{"qty = 6 AND n_name = 'Spain'", false},
	}
	for _, c := range cases {
		got, err := EvalBool(MustParse(c.src), env)
		if err != nil {
			t.Fatalf("EvalBool(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("EvalBool(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	env := MapEnv(map[string]Value{"a": Null(), "b": Int(1)})
	// NULL propagates through arithmetic and comparison.
	for _, src := range []string{"a + b", "a = b", "a < b", "-a"} {
		v, err := Eval(MustParse(src), env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if !v.IsNull() {
			t.Errorf("Eval(%q) = %v, want NULL", src, v)
		}
	}
	// SQL WHERE: NULL predicate is false.
	got, err := EvalBool(MustParse("a = b"), env)
	if err != nil || got {
		t.Errorf("EvalBool(NULL = 1) = %v, %v; want false, nil", got, err)
	}
	// Three-valued logic: FALSE AND NULL = FALSE, TRUE OR NULL = TRUE.
	for src, want := range map[string]bool{
		"b = 2 AND a = b": false,
		"b = 1 OR a = b":  true,
	} {
		got, err := EvalBool(MustParse(src), env)
		if err != nil {
			t.Fatalf("EvalBool(%q): %v", src, err)
		}
		if got != want {
			t.Errorf("EvalBool(%q) = %v, want %v", src, got, want)
		}
	}
	// TRUE AND NULL = NULL (collapses to false under EvalBool).
	got2, err := EvalBool(MustParse("b = 1 AND a = b"), env)
	if err != nil || got2 {
		t.Errorf("EvalBool(TRUE AND NULL) = %v, %v; want false, nil", got2, err)
	}
}

func TestUnboundIdentifier(t *testing.T) {
	if _, err := Eval(MustParse("missing + 1"), MapEnv(nil)); err == nil {
		t.Fatal("expected unbound identifier error")
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"ABS(-4)", Int(4)},
		{"ABS(-4.5)", Float(4.5)},
		{"ROUND(3.14159, 2)", Float(3.14)},
		{"ROUND(2.5)", Float(3)},
		{"LENGTH('hello')", Int(5)},
		{"UPPER('spain')", Str("SPAIN")},
		{"LOWER('SPAIN')", Str("spain")},
		{"SUBSTR('warehouse', 1, 4)", Str("ware")},
		{"SUBSTR('warehouse', 5)", Str("house")},
		{"CONCAT('a', 'b', 'c')", Str("abc")},
		{"COALESCE(NULL, 7)", Int(7)},
		{"COALESCE(NULL, NULL)", Null()},
		{"MIN2(3, 8)", Int(3)},
		{"MAX2(3, 8)", Int(8)},
	}
	for _, c := range cases {
		got, err := Eval(MustParse(c.src), MapEnv(nil))
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestBuiltinArity(t *testing.T) {
	sch := MapSchema(nil)
	if _, err := Infer(MustParse("ABS(1, 2)"), sch); err == nil {
		t.Error("ABS(1,2) type-checked, want arity error")
	}
}

func TestIdents(t *testing.T) {
	n := MustParse("l_extendedprice * (1 - l_discount) + ABS(l_tax) - l_discount")
	got := Idents(n)
	want := []string{"l_discount", "l_extendedprice", "l_tax"}
	if len(got) != len(want) {
		t.Fatalf("Idents = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Idents = %v, want %v", got, want)
		}
	}
}

func TestRename(t *testing.T) {
	n := MustParse("a + b * a")
	renamed := Rename(n, map[string]string{"a": "x"})
	if renamed.String() != "x + b * x" {
		t.Errorf("Rename = %q", renamed.String())
	}
	// Original unchanged.
	if n.String() != "a + b * a" {
		t.Errorf("original mutated: %q", n.String())
	}
}

func TestConjunctsAndAnd(t *testing.T) {
	n := MustParse("a = 1 AND b = 2 AND c = 3")
	cs := Conjuncts(n)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cs))
	}
	back := And(cs...)
	if !Equal(n, back) {
		t.Errorf("And(Conjuncts(n)) != n: %q vs %q", back.String(), n.String())
	}
	if And().String() != "TRUE" {
		t.Errorf("And() = %q, want TRUE", And().String())
	}
}

func TestCompareOp(t *testing.T) {
	n, err := CompareOp(">=", &Ident{Name: "x"}, &Literal{Val: Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "x >= 3" {
		t.Errorf("CompareOp = %q", n.String())
	}
	if _, err := CompareOp("~~", nil, nil); err == nil {
		t.Error("CompareOp(~~) succeeded, want error")
	}
}

func TestInfer(t *testing.T) {
	sch := MapSchema(map[string]Kind{
		"price": KindFloat,
		"qty":   KindInt,
		"name":  KindString,
		"flag":  KindBool,
	})
	cases := []struct {
		src  string
		want Kind
	}{
		{"price * qty", KindFloat},
		{"qty + 1", KindInt},
		{"qty / 2", KindFloat}, // division always floats statically
		{"name = 'x'", KindBool},
		{"qty < price", KindBool},
		{"flag AND qty > 0", KindBool},
		{"UPPER(name)", KindString},
		{"LENGTH(name)", KindInt},
		{"COALESCE(NULL, qty)", KindInt},
	}
	for _, c := range cases {
		got, err := Infer(MustParse(c.src), sch)
		if err != nil {
			t.Fatalf("Infer(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Infer(%q) = %v, want %v", c.src, got, c.want)
		}
	}
	bad := []string{
		"name + 1", "flag + 1", "NOT qty", "name AND flag", "qty = name", "undefined + 1",
	}
	for _, src := range bad {
		if _, err := Infer(MustParse(src), sch); err == nil {
			t.Errorf("Infer(%q) succeeded, want type error", src)
		}
	}
}

func TestCheckPredicate(t *testing.T) {
	sch := MapSchema(map[string]Kind{"x": KindInt})
	if err := CheckPredicate(MustParse("x > 1"), sch); err != nil {
		t.Errorf("CheckPredicate(x > 1): %v", err)
	}
	if err := CheckPredicate(MustParse("x + 1"), sch); err == nil {
		t.Error("CheckPredicate(x + 1) succeeded, want error")
	}
}

func TestStringRoundTripFixed(t *testing.T) {
	srcs := []string{
		"l_extendedprice * (1 - l_discount)",
		"a = 1 AND (b = 2 OR c = 3)",
		"NOT (x > 1)",
		"-(a + b)",
		"ABS(x - y) <= 0.5",
		"CONCAT(UPPER(name), '-', 'suffix')",
		"a - b - c",
		"a - (b - c)",
		"a / b / c",
	}
	for _, src := range srcs {
		n1 := MustParse(src)
		n2, err := Parse(n1.String())
		if err != nil {
			t.Fatalf("reparse %q (printed %q): %v", src, n1.String(), err)
		}
		if !Equal(n1, n2) {
			t.Errorf("round trip changed %q: printed %q, reparsed %q", src, n1.String(), n2.String())
		}
	}
}

func TestValueCompareAndHash(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) != Float(3)")
	}
	if Int(3).Hash() != Float(3).Hash() {
		t.Error("hash of numerically equal values differs")
	}
	if Str("a").Hash() == Str("b").Hash() {
		t.Error("distinct strings hash equal (suspicious)")
	}
	if _, err := Str("a").Compare(Int(1)); err == nil {
		t.Error("cross-kind compare succeeded")
	}
	if _, err := Null().Compare(Int(1)); err == nil {
		t.Error("NULL compare succeeded")
	}
	c, err := Bool(false).Compare(Bool(true))
	if err != nil || c != -1 {
		t.Errorf("false<true compare = %d, %v", c, err)
	}
}

func TestParseKind(t *testing.T) {
	for in, want := range map[string]Kind{
		"bigint": KindInt, "double precision": KindFloat, "VARCHAR": KindString,
		"boolean": KindBool, "int64": KindInt,
	} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) succeeded")
	}
}

func TestBuiltinsListSorted(t *testing.T) {
	names := Builtins()
	if len(names) == 0 {
		t.Fatal("no builtins")
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("Builtins() not sorted: %v", names)
		}
	}
}

func TestSliceEnvRebinds(t *testing.T) {
	e, err := Parse("a + b")
	if err != nil {
		t.Fatal(err)
	}
	env := NewSliceEnv(map[string]int{"a": 0, "b": 1})
	f := env.Env()
	rows := [][]Value{
		{Int(1), Int(2)},
		{Int(10), Int(20)},
	}
	want := []int64{3, 30}
	for i, row := range rows {
		env.Bind(row)
		v, err := Eval(e, f)
		if err != nil {
			t.Fatal(err)
		}
		if v.AsInt() != want[i] {
			t.Errorf("row %d = %v, want %d", i, v, want[i])
		}
	}
	// Unbound name and out-of-range index both report unbound.
	env.Bind(rows[0][:1])
	if _, err := Eval(e, f); err == nil {
		t.Error("short row bound b")
	}
	if _, err := Eval(MustParse("ghost"), f); err == nil {
		t.Error("unknown name bound")
	}
}
