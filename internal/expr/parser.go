package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a failure to parse an expression.
type ParseError struct {
	Src string
	Msg string
}

func (e *ParseError) Error() string {
	if e.Src == "" {
		return "expr: " + e.Msg
	}
	return fmt.Sprintf("expr: parsing %q: %s", e.Src, e.Msg)
}

// Parse parses an expression source string into its AST.
//
// Grammar (precedence low→high):
//
//	or     = and { OR and }
//	and    = not { AND not }
//	not    = NOT not | cmp
//	cmp    = add [ (=|!=|<>|<|<=|>|>=) add ]
//	add    = mul { (+|-) mul }
//	mul    = unary { (*|/|%) unary }
//	unary  = - unary | primary
//	primary= IDENT | IDENT ( args ) | NUMBER | STRING
//	       | TRUE | FALSE | NULL | ( or )
func Parse(src string) (Node, error) {
	p := &parser{s: newScanner(src), src: src}
	if err := p.s.next(); err != nil {
		return nil, &ParseError{Src: src, Msg: err.Error()}
	}
	n, err := p.parseOr()
	if err != nil {
		return nil, &ParseError{Src: src, Msg: err.Error()}
	}
	if p.s.tok != tokEOF {
		return nil, &ParseError{Src: src, Msg: "unexpected trailing " + p.s.tok.String()}
	}
	return n, nil
}

// MustParse is Parse that panics on error; for tests and static
// generator tables only.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	s   *scanner
	src string
}

func (p *parser) expect(t Token) error {
	if p.s.tok != t {
		return fmt.Errorf("expected %s, found %s", t, p.s.tok)
	}
	return p.s.next()
}

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.s.tok == tokOr {
		if err := p.s.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: tokOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.s.tok == tokAnd {
		if err := p.s.next(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: tokAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.s.tok == tokNot {
		if err := p.s.next(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: tokNot, X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Node, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.s.tok {
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		op := p.s.tok
		if err := p.s.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Node, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.s.tok == tokPlus || p.s.tok == tokMinus {
		op := p.s.tok
		if err := p.s.next(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.s.tok == tokStar || p.s.tok == tokSlash || p.s.tok == tokPercent {
		op := p.s.tok
		if err := p.s.next(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Node, error) {
	if p.s.tok == tokMinus {
		if err := p.s.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: tokMinus, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	switch p.s.tok {
	case tokIdent:
		name := p.s.lit
		if err := p.s.next(); err != nil {
			return nil, err
		}
		if p.s.tok != tokLParen {
			return &Ident{Name: name}, nil
		}
		// Function call.
		if err := p.s.next(); err != nil {
			return nil, err
		}
		var args []Node
		if p.s.tok != tokRParen {
			for {
				a, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.s.tok != tokComma {
					break
				}
				if err := p.s.next(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		upper := strings.ToUpper(name)
		if _, ok := builtins[upper]; !ok {
			return nil, fmt.Errorf("unknown function %q", name)
		}
		return &Call{Name: upper, Args: args}, nil
	case tokNumber:
		lit := p.s.lit
		if err := p.s.next(); err != nil {
			return nil, err
		}
		if strings.Contains(lit, ".") {
			f, err := strconv.ParseFloat(lit, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q: %v", lit, err)
			}
			return &Literal{Val: Float(f)}, nil
		}
		i, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			// Overflowing integers degrade to float.
			f, ferr := strconv.ParseFloat(lit, 64)
			if ferr != nil {
				return nil, fmt.Errorf("bad number %q: %v", lit, err)
			}
			return &Literal{Val: Float(f)}, nil
		}
		return &Literal{Val: Int(i)}, nil
	case tokString:
		s := p.s.lit
		if err := p.s.next(); err != nil {
			return nil, err
		}
		return &Literal{Val: Str(s)}, nil
	case tokTrue:
		if err := p.s.next(); err != nil {
			return nil, err
		}
		return &Literal{Val: Bool(true)}, nil
	case tokFalse:
		if err := p.s.next(); err != nil {
			return nil, err
		}
		return &Literal{Val: Bool(false)}, nil
	case tokNull:
		if err := p.s.next(); err != nil {
			return nil, err
		}
		return &Literal{Val: Null()}, nil
	case tokLParen:
		if err := p.s.next(); err != nil {
			return nil, err
		}
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return n, nil
	default:
		return nil, fmt.Errorf("unexpected %s", p.s.tok)
	}
}
