package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genNode builds a random well-formed expression tree over a fixed
// identifier vocabulary. depth bounds recursion.
func genNode(r *rand.Rand, depth int, numeric bool) Node {
	idents := []string{"a", "b", "c", "qty", "price"}
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return &Ident{Name: idents[r.Intn(len(idents))]}
		case 1:
			// Non-negative: a negative literal prints as "-n", which
			// re-parses as unary minus (semantically equal but
			// structurally different).
			return &Literal{Val: Int(int64(r.Intn(100)))}
		default:
			return &Literal{Val: Float(float64(r.Intn(1000))/8 + 0.5)}
		}
	}
	ops := []Token{tokPlus, tokMinus, tokStar}
	switch r.Intn(5) {
	case 0:
		return &Unary{Op: tokMinus, X: genNode(r, depth-1, true)}
	case 1:
		return &Call{Name: "ABS", Args: []Node{genNode(r, depth-1, true)}}
	default:
		return &Binary{
			Op: ops[r.Intn(len(ops))],
			L:  genNode(r, depth-1, true),
			R:  genNode(r, depth-1, true),
		}
	}
}

// genPredicate builds a random boolean expression tree.
func genPredicate(r *rand.Rand, depth int) Node {
	if depth <= 0 || r.Intn(3) == 0 {
		cmps := []Token{tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe}
		return &Binary{
			Op: cmps[r.Intn(len(cmps))],
			L:  genNode(r, 1, true),
			R:  genNode(r, 1, true),
		}
	}
	switch r.Intn(3) {
	case 0:
		return &Unary{Op: tokNot, X: genPredicate(r, depth-1)}
	case 1:
		return &Binary{Op: tokAnd, L: genPredicate(r, depth-1), R: genPredicate(r, depth-1)}
	default:
		return &Binary{Op: tokOr, L: genPredicate(r, depth-1), R: genPredicate(r, depth-1)}
	}
}

// Property: printing an arbitrary arithmetic tree and re-parsing it
// yields a structurally identical tree.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1 := genNode(r, 4, true)
		n2, err := Parse(n1.String())
		if err != nil {
			t.Logf("seed %d: reparse of %q failed: %v", seed, n1.String(), err)
			return false
		}
		if !Equal(n1, n2) {
			t.Logf("seed %d: %q reparsed as %q", seed, n1.String(), n2.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: same round trip for random predicates.
func TestQuickPredicateRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1 := genPredicate(r, 4)
		n2, err := Parse(n1.String())
		if err != nil {
			return false
		}
		return Equal(n1, n2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: evaluation is deterministic and total (no panics) for
// random trees under a full environment; a re-parsed tree evaluates to
// the same value.
func TestQuickEvalStability(t *testing.T) {
	env := MapEnv(map[string]Value{
		"a": Int(3), "b": Int(-2), "c": Float(1.5),
		"qty": Int(7), "price": Float(19.25),
	})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1 := genNode(r, 4, true)
		v1, err1 := Eval(n1, env)
		n2, perr := Parse(n1.String())
		if perr != nil {
			return false
		}
		v2, err2 := Eval(n2, env)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true // both error identically (e.g. div by zero never generated here)
		}
		return v1.Equal(v2) && v1.Kind() == v2.Kind()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Rename with an identity map preserves structure, and
// Rename is reversible for a bijective mapping.
func TestQuickRenameBijection(t *testing.T) {
	fwd := map[string]string{"a": "A1", "b": "B1", "c": "C1", "qty": "Q1", "price": "P1"}
	rev := map[string]string{}
	for k, v := range fwd {
		rev[v] = k
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := genNode(r, 4, true)
		back := Rename(Rename(n, fwd), rev)
		return Equal(n, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Conjuncts/And round trip preserves predicate evaluation.
func TestQuickConjunctsPreserveSemantics(t *testing.T) {
	env := MapEnv(map[string]Value{
		"a": Int(3), "b": Int(-2), "c": Float(1.5),
		"qty": Int(7), "price": Float(19.25),
	})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := genPredicate(r, 3)
		v1, err1 := EvalBool(n, env)
		v2, err2 := EvalBool(And(Conjuncts(n)...), env)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return err1 != nil || v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Value.Hash respects Equal for the numeric kinds.
func TestQuickHashConsistency(t *testing.T) {
	f := func(i int32) bool {
		a := Int(int64(i))
		b := Float(float64(i))
		return a.Equal(b) && a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
