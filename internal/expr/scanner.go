package expr

import (
	"fmt"
	"strings"
	"unicode"
)

// scanner tokenises an expression source string.
type scanner struct {
	src []rune
	pos int

	tok Token  // current token kind
	lit string // current literal text (idents, numbers, strings)
}

func newScanner(src string) *scanner {
	return &scanner{src: []rune(src)}
}

func (s *scanner) errorf(format string, args ...any) error {
	return fmt.Errorf("expr: scan error at offset %d: %s", s.pos, fmt.Sprintf(format, args...))
}

func (s *scanner) peek() rune {
	if s.pos >= len(s.src) {
		return 0
	}
	return s.src[s.pos]
}

func (s *scanner) advance() rune {
	r := s.peek()
	s.pos++
	return r
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// next scans the next token into s.tok / s.lit.
func (s *scanner) next() error {
	for s.pos < len(s.src) && unicode.IsSpace(s.peek()) {
		s.pos++
	}
	if s.pos >= len(s.src) {
		s.tok, s.lit = tokEOF, ""
		return nil
	}
	r := s.peek()
	switch {
	case isIdentStart(r):
		start := s.pos
		for s.pos < len(s.src) && isIdentPart(s.peek()) {
			s.pos++
		}
		word := string(s.src[start:s.pos])
		switch strings.ToUpper(word) {
		case "AND":
			s.tok = tokAnd
		case "OR":
			s.tok = tokOr
		case "NOT":
			s.tok = tokNot
		case "TRUE":
			s.tok = tokTrue
		case "FALSE":
			s.tok = tokFalse
		case "NULL":
			s.tok = tokNull
		default:
			s.tok, s.lit = tokIdent, word
		}
		return nil
	case unicode.IsDigit(r):
		start := s.pos
		seenDot := false
		for s.pos < len(s.src) {
			c := s.peek()
			if c == '.' {
				if seenDot {
					break
				}
				// A dot is part of the number only when followed by a digit.
				if s.pos+1 >= len(s.src) || !unicode.IsDigit(s.src[s.pos+1]) {
					break
				}
				seenDot = true
				s.pos++
				continue
			}
			if !unicode.IsDigit(c) {
				break
			}
			s.pos++
		}
		s.tok, s.lit = tokNumber, string(s.src[start:s.pos])
		return nil
	case r == '\'':
		s.advance()
		var b strings.Builder
		for {
			if s.pos >= len(s.src) {
				return s.errorf("unterminated string literal")
			}
			c := s.advance()
			if c == '\'' {
				if s.peek() == '\'' { // escaped quote
					b.WriteRune('\'')
					s.advance()
					continue
				}
				break
			}
			b.WriteRune(c)
		}
		s.tok, s.lit = tokString, b.String()
		return nil
	}
	s.advance()
	switch r {
	case '+':
		s.tok = tokPlus
	case '-':
		s.tok = tokMinus
	case '*':
		s.tok = tokStar
	case '/':
		s.tok = tokSlash
	case '%':
		s.tok = tokPercent
	case '(':
		s.tok = tokLParen
	case ')':
		s.tok = tokRParen
	case ',':
		s.tok = tokComma
	case '=':
		s.tok = tokEq
	case '!':
		if s.peek() == '=' {
			s.advance()
			s.tok = tokNeq
			return nil
		}
		return s.errorf("unexpected character %q", r)
	case '<':
		switch s.peek() {
		case '=':
			s.advance()
			s.tok = tokLe
		case '>':
			s.advance()
			s.tok = tokNeq
		default:
			s.tok = tokLt
		}
	case '>':
		if s.peek() == '=' {
			s.advance()
			s.tok = tokGe
		} else {
			s.tok = tokGt
		}
	default:
		return s.errorf("unexpected character %q", r)
	}
	return nil
}
