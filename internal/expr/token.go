package expr

import "fmt"

// Token identifies a lexical token kind produced by the scanner.
type Token int

// Token kinds.
const (
	tokEOF Token = iota
	tokIdent
	tokNumber
	tokString

	tokPlus    // +
	tokMinus   // -
	tokStar    // *
	tokSlash   // /
	tokPercent // %

	tokEq  // =
	tokNeq // != or <>
	tokLt  // <
	tokLe  // <=
	tokGt  // >
	tokGe  // >=

	tokAnd // AND
	tokOr  // OR
	tokNot // NOT

	tokLParen // (
	tokRParen // )
	tokComma  // ,

	tokTrue  // TRUE
	tokFalse // FALSE
	tokNull  // NULL
)

// opName maps operator tokens to their canonical source text.
var opName = map[Token]string{
	tokPlus:    "+",
	tokMinus:   "-",
	tokStar:    "*",
	tokSlash:   "/",
	tokPercent: "%",
	tokEq:      "=",
	tokNeq:     "<>",
	tokLt:      "<",
	tokLe:      "<=",
	tokGt:      ">",
	tokGe:      ">=",
	tokAnd:     "AND",
	tokOr:      "OR",
	tokNot:     "NOT",
}

// String returns the canonical spelling of the token kind.
func (t Token) String() string {
	if s, ok := opName[t]; ok {
		return s
	}
	switch t {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokComma:
		return ","
	case tokTrue:
		return "TRUE"
	case tokFalse:
		return "FALSE"
	case tokNull:
		return "NULL"
	default:
		return fmt.Sprintf("token(%d)", int(t))
	}
}
