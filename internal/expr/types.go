package expr

import "fmt"

// Schema resolves identifier names to their declared kinds for static
// type checking. The boolean reports whether the name is declared.
type Schema func(name string) (Kind, bool)

// MapSchema adapts a map to a Schema.
func MapSchema(m map[string]Kind) Schema {
	return func(name string) (Kind, bool) {
		k, ok := m[name]
		return k, ok
	}
}

// Infer type-checks the expression against the schema and returns the
// static result kind. NULL literals type as KindNull, which unifies
// with everything.
func Infer(n Node, sch Schema) (Kind, error) {
	switch x := n.(type) {
	case *Ident:
		k, ok := sch(x.Name)
		if !ok {
			return KindNull, fmt.Errorf("expr: undeclared identifier %q", x.Name)
		}
		return k, nil
	case *Literal:
		return x.Val.Kind(), nil
	case *Unary:
		k, err := Infer(x.X, sch)
		if err != nil {
			return KindNull, err
		}
		if x.Op == tokNot {
			if k != KindBool && k != KindNull {
				return KindNull, fmt.Errorf("expr: NOT applied to %s", k)
			}
			return KindBool, nil
		}
		if k != KindInt && k != KindFloat && k != KindNull {
			return KindNull, fmt.Errorf("expr: unary minus applied to %s", k)
		}
		return k, nil
	case *Binary:
		lk, err := Infer(x.L, sch)
		if err != nil {
			return KindNull, err
		}
		rk, err := Infer(x.R, sch)
		if err != nil {
			return KindNull, err
		}
		switch x.Op {
		case tokAnd, tokOr:
			if !boolish(lk) || !boolish(rk) {
				return KindNull, fmt.Errorf("expr: %s over %s and %s", x.Op, lk, rk)
			}
			return KindBool, nil
		case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
			if !comparable(lk, rk) {
				return KindNull, fmt.Errorf("expr: cannot compare %s with %s", lk, rk)
			}
			return KindBool, nil
		default: // arithmetic
			if !numeric(lk) || !numeric(rk) {
				return KindNull, fmt.Errorf("expr: arithmetic over %s and %s", lk, rk)
			}
			if lk == KindFloat || rk == KindFloat || x.Op == tokSlash {
				return KindFloat, nil
			}
			return KindInt, nil
		}
	case *Call:
		fn, ok := builtins[x.Name]
		if !ok {
			return KindNull, fmt.Errorf("expr: unknown function %q", x.Name)
		}
		if len(x.Args) < fn.minArgs || len(x.Args) > fn.maxArgs {
			return KindNull, fmt.Errorf("expr: %s takes %d..%d args, got %d", x.Name, fn.minArgs, fn.maxArgs, len(x.Args))
		}
		kinds := make([]Kind, len(x.Args))
		for i, a := range x.Args {
			k, err := Infer(a, sch)
			if err != nil {
				return KindNull, err
			}
			kinds[i] = k
		}
		return fn.typ(kinds)
	}
	return KindNull, fmt.Errorf("expr: cannot type %T", n)
}

// CheckPredicate verifies the expression is a well-typed boolean
// predicate over the schema.
func CheckPredicate(n Node, sch Schema) error {
	k, err := Infer(n, sch)
	if err != nil {
		return err
	}
	if k != KindBool && k != KindNull {
		return fmt.Errorf("expr: predicate has type %s, want bool", k)
	}
	return nil
}

func boolish(k Kind) bool { return k == KindBool || k == KindNull }
func numeric(k Kind) bool { return k == KindInt || k == KindFloat || k == KindNull }
func comparable(a, b Kind) bool {
	if a == KindNull || b == KindNull {
		return true
	}
	if numeric(a) && numeric(b) {
		return true
	}
	return a == b
}
