// Package expr implements the scalar expression language shared by all
// Quarry components: xRQ measure formulas and slicer predicates, xLM
// operation parameters (filter conditions, derived attributes), and the
// ETL execution engine.
//
// The language is a small, SQL-flavoured calculus over typed scalar
// values: identifiers (attribute references), literals, arithmetic,
// comparisons, boolean connectives and a fixed set of builtin
// functions. Expressions are parsed once into an AST (Node) and then
// evaluated against row environments, type-checked against schemas, or
// structurally compared by the design integrators.
package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime kinds a Value can take.
type Kind int

// Value kinds. KindNull is the kind of SQL-style NULL; typed kinds
// follow.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind maps a type name (as used in xLM schemas and the storage
// catalog) to a Kind. It accepts the SQL-ish aliases produced by the
// deployers.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int", "integer", "bigint", "int64", "long":
		return KindInt, nil
	case "float", "double", "double precision", "decimal", "numeric", "float64":
		return KindFloat, nil
	case "string", "text", "varchar", "char":
		return KindString, nil
	case "bool", "boolean":
		return KindBool, nil
	case "null":
		return KindNull, nil
	default:
		return KindNull, fmt.Errorf("expr: unknown type name %q", s)
	}
}

// Value is a scalar runtime value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It is only meaningful when
// Kind()==KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the value coerced to float64 and whether the
// coercion was possible (ints and floats coerce; others do not).
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// AsString returns the string payload. Only meaningful for
// KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. Only meaningful for KindBool.
func (v Value) AsBool() bool { return v.b }

// IsNumeric reports whether the value is an int or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value as a SQL-ish literal.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		// Keep the float-ness visible so printed literals re-parse as
		// floats ("1" would come back as an int).
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// Equal reports deep equality between two values. Numeric values of
// different kinds compare by numeric value (1 == 1.0); NULL equals
// only NULL.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return v.kind == o.kind
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	}
	return false
}

// Compare orders two values: -1, 0, +1. Numerics compare numerically,
// strings lexicographically, bools false<true. Comparing NULL or
// mismatched kinds yields an error.
func (v Value) Compare(o Value) (int, error) {
	if v.kind == KindNull || o.kind == KindNull {
		return 0, fmt.Errorf("expr: cannot compare NULL")
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind != o.kind {
		return 0, fmt.Errorf("expr: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s), nil
	case KindBool:
		switch {
		case v.b == o.b:
			return 0, nil
		case !v.b:
			return -1, nil
		default:
			return 1, nil
		}
	}
	return 0, fmt.Errorf("expr: cannot compare %s values", v.kind)
}

// Hash returns a stable hash of the value, used by hash joins and
// aggregations in the engine. Numerically equal ints and floats hash
// identically so join keys of mixed numeric kind still meet.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	switch v.kind {
	case KindNull:
		mix(0)
	case KindInt, KindFloat:
		f, _ := v.AsFloat()
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			// Integral value: hash the integer representation so
			// Int(3) and Float(3.0) collide on purpose.
			u := uint64(int64(f))
			for i := 0; i < 8; i++ {
				mix(byte(u >> (8 * i)))
			}
		} else {
			u := math.Float64bits(f)
			for i := 0; i < 8; i++ {
				mix(byte(u >> (8 * i)))
			}
		}
	case KindString:
		mix(2)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	case KindBool:
		mix(3)
		if v.b {
			mix(1)
		}
	}
	return h
}
