package interpreter

import (
	"fmt"
	"sort"
	"strings"

	"quarry/internal/expr"
	"quarry/internal/ontology"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
	"quarry/internal/xrq"
)

// closureLevel is one level of a dimension's roll-up chain: a concept
// plus the functional path reaching it from the dimension's base
// concept. Paths come from one BFS (ontology.ToOneClosure), so they
// form a consistent tree.
type closureLevel struct {
	concept string
	path    ontology.Path
}

// dimensionChain computes the roll-up chain of a dimension concept:
// every mapped concept functionally reachable from it (through mapped
// concepts only), ordered by distance then name.
func (in *Interpreter) dimensionChain(concept string) []closureLevel {
	cl := in.onto.ToOneClosure(concept)
	var out []closureLevel
	for c, p := range cl {
		mappedPath := true
		for _, s := range p {
			if _, ok := in.mapg.Concept(s.To); !ok {
				mappedPath = false
				break
			}
			if strings.HasPrefix(s.Prop.ID, "subclass:") {
				mappedPath = false // no physical join backs a taxonomy hop
				break
			}
		}
		if _, ok := in.mapg.Concept(c); !ok || !mappedPath {
			continue
		}
		out = append(out, closureLevel{concept: c, path: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].path) != len(out[j].path) {
			return len(out[i].path) < len(out[j].path)
		}
		return out[i].concept < out[j].concept
	})
	return out
}

// buildMD derives the partial MD schema (a star) for the requirement.
func (in *Interpreter) buildMD(r *xrq.Requirement, fact string, dims []dimGroup) (*xmd.Schema, error) {
	md := &xmd.Schema{Name: "md_" + r.ID}
	f := &xmd.Fact{Name: FactTableName(r), Concept: fact}
	sch := in.ontologySchema()
	for _, m := range r.Measures {
		n, err := m.Expr()
		if err != nil {
			return nil, err
		}
		k, err := expr.Infer(n, sch)
		if err != nil {
			return nil, err
		}
		f.Measures = append(f.Measures, xmd.Measure{
			Name: m.ID, Type: k.String(), Formula: m.Function, Additivity: xmd.AdditivityFlow,
		})
	}
	for _, g := range dims {
		f.Uses = append(f.Uses, xmd.DimensionUse{Dimension: g.concept, Level: g.concept})
		dim, err := in.buildDimension(g)
		if err != nil {
			return nil, err
		}
		md.Dimensions = append(md.Dimensions, dim)
	}
	md.Facts = []*xmd.Fact{f}
	return md, nil
}

// buildDimension derives one dimension: base level at the requested
// concept, complemented with its full roll-up chain.
func (in *Interpreter) buildDimension(g dimGroup) (*xmd.Dimension, error) {
	dim := &xmd.Dimension{Name: g.concept}
	chain := in.dimensionChain(g.concept)
	seenRollup := map[string]bool{}
	for _, lvl := range chain {
		level, err := in.buildLevel(lvl.concept, g)
		if err != nil {
			return nil, err
		}
		dim.Levels = append(dim.Levels, level)
		for _, s := range lvl.path {
			key := s.From + "→" + s.To
			if !seenRollup[key] {
				seenRollup[key] = true
				dim.Rollups = append(dim.Rollups, xmd.Rollup{From: s.From, To: s.To})
			}
		}
	}
	return dim, nil
}

// buildLevel emits one level with all mapped attributes of the
// concept as descriptors.
func (in *Interpreter) buildLevel(concept string, g dimGroup) (*xmd.Level, error) {
	c, ok := in.onto.Concept(concept)
	if !ok {
		return nil, fmt.Errorf("interpreter: unknown concept %q", concept)
	}
	cm, ok := in.mapg.Concept(concept)
	if !ok {
		return nil, fmt.Errorf("interpreter: concept %q is not mapped", concept)
	}
	level := &xmd.Level{Name: concept, Concept: concept}
	attrs := make([]string, 0, len(cm.Attrs))
	for a := range cm.Attrs {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		p, ok := c.Property(a)
		if !ok {
			return nil, fmt.Errorf("interpreter: concept %q lacks property %q", concept, a)
		}
		level.Descriptors = append(level.Descriptors, xmd.Descriptor{
			Name: a, Type: p.Type, Attr: ontology.Qualify(concept, a),
		})
	}
	// Key preference: the requested attribute for the base level, then
	// the first string descriptor, then the first descriptor.
	if concept == g.concept && len(g.attrs) > 0 {
		level.Key = g.attrs[0]
	} else {
		for _, d := range level.Descriptors {
			if d.Type == "string" {
				level.Key = d.Name
				break
			}
		}
		if level.Key == "" && len(level.Descriptors) > 0 {
			level.Key = level.Descriptors[0].Name
		}
	}
	return level, nil
}

func (in *Interpreter) ontologySchema() expr.Schema {
	return func(name string) (expr.Kind, bool) {
		_, p, err := in.onto.ResolveQualified(name)
		if err != nil {
			return expr.KindNull, false
		}
		k, err := expr.ParseKind(p.Type)
		if err != nil {
			return expr.KindNull, false
		}
		return k, true
	}
}

// physicalRename builds the qualified-attribute → physical-column
// rename map for a set of qualified identifiers.
func (in *Interpreter) physicalRename(qualified []string) (map[string]string, error) {
	out := map[string]string{}
	for _, q := range qualified {
		_, _, col, err := in.mapg.Column(q)
		if err != nil {
			return nil, err
		}
		out[q] = col
	}
	return out, nil
}

// flowBuilder accumulates the xLM design with dedup helpers.
type flowBuilder struct {
	in     *Interpreter
	d      *xlm.Design
	hasSrc map[string]bool // concept → datastore+extraction emitted
}

func (b *flowBuilder) ensureSource(concept string) (string, error) {
	if b.hasSrc[concept] {
		return "EXTRACTION_" + concept, nil
	}
	cm, ok := b.in.mapg.Concept(concept)
	if !ok {
		return "", fmt.Errorf("interpreter: concept %q is not mapped", concept)
	}
	store, ok := b.in.cat.Store(cm.Store)
	if !ok {
		return "", fmt.Errorf("interpreter: unknown datastore %q", cm.Store)
	}
	rel, ok := store.Relation(cm.Relation)
	if !ok {
		return "", fmt.Errorf("interpreter: unknown relation %s.%s", cm.Store, cm.Relation)
	}
	fields := make([]xlm.Field, len(rel.Attributes))
	for i, a := range rel.Attributes {
		fields[i] = xlm.Field{Name: a.Name, Type: a.Type}
	}
	ds := &xlm.Node{
		Name: "DATASTORE_" + concept, Type: xlm.OpDatastore, Optype: "TableInput",
		Fields: fields,
		Params: map[string]string{"store": cm.Store, "table": cm.Relation},
	}
	ex := &xlm.Node{Name: "EXTRACTION_" + concept, Type: xlm.OpExtraction, Optype: "Extraction"}
	if err := b.d.AddNode(ds); err != nil {
		return "", err
	}
	if err := b.d.AddNode(ex); err != nil {
		return "", err
	}
	if err := b.d.AddEdge(ds.Name, ex.Name); err != nil {
		return "", err
	}
	b.hasSrc[concept] = true
	return ex.Name, nil
}

// joinOn derives the xLM "on" parameter for a path step: left side is
// the flow containing the step's From columns.
func (b *flowBuilder) joinOn(s ontology.Step) (string, error) {
	pm, ok := b.in.mapg.Property(s.Prop.ID)
	if !ok {
		return "", fmt.Errorf("interpreter: object property %q is not mapped", s.Prop.ID)
	}
	var pairs []string
	for i := range pm.DomainCols {
		if !s.Reverse {
			pairs = append(pairs, pm.DomainCols[i]+"="+pm.RangeCols[i])
		} else {
			pairs = append(pairs, pm.RangeCols[i]+"="+pm.DomainCols[i])
		}
	}
	return strings.Join(pairs, ","), nil
}

// buildETL synthesises the partial ETL flow.
func (in *Interpreter) buildETL(r *xrq.Requirement, fact string, dims []dimGroup, paths map[string]ontology.Path) (*xlm.Design, error) {
	factTable := FactTableName(r)
	d := xlm.NewDesign("etl_" + r.ID)
	d.Metadata["requirement"] = r.ID
	d.Metadata["fact"] = factTable
	b := &flowBuilder{in: in, d: d, hasSrc: map[string]bool{}}

	// ---- Fact pipeline: extraction of the fact concept, joins along
	// the union of the functional paths (a tree), slicer selections,
	// measure derivations, aggregation, load.
	cur, err := b.ensureSource(fact)
	if err != nil {
		return nil, err
	}
	joined := map[string]bool{fact: true}
	// Deterministic path order: sorted by target concept.
	targets := make([]string, 0, len(paths))
	for c := range paths {
		targets = append(targets, c)
	}
	sort.Strings(targets)
	for _, target := range targets {
		for _, step := range paths[target] {
			if joined[step.To] {
				continue
			}
			right, err := b.ensureSource(step.To)
			if err != nil {
				return nil, err
			}
			on, err := b.joinOn(step)
			if err != nil {
				return nil, err
			}
			jn := &xlm.Node{
				Name: "JOIN_" + step.From + "_" + step.To, Type: xlm.OpJoin, Optype: "MergeJoin",
				Params: map[string]string{"on": on},
			}
			if err := d.AddNode(jn); err != nil {
				return nil, err
			}
			if err := d.AddEdge(cur, jn.Name); err != nil {
				return nil, err
			}
			if err := d.AddEdge(right, jn.Name); err != nil {
				return nil, err
			}
			cur = jn.Name
			joined[step.To] = true
		}
	}
	// Slicers.
	for _, s := range r.Slicers {
		_, p, err := in.onto.ResolveQualified(s.Concept)
		if err != nil {
			return nil, err
		}
		pred, err := s.Predicate(p.Type)
		if err != nil {
			return nil, err
		}
		ren, err := in.physicalRename([]string{s.Concept})
		if err != nil {
			return nil, err
		}
		phys := expr.Rename(pred, ren)
		_, attr, _ := ontology.SplitQualified(s.Concept)
		sel := &xlm.Node{
			Name: "SELECTION_" + attr, Type: xlm.OpSelection, Optype: "FilterRows",
			Params: map[string]string{"predicate": phys.String()},
		}
		if err := d.AddNode(sel); err != nil {
			return nil, err
		}
		if err := d.AddEdge(cur, sel.Name); err != nil {
			return nil, err
		}
		cur = sel.Name
	}
	// Measures.
	for _, m := range r.Measures {
		n, err := m.Expr()
		if err != nil {
			return nil, err
		}
		ren, err := in.physicalRename(expr.Idents(n))
		if err != nil {
			return nil, err
		}
		phys := expr.Rename(n, ren)
		fn := &xlm.Node{
			Name: "FUNCTION_" + m.ID, Type: xlm.OpFunction, Optype: "Calculator",
			Params: map[string]string{"name": m.ID, "expr": phys.String()},
		}
		if err := d.AddNode(fn); err != nil {
			return nil, err
		}
		if err := d.AddEdge(cur, fn.Name); err != nil {
			return nil, err
		}
		cur = fn.Name
	}
	// Aggregation at the base grain of the requested dimensions.
	var groupCols []string
	for _, g := range dims {
		cm, ok := in.mapg.Concept(g.concept)
		if !ok {
			return nil, fmt.Errorf("interpreter: concept %q is not mapped", g.concept)
		}
		groupCols = append(groupCols, cm.Key...)
	}
	var aggSpecs []string
	for _, m := range r.Measures {
		fn := measureAggFunc(r, m.ID)
		aggSpecs = append(aggSpecs, fmt.Sprintf("%s:%s:%s", m.ID, fn, m.ID))
	}
	agg := &xlm.Node{
		Name: "AGGREGATION_" + factTable, Type: xlm.OpAggregation, Optype: "GroupBy",
		Params: map[string]string{
			"group":      strings.Join(groupCols, ","),
			"aggregates": strings.Join(aggSpecs, ";"),
		},
	}
	if err := d.AddNode(agg); err != nil {
		return nil, err
	}
	if err := d.AddEdge(cur, agg.Name); err != nil {
		return nil, err
	}
	// Deployment metadata on the loader: primary key (the grouping
	// columns) and foreign keys into the dimension tables.
	var refs []string
	for _, g := range dims {
		cm, _ := in.mapg.Concept(g.concept)
		for _, k := range cm.Key {
			refs = append(refs, fmt.Sprintf("%s=%s.%s", k, DimTableName(g.concept), k))
		}
	}
	loader := &xlm.Node{
		Name: "LOADER_" + factTable, Type: xlm.OpLoader, Optype: "TableOutput",
		Params: map[string]string{
			"table": factTable,
			"keys":  strings.Join(groupCols, ","),
			"refs":  strings.Join(refs, ","),
		},
	}
	if err := d.AddNode(loader); err != nil {
		return nil, err
	}
	if err := d.AddEdge(agg.Name, loader.Name); err != nil {
		return nil, err
	}

	// ---- Dimension pipelines: denormalised load of each dimension
	// table from the dimension concept's roll-up chain.
	for _, g := range dims {
		if err := in.buildDimBranch(b, g); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// buildDimBranch emits the load pipeline of one dimension table.
func (in *Interpreter) buildDimBranch(b *flowBuilder, g dimGroup) error {
	cur, err := b.ensureSource(g.concept)
	if err != nil {
		return err
	}
	chain := in.dimensionChain(g.concept)
	joined := map[string]bool{g.concept: true}
	for _, lvl := range chain {
		for _, step := range lvl.path {
			if joined[step.To] {
				continue
			}
			right, err := b.ensureSource(step.To)
			if err != nil {
				return err
			}
			on, err := b.joinOn(step)
			if err != nil {
				return err
			}
			jn := &xlm.Node{
				Name: "JOINDIM_" + g.concept + "_" + step.From + "_" + step.To,
				Type: xlm.OpJoin, Optype: "MergeJoin",
				Params: map[string]string{"on": on},
			}
			if err := b.d.AddNode(jn); err != nil {
				return err
			}
			if err := b.d.AddEdge(cur, jn.Name); err != nil {
				return err
			}
			if err := b.d.AddEdge(right, jn.Name); err != nil {
				return err
			}
			cur = jn.Name
			joined[step.To] = true
		}
	}
	// Project: base keys + every descriptor of every level.
	cmBase, _ := in.mapg.Concept(g.concept)
	var cols []string
	seen := map[string]bool{}
	for _, k := range cmBase.Key {
		if !seen[k] {
			seen[k] = true
			cols = append(cols, k)
		}
	}
	for _, lvl := range chain {
		cm, _ := in.mapg.Concept(lvl.concept)
		attrs := make([]string, 0, len(cm.Attrs))
		for a := range cm.Attrs {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			col := cm.Attrs[a]
			if !seen[col] {
				seen[col] = true
				cols = append(cols, col)
			}
		}
	}
	table := DimTableName(g.concept)
	proj := &xlm.Node{
		Name: "PROJECTION_" + table, Type: xlm.OpProjection, Optype: "SelectValues",
		Params: map[string]string{"columns": strings.Join(cols, ",")},
	}
	if err := b.d.AddNode(proj); err != nil {
		return err
	}
	if err := b.d.AddEdge(cur, proj.Name); err != nil {
		return err
	}
	loader := &xlm.Node{
		Name: "LOADER_" + table, Type: xlm.OpLoader, Optype: "TableOutput",
		Params: map[string]string{
			"table": table,
			"keys":  strings.Join(cmBase.Key, ","),
		},
	}
	if err := b.d.AddNode(loader); err != nil {
		return err
	}
	return b.d.AddEdge(proj.Name, loader.Name)
}

// measureAggFunc picks the aggregation function for the fact-grain
// GROUP BY: the first declared aggregation of the measure, or SUM.
func measureAggFunc(r *xrq.Requirement, measure string) string {
	for _, a := range r.Aggs {
		if a.Measure == measure {
			return string(a.Function)
		}
	}
	return string(xrq.AggSum)
}
