// Package interpreter implements Quarry's Requirements Interpreter:
// the semi-automatic translation of an information requirement (xRQ)
// into a partial DW design — an MD schema (xMD) plus the ETL process
// (xLM) that populates it — following the GEM approach [11] the paper
// builds on.
//
// The stages are:
//
//  1. validate the requirement against the domain ontology;
//  2. tag concepts with MD roles: the factual concept is the most
//     specific concept carrying the measures; dimension and slicer
//     concepts must be reachable from it through to-one (functional)
//     paths, which is exactly the MD integrity constraint
//     (strictness/summarizability) the paper enforces;
//  3. complete the design: pull in the intermediate concepts of those
//     paths and the roll-up chains of every dimension;
//  4. emit the partial MD schema (a star) and the partial ETL flow
//     (extraction → joins along the ontology paths → slicer
//     selections → measure derivations → aggregation → fact load,
//     plus one denormalised load branch per dimension table).
package interpreter

import (
	"fmt"
	"sort"
	"strings"

	"quarry/internal/expr"
	"quarry/internal/mapping"
	"quarry/internal/ontology"
	"quarry/internal/sources"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
	"quarry/internal/xrq"
)

// Interpreter translates requirements over one ontology/mapping/
// catalog triple.
type Interpreter struct {
	onto *ontology.Ontology
	mapg *mapping.Mapping
	cat  *sources.Catalog
}

// New creates an interpreter after cross-validating the mapping.
func New(onto *ontology.Ontology, mapg *mapping.Mapping, cat *sources.Catalog) (*Interpreter, error) {
	if err := mapg.Validate(onto, cat); err != nil {
		return nil, err
	}
	return &Interpreter{onto: onto, mapg: mapg, cat: cat}, nil
}

// PartialDesign is the interpreter's output for one requirement.
type PartialDesign struct {
	Requirement *xrq.Requirement
	MD          *xmd.Schema
	ETL         *xlm.Design
	// FactConcept is the ontology concept tagged as the subject of
	// analysis.
	FactConcept string
	// DimPaths maps each dimension/slicer concept to its functional
	// path from the fact concept.
	DimPaths map[string]ontology.Path
}

// FactTableName derives the deployed fact table name for a
// requirement, Figure 3 style: fact_table_<first measure>.
func FactTableName(r *xrq.Requirement) string {
	return "fact_table_" + r.Measures[0].ID
}

// DimTableName derives the deployed dimension table name for a
// dimension concept.
func DimTableName(concept string) string {
	return "dim_" + strings.ToLower(concept)
}

// Interpret runs the full pipeline for one requirement.
func (in *Interpreter) Interpret(r *xrq.Requirement) (*PartialDesign, error) {
	if err := r.Validate(in.onto); err != nil {
		return nil, err
	}
	// ---- Stage 2: tag concepts with MD roles.
	measureConcepts, err := conceptsOf(r)
	if err != nil {
		return nil, err
	}
	if len(measureConcepts.measures) == 0 {
		return nil, fmt.Errorf("interpreter: requirement %q has constant-only measures; no factual concept", r.ID)
	}
	needed := measureConcepts.all()
	fact, err := in.chooseFact(r, measureConcepts.measures, needed)
	if err != nil {
		return nil, err
	}
	// Functional paths from the fact to every other needed concept.
	// Resolution order matters: dimensions first (requirement order),
	// then measure concepts, then slicers — later concepts prefer
	// routes through already-resolved ones, so the revenue demo's
	// Nation slicer rides the Supplier dimension path (Figure 3)
	// instead of picking an arbitrary equal-length alternative, and
	// the union of paths stays a consistent join tree.
	var order []string
	seenOrder := map[string]bool{fact: true}
	push := func(cs []string) {
		for _, c := range cs {
			if !seenOrder[c] {
				seenOrder[c] = true
				order = append(order, c)
			}
		}
	}
	push(measureConcepts.dims)
	push(measureConcepts.measures)
	push(measureConcepts.slicers)
	paths := map[string]ontology.Path{fact: {}}
	var resolved []string
	for _, c := range order {
		p, ok := in.resolvePath(fact, c, paths, resolved)
		if !ok {
			return nil, fmt.Errorf(
				"interpreter: requirement %q violates MD integrity: concept %q is not functionally determined by fact %q (no to-one path)",
				r.ID, c, fact)
		}
		paths[c] = p
		resolved = append(resolved, c)
	}
	// Every concept on any path must be mapped to sources.
	for c, p := range paths {
		for _, step := range p {
			for _, cc := range []string{step.From, step.To} {
				if _, ok := in.mapg.Concept(cc); !ok {
					return nil, fmt.Errorf("interpreter: path to %q traverses unmapped concept %q", c, cc)
				}
			}
		}
	}
	pd := &PartialDesign{Requirement: r.Clone(), FactConcept: fact, DimPaths: paths}

	dims := dimensionGroups(r)
	md, err := in.buildMD(r, fact, dims)
	if err != nil {
		return nil, err
	}
	pd.MD = md

	etl, err := in.buildETL(r, fact, dims, paths)
	if err != nil {
		return nil, err
	}
	pd.ETL = etl

	// ---- Soundness: both artifacts must validate.
	if err := md.Validate(); err != nil {
		return nil, fmt.Errorf("interpreter: generated MD schema unsound: %w", err)
	}
	if err := etl.Validate(); err != nil {
		return nil, fmt.Errorf("interpreter: generated ETL flow unsound: %w", err)
	}
	// ---- Satisfiability: the design must answer its own requirement.
	if err := Satisfies(md, r); err != nil {
		return nil, fmt.Errorf("interpreter: generated design does not satisfy %q: %w", r.ID, err)
	}
	return pd, nil
}

// conceptRoles collects the concepts referenced by each requirement
// part.
type conceptRoles struct {
	measures []string
	dims     []string
	slicers  []string
}

func (cr conceptRoles) all() []string {
	set := map[string]bool{}
	for _, g := range [][]string{cr.measures, cr.dims, cr.slicers} {
		for _, c := range g {
			set[c] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func conceptsOf(r *xrq.Requirement) (conceptRoles, error) {
	var cr conceptRoles
	seenM := map[string]bool{}
	for _, m := range r.Measures {
		n, err := m.Expr()
		if err != nil {
			return cr, err
		}
		for _, id := range expr.Idents(n) {
			c, _, err := ontology.SplitQualified(id)
			if err != nil {
				return cr, err
			}
			if !seenM[c] {
				seenM[c] = true
				cr.measures = append(cr.measures, c)
			}
		}
	}
	seenD := map[string]bool{}
	for _, d := range r.Dimensions {
		c, _, err := ontology.SplitQualified(d.Concept)
		if err != nil {
			return cr, err
		}
		if !seenD[c] {
			seenD[c] = true
			cr.dims = append(cr.dims, c)
		}
	}
	seenS := map[string]bool{}
	for _, s := range r.Slicers {
		c, _, err := ontology.SplitQualified(s.Concept)
		if err != nil {
			return cr, err
		}
		if !seenS[c] {
			seenS[c] = true
			cr.slicers = append(cr.slicers, c)
		}
	}
	sort.Strings(cr.measures)
	sort.Strings(cr.dims)
	sort.Strings(cr.slicers)
	return cr, nil
}

// resolvePath finds the functional path fact→c, preferring (1) a
// prefix of an already-resolved path that visits c, (2) a composite
// route through an already-resolved concept when not longer than the
// direct shortest path, (3) the direct shortest path.
func (in *Interpreter) resolvePath(fact, c string, paths map[string]ontology.Path, resolved []string) (ontology.Path, bool) {
	if c == fact {
		return ontology.Path{}, true
	}
	// (1) prefix reuse.
	for _, rc := range resolved {
		for i, s := range paths[rc] {
			if s.To == c {
				return append(ontology.Path{}, paths[rc][:i+1]...), true
			}
		}
	}
	direct, haveDirect := in.onto.ShortestToOnePath(fact, c)
	best := direct
	have := haveDirect
	composite := false
	// (2) composite routes via resolved concepts.
	for _, via := range resolved {
		tail, ok := in.onto.ShortestToOnePath(via, c)
		if !ok || len(tail) == 0 {
			continue
		}
		// Reject composites that revisit concepts (not simple paths).
		onPath := map[string]bool{fact: true}
		for _, s := range paths[via] {
			onPath[s.To] = true
		}
		simple := true
		for _, s := range tail {
			if onPath[s.To] {
				simple = false
				break
			}
			onPath[s.To] = true
		}
		if !simple {
			continue
		}
		cand := append(append(ontology.Path{}, paths[via]...), tail...)
		if !have || len(cand) < len(best) || (len(cand) == len(best) && !composite) {
			best, have, composite = cand, true, true
		}
	}
	return best, have
}

// chooseFact picks the factual concept: the measure-bearing concept
// that functionally determines every other needed concept, preferring
// the one with the shortest total path length (most specific wins,
// since paths to it from coarser concepts do not exist).
func (in *Interpreter) chooseFact(r *xrq.Requirement, candidates, needed []string) (string, error) {
	best := ""
	bestCost := -1
	for _, cand := range candidates {
		cost := 0
		ok := true
		for _, c := range needed {
			if c == cand {
				continue
			}
			p, found := in.onto.ShortestToOnePath(cand, c)
			if !found {
				ok = false
				break
			}
			cost += len(p)
		}
		if !ok {
			continue
		}
		if bestCost == -1 || cost < bestCost || (cost == bestCost && cand < best) {
			best, bestCost = cand, cost
		}
	}
	if best == "" {
		return "", fmt.Errorf(
			"interpreter: requirement %q violates MD integrity: no measure concept functionally determines all of %v",
			r.ID, needed)
	}
	return best, nil
}

// dimensionGroups groups requested dimension attributes by concept,
// preserving requirement order of first appearance.
func dimensionGroups(r *xrq.Requirement) []dimGroup {
	var out []dimGroup
	idx := map[string]int{}
	for _, d := range r.Dimensions {
		c, attr, _ := ontology.SplitQualified(d.Concept)
		if i, ok := idx[c]; ok {
			out[i].attrs = append(out[i].attrs, attr)
			continue
		}
		idx[c] = len(out)
		out = append(out, dimGroup{concept: c, attrs: []string{attr}})
	}
	return out
}

type dimGroup struct {
	concept string
	attrs   []string
}

// Satisfies checks that an MD schema answers a requirement: a fact
// carrying all its measures exists and, for every requested dimension
// attribute, that fact links (at base level) to a dimension holding
// the attribute as a descriptor of a level reachable by roll-up. This
// is the satisfiability check the paper re-runs after every
// integration step.
func Satisfies(md *xmd.Schema, r *xrq.Requirement) error {
	var fact *xmd.Fact
	for _, f := range md.Facts {
		ok := true
		for _, m := range r.Measures {
			if _, has := f.Measure(m.ID); !has {
				ok = false
				break
			}
		}
		if ok {
			fact = f
			break
		}
	}
	if fact == nil {
		return fmt.Errorf("no fact carries measures of requirement %q", r.ID)
	}
	for _, d := range r.Dimensions {
		if err := findDescriptor(md, fact, d.Concept); err != nil {
			return fmt.Errorf("requirement %q dimension %s: %w", r.ID, d.Concept, err)
		}
	}
	return nil
}

// findDescriptor verifies the fact can reach the qualified attribute
// through one of its dimensions.
func findDescriptor(md *xmd.Schema, fact *xmd.Fact, qualified string) error {
	for _, use := range fact.Uses {
		dim, ok := md.Dimension(use.Dimension)
		if !ok {
			continue
		}
		for _, lvl := range dim.Levels {
			if !dim.RollsUpTo(use.Level, lvl.Name) {
				continue
			}
			for _, desc := range lvl.Descriptors {
				if desc.Attr == qualified {
					return nil
				}
			}
		}
	}
	return fmt.Errorf("attribute %s not reachable from fact %s", qualified, fact.Name)
}
