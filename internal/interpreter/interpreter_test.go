package interpreter

import (
	"strings"
	"testing"

	"quarry/internal/engine"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xrq"
)

func newTPCH(t *testing.T) *Interpreter {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(o, m, c)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInterpretRevenue(t *testing.T) {
	in := newTPCH(t)
	pd, err := in.Interpret(tpch.RevenueRequirement())
	if err != nil {
		t.Fatal(err)
	}
	if pd.FactConcept != "Lineitem" {
		t.Errorf("fact concept = %s", pd.FactConcept)
	}
	// MD side: Figure 3's fact_table_revenue star.
	f, ok := pd.MD.Fact("fact_table_revenue")
	if !ok {
		t.Fatalf("fact table missing; facts = %v", pd.MD.Facts)
	}
	m, ok := f.Measure("revenue")
	if !ok || m.Type != "float" {
		t.Errorf("measure = %+v, %v", m, ok)
	}
	sup, ok := pd.MD.Dimension("Supplier")
	if !ok {
		t.Fatal("Supplier dimension missing")
	}
	// Complemented roll-up chain: Supplier → Nation → Region.
	var levels []string
	for _, l := range sup.Levels {
		levels = append(levels, l.Name)
	}
	if strings.Join(levels, ",") != "Supplier,Nation,Region" {
		t.Errorf("Supplier levels = %v", levels)
	}
	if !sup.RollsUpTo("Supplier", "Region") {
		t.Error("Supplier must roll up to Region")
	}
	// The Nation slicer path rides the Supplier dimension (Figure 3),
	// not the equally-long Customer route.
	nationPath := pd.DimPaths["Nation"]
	got := strings.Join(nationPath.Concepts(), "→")
	if got != "Lineitem→Partsupp→Supplier→Nation" {
		t.Errorf("Nation path = %s", got)
	}
	// ETL side: validated flow with the expected stages.
	for _, name := range []string{
		"DATASTORE_Lineitem", "EXTRACTION_Lineitem",
		"JOIN_Lineitem_Partsupp", "JOIN_Partsupp_Supplier", "JOIN_Supplier_Nation", "JOIN_Partsupp_Part",
		"SELECTION_n_name", "FUNCTION_revenue",
		"AGGREGATION_fact_table_revenue", "LOADER_fact_table_revenue",
		"PROJECTION_dim_part", "LOADER_dim_part",
		"JOINDIM_Supplier_Supplier_Nation", "JOINDIM_Supplier_Nation_Region", "LOADER_dim_supplier",
	} {
		if _, ok := pd.ETL.Node(name); !ok {
			t.Errorf("ETL node %q missing", name)
		}
	}
	agg, _ := pd.ETL.Node("AGGREGATION_fact_table_revenue")
	if agg.Param("group") != "p_partkey,s_suppkey" {
		t.Errorf("group = %q", agg.Param("group"))
	}
	if agg.Param("aggregates") != "revenue:AVG:revenue" {
		t.Errorf("aggregates = %q", agg.Param("aggregates"))
	}
	sel, _ := pd.ETL.Node("SELECTION_n_name")
	if sel.Param("predicate") != "n_name = 'SPAIN'" {
		t.Errorf("slicer predicate = %q", sel.Param("predicate"))
	}
}

func TestInterpretNetProfit(t *testing.T) {
	in := newTPCH(t)
	pd, err := in.Interpret(tpch.NetProfitRequirement())
	if err != nil {
		t.Fatal(err)
	}
	// Partsupp is the most specific measure concept (it determines
	// Part; Part does not determine Partsupp).
	if pd.FactConcept != "Partsupp" {
		t.Errorf("fact concept = %s", pd.FactConcept)
	}
	if _, ok := pd.MD.Fact("fact_table_netprofit"); !ok {
		t.Error("fact_table_netprofit missing")
	}
	// The flow extracts partsupp (Figure 3's DATASTORE_Partsupp).
	if _, ok := pd.ETL.Node("DATASTORE_Partsupp"); !ok {
		t.Error("DATASTORE_Partsupp missing")
	}
}

func TestInterpretAllCanonical(t *testing.T) {
	in := newTPCH(t)
	for _, r := range tpch.CanonicalRequirements() {
		pd, err := in.Interpret(r)
		if err != nil {
			t.Errorf("%s: %v", r.ID, err)
			continue
		}
		if err := pd.MD.Validate(); err != nil {
			t.Errorf("%s MD: %v", r.ID, err)
		}
		if err := pd.ETL.Validate(); err != nil {
			t.Errorf("%s ETL: %v", r.ID, err)
		}
	}
}

func TestInterpretGenerated(t *testing.T) {
	in := newTPCH(t)
	for _, r := range tpch.GenerateRequirements(24) {
		if _, err := in.Interpret(r); err != nil {
			t.Errorf("%s: %v", r.ID, err)
		}
	}
}

func TestInterpretRejectsNonFunctionalDimension(t *testing.T) {
	in := newTPCH(t)
	// Measures on Orders, dimension on Lineitem: an order has many
	// lineitems, so Lineitem is not functionally determined — the MD
	// integrity violation the interpreter must refuse.
	r := &xrq.Requirement{
		ID:         "IR_bad",
		Dimensions: []xrq.Dimension{{Concept: "Lineitem.l_returnflag"}},
		Measures:   []xrq.Measure{{ID: "total", Function: "Orders.o_totalprice"}},
	}
	_, err := in.Interpret(r)
	if err == nil || !strings.Contains(err.Error(), "MD integrity") {
		t.Errorf("expected MD integrity violation, got %v", err)
	}
}

func TestInterpretRejectsConstantMeasures(t *testing.T) {
	in := newTPCH(t)
	r := &xrq.Requirement{
		ID:         "IR_const",
		Dimensions: []xrq.Dimension{{Concept: "Part.p_name"}},
		Measures:   []xrq.Measure{{ID: "one", Function: "1 + 1"}},
	}
	if _, err := in.Interpret(r); err == nil {
		t.Error("constant-only measures accepted")
	}
}

func TestInterpretRejectsInvalidRequirement(t *testing.T) {
	in := newTPCH(t)
	r := &xrq.Requirement{ID: "IR_empty"}
	if _, err := in.Interpret(r); err == nil {
		t.Error("empty requirement accepted")
	}
}

func TestSatisfies(t *testing.T) {
	in := newTPCH(t)
	r := tpch.RevenueRequirement()
	pd, err := in.Interpret(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := Satisfies(pd.MD, r); err != nil {
		t.Errorf("Satisfies: %v", err)
	}
	// A requirement asking for a measure the schema lacks.
	other := r.Clone()
	other.Measures = []xrq.Measure{{ID: "ghost", Function: "Lineitem.l_tax"}}
	if err := Satisfies(pd.MD, other); err == nil {
		t.Error("missing measure satisfied")
	}
	// A requirement asking for a dimension attribute outside the star.
	other2 := r.Clone()
	other2.Dimensions = append(other2.Dimensions, xrq.Dimension{Concept: "Customer.c_name"})
	if err := Satisfies(pd.MD, other2); err == nil {
		t.Error("missing dimension satisfied")
	}
	// A roll-up attribute (Region.r_name via Supplier) IS satisfied.
	other3 := r.Clone()
	other3.Dimensions = []xrq.Dimension{{Concept: "Supplier.s_name"}, {Concept: "Region.r_name"}}
	if err := Satisfies(pd.MD, other3); err != nil {
		t.Errorf("roll-up attribute not satisfied: %v", err)
	}
}

// TestEndToEndExecution interprets the revenue requirement, executes
// the generated ETL on a generated TPC-H instance, and checks the
// loaded fact table against a reference computation done directly on
// the source tables.
func TestEndToEndExecution(t *testing.T) {
	in := newTPCH(t)
	pd, err := in.Interpret(tpch.RevenueRequirement())
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, 1, 42); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(pd.ETL, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loaded["fact_table_revenue"] == 0 {
		t.Fatal("fact table empty; SPAIN slicer selected nothing")
	}
	if res.Loaded["dim_part"] == 0 || res.Loaded["dim_supplier"] == 0 {
		t.Errorf("dimension tables empty: %v", res.Loaded)
	}

	// Reference: avg revenue per (p_partkey, s_suppkey) where the
	// supplier's nation is SPAIN, computed straight off the sources.
	nation, _ := db.Table("nation")
	spain := map[int64]bool{}
	for _, r := range nation.Rows() {
		if r[1].AsString() == "SPAIN" {
			spain[r[0].AsInt()] = true
		}
	}
	supplier, _ := db.Table("supplier")
	spainSupp := map[int64]bool{}
	for _, r := range supplier.Rows() {
		if spain[r[2].AsInt()] {
			spainSupp[r[0].AsInt()] = true
		}
	}
	type key struct{ p, s int64 }
	sums := map[key]float64{}
	counts := map[key]int64{}
	lineitem, _ := db.Table("lineitem")
	for _, r := range lineitem.Rows() {
		p, s := r[1].AsInt(), r[2].AsInt()
		if !spainSupp[s] {
			continue
		}
		price, _ := r[5].AsFloat()
		disc, _ := r[6].AsFloat()
		k := key{p, s}
		sums[k] += price * (1 - disc)
		counts[k]++
	}
	fact, _ := db.Table("fact_table_revenue")
	if int(fact.NumRows()) != len(sums) {
		t.Fatalf("fact rows = %d, reference groups = %d", fact.NumRows(), len(sums))
	}
	pIdx, _ := fact.ColumnIndex("p_partkey")
	sIdx, _ := fact.ColumnIndex("s_suppkey")
	rIdx, _ := fact.ColumnIndex("revenue")
	for _, r := range fact.Rows() {
		k := key{r[pIdx].AsInt(), r[sIdx].AsInt()}
		want := sums[k] / float64(counts[k])
		got, _ := r[rIdx].AsFloat()
		if diff := got - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("group %v: revenue %v, want %v", k, got, want)
		}
	}
}

// TestDimensionTableContents verifies the denormalised supplier
// dimension (supplier ⋈ nation ⋈ region).
func TestDimensionTableContents(t *testing.T) {
	in := newTPCH(t)
	pd, err := in.Interpret(tpch.RevenueRequirement())
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	sz, err := tpch.Generate(db, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(pd.ETL, db); err != nil {
		t.Fatal(err)
	}
	dim, ok := db.Table("dim_supplier")
	if !ok {
		t.Fatal("dim_supplier missing")
	}
	if int(dim.NumRows()) != sz.Supplier {
		t.Errorf("dim_supplier rows = %d, want %d", dim.NumRows(), sz.Supplier)
	}
	// Every row carries a nation name and a region name.
	nIdx, ok := dim.ColumnIndex("n_name")
	if !ok {
		t.Fatal("n_name column missing from dim_supplier")
	}
	rIdx, ok := dim.ColumnIndex("r_name")
	if !ok {
		t.Fatal("r_name column missing from dim_supplier")
	}
	for _, r := range dim.Rows() {
		if r[nIdx].AsString() == "" || r[rIdx].AsString() == "" {
			t.Fatal("denormalised dimension has empty roll-up values")
		}
	}
}

func TestDegenerateDimensionOnFactConcept(t *testing.T) {
	in := newTPCH(t)
	r := &xrq.Requirement{
		ID:         "IR_degenerate",
		Dimensions: []xrq.Dimension{{Concept: "Lineitem.l_returnflag"}},
		Measures:   []xrq.Measure{{ID: "qty", Function: "Lineitem.l_quantity"}},
	}
	pd, err := in.Interpret(r)
	if err != nil {
		t.Fatal(err)
	}
	// Dimension on the fact concept itself: its chain covers the full
	// to-one closure of Lineitem.
	dim, ok := pd.MD.Dimension("Lineitem")
	if !ok {
		t.Fatal("degenerate dimension missing")
	}
	if len(dim.Levels) < 2 {
		t.Errorf("expected complemented levels, got %d", len(dim.Levels))
	}
	if err := pd.ETL.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInterpreterRejectsBrokenMapping(t *testing.T) {
	o, _ := tpch.Ontology()
	c, _ := tpch.Catalog(1)
	m, _ := tpch.Mapping()
	// Damage the mapping so cross-validation fails.
	cm, _ := m.Concept("Part")
	cm.Relation = "ghost"
	if _, err := New(o, m, c); err == nil {
		t.Error("broken mapping accepted")
	}
}

func TestTwoAttributesSameConceptShareDimension(t *testing.T) {
	in := newTPCH(t)
	r := &xrq.Requirement{
		ID: "IR_two_attrs",
		Dimensions: []xrq.Dimension{
			{Concept: "Part.p_name"},
			{Concept: "Part.p_brand"},
		},
		Measures: []xrq.Measure{{ID: "qty", Function: "Lineitem.l_quantity"}},
	}
	pd, err := in.Interpret(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.MD.Dimensions) != 1 {
		t.Errorf("dimensions = %d, want 1 shared", len(pd.MD.Dimensions))
	}
	// Group-by must not repeat the key columns.
	agg, _ := pd.ETL.Node("AGGREGATION_fact_table_qty")
	if agg.Param("group") != "p_partkey" {
		t.Errorf("group = %q", agg.Param("group"))
	}
}
