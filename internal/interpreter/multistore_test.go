package interpreter

import (
	"testing"

	"quarry/internal/engine"
	"quarry/internal/storage"
	"quarry/internal/tpch"
)

// TestCrossStoreRequirement verifies the paper's "requirements
// spanning diverse data sources" claim: the revenue requirement
// touches the sales store (lineitem) and the catalog store
// (partsupp/supplier/nation/part); the interpreter stitches one flow
// across both through the shared ontology, and it executes.
func TestCrossStoreRequirement(t *testing.T) {
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.MultiStoreMapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.MultiStoreCatalog(2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(o, m, c)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := in.Interpret(tpch.RevenueRequirement())
	if err != nil {
		t.Fatal(err)
	}
	// The flow draws from both stores.
	stores := map[string]bool{}
	for _, n := range pd.ETL.Nodes() {
		if s := n.Param("store"); s != "" {
			stores[s] = true
		}
	}
	if !stores[tpch.SalesStore] || !stores[tpch.CatalogStore] {
		t.Fatalf("flow stores = %v, want both", stores)
	}
	// And executes end to end.
	db := storage.NewDB()
	if _, err := tpch.GenerateMultiStore(db, 2, 42); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(pd.ETL, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loaded["fact_table_revenue"] == 0 {
		t.Error("cross-store flow loaded nothing")
	}
}
