package interpreter

import (
	"testing"
	"testing/quick"

	"quarry/internal/engine"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
)

// TestQuickInterpretationDeterministic: interpreting the same
// requirement twice yields byte-identical designs (the integrators
// and the repository depend on this).
func TestQuickInterpretationDeterministic(t *testing.T) {
	in := newTPCH(t)
	reqs := tpch.GenerateRequirements(16)
	f := func(pick uint8) bool {
		r := reqs[int(pick)%len(reqs)]
		pd1, err := in.Interpret(r)
		if err != nil {
			return false
		}
		pd2, err := in.Interpret(r)
		if err != nil {
			return false
		}
		md1, err := xmd.Marshal(pd1.MD)
		if err != nil {
			return false
		}
		md2, err := xmd.Marshal(pd2.MD)
		if err != nil {
			return false
		}
		etl1, err := xlm.Marshal(pd1.ETL)
		if err != nil {
			return false
		}
		etl2, err := xlm.Marshal(pd2.ETL)
		if err != nil {
			return false
		}
		return md1 == md2 && etl1 == etl2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 48}); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedRequirementsExecute: every synthesised requirement's
// flow executes on generated data, loads its fact table, and never
// produces more fact rows than source lineitems (aggregation can only
// shrink).
func TestGeneratedRequirementsExecute(t *testing.T) {
	in := newTPCH(t)
	db := storage.NewDB()
	sz, err := tpch.Generate(db, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tpch.GenerateRequirements(16) {
		pd, err := in.Interpret(r)
		if err != nil {
			t.Errorf("%s: %v", r.ID, err)
			continue
		}
		res, err := engine.Run(pd.ETL, db)
		if err != nil {
			t.Errorf("%s: run: %v", r.ID, err)
			continue
		}
		fact := FactTableName(r)
		if res.Loaded[fact] > int64(sz.Lineitem) {
			t.Errorf("%s: fact grew beyond source: %d > %d", r.ID, res.Loaded[fact], sz.Lineitem)
		}
	}
}

// TestDimPathsAreFunctional: every recorded dimension path is made of
// to-one hops rooted at the fact concept.
func TestDimPathsAreFunctional(t *testing.T) {
	in := newTPCH(t)
	for _, r := range tpch.GenerateRequirements(24) {
		pd, err := in.Interpret(r)
		if err != nil {
			t.Fatal(err)
		}
		for target, path := range pd.DimPaths {
			cur := pd.FactConcept
			for _, s := range path {
				if s.From != cur {
					t.Fatalf("%s: broken chain to %s", r.ID, target)
				}
				if !s.ToOne() {
					t.Fatalf("%s: non-functional hop %s on path to %s", r.ID, s.Prop.ID, target)
				}
				cur = s.To
			}
			if cur != target {
				t.Fatalf("%s: path to %s ends at %s", r.ID, target, cur)
			}
		}
	}
}
