// Package mapping implements Quarry's source schema mappings: the
// bridge between the domain ontology (business vocabulary) and the
// physical source schemas in the catalog (§2.5). A mapping binds each
// ontology concept to a relation (with an attribute correspondence)
// and each object property to the join specification that realises it
// over the source relations.
//
// The Requirements Interpreter composes these bindings to turn
// ontology-level information requirements into executable ETL flows;
// the MD Schema Integrator uses the shared ontology anchors to match
// concepts across partial designs originating in diverse sources.
package mapping

import (
	"fmt"
	"sort"

	"quarry/internal/ontology"
	"quarry/internal/sources"
)

// ConceptMapping binds an ontology concept to a source relation.
type ConceptMapping struct {
	Concept  string // ontology concept ID
	Store    string // datastore name
	Relation string // relation name
	// Attrs maps ontology datatype-property names to relation column
	// names.
	Attrs map[string]string
	// Key lists the relation columns identifying one concept instance
	// (typically the relation's primary key).
	Key []string
}

// PropertyMapping realises an ontology object property as an
// equi-join between the domain concept's relation and the range
// concept's relation.
type PropertyMapping struct {
	Property   string // ontology object property ID
	DomainCols []string
	RangeCols  []string
}

// Mapping is a full source schema mapping for one ontology over one
// catalog.
type Mapping struct {
	Name string

	concepts map[string]*ConceptMapping
	props    map[string]*PropertyMapping
}

// New creates an empty mapping.
func New(name string) *Mapping {
	return &Mapping{
		Name:     name,
		concepts: map[string]*ConceptMapping{},
		props:    map[string]*PropertyMapping{},
	}
}

// MapConcept registers a concept binding.
func (m *Mapping) MapConcept(cm ConceptMapping) error {
	if cm.Concept == "" {
		return fmt.Errorf("mapping: empty concept")
	}
	if _, dup := m.concepts[cm.Concept]; dup {
		return fmt.Errorf("mapping: concept %q mapped twice", cm.Concept)
	}
	if len(cm.Key) == 0 {
		return fmt.Errorf("mapping: concept %q has no key columns", cm.Concept)
	}
	cp := cm
	cp.Attrs = map[string]string{}
	for k, v := range cm.Attrs {
		cp.Attrs[k] = v
	}
	cp.Key = append([]string(nil), cm.Key...)
	m.concepts[cm.Concept] = &cp
	return nil
}

// MapProperty registers an object-property join binding.
func (m *Mapping) MapProperty(pm PropertyMapping) error {
	if pm.Property == "" {
		return fmt.Errorf("mapping: empty property")
	}
	if _, dup := m.props[pm.Property]; dup {
		return fmt.Errorf("mapping: property %q mapped twice", pm.Property)
	}
	if len(pm.DomainCols) == 0 || len(pm.DomainCols) != len(pm.RangeCols) {
		return fmt.Errorf("mapping: property %q has mismatched join columns", pm.Property)
	}
	cp := pm
	cp.DomainCols = append([]string(nil), pm.DomainCols...)
	cp.RangeCols = append([]string(nil), pm.RangeCols...)
	m.props[pm.Property] = &cp
	return nil
}

// Concept returns the binding for a concept.
func (m *Mapping) Concept(id string) (*ConceptMapping, bool) {
	c, ok := m.concepts[id]
	return c, ok
}

// Property returns the binding for an object property.
func (m *Mapping) Property(id string) (*PropertyMapping, bool) {
	p, ok := m.props[id]
	return p, ok
}

// MappedConcepts returns the mapped concept IDs, sorted.
func (m *Mapping) MappedConcepts() []string {
	out := make([]string, 0, len(m.concepts))
	for k := range m.concepts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Column resolves a qualified ontology attribute ("Concept.attr") to
// its physical column name.
func (m *Mapping) Column(qualified string) (store, relation, column string, err error) {
	cid, attr, err := ontology.SplitQualified(qualified)
	if err != nil {
		return "", "", "", err
	}
	cm, ok := m.concepts[cid]
	if !ok {
		return "", "", "", fmt.Errorf("mapping: concept %q is not mapped", cid)
	}
	col, ok := cm.Attrs[attr]
	if !ok {
		return "", "", "", fmt.Errorf("mapping: attribute %q of concept %q is not mapped", attr, cid)
	}
	return cm.Store, cm.Relation, col, nil
}

// Validate cross-checks the mapping against the ontology and the
// catalog: every binding must reference existing ontology elements and
// existing physical columns with compatible types.
func (m *Mapping) Validate(onto *ontology.Ontology, cat *sources.Catalog) error {
	for id, cm := range m.concepts {
		concept, ok := onto.Concept(id)
		if !ok {
			return fmt.Errorf("mapping: unknown ontology concept %q", id)
		}
		store, ok := cat.Store(cm.Store)
		if !ok {
			return fmt.Errorf("mapping: concept %q references unknown datastore %q", id, cm.Store)
		}
		rel, ok := store.Relation(cm.Relation)
		if !ok {
			return fmt.Errorf("mapping: concept %q references unknown relation %s.%s", id, cm.Store, cm.Relation)
		}
		for propName, col := range cm.Attrs {
			p, ok := concept.Property(propName)
			if !ok {
				return fmt.Errorf("mapping: concept %q maps unknown property %q", id, propName)
			}
			a, ok := rel.Attribute(col)
			if !ok {
				return fmt.Errorf("mapping: concept %q maps %q to missing column %s.%s.%s", id, propName, cm.Store, cm.Relation, col)
			}
			if !typesCompatible(p.Type, a.Type) {
				return fmt.Errorf("mapping: concept %q property %q has type %s but column %s has type %s",
					id, propName, p.Type, col, a.Type)
			}
		}
		for _, k := range cm.Key {
			if !rel.HasAttribute(k) {
				return fmt.Errorf("mapping: concept %q key column %q missing in %s.%s", id, k, cm.Store, cm.Relation)
			}
		}
	}
	for id, pm := range m.props {
		op, ok := onto.ObjectProperty(id)
		if !ok {
			return fmt.Errorf("mapping: unknown object property %q", id)
		}
		dom, ok := m.concepts[op.Domain]
		if !ok {
			return fmt.Errorf("mapping: property %q requires mapped domain concept %q", id, op.Domain)
		}
		rng, ok := m.concepts[op.Range]
		if !ok {
			return fmt.Errorf("mapping: property %q requires mapped range concept %q", id, op.Range)
		}
		domStore, _ := cat.Store(dom.Store)
		rngStore, _ := cat.Store(rng.Store)
		if domStore == nil || rngStore == nil {
			return fmt.Errorf("mapping: property %q references unmapped stores", id)
		}
		domRel, ok := domStore.Relation(dom.Relation)
		if !ok {
			return fmt.Errorf("mapping: property %q domain relation missing", id)
		}
		rngRel, ok := rngStore.Relation(rng.Relation)
		if !ok {
			return fmt.Errorf("mapping: property %q range relation missing", id)
		}
		for i := range pm.DomainCols {
			a, ok := domRel.Attribute(pm.DomainCols[i])
			if !ok {
				return fmt.Errorf("mapping: property %q domain column %q missing", id, pm.DomainCols[i])
			}
			b, ok := rngRel.Attribute(pm.RangeCols[i])
			if !ok {
				return fmt.Errorf("mapping: property %q range column %q missing", id, pm.RangeCols[i])
			}
			if a.Type != b.Type {
				return fmt.Errorf("mapping: property %q joins %s(%s) with %s(%s)",
					id, pm.DomainCols[i], a.Type, pm.RangeCols[i], b.Type)
			}
		}
	}
	return nil
}

// typesCompatible allows int columns to back float ontology properties
// (safe widening) in addition to exact matches.
func typesCompatible(ontoType, colType string) bool {
	if ontoType == colType {
		return true
	}
	return ontoType == "float" && colType == "int"
}
