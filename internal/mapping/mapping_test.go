package mapping

import (
	"strings"
	"testing"

	"quarry/internal/ontology"
	"quarry/internal/sources"
)

// fixture builds a two-concept ontology (Nation→Region), a matching
// catalog, and a complete valid mapping.
func fixture(t *testing.T) (*ontology.Ontology, *sources.Catalog, *Mapping) {
	t.Helper()
	o := ontology.New("demo")
	o.AddConcept("Nation", "")
	o.AddProperty("Nation", "n_name", "string", "")
	o.AddProperty("Nation", "population", "float", "")
	o.AddConcept("Region", "")
	o.AddProperty("Region", "r_name", "string", "")
	if err := o.AddObjectProperty("nation_region", "", "Nation", "Region", ontology.ManyToOne); err != nil {
		t.Fatal(err)
	}

	c := sources.NewCatalog()
	c.AddStore("db", "relational")
	c.AddRelation("db", &sources.Relation{
		Name: "nation",
		Attributes: []sources.Attribute{
			{Name: "n_nationkey", Type: "int"},
			{Name: "n_name", Type: "string"},
			{Name: "n_pop", Type: "int"}, // int column backing a float property
			{Name: "n_regionkey", Type: "int"},
		},
		PrimaryKey: []string{"n_nationkey"},
	})
	c.AddRelation("db", &sources.Relation{
		Name: "region",
		Attributes: []sources.Attribute{
			{Name: "r_regionkey", Type: "int"},
			{Name: "r_name", Type: "string"},
		},
		PrimaryKey: []string{"r_regionkey"},
	})

	m := New("demo-map")
	if err := m.MapConcept(ConceptMapping{
		Concept: "Nation", Store: "db", Relation: "nation",
		Attrs: map[string]string{"n_name": "n_name", "population": "n_pop"},
		Key:   []string{"n_nationkey"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.MapConcept(ConceptMapping{
		Concept: "Region", Store: "db", Relation: "region",
		Attrs: map[string]string{"r_name": "r_name"},
		Key:   []string{"r_regionkey"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.MapProperty(PropertyMapping{
		Property:   "nation_region",
		DomainCols: []string{"n_regionkey"},
		RangeCols:  []string{"r_regionkey"},
	}); err != nil {
		t.Fatal(err)
	}
	return o, c, m
}

func TestValidMapping(t *testing.T) {
	o, c, m := fixture(t)
	if err := m.Validate(o, c); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := m.MappedConcepts(); len(got) != 2 || got[0] != "Nation" || got[1] != "Region" {
		t.Errorf("MappedConcepts = %v", got)
	}
	cm, ok := m.Concept("Nation")
	if !ok || cm.Relation != "nation" {
		t.Errorf("Concept(Nation) = %+v, %v", cm, ok)
	}
	pm, ok := m.Property("nation_region")
	if !ok || pm.DomainCols[0] != "n_regionkey" {
		t.Errorf("Property = %+v, %v", pm, ok)
	}
}

func TestColumnResolution(t *testing.T) {
	_, _, m := fixture(t)
	store, rel, col, err := m.Column("Nation.population")
	if err != nil {
		t.Fatal(err)
	}
	if store != "db" || rel != "nation" || col != "n_pop" {
		t.Errorf("Column = %s %s %s", store, rel, col)
	}
	for _, bad := range []string{"Nation", "Ghost.x", "Nation.ghost"} {
		if _, _, _, err := m.Column(bad); err == nil {
			t.Errorf("Column(%q) succeeded", bad)
		}
	}
}

func TestMappingRegistrationErrors(t *testing.T) {
	m := New("x")
	if err := m.MapConcept(ConceptMapping{}); err == nil {
		t.Error("empty concept accepted")
	}
	if err := m.MapConcept(ConceptMapping{Concept: "C", Key: nil}); err == nil {
		t.Error("keyless concept accepted")
	}
	m.MapConcept(ConceptMapping{Concept: "C", Key: []string{"k"}})
	if err := m.MapConcept(ConceptMapping{Concept: "C", Key: []string{"k"}}); err == nil {
		t.Error("duplicate concept accepted")
	}
	if err := m.MapProperty(PropertyMapping{}); err == nil {
		t.Error("empty property accepted")
	}
	if err := m.MapProperty(PropertyMapping{Property: "p", DomainCols: []string{"a"}, RangeCols: []string{"x", "y"}}); err == nil {
		t.Error("mismatched join columns accepted")
	}
}

func TestValidateCatchesBrokenBindings(t *testing.T) {
	type breakFn func(m *Mapping)
	cases := map[string]breakFn{
		"unknown concept": func(m *Mapping) {
			m.MapConcept(ConceptMapping{Concept: "Ghost", Store: "db", Relation: "nation", Key: []string{"n_nationkey"}})
		},
		"unknown store": func(m *Mapping) {
			m.concepts["Nation"].Store = "nope"
		},
		"unknown relation": func(m *Mapping) {
			m.concepts["Nation"].Relation = "nope"
		},
		"unknown ontology property": func(m *Mapping) {
			m.concepts["Nation"].Attrs["ghost"] = "n_name"
		},
		"missing column": func(m *Mapping) {
			m.concepts["Nation"].Attrs["n_name"] = "no_col"
		},
		"type clash": func(m *Mapping) {
			m.concepts["Nation"].Attrs["n_name"] = "n_nationkey" // string property → int column
		},
		"bad key column": func(m *Mapping) {
			m.concepts["Nation"].Key = []string{"nope"}
		},
		"unknown object property": func(m *Mapping) {
			m.props["ghost"] = &PropertyMapping{Property: "ghost", DomainCols: []string{"a"}, RangeCols: []string{"b"}}
		},
		"join type clash": func(m *Mapping) {
			m.props["nation_region"].RangeCols = []string{"r_name"}
		},
		"missing join column": func(m *Mapping) {
			m.props["nation_region"].DomainCols = []string{"nope"}
		},
	}
	for name, breakIt := range cases {
		o, c, m := fixture(t)
		breakIt(m)
		err := m.Validate(o, c)
		if err == nil {
			t.Errorf("%s: Validate accepted broken mapping", name)
			continue
		}
		if !strings.Contains(err.Error(), "mapping:") {
			t.Errorf("%s: error %q lacks package prefix", name, err)
		}
	}
}

func TestIntBackedFloatPropertyAllowed(t *testing.T) {
	o, c, m := fixture(t)
	// population (float) mapped to n_pop (int) must validate.
	if err := m.Validate(o, c); err != nil {
		t.Fatalf("widening mapping rejected: %v", err)
	}
}

func TestPropertyRequiresMappedEndpoints(t *testing.T) {
	o, c, _ := fixture(t)
	m := New("partial")
	m.MapConcept(ConceptMapping{
		Concept: "Nation", Store: "db", Relation: "nation",
		Attrs: map[string]string{"n_name": "n_name"},
		Key:   []string{"n_nationkey"},
	})
	m.MapProperty(PropertyMapping{
		Property:   "nation_region",
		DomainCols: []string{"n_regionkey"},
		RangeCols:  []string{"r_regionkey"},
	})
	if err := m.Validate(o, c); err == nil {
		t.Error("property with unmapped range concept accepted")
	}
}
