// Package mdintegrator implements Quarry's MD Schema Integrator: the
// semi-automatic consolidation of partial MD schemata into a unified
// constellation satisfying all requirements processed so far (§2.3,
// after [6]).
//
// Integration runs the paper's four stages:
//
//  1. matching facts — partial facts are matched to unified facts
//     through their ontology anchors (subject concepts);
//  2. matching dimensions — partial dimensions are matched through
//     their base-level concepts, yielding conformed dimensions;
//  3. complementing — matched elements are completed with the
//     levels, descriptors and roll-up edges the other side carries;
//  4. integration — matchings are applied (subject to the end-user
//     feedback hook), and the cost model picks between the merged
//     constellation and the side-by-side alternative.
//
// Every produced schema is re-validated against the MD integrity
// constraints (soundness).
package mdintegrator

import (
	"fmt"

	"quarry/internal/quality"
	"quarry/internal/xmd"
)

// Resolver is the end-user feedback hook of the integration stage: it
// approves or rejects proposed merges. The default AutoApprove
// accepts every sound merge, which is what the automated lifecycle
// uses; an interactive front-end can substitute real user decisions.
type Resolver interface {
	ApproveFactMerge(existing, incoming *xmd.Fact) bool
	ApproveDimensionMerge(existing, incoming *xmd.Dimension) bool
}

// AutoApprove accepts every proposed merge.
type AutoApprove struct{}

// ApproveFactMerge implements Resolver.
func (AutoApprove) ApproveFactMerge(_, _ *xmd.Fact) bool { return true }

// ApproveDimensionMerge implements Resolver.
func (AutoApprove) ApproveDimensionMerge(_, _ *xmd.Dimension) bool { return true }

// Decision records one integration action for the report.
type Decision struct {
	Kind   string // match-fact | match-dimension | new-fact | new-dimension | complement | conflict | cost-choice
	Detail string
}

// Report summarises one integration step.
type Report struct {
	MatchedFacts      [][2]string
	MatchedDimensions [][2]string
	Decisions         []Decision
	ComplexityBefore  float64
	ComplexityAfter   float64
	// ComplexityNaive is the side-by-side alternative's complexity
	// (what the cost model saved us from when merging won).
	ComplexityNaive float64
	MergedChosen    bool
}

func (r *Report) say(kind, format string, args ...any) {
	r.Decisions = append(r.Decisions, Decision{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Integrator consolidates partial MD schemata.
type Integrator struct {
	cost     quality.MDCostModel
	resolver Resolver
}

// New creates an integrator; nil arguments select the defaults
// (structural complexity, auto-approval).
func New(cost quality.MDCostModel, resolver Resolver) *Integrator {
	if cost == nil {
		cost = quality.DefaultMDCost()
	}
	if resolver == nil {
		resolver = AutoApprove{}
	}
	return &Integrator{cost: cost, resolver: resolver}
}

// Integrate consolidates the partial schema into the unified one and
// returns the new unified schema (inputs are not mutated). A nil
// unified schema starts a fresh design.
func (it *Integrator) Integrate(unified, partial *xmd.Schema) (*xmd.Schema, *Report, error) {
	if partial == nil {
		return nil, nil, fmt.Errorf("mdintegrator: nil partial schema")
	}
	if err := partial.Validate(); err != nil {
		return nil, nil, fmt.Errorf("mdintegrator: partial schema unsound: %w", err)
	}
	rep := &Report{}
	if unified == nil || (len(unified.Facts) == 0 && len(unified.Dimensions) == 0) {
		out := partial.Clone()
		out.Name = "unified"
		rep.ComplexityAfter = it.cost.Complexity(out)
		rep.ComplexityNaive = rep.ComplexityAfter
		rep.MergedChosen = true
		rep.say("new-fact", "initial design from %s", partial.Name)
		return out, rep, nil
	}
	if err := unified.Validate(); err != nil {
		return nil, nil, fmt.Errorf("mdintegrator: unified schema unsound: %w", err)
	}
	rep.ComplexityBefore = it.cost.Complexity(unified)

	merged, mergeOK := it.merge(unified, partial, rep)
	naive := sideBySide(unified, partial)
	if err := naive.Validate(); err != nil {
		return nil, nil, fmt.Errorf("mdintegrator: side-by-side integration unsound: %w", err)
	}
	rep.ComplexityNaive = it.cost.Complexity(naive)

	// Stage 4: cost-based choice between the merged constellation and
	// the side-by-side alternative.
	choice := naive
	rep.MergedChosen = false
	if mergeOK {
		if err := merged.Validate(); err == nil {
			mc := it.cost.Complexity(merged)
			if mc <= rep.ComplexityNaive {
				choice = merged
				rep.MergedChosen = true
				rep.say("cost-choice", "merged constellation wins: %.1f vs %.1f", mc, rep.ComplexityNaive)
			} else {
				rep.say("cost-choice", "side-by-side wins: %.1f vs %.1f", rep.ComplexityNaive, mc)
			}
		} else {
			rep.say("conflict", "merged constellation invalid (%v); falling back to side-by-side", err)
		}
	}
	rep.ComplexityAfter = it.cost.Complexity(choice)
	return choice, rep, nil
}

// merge builds the merged constellation (stages 1–3 + application).
// mergeOK is false when nothing could be matched (merged == naive).
func (it *Integrator) merge(unified, partial *xmd.Schema, rep *Report) (*xmd.Schema, bool) {
	out := unified.Clone()
	out.Name = "unified"
	anyMatch := false

	// ---- Stage 2 first at the data level: dimensions, because fact
	// uses reference them. Matching dimensions by name or base-level
	// concept.
	dimRename := map[string]string{} // partial dim name → unified dim name
	for _, pd := range partial.Dimensions {
		target := matchDimension(out, pd)
		if target != nil && it.resolver.ApproveDimensionMerge(target, pd) {
			rep.MatchedDimensions = append(rep.MatchedDimensions, [2]string{target.Name, pd.Name})
			rep.say("match-dimension", "%s ≈ %s (base concept %s)", target.Name, pd.Name, baseConcept(pd))
			if ok := complementDimension(target, pd, rep); !ok {
				// Roll-up conflict: keep both, rename the incoming.
				nn := uniqueDimName(out, pd.Name)
				cp := cloneDim(pd)
				cp.Name = nn
				out.Dimensions = append(out.Dimensions, cp)
				dimRename[pd.Name] = nn
				rep.say("conflict", "dimension %s: roll-up conflict; kept separately as %s", pd.Name, nn)
				continue
			}
			anyMatch = true
			dimRename[pd.Name] = target.Name
			continue
		}
		nn := uniqueDimName(out, pd.Name)
		cp := cloneDim(pd)
		cp.Name = nn
		out.Dimensions = append(out.Dimensions, cp)
		dimRename[pd.Name] = nn
		rep.say("new-dimension", "%s added%s", pd.Name, renamedSuffix(pd.Name, nn))
	}

	// ---- Stage 1+4: facts.
	for _, pf := range partial.Facts {
		target := matchFact(out, pf)
		if target != nil && it.resolver.ApproveFactMerge(target, pf) {
			rep.MatchedFacts = append(rep.MatchedFacts, [2]string{target.Name, pf.Name})
			rep.say("match-fact", "%s ≈ %s (concept %s)", target.Name, pf.Name, pf.Concept)
			complementFact(target, pf, dimRename, rep)
			anyMatch = true
			continue
		}
		nn := uniqueFactName(out, pf.Name)
		cp := cloneFact(pf)
		cp.Name = nn
		for i := range cp.Uses {
			if to, ok := dimRename[cp.Uses[i].Dimension]; ok {
				cp.Uses[i].Dimension = to
			}
		}
		out.Facts = append(out.Facts, cp)
		rep.say("new-fact", "%s added%s", pf.Name, renamedSuffix(pf.Name, nn))
	}
	return out, anyMatch
}

// matchFact finds a unified fact anchored at the same ontology
// concept (preferred) or carrying the same name.
func matchFact(s *xmd.Schema, pf *xmd.Fact) *xmd.Fact {
	for _, f := range s.Facts {
		if pf.Concept != "" && f.Concept == pf.Concept {
			return f
		}
	}
	for _, f := range s.Facts {
		if f.Name == pf.Name {
			return f
		}
	}
	return nil
}

// matchDimension finds a unified dimension with the same name or the
// same base-level concept.
func matchDimension(s *xmd.Schema, pd *xmd.Dimension) *xmd.Dimension {
	if d, ok := s.Dimension(pd.Name); ok {
		return d
	}
	pc := baseConcept(pd)
	if pc == "" {
		return nil
	}
	for _, d := range s.Dimensions {
		if baseConcept(d) == pc {
			return d
		}
	}
	return nil
}

func baseConcept(d *xmd.Dimension) string {
	bases := d.BaseLevels()
	if len(bases) == 0 {
		return ""
	}
	return bases[0].Concept
}

// complementDimension unions the incoming dimension's levels,
// descriptors and roll-ups into the target (stage 3). It reports
// false when the union would create a roll-up cycle.
func complementDimension(target, incoming *xmd.Dimension, rep *Report) bool {
	// Tentative copy to verify acyclicity before committing.
	trial := cloneDim(target)
	for _, il := range incoming.Levels {
		tl, ok := trial.Level(il.Name)
		if !ok {
			trial.Levels = append(trial.Levels, cloneLevel(il))
			continue
		}
		if tl.Concept != il.Concept && tl.Concept != "" && il.Concept != "" {
			// Same level name anchored at different concepts: keep the
			// existing anchor, report.
			rep.say("conflict", "level %s/%s anchored at %s vs %s; keeping %s",
				target.Name, tl.Name, tl.Concept, il.Concept, tl.Concept)
			continue
		}
		for _, desc := range il.Descriptors {
			if existing, ok := tl.Descriptor(desc.Name); ok {
				if existing.Type != desc.Type {
					rep.say("conflict", "descriptor %s.%s type %s vs %s; keeping %s",
						tl.Name, desc.Name, existing.Type, desc.Type, existing.Type)
				}
				continue
			}
			tl.Descriptors = append(tl.Descriptors, desc)
			rep.say("complement", "descriptor %s added to level %s/%s", desc.Name, target.Name, tl.Name)
		}
	}
	have := map[string]bool{}
	for _, r := range trial.Rollups {
		have[r.From+"→"+r.To] = true
	}
	for _, r := range incoming.Rollups {
		if !have[r.From+"→"+r.To] {
			trial.Rollups = append(trial.Rollups, r)
			have[r.From+"→"+r.To] = true
		}
	}
	// Acyclicity check through a scratch schema validation.
	probe := &xmd.Schema{
		Name:       "probe",
		Facts:      []*xmd.Fact{{Name: "p", Measures: []xmd.Measure{{Name: "m", Type: "int", Additivity: xmd.AdditivityFlow}}, Uses: []xmd.DimensionUse{{Dimension: trial.Name, Level: probeBase(trial)}}}},
		Dimensions: []*xmd.Dimension{trial},
	}
	if err := probe.Validate(); err != nil {
		return false
	}
	*target = *trial
	return true
}

func probeBase(d *xmd.Dimension) string {
	if bl := d.BaseLevels(); len(bl) > 0 {
		return bl[0].Name
	}
	if len(d.Levels) > 0 {
		return d.Levels[0].Name
	}
	return ""
}

// complementFact unions the incoming fact's measures and dimension
// usages into the target.
func complementFact(target, incoming *xmd.Fact, dimRename map[string]string, rep *Report) {
	for _, m := range incoming.Measures {
		if existing, ok := target.Measure(m.Name); ok {
			if existing.Formula != m.Formula {
				rep.say("conflict", "measure %s formula %q vs %q; keeping existing",
					m.Name, existing.Formula, m.Formula)
			}
			continue
		}
		target.Measures = append(target.Measures, m)
		rep.say("complement", "measure %s added to fact %s", m.Name, target.Name)
	}
	for _, u := range incoming.Uses {
		dim := u.Dimension
		if to, ok := dimRename[dim]; ok {
			dim = to
		}
		if !target.UsesDimension(dim) {
			target.Uses = append(target.Uses, xmd.DimensionUse{Dimension: dim, Level: u.Level})
			rep.say("complement", "fact %s now uses dimension %s", target.Name, dim)
		}
	}
}

// sideBySide produces the naive union: everything from the partial is
// added under fresh names, nothing is merged. This is the baseline
// the cost model compares against (and the ablation benchmark's
// "no cost model" mode).
func sideBySide(unified, partial *xmd.Schema) *xmd.Schema {
	out := unified.Clone()
	out.Name = "unified"
	rename := map[string]string{}
	for _, pd := range partial.Dimensions {
		nn := uniqueDimName(out, pd.Name)
		cp := cloneDim(pd)
		cp.Name = nn
		rename[pd.Name] = nn
		out.Dimensions = append(out.Dimensions, cp)
	}
	for _, pf := range partial.Facts {
		nn := uniqueFactName(out, pf.Name)
		cp := cloneFact(pf)
		cp.Name = nn
		for i := range cp.Uses {
			if to, ok := rename[cp.Uses[i].Dimension]; ok {
				cp.Uses[i].Dimension = to
			}
		}
		out.Facts = append(out.Facts, cp)
	}
	return out
}

// IntegrateNaive is the ablation entry point: side-by-side union with
// no matching and no cost-guided choice.
func (it *Integrator) IntegrateNaive(unified, partial *xmd.Schema) (*xmd.Schema, error) {
	if partial == nil {
		return nil, fmt.Errorf("mdintegrator: nil partial schema")
	}
	if unified == nil {
		out := partial.Clone()
		out.Name = "unified"
		return out, out.Validate()
	}
	out := sideBySide(unified, partial)
	return out, out.Validate()
}

func uniqueDimName(s *xmd.Schema, base string) string {
	if _, exists := s.Dimension(base); !exists {
		return base
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s__%d", base, i)
		if _, exists := s.Dimension(cand); !exists {
			return cand
		}
	}
}

func uniqueFactName(s *xmd.Schema, base string) string {
	if _, exists := s.Fact(base); !exists {
		return base
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s__%d", base, i)
		if _, exists := s.Fact(cand); !exists {
			return cand
		}
	}
}

func renamedSuffix(from, to string) string {
	if from == to {
		return ""
	}
	return fmt.Sprintf(" (renamed to %s)", to)
}

func cloneDim(d *xmd.Dimension) *xmd.Dimension {
	cp := &xmd.Dimension{Name: d.Name, Temporal: d.Temporal}
	for _, l := range d.Levels {
		cp.Levels = append(cp.Levels, cloneLevel(l))
	}
	cp.Rollups = append([]xmd.Rollup(nil), d.Rollups...)
	return cp
}

func cloneLevel(l *xmd.Level) *xmd.Level {
	cp := &xmd.Level{Name: l.Name, Concept: l.Concept, Key: l.Key}
	cp.Descriptors = append([]xmd.Descriptor(nil), l.Descriptors...)
	return cp
}

func cloneFact(f *xmd.Fact) *xmd.Fact {
	cp := &xmd.Fact{Name: f.Name, Concept: f.Concept}
	cp.Measures = append([]xmd.Measure(nil), f.Measures...)
	cp.Uses = append([]xmd.DimensionUse(nil), f.Uses...)
	return cp
}
