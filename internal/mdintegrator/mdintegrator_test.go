package mdintegrator

import (
	"strings"
	"testing"

	"quarry/internal/interpreter"
	"quarry/internal/quality"
	"quarry/internal/tpch"
	"quarry/internal/xmd"
)

// partials interprets the canonical TPC-H requirements into partial
// MD schemata.
func partials(t *testing.T) []*xmd.Schema {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := interpreter.New(o, m, c)
	if err != nil {
		t.Fatal(err)
	}
	var out []*xmd.Schema
	for _, r := range tpch.CanonicalRequirements() {
		pd, err := in.Interpret(r)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, pd.MD)
	}
	return out
}

func TestIntegrateFirstPartial(t *testing.T) {
	it := New(nil, nil)
	ps := partials(t)
	unified, rep, err := it.Integrate(nil, ps[0])
	if err != nil {
		t.Fatal(err)
	}
	if unified.Name != "unified" {
		t.Errorf("name = %q", unified.Name)
	}
	if !rep.MergedChosen {
		t.Error("initial design should count as merged")
	}
	if err := unified.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFigure3Integration reproduces the paper's Figure 3: revenue and
// net-profit partial designs integrate into one constellation with
// conformed Part and Supplier dimensions.
func TestFigure3Integration(t *testing.T) {
	it := New(nil, nil)
	ps := partials(t)
	unified, _, err := it.Integrate(nil, ps[0]) // revenue
	if err != nil {
		t.Fatal(err)
	}
	unified, rep, err := it.Integrate(unified, ps[1]) // netprofit
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MergedChosen {
		t.Fatal("merged constellation should win on structural complexity")
	}
	if len(unified.Facts) != 2 {
		t.Fatalf("facts = %d, want 2 (revenue + netprofit)", len(unified.Facts))
	}
	if _, ok := unified.Fact("fact_table_revenue"); !ok {
		t.Error("fact_table_revenue missing")
	}
	if _, ok := unified.Fact("fact_table_netprofit"); !ok {
		t.Error("fact_table_netprofit missing")
	}
	// Conformed dimensions: Part and Supplier shared by both facts.
	shared := unified.SharedDimensions()
	if strings.Join(shared, ",") != "Part,Supplier" {
		t.Errorf("shared dimensions = %v", shared)
	}
	// Exactly one Part and one Supplier dimension (no duplicates).
	if len(unified.Dimensions) != 2 {
		t.Errorf("dimensions = %d, want 2 conformed", len(unified.Dimensions))
	}
	if len(rep.MatchedDimensions) != 2 {
		t.Errorf("matched dimensions = %v", rep.MatchedDimensions)
	}
	// Cost model: merged beats naive.
	if rep.ComplexityAfter >= rep.ComplexityNaive {
		t.Errorf("complexity after %v >= naive %v", rep.ComplexityAfter, rep.ComplexityNaive)
	}
}

func TestIncrementalIntegrationAllCanonical(t *testing.T) {
	it := New(nil, nil)
	var unified *xmd.Schema
	var err error
	for _, p := range partials(t) {
		unified, _, err = it.Integrate(unified, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := unified.Validate(); err != nil {
			t.Fatalf("unified unsound after %s: %v", p.Name, err)
		}
	}
	// All four requirements must remain satisfied.
	for _, r := range tpch.CanonicalRequirements() {
		if err := interpreter.Satisfies(unified, r); err != nil {
			t.Errorf("requirement %s no longer satisfied: %v", r.ID, err)
		}
	}
}

func TestMatchingFactsMergesMeasures(t *testing.T) {
	it := New(nil, nil)
	mk := func(measure string) *xmd.Schema {
		return &xmd.Schema{
			Name: "p",
			Facts: []*xmd.Fact{{
				Name: "fact_" + measure, Concept: "Lineitem",
				Measures: []xmd.Measure{{Name: measure, Type: "float", Additivity: xmd.AdditivityFlow}},
				Uses:     []xmd.DimensionUse{{Dimension: "Part", Level: "Part"}},
			}},
			Dimensions: []*xmd.Dimension{{
				Name:   "Part",
				Levels: []*xmd.Level{{Name: "Part", Concept: "Part", Key: "p_name", Descriptors: []xmd.Descriptor{{Name: "p_name", Type: "string", Attr: "Part.p_name"}}}},
			}},
		}
	}
	u, _, err := it.Integrate(nil, mk("revenue"))
	if err != nil {
		t.Fatal(err)
	}
	u, rep, err := it.Integrate(u, mk("quantity"))
	if err != nil {
		t.Fatal(err)
	}
	// Same concept → facts merged, measures unioned.
	if len(u.Facts) != 1 {
		t.Fatalf("facts = %d, want 1 merged", len(u.Facts))
	}
	if len(u.Facts[0].Measures) != 2 {
		t.Errorf("measures = %d, want 2", len(u.Facts[0].Measures))
	}
	if len(rep.MatchedFacts) != 1 {
		t.Errorf("matched facts = %v", rep.MatchedFacts)
	}
}

func TestMeasureFormulaConflictReported(t *testing.T) {
	it := New(nil, nil)
	mk := func(formula string) *xmd.Schema {
		return &xmd.Schema{
			Name: "p",
			Facts: []*xmd.Fact{{
				Name: "f", Concept: "Lineitem",
				Measures: []xmd.Measure{{Name: "revenue", Type: "float", Formula: formula, Additivity: xmd.AdditivityFlow}},
				Uses:     []xmd.DimensionUse{{Dimension: "D", Level: "L"}},
			}},
			Dimensions: []*xmd.Dimension{{Name: "D", Levels: []*xmd.Level{{Name: "L"}}}},
		}
	}
	u, _, err := it.Integrate(nil, mk("a * b"))
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := it.Integrate(u, mk("a + b"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Decisions {
		if d.Kind == "conflict" && strings.Contains(d.Detail, "revenue") {
			found = true
		}
	}
	if !found {
		t.Errorf("formula conflict not reported: %+v", rep.Decisions)
	}
}

func TestRollupCycleFallsBackToSeparateDimension(t *testing.T) {
	it := New(nil, nil)
	mk := func(from, to string) *xmd.Schema {
		return &xmd.Schema{
			Name: "p",
			Facts: []*xmd.Fact{{
				Name: "f_" + from, Concept: "C" + from,
				Measures: []xmd.Measure{{Name: "m", Type: "int", Additivity: xmd.AdditivityFlow}},
				Uses:     []xmd.DimensionUse{{Dimension: "D", Level: from}},
			}},
			Dimensions: []*xmd.Dimension{{
				Name:    "D",
				Levels:  []*xmd.Level{{Name: "A", Concept: "A"}, {Name: "B", Concept: "B"}},
				Rollups: []xmd.Rollup{{From: from, To: to}},
			}},
		}
	}
	u, _, err := it.Integrate(nil, mk("A", "B"))
	if err != nil {
		t.Fatal(err)
	}
	// Reversed roll-up would create A→B→A.
	u2, rep, err := it.Integrate(u, mk("B", "A"))
	if err != nil {
		t.Fatal(err)
	}
	if err := u2.Validate(); err != nil {
		t.Fatalf("integrated schema unsound: %v", err)
	}
	conflict := false
	for _, d := range rep.Decisions {
		if d.Kind == "conflict" && strings.Contains(d.Detail, "roll-up") {
			conflict = true
		}
	}
	if !conflict && len(u2.Dimensions) < 2 {
		t.Errorf("cycle neither reported nor kept separate: dims=%d decisions=%+v", len(u2.Dimensions), rep.Decisions)
	}
}

type vetoResolver struct{}

func (vetoResolver) ApproveFactMerge(_, _ *xmd.Fact) bool           { return false }
func (vetoResolver) ApproveDimensionMerge(_, _ *xmd.Dimension) bool { return false }

func TestResolverVetoKeepsDesignsSeparate(t *testing.T) {
	it := New(nil, vetoResolver{})
	ps := partials(t)
	u, _, err := it.Integrate(nil, ps[0])
	if err != nil {
		t.Fatal(err)
	}
	u2, rep, err := it.Integrate(u, ps[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MatchedDimensions) != 0 || len(rep.MatchedFacts) != 0 {
		t.Error("vetoed merges still matched")
	}
	// Side-by-side: dimensions duplicated under fresh names.
	if len(u2.Dimensions) != len(u.Dimensions)+len(ps[1].Dimensions) {
		t.Errorf("dimensions = %d", len(u2.Dimensions))
	}
	if err := u2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrateNaiveAblation(t *testing.T) {
	it := New(nil, nil)
	ps := partials(t)
	merged, _, err := it.Integrate(nil, ps[0])
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err = it.Integrate(merged, ps[1])
	if err != nil {
		t.Fatal(err)
	}
	naive, err := it.IntegrateNaive(nil, ps[0])
	if err != nil {
		t.Fatal(err)
	}
	naive, err = it.IntegrateNaive(naive, ps[1])
	if err != nil {
		t.Fatal(err)
	}
	cost := quality.DefaultMDCost()
	if cost.Complexity(merged) >= cost.Complexity(naive) {
		t.Errorf("cost-guided integration (%v) not simpler than naive (%v)",
			cost.Complexity(merged), cost.Complexity(naive))
	}
}

func TestIntegrateRejectsUnsoundPartial(t *testing.T) {
	it := New(nil, nil)
	bad := &xmd.Schema{Name: "bad", Facts: []*xmd.Fact{{Name: "f"}}} // no measures
	if _, _, err := it.Integrate(nil, bad); err == nil {
		t.Error("unsound partial accepted")
	}
	if _, _, err := it.Integrate(nil, nil); err == nil {
		t.Error("nil partial accepted")
	}
}

func TestIdempotentIntegration(t *testing.T) {
	it := New(nil, nil)
	ps := partials(t)
	u1, _, err := it.Integrate(nil, ps[0])
	if err != nil {
		t.Fatal(err)
	}
	u2, _, err := it.Integrate(u1, ps[0])
	if err != nil {
		t.Fatal(err)
	}
	// Integrating the same partial twice must not grow the design.
	if u2.Stats() != u1.Stats() {
		t.Errorf("re-integration changed the design: %+v vs %+v", u1.Stats(), u2.Stats())
	}
}
