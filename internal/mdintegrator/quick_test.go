package mdintegrator

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quarry/internal/quality"
	"quarry/internal/xmd"
)

// genStar builds a random single-fact star drawing names from small
// pools, so random pairs share facts/dimensions often enough to
// exercise matching.
func genStar(r *rand.Rand) *xmd.Schema {
	concepts := []string{"Sale", "Stock", "Shipment"}
	dims := []string{"Product", "Store", "Time", "Customer"}
	measures := []string{"amount", "units", "cost"}

	fc := concepts[r.Intn(len(concepts))]
	s := &xmd.Schema{Name: "p"}
	f := &xmd.Fact{Name: "fact_" + fc, Concept: fc}
	seenM := map[string]bool{}
	for i := 0; i <= r.Intn(3); i++ {
		m := measures[r.Intn(len(measures))]
		if seenM[m] {
			continue
		}
		seenM[m] = true
		f.Measures = append(f.Measures, xmd.Measure{
			Name: m, Type: "float", Additivity: xmd.AdditivityFlow,
			Formula: fc + "." + m,
		})
	}
	if len(f.Measures) == 0 {
		f.Measures = append(f.Measures, xmd.Measure{Name: "amount", Type: "float", Additivity: xmd.AdditivityFlow})
	}
	seenD := map[string]bool{}
	for i := 0; i <= r.Intn(3); i++ {
		dn := dims[r.Intn(len(dims))]
		if seenD[dn] {
			continue
		}
		seenD[dn] = true
		d := &xmd.Dimension{Name: dn, Temporal: dn == "Time"}
		d.Levels = append(d.Levels, &xmd.Level{
			Name: dn, Concept: dn,
			Descriptors: []xmd.Descriptor{{Name: "name", Type: "string", Attr: dn + ".name"}},
		})
		if r.Intn(2) == 0 {
			up := dn + "Group"
			d.Levels = append(d.Levels, &xmd.Level{Name: up, Concept: up,
				Descriptors: []xmd.Descriptor{{Name: "group_name", Type: "string", Attr: up + ".name"}}})
			d.Rollups = append(d.Rollups, xmd.Rollup{From: dn, To: up})
		}
		s.Dimensions = append(s.Dimensions, d)
		f.Uses = append(f.Uses, xmd.DimensionUse{Dimension: dn, Level: dn})
	}
	if len(f.Uses) == 0 {
		s.Dimensions = append(s.Dimensions, &xmd.Dimension{Name: "Product",
			Levels: []*xmd.Level{{Name: "Product", Concept: "Product"}}})
		f.Uses = append(f.Uses, xmd.DimensionUse{Dimension: "Product", Level: "Product"})
	}
	s.Facts = []*xmd.Fact{f}
	return s
}

// Property: every integration result is sound (passes MD integrity
// validation) and inputs are never mutated.
func TestQuickIntegrationAlwaysSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		it := New(nil, nil)
		var u *xmd.Schema
		for i := 0; i < 1+r.Intn(5); i++ {
			p := genStar(r)
			if err := p.Validate(); err != nil {
				t.Logf("seed %d: generator produced invalid star: %v", seed, err)
				return false
			}
			before, err := snapshot(p)
			if err != nil {
				return false
			}
			u2, _, err := it.Integrate(u, p)
			if err != nil {
				t.Logf("seed %d: integrate: %v", seed, err)
				return false
			}
			if err := u2.Validate(); err != nil {
				t.Logf("seed %d: result unsound: %v", seed, err)
				return false
			}
			after, err := snapshot(p)
			if err != nil || before != after {
				t.Logf("seed %d: partial mutated", seed)
				return false
			}
			u = u2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func snapshot(s *xmd.Schema) (string, error) {
	text, err := xmd.Marshal(s)
	if err != nil {
		return "", err
	}
	return text, nil
}

// Property: integration is idempotent — integrating the same partial
// twice does not change the stats.
func TestQuickIntegrationIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		it := New(nil, nil)
		p := genStar(r)
		u1, _, err := it.Integrate(nil, p)
		if err != nil {
			return false
		}
		u2, _, err := it.Integrate(u1, p)
		if err != nil {
			return false
		}
		return u1.Stats() == u2.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cost-guided result is never more complex than the
// naive side-by-side union.
func TestQuickCostGuidedNeverWorseThanNaive(t *testing.T) {
	cost := quality.DefaultMDCost()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		guided := New(cost, nil)
		n := 2 + r.Intn(4)
		partials := make([]*xmd.Schema, n)
		for i := range partials {
			partials[i] = genStar(r)
		}
		var ug, un *xmd.Schema
		var err error
		for _, p := range partials {
			ug, _, err = guided.Integrate(ug, p)
			if err != nil {
				return false
			}
			un, err = guided.IntegrateNaive(un, p)
			if err != nil {
				return false
			}
		}
		return cost.Complexity(ug) <= cost.Complexity(un)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: all facts and measures of every integrated partial remain
// present in the unified schema (no information loss).
func TestQuickNoMeasureLoss(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		it := New(nil, nil)
		var u *xmd.Schema
		var wantMeasures []string
		for i := 0; i < 1+r.Intn(4); i++ {
			p := genStar(r)
			for _, fct := range p.Facts {
				for _, m := range fct.Measures {
					wantMeasures = append(wantMeasures, m.Name)
				}
			}
			var err error
			u, _, err = it.Integrate(u, p)
			if err != nil {
				return false
			}
		}
		for _, m := range wantMeasures {
			found := false
			for _, fct := range u.Facts {
				if _, ok := fct.Measure(m); ok {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
