package olap

// Internal unit tests for the benefit-aware admission model: ranking,
// the top-K slot cap, and byte-budget eviction order — on fabricated
// entries, so the policy is pinned independently of the engine. The
// end-to-end behaviour (a covering aggregate that frequency-only
// admission would evict being served byte-identically) is proved in
// matagg_benefit_test.go.

import (
	"testing"

	"quarry/internal/expr"
)

// entry fabricates a built candidate with the fields admission reads.
func entry(key string, rows int, bytes int64, benefit float64) *matEntry {
	return &matEntry{
		pat:     &aggPattern{key: key},
		rows:    rows,
		bytes:   bytes,
		benefit: benefit,
	}
}

func keysOf(entries []*matEntry) []string {
	out := make([]string, len(entries))
	for i, en := range entries {
		out[i] = en.pat.key
	}
	return out
}

func assertKeys(t *testing.T, got []*matEntry, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("admitted %v, want %v", keysOf(got), want)
	}
	for i, k := range want {
		if got[i].pat.key != k {
			t.Fatalf("admitted %v, want %v", keysOf(got), want)
		}
	}
}

// TestAdmitByBenefitNotFrequency: with no budget, ranking is pure
// benefit — a high-fan-in aggregate outranks a hotter one whose
// fan-in is near 1, which is exactly the case raw frequency ranking
// gets wrong (the benefit values here encode weight×fanIn: the "hot"
// entry had weight 10 but fan-in 1.2, the "cool" one weight 2 but
// fan-in 500).
func TestAdmitByBenefitNotFrequency(t *testing.T) {
	hot := entry("hot-low-benefit", 5000, 500_000, 10*1.2)
	cool := entry("cool-high-fanin", 12, 1_200, 2*500)
	keep := admitEntries([]*matEntry{hot, cool}, 1, 0)
	assertKeys(t, keep, "cool-high-fanin")
}

// TestAdmitTopKCap: the slot cap binds even when everything would fit
// a budget; the best K by benefit survive.
func TestAdmitTopKCap(t *testing.T) {
	cands := []*matEntry{
		entry("a", 10, 100, 1),
		entry("b", 10, 100, 3),
		entry("c", 10, 100, 2),
	}
	keep := admitEntries(cands, 2, 0)
	assertKeys(t, keep, "b", "c")
}

// TestAdmitBudgetEvictionOrder: under a budget the ranking switches
// to benefit per byte, and entries are evicted lowest-density first
// until the rest fit.
func TestAdmitBudgetEvictionOrder(t *testing.T) {
	// densities: a=0.10, b=0.05, c=0.02 — budget fits a+b only.
	a := entry("a", 10, 1000, 100)
	b := entry("b", 10, 2000, 100)
	c := entry("c", 10, 5000, 100)
	keep := admitEntries([]*matEntry{c, b, a}, 8, 3000)
	assertKeys(t, keep, "a", "b")
}

// TestAdmitBudgetSkipsOversized: a candidate too large for the
// remaining budget is skipped, not terminal — a smaller, lower-ranked
// aggregate that still fits is admitted (greedy knapsack).
func TestAdmitBudgetSkipsOversized(t *testing.T) {
	big := entry("big", 100, 900, 9000)   // density 10, hogs the budget
	huge := entry("huge", 100, 800, 4000) // density 5, does NOT fit after big
	small := entry("small", 10, 100, 100) // density 1, fits in the remainder
	keep := admitEntries([]*matEntry{big, huge, small}, 8, 1000)
	assertKeys(t, keep, "big", "small")
}

// TestAdmitDeterministicTieBreak: equal ranks resolve by pattern key,
// so repeated refreshes over an unchanged log install the same set.
func TestAdmitDeterministicTieBreak(t *testing.T) {
	x := entry("x", 10, 100, 5)
	y := entry("y", 10, 100, 5)
	keep := admitEntries([]*matEntry{y, x}, 1, 0)
	assertKeys(t, keep, "x")
}

// TestEstimateBytesCharging: rows are charged per value plus string
// content, so a wide string row costs more than a numeric one — the
// property benefit-per-byte ranking relies on.
func TestEstimateBytesCharging(t *testing.T) {
	numeric := [][]expr.Value{{expr.Int(1), expr.Float(2)}}
	stringy := [][]expr.Value{{expr.Str("a-rather-long-group-key"), expr.Float(2)}}
	n, s := estimateBytes(numeric), estimateBytes(stringy)
	if n <= 0 || s <= n {
		t.Fatalf("estimateBytes: numeric=%d stringy=%d, want 0 < numeric < stringy", n, s)
	}
	if got := estimateBytes(nil); got != 0 {
		t.Fatalf("estimateBytes(nil) = %d, want 0", got)
	}
}
