package olap_test

import (
	"context"
	"errors"
	"testing"

	"quarry/internal/olap"
	"quarry/internal/tpch"
)

// TestQueryContextCancelled: a cancelled context aborts both
// executors instead of running the query to completion — the serving
// layer relies on this to stop burning a pool slot when the client
// has disconnected.
func TestQueryContextCancelled(t *testing.T) {
	p, _ := platformWith(t, 1, 42, tpch.RevenueRequirement())
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	q := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"n_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("fast path under cancelled context = %v, want context.Canceled", err)
	}
	if _, err := e.QueryStarFlowContext(ctx, q); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("star-flow oracle under cancelled context = %v, want context.Canceled", err)
	}
	// Sanity: the same query still answers under a live context.
	if _, err := e.QueryContext(context.Background(), q); err != nil {
		t.Fatalf("query under background context: %v", err)
	}
	if _, err := e.QueryStarFlowContext(context.Background(), q); err != nil {
		t.Fatalf("oracle under background context: %v", err)
	}
}

// TestMatAggUnservablePatternRejectedAtAdmission pins the admission
// gate: a pattern widened by filter identifiers whose measures cannot
// be re-aggregated exactly (float SUM) can never answer the query
// that logged it, so it must not burn a top-K materialization slot —
// and the freed slot must go to a servable pattern instead, even a
// much colder one.
func TestMatAggUnservablePatternRejectedAtAdmission(t *testing.T) {
	p, _ := platformWith(t, 3, 42, tpch.RevenueRequirement())
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	m := olap.NewMatAgg(1) // a single slot: admission decides everything
	e = e.WithMatAgg(m)

	// Unservable: the filter identifier (n_name) widens the pattern
	// beyond the query's group-by, so the entry could only serve its
	// generating query by re-aggregation — which float SUM forbids.
	unservable := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"p_brand"},
		Filter:   "n_name = 'SPAIN'",
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
	}
	// Servable: exact granularity, no widening — a projection answer.
	servable := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"n_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
	}
	// Make the unservable pattern by far the hottest.
	for i := 0; i < 8; i++ {
		if _, err := e.Query(unservable); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Query(servable); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refresh(e); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.UnservableRejected == 0 {
		t.Fatalf("unservable pattern was admitted to the log: %+v", st)
	}
	if st.Materialized == 0 {
		t.Fatalf("nothing materialized — the freed slot went unused: %+v", st)
	}

	// The single slot must hold the SERVABLE pattern: repeating its
	// query is an aggregate hit, byte-identical to the oracle.
	before := m.Stats()
	fast, err := e.Query(servable)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.QueryStarFlow(servable)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "servable pattern in freed slot", fast, oracle)
	if after := m.Stats(); after.Hits != before.Hits+1 {
		t.Fatalf("servable pattern did not take the freed slot: hits %d → %d (stats %+v)",
			before.Hits, after.Hits, after)
	}

	// And the unservable query keeps its correct base-path answer.
	fast, err = e.Query(unservable)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err = e.QueryStarFlow(unservable)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "unservable query on base path", fast, oracle)
}
