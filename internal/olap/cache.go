package olap

import (
	"container/list"
	"sync"
)

// ResultCache is a concurrency-safe LRU cache for query results,
// used by the serving layer. Keys must embed everything that
// determines the answer — canonically the serialized query plus the
// warehouse's storage.DB.Version() (or Snapshot.Version()) — so a
// reload of the warehouse naturally misses; callers additionally
// Purge on load to stop stale versions from occupying space.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses int64
}

type cacheEntry struct {
	key string
	res *Result
}

// NewResultCache builds a cache holding up to capacity results;
// capacity <= 0 disables caching (Get always misses, Put drops).
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{
		cap:     capacity,
		entries: map[string]*list.Element{},
		order:   list.New(),
	}
}

// Get returns the cached result for key, if any. The caller must not
// mutate the returned result.
func (c *ResultCache) Get(key string) (*Result, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).res, true
}

// Put stores a result under key, evicting the least recently used
// entry when full.
func (c *ResultCache) Put(key string, res *Result) {
	if c == nil || c.cap <= 0 || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
}

// Purge drops every entry (called when the warehouse is reloaded).
func (c *ResultCache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.order.Init()
}

// Len reports the number of cached results.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports cumulative hit/miss counts.
func (c *ResultCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
