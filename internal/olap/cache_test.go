package olap_test

import (
	"fmt"
	"testing"

	"quarry/internal/olap"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := olap.NewResultCache(2)
	r := func(n int) *olap.Result { return &olap.Result{Columns: []string{fmt.Sprint(n)}} }
	c.Put("a", r(1))
	c.Put("b", r(2))
	if _, ok := c.Get("a"); !ok { // refresh a → b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", r(3)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite refresh")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived purge")
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := olap.NewResultCache(capacity)
		c.Put("k", &olap.Result{})
		if _, ok := c.Get("k"); ok {
			t.Fatalf("capacity %d cached a result", capacity)
		}
	}
	// A nil cache is inert, not a crash.
	var nilCache *olap.ResultCache
	nilCache.Put("k", &olap.Result{})
	nilCache.Purge()
	if _, ok := nilCache.Get("k"); ok {
		t.Fatal("nil cache returned a result")
	}
	if nilCache.Len() != 0 {
		t.Fatal("nil cache has length")
	}
}
