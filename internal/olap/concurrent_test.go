package olap_test

import (
	"sync"
	"testing"

	"quarry/internal/olap"
)

// TestConcurrentQueriesIndependent is the regression test for the
// pre-PR-2 hazard: both executors used to materialise their answer as
// a table in the shared warehouse DB, so two simultaneous queries on
// the same fact clobbered each other's results. Now many simultaneous
// queries — on both paths — must return correct, independent answers
// and leave the warehouse untouched.
func TestConcurrentQueriesIndependent(t *testing.T) {
	p, db := deployedPlatform(t)
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	qa := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"n_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
	}
	qb := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"p_brand"},
		Measures: []olap.MeasureSpec{{Out: "avg_rev", Func: "AVG", Col: "revenue"}, {Out: "n", Func: "COUNT", Col: ""}},
	}
	wantA, err := e.Query(qa)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := e.Query(qb)
	if err != nil {
		t.Fatal(err)
	}
	tablesBefore := db.TableNames()
	versionBefore := db.Version()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*4)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q, want := qa, wantA
				if (w+i)%2 == 1 {
					q, want = qb, wantB
				}
				var got *olap.Result
				var err error
				if i%2 == 0 {
					got, err = e.Query(q)
				} else {
					got, err = e.QueryStarFlow(q)
				}
				if err != nil {
					errs <- err
					return
				}
				g, wnt := encodeResult(got), encodeResult(want)
				if len(g) != len(wnt) {
					errs <- errMismatch(q)
					return
				}
				for j := range g {
					if g[j] != wnt[j] {
						errs <- errMismatch(q)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The warehouse is untouched: no scratch tables, no version bump.
	tablesAfter := db.TableNames()
	if len(tablesAfter) != len(tablesBefore) {
		t.Fatalf("queries changed the warehouse: %v -> %v", tablesBefore, tablesAfter)
	}
	for i := range tablesAfter {
		if tablesAfter[i] != tablesBefore[i] {
			t.Fatalf("queries changed the warehouse: %v -> %v", tablesBefore, tablesAfter)
		}
	}
	if got := db.Version(); got != versionBefore {
		t.Fatalf("queries bumped the warehouse version %d -> %d", versionBefore, got)
	}
}

type queryMismatch struct{ q olap.CubeQuery }

func errMismatch(q olap.CubeQuery) error { return queryMismatch{q} }
func (e queryMismatch) Error() string {
	return "concurrent query returned a result differing from its serial answer: " + queryString(e.q)
}

// TestQueriesSeeStableSnapshotDuringReload runs fast-path queries
// while the platform's ETL reloads the warehouse in a loop. Data
// generation is deterministic, so every response must equal the
// canonical answer: observing a half-loaded fact or dimension table
// (a torn snapshot) would change the aggregate.
func TestQueriesSeeStableSnapshotDuringReload(t *testing.T) {
	p, _ := deployedPlatform(t)
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	q := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"n_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}, {Out: "n", Func: "COUNT", Col: ""}},
	}
	want, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc := encodeResult(want)

	stop := make(chan struct{})
	loadErr := make(chan error, 1)
	go func() {
		defer close(loadErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := p.Run(); err != nil {
				loadErr <- err
				return
			}
		}
	}()
	defer func() {
		close(stop)
		if err, ok := <-loadErr; ok && err != nil {
			t.Fatal(err)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				got, err := e.Query(q)
				if err != nil {
					errs <- err
					return
				}
				g := encodeResult(got)
				if len(g) != len(wantEnc) {
					errs <- errMismatch(q)
					return
				}
				for j := range g {
					if g[j] != wantEnc[j] {
						errs <- errMismatch(q)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
