package olap

import (
	"fmt"
	"math"
	"strconv"

	"quarry/internal/expr"
)

// Diamond dicing (Webb, Kaser, Lemire: "Diamond Dicing"; and "Pruning
// Attribute Values From Data Cubes with Diamond Dicing"): given
// per-dimension carat thresholds k_d, the diamond is the maximal
// subcube in which every remaining attribute value of every diced
// dimension has carat (COUNT of rows, or SUM of a non-negative
// measure) at least k_d. It is computed by iteratively pruning
// attribute values whose carat falls below threshold until a
// fixpoint: with a monotone carat (pruning rows can only lower other
// values' carats) the fixpoint is unique and independent of pruning
// order, which is why the two implementations below — a vectorized
// worklist algorithm for the fast path and a naive recompute loop for
// the oracle — agree row-for-row.
//
// Both implementations preserve the input row order of the surviving
// rows, so downstream aggregation folds measures in the same order.

// caratKey encodes a value as an exact map key (hex float bits keep
// distinct floats distinct even when their decimal rendering
// collides).
func caratKey(v expr.Value) string {
	switch v.Kind() {
	case expr.KindNull:
		return "n"
	case expr.KindInt:
		return "i" + strconv.FormatInt(v.AsInt(), 10)
	case expr.KindFloat:
		f, _ := v.AsFloat()
		return "f" + strconv.FormatUint(math.Float64bits(f), 16)
	case expr.KindBool:
		if v.AsBool() {
			return "bt"
		}
		return "bf"
	default:
		return "s" + v.AsString()
	}
}

// caratOf returns a row's contribution to its values' carats.
func caratOf(row []expr.Value, d *dicePlan) (float64, error) {
	if d.caratIdx == -1 {
		return 1, nil
	}
	v := row[d.caratIdx]
	if v.IsNull() {
		return 0, nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return 0, fmt.Errorf("olap: dice SUM carat over non-numeric value %s", v)
	}
	if f < 0 {
		return 0, fmt.Errorf("olap: dice SUM carat requires non-negative values, got %s", v)
	}
	return f, nil
}

// sliceState tracks one attribute value of one diced dimension in the
// worklist algorithm.
type sliceState struct {
	rows   []int // indexes (global row order) of rows carrying the value
	dead   bool
	queued bool
}

// diceFast computes the diamond with a dirty-revalidation worklist:
// only attribute values that lost rows since their last check are
// re-examined, and each check recomputes the carat over the value's
// surviving rows in global row order — the exact floating-point
// summation diceReference performs for the same subset, so the two
// implementations never diverge by accumulated subtraction drift.
// (In exact arithmetic the diamond fixpoint is unique regardless of
// pruning order; carats here are independent row-order subset sums,
// never running differences, which keeps the FP behaviour matched to
// the reference.)
func diceFast(rows [][]expr.Value, d *dicePlan) ([][]expr.Value, error) {
	nd := len(d.colIdx)
	states := make([]map[string]*sliceState, nd)
	for i := range states {
		states[i] = map[string]*sliceState{}
	}
	carats := make([]float64, len(rows))
	keys := make([][]string, len(rows))
	for r, row := range rows {
		c, err := caratOf(row, d)
		if err != nil {
			return nil, err
		}
		carats[r] = c
		ks := make([]string, nd)
		for i, ci := range d.colIdx {
			k := caratKey(row[ci])
			ks[i] = k
			st := states[i][k]
			if st == nil {
				st = &sliceState{}
				states[i][k] = st
			}
			st.rows = append(st.rows, r)
		}
		keys[r] = ks
	}
	alive := make([]bool, len(rows))
	for i := range alive {
		alive[i] = true
	}
	type ref struct {
		dim int
		key string
	}
	// Every value starts dirty; values re-enter the queue when they
	// lose rows.
	var queue []ref
	for i, m := range states {
		for k, st := range m {
			st.queued = true
			queue = append(queue, ref{i, k})
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		st := states[cur.dim][cur.key]
		st.queued = false
		if st.dead {
			continue
		}
		// Recompute the carat over surviving rows, in row order.
		var carat float64
		for _, r := range st.rows {
			if alive[r] {
				carat += carats[r]
			}
		}
		if carat >= d.thresholds[cur.dim] {
			continue
		}
		st.dead = true
		for _, r := range st.rows {
			if !alive[r] {
				continue
			}
			alive[r] = false
			for i, k := range keys[r] {
				other := states[i][k]
				if other.dead || other.queued {
					continue
				}
				other.queued = true
				queue = append(queue, ref{i, k})
			}
		}
	}
	var out [][]expr.Value
	for r, row := range rows {
		if alive[r] {
			out = append(out, row)
		}
	}
	return out, nil
}

// diceReference computes the same diamond with the textbook fixpoint
// loop: recompute every value's carat from scratch each pass, drop
// below-threshold values, repeat until a pass removes nothing. It is
// the independent implementation the fast algorithm is verified
// against.
func diceReference(rows [][]expr.Value, d *dicePlan) ([][]expr.Value, error) {
	cur := rows
	for {
		removed := false
		for i, ci := range d.colIdx {
			carat := map[string]float64{}
			for _, row := range cur {
				c, err := caratOf(row, d)
				if err != nil {
					return nil, err
				}
				carat[caratKey(row[ci])] += c
			}
			var kept [][]expr.Value
			for _, row := range cur {
				if carat[caratKey(row[ci])] >= d.thresholds[i] {
					kept = append(kept, row)
				}
			}
			if len(kept) != len(cur) {
				removed = true
				cur = kept
			}
		}
		if !removed {
			return cur, nil
		}
	}
}
