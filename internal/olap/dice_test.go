package olap_test

import (
	"strings"
	"testing"

	"quarry/internal/core"
	"quarry/internal/expr"
	"quarry/internal/olap"
	"quarry/internal/sources"
	"quarry/internal/storage"
	"quarry/internal/xrq"

	"quarry/internal/mapping"
	"quarry/internal/ontology"
)

// diceFixture builds a tiny two-dimension warehouse with hand-picked
// data so the diamond fixpoint can be verified by hand. The cube is
//
//	sales(store, item): one detail row per (store, item) pair below,
//	each with amount 1 (COUNT carats == row counts).
//
//	        i1  i2  i3
//	   s1    x   x   x
//	   s2    x   x
//	   s3    x
//
// With thresholds store>=2 and item>=2: s3 dies (1 row), which drops
// i1 to 2... i3 dies (1 row), which drops s1 to 2. Fixpoint: rows
// {(s1,i1),(s1,i2),(s2,i1),(s2,i2)} — the 2×2 diamond.
func diceFixture(t *testing.T) *olap.Engine {
	t.Helper()
	onto := ontology.New("mini")
	if _, err := onto.AddConcept("Store", "Store"); err != nil {
		t.Fatal(err)
	}
	if err := onto.AddProperty("Store", "store_name", "string", "store"); err != nil {
		t.Fatal(err)
	}
	if _, err := onto.AddConcept("Item", "Item"); err != nil {
		t.Fatal(err)
	}
	if err := onto.AddProperty("Item", "item_name", "string", "item"); err != nil {
		t.Fatal(err)
	}
	if _, err := onto.AddConcept("Sale", "Sale"); err != nil {
		t.Fatal(err)
	}
	if err := onto.AddProperty("Sale", "amount", "float", "amount"); err != nil {
		t.Fatal(err)
	}
	if err := onto.AddObjectProperty("sale_store", "", "Sale", "Store", ontology.ManyToOne); err != nil {
		t.Fatal(err)
	}
	if err := onto.AddObjectProperty("sale_item", "", "Sale", "Item", ontology.ManyToOne); err != nil {
		t.Fatal(err)
	}
	if err := onto.Validate(); err != nil {
		t.Fatal(err)
	}

	cat := sources.NewCatalog()
	if _, err := cat.AddStore("mini", "relational"); err != nil {
		t.Fatal(err)
	}
	rels := []*sources.Relation{
		{Name: "stores", Attributes: []sources.Attribute{{Name: "sid", Type: "int"}, {Name: "store_name", Type: "string"}}, PrimaryKey: []string{"sid"}},
		{Name: "items", Attributes: []sources.Attribute{{Name: "iid", Type: "int"}, {Name: "item_name", Type: "string"}}, PrimaryKey: []string{"iid"}},
		{Name: "sales", Attributes: []sources.Attribute{
			{Name: "sale_id", Type: "int"}, {Name: "store_id", Type: "int"},
			{Name: "item_id", Type: "int"}, {Name: "amount", Type: "float"},
		}, PrimaryKey: []string{"sale_id"},
			ForeignKeys: []sources.ForeignKey{
				{Columns: []string{"store_id"}, RefRelation: "stores", RefColumns: []string{"sid"}},
				{Columns: []string{"item_id"}, RefRelation: "items", RefColumns: []string{"iid"}},
			}},
	}
	for _, r := range rels {
		if err := cat.AddRelation("mini", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}

	m := mapping.New("mini")
	cms := []mapping.ConceptMapping{
		{Concept: "Store", Store: "mini", Relation: "stores", Attrs: map[string]string{"store_name": "store_name"}, Key: []string{"sid"}},
		{Concept: "Item", Store: "mini", Relation: "items", Attrs: map[string]string{"item_name": "item_name"}, Key: []string{"iid"}},
		{Concept: "Sale", Store: "mini", Relation: "sales", Attrs: map[string]string{"amount": "amount"}, Key: []string{"sale_id"}},
	}
	for _, cm := range cms {
		if err := m.MapConcept(cm); err != nil {
			t.Fatal(err)
		}
	}
	pms := []mapping.PropertyMapping{
		{Property: "sale_store", DomainCols: []string{"store_id"}, RangeCols: []string{"sid"}},
		{Property: "sale_item", DomainCols: []string{"item_id"}, RangeCols: []string{"iid"}},
	}
	for _, pm := range pms {
		if err := m.MapProperty(pm); err != nil {
			t.Fatal(err)
		}
	}

	db := storage.NewDB()
	stores, err := db.CreateTable("stores", []storage.Column{{Name: "sid", Type: "int"}, {Name: "store_name", Type: "string"}})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range []string{"s1", "s2", "s3"} {
		if err := stores.Insert(storage.Row{expr.Int(int64(i + 1)), expr.Str(n)}); err != nil {
			t.Fatal(err)
		}
	}
	items, err := db.CreateTable("items", []storage.Column{{Name: "iid", Type: "int"}, {Name: "item_name", Type: "string"}})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range []string{"i1", "i2", "i3"} {
		if err := items.Insert(storage.Row{expr.Int(int64(i + 1)), expr.Str(n)}); err != nil {
			t.Fatal(err)
		}
	}
	sales, err := db.CreateTable("sales", []storage.Column{
		{Name: "sale_id", Type: "int"}, {Name: "store_id", Type: "int"},
		{Name: "item_id", Type: "int"}, {Name: "amount", Type: "float"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cells := [][2]int64{{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {3, 1}}
	for i, c := range cells {
		if err := sales.Insert(storage.Row{expr.Int(int64(i + 1)), expr.Int(c[0]), expr.Int(c[1]), expr.Float(1)}); err != nil {
			t.Fatal(err)
		}
	}

	p, err := core.New(core.Config{Ontology: onto, Mapping: m, Catalog: cat, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	req := &xrq.Requirement{
		ID:   "IR_sales",
		Name: "amount per store and item",
		Dimensions: []xrq.Dimension{
			{Concept: "Store.store_name"},
			{Concept: "Item.item_name"},
		},
		Measures: []xrq.Measure{{ID: "sales_amt", Function: "Sale.amount"}},
		Aggs: []xrq.Aggregation{
			{Order: 1, Dimension: "Store.store_name", Measure: "sales_amt", Function: xrq.AggSum},
		},
	}
	if _, err := p.AddRequirement(req); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDiceFixpointByHand checks the cascading fixpoint on the
// hand-built cube, on both executors.
func TestDiceFixpointByHand(t *testing.T) {
	e := diceFixture(t)
	q := olap.CubeQuery{
		Fact:     "fact_table_sales_amt",
		GroupBy:  []string{"store_name", "item_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "sales_amt"}},
		Dice: &olap.DiceSpec{
			Func:       "COUNT",
			Thresholds: map[string]float64{"store_name": 2, "item_name": 2},
		},
	}
	fast, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.QueryStarFlow(q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "hand dice", fast, oracle)
	var cells []string
	for _, row := range fast.Rows {
		cells = append(cells, strings.Trim(row[0].String(), "'")+"/"+strings.Trim(row[1].String(), "'"))
	}
	want := []string{"s1/i1", "s1/i2", "s2/i1", "s2/i2"}
	if len(cells) != len(want) {
		t.Fatalf("diamond = %v, want %v", cells, want)
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("diamond = %v, want %v", cells, want)
		}
	}
}

// TestDiceEmptyDiamond: thresholds nothing can meet prune everything.
func TestDiceEmptyDiamond(t *testing.T) {
	e := diceFixture(t)
	q := olap.CubeQuery{
		Fact:     "fact_table_sales_amt",
		GroupBy:  []string{"store_name", "item_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "sales_amt"}},
		Dice: &olap.DiceSpec{
			Func:       "COUNT",
			Thresholds: map[string]float64{"store_name": 100},
		},
	}
	fast, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.QueryStarFlow(q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "empty diamond", fast, oracle)
	if len(fast.Rows) != 0 {
		t.Fatalf("rows = %v, want none", fast.Rows)
	}
}

// TestDiceSumCarat: SUM carats over the amount measure.
func TestDiceSumCarat(t *testing.T) {
	e := diceFixture(t)
	q := olap.CubeQuery{
		Fact:     "fact_table_sales_amt",
		GroupBy:  []string{"store_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "sales_amt"}},
		Dice: &olap.DiceSpec{
			Func:       "SUM",
			Col:        "sales_amt",
			Thresholds: map[string]float64{"store_name": 2},
		},
	}
	fast, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.QueryStarFlow(q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "sum carat", fast, oracle)
	// s1 has 3 units, s2 has 2, s3 has 1 → s3 pruned.
	if len(fast.Rows) != 2 {
		t.Fatalf("rows = %v, want s1 and s2", fast.Rows)
	}
}

// TestDiceValidation: malformed dices are rejected before execution.
func TestDiceValidation(t *testing.T) {
	e := diceFixture(t)
	base := olap.CubeQuery{
		Fact:     "fact_table_sales_amt",
		GroupBy:  []string{"store_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "sales_amt"}},
	}
	cases := map[string]*olap.DiceSpec{
		"unknown carat":       {Func: "MEDIAN", Thresholds: map[string]float64{"store_name": 1}},
		"sum without column":  {Func: "SUM", Thresholds: map[string]float64{"store_name": 1}},
		"count with column":   {Func: "COUNT", Col: "sales_amt", Thresholds: map[string]float64{"store_name": 1}},
		"no thresholds":       {Func: "COUNT"},
		"ungrouped threshold": {Func: "COUNT", Thresholds: map[string]float64{"item_name": 1}},
		"unknown column":      {Func: "COUNT", Thresholds: map[string]float64{"ghost": 1}},
	}
	for name, spec := range cases {
		q := base
		q.Dice = spec
		if _, err := e.Query(q); err == nil {
			t.Errorf("%s: dice accepted", name)
		}
		if _, err := e.QueryStarFlow(q); err == nil {
			t.Errorf("%s: oracle accepted dice", name)
		}
	}
}
