package olap

import (
	"strconv"
	"strings"
	"sync"

	"quarry/internal/engine"
)

// dimCache caches dimension build-side hash tables across queries (the
// ROADMAP's "per-dimension build-side caching" item). The fast path
// rebuilds one hash table per joined dimension on every query; under
// concurrent serving traffic the same few dimensions are rebuilt over
// and over. The cache keys each built engine.HashJoin by the DB
// version, the dimension's snapshotted row count and the exact join
// shape (probe position, reference column, build projection) — every
// input that determines the built table. A republish bumps the version
// and implicitly drops every entry (same invalidation lifecycle as the
// materialized aggregates, which is why MatAgg owns the cache); a
// direct append outside a run changes the snapshotted row count and
// misses instead. Built HashJoins are immutable once published, so any
// number of queries probe one concurrently.
type dimCache struct {
	mu sync.Mutex
	// version is the newest version observed; entries older than it
	// are pruned when it advances, but in-flight queries over earlier
	// snapshots may still read (and briefly re-add) their own
	// version's entries without evicting the new version's — reload
	// windows must not thrash the freshly built build sides.
	version uint64
	entries map[string]dimCacheEntry

	hits, misses int64
}

type dimCacheEntry struct {
	hj      *engine.HashJoin
	version uint64
}

// dimCacheCap bounds retained build sides; deployed designs have few
// dimensions, so blowing past it signals key churn and drops the lot.
const dimCacheCap = 128

func newDimCache() *dimCache {
	return &dimCache{entries: map[string]dimCacheEntry{}}
}

// dimKey identifies one build side.
func dimKey(sj *starJoin, nrows int64) string {
	var b strings.Builder
	b.WriteString(sj.def.Name)
	b.WriteByte(0)
	b.WriteString(strconv.FormatInt(nrows, 10))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(sj.probeIdx))
	b.WriteByte(0)
	b.WriteString(sj.refCol)
	b.WriteByte(0)
	b.WriteString(strings.Join(sj.buildCols, ","))
	// Pushed-down prune predicates change which dimension rows enter
	// the build (harmlessly for results, but two queries with
	// different pushdowns must not share a build side keyed alike).
	b.WriteByte(0)
	b.WriteString(sj.predKey)
	return b.String()
}

// advanceLocked prunes entries older than a newly observed version —
// "dropped on republish", without letting straggler queries over
// pre-republish snapshots evict the new version's entries.
func (c *dimCache) advanceLocked(version uint64) {
	if version <= c.version {
		return
	}
	c.version = version
	for k, en := range c.entries {
		if en.version < version {
			delete(c.entries, k)
		}
	}
}

// get returns the cached build side for the key at the given version.
func (c *dimCache) get(version uint64, key string) (*engine.HashJoin, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked(version)
	en, ok := c.entries[versionedKey(version, key)]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return en.hj, ok
}

// versionedKey namespaces a join-shape key by version so straggler
// queries over a pre-republish snapshot never overwrite the current
// version's entry for the same shape.
func versionedKey(version uint64, key string) string {
	return strconv.FormatUint(version, 10) + "\x00" + key
}

// put publishes a fully built hash join for the key at the version.
func (c *dimCache) put(version uint64, key string, hj *engine.HashJoin) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked(version)
	if len(c.entries) >= dimCacheCap {
		c.entries = map[string]dimCacheEntry{}
	}
	c.entries[versionedKey(version, key)] = dimCacheEntry{hj: hj, version: version}
}

// purge drops everything (design changes).
func (c *dimCache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = map[string]dimCacheEntry{}
	c.mu.Unlock()
}

// stats reports cumulative hit/miss counts.
func (c *dimCache) stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
