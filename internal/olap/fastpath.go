package olap

import (
	"context"
	"fmt"

	"quarry/internal/engine"
	"quarry/internal/expr"
	"quarry/internal/storage"
)

// fastBatchSize is the number of rows per vectorized batch, matching
// the ETL engine's default.
const fastBatchSize = 1024

// viewRemap maps a table view's physical column order onto the
// planned column order by name (nil when they coincide, which is the
// common case: deployed tables are created from the same definitions
// the planner reads).
func viewRemap(view *storage.TableView, cols []string) ([]int, error) {
	idx := make([]int, len(cols))
	identity := len(cols) == len(view.Columns())
	for i, name := range cols {
		j, ok := view.ColumnIndex(name)
		if !ok {
			return nil, fmt.Errorf("olap: deployed table %q lacks column %q", view.Name(), name)
		}
		idx[i] = j
		if j != i {
			identity = false
		}
	}
	if identity {
		return nil, nil
	}
	return idx, nil
}

// remapRows projects a storage batch onto the planned column order
// (remap nil passes rows through without copying values).
func remapRows(batch []storage.Row, remap []int) [][]expr.Value {
	out := make([][]expr.Value, len(batch))
	for i, r := range batch {
		if remap == nil {
			out[i] = r
			continue
		}
		nr := make([]expr.Value, len(remap))
		for k, j := range remap {
			nr[k] = r[j]
		}
		out[i] = nr
	}
	return out
}

// buildStarJoins runs the build phase: one hash table per dimension,
// keyed on the reference column, rows projected to key alias + needed
// columns. With a MatAgg attached, built tables are cached per
// (version, dimension rows, join shape) and reused across concurrent
// queries until the next republish — a fully built HashJoin is
// immutable, so any number of probes share it.
func (e *Engine) buildStarJoins(ctx context.Context, p *starPlan, snap *storage.Snapshot) ([]*engine.HashJoin, error) {
	var cache *dimCache
	if e.mat != nil {
		cache = e.mat.dims
	}
	joins := make([]*engine.HashJoin, len(p.joins))
	for i, sj := range p.joins {
		view, ok := snap.Table(sj.def.Name)
		if !ok {
			return nil, fmt.Errorf("olap: snapshot lacks dimension table %q", sj.def.Name)
		}
		key := ""
		if cache != nil {
			key = dimKey(sj, view.NumRows())
			if hj, ok := cache.get(snap.Version(), key); ok {
				joins[i] = hj
				continue
			}
		}
		cols := append([]string{sj.refCol}, sj.buildCols...)
		remap, err := viewRemap(view, cols)
		if err != nil {
			return nil, err
		}
		if remap == nil {
			// Force projection: the build side must contain exactly
			// key + needed columns.
			remap = make([]int, len(cols))
			for k, name := range cols {
				j, _ := view.ColumnIndex(name)
				remap[k] = j
			}
		}
		hj, err := engine.NewHashJoin([]int{sj.probeIdx}, []int{0})
		if err != nil {
			return nil, err
		}
		// The build scan pushes this dimension's filter conjuncts into
		// the cursor: pruned pages hold only rows the post-join filter
		// would reject, so dropping them from the (inner) join's build
		// side removes no surviving row.
		bcur := view.Cursor(sj.preds)
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			batch := bcur.Next(fastBatchSize)
			if batch == nil {
				break
			}
			hj.Build(remapRows(batch, remap))
		}
		if cache != nil {
			cache.put(snap.Version(), key, hj)
		}
		joins[i] = hj
	}
	return joins, nil
}

// probeStar runs the probe phase: stream fact batches through the
// joins and filter, handing each surviving batch to emit. owned
// reports whether the rows were allocated by this query (probe output
// or a remap copy) and are therefore safe to mutate in place;
// otherwise they alias page-cache or table memory. Cancellation is
// checked at every batch boundary — the places a query spends its
// time — so an abandoned query releases its resources promptly.
func (e *Engine) probeStar(ctx context.Context, p *starPlan, snap *storage.Snapshot, joins []*engine.HashJoin, emit func(rows [][]expr.Value, owned bool) error) error {
	var filterOp func(dst, rows [][]expr.Value) ([][]expr.Value, error)
	if p.filter != nil {
		env := expr.NewSliceEnv(p.index)
		pred := p.filter
		filterOp = func(dst, rows [][]expr.Value) ([][]expr.Value, error) {
			ev := env.Env()
			for _, row := range rows {
				env.Bind(row)
				ok, err := expr.EvalBool(pred, ev)
				if err != nil {
					return nil, err
				}
				if ok {
					dst = append(dst, row)
				}
			}
			return dst, nil
		}
	}
	factView, ok := snap.Table(p.fact.Name)
	if !ok {
		return fmt.Errorf("olap: snapshot lacks fact table %q", p.fact.Name)
	}
	factCols := make([]string, len(p.fact.Columns))
	for i, c := range p.fact.Columns {
		factCols[i] = c.Name
	}
	factRemap, err := viewRemap(factView, factCols)
	if err != nil {
		return err
	}
	// Rows are safe to mutate in place only when this query allocated
	// them: the probe step builds fresh joined rows, and a remap copies
	// — otherwise they alias page-cache or table memory.
	rowsOwned := len(p.joins) > 0 || factRemap != nil
	// Stream fact batches through the joins and filter. The cursor
	// skips fact pages that the pushed-down conjuncts' zone maps prove
	// empty of qualifying rows.
	factCur := factView.Cursor(p.factPreds)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		batch := factCur.Next(fastBatchSize)
		if batch == nil {
			return nil
		}
		cur := remapRows(batch, factRemap)
		for _, hj := range joins {
			cur = hj.Probe(nil, cur)
		}
		if filterOp != nil {
			cur, err = filterOp(nil, cur)
			if err != nil {
				return err
			}
		}
		if err := emit(cur, rowsOwned); err != nil {
			return err
		}
	}
}

// execFast runs the plan on the vectorized fast path over a snapshot:
// build per-dimension hash tables (buildStarJoins), stream the fact
// through join → filter → (dice) → hash aggregation (probeStar),
// sort, and return the in-memory result. Nothing is written to any
// database.
func (e *Engine) execFast(ctx context.Context, p *starPlan, snap *storage.Snapshot) (*Result, error) {
	joins, err := e.buildStarJoins(ctx, p, snap)
	if err != nil {
		return nil, err
	}
	agg, err := engine.NewHashAggregator(p.groupIdx, p.aggs, p.aggIdx)
	if err != nil {
		return nil, err
	}
	// String group keys aggregate as dictionary codes, decoded on the
	// surviving groups at emit (never when dicing — the dice reads
	// detail rows directly).
	var coder *groupCoder
	if p.dice == nil && len(p.codedGroup) > 0 {
		coder = newGroupCoder(p)
	}
	var detail [][]expr.Value // buffered only when dicing
	if err := e.probeStar(ctx, p, snap, joins, func(cur [][]expr.Value, owned bool) error {
		if p.dice != nil {
			detail = append(detail, cur...)
			return nil
		}
		if coder != nil {
			cur = coder.encode(cur, owned)
		}
		return agg.Add(cur)
	}); err != nil {
		return nil, err
	}
	if p.dice != nil {
		survivors, err := diceFast(detail, p.dice)
		if err != nil {
			return nil, err
		}
		if err := agg.Add(survivors); err != nil {
			return nil, err
		}
	}
	rows := agg.Result()
	if coder != nil {
		coder.decode(rows)
	}
	sortIdx := make([]int, len(p.groupBy))
	for i := range sortIdx {
		sortIdx[i] = i
	}
	rows = engine.SortRowsBy(rows, sortIdx)
	class := ClassFast
	if p.dice != nil {
		class = ClassDice
	}
	return &Result{Columns: p.resultColumns(), Rows: rows, Version: snap.Version(), Class: class}, nil
}
