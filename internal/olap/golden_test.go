package olap_test

import (
	"strings"
	"testing"

	"quarry/internal/olap"
)

// Golden results for canonical TPC-H cube queries over the
// deterministic micro-TPC-H instance (SF 5, seed 42, IR_revenue
// deployed): revenue at each roll-up level of the Supplier hierarchy
// plus one diamond dice, with expected rows checked in so planner or
// kernel refactors cannot silently change answers. Each line encodes
// one row as kind:value fields (see encodeValue), so even an
// int-vs-float drift fails the test. Both executors are held to the
// same fixture. Float sums are the correctly-rounded exact sums
// (engine.FloatSum), so they are stable under any fold or shard
// order.
var goldenQueries = map[string]olap.CubeQuery{
	"revenue_by_supplier": {
		Fact:    "fact_table_revenue",
		GroupBy: []string{"s_name"},
		Measures: []olap.MeasureSpec{
			{Out: "total", Func: "SUM", Col: "revenue"},
			{Out: "n", Func: "COUNT", Col: ""},
		},
	},
	"revenue_by_nation": {
		Fact:   "fact_table_revenue",
		RollUp: map[string]string{"Supplier": "Nation"},
		Measures: []olap.MeasureSpec{
			{Out: "total", Func: "SUM", Col: "revenue"},
			{Out: "n", Func: "COUNT", Col: ""},
		},
	},
	"revenue_by_region": {
		Fact:   "fact_table_revenue",
		RollUp: map[string]string{"Supplier": "Region"},
		Measures: []olap.MeasureSpec{
			{Out: "total", Func: "SUM", Col: "revenue"},
			{Out: "n", Func: "COUNT", Col: ""},
		},
	},
	"revenue_brand_dice": {
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"p_brand"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
		Dice: &olap.DiceSpec{
			Func:       "COUNT",
			Thresholds: map[string]float64{"p_brand": 4},
		},
	},
}

var goldenResults = map[string][]string{
	"revenue_by_supplier": {
		"columns: s_name, total, n",
		"string:'Supplier#000000000' | float:1.8483491012099567e+06 | int:80",
	},
	"revenue_by_nation": {
		"columns: n_name, total, n",
		"string:'SPAIN' | float:1.8483491012099567e+06 | int:80",
	},
	"revenue_by_region": {
		"columns: r_name, total, n",
		"string:'EUROPE' | float:1.8483491012099567e+06 | int:80",
	},
	"revenue_brand_dice": {
		"columns: p_brand, total",
		"string:'Brand#12' | float:134461.0649206349",
		"string:'Brand#14' | float:95598.81380952381",
		"string:'Brand#23' | float:86831.14",
		"string:'Brand#31' | float:74472.16305952381",
		"string:'Brand#35' | float:188313.04844155844",
		"string:'Brand#42' | float:136459.38514285715",
		"string:'Brand#43' | float:116208.26393939395",
		"string:'Brand#45' | float:150533.3903809524",
		"string:'Brand#54' | float:131147.5071991342",
	},
}

func TestGoldenTPCHCubeQueries(t *testing.T) {
	p, _ := deployedPlatform(t) // SF 5, seed 42, IR_revenue
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	for name, q := range goldenQueries {
		want := goldenResults[name]
		for _, exec := range []struct {
			label string
			run   func(olap.CubeQuery) (*olap.Result, error)
		}{
			{"fast", e.Query},
			{"star-flow", e.QueryStarFlow},
		} {
			res, err := exec.run(q)
			if err != nil {
				t.Fatalf("%s (%s): %v", name, exec.label, err)
			}
			got := encodeResult(res)
			if len(got) != len(want) {
				t.Fatalf("%s (%s): %d lines, want %d\ngot:\n%s", name, exec.label,
					len(got), len(want), strings.Join(got, "\n"))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s (%s) line %d:\ngot:  %s\nwant: %s", name, exec.label, i, got[i], want[i])
				}
			}
		}
	}
}
