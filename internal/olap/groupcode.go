package olap

// Dictionary-coded group-by keys for the fast path: string group-key
// values are swapped for dense int codes before rows enter the hash
// aggregator and decoded back on the surviving groups at emit, so the
// aggregator hashes and compares 8-byte ints instead of strings.
// Coding assigns codes in first-seen order and is a bijection on the
// values actually seen, so rows partition into exactly the same
// groups in exactly the same first-seen order — the aggregation
// itself is untouched (same engine.HashAggregator, same fold order),
// keeping fast-path results byte-identical to the oracle's.

import (
	"unsafe"

	"quarry/internal/expr"
)

// strInterner assigns dense int32 codes to distinct strings in
// first-seen order. Lookups go through a pointer-identity cache
// first: values decoded from a dictionary- or run-length-encoded page
// share one string header per distinct value, so the common case is
// one map probe on (data pointer, length) with no string hashing. The
// key's unsafe.Pointer is traced by the GC — each cached string's
// backing array stays pinned, so a recycled allocation can never
// alias a dead entry.
type strInterner struct {
	byPtr map[ptrKey]int32
	byVal map[string]int32
	vals  []expr.Value // code → original value
}

type ptrKey struct {
	p unsafe.Pointer
	n int
}

func newStrInterner() *strInterner {
	return &strInterner{byPtr: map[ptrKey]int32{}, byVal: map[string]int32{}}
}

func (in *strInterner) code(v expr.Value) int32 {
	s := v.AsString()
	k := ptrKey{p: unsafe.Pointer(unsafe.StringData(s)), n: len(s)}
	if c, ok := in.byPtr[k]; ok {
		return c
	}
	c, ok := in.byVal[s]
	if !ok {
		c = int32(len(in.vals))
		in.vals = append(in.vals, v)
		in.byVal[s] = c
	}
	in.byPtr[k] = c
	return c
}

// groupCoder codes the plan's eligible string group columns (one
// interner per column — codes are per-column bijections, which is all
// tuple identity needs).
type groupCoder struct {
	positions []int // layout positions of the coded group columns
	resultIdx []int // their positions in the aggregator's output rows
	interns   []*strInterner
}

func newGroupCoder(p *starPlan) *groupCoder {
	g := &groupCoder{}
	for _, gi := range p.codedGroup {
		g.positions = append(g.positions, p.groupIdx[gi])
		g.resultIdx = append(g.resultIdx, gi)
		g.interns = append(g.interns, newStrInterner())
	}
	return g
}

// encode replaces the coded columns' string values with Int codes
// (NULLs stay NULL and keep grouping with NULLs). When owned, rows
// are mutated in place — they were allocated by this query's probe or
// remap step; otherwise each row is copied first, because rows shared
// with the page cache or a memory table must never be written.
func (g *groupCoder) encode(rows [][]expr.Value, owned bool) [][]expr.Value {
	for ri, row := range rows {
		if !owned {
			nr := make([]expr.Value, len(row))
			copy(nr, row)
			row = nr
			rows[ri] = row
		}
		for i, pos := range g.positions {
			if v := row[pos]; v.Kind() == expr.KindString {
				row[pos] = expr.Int(int64(g.interns[i].code(v)))
			}
		}
	}
	return rows
}

// decode restores the original string values on the aggregated result
// rows (group columns occupy the leading positions; only surviving
// groups pay the decode).
func (g *groupCoder) decode(rows [][]expr.Value) {
	for _, row := range rows {
		for i, pos := range g.resultIdx {
			if v := row[pos]; v.Kind() == expr.KindInt {
				row[pos] = g.interns[i].vals[v.AsInt()]
			}
		}
	}
}
