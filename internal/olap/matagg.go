package olap

// Materialized aggregates: the serving layer's answer to the
// ROADMAP's "materialized aggregate selection" item, after the
// classic view-materialization lattice literature (Harinarayan,
// Rajaraman, Ullman: "Implementing Data Cubes Efficiently").
//
// A MatAgg store watches the query log the fast path already sees:
// every planned cube query is recorded as a (fact, group-by set,
// measure set) pattern — the group-by set resolved through the xMD
// roll-up hierarchies and widened by the filter's identifiers, so a
// pattern names exactly the granularity that could answer the query.
// From each observed pattern the recorder also derives its coarser
// lattice neighbours by walking the roll-up hierarchies (replacing a
// level's key descriptor with its parent level's key), anticipating
// the roll-up navigation OLAP sessions actually perform.
//
// Refresh materializes the top-K hottest patterns: each is executed on
// the vectorized fast path over its own storage snapshot and the
// result is stored in a detached staging table — outside the published
// namespace, so ETL runs, snapshots and the repository never see it —
// keyed by the snapshot's DB version. A republish (every /api/run
// bumps the version exactly once at PublishAll) therefore invalidates
// every aggregate implicitly; queries compare versions and fall back
// to the base-fact path until the next Refresh.
//
// Admission is benefit-aware, not frequency-only (the trap the dicing
// literature warns about: hot-but-cheap patterns crowding out the
// aggregates that actually shave fact-scan work). Refresh builds the
// hottest candidate patterns — more than it can keep — and installs
// the ones with the highest benefit, where
//
//	benefit = weight × (fact rows scanned / aggregate rows)
//
// i.e. observed demand times the scan fan-in the aggregate collapses.
// Under a byte budget (NewMatAggBudget) the ranking switches to
// benefit PER BYTE and installation stops at the budget, evicting the
// lowest benefit-per-byte candidates first. A hot group-by over a
// near-fact-cardinality key (fan-in ≈ 1) therefore loses its slot to
// a cooler roll-up that collapses thousands of fact rows per group.
//
// Rewrite (answer) picks the COARSEST usable aggregate — fewest rows —
// whose group-by set is a superset of the query's needs. Two shapes
// exist:
//
//   - projection: the aggregate's granularity equals the query's
//     resolved group-by set. Stored rows ARE the answer (they were
//     computed by the byte-identical fast path at the same version);
//     the rewrite filters on group columns, projects the query's
//     column order and re-sorts. Every aggregate function qualifies.
//   - re-aggregation: the aggregate is strictly finer. Stored partial
//     states are folded once more (COUNT → SUM of counts, MIN → MIN of
//     mins, MAX → MAX of maxs, SUM over int columns → SUM of partial
//     sums). Only aggregates whose second fold is EXACT qualify:
//     float SUM and AVG re-aggregate in a different order than the
//     fact-order fold the oracle performs, which changes low-order
//     bits, so they fall back to the base path — QueryStarFlow stays
//     the byte-identical oracle for every served query.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"quarry/internal/engine"
	"quarry/internal/expr"
	"quarry/internal/storage"
	"quarry/internal/xlm"
)

// maxPatterns bounds the query-log pattern map; beyond it the
// lowest-weight pattern is evicted.
const maxPatterns = 512

// candidateFactor is how many candidate patterns Refresh builds per
// retained slot: benefit ranking needs each candidate's actual
// aggregate row count, which is only known after building, so the
// store materializes candidateFactor×topK of the hottest patterns and
// keeps the topK best by benefit (the rest are discarded and GC'd).
const candidateFactor = 2

// valueBytes approximates the in-memory cost of one expr.Value (kind
// tag + int64 + float64 + string header + bool, padded); string
// content is charged on top. Used for the budget accounting — an
// estimate, but a consistent one, so benefit-per-byte ranking and the
// budget cutoff are deterministic.
const valueBytes = 48

// derivedWeight is the frequency credited to hierarchy-derived
// lattice neighbours per observation (observed patterns get 1.0, so
// directly-observed granularities win ties).
const derivedWeight = 0.25

// patternDecay ages every retained weight when a full pattern log
// rejects a newcomer, so a persistently shifted workload is admitted
// after a bounded number of rejections instead of being locked out by
// stale accumulated weights. The decay is applied lazily: a rejection
// bumps a global epoch instead of touching every entry, and weights
// are normalized on access (see bumpLocked) — the saturated-log path
// costs O(1) under the store mutex instead of the old O(cap)
// coldest-scan plus full-map multiply.
const patternDecay = 0.95

// aggMeasure is one stored measure of a pattern, canonicalized.
type aggMeasure struct {
	Func string // canonical upper-case aggregate
	Col  string // source column; "" for COUNT(*)
}

func (m aggMeasure) key() string { return m.Func + ":" + m.Col }

// column is the measure's column name inside the aggregate table.
func (m aggMeasure) column() string {
	col := m.Col
	if col == "" {
		col = "_all"
	}
	return "m_" + strings.ToLower(m.Func) + "_" + col
}

// aggPattern is one (fact, group-by set, measure set) granularity
// observed in (or derived from) the query log.
type aggPattern struct {
	key      string
	fact     string
	groupBy  []string // sorted, unique
	measures []aggMeasure
	// weight is stored normalized to the store epoch the pattern was
	// last touched at; its value at the store's current epoch E is
	// weight·patternDecay^(E−epoch). Compare weights only after
	// normalizing to a common epoch.
	weight float64
	epoch  uint64
}

func patternKey(fact string, groupBy []string, measures []aggMeasure) string {
	mk := make([]string, len(measures))
	for i, m := range measures {
		mk[i] = m.key()
	}
	return fact + "|" + strings.Join(groupBy, ",") + "|" + strings.Join(mk, ";")
}

// matEntry is one materialized aggregate: a detached snapshot-backed
// table holding the pattern's fast-path result at a specific DB
// version. Entries are immutable after construction.
type matEntry struct {
	pat     *aggPattern
	table   *storage.Table
	version uint64
	rows    int
	// srcRows records the row count of every source table the entry
	// was built from. The DB version catches every structural change
	// (create/replace/drop/attach, one bump per ETL run), but a direct
	// Table.Insert outside a run does NOT bump it — row counts do
	// change, so answer() re-checks them (the same guard the
	// build-side cache keys on).
	srcRows  map[string]int64
	layout   map[string]int    // column name → position in table
	mIdx     map[string]int    // measure key → position in table
	mTyp     map[string]string // measure key → source column type
	groupSet map[string]bool
	// factRows is the fact cardinality the entry was built over and
	// bytes its estimated in-memory footprint; benefit is the admission
	// score weight×(factRows/rows) computed at Refresh (see admit).
	factRows int64
	bytes    int64
	benefit  float64
}

// perByte is the entry's benefit density, the ranking used under a
// byte budget.
func (en *matEntry) perByte() float64 {
	b := en.bytes
	if b < 1 {
		b = 1
	}
	return en.benefit / float64(b)
}

// MatAggStats is the admin/stats view of a store.
type MatAggStats struct {
	TopK               int   `json:"top_k"`
	BudgetBytes        int64 `json:"budget_bytes"`
	Patterns           int   `json:"patterns"`
	Materialized       int   `json:"materialized"`
	MaterializedRows   int64 `json:"materialized_rows"`
	MaterializedBytes  int64 `json:"materialized_bytes"`
	Recorded           int64 `json:"recorded"`
	Hits               int64 `json:"hits"`
	Rewrites           int64 `json:"rewrites"`
	Misses             int64 `json:"misses"`
	UnservableRejected int64 `json:"unservable_rejected"`
	// BenefitEvicted counts candidates that were built by a Refresh
	// but lost their slot to a higher-benefit (or, under a budget,
	// higher benefit-per-byte) aggregate.
	BenefitEvicted     int64  `json:"benefit_evicted"`
	LastRefreshVersion uint64 `json:"last_refresh_version"`
	LastRefreshError   string `json:"last_refresh_error,omitempty"`
	DimCacheHits       int64  `json:"dim_cache_hits"`
	DimCacheMisses     int64  `json:"dim_cache_misses"`
}

// MatAgg is a materialized-aggregate store plus the per-dimension
// build-side cache (both invalidated by the same DB-version
// lifecycle). It is safe for concurrent use and shared across engine
// rebuilds: attach it with Engine.WithMatAgg.
type MatAgg struct {
	mu       sync.Mutex
	topK     int
	budget   int64 // byte budget for installed aggregates; 0 = unlimited
	patterns map[string]*aggPattern
	entries  map[string]*matEntry
	dims     *dimCache

	recorded, hits, rewrites, misses int64
	// evicted counts built candidates rejected by benefit ranking or
	// the byte budget (Stats.BenefitEvicted).
	evicted int64
	// unservable counts queries whose pattern was rejected at
	// admission because no materialization of it could ever serve
	// them (see record).
	unservable         int64
	lastRefreshVersion uint64
	lastRefreshErr     string
	// gen counts wholesale invalidations; a Refresh started before an
	// Invalidate must not install its (old-design) entries afterwards.
	gen uint64
	// epoch implements the lazy log decay: every saturated-log
	// rejection increments it, which ages every pattern's effective
	// weight by one patternDecay factor without touching the entries.
	epoch uint64
	// Running minimum over the log (the eviction candidate). minW —
	// normalized to minEpoch — is EXACT when minExact, else only a
	// lower bound on the true minimum (its pattern was bumped since
	// the last full scan; bumps only raise weights, so the bound stays
	// valid). Rejections compare against the bound in O(1); only a
	// potential admission pays the O(cap) rescan.
	minKey   string
	minW     float64
	minEpoch uint64
	minExact bool
}

// NewMatAgg builds a store materializing up to topK aggregates per
// Refresh (topK <= 0 defaults to 8) with no byte budget.
func NewMatAgg(topK int) *MatAgg { return NewMatAggBudget(topK, 0) }

// NewMatAggBudget builds a store materializing up to topK aggregates
// per Refresh under a byte budget: installed aggregates' estimated
// in-memory footprint never exceeds budgetBytes, and candidates are
// ranked by benefit per byte (budgetBytes <= 0 means unlimited, with
// ranking by plain benefit).
func NewMatAggBudget(topK int, budgetBytes int64) *MatAgg {
	if topK <= 0 {
		topK = 8
	}
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	return &MatAgg{
		topK:     topK,
		budget:   budgetBytes,
		patterns: map[string]*aggPattern{},
		entries:  map[string]*matEntry{},
		dims:     newDimCache(),
	}
}

// Invalidate drops every materialized aggregate, recorded pattern and
// cached build side. Call it when the unified design changes (a data
// republish needs nothing: versions diverge by themselves).
func (m *MatAgg) Invalidate() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.patterns = map[string]*aggPattern{}
	m.entries = map[string]*matEntry{}
	m.gen++
	m.epoch = 0
	m.minKey, m.minW, m.minEpoch, m.minExact = "", 0, 0, false
	m.mu.Unlock()
	m.dims.purge()
}

// Stats reports the store's counters.
func (m *MatAgg) Stats() MatAggStats {
	if m == nil {
		return MatAggStats{}
	}
	m.mu.Lock()
	st := MatAggStats{
		TopK:               m.topK,
		BudgetBytes:        m.budget,
		Patterns:           len(m.patterns),
		Materialized:       len(m.entries),
		Recorded:           m.recorded,
		Hits:               m.hits,
		Rewrites:           m.rewrites,
		Misses:             m.misses,
		UnservableRejected: m.unservable,
		BenefitEvicted:     m.evicted,
		LastRefreshVersion: m.lastRefreshVersion,
		LastRefreshError:   m.lastRefreshErr,
	}
	for _, en := range m.entries {
		st.MaterializedRows += int64(en.rows)
		st.MaterializedBytes += en.bytes
	}
	m.mu.Unlock()
	st.DimCacheHits, st.DimCacheMisses = m.dims.stats()
	return st
}

// patternOf canonicalizes a plan into its query-log pattern: the
// resolved group-by set widened by the filter identifiers, plus the
// deduplicated measure set. Dice queries have no pattern (a dice needs
// the detail rows).
func patternOf(p *starPlan) (groupBy []string, measures []aggMeasure, ok bool) {
	if p.dice != nil {
		return nil, nil, false
	}
	set := map[string]bool{}
	for _, g := range p.groupBy {
		set[g] = true
	}
	if p.filter != nil {
		for _, id := range expr.Idents(p.filter) {
			set[id] = true
		}
	}
	for g := range set {
		groupBy = append(groupBy, g)
	}
	sort.Strings(groupBy)
	seen := map[string]bool{}
	for _, a := range p.aggs {
		am := aggMeasure{Func: a.Func, Col: a.Col}
		if seen[am.key()] {
			continue
		}
		seen[am.key()] = true
		measures = append(measures, am)
	}
	sort.Slice(measures, func(i, j int) bool { return measures[i].key() < measures[j].key() })
	return groupBy, measures, true
}

// record logs one planned query and its hierarchy-derived coarser
// lattice neighbours. Pattern canonicalization and the roll-up
// closure run before the store lock is taken — only the weight bumps
// serialize, keeping contention off the serving hot path.
//
// Admission gate: a pattern whose group-by set was WIDENED by filter
// identifiers can only serve its generating query by re-aggregation
// (the entry's granularity is strictly finer than the query's), so if
// any of its measures is not re-aggregable — float SUM, AVG — the
// materialized entry could never answer the very query that logged
// it. Admitting such patterns burns top-K materialization slots on
// dead weight; they are rejected here instead (counted in
// UnservableRejected), leaving their slots to servable patterns.
func (m *MatAgg) record(e *Engine, p *starPlan) {
	groupBy, measures, ok := patternOf(p)
	if !ok {
		return
	}
	if widened(p) && !allReaggregable(p, measures) {
		m.mu.Lock()
		m.recorded++
		m.unservable++
		m.mu.Unlock()
		return
	}
	variants := e.rollupVariants(groupBy)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recorded++
	m.bumpLocked(p.fact.Name, groupBy, measures, 1)
	for _, variant := range variants {
		m.bumpLocked(p.fact.Name, variant, measures, derivedWeight)
	}
}

// widened reports whether the plan's filter adds identifiers beyond
// its group-by columns — i.e. whether patternOf returned a strictly
// finer granularity than the query aggregates at.
func widened(p *starPlan) bool {
	if p.filter == nil {
		return false
	}
	grouped := map[string]bool{}
	for _, g := range p.groupBy {
		grouped[g] = true
	}
	for _, id := range expr.Idents(p.filter) {
		if !grouped[id] {
			return true
		}
	}
	return false
}

// allReaggregable reports whether every measure's second fold over
// stored partials is exact (see reaggregable).
func allReaggregable(p *starPlan, measures []aggMeasure) bool {
	for _, am := range measures {
		srcType := ""
		if am.Col != "" {
			srcType, _ = p.columnType(am.Col)
		}
		if !reaggregable(am.Func, srcType) {
			return false
		}
	}
	return true
}

// normLocked returns pat's weight normalized to the current epoch.
func (m *MatAgg) normLocked(pat *aggPattern) float64 {
	if pat.epoch == m.epoch {
		return pat.weight
	}
	return pat.weight * math.Pow(patternDecay, float64(m.epoch-pat.epoch))
}

// minNowLocked returns the running-min weight normalized to the
// current epoch (exact or lower bound per minExact).
func (m *MatAgg) minNowLocked() float64 {
	if m.minEpoch == m.epoch {
		return m.minW
	}
	return m.minW * math.Pow(patternDecay, float64(m.epoch-m.minEpoch))
}

// dropPatternLocked removes a pattern from the log (Refresh drops
// patterns that no longer plan). If it was the running-min candidate,
// the stored bound stays valid (removal can only raise the true
// minimum) but degrades to non-exact, so the next admission decision
// rescans instead of "evicting" the missing key — which would have
// let the log creep past maxPatterns.
func (m *MatAgg) dropPatternLocked(key string) {
	delete(m.patterns, key)
	if key == m.minKey {
		m.minExact = false
	}
}

// rescanMinLocked recomputes the exact running minimum — the O(cap)
// slow path, paid only when an admission decision needs exactness,
// never on the rejection fast path. Ties break toward the highest
// key, matching the old coldest-scan's eviction choice.
func (m *MatAgg) rescanMinLocked() {
	m.minKey, m.minW, m.minEpoch, m.minExact = "", 0, m.epoch, true
	for _, pat := range m.patterns {
		w := m.normLocked(pat)
		if m.minKey == "" || w < m.minW || (w == m.minW && pat.key > m.minKey) {
			m.minKey, m.minW = pat.key, w
		}
	}
}

// bumpLocked records weight w for a pattern, evicting the coldest
// entry when a hotter newcomer hits a full log. The saturated-log hot
// path — a colder newcomer bouncing off a full log, the steady state
// of a workload with more distinct granularities than maxPatterns —
// is O(1): the newcomer is compared against the running-min bound and
// the decay is an epoch increment, so the serving lock is held for
// constant work (the old implementation scanned and multiplied the
// whole map on every such rejection).
func (m *MatAgg) bumpLocked(fact string, groupBy []string, measures []aggMeasure, w float64) {
	key := patternKey(fact, groupBy, measures)
	if pat, ok := m.patterns[key]; ok {
		pat.weight = m.normLocked(pat) + w
		pat.epoch = m.epoch
		if key == m.minKey {
			// The coldest pattern warmed up: minW degrades to a lower
			// bound until the next rescan.
			m.minExact = false
		}
		return
	}
	if len(m.patterns) < maxPatterns {
		m.patterns[key] = &aggPattern{
			key:      key,
			fact:     fact,
			groupBy:  append([]string(nil), groupBy...),
			measures: append([]aggMeasure(nil), measures...),
			weight:   w,
			epoch:    m.epoch,
		}
		if m.minKey == "" || w < m.minNowLocked() {
			// Below the (lower-bound) minimum means below every kept
			// weight, so the newcomer is the exact new minimum.
			m.minKey, m.minW, m.minEpoch, m.minExact = key, w, m.epoch, true
		}
		return
	}
	if m.minKey == "" {
		m.rescanMinLocked()
	}
	if m.minNowLocked() > w {
		// Colder than everything kept (the bound under-estimates the
		// true minimum, so bound > w suffices even when stale): reject,
		// and age the whole log one decay step — lazily, via the epoch
		// — so a persistently shifted workload is admitted after a
		// bounded number of rejections. This is the O(1) hot path.
		m.epoch++
		return
	}
	if !m.minExact {
		// The bound allows admission; get the exact minimum first.
		m.rescanMinLocked()
		if m.minNowLocked() > w {
			m.epoch++
			return
		}
	}
	delete(m.patterns, m.minKey)
	m.patterns[key] = &aggPattern{
		key:      key,
		fact:     fact,
		groupBy:  append([]string(nil), groupBy...),
		measures: append([]aggMeasure(nil), measures...),
		weight:   w,
		epoch:    m.epoch,
	}
	m.rescanMinLocked()
}

// rollupVariants derives the coarser lattice neighbours of a group-by
// set along the xMD hierarchies: every column that is some level's key
// descriptor is replaced, one roll-up edge at a time, by the parent
// level's key (precomputed in New), and the closure of such
// replacements is returned (excluding the original set).
func (e *Engine) rollupVariants(groupBy []string) [][]string {
	parents := e.rollupParents
	if len(parents) == 0 {
		return nil
	}
	canon := func(set []string) string { return strings.Join(set, ",") }
	start := append([]string(nil), groupBy...)
	sort.Strings(start)
	seen := map[string]bool{canon(start): true}
	frontier := [][]string{start}
	var out [][]string
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for i, col := range cur {
			for _, parent := range parents[col] {
				variant := make([]string, 0, len(cur))
				variant = append(variant, cur[:i]...)
				variant = append(variant, cur[i+1:]...)
				dup := false
				for _, v := range variant {
					if v == parent {
						dup = true
						break
					}
				}
				if !dup {
					variant = append(variant, parent)
				}
				sort.Strings(variant)
				if seen[canon(variant)] {
					continue
				}
				seen[canon(variant)] = true
				out = append(out, variant)
				frontier = append(frontier, variant)
			}
		}
	}
	return out
}

// estimateBytes approximates the in-memory footprint of a
// materialized result: per-row slice header plus valueBytes per value
// plus string content. The budget accounting only needs a consistent
// estimate, not exact heap sizes.
func estimateBytes(rows [][]expr.Value) int64 {
	var b int64
	for _, r := range rows {
		b += 24 + int64(len(r))*valueBytes
		for _, v := range r {
			if v.Kind() == expr.KindString {
				b += int64(len(v.AsString()))
			}
		}
	}
	return b
}

// columnType resolves a column's declared type within a plan's star
// schema.
func (p *starPlan) columnType(name string) (string, bool) {
	for _, c := range p.fact.Columns {
		if c.Name == name {
			return c.Type, true
		}
	}
	for _, j := range p.joins {
		for _, c := range j.def.Columns {
			if c.Name == name {
				return c.Type, true
			}
		}
	}
	return "", false
}

// measureColumnType is the storage type of a stored measure column,
// mirroring the aggregation kernel's output kinds exactly.
func measureColumnType(m aggMeasure, srcType string) string {
	switch m.Func {
	case "COUNT":
		return "int"
	case "AVG":
		return "float"
	case "SUM":
		if srcType == "int" {
			return "int"
		}
		return "float"
	default: // MIN, MAX carry the column's own type
		return srcType
	}
}

// reaggregable reports whether a measure's second fold over stored
// partial states is exact — i.e. byte-identical to folding the detail
// rows once in fact order. Float SUM and AVG are not (float addition
// is order-sensitive); COUNT, MIN, MAX and int SUM are.
func reaggregable(fn, srcType string) bool {
	switch fn {
	case "COUNT", "MIN", "MAX":
		return true
	case "SUM":
		return srcType == "int"
	}
	return false
}

// RefreshReport summarises one Refresh.
type RefreshReport struct {
	Materialized int
	Rows         int64
	Dropped      int // patterns that no longer plan (dropped from the log)
	// Evicted counts candidates built this pass but not installed:
	// outranked by higher-benefit aggregates or cut by the byte budget.
	Evicted int
}

// admitEntries picks the entries to install from the built candidate
// set: ranked by benefit — weight × (fact rows scanned / aggregate
// rows), the fact-scan work the aggregate saves per served query —
// or, under a byte budget, by benefit PER BYTE, taken greedily
// subject to both the top-K slot cap and the budget. Greedy from the
// top is equivalent to evicting the lowest benefit-per-byte
// candidates until the rest fit. A candidate too large for the
// remaining budget is skipped, not terminal: a smaller, lower-ranked
// aggregate may still fit (classic knapsack greedy). Ties break on
// the pattern key for determinism.
func admitEntries(cands []*matEntry, topK int, budget int64) []*matEntry {
	rank := func(en *matEntry) float64 {
		if budget > 0 {
			return en.perByte()
		}
		return en.benefit
	}
	sorted := append([]*matEntry(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		ri, rj := rank(sorted[i]), rank(sorted[j])
		if ri != rj {
			return ri > rj
		}
		return sorted[i].pat.key < sorted[j].pat.key
	})
	keep := make([]*matEntry, 0, topK)
	var used int64
	for _, en := range sorted {
		if len(keep) >= topK {
			break
		}
		if budget > 0 && used+en.bytes > budget {
			continue
		}
		keep = append(keep, en)
		used += en.bytes
	}
	return keep
}

// Refresh materializes the hottest candidate patterns, each from its
// own snapshot of the deployed tables, ranks them by benefit (see
// admitEntries) and atomically swaps in the winning entry set.
// Patterns that no longer plan against the deployed design (e.g. after
// a lifecycle change removed a column) are dropped from the log.
// Concurrent queries keep answering from the previous entries — the
// per-entry version check makes any stale entry unservable regardless.
func (m *MatAgg) Refresh(e *Engine) (RefreshReport, error) {
	var rep RefreshReport
	if m == nil || e == nil {
		return rep, nil
	}
	// Snapshot (pattern, weight) under the lock: weights keep being
	// bumped by concurrent queries while we sort and build. Weights
	// are normalized to a common epoch here — entries touched at
	// different epochs are not directly comparable. Everything else on
	// a pattern is immutable after creation.
	type ranked struct {
		pat    *aggPattern
		weight float64
	}
	m.mu.Lock()
	startGen := m.gen
	snapshot := make([]ranked, 0, len(m.patterns))
	for _, pat := range m.patterns {
		snapshot = append(snapshot, ranked{pat, m.normLocked(pat)})
	}
	topK := m.topK
	budget := m.budget
	m.mu.Unlock()
	sort.Slice(snapshot, func(i, j int) bool {
		if snapshot[i].weight != snapshot[j].weight {
			return snapshot[i].weight > snapshot[j].weight
		}
		return snapshot[i].pat.key < snapshot[j].pat.key
	})
	// Benefit needs each candidate's aggregate row count, which only
	// the build reveals — so build more candidates than slots (the
	// hottest candidateFactor×topK by weight) and let admitEntries
	// keep the best. This is what lets a cooler high-fan-in roll-up
	// displace a hot near-fact-cardinality pattern that raw frequency
	// ranking would have locked in.
	if limit := candidateFactor * topK; len(snapshot) > limit {
		snapshot = snapshot[:limit]
	}
	cands := make([]*matEntry, 0, len(snapshot))
	var firstErr error
	var maxVersion uint64
	for _, r := range snapshot {
		en, err := m.build(e, r.pat)
		if err != nil {
			rep.Dropped++
			if firstErr == nil {
				firstErr = fmt.Errorf("matagg: pattern %s: %w", r.pat.key, err)
			}
			m.mu.Lock()
			m.dropPatternLocked(r.pat.key)
			m.mu.Unlock()
			continue
		}
		rows := en.rows
		if rows < 1 {
			rows = 1
		}
		en.benefit = r.weight * float64(en.factRows) / float64(rows)
		cands = append(cands, en)
		if en.version > maxVersion {
			maxVersion = en.version
		}
	}
	keep := admitEntries(cands, topK, budget)
	rep.Evicted = len(cands) - len(keep)
	entries := make(map[string]*matEntry, len(keep))
	for _, en := range keep {
		entries[en.pat.key] = en
		rep.Materialized++
		rep.Rows += int64(en.rows)
	}
	m.mu.Lock()
	// Install only when still current: an Invalidate (design change)
	// since we started means these entries were built from the old
	// design, and a concurrent Refresh that already installed entries
	// at a NEWER warehouse version must not be overwritten with
	// stale-version ones (which would be unservable and silently
	// degrade every query to the base path until the next run).
	if m.gen == startGen && maxVersion >= m.lastRefreshVersion {
		m.entries = entries
		m.lastRefreshVersion = maxVersion
		m.evicted += int64(rep.Evicted)
		if firstErr != nil {
			m.lastRefreshErr = firstErr.Error()
		} else {
			m.lastRefreshErr = ""
		}
	} else {
		rep.Materialized = 0
		rep.Rows = 0
	}
	m.mu.Unlock()
	return rep, firstErr
}

// build materializes one pattern: plan → snapshot → fast-path execute
// → detached staging table keyed by the snapshot version.
func (m *MatAgg) build(e *Engine, pat *aggPattern) (*matEntry, error) {
	q := CubeQuery{Fact: pat.fact, GroupBy: append([]string(nil), pat.groupBy...)}
	for _, am := range pat.measures {
		q.Measures = append(q.Measures, MeasureSpec{Out: am.column(), Func: am.Func, Col: am.Col})
	}
	p, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	snap, err := e.db.Snapshot(p.tables...)
	if err != nil {
		return nil, err
	}
	res, err := e.execFast(context.Background(), p, snap)
	if err != nil {
		return nil, err
	}
	cols := make([]storage.Column, 0, len(res.Columns))
	mTyp := map[string]string{}
	for _, g := range pat.groupBy {
		typ, ok := p.columnType(g)
		if !ok {
			return nil, fmt.Errorf("group column %q has no deployed type", g)
		}
		cols = append(cols, storage.Column{Name: g, Type: typ})
	}
	for _, am := range pat.measures {
		srcType := ""
		if am.Col != "" {
			t, ok := p.columnType(am.Col)
			if !ok {
				return nil, fmt.Errorf("measure column %q has no deployed type", am.Col)
			}
			srcType = t
		}
		mTyp[am.key()] = srcType
		cols = append(cols, storage.Column{Name: am.column(), Type: measureColumnType(am, srcType)})
	}
	// The table stays detached — outside the published namespace — so
	// it is invisible to snapshots, ETL runs and TableNames; dropping
	// the entry garbage-collects it.
	t, err := storage.NewStagingTable("__matagg|"+pat.key, cols)
	if err != nil {
		return nil, err
	}
	rows := make([]storage.Row, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = r
	}
	if err := t.InsertAll(rows); err != nil {
		return nil, err
	}
	en := &matEntry{
		pat:      pat,
		table:    t,
		version:  snap.Version(),
		rows:     len(rows),
		srcRows:  make(map[string]int64, len(p.tables)),
		layout:   make(map[string]int, len(cols)),
		mIdx:     make(map[string]int, len(pat.measures)),
		mTyp:     mTyp,
		groupSet: make(map[string]bool, len(pat.groupBy)),
		bytes:    estimateBytes(res.Rows),
	}
	for _, name := range p.tables {
		view, ok := snap.Table(name)
		if !ok {
			return nil, fmt.Errorf("snapshot lacks table %q", name)
		}
		en.srcRows[name] = view.NumRows()
	}
	if fv, ok := snap.Table(pat.fact); ok {
		en.factRows = fv.NumRows()
	}
	for i, c := range cols {
		en.layout[c.Name] = i
	}
	for _, am := range pat.measures {
		en.mIdx[am.key()] = en.layout[am.column()]
	}
	for _, g := range pat.groupBy {
		en.groupSet[g] = true
	}
	return en, nil
}

// answer tries to rewrite the planned query onto the coarsest eligible
// materialized aggregate at the snapshot's version. ok is false when
// no aggregate covers the query (or versions mismatch) — the caller
// falls back to the base-fact path.
func (m *MatAgg) answer(e *Engine, p *starPlan, snap *storage.Snapshot) (*Result, bool, error) {
	if m == nil {
		return nil, false, nil
	}
	if p.dice != nil {
		return nil, false, nil
	}
	groupSet := map[string]bool{}
	for _, g := range p.groupBy {
		groupSet[g] = true
	}
	need := make(map[string]bool, len(groupSet))
	for g := range groupSet {
		need[g] = true
	}
	if p.filter != nil {
		for _, id := range expr.Idents(p.filter) {
			need[id] = true
		}
	}
	version := snap.Version()
	m.mu.Lock()
	var best *matEntry
	var bestExact bool
	for _, en := range m.entries {
		if en.pat.fact != p.fact.Name || en.version != version {
			continue
		}
		// Version equality catches every structural change, but direct
		// row appends outside an engine run don't bump it: re-check the
		// entry's source row counts (through the query's snapshot where
		// it covers the table, the live table otherwise — appends only
		// grow tables, so any count drift means the entry is stale and
		// the query falls back to the base path).
		fresh := true
		for name, n := range en.srcRows {
			if view, ok := snap.Table(name); ok {
				if view.NumRows() != n {
					fresh = false
					break
				}
				continue
			}
			live, ok := e.db.Table(name)
			if !ok || live.NumRows() != n {
				fresh = false
				break
			}
		}
		if !fresh {
			continue
		}
		covered := true
		for col := range need {
			if !en.groupSet[col] {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		// Exact granularity: the aggregate's group-by set equals the
		// query's resolved group-by set (column order and duplicates
		// don't matter — projection handles both).
		exact := len(en.pat.groupBy) == len(groupSet)
		if exact {
			for g := range groupSet {
				if !en.groupSet[g] {
					exact = false
					break
				}
			}
		}
		eligible := true
		for _, a := range p.aggs {
			if _, stored := en.mIdx[a.Func+":"+a.Col]; !stored {
				eligible = false
				break
			}
			if !exact && !reaggregable(a.Func, en.mTyp[a.Func+":"+a.Col]) {
				eligible = false
				break
			}
		}
		if !eligible {
			continue
		}
		// Coarsest usable aggregate: fewest rows; deterministic
		// tie-break on the pattern key.
		if best == nil || en.rows < best.rows || (en.rows == best.rows && en.pat.key < best.pat.key) {
			best, bestExact = en, exact
		}
	}
	if best == nil {
		m.misses++
		m.mu.Unlock()
		return nil, false, nil
	}
	if bestExact {
		m.hits++
	} else {
		m.rewrites++
	}
	m.mu.Unlock()
	res, err := rewriteOnto(best, p, bestExact)
	if err != nil {
		return nil, false, err
	}
	return res, true, nil
}

// rewriteOnto answers the planned query from a materialized aggregate:
// filter (group-key predicates commute with aggregation), then either
// project (exact granularity) or re-aggregate with the engine kernels,
// and finally sort with the shared plan's order — the same kernels and
// sort the base path uses, which is what keeps served answers
// byte-identical to the oracle.
func rewriteOnto(en *matEntry, p *starPlan, exact bool) (*Result, error) {
	rows := valueRows(en.table.ReadBatch(0, en.rows))
	if p.filter != nil {
		env := expr.NewSliceEnv(en.layout)
		ev := env.Env()
		kept := make([][]expr.Value, 0, len(rows))
		for _, row := range rows {
			env.Bind(row)
			ok, err := expr.EvalBool(p.filter, ev)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	var out [][]expr.Value
	if exact {
		proj := make([]int, 0, len(p.groupBy)+len(p.aggs))
		for _, g := range p.groupBy {
			proj = append(proj, en.layout[g])
		}
		for _, a := range p.aggs {
			proj = append(proj, en.mIdx[a.Func+":"+a.Col])
		}
		out = make([][]expr.Value, len(rows))
		for i, row := range rows {
			nr := make([]expr.Value, len(proj))
			for k, j := range proj {
				nr[k] = row[j]
			}
			out[i] = nr
		}
	} else {
		groupIdx := make([]int, len(p.groupBy))
		for i, g := range p.groupBy {
			groupIdx[i] = en.layout[g]
		}
		aggs := make([]xlm.AggSpec, len(p.aggs))
		aggIdx := make([]int, len(p.aggs))
		for i, a := range p.aggs {
			fn := a.Func
			if fn == "COUNT" {
				fn = "SUM" // second fold of a count is a sum of counts
			}
			aggs[i] = xlm.AggSpec{Out: a.Out, Func: fn, Col: "partial"}
			aggIdx[i] = en.mIdx[a.Func+":"+a.Col]
		}
		agg, err := engine.NewHashAggregator(groupIdx, aggs, aggIdx)
		if err != nil {
			return nil, err
		}
		if err := agg.Add(rows); err != nil {
			return nil, err
		}
		out = agg.Result()
	}
	sortIdx := make([]int, len(p.groupBy))
	for i := range sortIdx {
		sortIdx[i] = i
	}
	out = engine.SortRowsBy(out, sortIdx)
	return &Result{Columns: p.resultColumns(), Rows: out}, nil
}
