package olap_test

// End-to-end proof of the benefit-aware admission model over real
// TPC-H data, guarded by the byte-identity oracle: the covering
// aggregate that FREQUENCY-ONLY admission would have evicted (the
// pre-benefit policy materialized the top-K hottest patterns and
// nothing else) is materialized and served, while the hotter
// low-benefit pattern loses its slot and falls back to the base path
// — with every answer byte-identical to QueryStarFlow either way.

import (
	"testing"

	"quarry/internal/olap"
	"quarry/internal/tpch"
)

// benefitQueries returns the two competing patterns: "hot" groups by
// p_name (near-fact cardinality — fan-in ≈ a handful of rows per
// group, so the aggregate saves almost nothing) and "cool" groups by
// n_name (the deployed revenue fact holds a single nation, so the
// aggregate collapses the whole fact into one row — maximal fan-in).
func benefitQueries() (hot, cool olap.CubeQuery) {
	hot = olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"p_name"},
		Measures: []olap.MeasureSpec{{Out: "n", Func: "COUNT", Col: ""}},
	}
	cool = olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"n_name"},
		Measures: []olap.MeasureSpec{{Out: "n", Func: "COUNT", Col: ""}},
	}
	return hot, cool
}

// TestMatAggBenefitBeatsFrequency is the admission regression test of
// the ISSUE's acceptance criteria: with ONE materialization slot, the
// query log is trained so the low-benefit pattern is strictly hotter
// (6 observations vs 3). Frequency-only admission kept the hottest
// pattern, evicting the covering high-fan-in aggregate; benefit-aware
// admission must keep the high-fan-in one, serve it on the fast path,
// and still answer both queries byte-identically to the oracle.
func TestMatAggBenefitBeatsFrequency(t *testing.T) {
	p, _ := platformWith(t, 3, 42, tpch.RevenueRequirement())
	base, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	m := olap.NewMatAgg(1) // one slot: admission has to choose
	e := base.WithMatAgg(m)
	hot, cool := benefitQueries()
	for i := 0; i < 6; i++ {
		if _, err := e.Query(hot); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Query(cool); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.Refresh(e)
	if err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if rep.Materialized != 1 {
		t.Fatalf("materialized %d aggregates, want exactly 1 (report %+v)", rep.Materialized, rep)
	}
	if rep.Evicted == 0 {
		t.Fatalf("no candidate was evicted; admission never had to choose (report %+v)", rep)
	}
	st := m.Stats()
	if st.BenefitEvicted == 0 {
		t.Fatalf("BenefitEvicted not counted: %+v", st)
	}

	// The cool (high-fan-in) query must be served from its aggregate…
	fast, err := e.Query(cool)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.QueryStarFlow(cool)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "benefit-admitted aggregate", fast, oracle)
	if got := m.Stats().Hits; got != st.Hits+1 {
		t.Fatalf("high-benefit query not served from its aggregate: hits %d → %d", st.Hits, got)
	}

	// …while the hot low-benefit query falls back to the base path,
	// still byte-identical.
	before := m.Stats()
	fast, err = e.Query(hot)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err = e.QueryStarFlow(hot)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "evicted pattern fallback", fast, oracle)
	after := m.Stats()
	if after.Hits != before.Hits || after.Rewrites != before.Rewrites {
		t.Fatalf("evicted pattern was somehow served: %+v → %+v", before, after)
	}
	if after.Misses != before.Misses+1 {
		t.Fatalf("fallback not counted as a miss: %+v", after)
	}
}

// TestMatAggBudgetAdmission: a byte budget sized for the small
// aggregate only must admit it (benefit per byte) and reject the
// large one, keeping MaterializedBytes within budget — and the served
// answer stays byte-identical to the oracle.
func TestMatAggBudgetAdmission(t *testing.T) {
	p, _ := platformWith(t, 3, 42, tpch.RevenueRequirement())
	base, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	const budget = 2048 // fits the one-row n_name aggregate, not the p_name one
	m := olap.NewMatAggBudget(8, budget)
	e := base.WithMatAgg(m)
	hot, cool := benefitQueries()
	for i := 0; i < 6; i++ {
		if _, err := e.Query(hot); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Query(cool); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Refresh(e); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	st := m.Stats()
	if st.BudgetBytes != budget {
		t.Fatalf("BudgetBytes = %d, want %d", st.BudgetBytes, budget)
	}
	if st.Materialized == 0 {
		t.Fatalf("budget admitted nothing: %+v", st)
	}
	if st.MaterializedBytes > budget {
		t.Fatalf("MaterializedBytes %d exceeds budget %d: %+v", st.MaterializedBytes, budget, st)
	}
	if st.BenefitEvicted == 0 {
		t.Fatalf("oversized candidate not evicted: %+v", st)
	}
	fast, err := e.Query(cool)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.QueryStarFlow(cool)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "budget-admitted aggregate", fast, oracle)
	if got := m.Stats().Hits; got != st.Hits+1 {
		t.Fatalf("budget-admitted aggregate not served: hits %d → %d", st.Hits, got)
	}
}
