package olap

// Internal regression tests for the saturated query-log hot path:
// running-min eviction candidate + epoch-based lazy decay
// (ROADMAP admission-cost hole (b)). These pin the semantics the old
// O(cap)-per-rejection implementation had — colder newcomers bounce,
// persistent newcomers are admitted after bounded decay, eviction
// always picks the true coldest pattern — while the new
// implementation does constant work per rejection under the store
// mutex.

import (
	"fmt"
	"testing"
)

// bump is a test shorthand for a locked bumpLocked call with a
// fact-only pattern (distinct fact → distinct pattern key).
func (m *MatAgg) bump(fact string, w float64) {
	m.mu.Lock()
	m.bumpLocked(fact, nil, nil, w)
	m.mu.Unlock()
}

func (m *MatAgg) hasPattern(fact string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.patterns[patternKey(fact, nil, nil)]
	return ok
}

func (m *MatAgg) logSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.patterns)
}

func fillLog(m *MatAgg, w float64) {
	for i := 0; i < maxPatterns; i++ {
		m.bump(fmt.Sprintf("f%04d", i), w)
	}
}

// TestSaturatedLogLazyDecayAdmitsShiftedWorkload: a newcomer colder
// than everything kept is rejected, but each rejection ages the log
// one decay step, so a persistently re-observed pattern is admitted
// after a bounded number of attempts — the exact semantics of the old
// full-map decay, now via the epoch counter.
func TestSaturatedLogLazyDecayAdmitsShiftedWorkload(t *testing.T) {
	m := NewMatAgg(4)
	fillLog(m, 5)
	if got := m.logSize(); got != maxPatterns {
		t.Fatalf("log size %d, want %d", got, maxPatterns)
	}

	m.bump("newcomer", 1)
	if m.hasPattern("newcomer") {
		t.Fatal("colder newcomer admitted into a full hot log")
	}
	if got := m.logSize(); got != maxPatterns {
		t.Fatalf("rejection changed log size to %d", got)
	}

	// 5·0.95^k drops below 1 at k = 32, so the newcomer must get in
	// on the 33rd attempt (the first attempt above already aged the
	// log once).
	attempts := 1
	for ; attempts < 100 && !m.hasPattern("newcomer"); attempts++ {
		m.bump("newcomer", 1)
	}
	if !m.hasPattern("newcomer") {
		t.Fatal("persistent newcomer never admitted (lazy decay not applied)")
	}
	if attempts < 30 || attempts > 40 {
		t.Fatalf("newcomer admitted after %d attempts, want ~33 (decay schedule drifted)", attempts)
	}
	if got := m.logSize(); got != maxPatterns {
		t.Fatalf("admission changed log size to %d, want %d", got, maxPatterns)
	}
}

// TestSaturatedLogRunningMinSurvivesBumps: bumping the current
// coldest pattern degrades the running min to a lower bound; the next
// admission decision must rescan and evict the TRUE coldest pattern,
// never the one that just warmed up.
func TestSaturatedLogRunningMinSurvivesBumps(t *testing.T) {
	m := NewMatAgg(4)
	fillLog(m, 5)
	m.bump("cold", 1) // admitted? no — log is full and 1 < 5
	if m.hasPattern("cold") {
		t.Fatal("setup: cold pattern should have been rejected")
	}
	// Rebuild with an actually-cold resident entry.
	m.Invalidate()
	for i := 0; i < maxPatterns-1; i++ {
		m.bump(fmt.Sprintf("f%04d", i), 5)
	}
	m.bump("cold", 1)
	if !m.hasPattern("cold") {
		t.Fatal("setup: log not full yet, cold must be admitted")
	}

	// The coldest entry warms past everything else: the running min
	// is now stale (a lower bound).
	m.bump("cold", 10)

	// A newcomer between the bound (1) and the true minimum (5) must
	// be rejected — the rescan finds the true minimum.
	m.bump("mid", 2)
	if m.hasPattern("mid") {
		t.Fatal("newcomer below the true minimum admitted off a stale bound")
	}

	// A newcomer above the true minimum must evict one of the
	// weight-5 entries — not the warmed-up former minimum.
	m.bump("hot", 6)
	if !m.hasPattern("hot") {
		t.Fatal("hotter newcomer rejected")
	}
	if !m.hasPattern("cold") {
		t.Fatal("eviction removed the warmed-up pattern instead of the true coldest")
	}
	if got := m.logSize(); got != maxPatterns {
		t.Fatalf("log size %d after eviction, want %d", got, maxPatterns)
	}
}

// TestSaturatedLogMinDroppedByRefresh: Refresh removes patterns that
// stopped planning (dropPatternLocked). When the removed pattern is
// the running-min candidate, a later at-cap admission must rescan —
// naively "evicting" the missing key would be a no-op and the log
// would grow past maxPatterns.
func TestSaturatedLogMinDroppedByRefresh(t *testing.T) {
	m := NewMatAgg(4)
	for i := 0; i < maxPatterns-1; i++ {
		m.bump(fmt.Sprintf("f%04d", i), 5)
	}
	m.bump("cold", 1) // fills the log; exact running min

	m.mu.Lock()
	if m.minKey != patternKey("cold", nil, nil) {
		m.mu.Unlock()
		t.Fatal("setup: running min is not the cold pattern")
	}
	m.dropPatternLocked(patternKey("cold", nil, nil))
	m.mu.Unlock()

	m.bump("refill", 5) // back to cap through the below-cap path
	m.bump("hot", 6)    // at cap: must evict a real pattern, not the ghost
	if !m.hasPattern("hot") {
		t.Fatal("hot newcomer rejected")
	}
	if got := m.logSize(); got > maxPatterns {
		t.Fatalf("log grew to %d, cap is %d (ghost eviction)", got, maxPatterns)
	}
}

// BenchmarkSaturatedLogRejection measures the hot path the fix
// targets: a full log rejecting a stream of distinct cold newcomers
// (the old implementation paid an O(cap) scan plus a full-map decay
// per rejection under the serving mutex).
func BenchmarkSaturatedLogRejection(b *testing.B) {
	m := NewMatAgg(4)
	fillLog(m, 1e9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%256 == 0 {
			// Un-age the log (O(1)): every pattern and the running min
			// were stamped at epoch 0, so resetting the epoch restores
			// the exact post-fill heat. Without it the lazy decay would
			// drop the residents below the newcomers after ~400
			// rejections and the loop would measure admissions instead.
			m.mu.Lock()
			m.epoch, m.minEpoch = 0, 0
			m.mu.Unlock()
		}
		m.bump(fmt.Sprintf("n%09d", i), 1)
	}
}
