package olap_test

import (
	"math/rand"
	"sync"
	"testing"

	"quarry/internal/olap"
	"quarry/internal/tpch"
)

// matAggEngine returns the platform's OLAP engine with a fresh
// materialized-aggregate store attached.
func matAggEngine(t *testing.T, sf float64, seed int64) (*olap.Engine, *olap.MatAgg) {
	t.Helper()
	p, _ := platformWith(t, sf, seed, tpch.RevenueRequirement())
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	m := olap.NewMatAgg(16)
	return e.WithMatAgg(m), m
}

// train records the queries in the store's log and materializes the
// top-K aggregates.
func train(t *testing.T, e *olap.Engine, queries ...olap.CubeQuery) {
	t.Helper()
	for _, q := range queries {
		if _, err := e.Query(q); err != nil {
			t.Fatalf("training query failed (%s): %v", queryString(q), err)
		}
	}
	if _, err := e.MatAgg().Refresh(e); err != nil {
		t.Fatalf("refresh: %v", err)
	}
}

// TestMatAggExactGranularityServed: a repeated query is answered from
// its own materialized aggregate, byte-identical to the oracle — for
// every aggregate function, float SUM and AVG included (exact
// granularity is a projection, not a re-aggregation).
func TestMatAggExactGranularityServed(t *testing.T) {
	e, m := matAggEngine(t, 3, 42)
	q := olap.CubeQuery{
		Fact:    "fact_table_revenue",
		GroupBy: []string{"p_brand"},
		RollUp:  map[string]string{"Supplier": "Nation"},
		Measures: []olap.MeasureSpec{
			{Out: "total", Func: "SUM", Col: "revenue"},
			{Out: "avg", Func: "AVG", Col: "revenue"},
			{Out: "n", Func: "COUNT", Col: ""},
		},
	}
	train(t, e, q)
	before := m.Stats()
	fast, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.QueryStarFlow(q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "exact-granularity hit", fast, oracle)
	after := m.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("query was not served from the aggregate: hits %d → %d (stats %+v)", before.Hits, after.Hits, after)
	}
	if after.Materialized == 0 || after.MaterializedRows == 0 {
		t.Fatalf("nothing materialized: %+v", after)
	}
}

// TestMatAggCoarserRewrite: a query strictly coarser than a
// materialized aggregate re-aggregates the stored partial states —
// allowed only for exactly re-foldable measures (COUNT, MIN, MAX,
// int SUM) — and stays byte-identical to the oracle.
func TestMatAggCoarserRewrite(t *testing.T) {
	e, m := matAggEngine(t, 3, 42)
	fine := olap.CubeQuery{
		Fact:    "fact_table_revenue",
		GroupBy: []string{"p_brand", "n_name"},
		Measures: []olap.MeasureSpec{
			{Out: "n", Func: "COUNT", Col: ""},
			{Out: "min_p", Func: "MIN", Col: "p_retailprice"},
			{Out: "max_b", Func: "MAX", Col: "s_acctbal"},
			{Out: "keys", Func: "SUM", Col: "p_partkey"}, // int SUM: exact second fold
		},
	}
	train(t, e, fine)
	coarse := fine
	coarse.GroupBy = []string{"p_brand"}
	before := m.Stats()
	fast, err := e.Query(coarse)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.QueryStarFlow(coarse)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "coarser rewrite", fast, oracle)
	after := m.Stats()
	if after.Rewrites != before.Rewrites+1 {
		t.Fatalf("coarser query was not rewritten: rewrites %d → %d (stats %+v)", before.Rewrites, after.Rewrites, after)
	}

	// A filtered roll-up whose filter identifiers live in the
	// aggregate's group-by set also rewrites (group-key predicates
	// commute with aggregation).
	filtered := coarse
	filtered.Filter = "n_name = 'SPAIN'"
	fast, err = e.Query(filtered)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err = e.QueryStarFlow(filtered)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "filtered rewrite", fast, oracle)
	if got := m.Stats().Rewrites; got != after.Rewrites+1 {
		t.Fatalf("filtered query was not rewritten: rewrites = %d", got)
	}
}

// TestMatAggFloatSumNeverReaggregated pins the exactness gate: float
// SUM (and AVG) must never be answered by re-aggregating a finer
// aggregate, because a second float fold changes low-order bits.
func TestMatAggFloatSumNeverReaggregated(t *testing.T) {
	e, m := matAggEngine(t, 3, 42)
	fine := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"p_brand", "n_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
	}
	train(t, e, fine)
	coarse := fine
	coarse.GroupBy = []string{"p_brand"}
	before := m.Stats()
	fast, err := e.Query(coarse)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.QueryStarFlow(coarse)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "float SUM fallback", fast, oracle)
	after := m.Stats()
	if after.Hits != before.Hits || after.Rewrites != before.Rewrites {
		t.Fatalf("float SUM was served from an aggregate: %+v → %+v", before, after)
	}
	if after.Misses != before.Misses+1 {
		t.Fatalf("fallback not counted as miss: %+v", after)
	}
}

// TestMatAggHierarchyDerivedLevels: recording a query at one hierarchy
// level also registers its coarser lattice neighbours (Supplier →
// Nation → Region), so a later roll-up query finds an aggregate at its
// exact granularity — float SUM included.
func TestMatAggHierarchyDerivedLevels(t *testing.T) {
	e, m := matAggEngine(t, 3, 42)
	bySupplier := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"s_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
	}
	train(t, e, bySupplier)
	for _, level := range []string{"Nation", "Region"} {
		q := olap.CubeQuery{
			Fact:     "fact_table_revenue",
			RollUp:   map[string]string{"Supplier": level},
			Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
		}
		before := m.Stats()
		fast, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := e.QueryStarFlow(q)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "derived level "+level, fast, oracle)
		if got := m.Stats().Hits; got != before.Hits+1 {
			t.Fatalf("roll-up to %s not served from its derived aggregate (hits %d → %d)", level, before.Hits, got)
		}
	}
}

// TestMatAggStaleVersionNeverServed: a warehouse republish bumps the
// DB version, making every existing aggregate unservable until the
// next Refresh — queries silently fall back to the base-fact path.
func TestMatAggStaleVersionNeverServed(t *testing.T) {
	p, _ := platformWith(t, 3, 42, tpch.RevenueRequirement())
	base, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	m := olap.NewMatAgg(8)
	e := base.WithMatAgg(m)
	q := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"p_brand"},
		Measures: []olap.MeasureSpec{{Out: "n", Func: "COUNT", Col: ""}},
	}
	train(t, e, q)
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Hits; got != 1 {
		t.Fatalf("warm-up hit count = %d, want 1", got)
	}
	// Republish: deterministic regeneration, but a NEW version.
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	fast, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.QueryStarFlow(q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "post-republish fallback", fast, oracle)
	after := m.Stats()
	if after.Hits != before.Hits || after.Rewrites != before.Rewrites {
		t.Fatalf("stale aggregate served after republish: %+v → %+v", before, after)
	}
	// Refresh rebuilds at the new version; hits resume.
	if _, err := m.Refresh(e); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Hits; got != after.Hits+1 {
		t.Fatalf("refreshed aggregate not served: hits = %d", got)
	}
}

// TestMatAggDirectAppendInvalidates: direct row appends to a deployed
// table do NOT bump the DB version (only engine runs do), so the
// version check alone would serve a stale aggregate. The store
// re-checks source row counts — after an append the query must fall
// back to the base path and match the oracle over the grown table.
func TestMatAggDirectAppendInvalidates(t *testing.T) {
	p, db := platformWith(t, 3, 42, tpch.RevenueRequirement())
	base, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	m := olap.NewMatAgg(8)
	e := base.WithMatAgg(m)
	q := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"p_brand"},
		Measures: []olap.MeasureSpec{{Out: "n", Func: "COUNT", Col: ""}},
	}
	train(t, e, q)
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Hits; got != 1 {
		t.Fatalf("warm-up hit count = %d, want 1", got)
	}
	// Duplicate an existing fact row straight into the live table —
	// valid by construction, COUNT visibly changes, version does not.
	fact, ok := db.Table("fact_table_revenue")
	if !ok {
		t.Fatal("deployed fact table missing")
	}
	vBefore := db.Version()
	if err := fact.Insert(fact.Rows()[0]); err != nil {
		t.Fatal(err)
	}
	if got := db.Version(); got != vBefore {
		t.Fatalf("direct append bumped version %d → %d; test premise broken", vBefore, got)
	}
	before := m.Stats()
	fast, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.QueryStarFlow(q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "post-append fallback", fast, oracle)
	after := m.Stats()
	if after.Hits != before.Hits || after.Rewrites != before.Rewrites {
		t.Fatalf("stale aggregate served after direct append: %+v → %+v", before, after)
	}
}

// TestMatAggDimCache: with a store attached, dimension build sides are
// cached across queries at the same version and dropped on republish.
func TestMatAggDimCache(t *testing.T) {
	p, _ := platformWith(t, 3, 42, tpch.RevenueRequirement())
	base, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	m := olap.NewMatAgg(8)
	e := base.WithMatAgg(m)
	// Dicing keeps the query off the aggregate path, so every run
	// exercises the join build phase.
	q := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"p_brand"},
		Measures: []olap.MeasureSpec{{Out: "n", Func: "COUNT", Col: ""}},
		Dice:     &olap.DiceSpec{Func: "COUNT", Thresholds: map[string]float64{"p_brand": 1}},
	}
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.DimCacheMisses == 0 {
		t.Fatalf("first query should miss the build-side cache: %+v", st)
	}
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	st2 := m.Stats()
	if st2.DimCacheHits <= st.DimCacheHits {
		t.Fatalf("second query did not reuse the build side: %+v → %+v", st, st2)
	}
	oracle, err := e.QueryStarFlow(q)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "cached build side", cached, oracle)
	// Republish drops the cached build sides (version mismatch).
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	st3 := m.Stats()
	if st3.DimCacheMisses <= st2.DimCacheMisses {
		t.Fatalf("post-republish query did not rebuild the build side: %+v → %+v", st2, st3)
	}
}

// TestQuickMatAggMatchesOracle is the acceptance quick-check: random
// cube queries against a store trained on the same workload must be
// byte-identical to QueryStarFlow, whether they were served from a
// materialized aggregate or fell back — and a healthy share must
// actually be served from aggregates.
func TestQuickMatAggMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-check in -short mode")
	}
	for _, seed := range []int64{11, 4242} {
		e, m := matAggEngine(t, 3, seed)
		r := rand.New(rand.NewSource(seed * 17))
		queries := make([]olap.CubeQuery, 0, 30)
		for i := 0; i < 30; i++ {
			queries = append(queries, randomQuery(r))
		}
		// Train: run the whole workload once, then materialize.
		for _, q := range queries {
			_, _ = e.Query(q) // invalid combinations simply fail; the log keeps the rest
		}
		if _, err := m.Refresh(e); err != nil {
			t.Fatalf("seed %d: refresh: %v", seed, err)
		}
		for i, q := range queries {
			fast, errF := e.Query(q)
			oracle, errO := e.QueryStarFlow(q)
			if (errF == nil) != (errO == nil) {
				t.Fatalf("seed %d query %d: fast err=%v oracle err=%v (%s)", seed, i, errF, errO, queryString(q))
			}
			if errF != nil {
				continue
			}
			assertIdentical(t, queryString(q), fast, oracle)
		}
		st := m.Stats()
		if st.Hits+st.Rewrites == 0 {
			t.Fatalf("seed %d: no query was served from a materialized aggregate: %+v", seed, st)
		}
	}
}

// TestMatAggConcurrentRefreshAndQueries exercises the locking
// discipline under -race: queries, refreshes and warehouse republishes
// all run concurrently, and every answer must match the oracle (the
// regenerated data is deterministic, so there is exactly one correct
// answer at every version).
func TestMatAggConcurrentRefreshAndQueries(t *testing.T) {
	p, _ := platformWith(t, 2, 42, tpch.RevenueRequirement())
	base, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	m := olap.NewMatAgg(8)
	e := base.WithMatAgg(m)
	q := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"p_brand"},
		RollUp:   map[string]string{"Supplier": "Nation"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}, {Out: "n", Func: "COUNT", Col: ""}},
	}
	canonical, err := e.QueryStarFlow(q)
	if err != nil {
		t.Fatal(err)
	}
	train(t, e, q)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // republisher
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := p.Run(); err != nil {
				t.Errorf("republish: %v", err)
				return
			}
		}
		close(stop)
	}()
	go func() { // refresher
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := m.Refresh(e); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
		}
	}()
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				res, err := e.Query(q)
				if err != nil {
					errs <- err.Error()
					return
				}
				got, want := encodeResult(res), encodeResult(canonical)
				if len(got) != len(want) {
					errs <- "row count diverged"
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs <- "answer diverged from canonical (stale or torn aggregate?)"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
