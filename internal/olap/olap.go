// Package olap is Quarry's serving layer: it answers analytical
// (OLAP) cube queries over the deployed data warehouse — the
// consumption side of the lifecycle, motivating the paper's §1
// argument that the whole point of a well-designed MD schema is
// faster analytical reads.
//
// A CubeQuery names a fact of the unified MD schema, the dimension
// descriptors to group by (at any roll-up level of the xMD
// hierarchies), slicer predicates, aggregated measures, and an
// optional diamond dice. Two executors answer it:
//
//   - Query — the vectorized fast path: the star join
//     (fact ⋈ dimensions) and hash aggregation are planned and executed
//     directly over storage snapshot cursors using the engine's batch
//     kernels. No xLM design is constructed and nothing is written to
//     the warehouse; results stay in memory per request, so any number
//     of queries run concurrently with each other and with ETL loads
//     (snapshot isolation: each query reads the stable view captured
//     at its start).
//   - QueryStarFlow — the correctness oracle: the query is compiled to
//     an xLM star flow (exactly the PR 1 pattern of RunMaterializing)
//     and run by the full engine against a scratch database that
//     shares frozen snapshot views of the deployed tables. Results are
//     byte-identical to the fast path; the scratch DB keeps the oracle
//     from ever writing into the warehouse.
//
// Both executors resolve the query through one shared planner
// (planner.go), which is what makes them byte-identical by
// construction: same join order, same row order into aggregation,
// same kernels. That includes MIN/MAX over every ordered type —
// strings lexicographically, bools false<true, via
// expr.Value.Compare: the xLM validator accepts them like the fast
// path does, so the oracle can always replay a servable query.
//
// A third answer source sits in front of both when enabled: the
// adaptive materialized-aggregate store (matagg.go) observes the
// query log, materializes the hottest granularities into detached
// DB-version-keyed tables, and rewrites covered queries onto the
// coarsest usable aggregate — still byte-identical, because rewrites
// are pure projections or exactness-gated re-aggregations through
// the same kernels. Every republish bumps the DB version and thereby
// invalidates all of it implicitly.
//
// The layer reads the warehouse exclusively through
// storage.Snapshot/TableView cursors, so it is oblivious to the
// storage backend: in-memory and paged disk-backed warehouses serve
// identically (the cursors page through the disk store's buffer pool).
package olap

import (
	"context"
	"fmt"
	"sort"

	"quarry/internal/expr"
	"quarry/internal/sqlgen"
	"quarry/internal/storage"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
)

// CubeQuery is an analytical query over a deployed fact table.
type CubeQuery struct {
	// Fact is the fact table name (e.g. "fact_table_revenue").
	Fact string
	// GroupBy lists dimension descriptor columns to group by (must
	// exist in one of the fact's dimension tables or in the fact
	// itself). Descriptors of any roll-up level may be named directly;
	// the deployed dimension tables are denormalised over their full
	// hierarchy.
	GroupBy []string
	// Measures maps output names to aggregate specs over fact or
	// dimension columns, e.g. {"total": {"SUM", "revenue"}}.
	Measures []MeasureSpec
	// Filter is an optional predicate over fact or dimension columns.
	Filter string
	// RollUp maps an xMD dimension name to the hierarchy level to
	// aggregate at (e.g. {"Supplier": "Nation"}); each named level's
	// key descriptor joins the group-by columns. Engine.RollUp and
	// Engine.DrillDown navigate a query along the hierarchy.
	RollUp map[string]string
	// Dice, when non-nil, applies a diamond dice (Webb, Kaser,
	// Lemire) to the detail rows before aggregation: attribute values
	// whose carat falls below their threshold are iteratively pruned
	// until the remaining subcube is stable.
	Dice *DiceSpec
}

// MeasureSpec is one aggregated measure.
type MeasureSpec struct {
	Out  string
	Func string // SUM/AVG/MIN/MAX/COUNT
	Col  string // input column ("" only for COUNT(*))
}

// DiceSpec configures a diamond dice. The carat of an attribute value
// is the aggregate (COUNT of rows, or SUM of a non-negative measure
// column) over the detail rows currently carrying that value.
type DiceSpec struct {
	// Func is the carat aggregate: "COUNT" or "SUM". Diamond dicing
	// requires a monotone carat (deleting rows must never raise
	// another value's carat), hence SUM demands non-negative values.
	Func string
	// Col is the measure column for SUM carats ("" for COUNT).
	Col string
	// Thresholds maps group-by columns to their minimum carat; only
	// listed columns are diced.
	Thresholds map[string]float64
}

// Answer-source classes, stamped on Result.Class by whichever
// executor produced the answer. The serving layer's admission
// controller keys its per-class service-time estimates on these, so
// they must stay stable: an unknown class falls back to the
// fast-path estimate.
const (
	// ClassFast is the vectorized base-fact fast path.
	ClassFast = "fast"
	// ClassMatAgg is a rewrite onto a materialized aggregate.
	ClassMatAgg = "matagg"
	// ClassDice is a diamond-dice query (iterative fixpoint over
	// buffered detail rows — the expensive shape).
	ClassDice = "dice"
	// ClassOracle is the star-flow reference executor.
	ClassOracle = "oracle"
	// ClassCacheHit is stamped by the serving layer when an answer
	// comes straight from the result cache; the executors never
	// produce it.
	ClassCacheHit = "cache_hit"
)

// Result is an ordered, in-memory result set.
type Result struct {
	Columns []string
	Rows    [][]expr.Value
	// Version is the warehouse structural version of the snapshot the
	// query actually ran against. Callers caching results keyed by
	// version MUST key on this — not on a version read before
	// executing, which a concurrent ETL commit can leave one behind
	// the snapshot the query observed.
	Version uint64
	// Class names the answer source (Class* constants): which executor
	// path produced the rows. Costs differ by orders of magnitude
	// across classes, so the serving layer tracks service times and
	// sheds load per class.
	Class string
}

// Engine answers cube queries against a database holding a deployed
// design. It is immutable after New and safe for concurrent use.
type Engine struct {
	md   *xmd.Schema
	etl  *xlm.Design
	db   *storage.DB
	defs []sqlgen.TableDef
	// mat, when set, is the materialized-aggregate store (plus the
	// per-dimension build-side cache) consulted by the fast path; see
	// matagg.go. The oracle never uses it.
	mat *MatAgg
	// rollupParents maps a level's key descriptor to its direct parent
	// levels' key descriptors across every xMD hierarchy, precomputed
	// once (the schema is immutable) for the query-log recorder's
	// lattice derivation on the serving hot path.
	rollupParents map[string][]string
}

// New builds an OLAP engine over the unified design and the database
// that Platform.Run populated.
func New(md *xmd.Schema, etl *xlm.Design, db *storage.DB) (*Engine, error) {
	if md == nil || etl == nil || db == nil {
		return nil, fmt.Errorf("olap: md, etl and db are required")
	}
	defs, err := sqlgen.Tables(etl)
	if err != nil {
		return nil, fmt.Errorf("olap: deriving deployed tables: %w", err)
	}
	parents := map[string][]string{}
	for _, d := range md.Dimensions {
		for _, r := range d.Rollups {
			from, okF := d.Level(r.From)
			to, okT := d.Level(r.To)
			if !okF || !okT || from.Key == "" || to.Key == "" {
				continue
			}
			parents[from.Key] = append(parents[from.Key], to.Key)
		}
	}
	return &Engine{md: md, etl: etl, db: db, defs: defs, rollupParents: parents}, nil
}

// tableOf returns the deployed definition of a table.
func (e *Engine) tableOf(name string) (*sqlgen.TableDef, error) {
	for i := range e.defs {
		if e.defs[i].Name == name {
			return &e.defs[i], nil
		}
	}
	return nil, fmt.Errorf("olap: table %q is not part of the deployed design", name)
}

// WithMatAgg returns a copy of the engine that records its query log
// into — and answers eligible queries from — the given materialized
// aggregate store (nil detaches). The store outlives engine rebuilds:
// entries are keyed by DB version, so a warehouse republish makes
// them unservable until the store's next Refresh.
func (e *Engine) WithMatAgg(m *MatAgg) *Engine {
	ne := *e
	ne.mat = m
	return &ne
}

// MatAgg returns the attached materialized-aggregate store, if any.
func (e *Engine) MatAgg() *MatAgg { return e.mat }

// Query answers the cube query on the vectorized fast path: star join
// and hash aggregation directly over a storage snapshot, entirely in
// memory — or, when a materialized aggregate of the right granularity
// and version exists, by rewriting onto it (see matagg.go). See
// QueryStarFlow for the engine-executed oracle.
func (e *Engine) Query(q CubeQuery) (*Result, error) {
	return e.QueryContext(context.Background(), q)
}

// QueryContext is Query under a context: cancellation stops the scan
// at the next batch boundary and returns ctx.Err(). The serving layer
// passes the request context so a disconnected client's query stops
// burning its concurrency slot.
func (e *Engine) QueryContext(ctx context.Context, q CubeQuery) (*Result, error) {
	p, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	snap, err := e.db.Snapshot(p.tables...)
	if err != nil {
		return nil, err
	}
	return e.answerPlanned(ctx, p, snap)
}

// QuerySnapshot answers the query on the fast path against an
// existing snapshot (which must cover the fact and dimension tables
// the query touches). Callers that answer several queries from one
// consistent view — or cache results keyed by Snapshot.Version —
// take their snapshot once and reuse it.
func (e *Engine) QuerySnapshot(q CubeQuery, snap *storage.Snapshot) (*Result, error) {
	p, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	return e.answerPlanned(context.Background(), p, snap)
}

// answerPlanned records the planned query in the aggregate store's
// log, serves it from the coarsest eligible materialized aggregate,
// and otherwise falls back to the base-fact fast path.
func (e *Engine) answerPlanned(ctx context.Context, p *starPlan, snap *storage.Snapshot) (*Result, error) {
	if e.mat != nil {
		e.mat.record(e, p)
		res, ok, err := e.mat.answer(e, p, snap)
		if err != nil {
			return nil, err
		}
		if ok {
			res.Version = snap.Version()
			res.Class = ClassMatAgg
			return res, nil
		}
	}
	return e.execFast(ctx, p, snap)
}

// Snapshot captures the consistent view the query would read:
// the fact table plus every dimension table the plan joins.
func (e *Engine) Snapshot(q CubeQuery) (*storage.Snapshot, error) {
	p, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	return e.db.Snapshot(p.tables...)
}

// Facts lists the queryable fact tables of the design.
func (e *Engine) Facts() []string {
	var out []string
	for _, f := range e.md.Facts {
		out = append(out, f.Name)
	}
	sort.Strings(out)
	return out
}

// Levels returns a dimension's hierarchy as level names ordered base
// → coarsest (breadth-first over the roll-up edges).
func (e *Engine) Levels(dimension string) ([]string, error) {
	d, ok := e.md.Dimension(dimension)
	if !ok {
		return nil, fmt.Errorf("olap: unknown dimension %q", dimension)
	}
	bases := d.BaseLevels()
	var out []string
	seen := map[string]bool{}
	var queue []string
	for _, b := range bases {
		queue = append(queue, b.Name)
		seen[b.Name] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, r := range d.Rollups {
			if r.From == cur && !seen[r.To] {
				seen[r.To] = true
				queue = append(queue, r.To)
			}
		}
	}
	return out, nil
}

// currentLevel resolves the level a query aggregates a dimension at:
// the explicit RollUp entry, or the fact's base level for the
// dimension.
func (e *Engine) currentLevel(q CubeQuery, dimension string) (string, *xmd.Dimension, error) {
	d, ok := e.md.Dimension(dimension)
	if !ok {
		return "", nil, fmt.Errorf("olap: unknown dimension %q", dimension)
	}
	if lvl, ok := q.RollUp[dimension]; ok {
		if _, ok := d.Level(lvl); !ok {
			return "", nil, fmt.Errorf("olap: dimension %q has no level %q", dimension, lvl)
		}
		return lvl, d, nil
	}
	bases := d.BaseLevels()
	if len(bases) == 0 {
		return "", nil, fmt.Errorf("olap: dimension %q has no base level", dimension)
	}
	return bases[0].Name, d, nil
}

// withLevel returns a copy of q aggregating dimension at level.
func withLevel(q CubeQuery, dimension, level string) CubeQuery {
	ru := make(map[string]string, len(q.RollUp)+1)
	for k, v := range q.RollUp {
		ru[k] = v
	}
	ru[dimension] = level
	q.RollUp = ru
	return q
}

// RollUp returns a copy of the query aggregating the dimension one
// level coarser along the xMD hierarchy (e.g. Supplier → Nation). It
// fails at the top of the hierarchy or if the roll-up is ambiguous
// (branching hierarchies need an explicit RollUp entry).
func (e *Engine) RollUp(q CubeQuery, dimension string) (CubeQuery, error) {
	cur, d, err := e.currentLevel(q, dimension)
	if err != nil {
		return q, err
	}
	var next string
	for _, r := range d.Rollups {
		if r.From != cur {
			continue
		}
		if next != "" {
			return q, fmt.Errorf("olap: dimension %q rolls up from %q to both %q and %q; set RollUp explicitly", dimension, cur, next, r.To)
		}
		next = r.To
	}
	if next == "" {
		return q, fmt.Errorf("olap: dimension %q is already at its coarsest level %q", dimension, cur)
	}
	return withLevel(q, dimension, next), nil
}

// DrillDown returns a copy of the query aggregating the dimension one
// level finer (the inverse of RollUp). It fails at the base level or
// if the drill-down is ambiguous.
func (e *Engine) DrillDown(q CubeQuery, dimension string) (CubeQuery, error) {
	cur, d, err := e.currentLevel(q, dimension)
	if err != nil {
		return q, err
	}
	var prev string
	for _, r := range d.Rollups {
		if r.To != cur {
			continue
		}
		if prev != "" {
			return q, fmt.Errorf("olap: dimension %q drills down from %q to both %q and %q; set RollUp explicitly", dimension, cur, prev, r.From)
		}
		prev = r.From
	}
	if prev == "" {
		return q, fmt.Errorf("olap: dimension %q is already at its base level %q", dimension, cur)
	}
	return withLevel(q, dimension, prev), nil
}
