// Package olap answers analytical (OLAP) queries over the deployed
// data warehouse: the consumption side of the lifecycle, motivating
// the paper's §1 argument that "more complex ETL flows may be
// required to reduce the complexity of an MD schema and improve the
// performance of OLAP queries by pre-aggregating and joining source
// data".
//
// A CubeQuery names a fact of the unified MD schema, the dimension
// descriptors to group by (at any roll-up level), slicer predicates
// and aggregated measures. The query is compiled into an xLM star
// flow over the *deployed* tables (fact ⋈ dimensions) and executed by
// the native engine — the same machinery used to populate the DW,
// now reading from it.
package olap

import (
	"fmt"
	"sort"
	"strings"

	"quarry/internal/engine"
	"quarry/internal/expr"
	"quarry/internal/sqlgen"
	"quarry/internal/storage"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
)

// CubeQuery is an analytical query over a deployed fact table.
type CubeQuery struct {
	// Fact is the fact table name (e.g. "fact_table_revenue").
	Fact string
	// GroupBy lists dimension descriptor columns to group by (must
	// exist in one of the fact's dimension tables or in the fact
	// itself).
	GroupBy []string
	// Measures maps output names to aggregate specs over fact
	// columns, e.g. {"total": {"SUM", "revenue"}}.
	Measures []MeasureSpec
	// Filter is an optional predicate over fact or dimension columns.
	Filter string
}

// MeasureSpec is one aggregated measure.
type MeasureSpec struct {
	Out  string
	Func string // SUM/AVG/MIN/MAX/COUNT
	Col  string
}

// Result is a small, ordered result set.
type Result struct {
	Columns []string
	Rows    [][]expr.Value
}

// Engine compiles and runs cube queries against a database holding a
// deployed design.
type Engine struct {
	md  *xmd.Schema
	etl *xlm.Design
	db  *storage.DB
}

// New builds an OLAP engine over the unified design and the database
// that Platform.Run populated.
func New(md *xmd.Schema, etl *xlm.Design, db *storage.DB) (*Engine, error) {
	if md == nil || etl == nil || db == nil {
		return nil, fmt.Errorf("olap: md, etl and db are required")
	}
	return &Engine{md: md, etl: etl, db: db}, nil
}

// tableOf returns the deployed definition of a table.
func (e *Engine) tableOf(name string) (*sqlgen.TableDef, error) {
	defs, err := sqlgen.Tables(e.etl)
	if err != nil {
		return nil, err
	}
	for i := range defs {
		if defs[i].Name == name {
			return &defs[i], nil
		}
	}
	return nil, fmt.Errorf("olap: table %q is not part of the deployed design", name)
}

// Query compiles the cube query to a star flow over the deployed
// tables and executes it.
func (e *Engine) Query(q CubeQuery) (*Result, error) {
	if len(q.GroupBy) == 0 {
		return nil, fmt.Errorf("olap: query needs at least one group-by column")
	}
	if len(q.Measures) == 0 {
		return nil, fmt.Errorf("olap: query needs at least one measure")
	}
	fact, err := e.tableOf(q.Fact)
	if err != nil {
		return nil, err
	}
	d := xlm.NewDesign("olap_" + q.Fact)
	addTable := func(def *sqlgen.TableDef, nodeName string) error {
		fields := make([]xlm.Field, len(def.Columns))
		copy(fields, def.Columns)
		return d.AddNode(&xlm.Node{
			Name: nodeName, Type: xlm.OpDatastore, Optype: "TableInput",
			Fields: fields,
			Params: map[string]string{"store": "dw", "table": def.Name},
		})
	}
	if err := addTable(fact, "DW_"+q.Fact); err != nil {
		return nil, err
	}
	// Which columns do we need from dimensions?
	needed := map[string]bool{}
	for _, g := range q.GroupBy {
		needed[g] = true
	}
	var filterPred expr.Node
	if q.Filter != "" {
		filterPred, err = expr.Parse(q.Filter)
		if err != nil {
			return nil, fmt.Errorf("olap: filter: %w", err)
		}
		for _, id := range expr.Idents(filterPred) {
			needed[id] = true
		}
	}
	// Join every referenced dimension table.
	cur := "DW_" + q.Fact
	available := map[string]bool{}
	for _, c := range fact.Columns {
		available[c.Name] = true
	}
	joined := map[string]bool{}
	for _, fk := range fact.ForeignKeys {
		if joined[fk.RefTable] {
			continue
		}
		dim, err := e.tableOf(fk.RefTable)
		if err != nil {
			return nil, err
		}
		usesDim := false
		for _, c := range dim.Columns {
			if needed[c.Name] && !available[c.Name] {
				usesDim = true
			}
		}
		if !usesDim {
			continue
		}
		joined[fk.RefTable] = true
		nodeName := "DW_" + fk.RefTable
		if err := addTable(dim, nodeName); err != nil {
			return nil, err
		}
		// Project the dimension side down to the join key (renamed to
		// stay unambiguous) plus the columns the query actually needs.
		keyAlias := "__key_" + fk.RefTable
		projCols := []string{keyAlias + "=" + fk.RefColumn}
		for _, c := range dim.Columns {
			if needed[c.Name] && !available[c.Name] {
				projCols = append(projCols, c.Name)
				available[c.Name] = true
			}
		}
		proj := &xlm.Node{
			Name: "PREP_" + fk.RefTable, Type: xlm.OpProjection,
			Params: map[string]string{"columns": strings.Join(projCols, ",")},
		}
		if err := d.AddNode(proj); err != nil {
			return nil, err
		}
		if err := d.AddEdge(nodeName, proj.Name); err != nil {
			return nil, err
		}
		join := &xlm.Node{
			Name: "JOIN_" + fk.RefTable, Type: xlm.OpJoin,
			Params: map[string]string{"on": fk.Column + "=" + keyAlias},
		}
		if err := d.AddNode(join); err != nil {
			return nil, err
		}
		if err := d.AddEdge(cur, join.Name); err != nil {
			return nil, err
		}
		if err := d.AddEdge(proj.Name, join.Name); err != nil {
			return nil, err
		}
		cur = join.Name
	}
	// Every needed column must now be available.
	var missing []string
	for c := range needed {
		if !available[c] {
			missing = append(missing, c)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("olap: columns %v not reachable from fact %q", missing, q.Fact)
	}
	if filterPred != nil {
		sel := &xlm.Node{
			Name: "FILTER", Type: xlm.OpSelection,
			Params: map[string]string{"predicate": filterPred.String()},
		}
		if err := d.AddNode(sel); err != nil {
			return nil, err
		}
		if err := d.AddEdge(cur, sel.Name); err != nil {
			return nil, err
		}
		cur = sel.Name
	}
	var aggs []string
	for _, m := range q.Measures {
		fn := strings.ToUpper(m.Func)
		switch fn {
		case "SUM", "AVG", "MIN", "MAX", "COUNT":
		default:
			return nil, fmt.Errorf("olap: unknown aggregate %q", m.Func)
		}
		aggs = append(aggs, fmt.Sprintf("%s:%s:%s", m.Out, fn, m.Col))
	}
	agg := &xlm.Node{
		Name: "CUBE", Type: xlm.OpAggregation,
		Params: map[string]string{
			"group":      strings.Join(q.GroupBy, ","),
			"aggregates": strings.Join(aggs, ";"),
		},
	}
	if err := d.AddNode(agg); err != nil {
		return nil, err
	}
	if err := d.AddEdge(cur, agg.Name); err != nil {
		return nil, err
	}
	sortNode := &xlm.Node{
		Name: "ORDER", Type: xlm.OpSort,
		Params: map[string]string{"by": strings.Join(q.GroupBy, ",")},
	}
	if err := d.AddNode(sortNode); err != nil {
		return nil, err
	}
	if err := d.AddEdge(agg.Name, sortNode.Name); err != nil {
		return nil, err
	}
	out := &xlm.Node{
		Name: "ANSWER", Type: xlm.OpLoader, Optype: "TableOutput",
		Params: map[string]string{"table": "__olap_answer", "mode": "replace"},
	}
	if err := d.AddNode(out); err != nil {
		return nil, err
	}
	if err := d.AddEdge(sortNode.Name, out.Name); err != nil {
		return nil, err
	}
	if _, err := engine.Run(d, e.db); err != nil {
		return nil, err
	}
	answer, ok := e.db.Table("__olap_answer")
	if !ok {
		return nil, fmt.Errorf("olap: internal: answer table missing")
	}
	res := &Result{}
	for _, c := range answer.Columns {
		res.Columns = append(res.Columns, c.Name)
	}
	for _, r := range answer.Rows() {
		res.Rows = append(res.Rows, r)
	}
	_ = e.db.Drop("__olap_answer")
	return res, nil
}

// Facts lists the queryable fact tables of the design.
func (e *Engine) Facts() []string {
	var out []string
	for _, f := range e.md.Facts {
		out = append(out, f.Name)
	}
	sort.Strings(out)
	return out
}
