package olap_test

import (
	"strings"
	"testing"

	"quarry/internal/core"
	"quarry/internal/expr"
	"quarry/internal/olap"
	"quarry/internal/storage"
	"quarry/internal/tpch"
)

// deployedPlatform builds a platform, adds the revenue requirement
// and populates the DW.
func deployedPlatform(t *testing.T) (*core.Platform, *storage.DB) {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(5)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, 5, 42); err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return p, db
}

func TestStarQueryOverDeployedDW(t *testing.T) {
	p, db := deployedPlatform(t)
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	if facts := e.Facts(); len(facts) != 1 || facts[0] != "fact_table_revenue" {
		t.Errorf("facts = %v", facts)
	}
	// Total revenue per supplier nation (a roll-up via dim_supplier).
	res, err := e.Query(olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"n_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "n_name" || res.Columns[1] != "total" {
		t.Fatalf("columns = %v", res.Columns)
	}
	// The revenue fact is sliced to SPAIN at ETL time, so all rows
	// roll up to the single nation SPAIN.
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "SPAIN" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Cross-check the total against the fact table itself.
	fact, _ := db.Table("fact_table_revenue")
	rIdx, _ := fact.ColumnIndex("revenue")
	var want float64
	for _, r := range fact.Rows() {
		f, _ := r[rIdx].AsFloat()
		want += f
	}
	got, _ := res.Rows[0][1].AsFloat()
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("total = %v, want %v", got, want)
	}
	// The scratch answer table is cleaned up.
	if _, ok := db.Table("__olap_answer"); ok {
		t.Error("answer table leaked")
	}
}

func TestQueryWithFilterAndMultipleDims(t *testing.T) {
	p, _ := deployedPlatform(t)
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(olap.CubeQuery{
		Fact:    "fact_table_revenue",
		GroupBy: []string{"p_brand", "s_name"},
		Measures: []olap.MeasureSpec{
			{Out: "avg_rev", Func: "AVG", Col: "revenue"},
			{Out: "n", Func: "COUNT", Col: "revenue"},
		},
		Filter: "p_retailprice > 950",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if len(res.Columns) != 4 {
		t.Errorf("columns = %v", res.Columns)
	}
	// Sorted by group columns.
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1][0].AsString(), res.Rows[i][0].AsString()
		if prev > cur {
			t.Fatalf("rows not ordered: %q > %q", prev, cur)
		}
	}
}

func TestQueryGroupByFactColumn(t *testing.T) {
	p, _ := deployedPlatform(t)
	e, _ := p.OLAP()
	// Grouping by a fact column needs no dimension join at all.
	res, err := e.Query(olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"s_suppkey"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestQueryErrors(t *testing.T) {
	p, _ := deployedPlatform(t)
	e, _ := p.OLAP()
	cases := map[string]olap.CubeQuery{
		"no group":       {Fact: "fact_table_revenue", Measures: []olap.MeasureSpec{{Out: "t", Func: "SUM", Col: "revenue"}}},
		"no measures":    {Fact: "fact_table_revenue", GroupBy: []string{"n_name"}},
		"unknown fact":   {Fact: "ghost", GroupBy: []string{"x"}, Measures: []olap.MeasureSpec{{Out: "t", Func: "SUM", Col: "revenue"}}},
		"unknown column": {Fact: "fact_table_revenue", GroupBy: []string{"ghost_col"}, Measures: []olap.MeasureSpec{{Out: "t", Func: "SUM", Col: "revenue"}}},
		"bad aggregate":  {Fact: "fact_table_revenue", GroupBy: []string{"n_name"}, Measures: []olap.MeasureSpec{{Out: "t", Func: "MEDIAN", Col: "revenue"}}},
		"bad filter":     {Fact: "fact_table_revenue", GroupBy: []string{"n_name"}, Measures: []olap.MeasureSpec{{Out: "t", Func: "SUM", Col: "revenue"}}, Filter: "1 +"},
	}
	for name, q := range cases {
		if _, err := e.Query(q); err == nil {
			t.Errorf("%s: query succeeded", name)
		}
	}
}

func TestOLAPRequiresDesign(t *testing.T) {
	o, _ := tpch.Ontology()
	m, _ := tpch.Mapping()
	c, _ := tpch.Catalog(1)
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: storage.NewDB()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OLAP(); err == nil {
		t.Error("OLAP without design succeeded")
	}
}

// TestDWBeatsRawSources demonstrates the paper's §1 motivation: the
// same analytical answer computed from the pre-aggregated DW
// processes far fewer rows than recomputing from the raw sources.
func TestDWBeatsRawSources(t *testing.T) {
	p, db := deployedPlatform(t)
	e, _ := p.OLAP()
	res, err := e.Query(olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"n_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Raw recomputation: full lineitem scan (the fact table is orders
	// of magnitude smaller after ETL-time aggregation).
	li, _ := db.Table("lineitem")
	fact, _ := db.Table("fact_table_revenue")
	if fact.NumRows() >= li.NumRows() {
		t.Errorf("fact (%d rows) not smaller than raw lineitem (%d rows)", fact.NumRows(), li.NumRows())
	}
	_ = res
}

func TestResultValuesTyped(t *testing.T) {
	p, _ := deployedPlatform(t)
	e, _ := p.OLAP()
	res, err := e.Query(olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"r_name"},
		Measures: []olap.MeasureSpec{{Out: "mx", Func: "MAX", Col: "revenue"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[0].Kind() != expr.KindString {
			t.Errorf("group value kind = %v", r[0].Kind())
		}
		if !r[1].IsNumeric() {
			t.Errorf("measure kind = %v", r[1].Kind())
		}
	}
	if !strings.HasPrefix(res.Columns[0], "r_") {
		t.Errorf("columns = %v", res.Columns)
	}
}
