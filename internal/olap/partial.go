package olap

import (
	"context"
	"fmt"

	"quarry/internal/engine"
	"quarry/internal/expr"
	"quarry/internal/xlm"
)

// Partial is a shard-local, pre-finalisation answer to a cube query:
// the hash aggregator's mergeable per-group states over this node's
// fact partition, plus the result shape needed to merge and finalise
// elsewhere (see internal/shard). Because the states carry exact
// float-sum expansions, merging any partition of the fact's rows and
// finalising once yields bytes identical to a single node that folded
// every row itself.
type Partial struct {
	// Columns is the final result header (group columns first, then
	// aggregate outputs), identical to Result.Columns.
	Columns []string
	// GroupCols is how many leading Columns are group keys.
	GroupCols int
	// Aggs are the planned aggregate specs, in output order.
	Aggs []xlm.AggSpec
	// Groups are the mergeable per-group states, in first-seen order.
	Groups []engine.AggPartial
	// Version is the warehouse version of the snapshot answered from
	// — the shard protocol's epoch.
	Version uint64
}

// QueryPartial answers the cube query as mergeable partial aggregates
// instead of a finalised result. It runs the same planner and the same
// build/probe pipeline as Query, but stops before finalisation: no
// AVG division, no zero-row injection for global aggregates, no sort.
// Those happen exactly once, after the merge.
//
// Diamond dicing is refused: a dice prunes detail rows by global
// carats, which no per-shard computation can know, so a diced query is
// not distributive over fact partitions.
//
// The materialized-aggregate store and the group-key dictionary coder
// are bypassed — partials must be the kernel's own states over base
// fact rows, not rewritten or recoded forms.
func (e *Engine) QueryPartial(q CubeQuery) (*Partial, error) {
	return e.QueryPartialContext(context.Background(), q)
}

// QueryPartialContext is QueryPartial under a context (cancellation
// stops the scan at the next batch boundary).
func (e *Engine) QueryPartialContext(ctx context.Context, q CubeQuery) (*Partial, error) {
	p, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	if p.dice != nil {
		return nil, fmt.Errorf("olap: diamond dice is not distributive over shards; run it on a single node")
	}
	snap, err := e.db.Snapshot(p.tables...)
	if err != nil {
		return nil, err
	}
	joins, err := e.buildStarJoins(ctx, p, snap)
	if err != nil {
		return nil, err
	}
	agg, err := engine.NewHashAggregator(p.groupIdx, p.aggs, p.aggIdx)
	if err != nil {
		return nil, err
	}
	if err := e.probeStar(ctx, p, snap, joins, func(cur [][]expr.Value, owned bool) error {
		return agg.Add(cur)
	}); err != nil {
		return nil, err
	}
	return &Partial{
		Columns:   p.resultColumns(),
		GroupCols: len(p.groupBy),
		Aggs:      p.aggs,
		Groups:    agg.Partials(),
		Version:   snap.Version(),
	}, nil
}
