package olap

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"quarry/internal/expr"
	"quarry/internal/sqlgen"
	"quarry/internal/storage"
	"quarry/internal/xlm"
)

// The planner resolves a CubeQuery into a physical star plan shared by
// both executors: which dimension tables to join (in the fact's
// foreign-key order), which columns each join contributes, the final
// row layout, and the positions of group keys, measures, filter
// identifiers and dice columns within it. Because both executors
// consume the same plan — same join order, same build projections,
// same filter placement (after all joins), same aggregation input
// order — their results are byte-identical by construction.

// starJoin is one fact ⋈ dimension hash join of the plan.
type starJoin struct {
	def *sqlgen.TableDef
	// fkCol is the fact-side key, refCol the dimension-side key.
	fkCol, refCol string
	// keyAlias renames the dimension key in the joined layout so it
	// never collides with the fact column of the same name.
	keyAlias string
	// buildCols are the dimension columns the join contributes, in
	// dimension column order.
	buildCols []string
	// probeIdx is the position of fkCol in the probe-side layout.
	probeIdx int
	// preds are the filter conjuncts on this dimension's buildCols,
	// pushed into the build-side scan as zone-map prune predicates.
	// Pruned dimension rows only suppress joined rows the filter would
	// reject anyway (the join is inner, and a conjunct false or NULL
	// on the dimension's values makes the whole conjunction fail), so
	// results are unchanged. predKey fingerprints them for the
	// dimension build cache.
	preds   []storage.PrunePredicate
	predKey string
}

// dicePlan is the resolved diamond dice.
type dicePlan struct {
	fn         string // COUNT or SUM
	caratCol   string // "" for COUNT
	caratIdx   int    // position in layout; -1 for COUNT
	cols       []string
	colIdx     []int // positions in layout
	thresholds []float64
}

// starPlan is the resolved physical plan of one cube query.
type starPlan struct {
	fact     *sqlgen.TableDef
	joins    []*starJoin
	layout   []string       // column names after all joins
	index    map[string]int // name → first position in layout
	groupBy  []string       // resolved group columns (incl. roll-up keys)
	groupIdx []int
	aggs     []xlm.AggSpec
	aggIdx   []int // layout positions; -1 for COUNT(*)
	filter   expr.Node
	dice     *dicePlan
	tables   []string // fact + joined dimension table names
	// factPreds are the filter conjuncts on fact columns, pushed into
	// the fact scan as zone-map prune predicates. The full filter is
	// still evaluated after the joins — pushdown only skips pages no
	// qualifying row can live in.
	factPreds []storage.PrunePredicate
	// codedGroup lists the group-by positions (indexes into groupBy)
	// whose column is string-typed and not consumed by any aggregate:
	// the fast path aggregates those on dictionary codes
	// (groupcode.go) instead of materialised strings.
	codedGroup []int
}

// resolveGroupBy expands the query's explicit group-by columns with
// the key descriptors of the requested roll-up levels (dimensions in
// name order, for determinism), deduplicating.
func (e *Engine) resolveGroupBy(q CubeQuery) ([]string, error) {
	out := append([]string(nil), q.GroupBy...)
	seen := map[string]bool{}
	for _, g := range out {
		seen[g] = true
	}
	dims := make([]string, 0, len(q.RollUp))
	for d := range q.RollUp {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	fact, ok := e.md.Fact(q.Fact)
	for _, dim := range dims {
		lvlName := q.RollUp[dim]
		d, okd := e.md.Dimension(dim)
		if !okd {
			return nil, fmt.Errorf("olap: unknown dimension %q in roll-up", dim)
		}
		if ok && !fact.UsesDimension(dim) {
			return nil, fmt.Errorf("olap: fact %q does not use dimension %q", q.Fact, dim)
		}
		lvl, okl := d.Level(lvlName)
		if !okl {
			return nil, fmt.Errorf("olap: dimension %q has no level %q", dim, lvlName)
		}
		// The level must be reachable from a base level of the
		// hierarchy (aggregating below the base grain is impossible).
		reachable := false
		for _, b := range d.BaseLevels() {
			if d.RollsUpTo(b.Name, lvlName) {
				reachable = true
				break
			}
		}
		if !reachable {
			return nil, fmt.Errorf("olap: level %q is not reachable from the base of dimension %q", lvlName, dim)
		}
		if lvl.Key == "" {
			return nil, fmt.Errorf("olap: level %q of dimension %q has no key descriptor", lvlName, dim)
		}
		if !seen[lvl.Key] {
			seen[lvl.Key] = true
			out = append(out, lvl.Key)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("olap: query needs at least one group-by column or roll-up level")
	}
	return out, nil
}

// plan resolves a cube query against the deployed schema.
func (e *Engine) plan(q CubeQuery) (*starPlan, error) {
	if len(q.Measures) == 0 {
		return nil, fmt.Errorf("olap: query needs at least one measure")
	}
	fact, err := e.tableOf(q.Fact)
	if err != nil {
		return nil, err
	}
	groupBy, err := e.resolveGroupBy(q)
	if err != nil {
		return nil, err
	}
	p := &starPlan{fact: fact, groupBy: groupBy, tables: []string{fact.Name}}
	// Columns the joined layout must provide.
	needed := map[string]bool{}
	for _, g := range groupBy {
		needed[g] = true
	}
	for _, m := range q.Measures {
		fn := strings.ToUpper(m.Func)
		switch fn {
		case "SUM", "AVG", "MIN", "MAX", "COUNT":
		default:
			return nil, fmt.Errorf("olap: unknown aggregate %q", m.Func)
		}
		if m.Col == "" && fn != "COUNT" {
			return nil, fmt.Errorf("olap: aggregate %s needs a column", fn)
		}
		if m.Col != "" {
			needed[m.Col] = true
		}
		p.aggs = append(p.aggs, xlm.AggSpec{Out: m.Out, Func: fn, Col: m.Col})
	}
	if q.Filter != "" {
		p.filter, err = expr.Parse(q.Filter)
		if err != nil {
			return nil, fmt.Errorf("olap: filter: %w", err)
		}
		for _, id := range expr.Idents(p.filter) {
			needed[id] = true
		}
	}
	if q.Dice != nil {
		fn := strings.ToUpper(q.Dice.Func)
		switch fn {
		case "COUNT":
			if q.Dice.Col != "" {
				return nil, fmt.Errorf("olap: dice COUNT carat takes no column")
			}
		case "SUM":
			if q.Dice.Col == "" {
				return nil, fmt.Errorf("olap: dice SUM carat needs a column")
			}
			needed[q.Dice.Col] = true
		default:
			return nil, fmt.Errorf("olap: dice carat must be COUNT or SUM, got %q", q.Dice.Func)
		}
		if len(q.Dice.Thresholds) == 0 {
			return nil, fmt.Errorf("olap: dice needs at least one threshold")
		}
		d := &dicePlan{fn: fn, caratCol: q.Dice.Col}
		cols := make([]string, 0, len(q.Dice.Thresholds))
		for c := range q.Dice.Thresholds {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		inGroup := map[string]bool{}
		for _, g := range groupBy {
			inGroup[g] = true
		}
		for _, c := range cols {
			if !inGroup[c] {
				return nil, fmt.Errorf("olap: dice threshold column %q is not grouped by", c)
			}
			d.cols = append(d.cols, c)
			d.thresholds = append(d.thresholds, q.Dice.Thresholds[c])
		}
		p.dice = d
	}
	// Layout starts as the fact columns; join every referenced
	// dimension table, in foreign-key order.
	available := map[string]bool{}
	for _, c := range fact.Columns {
		p.layout = append(p.layout, c.Name)
		available[c.Name] = true
	}
	joined := map[string]bool{}
	for _, fk := range fact.ForeignKeys {
		if joined[fk.RefTable] {
			continue
		}
		dim, err := e.tableOf(fk.RefTable)
		if err != nil {
			return nil, err
		}
		usesDim := false
		for _, c := range dim.Columns {
			if needed[c.Name] && !available[c.Name] {
				usesDim = true
			}
		}
		if !usesDim {
			continue
		}
		joined[fk.RefTable] = true
		j := &starJoin{
			def:      dim,
			fkCol:    fk.Column,
			refCol:   fk.RefColumn,
			keyAlias: "__key_" + fk.RefTable,
		}
		probeIdx := -1
		for i, name := range p.layout {
			if name == j.fkCol {
				probeIdx = i
				break
			}
		}
		if probeIdx == -1 {
			return nil, fmt.Errorf("olap: fact %q lacks foreign-key column %q", fact.Name, j.fkCol)
		}
		j.probeIdx = probeIdx
		p.layout = append(p.layout, j.keyAlias)
		for _, c := range dim.Columns {
			if needed[c.Name] && !available[c.Name] {
				j.buildCols = append(j.buildCols, c.Name)
				p.layout = append(p.layout, c.Name)
				available[c.Name] = true
			}
		}
		p.joins = append(p.joins, j)
		p.tables = append(p.tables, dim.Name)
	}
	// Every needed column must now be available.
	var missing []string
	for c := range needed {
		if !available[c] {
			missing = append(missing, c)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("olap: columns %v not reachable from fact %q", missing, q.Fact)
	}
	// Position resolution over the final layout (first occurrence
	// wins; layout names are unique by construction).
	p.index = make(map[string]int, len(p.layout))
	for i, name := range p.layout {
		if _, dup := p.index[name]; !dup {
			p.index[name] = i
		}
	}
	p.groupIdx = make([]int, len(p.groupBy))
	for i, g := range p.groupBy {
		p.groupIdx[i] = p.index[g]
	}
	p.aggIdx = make([]int, len(p.aggs))
	for i, a := range p.aggs {
		if a.Col == "" {
			p.aggIdx[i] = -1
			continue
		}
		p.aggIdx[i] = p.index[a.Col]
	}
	if p.dice != nil {
		p.dice.colIdx = make([]int, len(p.dice.cols))
		for i, c := range p.dice.cols {
			p.dice.colIdx[i] = p.index[c]
		}
		p.dice.caratIdx = -1
		if p.dice.caratCol != "" {
			p.dice.caratIdx = p.index[p.dice.caratCol]
		}
	}
	// Column types by name, scoped to the tables that physically hold
	// each layout column (fact columns first, mirroring p.index).
	colType := map[string]string{}
	factCol := map[string]bool{}
	for _, c := range fact.Columns {
		factCol[c.Name] = true
		colType[c.Name] = c.Type
	}
	owner := map[string]*starJoin{}
	for _, j := range p.joins {
		for _, bc := range j.buildCols {
			owner[bc] = j
			for _, c := range j.def.Columns {
				if c.Name == bc {
					if _, dup := colType[bc]; !dup {
						colType[bc] = c.Type
					}
					break
				}
			}
		}
	}
	// Filter pushdown: conjuncts of the shape `col OP literal` become
	// prune predicates on the table that physically holds the column.
	if p.filter != nil {
		for _, conj := range expr.Conjuncts(p.filter) {
			col, op, lit, ok := expr.Comparison(conj)
			if !ok || !pushable(op, colType[col], lit) {
				continue
			}
			pp := storage.PrunePredicate{Col: col, Op: op, Val: lit}
			if factCol[col] {
				p.factPreds = append(p.factPreds, pp)
			} else if j := owner[col]; j != nil {
				j.preds = append(j.preds, pp)
			}
		}
		for _, j := range p.joins {
			j.predKey = predFingerprint(j.preds)
		}
	}
	// String group keys aggregate as dictionary codes — except columns
	// an aggregate also consumes (their measure values must stay
	// strings at the shared layout position).
	usedByAgg := map[int]bool{}
	for _, ai := range p.aggIdx {
		if ai >= 0 {
			usedByAgg[ai] = true
		}
	}
	for i, g := range p.groupBy {
		if colType[g] == "string" && !usedByAgg[p.groupIdx[i]] {
			p.codedGroup = append(p.codedGroup, i)
		}
	}
	return p, nil
}

// pushable reports whether a `col OP literal` conjunct is safe to
// evaluate against zone maps. Equality tests never error at
// evaluation time; ordering comparisons are pushed only when the
// literal's kind is comparable with the column's (numeric with
// numeric, otherwise the same kind) — a mismatched ordering
// comparison errors at evaluation, and pruning must not mask that
// error by skipping the pages that would raise it. A NULL literal
// makes every operator evaluate to NULL (no error), so it is always
// safe.
func pushable(op, colType string, lit expr.Value) bool {
	if colType == "" {
		return false
	}
	if lit.IsNull() || op == "=" || op == "!=" {
		return true
	}
	k, err := expr.ParseKind(colType)
	if err != nil {
		return false
	}
	switch k {
	case expr.KindInt, expr.KindFloat:
		return lit.IsNumeric()
	default:
		return lit.Kind() == k
	}
}

// predFingerprint canonically encodes a predicate list for cache
// keys.
func predFingerprint(preds []storage.PrunePredicate) string {
	if len(preds) == 0 {
		return ""
	}
	var b strings.Builder
	for _, p := range preds {
		b.WriteString(p.Col)
		b.WriteByte(1)
		b.WriteString(p.Op)
		b.WriteByte(1)
		b.WriteString(strconv.Itoa(int(p.Val.Kind())))
		b.WriteByte(1)
		b.WriteString(p.Val.String())
		b.WriteByte(0)
	}
	return b.String()
}

// resultColumns is the output schema: group columns then measure
// outputs.
func (p *starPlan) resultColumns() []string {
	out := append([]string(nil), p.groupBy...)
	for _, a := range p.aggs {
		out = append(out, a.Out)
	}
	return out
}
