package olap_test

// Byte-identity suite for the storage-v2 fast-path machinery: filter
// pushdown into zone-map-pruning cursors and dictionary-coded group
// keys must leave every answer byte-identical — fast path vs star-flow
// oracle, disk vs memory backend, pruning on vs off, and across a cold
// restart of the disk warehouse.

import (
	"testing"

	"quarry/internal/core"
	"quarry/internal/olap"
	"quarry/internal/storage"
	"quarry/internal/tpch"
)

// pushdownQueries exercises every interesting pushdown/coding shape:
// fact-column predicates, dimension predicates on both build sides,
// string equality, unpushable ORs, coded string group keys, a group
// key excluded from coding because an aggregate reads it, and a dice
// (which disables coding entirely).
var pushdownQueries = []olap.CubeQuery{
	{Fact: "fact_table_revenue", GroupBy: []string{"p_brand", "n_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
		Filter:   "revenue > 5000"},
	{Fact: "fact_table_revenue", GroupBy: []string{"s_name"},
		Measures: []olap.MeasureSpec{{Out: "rows", Func: "COUNT", Col: ""}},
		Filter:   "p_retailprice > 950 AND s_acctbal > 0"},
	{Fact: "fact_table_revenue", GroupBy: []string{"p_type"},
		Measures: []olap.MeasureSpec{
			{Out: "first", Func: "MIN", Col: "p_type"},
			{Out: "total", Func: "SUM", Col: "revenue"}},
		Filter: "p_type = 'STANDARD'"},
	{Fact: "fact_table_revenue", GroupBy: []string{"p_brand"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
		Filter:   "p_type = 'STANDARD' OR p_type = 'PROMO'"},
	{Fact: "fact_table_revenue", GroupBy: []string{"p_brand", "r_name"},
		Measures: []olap.MeasureSpec{{Out: "avg", Func: "AVG", Col: "revenue"}},
		Filter:   "revenue > 5000 AND p_retailprice > 920"},
	{Fact: "fact_table_revenue", GroupBy: []string{"p_brand", "s_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}}},
	{Fact: "fact_table_revenue", GroupBy: []string{"n_name"},
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
		Filter:   "revenue > 2000",
		Dice:     &olap.DiceSpec{Func: "COUNT", Thresholds: map[string]float64{"n_name": 2}}},
}

// diskPlatform assembles a platform over a disk warehouse at whDir
// with its metadata repository at metaDir. When seed ≥ 0 the source
// data is generated and the warehouse populated; seed < 0 is a cold
// restart — designs restore from metaDir, warehouse tables from the
// committed manifest, and no ETL runs.
func diskPlatform(t *testing.T, whDir, metaDir string, sf float64, seed int64) *core.Platform {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(sf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c,
		StorageDir: whDir, StoreDir: metaDir})
	if err != nil {
		t.Fatal(err)
	}
	if seed >= 0 {
		if _, err := tpch.Generate(p.DB(), sf, seed); err != nil {
			t.Fatal(err)
		}
		if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestPushdownDiskIdentity(t *testing.T) {
	whDir, metaDir := t.TempDir(), t.TempDir()
	const sf, seed = 2, 11
	mem, _ := platformWith(t, sf, seed, tpch.RevenueRequirement())
	memEng, err := mem.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	disk := diskPlatform(t, whDir, metaDir, sf, seed)
	diskEng, err := disk.OLAP()
	if err != nil {
		t.Fatal(err)
	}

	memResults := make([]*olap.Result, len(pushdownQueries))
	for i, q := range pushdownQueries {
		memRes, err := memEng.Query(q)
		if err != nil {
			t.Fatalf("mem query %d: %v", i, err)
		}
		memResults[i] = memRes
		fast, err := diskEng.Query(q)
		if err != nil {
			t.Fatalf("disk query %d: %v", i, err)
		}
		oracle, err := diskEng.QueryStarFlow(q)
		if err != nil {
			t.Fatalf("disk oracle %d: %v", i, err)
		}
		assertIdentical(t, "disk fast vs disk oracle: "+queryString(q), fast, oracle)
		assertIdentical(t, "disk fast vs mem fast: "+queryString(q), fast, memRes)

		// Pruning off must change nothing but the pages read.
		prev := storage.SetZoneMapPruning(false)
		unpruned, err := diskEng.Query(q)
		storage.SetZoneMapPruning(prev)
		if err != nil {
			t.Fatalf("unpruned disk query %d: %v", i, err)
		}
		assertIdentical(t, "pruning on vs off: "+queryString(q), fast, unpruned)
	}

	// Cold restart: a fresh platform over the same directories serves
	// the same bytes without re-running any ETL.
	re := diskPlatform(t, whDir, metaDir, sf, -1)
	if got := len(re.Requirements()); got != 1 {
		t.Fatalf("restart restored %d requirements, want 1", got)
	}
	reEng, err := re.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range pushdownQueries {
		fast, err := reEng.Query(q)
		if err != nil {
			t.Fatalf("restarted query %d: %v", i, err)
		}
		assertIdentical(t, "cold restart vs mem: "+queryString(q), fast, memResults[i])
	}
}
