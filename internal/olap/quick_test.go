package olap_test

import (
	"math/rand"
	"testing"

	"quarry/internal/olap"
	"quarry/internal/tpch"
)

// Quick-check equivalence: random cube queries — random group-bys,
// measures, filters, roll-up levels and dices — over randomized
// TPC-H-shaped warehouses must return byte-identical Results from the
// vectorized fast path and the star-flow oracle (the same pattern as
// internal/engine/quick_test.go, one level up the stack).

// randomQuery draws a cube query over fact_table_revenue. The column
// pools cover fact columns, both dimension tables, and every roll-up
// level of the Supplier hierarchy.
func randomQuery(r *rand.Rand) olap.CubeQuery {
	groupPool := []string{"p_brand", "p_type", "p_name", "s_name", "n_name", "r_name", "p_partkey", "s_suppkey"}
	measurePool := []olap.MeasureSpec{
		{Out: "sum_rev", Func: "SUM", Col: "revenue"},
		{Out: "avg_rev", Func: "AVG", Col: "revenue"},
		{Out: "min_rev", Func: "MIN", Col: "revenue"},
		{Out: "max_rev", Func: "MAX", Col: "revenue"},
		{Out: "rows", Func: "COUNT", Col: ""},
		{Out: "n_rev", Func: "COUNT", Col: "revenue"},
		{Out: "sum_price", Func: "SUM", Col: "p_retailprice"},
		{Out: "avg_bal", Func: "AVG", Col: "s_acctbal"},
		// Ordered string MIN/MAX: the fast path always computed these;
		// since the validator learned them too (internal/xlm/schema.go)
		// the star-flow oracle accepts them as well, so the quick check
		// pins both paths to identical lexicographic answers.
		{Out: "min_type", Func: "MIN", Col: "p_type"},
		{Out: "max_nation", Func: "MAX", Col: "n_name"},
	}
	filterPool := []string{
		"",
		"p_retailprice > 950",
		"s_acctbal > 0",
		"revenue > 5000",
		"p_type = 'STANDARD' OR p_type = 'PROMO'",
		"p_retailprice > 920 AND revenue < 100000",
	}
	q := olap.CubeQuery{Fact: "fact_table_revenue"}
	perm := r.Perm(len(groupPool))
	for _, i := range perm[:1+r.Intn(3)] {
		q.GroupBy = append(q.GroupBy, groupPool[i])
	}
	mperm := r.Perm(len(measurePool))
	for _, i := range mperm[:1+r.Intn(3)] {
		q.Measures = append(q.Measures, measurePool[i])
	}
	q.Filter = filterPool[r.Intn(len(filterPool))]
	// Sometimes aggregate the Supplier dimension at a rolled-up level.
	switch r.Intn(4) {
	case 1:
		q.RollUp = map[string]string{"Supplier": "Nation"}
	case 2:
		q.RollUp = map[string]string{"Supplier": "Region"}
	case 3:
		q.RollUp = map[string]string{"Supplier": "Supplier"}
	}
	// Sometimes dice on one of the grouped columns.
	if r.Intn(3) == 0 {
		spec := &olap.DiceSpec{Thresholds: map[string]float64{}}
		if r.Intn(2) == 0 {
			spec.Func = "COUNT"
			spec.Thresholds[q.GroupBy[0]] = float64(1 + r.Intn(4))
		} else {
			spec.Func = "SUM"
			spec.Col = "revenue"
			spec.Thresholds[q.GroupBy[0]] = float64(r.Intn(40000))
		}
		if len(q.GroupBy) > 1 && r.Intn(2) == 0 {
			spec.Thresholds[q.GroupBy[1]] = float64(1 + r.Intn(8))
			if spec.Func == "SUM" {
				spec.Thresholds[q.GroupBy[1]] = float64(r.Intn(20000))
			}
		}
		q.Dice = spec
	}
	return q
}

func TestQuickFastPathMatchesStarFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-check in -short mode")
	}
	for _, seed := range []int64{7, 1234} {
		p, _ := platformWith(t, 3, seed, tpch.RevenueRequirement())
		e, err := p.OLAP()
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed * 31))
		for i := 0; i < 25; i++ {
			q := randomQuery(r)
			fast, errF := e.Query(q)
			oracle, errO := e.QueryStarFlow(q)
			if (errF == nil) != (errO == nil) {
				t.Fatalf("seed %d query %d: fast err=%v oracle err=%v (%s)", seed, i, errF, errO, queryString(q))
			}
			if errF != nil {
				continue
			}
			assertIdentical(t, queryString(q), fast, oracle)
		}
	}
}

// TestQuickRollUpMatchesExplicitGroupBy verifies the roll-up sugar:
// aggregating dimension Supplier at level L must equal grouping by
// L's key descriptor directly.
func TestQuickRollUpMatchesExplicitGroupBy(t *testing.T) {
	p, _ := platformWith(t, 3, 99, tpch.RevenueRequirement())
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	for level, key := range map[string]string{"Supplier": "s_name", "Nation": "n_name", "Region": "r_name"} {
		rolled, err := e.Query(olap.CubeQuery{
			Fact:     "fact_table_revenue",
			RollUp:   map[string]string{"Supplier": level},
			Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
		})
		if err != nil {
			t.Fatalf("roll-up to %s: %v", level, err)
		}
		explicit, err := e.Query(olap.CubeQuery{
			Fact:     "fact_table_revenue",
			GroupBy:  []string{key},
			Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "roll-up to "+level, rolled, explicit)
	}
}
