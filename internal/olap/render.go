package olap

import "quarry/internal/expr"

// RenderRow formats one result row exactly the way the serving
// layer's JSON bodies do — the canonical textual form of a cube
// answer. String values render as their raw content (trimming quotes
// off the SQL-literal String() form would also eat legitimate
// leading/trailing apostrophes from the data); everything else uses
// Value.String, whose float rendering is shortest-round-trip, so
// textual equality of float cells is bit equality. Both quarryd and
// the shard gather router render through this one function: that is
// what makes a scatter-gather answer byte-identical to a single
// node's HTTP body, not just numerically equal.
func RenderRow(row []expr.Value) []string {
	vals := make([]string, len(row))
	for i, v := range row {
		if v.Kind() == expr.KindString {
			vals[i] = v.AsString()
		} else {
			vals[i] = v.String()
		}
	}
	return vals
}
