package olap_test

import (
	"strings"
	"testing"

	"quarry/internal/olap"
)

// TestLevelsAndNavigation walks the Supplier hierarchy declared by
// the xMD schema: Supplier → Nation → Region.
func TestLevelsAndNavigation(t *testing.T) {
	p, _ := deployedPlatform(t)
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	levels, err := e.Levels("Supplier")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(levels, ","); got != "Supplier,Nation,Region" {
		t.Fatalf("levels = %v", levels)
	}
	q := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
	}
	// Base → Nation → Region, then the top errors.
	q1, err := e.RollUp(q, "Supplier")
	if err != nil {
		t.Fatal(err)
	}
	if q1.RollUp["Supplier"] != "Nation" {
		t.Fatalf("first roll-up = %v", q1.RollUp)
	}
	q2, err := e.RollUp(q1, "Supplier")
	if err != nil {
		t.Fatal(err)
	}
	if q2.RollUp["Supplier"] != "Region" {
		t.Fatalf("second roll-up = %v", q2.RollUp)
	}
	if _, err := e.RollUp(q2, "Supplier"); err == nil {
		t.Fatal("roll-up past the top succeeded")
	}
	// And back down.
	q3, err := e.DrillDown(q2, "Supplier")
	if err != nil {
		t.Fatal(err)
	}
	if q3.RollUp["Supplier"] != "Nation" {
		t.Fatalf("drill-down = %v", q3.RollUp)
	}
	q4, err := e.DrillDown(q3, "Supplier")
	if err != nil {
		t.Fatal(err)
	}
	if q4.RollUp["Supplier"] != "Supplier" {
		t.Fatalf("drill-down to base = %v", q4.RollUp)
	}
	if _, err := e.DrillDown(q4, "Supplier"); err == nil {
		t.Fatal("drill-down past the base succeeded")
	}
	// Navigation does not mutate the input query.
	if len(q.RollUp) != 0 {
		t.Fatalf("input query mutated: %v", q.RollUp)
	}
}

// TestRollUpTotalsConserved: a fully-additive measure must sum to the
// same grand total at every roll-up level.
func TestRollUpTotalsConserved(t *testing.T) {
	p, _ := deployedPlatform(t)
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	var totals []float64
	for _, level := range []string{"Supplier", "Nation", "Region"} {
		res, err := e.Query(olap.CubeQuery{
			Fact:     "fact_table_revenue",
			RollUp:   map[string]string{"Supplier": level},
			Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
		})
		if err != nil {
			t.Fatalf("level %s: %v", level, err)
		}
		var sum float64
		for _, row := range res.Rows {
			f, _ := row[len(row)-1].AsFloat()
			sum += f
		}
		totals = append(totals, sum)
	}
	for i := 1; i < len(totals); i++ {
		if diff := totals[i] - totals[0]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("totals diverge across levels: %v", totals)
		}
	}
}

// TestRollUpErrors: malformed roll-ups are rejected.
func TestRollUpErrors(t *testing.T) {
	p, _ := deployedPlatform(t)
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	base := olap.CubeQuery{
		Fact:     "fact_table_revenue",
		Measures: []olap.MeasureSpec{{Out: "total", Func: "SUM", Col: "revenue"}},
	}
	cases := map[string]map[string]string{
		"unknown dimension": {"Ghost": "Nation"},
		"unknown level":     {"Supplier": "Continent"},
	}
	for name, ru := range cases {
		q := base
		q.RollUp = ru
		if _, err := e.Query(q); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := e.Levels("Ghost"); err == nil {
		t.Error("Levels on unknown dimension succeeded")
	}
}
