package olap_test

import (
	"encoding/json"
	"math/rand"
	"testing"

	"quarry/internal/core"
	"quarry/internal/olap"
	"quarry/internal/shard"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xrq"
)

// Scatter-gather property check: hash-partition the TPC-H fact across
// 1..8 shard platforms (each loading only its partition via the shard
// load filter, dimensions replicated), answer random cube queries as
// partial aggregates, ship them through the JSON wire, merge — and
// demand byte identity with the single-node star-flow oracle over the
// full data. Shard count 1 is the degenerate case and must also match
// the single-node fast path exactly.

// shardedPlatforms builds one platform per shard, each generating the
// identical TPC-H source data and loading its own partition.
func shardedPlatforms(t *testing.T, sf float64, seed int64, count int, reqs ...*xrq.Requirement) []*core.Platform {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(sf)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*core.Platform, count)
	for i := 0; i < count; i++ {
		db := storage.NewDB()
		if _, err := tpch.Generate(db, sf, seed); err != nil {
			t.Fatal(err)
		}
		p, err := core.New(core.Config{
			Ontology: o, Mapping: m, Catalog: c, DB: db,
			Shard: shard.Spec{Index: i, Count: count},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reqs {
			if _, err := p.AddRequirement(r); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

// gatherQuery answers q by the full scatter-gather protocol over the
// shard platforms: per-shard QueryPartial, JSON wire round-trip,
// merge — returning the finalised result.
func gatherQuery(t *testing.T, shards []*core.Platform, q olap.CubeQuery) (*olap.Result, error) {
	t.Helper()
	resps := make([]*shard.PartialResponse, len(shards))
	for i, p := range shards {
		e, err := p.OLAP()
		if err != nil {
			t.Fatal(err)
		}
		partial, err := e.QueryPartial(q)
		if err != nil {
			return nil, err
		}
		spec := p.Shard()
		wire := shard.EncodePartial(spec.Index, spec.Count, partial.Version, partial.Columns, partial.GroupCols, partial.Aggs, partial.Groups)
		// Through JSON, exactly like the HTTP protocol.
		b, err := json.Marshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		var back shard.PartialResponse
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		resps[i] = &back
	}
	cols, rows, epoch, err := shard.Merge(resps)
	if err != nil {
		return nil, err
	}
	return &olap.Result{Columns: cols, Rows: rows, Version: epoch}, nil
}

func TestQuickShardedGatherMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-check in -short mode")
	}
	const sf, seed = 2, 17
	single, _ := platformWith(t, sf, seed, tpch.RevenueRequirement())
	oracleEng, err := single.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed * 13))
	queries := make([]olap.CubeQuery, 0, 18)
	for len(queries) < cap(queries) {
		q := randomQuery(r)
		q.Dice = nil // not distributive; its refusal is pinned below
		queries = append(queries, q)
	}
	for count := 1; count <= 8; count++ {
		shards := shardedPlatforms(t, sf, seed, count, tpch.RevenueRequirement())
		// Every fact row must live on exactly one shard: the partition
		// totals reconcile against the single node before any querying.
		countQ := olap.CubeQuery{
			Fact:     "fact_table_revenue",
			GroupBy:  []string{"r_name"},
			Measures: []olap.MeasureSpec{{Out: "n", Func: "COUNT"}},
		}
		sumCounts := func(res *olap.Result) (n int64) {
			for _, row := range res.Rows {
				n += row[1].AsInt()
			}
			return n
		}
		totalRows := int64(0)
		for _, p := range shards {
			e, err := p.OLAP()
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Query(countQ)
			if err != nil {
				t.Fatal(err)
			}
			totalRows += sumCounts(res)
		}
		wantRows, err := oracleEng.Query(countQ)
		if err != nil {
			t.Fatal(err)
		}
		if totalRows != sumCounts(wantRows) {
			t.Fatalf("count=%d: shards hold %d fact rows in total, single node has %d", count, totalRows, sumCounts(wantRows))
		}
		for i, q := range queries {
			merged, errG := gatherQuery(t, shards, q)
			oracle, errO := oracleEng.QueryStarFlow(q)
			if (errG == nil) != (errO == nil) {
				t.Fatalf("count=%d query %d: gather err=%v oracle err=%v (%s)", count, i, errG, errO, queryString(q))
			}
			if errG != nil {
				continue
			}
			assertIdentical(t, queryString(q), merged, oracle)
			if count == 1 {
				fast, err := oracleEng.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				assertIdentical(t, "degenerate 1-shard vs fast path: "+queryString(q), merged, fast)
			}
		}
	}
}

// Diced queries are refused by the partial executor with a clear
// contract error — never answered wrongly.
func TestQueryPartialRejectsDice(t *testing.T) {
	p, _ := platformWith(t, 1, 5, tpch.RevenueRequirement())
	e, err := p.OLAP()
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.QueryPartial(olap.CubeQuery{
		Fact:     "fact_table_revenue",
		GroupBy:  []string{"p_brand"},
		Measures: []olap.MeasureSpec{{Out: "n", Func: "COUNT"}},
		Dice:     &olap.DiceSpec{Func: "COUNT", Thresholds: map[string]float64{"p_brand": 2}},
	})
	if err == nil {
		t.Fatal("QueryPartial accepted a diced query")
	}
}
