package olap

import (
	"context"
	"fmt"
	"strings"

	"quarry/internal/engine"
	"quarry/internal/expr"
	"quarry/internal/sqlgen"
	"quarry/internal/storage"
	"quarry/internal/xlm"
)

// The star-flow oracle answers the same cube queries by compiling the
// shared plan to a throwaway xLM star flow and executing it with the
// full ETL engine — the RunMaterializing pattern of PR 1: a second,
// independent execution strategy kept as the correctness reference
// the fast path is tested against (and the baseline its speedup is
// measured from).
//
// Unlike the pre-PR-2 implementation, the flow never touches the
// warehouse: it runs against a private scratch database holding
// frozen snapshot views of the deployed tables, so its result table
// is invisible to other queries and to concurrent ETL runs, and the
// oracle reads the same stable snapshot the fast path would.

// scratch table names used by the oracle flows.
const (
	answerTable = "__olap_answer"
	detailTable = "__olap_detail"
	dicedTable  = "__olap_diced"
)

// QueryStarFlow answers the cube query with the star-flow oracle.
// Results are byte-identical to Query.
func (e *Engine) QueryStarFlow(q CubeQuery) (*Result, error) {
	return e.QueryStarFlowContext(context.Background(), q)
}

// QueryStarFlowContext is QueryStarFlow under a context: cancellation
// aborts the scratch engine runs through their first-error path.
func (e *Engine) QueryStarFlowContext(ctx context.Context, q CubeQuery) (*Result, error) {
	p, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	snap, err := e.db.Snapshot(p.tables...)
	if err != nil {
		return nil, err
	}
	// Private scratch DB sharing frozen views of the deployed tables.
	// Always in-memory, even under QUARRY_STORAGE=disk: the scratch DB
	// lives for one query and only re-reads frozen snapshot views.
	scratch := storage.NewMemDB()
	for _, name := range p.tables {
		view, _ := snap.Table(name)
		if err := scratch.Attach(view.Freeze()); err != nil {
			return nil, err
		}
	}
	if p.dice == nil {
		d, err := buildStarFlow(p, true)
		if err != nil {
			return nil, err
		}
		if _, err := engine.RunContext(ctx, d, scratch); err != nil {
			return nil, err
		}
		return readResult(scratch, p, snap.Version())
	}
	// Dicing: materialise the detail rows (joins + filter, no
	// aggregation), prune them to the diamond with the reference
	// fixpoint, then aggregate the survivors with a second flow.
	d1, err := buildStarFlow(p, false)
	if err != nil {
		return nil, err
	}
	if _, err := engine.RunContext(ctx, d1, scratch); err != nil {
		return nil, err
	}
	detail, ok := scratch.Table(detailTable)
	if !ok {
		return nil, fmt.Errorf("olap: internal: detail table missing")
	}
	survivors, err := diceReference(valueRows(detail.Rows()), p.dice)
	if err != nil {
		return nil, err
	}
	diced, err := scratch.CreateTable(dicedTable, detail.Columns)
	if err != nil {
		return nil, err
	}
	kept := make([]storage.Row, len(survivors))
	for i, r := range survivors {
		kept[i] = r
	}
	if err := diced.InsertAll(kept); err != nil {
		return nil, err
	}
	fields := make([]xlm.Field, len(detail.Columns))
	for i, c := range detail.Columns {
		fields[i] = xlm.Field{Name: c.Name, Type: c.Type}
	}
	d2, err := buildAggregateFlow(p, fields)
	if err != nil {
		return nil, err
	}
	if _, err := engine.RunContext(ctx, d2, scratch); err != nil {
		return nil, err
	}
	return readResult(scratch, p, snap.Version())
}

// readResult copies the answer table out of the scratch DB, stamped
// with the version of the snapshot the flow read.
func readResult(scratch *storage.DB, p *starPlan, version uint64) (*Result, error) {
	answer, ok := scratch.Table(answerTable)
	if !ok {
		return nil, fmt.Errorf("olap: internal: answer table missing")
	}
	res := &Result{Columns: p.resultColumns(), Version: version, Class: ClassOracle}
	res.Rows = valueRows(answer.Rows())
	return res, nil
}

// valueRows converts storage rows to the engine's row representation
// (a per-row slice-header copy, no value copies).
func valueRows(rows []storage.Row) [][]expr.Value {
	out := make([][]expr.Value, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

// addTable emits a datastore node scanning a deployed table.
func addTable(d *xlm.Design, def *sqlgen.TableDef, nodeName string) error {
	fields := make([]xlm.Field, len(def.Columns))
	copy(fields, def.Columns)
	return d.AddNode(&xlm.Node{
		Name: nodeName, Type: xlm.OpDatastore, Optype: "TableInput",
		Fields: fields,
		Params: map[string]string{"store": "dw", "table": def.Name},
	})
}

// buildStarFlow compiles the plan to an xLM star flow: fact scan,
// one projection+hash-join per dimension (in plan order), the filter,
// and — when aggregate is true — the cube aggregation, sort and
// answer loader; otherwise the joined, filtered detail rows are
// loaded into the detail table for dicing.
func buildStarFlow(p *starPlan, aggregate bool) (*xlm.Design, error) {
	d := xlm.NewDesign("olap_" + p.fact.Name)
	if err := addTable(d, p.fact, "DW_"+p.fact.Name); err != nil {
		return nil, err
	}
	cur := "DW_" + p.fact.Name
	for _, sj := range p.joins {
		nodeName := "DW_" + sj.def.Name
		if err := addTable(d, sj.def, nodeName); err != nil {
			return nil, err
		}
		projCols := []string{sj.keyAlias + "=" + sj.refCol}
		projCols = append(projCols, sj.buildCols...)
		proj := &xlm.Node{
			Name: "PREP_" + sj.def.Name, Type: xlm.OpProjection,
			Params: map[string]string{"columns": strings.Join(projCols, ",")},
		}
		if err := d.AddNode(proj); err != nil {
			return nil, err
		}
		if err := d.AddEdge(nodeName, proj.Name); err != nil {
			return nil, err
		}
		join := &xlm.Node{
			Name: "JOIN_" + sj.def.Name, Type: xlm.OpJoin,
			Params: map[string]string{"on": sj.fkCol + "=" + sj.keyAlias},
		}
		if err := d.AddNode(join); err != nil {
			return nil, err
		}
		if err := d.AddEdge(cur, join.Name); err != nil {
			return nil, err
		}
		if err := d.AddEdge(proj.Name, join.Name); err != nil {
			return nil, err
		}
		cur = join.Name
	}
	if p.filter != nil {
		sel := &xlm.Node{
			Name: "FILTER", Type: xlm.OpSelection,
			Params: map[string]string{"predicate": p.filter.String()},
		}
		if err := d.AddNode(sel); err != nil {
			return nil, err
		}
		if err := d.AddEdge(cur, sel.Name); err != nil {
			return nil, err
		}
		cur = sel.Name
	}
	if !aggregate {
		out := &xlm.Node{
			Name: "DETAIL", Type: xlm.OpLoader, Optype: "TableOutput",
			Params: map[string]string{"table": detailTable, "mode": "replace"},
		}
		if err := d.AddNode(out); err != nil {
			return nil, err
		}
		if err := d.AddEdge(cur, out.Name); err != nil {
			return nil, err
		}
		return d, nil
	}
	if err := addAggregateTail(d, p, cur); err != nil {
		return nil, err
	}
	return d, nil
}

// buildAggregateFlow compiles the aggregation tail alone, reading the
// diced detail table.
func buildAggregateFlow(p *starPlan, detailFields []xlm.Field) (*xlm.Design, error) {
	d := xlm.NewDesign("olap_dice_" + p.fact.Name)
	ds := &xlm.Node{
		Name: "DW_DICED", Type: xlm.OpDatastore, Optype: "TableInput",
		Fields: detailFields,
		Params: map[string]string{"store": "dw", "table": dicedTable},
	}
	if err := d.AddNode(ds); err != nil {
		return nil, err
	}
	if err := addAggregateTail(d, p, ds.Name); err != nil {
		return nil, err
	}
	return d, nil
}

// addAggregateTail appends CUBE → ORDER → ANSWER to the flow.
func addAggregateTail(d *xlm.Design, p *starPlan, cur string) error {
	var aggs []string
	for _, a := range p.aggs {
		aggs = append(aggs, fmt.Sprintf("%s:%s:%s", a.Out, a.Func, a.Col))
	}
	agg := &xlm.Node{
		Name: "CUBE", Type: xlm.OpAggregation,
		Params: map[string]string{
			"group":      strings.Join(p.groupBy, ","),
			"aggregates": strings.Join(aggs, ";"),
		},
	}
	if err := d.AddNode(agg); err != nil {
		return err
	}
	if err := d.AddEdge(cur, agg.Name); err != nil {
		return err
	}
	sortNode := &xlm.Node{
		Name: "ORDER", Type: xlm.OpSort,
		Params: map[string]string{"by": strings.Join(p.groupBy, ",")},
	}
	if err := d.AddNode(sortNode); err != nil {
		return err
	}
	if err := d.AddEdge(agg.Name, sortNode.Name); err != nil {
		return err
	}
	out := &xlm.Node{
		Name: "ANSWER", Type: xlm.OpLoader, Optype: "TableOutput",
		Params: map[string]string{"table": answerTable, "mode": "replace"},
	}
	if err := d.AddNode(out); err != nil {
		return err
	}
	return d.AddEdge(sortNode.Name, out.Name)
}
