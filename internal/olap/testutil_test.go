package olap_test

import (
	"fmt"
	"strings"
	"testing"

	"quarry/internal/core"
	"quarry/internal/expr"
	"quarry/internal/olap"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xrq"
)

// platformWith builds a platform over generated TPC-H data (sf, seed),
// adds the requirements and populates the DW.
func platformWith(t testing.TB, sf float64, seed int64, reqs ...*xrq.Requirement) (*core.Platform, *storage.DB) {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(sf)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, sf, seed); err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if _, err := p.AddRequirement(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return p, db
}

// encodeValue renders a value with its kind, so byte-identical
// comparison distinguishes Int(1) from Float(1).
func encodeValue(v expr.Value) string {
	return v.Kind().String() + ":" + v.String()
}

// encodeResult flattens a result into comparable lines (one per row,
// preceded by the column header).
func encodeResult(res *olap.Result) []string {
	out := []string{"columns: " + strings.Join(res.Columns, ", ")}
	for _, row := range res.Rows {
		vals := make([]string, len(row))
		for i, v := range row {
			vals[i] = encodeValue(v)
		}
		out = append(out, strings.Join(vals, " | "))
	}
	return out
}

// assertIdentical fails unless the two results are byte-identical.
func assertIdentical(t *testing.T, label string, fast, oracle *olap.Result) {
	t.Helper()
	f, o := encodeResult(fast), encodeResult(oracle)
	if len(f) != len(o) {
		t.Fatalf("%s: fast path has %d lines, oracle %d\nfast:\n%s\noracle:\n%s",
			label, len(f), len(o), strings.Join(f, "\n"), strings.Join(o, "\n"))
	}
	for i := range f {
		if f[i] != o[i] {
			t.Fatalf("%s: line %d differs\nfast:   %s\noracle: %s", label, i, f[i], o[i])
		}
	}
}

// queryString renders a query for failure messages.
func queryString(q olap.CubeQuery) string {
	return fmt.Sprintf("fact=%s group=%v rollup=%v measures=%v filter=%q dice=%v",
		q.Fact, q.GroupBy, q.RollUp, q.Measures, q.Filter, q.Dice)
}
