// Package ontology implements Quarry's domain ontologies: the shared
// vocabulary that captures the semantics of the underlying data
// sources (§2.5 of the paper). An ontology is a labelled graph of
// concepts (classes) carrying typed datatype properties (attributes),
// connected by object properties (associations) annotated with
// multiplicities, plus a subclass taxonomy.
//
// The Requirements Elicitor explores this graph to suggest analytical
// perspectives; the Requirements Interpreter uses to-one paths to
// validate multidimensional (MD) integrity of requirements and to
// derive dimension hierarchies; the Design Integrator matches MD
// concepts across partial designs through their ontology anchors.
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// Multiplicity annotates an object property domain→range.
type Multiplicity int

// Multiplicities. ManyToOne means many domain instances map to one
// range instance — the "functional" direction MD dimensions need.
const (
	OneToOne Multiplicity = iota
	ManyToOne
	OneToMany
	ManyToMany
)

// String returns the canonical dash-separated name.
func (m Multiplicity) String() string {
	switch m {
	case OneToOne:
		return "one-to-one"
	case ManyToOne:
		return "many-to-one"
	case OneToMany:
		return "one-to-many"
	case ManyToMany:
		return "many-to-many"
	default:
		return fmt.Sprintf("multiplicity(%d)", int(m))
	}
}

// ParseMultiplicity parses the dash-separated form.
func ParseMultiplicity(s string) (Multiplicity, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "one-to-one", "1-1":
		return OneToOne, nil
	case "many-to-one", "n-1":
		return ManyToOne, nil
	case "one-to-many", "1-n":
		return OneToMany, nil
	case "many-to-many", "n-n", "n-m":
		return ManyToMany, nil
	default:
		return 0, fmt.Errorf("ontology: unknown multiplicity %q", s)
	}
}

// DatatypeProperty is a typed attribute of a concept.
type DatatypeProperty struct {
	Name string // local name, e.g. "l_extendedprice"
	Type string // "int", "float", "string", "bool"
	// Label is an optional business-vocabulary label for non-expert
	// users ("extended price").
	Label string
}

// IsNumeric reports whether the property can serve as a measure.
func (p DatatypeProperty) IsNumeric() bool {
	return p.Type == "int" || p.Type == "float"
}

// Concept is an ontology class.
type Concept struct {
	ID     string // e.g. "Lineitem"
	Label  string // business label, e.g. "Line Item"
	props  []DatatypeProperty
	byName map[string]int
}

// Properties returns the concept's datatype properties in insertion
// order.
func (c *Concept) Properties() []DatatypeProperty {
	out := make([]DatatypeProperty, len(c.props))
	copy(out, c.props)
	return out
}

// Property looks a datatype property up by local name.
func (c *Concept) Property(name string) (DatatypeProperty, bool) {
	i, ok := c.byName[name]
	if !ok {
		return DatatypeProperty{}, false
	}
	return c.props[i], true
}

// NumericProperties returns the properties usable as measures.
func (c *Concept) NumericProperties() []DatatypeProperty {
	var out []DatatypeProperty
	for _, p := range c.props {
		if p.IsNumeric() {
			out = append(out, p)
		}
	}
	return out
}

// ObjectProperty is a directed association between two concepts.
type ObjectProperty struct {
	ID     string // e.g. "lineitem_orders"
	Label  string
	Domain string // concept ID
	Range  string // concept ID
	Mult   Multiplicity
}

// Ontology is the domain ontology graph. It is not safe for
// concurrent mutation; build it fully, then share it read-only.
type Ontology struct {
	Name string

	concepts map[string]*Concept
	order    []string // concept insertion order
	objProps map[string]*ObjectProperty
	opOrder  []string
	byDomain map[string][]*ObjectProperty
	byRange  map[string][]*ObjectProperty
	parent   map[string]string // subclass: child -> parent
}

// New creates an empty ontology.
func New(name string) *Ontology {
	return &Ontology{
		Name:     name,
		concepts: map[string]*Concept{},
		objProps: map[string]*ObjectProperty{},
		byDomain: map[string][]*ObjectProperty{},
		byRange:  map[string][]*ObjectProperty{},
		parent:   map[string]string{},
	}
}

// AddConcept registers a concept. The ID must be unique and must not
// contain '.', which separates concept from attribute in qualified
// identifiers.
func (o *Ontology) AddConcept(id, label string) (*Concept, error) {
	if id == "" {
		return nil, fmt.Errorf("ontology: empty concept id")
	}
	if strings.Contains(id, ".") {
		return nil, fmt.Errorf("ontology: concept id %q must not contain '.'", id)
	}
	if _, dup := o.concepts[id]; dup {
		return nil, fmt.Errorf("ontology: duplicate concept %q", id)
	}
	c := &Concept{ID: id, Label: label, byName: map[string]int{}}
	o.concepts[id] = c
	o.order = append(o.order, id)
	return c, nil
}

// AddProperty attaches a datatype property to a concept.
func (o *Ontology) AddProperty(conceptID, name, typ, label string) error {
	c, ok := o.concepts[conceptID]
	if !ok {
		return fmt.Errorf("ontology: unknown concept %q", conceptID)
	}
	switch typ {
	case "int", "float", "string", "bool":
	default:
		return fmt.Errorf("ontology: property %s.%s has unknown type %q", conceptID, name, typ)
	}
	if _, dup := c.byName[name]; dup {
		return fmt.Errorf("ontology: duplicate property %s.%s", conceptID, name)
	}
	c.byName[name] = len(c.props)
	c.props = append(c.props, DatatypeProperty{Name: name, Type: typ, Label: label})
	return nil
}

// AddObjectProperty registers a directed association.
func (o *Ontology) AddObjectProperty(id, label, domain, rng string, m Multiplicity) error {
	if _, dup := o.objProps[id]; dup {
		return fmt.Errorf("ontology: duplicate object property %q", id)
	}
	if _, ok := o.concepts[domain]; !ok {
		return fmt.Errorf("ontology: object property %q has unknown domain %q", id, domain)
	}
	if _, ok := o.concepts[rng]; !ok {
		return fmt.Errorf("ontology: object property %q has unknown range %q", id, rng)
	}
	p := &ObjectProperty{ID: id, Label: label, Domain: domain, Range: rng, Mult: m}
	o.objProps[id] = p
	o.opOrder = append(o.opOrder, id)
	o.byDomain[domain] = append(o.byDomain[domain], p)
	o.byRange[rng] = append(o.byRange[rng], p)
	return nil
}

// SetSubclass records child ⊑ parent in the taxonomy.
func (o *Ontology) SetSubclass(child, parent string) error {
	if _, ok := o.concepts[child]; !ok {
		return fmt.Errorf("ontology: unknown concept %q", child)
	}
	if _, ok := o.concepts[parent]; !ok {
		return fmt.Errorf("ontology: unknown concept %q", parent)
	}
	if child == parent {
		return fmt.Errorf("ontology: %q cannot subclass itself", child)
	}
	o.parent[child] = parent
	// Reject cycles right away.
	seen := map[string]bool{child: true}
	for cur := parent; cur != ""; cur = o.parent[cur] {
		if seen[cur] {
			delete(o.parent, child)
			return fmt.Errorf("ontology: subclass cycle through %q", cur)
		}
		seen[cur] = true
	}
	return nil
}

// Concept returns the concept by ID.
func (o *Ontology) Concept(id string) (*Concept, bool) {
	c, ok := o.concepts[id]
	return c, ok
}

// Concepts returns all concepts in insertion order.
func (o *Ontology) Concepts() []*Concept {
	out := make([]*Concept, 0, len(o.order))
	for _, id := range o.order {
		out = append(out, o.concepts[id])
	}
	return out
}

// ObjectProperty returns an association by ID.
func (o *Ontology) ObjectProperty(id string) (*ObjectProperty, bool) {
	p, ok := o.objProps[id]
	return p, ok
}

// ObjectProperties returns all associations in insertion order.
func (o *Ontology) ObjectProperties() []*ObjectProperty {
	out := make([]*ObjectProperty, 0, len(o.opOrder))
	for _, id := range o.opOrder {
		out = append(out, o.objProps[id])
	}
	return out
}

// PropertiesFrom returns associations whose domain is the concept.
func (o *Ontology) PropertiesFrom(conceptID string) []*ObjectProperty {
	return append([]*ObjectProperty(nil), o.byDomain[conceptID]...)
}

// PropertiesTo returns associations whose range is the concept.
func (o *Ontology) PropertiesTo(conceptID string) []*ObjectProperty {
	return append([]*ObjectProperty(nil), o.byRange[conceptID]...)
}

// Parent returns the direct superclass of a concept, if any.
func (o *Ontology) Parent(conceptID string) (string, bool) {
	p, ok := o.parent[conceptID]
	return p, ok
}

// IsSubclassOf reports whether child ⊑ ancestor (reflexive).
func (o *Ontology) IsSubclassOf(child, ancestor string) bool {
	for cur := child; cur != ""; {
		if cur == ancestor {
			return true
		}
		next, ok := o.parent[cur]
		if !ok {
			return false
		}
		cur = next
	}
	return false
}

// Qualify builds the qualified attribute identifier used across
// Quarry formats: "Concept.attribute".
func Qualify(conceptID, attr string) string { return conceptID + "." + attr }

// SplitQualified splits a qualified identifier into concept and
// attribute. It fails when there is no dot.
func SplitQualified(q string) (concept, attr string, err error) {
	i := strings.IndexByte(q, '.')
	if i <= 0 || i == len(q)-1 {
		return "", "", fmt.Errorf("ontology: %q is not a qualified Concept.attribute identifier", q)
	}
	return q[:i], q[i+1:], nil
}

// ResolveQualified resolves a qualified identifier to its concept and
// datatype property.
func (o *Ontology) ResolveQualified(q string) (*Concept, DatatypeProperty, error) {
	cid, attr, err := SplitQualified(q)
	if err != nil {
		return nil, DatatypeProperty{}, err
	}
	c, ok := o.concepts[cid]
	if !ok {
		return nil, DatatypeProperty{}, fmt.Errorf("ontology: unknown concept %q in %q", cid, q)
	}
	p, ok := c.Property(attr)
	if !ok {
		return nil, DatatypeProperty{}, fmt.Errorf("ontology: concept %q has no property %q", cid, attr)
	}
	return c, p, nil
}

// Validate checks referential integrity of the whole graph. Building
// through the Add* methods already maintains these invariants; this
// re-verifies them after external deserialisation.
func (o *Ontology) Validate() error {
	for _, id := range o.order {
		c := o.concepts[id]
		if c == nil {
			return fmt.Errorf("ontology: nil concept %q", id)
		}
		seen := map[string]bool{}
		for _, p := range c.props {
			if seen[p.Name] {
				return fmt.Errorf("ontology: duplicate property %s.%s", id, p.Name)
			}
			seen[p.Name] = true
		}
	}
	for _, p := range o.objProps {
		if _, ok := o.concepts[p.Domain]; !ok {
			return fmt.Errorf("ontology: property %q references unknown domain %q", p.ID, p.Domain)
		}
		if _, ok := o.concepts[p.Range]; !ok {
			return fmt.Errorf("ontology: property %q references unknown range %q", p.ID, p.Range)
		}
	}
	for child := range o.parent {
		seen := map[string]bool{}
		for cur := child; cur != ""; cur = o.parent[cur] {
			if seen[cur] {
				return fmt.Errorf("ontology: subclass cycle through %q", cur)
			}
			seen[cur] = true
		}
	}
	return nil
}

// Stats summarises the ontology size; used by the elicitor benches.
type Stats struct {
	Concepts         int
	DatatypeProps    int
	ObjectProperties int
	SubclassEdges    int
}

// Stats computes size statistics.
func (o *Ontology) Stats() Stats {
	s := Stats{
		Concepts:         len(o.concepts),
		ObjectProperties: len(o.objProps),
		SubclassEdges:    len(o.parent),
	}
	for _, c := range o.concepts {
		s.DatatypeProps += len(c.props)
	}
	return s
}

// SearchVocabulary returns concept and property identifiers whose ID
// or business label contains the query, case-insensitively; the
// elicitor's vocabulary search box. Results are sorted.
func (o *Ontology) SearchVocabulary(query string) []string {
	q := strings.ToLower(query)
	var out []string
	match := func(id, label string) bool {
		return strings.Contains(strings.ToLower(id), q) ||
			(label != "" && strings.Contains(strings.ToLower(label), q))
	}
	for _, c := range o.Concepts() {
		if match(c.ID, c.Label) {
			out = append(out, c.ID)
		}
		for _, p := range c.props {
			if match(p.Name, p.Label) {
				out = append(out, Qualify(c.ID, p.Name))
			}
		}
	}
	sort.Strings(out)
	return out
}
