package ontology

import (
	"bytes"
	"strings"
	"testing"
)

// miniTPCH builds a small TPC-H-shaped ontology used across the tests:
//
//	Lineitem →(n:1) Orders →(n:1) Customer →(n:1) Nation →(n:1) Region
//	Lineitem →(n:1) Partsupp →(n:1) Part
//	Partsupp →(n:1) Supplier →(n:1) Nation
func miniTPCH(t *testing.T) *Ontology {
	t.Helper()
	o := New("tpch-mini")
	add := func(id string, props ...[2]string) {
		if _, err := o.AddConcept(id, id); err != nil {
			t.Fatal(err)
		}
		for _, p := range props {
			if err := o.AddProperty(id, p[0], p[1], ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("Lineitem", [2]string{"l_quantity", "float"}, [2]string{"l_extendedprice", "float"}, [2]string{"l_discount", "float"})
	add("Orders", [2]string{"o_orderdate", "string"}, [2]string{"o_totalprice", "float"})
	add("Customer", [2]string{"c_name", "string"}, [2]string{"c_acctbal", "float"})
	add("Nation", [2]string{"n_name", "string"})
	add("Region", [2]string{"r_name", "string"})
	add("Partsupp", [2]string{"ps_supplycost", "float"}, [2]string{"ps_availqty", "int"})
	add("Part", [2]string{"p_name", "string"}, [2]string{"p_retailprice", "float"})
	add("Supplier", [2]string{"s_name", "string"})
	rel := func(id, dom, rng string) {
		if err := o.AddObjectProperty(id, "", dom, rng, ManyToOne); err != nil {
			t.Fatal(err)
		}
	}
	rel("lineitem_orders", "Lineitem", "Orders")
	rel("orders_customer", "Orders", "Customer")
	rel("customer_nation", "Customer", "Nation")
	rel("nation_region", "Nation", "Region")
	rel("lineitem_partsupp", "Lineitem", "Partsupp")
	rel("partsupp_part", "Partsupp", "Part")
	rel("partsupp_supplier", "Partsupp", "Supplier")
	rel("supplier_nation", "Supplier", "Nation")
	return o
}

func TestBuildErrors(t *testing.T) {
	o := New("x")
	if _, err := o.AddConcept("", ""); err == nil {
		t.Error("empty concept id accepted")
	}
	if _, err := o.AddConcept("A.B", ""); err == nil {
		t.Error("dotted concept id accepted")
	}
	if _, err := o.AddConcept("A", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddConcept("A", ""); err == nil {
		t.Error("duplicate concept accepted")
	}
	if err := o.AddProperty("missing", "p", "int", ""); err == nil {
		t.Error("property on unknown concept accepted")
	}
	if err := o.AddProperty("A", "p", "blob", ""); err == nil {
		t.Error("unknown property type accepted")
	}
	if err := o.AddProperty("A", "p", "int", ""); err != nil {
		t.Fatal(err)
	}
	if err := o.AddProperty("A", "p", "int", ""); err == nil {
		t.Error("duplicate property accepted")
	}
	if err := o.AddObjectProperty("r", "", "A", "missing", ManyToOne); err == nil {
		t.Error("unknown range accepted")
	}
	if err := o.AddObjectProperty("r", "", "missing", "A", ManyToOne); err == nil {
		t.Error("unknown domain accepted")
	}
}

func TestSubclassCycle(t *testing.T) {
	o := New("x")
	o.AddConcept("A", "")
	o.AddConcept("B", "")
	o.AddConcept("C", "")
	if err := o.SetSubclass("A", "A"); err == nil {
		t.Error("self subclass accepted")
	}
	if err := o.SetSubclass("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := o.SetSubclass("B", "C"); err != nil {
		t.Fatal(err)
	}
	if err := o.SetSubclass("C", "A"); err == nil {
		t.Error("subclass cycle accepted")
	}
	if !o.IsSubclassOf("A", "C") {
		t.Error("A should be transitive subclass of C")
	}
	if o.IsSubclassOf("C", "A") {
		t.Error("C is not a subclass of A")
	}
	if !o.IsSubclassOf("A", "A") {
		t.Error("subclass should be reflexive")
	}
}

func TestQualified(t *testing.T) {
	o := miniTPCH(t)
	q := Qualify("Part", "p_name")
	if q != "Part.p_name" {
		t.Fatalf("Qualify = %q", q)
	}
	c, p, err := o.ResolveQualified(q)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "Part" || p.Name != "p_name" || p.Type != "string" {
		t.Errorf("ResolveQualified = %v %v", c.ID, p)
	}
	for _, bad := range []string{"Part", ".x", "Part.", "Nope.p", "Part.nope"} {
		if _, _, err := o.ResolveQualified(bad); err == nil {
			t.Errorf("ResolveQualified(%q) succeeded", bad)
		}
	}
}

func TestShortestToOnePath(t *testing.T) {
	o := miniTPCH(t)
	p, ok := o.ShortestToOnePath("Lineitem", "Region")
	if !ok {
		t.Fatal("no path Lineitem→Region")
	}
	got := strings.Join(p.Concepts(), "→")
	want := "Lineitem→Orders→Customer→Nation→Region"
	if got != want {
		t.Errorf("path = %s, want %s", got, want)
	}
	for _, s := range p {
		if !s.ToOne() {
			t.Errorf("step %s is not to-one", s.Prop.ID)
		}
	}
	// No functional path in the reverse direction.
	if _, ok := o.ShortestToOnePath("Region", "Lineitem"); ok {
		t.Error("found to-one path Region→Lineitem, want none")
	}
	// Self path is empty.
	p, ok = o.ShortestToOnePath("Part", "Part")
	if !ok || len(p) != 0 {
		t.Errorf("self path = %v, %v", p, ok)
	}
	if _, ok := o.ShortestToOnePath("Nope", "Part"); ok {
		t.Error("path from unknown concept")
	}
}

func TestToOneClosure(t *testing.T) {
	o := miniTPCH(t)
	cl := o.ToOneClosure("Lineitem")
	// Lineitem functionally reaches every other concept in the fixture.
	for _, want := range []string{"Lineitem", "Orders", "Customer", "Nation", "Region", "Partsupp", "Part", "Supplier"} {
		if _, ok := cl[want]; !ok {
			t.Errorf("closure missing %s", want)
		}
	}
	if len(cl) != 8 {
		t.Errorf("closure size = %d, want 8", len(cl))
	}
	// Paths are valid chains rooted at Lineitem.
	for target, path := range cl {
		if len(path) == 0 {
			if target != "Lineitem" {
				t.Errorf("empty path for %s", target)
			}
			continue
		}
		if path[0].From != "Lineitem" {
			t.Errorf("path to %s starts at %s", target, path[0].From)
		}
		if path[len(path)-1].To != target {
			t.Errorf("path to %s ends at %s", target, path[len(path)-1].To)
		}
		for i := 1; i < len(path); i++ {
			if path[i].From != path[i-1].To {
				t.Errorf("broken chain to %s", target)
			}
		}
	}
	// Region reaches only itself.
	if cl := o.ToOneClosure("Region"); len(cl) != 1 {
		t.Errorf("Region closure = %d, want 1", len(cl))
	}
}

func TestClosureViaReverseEdge(t *testing.T) {
	// One-to-many declared Orders→Lineitem is functional in reverse.
	o := New("rev")
	o.AddConcept("Orders", "")
	o.AddConcept("Lineitem", "")
	if err := o.AddObjectProperty("contains", "", "Orders", "Lineitem", OneToMany); err != nil {
		t.Fatal(err)
	}
	p, ok := o.ShortestToOnePath("Lineitem", "Orders")
	if !ok || len(p) != 1 || !p[0].Reverse {
		t.Fatalf("reverse path = %v, %v", p, ok)
	}
	if _, ok := o.ShortestToOnePath("Orders", "Lineitem"); ok {
		t.Error("one-to-many should not be functional forwards")
	}
}

func TestSubclassHopIsFunctional(t *testing.T) {
	o := New("tax")
	o.AddConcept("PremiumCustomer", "")
	o.AddConcept("Customer", "")
	o.AddConcept("Nation", "")
	o.AddObjectProperty("customer_nation", "", "Customer", "Nation", ManyToOne)
	o.SetSubclass("PremiumCustomer", "Customer")
	p, ok := o.ShortestToOnePath("PremiumCustomer", "Nation")
	if !ok || len(p) != 2 {
		t.Fatalf("path = %v, %v; want 2 hops via superclass", p, ok)
	}
}

func TestAllToOnePaths(t *testing.T) {
	o := miniTPCH(t)
	// Two distinct functional paths Lineitem→Nation: via Customer and
	// via Supplier.
	paths := o.AllToOnePaths("Lineitem", "Nation", 5)
	if len(paths) != 2 {
		t.Fatalf("AllToOnePaths = %d paths, want 2", len(paths))
	}
	// Sorted by length: both are 3 hops; tie-broken by property IDs.
	for _, p := range paths {
		if p[len(p)-1].To != "Nation" {
			t.Errorf("path ends at %s", p[len(p)-1].To)
		}
	}
	// Length cap respected.
	if got := o.AllToOnePaths("Lineitem", "Region", 2); len(got) != 0 {
		t.Errorf("maxLen=2 should exclude the 4-hop path, got %d", len(got))
	}
}

func TestFactCandidates(t *testing.T) {
	o := miniTPCH(t)
	ranked := o.FactCandidates()
	if len(ranked) != 8 {
		t.Fatalf("candidates = %d", len(ranked))
	}
	if ranked[0].Concept != "Lineitem" {
		t.Errorf("top fact candidate = %s, want Lineitem", ranked[0].Concept)
	}
	if ranked[0].Dimensions != 7 {
		t.Errorf("Lineitem dimension count = %d, want 7", ranked[0].Dimensions)
	}
	// Region (no numeric props, no reach) should rank last.
	if last := ranked[len(ranked)-1]; last.Concept != "Region" && last.Concept != "Nation" {
		t.Errorf("last candidate = %s", last.Concept)
	}
}

func TestSearchVocabulary(t *testing.T) {
	o := miniTPCH(t)
	got := o.SearchVocabulary("name")
	// All *_name properties.
	want := []string{"Customer.c_name", "Nation.n_name", "Part.p_name", "Region.r_name", "Supplier.s_name"}
	if len(got) != len(want) {
		t.Fatalf("SearchVocabulary = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SearchVocabulary = %v, want %v", got, want)
		}
	}
	if got := o.SearchVocabulary("lineitem"); len(got) == 0 || got[0] != "Lineitem" {
		t.Errorf("SearchVocabulary(lineitem) = %v", got)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	o := miniTPCH(t)
	o.SetSubclass("Partsupp", "Part") // arbitrary taxonomy edge for coverage
	var buf bytes.Buffer
	if err := o.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	o2, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Name != o.Name {
		t.Errorf("name = %q", o2.Name)
	}
	s1, s2 := o.Stats(), o2.Stats()
	if s1 != s2 {
		t.Errorf("stats changed: %+v vs %+v", s1, s2)
	}
	// Semantics preserved: same closure from Lineitem.
	c1, c2 := o.ToOneClosure("Lineitem"), o2.ToOneClosure("Lineitem")
	if len(c1) != len(c2) {
		t.Errorf("closure size changed: %d vs %d", len(c1), len(c2))
	}
	for k := range c1 {
		if _, ok := c2[k]; !ok {
			t.Errorf("closure lost %s", k)
		}
	}
	// Second serialisation is byte-identical (deterministic output).
	var buf2, buf3 bytes.Buffer
	if err := o2.WriteXML(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := o2.WriteXML(&buf3); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf3.String() {
		t.Error("serialisation not deterministic")
	}
}

func TestReadXMLErrors(t *testing.T) {
	bad := []string{
		"not xml",
		`<ontology name="x"><concept id="A"/><concept id="A"/></ontology>`,
		`<ontology name="x"><objectProperty id="r" domain="A" range="B" multiplicity="many-to-one"/></ontology>`,
		`<ontology name="x"><concept id="A"/><concept id="B"/><objectProperty id="r" domain="A" range="B" multiplicity="bogus"/></ontology>`,
		`<ontology name="x"><concept id="A"><property name="p" type="blob"/></concept></ontology>`,
		`<ontology name="x"><concept id="A"/><subclass child="A" parent="Z"/></ontology>`,
	}
	for _, src := range bad {
		if _, err := ReadXML(strings.NewReader(src)); err == nil {
			t.Errorf("ReadXML accepted %q", src)
		}
	}
}

func TestStats(t *testing.T) {
	o := miniTPCH(t)
	s := o.Stats()
	if s.Concepts != 8 || s.ObjectProperties != 8 {
		t.Errorf("stats = %+v", s)
	}
	if s.DatatypeProps != 14 {
		t.Errorf("datatype props = %d, want 14", s.DatatypeProps)
	}
}

func TestMultiplicityParse(t *testing.T) {
	for _, m := range []Multiplicity{OneToOne, ManyToOne, OneToMany, ManyToMany} {
		got, err := ParseMultiplicity(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v: %v, %v", m, got, err)
		}
	}
	if _, err := ParseMultiplicity("x"); err == nil {
		t.Error("ParseMultiplicity(x) succeeded")
	}
}
