package ontology

import "sort"

// Step is one hop along a path of object properties. Reverse marks a
// hop that traverses the property against its declared direction
// (from range to domain).
type Step struct {
	Prop    *ObjectProperty
	From    string
	To      string
	Reverse bool
}

// ToOne reports whether this hop is functional: each instance of From
// determines at most one instance of To. That is the MD-critical
// direction — dimensions must be reachable from facts via to-one
// paths for summarizability (strictness).
func (s Step) ToOne() bool {
	if !s.Reverse {
		return s.Prop.Mult == ManyToOne || s.Prop.Mult == OneToOne
	}
	return s.Prop.Mult == OneToMany || s.Prop.Mult == OneToOne
}

// Path is a sequence of steps; steps[i].To == steps[i+1].From.
type Path []Step

// Concepts lists the concept IDs visited, starting with the source.
func (p Path) Concepts() []string {
	if len(p) == 0 {
		return nil
	}
	out := []string{p[0].From}
	for _, s := range p {
		out = append(out, s.To)
	}
	return out
}

// toOneNeighbors enumerates the functional hops available from a
// concept, in deterministic order.
func (o *Ontology) toOneNeighbors(conceptID string) []Step {
	var out []Step
	for _, p := range o.byDomain[conceptID] {
		s := Step{Prop: p, From: conceptID, To: p.Range, Reverse: false}
		if s.ToOne() {
			out = append(out, s)
		}
	}
	for _, p := range o.byRange[conceptID] {
		s := Step{Prop: p, From: conceptID, To: p.Domain, Reverse: true}
		if s.ToOne() {
			out = append(out, s)
		}
	}
	// Superclass hop: an instance of a subclass is an instance of its
	// superclass (trivially functional).
	if parent, ok := o.parent[conceptID]; ok {
		out = append(out, Step{
			Prop: &ObjectProperty{ID: "subclass:" + conceptID, Domain: conceptID, Range: parent, Mult: ManyToOne},
			From: conceptID,
			To:   parent,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Prop.ID < out[j].Prop.ID
	})
	return out
}

// Neighbors enumerates all hops (functional or not) from a concept;
// used by the elicitor's graph exploration.
func (o *Ontology) Neighbors(conceptID string) []Step {
	var out []Step
	for _, p := range o.byDomain[conceptID] {
		out = append(out, Step{Prop: p, From: conceptID, To: p.Range, Reverse: false})
	}
	for _, p := range o.byRange[conceptID] {
		out = append(out, Step{Prop: p, From: conceptID, To: p.Domain, Reverse: true})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Prop.ID < out[j].Prop.ID
	})
	return out
}

// ShortestToOnePath returns the shortest functional path from→to
// (BFS), or nil when none exists. A nil path with ok==true is
// returned when from==to (the empty path).
func (o *Ontology) ShortestToOnePath(from, to string) (Path, bool) {
	if _, ok := o.concepts[from]; !ok {
		return nil, false
	}
	if _, ok := o.concepts[to]; !ok {
		return nil, false
	}
	if from == to {
		return Path{}, true
	}
	type qe struct {
		concept string
		path    Path
	}
	visited := map[string]bool{from: true}
	queue := []qe{{concept: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, s := range o.toOneNeighbors(cur.concept) {
			if visited[s.To] {
				continue
			}
			np := make(Path, len(cur.path), len(cur.path)+1)
			copy(np, cur.path)
			np = append(np, s)
			if s.To == to {
				return np, true
			}
			visited[s.To] = true
			queue = append(queue, qe{concept: s.To, path: np})
		}
	}
	return nil, false
}

// ToOneClosure returns, for every concept functionally reachable from
// the given one, the shortest to-one path reaching it. The source maps
// to the empty path. This is the dimension-candidate set the
// Requirements Elicitor suggests from a chosen analysis focus.
func (o *Ontology) ToOneClosure(from string) map[string]Path {
	if _, ok := o.concepts[from]; !ok {
		return nil
	}
	out := map[string]Path{from: {}}
	type qe struct {
		concept string
		path    Path
	}
	queue := []qe{{concept: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, s := range o.toOneNeighbors(cur.concept) {
			if _, seen := out[s.To]; seen {
				continue
			}
			np := make(Path, len(cur.path), len(cur.path)+1)
			copy(np, cur.path)
			np = append(np, s)
			out[s.To] = np
			queue = append(queue, qe{concept: s.To, path: np})
		}
	}
	return out
}

// AllToOnePaths enumerates every simple functional path from→to up to
// maxLen hops, in deterministic order. The integrators use the
// alternatives when complementing MD designs.
func (o *Ontology) AllToOnePaths(from, to string, maxLen int) []Path {
	var out []Path
	var dfs func(cur string, visited map[string]bool, path Path)
	dfs = func(cur string, visited map[string]bool, path Path) {
		if cur == to && len(path) > 0 {
			cp := make(Path, len(path))
			copy(cp, path)
			out = append(out, cp)
			return
		}
		if len(path) >= maxLen {
			return
		}
		for _, s := range o.toOneNeighbors(cur) {
			if visited[s.To] {
				continue
			}
			visited[s.To] = true
			dfs(s.To, visited, append(path, s))
			delete(visited, s.To)
		}
	}
	if _, ok := o.concepts[from]; !ok {
		return nil
	}
	dfs(from, map[string]bool{from: true}, nil)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for k := range out[i] {
			if out[i][k].Prop.ID != out[j][k].Prop.ID {
				return out[i][k].Prop.ID < out[j][k].Prop.ID
			}
		}
		return false
	})
	return out
}

// FactCandidates ranks concepts by their suitability as analysis foci:
// concepts with numeric properties and many outgoing functional paths
// (potential dimensions) score high. This implements the elicitor's
// "automatically suggesting potentially interesting analytical
// perspectives".
func (o *Ontology) FactCandidates() []ScoredConcept {
	var out []ScoredConcept
	for _, c := range o.Concepts() {
		numMeasures := len(c.NumericProperties())
		reach := len(o.ToOneClosure(c.ID)) - 1
		score := float64(numMeasures)*2 + float64(reach)
		if numMeasures == 0 {
			score /= 4 // focusing on a measure-less concept is rarely useful
		}
		out = append(out, ScoredConcept{Concept: c.ID, Score: score, Measures: numMeasures, Dimensions: reach})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Concept < out[j].Concept
	})
	return out
}

// ScoredConcept is a ranked suggestion.
type ScoredConcept struct {
	Concept    string
	Score      float64
	Measures   int // numeric properties available as measures
	Dimensions int // concepts functionally reachable (dimension candidates)
}
