package ontology

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// genOntology builds a random ontology with n concepts and ~2n edges.
func genOntology(r *rand.Rand, n int) *Ontology {
	o := New("gen")
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("C%02d", i)
		o.AddConcept(id, "")
		o.AddProperty(id, "v", "float", "")
		o.AddProperty(id, "k", "string", "")
	}
	mults := []Multiplicity{OneToOne, ManyToOne, OneToMany, ManyToMany}
	for e := 0; e < 2*n; e++ {
		d := fmt.Sprintf("C%02d", r.Intn(n))
		g := fmt.Sprintf("C%02d", r.Intn(n))
		if d == g {
			continue
		}
		o.AddObjectProperty(fmt.Sprintf("e%03d", e), "", d, g, mults[r.Intn(len(mults))])
	}
	return o
}

// Property: every path in ToOneClosure is a valid functional chain
// from the source, and its length equals the BFS shortest length.
func TestQuickClosurePathsAreValidAndShortest(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		o := genOntology(r, 3+r.Intn(10))
		src := fmt.Sprintf("C%02d", r.Intn(len(o.Concepts())))
		cl := o.ToOneClosure(src)
		for target, path := range cl {
			cur := src
			for _, s := range path {
				if s.From != cur || !s.ToOne() {
					return false
				}
				cur = s.To
			}
			if cur != target {
				return false
			}
			sp, ok := o.ShortestToOnePath(src, target)
			if !ok || len(sp) != len(path) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: ShortestToOnePath succeeds exactly for targets in the
// closure, and every enumerated simple path has at least that length.
func TestQuickShortestConsistentWithAll(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		o := genOntology(r, 3+r.Intn(8))
		concepts := o.Concepts()
		src := concepts[r.Intn(len(concepts))].ID
		dst := concepts[r.Intn(len(concepts))].ID
		cl := o.ToOneClosure(src)
		sp, ok := o.ShortestToOnePath(src, dst)
		if _, inCl := cl[dst]; inCl != ok {
			return false
		}
		if !ok {
			return len(o.AllToOnePaths(src, dst, 6)) == 0 ||
				// AllToOnePaths may find longer simple paths even when
				// BFS closure visits dst... it cannot: closure covers
				// all reachable. So no paths may exist.
				false
		}
		for _, p := range o.AllToOnePaths(src, dst, 6) {
			if len(p) < len(sp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: XML round trip preserves structural statistics and the
// to-one closure relation for every source concept.
func TestQuickXMLRoundTripPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		o := genOntology(r, 3+r.Intn(8))
		var buf bytes.Buffer
		if err := o.WriteXML(&buf); err != nil {
			return false
		}
		o2, err := ReadXML(&buf)
		if err != nil {
			return false
		}
		if o.Stats() != o2.Stats() {
			return false
		}
		for _, c := range o.Concepts() {
			c1 := o.ToOneClosure(c.ID)
			c2 := o2.ToOneClosure(c.ID)
			if len(c1) != len(c2) {
				return false
			}
			for k, p1 := range c1 {
				p2, ok := c2[k]
				if !ok || len(p1) != len(p2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
