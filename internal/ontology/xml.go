package ontology

import (
	"encoding/xml"
	"fmt"
	"io"
)

// The OWL-flavoured XML interchange format for ontologies. Quarry's
// paper stores domain ontologies as OWL documents handled by Jena; we
// keep the same information content in a compact XML dialect:
//
//	<ontology name="tpch">
//	  <concept id="Lineitem" label="Line Item">
//	    <property name="l_quantity" type="float" label="quantity"/>
//	  </concept>
//	  <objectProperty id="lineitem_orders" domain="Lineitem"
//	                  range="Orders" multiplicity="many-to-one"/>
//	  <subclass child="PremiumCustomer" parent="Customer"/>
//	</ontology>

type xmlOntology struct {
	XMLName    xml.Name      `xml:"ontology"`
	Name       string        `xml:"name,attr"`
	Concepts   []xmlConcept  `xml:"concept"`
	ObjProps   []xmlObjProp  `xml:"objectProperty"`
	Subclasses []xmlSubclass `xml:"subclass"`
}

type xmlConcept struct {
	ID         string        `xml:"id,attr"`
	Label      string        `xml:"label,attr,omitempty"`
	Properties []xmlProperty `xml:"property"`
}

type xmlProperty struct {
	Name  string `xml:"name,attr"`
	Type  string `xml:"type,attr"`
	Label string `xml:"label,attr,omitempty"`
}

type xmlObjProp struct {
	ID    string `xml:"id,attr"`
	Label string `xml:"label,attr,omitempty"`
	Dom   string `xml:"domain,attr"`
	Rng   string `xml:"range,attr"`
	Mult  string `xml:"multiplicity,attr"`
}

type xmlSubclass struct {
	Child  string `xml:"child,attr"`
	Parent string `xml:"parent,attr"`
}

// WriteXML serialises the ontology.
func (o *Ontology) WriteXML(w io.Writer) error {
	doc := xmlOntology{Name: o.Name}
	for _, c := range o.Concepts() {
		xc := xmlConcept{ID: c.ID, Label: c.Label}
		for _, p := range c.props {
			xc.Properties = append(xc.Properties, xmlProperty{Name: p.Name, Type: p.Type, Label: p.Label})
		}
		doc.Concepts = append(doc.Concepts, xc)
	}
	for _, p := range o.ObjectProperties() {
		doc.ObjProps = append(doc.ObjProps, xmlObjProp{
			ID: p.ID, Label: p.Label, Dom: p.Domain, Rng: p.Range, Mult: p.Mult.String(),
		})
	}
	// Deterministic subclass order: insertion order of concepts.
	for _, id := range o.order {
		if parent, ok := o.parent[id]; ok {
			doc.Subclasses = append(doc.Subclasses, xmlSubclass{Child: id, Parent: parent})
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("ontology: encode: %w", err)
	}
	return enc.Flush()
}

// ReadXML parses an ontology document and validates it.
func ReadXML(r io.Reader) (*Ontology, error) {
	var doc xmlOntology
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("ontology: decode: %w", err)
	}
	o := New(doc.Name)
	for _, xc := range doc.Concepts {
		c, err := o.AddConcept(xc.ID, xc.Label)
		if err != nil {
			return nil, err
		}
		_ = c
		for _, xp := range xc.Properties {
			if err := o.AddProperty(xc.ID, xp.Name, xp.Type, xp.Label); err != nil {
				return nil, err
			}
		}
	}
	for _, xp := range doc.ObjProps {
		m, err := ParseMultiplicity(xp.Mult)
		if err != nil {
			return nil, err
		}
		if err := o.AddObjectProperty(xp.ID, xp.Label, xp.Dom, xp.Rng, m); err != nil {
			return nil, err
		}
	}
	for _, sc := range doc.Subclasses {
		if err := o.SetSubclass(sc.Child, sc.Parent); err != nil {
			return nil, err
		}
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}
