package pdi

import (
	"encoding/xml"
	"strings"
	"testing"

	"quarry/internal/interpreter"
	"quarry/internal/tpch"
	"quarry/internal/xlm"
)

func revenueETL(t *testing.T) *xlm.Design {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := interpreter.New(o, m, c)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := in.Interpret(tpch.RevenueRequirement())
	if err != nil {
		t.Fatal(err)
	}
	return pd.ETL
}

func TestMarshalKTR(t *testing.T) {
	d := revenueETL(t)
	ktr, err := Marshal(d, "demo")
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3's artifact shape: transformation / connection / order
	// with hops / steps with types.
	for _, want := range []string{
		"<transformation>",
		"<database>demo</database>",
		"<hop>",
		"<from>DATASTORE_Lineitem</from>",
		"<to>EXTRACTION_Lineitem</to>",
		"<enabled>Y</enabled>",
		"<name>DATASTORE_Lineitem</name>",
		"<type>TableInput</type>",
		"<type>FilterRows</type>",
		"<type>MergeJoin</type>",
		"<type>GroupBy</type>",
		"<type>Calculator</type>",
		"<type>TableOutput</type>",
		"SELECT ",
	} {
		if !strings.Contains(ktr, want) {
			t.Errorf("ktr missing %q", want)
		}
	}
	// Well-formed XML.
	var probe struct {
		XMLName xml.Name `xml:"transformation"`
		Steps   []struct {
			Name string `xml:"name"`
			Type string `xml:"type"`
		} `xml:"step"`
		Hops []struct {
			From string `xml:"from"`
			To   string `xml:"to"`
		} `xml:"order>hop"`
	}
	if err := xml.Unmarshal([]byte(ktr), &probe); err != nil {
		t.Fatalf("ktr not well-formed: %v", err)
	}
	if len(probe.Steps) != len(d.Nodes()) {
		t.Errorf("steps = %d, nodes = %d", len(probe.Steps), len(d.Nodes()))
	}
	if len(probe.Hops) != len(d.Edges()) {
		t.Errorf("hops = %d, edges = %d", len(probe.Hops), len(d.Edges()))
	}
}

func TestStepTypeMapping(t *testing.T) {
	cases := map[xlm.OpType]string{
		xlm.OpDatastore:    "TableInput",
		xlm.OpExtraction:   "Dummy",
		xlm.OpSelection:    "FilterRows",
		xlm.OpProjection:   "SelectValues",
		xlm.OpJoin:         "MergeJoin",
		xlm.OpAggregation:  "GroupBy",
		xlm.OpFunction:     "Calculator",
		xlm.OpUnion:        "Append",
		xlm.OpSort:         "SortRows",
		xlm.OpSurrogateKey: "CombinationLookup",
		xlm.OpLoader:       "TableOutput",
	}
	for op, want := range cases {
		if got := StepType(op); got != want {
			t.Errorf("StepType(%s) = %s, want %s", op, got, want)
		}
	}
	if StepType("Mystery") != "Dummy" {
		t.Error("unknown op should map to Dummy")
	}
}

func TestWriteRejectsInvalidDesign(t *testing.T) {
	d := xlm.NewDesign("bad")
	if _, err := Marshal(d, "demo"); err == nil {
		t.Error("invalid design exported")
	}
}

func TestPdiTypes(t *testing.T) {
	for in, want := range map[string]string{
		"int": "Integer", "float": "Number", "string": "String", "bool": "Boolean", "x": "String",
	} {
		if got := pdiType(in); got != want {
			t.Errorf("pdiType(%s) = %s", in, got)
		}
	}
}
