package quality

import (
	"testing"

	"quarry/internal/tpch"
	"quarry/internal/xlm"
)

// pipe builds src → mid → loader without validation (Estimate works
// on raw graphs).
func pipe(t *testing.T, mid *xlm.Node) *xlm.Design {
	t.Helper()
	d := xlm.NewDesign("p")
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "a", Type: "int"}, {Name: "s", Type: "string"}},
		Params: map[string]string{"store": "tpch", "table": "lineitem"}})
	if err := d.AddNode(mid); err != nil {
		t.Fatal(err)
	}
	d.AddNode(&xlm.Node{Name: "L", Type: xlm.OpLoader, Params: map[string]string{"table": "o"}})
	d.AddEdge("DS", mid.Name)
	d.AddEdge(mid.Name, "L")
	return d
}

func TestEstimateUnionAndSort(t *testing.T) {
	cat, _ := tpch.Catalog(1)
	m := DefaultETLCost(cat)
	d := xlm.NewDesign("u")
	d.AddNode(&xlm.Node{Name: "A", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "a", Type: "int"}},
		Params: map[string]string{"store": "tpch", "table": "nation"}})
	d.AddNode(&xlm.Node{Name: "B", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "a", Type: "int"}},
		Params: map[string]string{"store": "tpch", "table": "region"}})
	d.AddNode(&xlm.Node{Name: "U", Type: xlm.OpUnion})
	d.AddNode(&xlm.Node{Name: "S", Type: xlm.OpSort, Params: map[string]string{"by": "a"}})
	d.AddNode(&xlm.Node{Name: "L", Type: xlm.OpLoader, Params: map[string]string{"table": "o"}})
	d.AddEdge("A", "U")
	d.AddEdge("B", "U")
	d.AddEdge("U", "S")
	d.AddEdge("S", "L")
	_, card, err := m.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if card["U"] != 30 { // 25 nations + 5 regions
		t.Errorf("union card = %v", card["U"])
	}
	if card["S"] != card["U"] || card["L"] != card["S"] {
		t.Errorf("sort/loader cards = %v / %v", card["S"], card["L"])
	}
}

func TestEstimateSelectivityShapes(t *testing.T) {
	cat, _ := tpch.Catalog(1)
	m := DefaultETLCost(cat)
	// Range predicate on a known column → default selectivity.
	d := pipe(t, &xlm.Node{Name: "SEL", Type: xlm.OpSelection,
		Params: map[string]string{"predicate": "a > 10"}})
	_, card, err := m.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := card["SEL"] / card["DS"]; got < 0.3 || got > 0.4 {
		t.Errorf("range selectivity = %v", got)
	}
	// Conjunction multiplies selectivities.
	d2 := pipe(t, &xlm.Node{Name: "SEL", Type: xlm.OpSelection,
		Params: map[string]string{"predicate": "a > 10 AND s = 'x'"}})
	_, card2, err := m.Estimate(d2)
	if err != nil {
		t.Fatal(err)
	}
	if card2["SEL"] >= card["SEL"] {
		t.Errorf("conjunct did not reduce: %v vs %v", card2["SEL"], card["SEL"])
	}
	// Broken predicate errors.
	d3 := pipe(t, &xlm.Node{Name: "SEL", Type: xlm.OpSelection,
		Params: map[string]string{"predicate": "1 +"}})
	if _, _, err := m.Estimate(d3); err == nil {
		t.Error("broken predicate estimated")
	}
}

func TestEstimateErrorPaths(t *testing.T) {
	cat, _ := tpch.Catalog(1)
	m := DefaultETLCost(cat)
	// Join with malformed on.
	d := xlm.NewDesign("j")
	d.AddNode(&xlm.Node{Name: "A", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "a", Type: "int"}},
		Params: map[string]string{"store": "tpch", "table": "nation"}})
	d.AddNode(&xlm.Node{Name: "B", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "b", Type: "int"}},
		Params: map[string]string{"store": "tpch", "table": "region"}})
	d.AddNode(&xlm.Node{Name: "J", Type: xlm.OpJoin, Params: map[string]string{"on": "nonsense"}})
	d.AddEdge("A", "J")
	d.AddEdge("B", "J")
	if _, _, err := m.Estimate(d); err == nil {
		t.Error("malformed join estimated")
	}
	// Aggregation estimation only needs the group columns, so a
	// malformed aggregates parameter does not block cost estimation
	// (structural validation catches it separately).
	d2 := pipe(t, &xlm.Node{Name: "AGG", Type: xlm.OpAggregation,
		Params: map[string]string{"group": "a", "aggregates": "broken"}})
	if _, card, err := m.Estimate(d2); err != nil || card["AGG"] <= 0 {
		t.Errorf("aggregation estimate = %v, %v", card["AGG"], err)
	}
	if err := d2.Validate(); err == nil {
		t.Error("malformed aggregates passed structural validation")
	}
}

func TestEstimateJoinWithoutStats(t *testing.T) {
	m := DefaultETLCost(nil) // no catalog at all
	d := xlm.NewDesign("j")
	d.AddNode(&xlm.Node{Name: "A", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "a", Type: "int"}},
		Params: map[string]string{"table": "x"}})
	d.AddNode(&xlm.Node{Name: "B", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "b", Type: "int"}},
		Params: map[string]string{"table": "y"}})
	d.AddNode(&xlm.Node{Name: "J", Type: xlm.OpJoin, Params: map[string]string{"on": "a=b"}})
	d.AddEdge("A", "J")
	d.AddEdge("B", "J")
	_, card, err := m.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	// FK-join heuristic: |A|·|B| / max(|A|,|B|) = min side size.
	if card["J"] != 1000 {
		t.Errorf("join card = %v", card["J"])
	}
}

func TestEstimateAggregationGroupCap(t *testing.T) {
	cat, _ := tpch.Catalog(1)
	m := DefaultETLCost(cat)
	// Grouping by an unknown column uses the default factor but never
	// exceeds input cardinality.
	d := pipe(t, &xlm.Node{Name: "AGG", Type: xlm.OpAggregation,
		Params: map[string]string{"group": "mystery1,mystery2,mystery3,mystery4", "aggregates": "x:COUNT:"}})
	_, card, err := m.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if card["AGG"] > card["DS"] {
		t.Errorf("aggregation exceeded input: %v > %v", card["AGG"], card["DS"])
	}
}

func TestEstimateWeightsDefault(t *testing.T) {
	cat, _ := tpch.Catalog(1)
	m := &ExecutionTimeModel{Catalog: cat, DefaultSelectivity: 0.5} // no weights
	d := pipe(t, &xlm.Node{Name: "SEL", Type: xlm.OpSelection,
		Params: map[string]string{"predicate": "a > 1"}})
	cost, _, err := m.Estimate(d)
	if err != nil || cost <= 0 {
		t.Errorf("cost = %v, %v", cost, err)
	}
}
