// Package quality implements the user-specified quality factors that
// drive Quarry's Design Integrator: the structural design complexity
// of MD schemata and the estimated overall execution time of ETL
// processes — the two example factors the paper demonstrates — behind
// pluggable interfaces ("configurable cost models that may consider
// different quality factors").
package quality

import (
	"fmt"

	"quarry/internal/expr"
	"quarry/internal/sources"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
)

// MDCostModel scores an MD schema; lower is better.
type MDCostModel interface {
	Complexity(s *xmd.Schema) float64
}

// StructuralComplexity is the weighted element count the paper names
// as its example MD quality factor, with a bonus for conformed
// (shared) dimensions: a constellation reusing dimensions across
// facts is structurally simpler than disjoint stars of the same
// content.
type StructuralComplexity struct {
	FactWeight       float64
	DimensionWeight  float64
	LevelWeight      float64
	DescriptorWeight float64
	RollupWeight     float64
	UseWeight        float64
	// SharedDimBonus is subtracted once per conformed dimension.
	SharedDimBonus float64
}

// DefaultMDCost returns the default structural-complexity weights.
func DefaultMDCost() *StructuralComplexity {
	return &StructuralComplexity{
		FactWeight:       10,
		DimensionWeight:  5,
		LevelWeight:      2,
		DescriptorWeight: 0.5,
		RollupWeight:     1,
		UseWeight:        1,
		SharedDimBonus:   4,
	}
}

// Complexity implements MDCostModel.
func (m *StructuralComplexity) Complexity(s *xmd.Schema) float64 {
	st := s.Stats()
	c := m.FactWeight*float64(st.Facts) +
		m.DimensionWeight*float64(st.Dimensions) +
		m.LevelWeight*float64(st.Levels) +
		m.DescriptorWeight*float64(st.Descriptors) +
		m.RollupWeight*float64(st.Rollups) +
		m.UseWeight*float64(st.Uses) -
		m.SharedDimBonus*float64(st.SharedDims)
	if c < 0 {
		c = 0
	}
	return c
}

// ETLCostModel estimates a design's overall execution cost; lower is
// better. Estimate returns the total cost and the per-node output
// cardinality estimates it derived.
type ETLCostModel interface {
	Estimate(d *xlm.Design) (float64, map[string]float64, error)
}

// ExecutionTimeModel estimates execution time as weighted rows
// processed, propagating cardinalities from catalog statistics
// through the flow: the ETL quality factor of the paper's demo
// ("overall execution time for ETL processes").
type ExecutionTimeModel struct {
	// Catalog supplies source cardinalities and distinct-value
	// counts. Column statistics are looked up by column name across
	// relations (Quarry's generated flows keep physical column names).
	Catalog *sources.Catalog
	// DefaultSelectivity is applied per selection conjunct whose
	// selectivity cannot be derived from statistics.
	DefaultSelectivity float64
	// Weights per operation type (cost per row processed); missing
	// types default to 1.
	Weights map[xlm.OpType]float64
}

// DefaultETLCost returns an execution-time model over the catalog
// with PDI-flavoured operation weights (joins and aggregations cost
// more per row than projections).
func DefaultETLCost(cat *sources.Catalog) *ExecutionTimeModel {
	return &ExecutionTimeModel{
		Catalog:            cat,
		DefaultSelectivity: 0.33,
		Weights: map[xlm.OpType]float64{
			xlm.OpDatastore:    0.5,
			xlm.OpExtraction:   0.5,
			xlm.OpSelection:    1,
			xlm.OpProjection:   0.8,
			xlm.OpFunction:     1.2,
			xlm.OpJoin:         2.5,
			xlm.OpAggregation:  2,
			xlm.OpUnion:        0.5,
			xlm.OpSort:         2,
			xlm.OpSurrogateKey: 1.5,
			xlm.OpLoader:       1.5,
		},
	}
}

// columnDistinct finds distinct-value statistics for a physical
// column name anywhere in the catalog.
func (m *ExecutionTimeModel) columnDistinct(col string) (int64, bool) {
	if m.Catalog == nil {
		return 0, false
	}
	for _, st := range m.Catalog.Stores() {
		for _, rel := range st.Relations() {
			if rel.HasAttribute(col) {
				return rel.DistinctValues(col), true
			}
		}
	}
	return 0, false
}

// Estimate implements ETLCostModel.
func (m *ExecutionTimeModel) Estimate(d *xlm.Design) (float64, map[string]float64, error) {
	order, err := d.TopoSort()
	if err != nil {
		return 0, nil, err
	}
	card := map[string]float64{}
	var total float64
	for _, n := range order {
		inputs := d.Inputs(n.Name)
		var inRows float64
		for _, in := range inputs {
			inRows += card[in.Name]
		}
		out, err := m.outputCard(d, n, inputs, card)
		if err != nil {
			return 0, nil, err
		}
		card[n.Name] = out
		w, ok := m.Weights[n.Type]
		if !ok {
			w = 1
		}
		total += w * (inRows + out)
	}
	return total, card, nil
}

func (m *ExecutionTimeModel) outputCard(d *xlm.Design, n *xlm.Node, inputs []*xlm.Node, card map[string]float64) (float64, error) {
	in := func(i int) float64 { return card[inputs[i].Name] }
	switch n.Type {
	case xlm.OpDatastore:
		if m.Catalog != nil {
			if st, ok := m.Catalog.Store(n.Param("store")); ok {
				if rel, ok := st.Relation(n.Param("table")); ok {
					return float64(rel.Stats.Rows), nil
				}
			}
		}
		return 1000, nil // unknown source: nominal size
	case xlm.OpExtraction, xlm.OpSort, xlm.OpFunction, xlm.OpSurrogateKey, xlm.OpProjection, xlm.OpLoader:
		if len(inputs) == 0 {
			return 0, fmt.Errorf("quality: %s %q has no input", n.Type, n.Name)
		}
		return in(0), nil
	case xlm.OpSelection:
		if len(inputs) == 0 {
			return 0, fmt.Errorf("quality: selection %q has no input", n.Name)
		}
		pred, err := n.Predicate()
		if err != nil {
			return 0, err
		}
		sel := 1.0
		for _, conj := range expr.Conjuncts(pred) {
			sel *= m.conjunctSelectivity(conj)
		}
		return in(0) * sel, nil
	case xlm.OpJoin:
		if len(inputs) != 2 {
			return 0, fmt.Errorf("quality: join %q needs 2 inputs", n.Name)
		}
		pairs, err := n.JoinPairs()
		if err != nil {
			return 0, err
		}
		// |L⋈R| ≈ |L|·|R| / max(V(L,a), V(R,b)) per pair.
		size := in(0) * in(1)
		for _, p := range pairs {
			dl, okL := m.columnDistinct(p[0])
			dr, okR := m.columnDistinct(p[1])
			div := 1.0
			if okL && float64(dl) > div {
				div = float64(dl)
			}
			if okR && float64(dr) > div {
				div = float64(dr)
			}
			if !okL && !okR {
				div = maxf(in(0), in(1)) // FK-join heuristic
			}
			if div > 0 {
				size /= div
			}
		}
		return size, nil
	case xlm.OpAggregation:
		if len(inputs) == 0 {
			return 0, fmt.Errorf("quality: aggregation %q has no input", n.Name)
		}
		groups := 1.0
		for _, g := range n.GroupBy() {
			if dv, ok := m.columnDistinct(g); ok {
				groups *= float64(dv)
			} else {
				groups *= 10
			}
		}
		return minf(groups, in(0)), nil
	case xlm.OpUnion:
		var sum float64
		for i := range inputs {
			sum += in(i)
		}
		return sum, nil
	}
	return 0, fmt.Errorf("quality: unknown operation type %q", n.Type)
}

// conjunctSelectivity estimates one predicate conjunct: equality on a
// column with known distinct count selects 1/V rows; other shapes get
// the default.
func (m *ExecutionTimeModel) conjunctSelectivity(conj expr.Node) float64 {
	ids := expr.Idents(conj)
	if len(ids) == 1 {
		if s := conj.String(); len(s) > 0 {
			if isEquality(s) {
				if dv, ok := m.columnDistinct(ids[0]); ok && dv > 0 {
					return 1 / float64(dv)
				}
			}
		}
	}
	return m.DefaultSelectivity
}

// isEquality detects a top-level '=' (and not '<=', '>=', '<>', '!=')
// in the printed conjunct.
func isEquality(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '=' {
			continue
		}
		if i > 0 && (s[i-1] == '<' || s[i-1] == '>' || s[i-1] == '!') {
			continue
		}
		return true
	}
	return false
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
