package quality

import (
	"testing"

	"quarry/internal/tpch"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
)

func star(shared bool) *xmd.Schema {
	s := &xmd.Schema{
		Name: "s",
		Facts: []*xmd.Fact{
			{
				Name: "f1", Measures: []xmd.Measure{{Name: "m1", Type: "float", Additivity: xmd.AdditivityFlow}},
				Uses: []xmd.DimensionUse{{Dimension: "D1", Level: "L1"}},
			},
			{
				Name: "f2", Measures: []xmd.Measure{{Name: "m2", Type: "float", Additivity: xmd.AdditivityFlow}},
			},
		},
		Dimensions: []*xmd.Dimension{
			{Name: "D1", Levels: []*xmd.Level{{Name: "L1"}}},
			{Name: "D2", Levels: []*xmd.Level{{Name: "L2"}}},
		},
	}
	if shared {
		s.Facts[1].Uses = []xmd.DimensionUse{{Dimension: "D1", Level: "L1"}}
	} else {
		s.Facts[1].Uses = []xmd.DimensionUse{{Dimension: "D2", Level: "L2"}}
	}
	return s
}

func TestStructuralComplexityPrefersConformedDims(t *testing.T) {
	m := DefaultMDCost()
	sharedCost := m.Complexity(star(true))
	splitCost := m.Complexity(star(false))
	if sharedCost >= splitCost {
		t.Errorf("shared = %v, split = %v; conformed dimensions must score lower", sharedCost, splitCost)
	}
	if m.Complexity(&xmd.Schema{Name: "empty"}) != 0 {
		t.Error("empty schema should cost 0")
	}
}

func TestComplexityMonotonicInElements(t *testing.T) {
	m := DefaultMDCost()
	s := star(false)
	base := m.Complexity(s)
	s.Dimensions[0].Levels = append(s.Dimensions[0].Levels, &xmd.Level{Name: "extra"})
	if m.Complexity(s) <= base {
		t.Error("adding a level must increase complexity")
	}
}

// buildFlow constructs a small flow over the TPC-H catalog:
// lineitem → selection → join supplier → aggregation → load.
func buildFlow(t *testing.T, withSelection bool) *xlm.Design {
	t.Helper()
	d := xlm.NewDesign("cost_test")
	add := func(n *xlm.Node) {
		if err := d.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	add(&xlm.Node{Name: "DS_li", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "l_suppkey", Type: "int"}, {Name: "l_extendedprice", Type: "float"}, {Name: "l_returnflag", Type: "string"}},
		Params: map[string]string{"store": "tpch", "table": "lineitem"}})
	add(&xlm.Node{Name: "DS_sup", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "s_suppkey", Type: "int"}, {Name: "s_name", Type: "string"}},
		Params: map[string]string{"store": "tpch", "table": "supplier"}})
	prev := "DS_li"
	if withSelection {
		add(&xlm.Node{Name: "SEL", Type: xlm.OpSelection, Params: map[string]string{"predicate": "l_returnflag = 'R'"}})
		d.AddEdge(prev, "SEL")
		prev = "SEL"
	}
	add(&xlm.Node{Name: "J", Type: xlm.OpJoin, Params: map[string]string{"on": "l_suppkey=s_suppkey"}})
	d.AddEdge(prev, "J")
	d.AddEdge("DS_sup", "J")
	add(&xlm.Node{Name: "AGG", Type: xlm.OpAggregation, Params: map[string]string{"group": "s_name", "aggregates": "x:SUM:l_extendedprice"}})
	d.AddEdge("J", "AGG")
	add(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("AGG", "LOAD")
	return d
}

func TestETLCostEstimates(t *testing.T) {
	cat, err := tpch.Catalog(10)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultETLCost(cat)
	d := buildFlow(t, false)
	cost, card, err := m.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("non-positive cost")
	}
	// Source cardinalities come from the catalog.
	if card["DS_li"] != 6000 {
		t.Errorf("lineitem card = %v", card["DS_li"])
	}
	if card["DS_sup"] != 10 {
		t.Errorf("supplier card = %v", card["DS_sup"])
	}
	// FK join lineitem⋈supplier keeps ~|lineitem| rows.
	if card["J"] < 5000 || card["J"] > 7000 {
		t.Errorf("join card = %v", card["J"])
	}
	// Aggregation output bounded by group distinct values.
	if card["AGG"] > card["J"] {
		t.Errorf("aggregation grew: %v > %v", card["AGG"], card["J"])
	}
}

func TestETLCostSelectionReducesCost(t *testing.T) {
	cat, err := tpch.Catalog(10)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultETLCost(cat)
	withSel := buildFlow(t, true)
	withoutSel := buildFlow(t, false)
	cWith, cardWith, err := m.Estimate(withSel)
	if err != nil {
		t.Fatal(err)
	}
	cWithout, _, err := m.Estimate(withoutSel)
	if err != nil {
		t.Fatal(err)
	}
	// Equality on l_returnflag (3 distinct) → join sees ~1/3 rows;
	// downstream cost drops despite the extra operation.
	if cardWith["SEL"] < 1500 || cardWith["SEL"] > 2500 {
		t.Errorf("selection card = %v, want ~2000", cardWith["SEL"])
	}
	if cWith >= cWithout {
		t.Errorf("selective flow cost %v >= unselective %v", cWith, cWithout)
	}
}

func TestCostOnCyclicDesignFails(t *testing.T) {
	cat, _ := tpch.Catalog(1)
	m := DefaultETLCost(cat)
	d := buildFlow(t, false)
	// No cycle possible through public API; simulate unknown op cost
	// path instead: estimate a valid design twice for determinism.
	c1, _, err := m.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := m.Estimate(d)
	if err != nil || c1 != c2 {
		t.Errorf("estimate not deterministic: %v vs %v (%v)", c1, c2, err)
	}
}

func TestUnknownSourceGetsNominalCardinality(t *testing.T) {
	m := DefaultETLCost(nil)
	d := xlm.NewDesign("nocat")
	d.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "a", Type: "int"}},
		Params: map[string]string{"table": "mystery"}})
	d.AddNode(&xlm.Node{Name: "LOAD", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	d.AddEdge("DS", "LOAD")
	_, card, err := m.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if card["DS"] != 1000 {
		t.Errorf("nominal card = %v", card["DS"])
	}
}

func TestIsEquality(t *testing.T) {
	for s, want := range map[string]bool{
		"a = 1":  true,
		"a <= 1": false,
		"a >= 1": false,
		"a <> 1": false,
		"a != 1": false,
		"a < 1":  false,
	} {
		if got := isEquality(s); got != want {
			t.Errorf("isEquality(%q) = %v", s, got)
		}
	}
}
