package replication

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Segment shipping replicates the warehouse DATA; the replica also
// needs the primary's DESIGN (the registered xRQ requirements, from
// which core re-derives the multidimensional schema, the ETL flows and
// the OLAP metadata deterministically) to serve /api/olap. The design
// is tiny and changes rarely, so it rides the ordinary requirement
// API rather than the segment protocol.

// RemoteRequirement is one requirement fetched from a primary, as its
// canonical xRQ XML.
type RemoteRequirement struct {
	ID  string
	XML string
}

// FetchRequirements lists a primary's registered requirements and
// downloads each one's xRQ document, in the primary's registration
// order (replaying them in order reproduces the primary's unified
// design exactly).
func FetchRequirements(ctx context.Context, base string, client *http.Client) ([]RemoteRequirement, error) {
	if client == nil {
		client = http.DefaultClient
	}
	base = strings.TrimRight(base, "/")
	var list []struct {
		ID string `json:"id"`
	}
	if err := getJSON(ctx, client, base+"/api/requirements", &list); err != nil {
		return nil, err
	}
	out := make([]RemoteRequirement, 0, len(list))
	for _, item := range list {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			base+"/api/requirements/"+url.PathEscape(item.ID), nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("replication: GET requirement %s: %s", item.ID, resp.Status)
		}
		out = append(out, RemoteRequirement{ID: item.ID, XML: string(body)})
	}
	return out, nil
}

func getJSON(ctx context.Context, client *http.Client, url string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replication: GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}
