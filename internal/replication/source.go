// Package replication ships committed catalogs between Quarry
// warehouses. It is the transport layer over the storage engine's
// manifest protocol (internal/storage/manifest): a primary's state is
// fully described by one manifest naming immutable segment files, so
// replication is "fetch the segments the remote manifest names that
// the local one does not, then adopt the remote manifest bytes through
// the same fsync+rename commit point". A replica that crashes
// mid-fetch recovers exactly like a primary that crashed mid-commit —
// unreferenced files are garbage, the committed manifest is the truth
// — and catch-up after downtime is just a bigger diff.
package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	mf "quarry/internal/storage/manifest"
)

// ErrNoManifest reports that the primary has not committed anything
// yet — not a failure, just nothing to replicate.
var ErrNoManifest = errors.New("replication: primary has no committed manifest")

// ErrSegmentGone reports that a segment named by the manifest the
// syncer is working from has since been garbage-collected on the
// primary (a republish or compaction landed mid-sync). The sync pass
// fails; the next pass fetches the newer manifest and succeeds.
var ErrSegmentGone = errors.New("replication: segment no longer on primary")

// Source is a primary's replication feed: its committed manifest bytes
// and its immutable segment files. Implementations must tolerate being
// read concurrently with the primary's own commits — which both
// transports below get for free, because segments are never rewritten
// in place and the manifest is replaced atomically.
type Source interface {
	// Manifest returns the primary's committed manifest bytes verbatim
	// (the replica adopts them unmodified, keeping the catalogs
	// byte-identical). ErrNoManifest when the primary is empty.
	Manifest(ctx context.Context) ([]byte, error)
	// Segment opens the named segment file for streaming.
	// ErrSegmentGone when the primary no longer has it.
	Segment(ctx context.Context, name string) (io.ReadCloser, error)
}

// HTTPSource reads a primary over its /api/replication endpoints.
type HTTPSource struct {
	// Base is the primary's base URL (e.g. "http://primary:8080").
	Base string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

func (s *HTTPSource) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

func (s *HTTPSource) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(s.Base, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	return s.client().Do(req)
}

func (s *HTTPSource) Manifest(ctx context.Context) ([]byte, error) {
	resp, err := s.get(ctx, "/api/replication/manifest")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNoManifest
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replication: GET manifest: %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func (s *HTTPSource) Segment(ctx context.Context, name string) (io.ReadCloser, error) {
	if !mf.IsSegmentName(name) {
		return nil, fmt.Errorf("replication: invalid segment name %q", name)
	}
	resp, err := s.get(ctx, "/api/replication/segment/"+url.PathEscape(name))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return nil, ErrSegmentGone
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("replication: GET segment %s: %s", name, resp.Status)
	}
	return resp.Body, nil
}

// DirSource reads a primary's storage directory directly — the
// transport for tests and for replicas sharing a filesystem with the
// primary. Safe against concurrent primary commits for the same
// reason the HTTP transport is: the manifest read sees either the old
// or the new catalog (rename is atomic), and segment files are
// immutable once written.
type DirSource struct {
	Dir string
}

func (s *DirSource) Manifest(_ context.Context) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.Dir, mf.FileName))
	if os.IsNotExist(err) {
		return nil, ErrNoManifest
	}
	return data, err
}

func (s *DirSource) Segment(_ context.Context, name string) (io.ReadCloser, error) {
	if !mf.IsSegmentName(name) {
		return nil, fmt.Errorf("replication: invalid segment name %q", name)
	}
	f, err := os.Open(filepath.Join(s.Dir, name))
	if os.IsNotExist(err) {
		return nil, ErrSegmentGone
	}
	return f, err
}
