package replication

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"quarry/internal/storage"
	mf "quarry/internal/storage/manifest"
)

// fetchSuffix marks an in-flight segment download. A crash leaves the
// partial file behind under this name — never under a real segment
// name, so neither the storage engine's recovery nor a reader can
// confuse it with committed data — and the next sync pass deletes it.
const fetchSuffix = ".fetch"

// TestingSyncFault is a crash-injection hook for tests, mirroring
// storage.TestingCommitFault: when set, it is consulted at the named
// sync stages ("fetch:<segment>": that segment's bytes are on disk
// under its .fetch name, nothing renamed; "rename": every segment
// fetched, final renames pending; "commit": segments renamed and
// durable, manifest commit pending). Returning a non-nil error aborts
// the pass exactly as a crash at that point would. Never set outside
// tests.
var TestingSyncFault func(stage string) error

func syncFault(stage string) error {
	if TestingSyncFault == nil {
		return nil
	}
	return TestingSyncFault(stage)
}

// Report summarises one completed sync pass.
type Report struct {
	// Changed reports whether the pass adopted a new catalog (new
	// manifest bytes — a version bump, or a same-version compaction).
	Changed     bool
	FromVersion uint64
	ToVersion   uint64
	Segments    int   // segment files fetched
	Bytes       int64 // segment bytes fetched
}

// Status is a syncer's cumulative state, served under /api/health on
// replicas. VersionsBehind is the lag in warehouse versions;
// Converged means the replica's catalog matches the last manifest it
// saw from the primary and the last pass succeeded.
type Status struct {
	Primary         string `json:"primary"`
	LocalVersion    uint64 `json:"local_version"`
	RemoteVersion   uint64 `json:"remote_version"`
	VersionsBehind  uint64 `json:"versions_behind"`
	Converged       bool   `json:"converged"`
	Syncs           int64  `json:"syncs"`
	SegmentsFetched int64  `json:"segments_fetched"`
	BytesFetched    int64  `json:"bytes_fetched"`
	LastError       string `json:"last_error,omitempty"`
}

// Syncer replicates a primary (read through a Source) into a local
// disk-backed database. Each Sync pass is the whole protocol: diff
// the catalogs, fetch missing segments, adopt the primary's manifest
// through the storage commit point, reload the DB in place.
type Syncer struct {
	db      *storage.DB
	src     Source
	dir     string
	primary string

	// syncMu serializes passes; mu guards status.
	syncMu sync.Mutex
	mu     sync.Mutex
	status Status
}

// NewSyncer builds a syncer replicating into db, which must be
// disk-backed (the manifest protocol IS the disk layout). primary is
// a display label for Status (e.g. the primary's URL or directory).
func NewSyncer(db *storage.DB, src Source, primary string) (*Syncer, error) {
	dir := db.StorageDir()
	if dir == "" {
		return nil, fmt.Errorf("replication: replica database must be disk-backed")
	}
	return &Syncer{db: db, src: src, dir: dir, primary: primary,
		status: Status{Primary: primary, LocalVersion: db.Version()}}, nil
}

// Status returns a snapshot of the syncer's cumulative state.
func (sy *Syncer) Status() Status {
	sy.mu.Lock()
	defer sy.mu.Unlock()
	return sy.status
}

// Sync runs one replication pass and reports what it did. A pass that
// finds the catalogs already identical is a cheap no-op (one manifest
// read on each side). Passes are serialized; errors leave the local
// database untouched at its previous committed version.
func (sy *Syncer) Sync(ctx context.Context) (Report, error) {
	sy.syncMu.Lock()
	defer sy.syncMu.Unlock()
	rep, remoteVersion, err := sy.pass(ctx)
	sy.mu.Lock()
	defer sy.mu.Unlock()
	sy.status.LocalVersion = sy.db.Version()
	if remoteVersion >= sy.status.RemoteVersion {
		sy.status.RemoteVersion = remoteVersion
	}
	if err != nil {
		sy.status.LastError = err.Error()
		sy.status.Converged = false
		return rep, err
	}
	sy.status.LastError = ""
	sy.status.Syncs++
	sy.status.SegmentsFetched += int64(rep.Segments)
	sy.status.BytesFetched += rep.Bytes
	sy.status.Converged = true
	if sy.status.RemoteVersion > sy.status.LocalVersion {
		sy.status.VersionsBehind = sy.status.RemoteVersion - sy.status.LocalVersion
	} else {
		sy.status.VersionsBehind = 0
	}
	return rep, nil
}

// pass is one sync attempt. It returns the primary's version when it
// learned it (0 otherwise) so Status tracks lag even on failure.
func (sy *Syncer) pass(ctx context.Context) (Report, uint64, error) {
	sy.cleanStrayFetches()
	remoteBytes, err := sy.src.Manifest(ctx)
	if err == ErrNoManifest {
		// Empty primary: nothing to replicate (and nothing to unwind —
		// an already-synced replica keeps serving its last catalog).
		return Report{FromVersion: sy.db.Version(), ToVersion: sy.db.Version()}, 0, nil
	}
	if err != nil {
		return Report{}, 0, err
	}
	remote, err := mf.Parse(remoteBytes)
	if err != nil {
		return Report{}, 0, fmt.Errorf("replication: primary manifest: %w", err)
	}
	local, localBytes, err := mf.Read(sy.dir)
	if err != nil && !os.IsNotExist(err) {
		return Report{}, remote.Version, err
	}
	from := sy.db.Version()
	// Byte equality, not version equality, is the no-op test: a
	// primary compaction commits a different catalog at the SAME
	// version, and the replica must adopt it to keep fetching
	// segments the primary still has.
	if local != nil && bytes.Equal(localBytes, remoteBytes) {
		return Report{FromVersion: from, ToVersion: from}, remote.Version, nil
	}

	rep := Report{Changed: true, FromVersion: from, ToVersion: remote.Version}
	// Phase 1: fetch every missing segment under its .fetch name.
	// Descriptor-level diffing (not file-name presence) makes a
	// recycled segment id — same name, different content after a
	// primary crash — refetch instead of serving stale bytes.
	missing := mf.Diff(local, remote)
	for _, seg := range missing {
		n, err := sy.fetchSegment(ctx, seg)
		if err != nil {
			return Report{}, remote.Version, err
		}
		rep.Segments++
		rep.Bytes += n
	}
	if err := syncFault("rename"); err != nil {
		return Report{}, remote.Version, err
	}
	// Phase 2: move fetched segments to their final names, then make
	// the directory entries durable before the manifest can name them
	// (same ordering as a local commit). Renames are deferred to this
	// phase to keep the window where a final segment name holds
	// content the committed manifest does not describe — reachable
	// only via a recycled id — as small as possible.
	for _, seg := range missing {
		if err := os.Rename(filepath.Join(sy.dir, seg.File+fetchSuffix), filepath.Join(sy.dir, seg.File)); err != nil {
			return Report{}, remote.Version, err
		}
	}
	if len(missing) > 0 {
		if err := mf.FsyncDir(sy.dir); err != nil {
			return Report{}, remote.Version, err
		}
	}
	if err := syncFault("commit"); err != nil {
		return Report{}, remote.Version, err
	}
	// Phase 3: adopt the primary's manifest BYTES verbatim through the
	// storage commit point — the replica's catalog file becomes
	// byte-identical to the primary's — then reload the live DB.
	if err := mf.Commit(sy.dir, remoteBytes); err != nil {
		return Report{}, remote.Version, err
	}
	if err := sy.db.Reload(); err != nil {
		return Report{}, remote.Version, err
	}
	return rep, remote.Version, nil
}

// fetchSegment streams one segment to <name>.fetch, fsyncs it and
// verifies the byte count against the manifest descriptor.
func (sy *Syncer) fetchSegment(ctx context.Context, seg mf.Segment) (int64, error) {
	if !mf.IsSegmentName(seg.File) {
		return 0, fmt.Errorf("replication: manifest names invalid segment %q", seg.File)
	}
	rc, err := sy.src.Segment(ctx, seg.File)
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	tmp := filepath.Join(sy.dir, seg.File+fetchSuffix)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(f, rc)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("replication: fetching %s: %w", seg.File, err)
	}
	if want := seg.Size(); n != want {
		return 0, fmt.Errorf("replication: segment %s: fetched %d bytes, manifest says %d", seg.File, n, want)
	}
	if err := syncFault("fetch:" + seg.File); err != nil {
		return 0, err
	}
	return n, nil
}

// cleanStrayFetches deletes partial downloads a crashed pass left
// behind. Errors are ignored: a stray .fetch file is never read (each
// fetch opens its file with O_TRUNC) and the next pass retries.
func (sy *Syncer) cleanStrayFetches() {
	entries, err := os.ReadDir(sy.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), fetchSuffix) {
			os.Remove(filepath.Join(sy.dir, e.Name()))
		}
	}
}

// Tail polls the primary every interval until ctx is cancelled,
// invoking onChange (if non-nil) after each pass that adopted a new
// catalog. Errors are recorded in Status and retried on the next
// tick.
func (sy *Syncer) Tail(ctx context.Context, interval time.Duration, onChange func(Report)) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if rep, err := sy.Sync(ctx); err == nil && rep.Changed && onChange != nil {
			onChange(rep)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
