package replication_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quarry/internal/expr"
	"quarry/internal/replication"
	"quarry/internal/storage"
)

var testCols = []storage.Column{
	{Name: "id", Type: "int"},
	{Name: "name", Type: "string"},
	{Name: "score", Type: "float"},
}

func testRow(i int) storage.Row {
	return storage.Row{expr.Int(int64(i)), expr.Str(fmt.Sprintf("row-%d", i)), expr.Float(float64(i) / 8)}
}

// newPrimary builds a committed disk-backed database with two tables.
func newPrimary(t *testing.T, rows int) (*storage.DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta"} {
		tbl, err := db.CreateTable(name, testCols)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := tbl.Insert(testRow(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return db, dir
}

func newReplica(t *testing.T, primaryDir string) (*storage.DB, *replication.Syncer) {
	t.Helper()
	db, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sy, err := replication.NewSyncer(db, &replication.DirSource{Dir: primaryDir}, primaryDir)
	if err != nil {
		t.Fatal(err)
	}
	return db, sy
}

// assertTablesEqual fails unless both databases hold identical tables
// (same names, columns, rows in order).
func assertTablesEqual(t *testing.T, want, got *storage.DB) {
	t.Helper()
	wn, gn := want.TableNames(), got.TableNames()
	if strings.Join(wn, ",") != strings.Join(gn, ",") {
		t.Fatalf("table sets differ: primary %v, replica %v", wn, gn)
	}
	for _, name := range wn {
		wt, _ := want.Table(name)
		gt, ok := got.Table(name)
		if !ok {
			t.Fatalf("replica lacks table %s", name)
		}
		wr, gr := wt.Rows(), gt.Rows()
		if len(wr) != len(gr) {
			t.Fatalf("%s: primary %d rows, replica %d", name, len(wr), len(gr))
		}
		for i := range wr {
			for j := range wr[i] {
				if wr[i][j].String() != gr[i][j].String() {
					t.Fatalf("%s row %d col %d: primary %s, replica %s",
						name, i, j, wr[i][j].String(), gr[i][j].String())
				}
			}
		}
	}
}

// TestSyncerConverges: a cold replica converges to the primary in one
// pass, an unchanged primary syncs as a no-op, and further primary
// commits (appends, then a same-version compaction) are adopted
// incrementally.
func TestSyncerConverges(t *testing.T) {
	pdb, pdir := newPrimary(t, 200)
	rdb, sy := newReplica(t, pdir)

	rep, err := sy.Sync(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed || rep.Segments == 0 || rep.Bytes == 0 {
		t.Fatalf("cold sync report = %+v, want a changed pass with fetched segments", rep)
	}
	if rdb.Version() != pdb.Version() {
		t.Fatalf("replica at version %d, primary at %d", rdb.Version(), pdb.Version())
	}
	assertTablesEqual(t, pdb, rdb)
	st := sy.Status()
	if !st.Converged || st.VersionsBehind != 0 {
		t.Fatalf("status = %+v, want converged with zero lag", st)
	}

	// Unchanged primary: a cheap no-op.
	rep, err = sy.Sync(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed || rep.Segments != 0 {
		t.Fatalf("no-op sync report = %+v", rep)
	}

	// Primary appends and commits: the replica fetches only the delta.
	tbl, _ := pdb.Table("alpha")
	for i := 200; i < 300; i++ {
		if err := tbl.Insert(testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pdb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep, err = sy.Sync(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed {
		t.Fatalf("append sync report = %+v, want changed", rep)
	}
	assertTablesEqual(t, pdb, rdb)

	// Same-version compaction: the manifest bytes change but not the
	// version; byte-equality (not version equality) must drive the
	// adoption, or the replica would keep referencing segments the
	// primary GC'd.
	if err := pdb.Compact(); err != nil {
		t.Fatal(err)
	}
	rep, err = sy.Sync(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed {
		t.Fatal("compaction at an unchanged version was not adopted")
	}
	if rdb.Version() != pdb.Version() {
		t.Fatalf("replica at version %d, primary at %d", rdb.Version(), pdb.Version())
	}
	assertTablesEqual(t, pdb, rdb)
}

// TestSyncerCrashMidSync injects a failure at every stage of the sync
// protocol — mid-fetch, before the renames, before the manifest
// commit — and checks the invariant the protocol exists for: a torn
// pass leaves the replica serving its previous committed version, and
// the next pass converges cleanly.
func TestSyncerCrashMidSync(t *testing.T) {
	for _, stage := range []string{"fetch:", "rename", "commit"} {
		t.Run(strings.TrimSuffix(stage, ":"), func(t *testing.T) {
			pdb, pdir := newPrimary(t, 150)
			rdb, sy := newReplica(t, pdir)
			rdir := rdb.StorageDir()

			replication.TestingSyncFault = func(s string) error {
				if strings.HasPrefix(s, stage) {
					return fmt.Errorf("injected crash at %s", s)
				}
				return nil
			}
			defer func() { replication.TestingSyncFault = nil }()

			if _, err := sy.Sync(t.Context()); err == nil {
				t.Fatal("injected fault did not abort the pass")
			}
			// The torn pass must not have published anything: no catalog,
			// version still zero.
			if v := rdb.Version(); v != 0 {
				t.Fatalf("torn pass advanced the replica to version %d", v)
			}
			st := sy.Status()
			if st.Converged || st.LastError == "" {
				t.Fatalf("status after torn pass = %+v", st)
			}

			// Recovery: the next pass cleans partial downloads and
			// converges.
			replication.TestingSyncFault = nil
			rep, err := sy.Sync(t.Context())
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Changed {
				t.Fatalf("recovery sync report = %+v", rep)
			}
			if rdb.Version() != pdb.Version() {
				t.Fatalf("replica at version %d, primary at %d", rdb.Version(), pdb.Version())
			}
			assertTablesEqual(t, pdb, rdb)

			// No .fetch debris survives a completed pass.
			entries, err := os.ReadDir(rdir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".fetch") {
					t.Fatalf("stray partial download %s survived recovery", e.Name())
				}
			}
		})
	}
}

// TestSyncerRefetchesChangedSegment: when the primary's catalog names
// a segment file the replica already has but with a DIFFERENT
// descriptor (a recycled id after a primary crash + republish, or a
// compaction reusing a name), the replica must refetch it — file-name
// presence is not content identity.
func TestSyncerRefetchesChangedSegment(t *testing.T) {
	pdb, pdir := newPrimary(t, 100)
	rdb, sy := newReplica(t, pdir)
	if _, err := sy.Sync(t.Context()); err != nil {
		t.Fatal(err)
	}

	// Simulate a recycled segment id: rebuild the primary directory
	// from scratch with different contents. Segment numbering restarts,
	// so the new catalog reuses file names the replica already holds.
	if err := os.RemoveAll(pdir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(pdir, 0o755); err != nil {
		t.Fatal(err)
	}
	pdb2, err := storage.Open(pdir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := pdb2.CreateTable("alpha", testCols)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1000; i < 1100; i++ {
		if err := tbl.Insert(testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pdb2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_ = pdb // the old primary object is dead; its directory was rebuilt

	rep, err := sy.Sync(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed || rep.Segments == 0 {
		t.Fatalf("recycled-id sync report = %+v, want refetched segments", rep)
	}
	assertTablesEqual(t, pdb2, rdb)
}

// TestSyncerEmptyPrimary: a primary directory with no manifest yet is
// a clean no-op, not an error.
func TestSyncerEmptyPrimary(t *testing.T) {
	dir := t.TempDir()
	rdb, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sy, err := replication.NewSyncer(rdb, &replication.DirSource{Dir: dir}, dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sy.Sync(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed {
		t.Fatalf("empty primary produced a changed pass: %+v", rep)
	}
}

// TestSyncerRequiresDiskBackedReplica pins the constructor contract:
// the manifest protocol IS the disk layout, so an in-memory replica is
// rejected up front.
func TestSyncerRequiresDiskBackedReplica(t *testing.T) {
	// NewMemDB, not NewDB: the point is a genuinely memory-backed
	// replica even when QUARRY_STORAGE=disk redirects NewDB.
	if _, err := replication.NewSyncer(storage.NewMemDB(), &replication.DirSource{Dir: t.TempDir()}, "x"); err == nil {
		t.Fatal("in-memory replica accepted")
	}
}

// TestDirSourceRejectsTraversal: segment names are validated before
// touching the filesystem.
func TestDirSourceRejectsTraversal(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "secret"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := &replication.DirSource{Dir: dir}
	for _, name := range []string{"../secret", "secret", "seg-../../etc.qseg"} {
		if _, err := src.Segment(t.Context(), name); err == nil {
			t.Fatalf("Segment(%q) accepted a non-segment name", name)
		}
	}
}
