package repo

import (
	"fmt"

	"quarry/internal/xlm"
	"quarry/internal/xmd"
	"quarry/internal/xmljson"
	"quarry/internal/xrq"
)

// Designs is the typed repository the Quarry components use on top of
// the raw document store: requirements and designs go in as XML
// (their canonical interchange form), are stored as JSON documents
// via the generic XML-JSON-XML parser — exactly the paper's
// arrangement — and come back out as XML-parsed structures.
type Designs struct {
	store *Store
}

// Collection names used by the lifecycle.
const (
	colRequirements = "requirements"
	colMD           = "md_designs"
	colETL          = "etl_designs"
)

// NewDesigns wraps a store.
func NewDesigns(s *Store) *Designs {
	return &Designs{store: s}
}

// SaveRequirement stores a requirement keyed by its ID, recording the
// raw xRQ text and its JSON projection.
func (r *Designs) SaveRequirement(req *xrq.Requirement) error {
	text, err := xrq.Marshal(req)
	if err != nil {
		return err
	}
	return r.saveXML(colRequirements, req.ID, "xRQ", text)
}

// Requirement loads a requirement by ID.
func (r *Designs) Requirement(id string) (*xrq.Requirement, error) {
	text, err := r.loadXML(colRequirements, id)
	if err != nil {
		return nil, err
	}
	return xrq.Unmarshal(text)
}

// Requirements lists all stored requirement IDs in insertion order.
func (r *Designs) Requirements() []string {
	var out []string
	for _, d := range r.store.Collection(colRequirements).All() {
		if id, ok := d["_id"].(string); ok {
			out = append(out, id)
		}
	}
	return out
}

// DeleteRequirement removes a requirement (requirement evolution).
func (r *Designs) DeleteRequirement(id string) bool {
	return r.store.Collection(colRequirements).Delete(id)
}

// SaveMD stores an MD schema under the given key ("unified" or a
// requirement-scoped key for partial designs).
func (r *Designs) SaveMD(key string, s *xmd.Schema) error {
	text, err := xmd.Marshal(s)
	if err != nil {
		return err
	}
	return r.saveXML(colMD, key, "xMD", text)
}

// MD loads an MD schema by key.
func (r *Designs) MD(key string) (*xmd.Schema, error) {
	text, err := r.loadXML(colMD, key)
	if err != nil {
		return nil, err
	}
	return xmd.Unmarshal(text)
}

// SaveETL stores an ETL design under the given key.
func (r *Designs) SaveETL(key string, d *xlm.Design) error {
	text, err := xlm.Marshal(d)
	if err != nil {
		return err
	}
	return r.saveXML(colETL, key, "xLM", text)
}

// ETL loads an ETL design by key.
func (r *Designs) ETL(key string) (*xlm.Design, error) {
	text, err := r.loadXML(colETL, key)
	if err != nil {
		return nil, err
	}
	return xlm.Unmarshal(text)
}

// saveXML stores the XML text and its JSON projection in one
// document — the XML-JSON-XML round trip of the metadata layer.
func (r *Designs) saveXML(collection, id, format, text string) error {
	jsonDoc, err := xmljson.DecodeString(text)
	if err != nil {
		return fmt.Errorf("repo: converting %s to JSON: %w", format, err)
	}
	r.store.Collection(collection).Put(id, Doc{
		"format": format,
		"xml":    text,
		"json":   map[string]any(jsonDoc),
	})
	return nil
}

// loadXML retrieves the XML text of a stored document, regenerating
// it from the JSON projection when the raw text is missing (the
// XML-JSON-XML parser working in the other direction).
func (r *Designs) loadXML(collection, id string) (string, error) {
	d, ok := r.store.Collection(collection).Get(id)
	if !ok {
		return "", fmt.Errorf("repo: %s/%s not found", collection, id)
	}
	if text, ok := d["xml"].(string); ok && text != "" {
		return text, nil
	}
	j, ok := d["json"].(map[string]any)
	if !ok {
		return "", fmt.Errorf("repo: %s/%s has neither xml nor json payload", collection, id)
	}
	return xmljson.EncodeString(j)
}

// Flush persists the underlying store.
func (r *Designs) Flush() error { return r.store.Flush() }
