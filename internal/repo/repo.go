// Package repo implements the storage half of Quarry's Communication
// & Metadata layer (§2.5–2.6): the repository holding every artifact
// produced and used during the DW design lifecycle — information
// requirements (xRQ), partial and unified MD schemata (xMD), partial
// and unified ETL designs (xLM), domain ontologies and source schema
// mappings.
//
// The paper backs this layer with a MongoDB instance plus a generic
// XML-JSON-XML parser; this package provides the equivalent embedded
// substrate: a mutex-guarded JSON document store with collections,
// auto-generated ids, dotted-path equality queries, and optional disk
// persistence (one JSON file per collection).
package repo

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Doc is one stored document.
type Doc = map[string]any

// Collection is a named set of documents.
type Collection struct {
	name string

	mu    sync.RWMutex
	docs  map[string]Doc
	order []string
	next  int
}

func newCollection(name string) *Collection {
	return &Collection{name: name, docs: map[string]Doc{}}
}

// Insert stores a document, assigning an "_id" when absent, and
// returns the id. The document is deep-copied on the way in.
func (c *Collection) Insert(d Doc) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := deepCopy(d).(Doc)
	id, _ := cp["_id"].(string)
	if id == "" {
		c.next++
		id = fmt.Sprintf("%s-%06d", c.name, c.next)
		cp["_id"] = id
	}
	if _, dup := c.docs[id]; dup {
		return "", fmt.Errorf("repo: duplicate _id %q in %s", id, c.name)
	}
	c.docs[id] = cp
	c.order = append(c.order, id)
	return id, nil
}

// Put stores or replaces the document under the id.
func (c *Collection) Put(id string, d Doc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := deepCopy(d).(Doc)
	cp["_id"] = id
	if _, exists := c.docs[id]; !exists {
		c.order = append(c.order, id)
	}
	c.docs[id] = cp
}

// Get retrieves a document copy by id.
func (c *Collection) Get(id string) (Doc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return nil, false
	}
	return deepCopy(d).(Doc), true
}

// Delete removes a document; it reports whether it existed.
func (c *Collection) Delete(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.docs[id]; !ok {
		return false
	}
	delete(c.docs, id)
	for i, oid := range c.order {
		if oid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return true
}

// All returns copies of every document in insertion order.
func (c *Collection) All() []Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Doc, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, deepCopy(c.docs[id]).(Doc))
	}
	return out
}

// Count reports the number of documents.
func (c *Collection) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Find returns documents whose fields equal every filter entry.
// Filter keys may be dotted paths ("design.metadata.requirement").
func (c *Collection) Find(filter map[string]any) []Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Doc
	for _, id := range c.order {
		d := c.docs[id]
		match := true
		for path, want := range filter {
			got, ok := lookupPath(d, path)
			if !ok || !looseEqual(got, want) {
				match = false
				break
			}
		}
		if match {
			out = append(out, deepCopy(d).(Doc))
		}
	}
	return out
}

// lookupPath resolves a dotted path within a document.
func lookupPath(d Doc, path string) (any, bool) {
	var cur any = d
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[part]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// looseEqual compares scalars with JSON-style numeric laxity (an
// int64 written to disk comes back float64).
func looseEqual(a, b any) bool {
	if a == b {
		return true
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	return aok && bok && af == bf
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case float32:
		return float64(x), true
	default:
		return 0, false
	}
}

func deepCopy(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, vv := range x {
			out[k] = deepCopy(vv)
		}
		return out
	case []any:
		out := make([]any, len(x))
		for i, vv := range x {
			out[i] = deepCopy(vv)
		}
		return out
	default:
		return v
	}
}

// Store is a set of collections with optional disk persistence.
type Store struct {
	dir string

	mu          sync.Mutex
	collections map[string]*Collection
}

// Open creates a store. With a non-empty dir, existing collection
// files ("<name>.json") are loaded and Flush persists state back.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, collections: map[string]*Collection{}}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("repo: %w", err)
		}
		var docs []Doc
		if err := json.Unmarshal(data, &docs); err != nil {
			return nil, fmt.Errorf("repo: collection %s corrupt: %w", name, err)
		}
		col := newCollection(name)
		for _, d := range docs {
			if _, err := col.Insert(d); err != nil {
				return nil, err
			}
		}
		col.next = len(docs)
		s.collections[name] = col
	}
	return s, nil
}

// Collection returns (creating if needed) a named collection.
func (s *Store) Collection(name string) *Collection {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[name]
	if !ok {
		c = newCollection(name)
		s.collections[name] = c
	}
	return c
}

// CollectionNames lists existing collections, sorted.
func (s *Store) CollectionNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.collections))
	for n := range s.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Flush persists every collection to disk (no-op for in-memory
// stores).
func (s *Store) Flush() error {
	if s.dir == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, col := range s.collections {
		data, err := json.MarshalIndent(col.All(), "", "  ")
		if err != nil {
			return fmt.Errorf("repo: %w", err)
		}
		tmp := filepath.Join(s.dir, name+".json.tmp")
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return fmt.Errorf("repo: %w", err)
		}
		if err := os.Rename(tmp, filepath.Join(s.dir, name+".json")); err != nil {
			return fmt.Errorf("repo: %w", err)
		}
	}
	return nil
}
