package repo

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"quarry/internal/tpch"
	"quarry/internal/xlm"
	"quarry/internal/xmd"
)

func TestInsertGetDelete(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	c := s.Collection("things")
	id, err := c.Insert(Doc{"name": "a", "n": 1})
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("no id assigned")
	}
	d, ok := c.Get(id)
	if !ok || d["name"] != "a" {
		t.Fatalf("Get = %v, %v", d, ok)
	}
	// Returned docs are copies.
	d["name"] = "mutated"
	d2, _ := c.Get(id)
	if d2["name"] != "a" {
		t.Error("Get returned shared state")
	}
	if !c.Delete(id) {
		t.Error("Delete failed")
	}
	if c.Delete(id) {
		t.Error("double delete succeeded")
	}
	if c.Count() != 0 {
		t.Errorf("count = %d", c.Count())
	}
}

func TestExplicitIDsAndDuplicates(t *testing.T) {
	s, _ := Open("")
	c := s.Collection("x")
	if _, err := c.Insert(Doc{"_id": "custom"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(Doc{"_id": "custom"}); err == nil {
		t.Error("duplicate id accepted")
	}
	c.Put("custom", Doc{"v": 2}) // replace
	d, _ := c.Get("custom")
	if v, _ := toFloat(d["v"]); v != 2 {
		t.Errorf("Put did not replace: %v", d)
	}
	if c.Count() != 1 {
		t.Errorf("count = %d", c.Count())
	}
}

func TestFindDottedPaths(t *testing.T) {
	s, _ := Open("")
	c := s.Collection("designs")
	c.Insert(Doc{"design": map[string]any{"metadata": map[string]any{"requirement": "IR1"}}, "kind": "etl"})
	c.Insert(Doc{"design": map[string]any{"metadata": map[string]any{"requirement": "IR2"}}, "kind": "etl"})
	c.Insert(Doc{"kind": "md"})
	got := c.Find(map[string]any{"design.metadata.requirement": "IR1"})
	if len(got) != 1 {
		t.Fatalf("Find = %d docs", len(got))
	}
	if len(c.Find(map[string]any{"kind": "etl"})) != 2 {
		t.Error("Find by kind failed")
	}
	if len(c.Find(map[string]any{"kind": "etl", "design.metadata.requirement": "IR2"})) != 1 {
		t.Error("conjunctive Find failed")
	}
	if len(c.Find(map[string]any{"ghost.path": 1})) != 0 {
		t.Error("Find on missing path matched")
	}
}

func TestNumericLaxity(t *testing.T) {
	s, _ := Open("")
	c := s.Collection("n")
	c.Insert(Doc{"v": 42})
	if len(c.Find(map[string]any{"v": float64(42)})) != 1 {
		t.Error("int/float equality failed")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := s1.Collection("artifacts")
	c.Insert(Doc{"name": "a", "nested": map[string]any{"k": "v"}})
	c.Insert(Doc{"name": "b"})
	if err := s1.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "artifacts.json")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := s2.Collection("artifacts")
	if c2.Count() != 2 {
		t.Fatalf("reloaded count = %d", c2.Count())
	}
	got := c2.Find(map[string]any{"nested.k": "v"})
	if len(got) != 1 || got[0]["name"] != "a" {
		t.Errorf("reloaded find = %v", got)
	}
	// New inserts after reload do not collide with loaded ids.
	if _, err := c2.Insert(Doc{"name": "c"}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenCorruptCollection(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "bad.json"), []byte("not json"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("corrupt collection accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := Open("")
	c := s.Collection("conc")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Insert(Doc{"w": i})
				c.Find(map[string]any{"w": i})
				c.All()
			}
		}()
	}
	wg.Wait()
	if c.Count() != 400 {
		t.Errorf("count = %d", c.Count())
	}
}

func TestDesignsRepository(t *testing.T) {
	s, _ := Open("")
	d := NewDesigns(s)
	// Requirement round trip.
	r := tpch.RevenueRequirement()
	if err := d.SaveRequirement(r); err != nil {
		t.Fatal(err)
	}
	back, err := d.Requirement(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != r.ID || len(back.Dimensions) != len(r.Dimensions) || back.Measures[0].Function != r.Measures[0].Function {
		t.Errorf("requirement changed: %+v", back)
	}
	if ids := d.Requirements(); len(ids) != 1 || ids[0] != r.ID {
		t.Errorf("Requirements = %v", ids)
	}
	// MD round trip.
	md := &xmd.Schema{
		Name: "m",
		Facts: []*xmd.Fact{{Name: "f", Measures: []xmd.Measure{{Name: "x", Type: "float", Additivity: xmd.AdditivityFlow}},
			Uses: []xmd.DimensionUse{{Dimension: "D", Level: "L"}}}},
		Dimensions: []*xmd.Dimension{{Name: "D", Levels: []*xmd.Level{{Name: "L"}}}},
	}
	if err := d.SaveMD("unified", md); err != nil {
		t.Fatal(err)
	}
	md2, err := d.MD("unified")
	if err != nil {
		t.Fatal(err)
	}
	if md2.Stats() != md.Stats() {
		t.Error("MD schema changed through repository")
	}
	// ETL round trip.
	etl := xlm.NewDesign("e")
	etl.AddNode(&xlm.Node{Name: "DS", Type: xlm.OpDatastore,
		Fields: []xlm.Field{{Name: "a", Type: "int"}}, Params: map[string]string{"table": "t"}})
	etl.AddNode(&xlm.Node{Name: "L", Type: xlm.OpLoader, Params: map[string]string{"table": "out"}})
	etl.AddEdge("DS", "L")
	if err := d.SaveETL("unified", etl); err != nil {
		t.Fatal(err)
	}
	etl2, err := d.ETL("unified")
	if err != nil {
		t.Fatal(err)
	}
	if len(etl2.Nodes()) != 2 || len(etl2.Edges()) != 1 {
		t.Error("ETL design changed through repository")
	}
	// Deletion (requirement evolution).
	if !d.DeleteRequirement(r.ID) {
		t.Error("DeleteRequirement failed")
	}
	if _, err := d.Requirement(r.ID); err == nil {
		t.Error("deleted requirement still loads")
	}
	// Missing keys error.
	if _, err := d.MD("ghost"); err == nil {
		t.Error("missing MD loaded")
	}
}

// TestDesignsJSONFallback verifies the XML-JSON-XML path: when the
// raw XML payload is dropped, the design is regenerated from its JSON
// projection.
func TestDesignsJSONFallback(t *testing.T) {
	s, _ := Open("")
	d := NewDesigns(s)
	r := tpch.RevenueRequirement()
	if err := d.SaveRequirement(r); err != nil {
		t.Fatal(err)
	}
	// Strip the xml field, leaving only the JSON projection.
	col := s.Collection("requirements")
	doc, _ := col.Get(r.ID)
	delete(doc, "xml")
	col.Put(r.ID, doc)
	back, err := d.Requirement(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != r.ID || len(back.Measures) != 1 {
		t.Errorf("JSON-regenerated requirement = %+v", back)
	}
	if back.Slicers[0].Value != "SPAIN" {
		t.Errorf("slicer = %+v", back.Slicers[0])
	}
}
