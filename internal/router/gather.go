// Shard gather: the fan-out/fan-in front of a hash-partitioned
// warehouse (see internal/shard). Unlike the replica Router — which
// picks ONE backend because every replica holds all the data — the
// ShardRouter needs ALL backends: each shard holds one partition of
// the fact, so a cube query is answered by scattering it to every
// shard's partial-aggregate endpoint and merging the pre-finalisation
// states into the final answer.
//
// Failure contract (pinned by the fault-injection tests): the gather
// NEVER serves a partial answer. A shard that stays unreachable after
// per-shard retries fails the whole query with 502; shards answering
// at different warehouse epochs trigger a bounded whole-scatter retry
// and then 503 — a delayed answer, never a mixed-epoch or
// missing-partition one. A shard answering 429/503 is busy, not dead:
// when only some shards shed, the scatter backs off (jittered,
// honoring Retry-After) and retries whole up to busyRetries times;
// when the WHOLE fleet sheds — or the busy budget is spent — the
// gather fails fast with an aggregated 429, never a 502, so clients
// and upstream routers see "back off", not "outage".
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"quarry/internal/olap"
	"quarry/internal/shard"
)

// ShardRouter scatters cube queries over the shards of a partitioned
// warehouse and gathers their partial aggregates into one answer.
type ShardRouter struct {
	shards []string // base URL of shard i at index i — order IS the topology
	client *http.Client
	// attempts is how many times one shard is tried per scatter
	// (1 = no retry).
	attempts int
	// skewRetries is how many times the whole scatter is redone when
	// shards answer at different epochs (a reload racing the query).
	skewRetries int
	// busyRetries is how many times the whole scatter is redone when
	// SOME (not all) shards answered busy (429/503).
	busyRetries int
	// maxRetryAfter caps a shard's Retry-After suggestion before the
	// gather sleeps on it or forwards it.
	maxRetryAfter time.Duration
	// sleep waits for the backoff, or returns false if ctx ends first.
	// A field so tests can stub it out.
	sleep func(ctx context.Context, d time.Duration) bool
}

// GatherOptions tunes a ShardRouter beyond its shard list.
type GatherOptions struct {
	// Attempts is how many times one shard is tried per scatter on
	// transport errors and non-busy 5xx (<= 0 means 2).
	Attempts int
	// SkewRetries bounds whole-scatter retries on epoch skew
	// (< 0 means 2).
	SkewRetries int
	// BusyRetries bounds whole-scatter retries when some shards are
	// busy (< 0 means 1). 0 disables busy retries: any shed shard
	// immediately fails the query with 429.
	BusyRetries int
	// MaxRetryAfter caps shard Retry-After suggestions (<= 0 means 2s).
	MaxRetryAfter time.Duration
}

// NewShardGather builds a gather router. shards[i] must be the base
// URL of the quarryd running with -shard-index i; the merge validates
// every answer's self-reported identity against this order, so a
// miswired fleet fails queries instead of silently double- or
// zero-counting a partition. attempts <= 0 defaults to 2, and
// skewRetries < 0 to 2.
func NewShardGather(shards []string, client *http.Client, attempts, skewRetries int) (*ShardRouter, error) {
	return NewShardGatherWithOptions(shards, client, GatherOptions{Attempts: attempts, SkewRetries: skewRetries, BusyRetries: -1})
}

// NewShardGatherWithOptions is NewShardGather with the full option
// set; zero-value options take the documented defaults.
func NewShardGatherWithOptions(shards []string, client *http.Client, opts GatherOptions) (*ShardRouter, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("router: no shards configured")
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 2
	}
	if opts.SkewRetries < 0 {
		opts.SkewRetries = 2
	}
	if opts.BusyRetries < 0 {
		opts.BusyRetries = 1
	}
	if opts.MaxRetryAfter <= 0 {
		opts.MaxRetryAfter = 2 * time.Second
	}
	g := &ShardRouter{
		client:        client,
		attempts:      opts.Attempts,
		skewRetries:   opts.SkewRetries,
		busyRetries:   opts.BusyRetries,
		maxRetryAfter: opts.MaxRetryAfter,
		sleep:         sleepCtx,
	}
	for _, raw := range shards {
		base := strings.TrimRight(strings.TrimSpace(raw), "/")
		if base == "" {
			return nil, fmt.Errorf("router: empty shard URL")
		}
		g.shards = append(g.shards, base)
	}
	return g, nil
}

// Handler returns the gather's HTTP interface: POST /api/olap and
// GET /api/health. Everything else — the requirement lifecycle,
// deploy, run — is rejected: design and load operations go to the
// shards' own endpoints (in lockstep), not through the gather.
func (g *ShardRouter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/health", g.handleHealth)
	mux.HandleFunc("POST /api/olap", g.handleOLAP)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "shard gather: only POST /api/olap and GET /api/health are served here; design and load operations go to each shard directly", http.StatusForbidden)
	})
	return mux
}

// handleHealth live-probes every shard and reports the topology: the
// operator's view of whether the fleet is complete, consistently
// indexed, and on one epoch.
func (g *ShardRouter) handleHealth(w http.ResponseWriter, req *http.Request) {
	type shardHealth struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
		Epoch   uint64 `json:"epoch,omitempty"`
		Index   *int   `json:"shard_index,omitempty"`
	}
	out := struct {
		Status string        `json:"status"`
		Role   string        `json:"role"`
		Shards []shardHealth `json:"shards"`
	}{Status: "ok", Role: "shard-gather", Shards: make([]shardHealth, len(g.shards))}
	var wg sync.WaitGroup
	for i, base := range g.shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			sh := shardHealth{URL: base}
			hreq, err := http.NewRequestWithContext(req.Context(), http.MethodGet, base+"/api/health", nil)
			if err == nil {
				if resp, err := g.client.Do(hreq); err == nil {
					var body struct {
						Epoch      uint64 `json:"epoch"`
						ShardIndex *int   `json:"shard_index"`
					}
					_ = json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
					sh.Healthy = resp.StatusCode == http.StatusOK
					sh.Epoch = body.Epoch
					sh.Index = body.ShardIndex
				}
			}
			out.Shards[i] = sh
		}(i, base)
	}
	wg.Wait()
	for _, sh := range out.Shards {
		if !sh.Healthy {
			out.Status = "degraded"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// shardAttempt is one shard's outcome within a scatter.
type shardAttempt struct {
	resp *shard.PartialResponse // set on 2xx
	// status/body hold a shard's own 4xx answer (e.g. a diced query,
	// which is not distributive): deterministic across shards, so it
	// is forwarded to the client rather than retried.
	status int
	body   []byte
	// busy marks a 429/503 answer: the shard is healthy but shedding.
	// Never treated as err — busy shards trigger scatter-level backoff,
	// not the partial-answer-refusing 502 path.
	busy       bool
	retryAfter time.Duration // the busy shard's (uncapped) suggestion
	err        error         // transport failure or persistent 5xx
}

// handleOLAP answers one cube query by scatter-gather.
func (g *ShardRouter) handleOLAP(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBytes+1))
	if err != nil {
		http.Error(w, "router: reading request body", http.StatusBadRequest)
		return
	}
	if len(body) > maxBodyBytes {
		http.Error(w, "router: request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	var lastSkew error
	skewLeft, busyLeft := g.skewRetries, g.busyRetries
	for {
		results := g.scatter(req.Context(), body)
		// Dead shards first: a hole in the topology is an outage no
		// amount of backoff fixes, so it wins over busyness elsewhere.
		for i, r := range results {
			if r.err != nil {
				http.Error(w, fmt.Sprintf("shard gather: shard %d (%s) unavailable, refusing partial answer: %v", i, g.shards[i], r.err), http.StatusBadGateway)
				return
			}
		}
		// Busy shards: healthy but shedding. The scatter needs every
		// shard, so even one busy shard blocks the answer.
		busyCount, busyAfter := 0, defaultRetryAfter
		for _, r := range results {
			if r.busy {
				busyCount++
				if r.retryAfter > busyAfter {
					busyAfter = r.retryAfter
				}
			}
		}
		if busyCount > 0 {
			if busyAfter > g.maxRetryAfter {
				busyAfter = g.maxRetryAfter
			}
			if busyCount == len(results) || busyLeft <= 0 {
				// Whole fleet shedding (retrying would just re-offer the
				// load that caused it) or busy budget spent: aggregate
				// into one honest 429 — "back off", not "outage".
				w.Header().Set("Retry-After", strconv.FormatInt(int64(busyAfter.Seconds()+0.5), 10))
				http.Error(w, fmt.Sprintf("shard gather: %d/%d shards busy (shedding), retry later", busyCount, len(results)), http.StatusTooManyRequests)
				return
			}
			busyLeft--
			if !g.sleep(req.Context(), jittered(busyAfter)) {
				// Client gone mid-backoff; nothing left to answer.
				return
			}
			continue
		}
		resps := make([]*shard.PartialResponse, len(results))
		for i, r := range results {
			if r.status != 0 {
				// The shard itself rejected the query; its verdict is
				// deterministic and final.
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(r.status)
				_, _ = w.Write(r.body)
				return
			}
			resps[i] = r.resp
		}
		columns, rows, epoch, err := shard.Merge(resps)
		if err != nil {
			if errors.Is(err, shard.ErrEpochSkew) {
				// A reload is racing the scatter; a fresh scatter usually
				// lands on one epoch.
				lastSkew = err
				if skewLeft <= 0 {
					break
				}
				skewLeft--
				continue
			}
			http.Error(w, "shard gather: "+err.Error(), http.StatusBadGateway)
			return
		}
		out := struct {
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		}{Columns: columns, Rows: [][]string{}}
		for _, row := range rows {
			out.Rows = append(out.Rows, olap.RenderRow(row))
		}
		w.Header().Set("X-Quarry-Version", fmt.Sprintf("%d", epoch))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(out)
		return
	}
	http.Error(w, "shard gather: shards keep answering at different warehouse epochs: "+lastSkew.Error(), http.StatusServiceUnavailable)
}

// scatter fans the request body to every shard's partial endpoint
// concurrently, retrying each shard up to g.attempts times on
// transport errors and 5xx answers.
func (g *ShardRouter) scatter(ctx context.Context, body []byte) []shardAttempt {
	results := make([]shardAttempt, len(g.shards))
	var wg sync.WaitGroup
	for i, base := range g.shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			results[i] = g.askShard(ctx, base, body)
		}(i, base)
	}
	wg.Wait()
	return results
}

// askShard posts the query body verbatim to one shard, with retries.
func (g *ShardRouter) askShard(ctx context.Context, base string, body []byte) shardAttempt {
	var last shardAttempt
	for try := 0; try < g.attempts; try++ {
		if err := ctx.Err(); err != nil {
			return shardAttempt{err: err}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/api/olap/partial", bytes.NewReader(body))
		if err != nil {
			return shardAttempt{err: err}
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := g.client.Do(req)
		if err != nil {
			last = shardAttempt{err: err}
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			last = shardAttempt{err: err}
			continue
		}
		switch {
		case isBusyStatus(resp.StatusCode):
			// Shedding, not broken. No tight per-shard retry — hammering
			// an overloaded shard only deepens its backlog; the scatter
			// loop decides whether to back off and retry the whole fleet.
			return shardAttempt{busy: true, retryAfter: retryAfterOf(resp.Header), status: resp.StatusCode, body: respBody}
		case resp.StatusCode >= 500:
			last = shardAttempt{err: fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(respBody)))}
			continue
		case resp.StatusCode >= 400:
			return shardAttempt{status: resp.StatusCode, body: respBody}
		}
		var pr shard.PartialResponse
		if err := json.Unmarshal(respBody, &pr); err != nil {
			last = shardAttempt{err: fmt.Errorf("undecodable partial answer: %w", err)}
			continue
		}
		return shardAttempt{resp: &pr}
	}
	return last
}
