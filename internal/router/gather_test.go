package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"quarry/internal/engine"
	"quarry/internal/expr"
	"quarry/internal/shard"
	"quarry/internal/xlm"
)

// partialFor fabricates shard s's partial answer over its slice of a
// fixed 3-group dataset: group g_i carries float measures whose exact
// sum the merge must reproduce.
func partialFor(t *testing.T, index, count int, epoch uint64) *shard.PartialResponse {
	t.Helper()
	aggs := []xlm.AggSpec{
		{Out: "n", Func: "COUNT"},
		{Out: "total", Func: "SUM", Col: "amount"},
	}
	agg, err := engine.NewHashAggregator([]int{0}, aggs, []int{-1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]expr.Value
	for i := 0; i < 90; i++ {
		if i%count != index {
			continue
		}
		rows = append(rows, []expr.Value{
			expr.Str(fmt.Sprintf("g%d", i%3)),
			expr.Float(0.1 + float64(i)*1e13),
		})
	}
	if err := agg.Add(rows); err != nil {
		t.Fatal(err)
	}
	return shard.EncodePartial(index, count, epoch, []string{"g", "n", "total"}, 1, aggs, agg.Partials())
}

// fakeShard serves canned partial answers; behavior can be swapped
// per request via the handler slot.
type fakeShard struct {
	ts      *httptest.Server
	handler atomic.Value // func(w http.ResponseWriter, r *http.Request)
	hits    atomic.Int64
}

func newFakeShard(t *testing.T, index, count int, epoch uint64) *fakeShard {
	t.Helper()
	fs := &fakeShard{}
	fs.serve(func(w http.ResponseWriter, r *http.Request) {
		writePartial(w, partialFor(t, index, count, epoch))
	})
	fs.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/api/health":
			fmt.Fprintf(w, `{"status":"ok","shard_index":%d,"shard_count":%d,"epoch":%d}`, index, count, epoch)
		case "/api/olap/partial":
			fs.hits.Add(1)
			fs.handler.Load().(func(http.ResponseWriter, *http.Request))(w, r)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(fs.ts.Close)
	return fs
}

func (fs *fakeShard) serve(h func(http.ResponseWriter, *http.Request)) {
	fs.handler.Store(h)
}

func writePartial(w http.ResponseWriter, pr *shard.PartialResponse) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(pr)
}

func gatherOver(t *testing.T, shards []*fakeShard, attempts, skewRetries int) *httptest.Server {
	t.Helper()
	urls := make([]string, len(shards))
	for i, s := range shards {
		urls[i] = s.ts.URL
	}
	g, err := NewShardGather(urls, &http.Client{Timeout: 5 * time.Second}, attempts, skewRetries)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postGather(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url+"/api/olap", "application/json", strings.NewReader(`{"fact":"f"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

// oracleBody is what a single node folding all 90 rows would answer.
func oracleBody(t *testing.T) string {
	t.Helper()
	solo := partialFor(t, 0, 1, 7)
	cols, rows, _, err := shard.Merge([]*shard.PartialResponse{solo})
	if err != nil {
		t.Fatal(err)
	}
	out := struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Columns: cols, Rows: [][]string{}}
	for _, row := range rows {
		vals := make([]string, len(row))
		for i, v := range row {
			if v.Kind() == expr.KindString {
				vals[i] = v.AsString()
			} else {
				vals[i] = v.String()
			}
		}
		out.Rows = append(out.Rows, vals)
	}
	b, _ := json.Marshal(out)
	return string(b) + "\n"
}

func TestGatherMergesAllShards(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 3, 7),
		newFakeShard(t, 1, 3, 7),
		newFakeShard(t, 2, 3, 7),
	}
	ts := gatherOver(t, shards, 1, 0)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if want := oracleBody(t); body != want {
		t.Fatalf("gathered body is not byte-identical to the single-node answer:\n got: %s\nwant: %s", body, want)
	}
	if got := resp.Header.Get("X-Quarry-Version"); got != "7" {
		t.Fatalf("X-Quarry-Version = %q, want 7", got)
	}
}

// Shard down at query time: after per-shard retries the whole query
// fails — never a partial answer from the survivors.
func TestGatherShardDownFailsWholeQuery(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 3, 7),
		newFakeShard(t, 1, 3, 7),
		newFakeShard(t, 2, 3, 7),
	}
	shards[1].ts.Close()
	ts := gatherOver(t, shards, 2, 0)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d (%s), want 502", resp.StatusCode, body)
	}
	if !strings.Contains(body, "shard 1") || !strings.Contains(body, "refusing partial answer") {
		t.Fatalf("error does not state the failure contract: %s", body)
	}
}

// A shard that 5xxes once and then recovers is retried within the
// same scatter; the query succeeds.
func TestGatherRetriesFlakyShard(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 7),
		newFakeShard(t, 1, 2, 7),
	}
	var failures atomic.Int64
	failures.Store(1)
	shards[1].serve(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(-1) >= 0 {
			http.Error(w, "mid-restart", http.StatusInternalServerError)
			return
		}
		writePartial(w, partialFor(t, 1, 2, 7))
	})
	ts := gatherOver(t, shards, 3, 0)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if body != oracleBody(t) {
		t.Fatalf("retried answer differs from oracle: %s", body)
	}
	if shards[1].hits.Load() < 2 {
		t.Fatalf("flaky shard was hit %d times, want >= 2", shards[1].hits.Load())
	}
}

// Shard timeout mid-gather: the slow shard exceeds the client
// timeout; the query fails with 502 rather than hanging or answering
// without the slow partition.
func TestGatherShardTimeout(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 7),
		newFakeShard(t, 1, 2, 7),
	}
	block := make(chan struct{})
	defer close(block)
	shards[1].serve(func(w http.ResponseWriter, r *http.Request) {
		<-block
	})
	urls := []string{shards[0].ts.URL, shards[1].ts.URL}
	g, err := NewShardGather(urls, &http.Client{Timeout: 150 * time.Millisecond}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d (%s), want 502", resp.StatusCode, body)
	}
	if !strings.Contains(body, "shard 1") {
		t.Fatalf("error does not name the timed-out shard: %s", body)
	}
}

// Stale epoch: one shard answers at an older warehouse version. The
// gather must never merge it — it retries the scatter and, if the
// skew persists, answers 503.
func TestGatherStaleEpochNeverMerged(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 8),
		newFakeShard(t, 1, 2, 7), // one reload behind
	}
	ts := gatherOver(t, shards, 1, 2)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	if !strings.Contains(body, "epoch") {
		t.Fatalf("error does not mention epochs: %s", body)
	}
	// The scatter was retried: each shard was asked more than once.
	if shards[0].hits.Load() != 3 || shards[1].hits.Load() != 3 {
		t.Fatalf("scatter retries = %d/%d hits, want 3/3", shards[0].hits.Load(), shards[1].hits.Load())
	}

	// The skewed shard catching up mid-retry lets the query succeed.
	shards[1].serve(func(w http.ResponseWriter, r *http.Request) {
		writePartial(w, partialFor(t, 1, 2, 8))
	})
	shards[0].serve(func(w http.ResponseWriter, r *http.Request) {
		writePartial(w, partialFor(t, 0, 2, 8))
	})
	resp, body = postGather(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after catch-up: status %d (%s)", resp.StatusCode, body)
	}
}

// A miswired fleet — a shard reporting an index that contradicts its
// position in the ring — must fail queries, not mis-assign a
// partition.
func TestGatherRejectsMiswiredTopology(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 7),
		newFakeShard(t, 0, 2, 7), // duplicate index 0
	}
	ts := gatherOver(t, shards, 1, 0)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d (%s), want 5xx refusal", resp.StatusCode, body)
	}
}

// A shard's own 4xx (e.g. a diced query, which is not distributive)
// is forwarded to the client as-is, not retried.
func TestGatherForwardsShardRejection(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, 0, 1, 7)}
	shards[0].serve(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprintln(w, `{"error":"olap: diamond dice is not distributive over shards; run it on a single node"}`)
	})
	ts := gatherOver(t, shards, 3, 0)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	if !strings.Contains(body, "not distributive") {
		t.Fatalf("shard's rejection body was not forwarded: %s", body)
	}
	if shards[0].hits.Load() != 1 {
		t.Fatalf("4xx was retried: %d hits", shards[0].hits.Load())
	}
}

// The gather rejects writes and unrelated endpoints outright.
func TestGatherRejectsWrites(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, 0, 1, 7)}
	ts := gatherOver(t, shards, 1, 0)
	resp, err := http.Post(ts.URL+"/api/run", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("POST /api/run: status %d, want 403", resp.StatusCode)
	}
}

// The health endpoint reports per-shard liveness and epochs.
func TestGatherHealth(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 9),
		newFakeShard(t, 1, 2, 9),
	}
	shards[1].ts.Close()
	ts := gatherOver(t, shards, 1, 0)
	resp, err := http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Status string `json:"status"`
		Role   string `json:"role"`
		Shards []struct {
			Healthy bool   `json:"healthy"`
			Epoch   uint64 `json:"epoch"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body.Status != "degraded" || body.Role != "shard-gather" {
		t.Fatalf("health = %+v", body)
	}
	if len(body.Shards) != 2 || !body.Shards[0].Healthy || body.Shards[1].Healthy {
		t.Fatalf("per-shard health wrong: %+v", body.Shards)
	}
	if body.Shards[0].Epoch != 9 {
		t.Fatalf("shard 0 epoch = %d, want 9", body.Shards[0].Epoch)
	}
}
