package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"quarry/internal/engine"
	"quarry/internal/expr"
	"quarry/internal/shard"
	"quarry/internal/xlm"
)

// partialFor fabricates shard s's partial answer over its slice of a
// fixed 3-group dataset: group g_i carries float measures whose exact
// sum the merge must reproduce.
func partialFor(t *testing.T, index, count int, epoch uint64) *shard.PartialResponse {
	t.Helper()
	aggs := []xlm.AggSpec{
		{Out: "n", Func: "COUNT"},
		{Out: "total", Func: "SUM", Col: "amount"},
	}
	agg, err := engine.NewHashAggregator([]int{0}, aggs, []int{-1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]expr.Value
	for i := 0; i < 90; i++ {
		if i%count != index {
			continue
		}
		rows = append(rows, []expr.Value{
			expr.Str(fmt.Sprintf("g%d", i%3)),
			expr.Float(0.1 + float64(i)*1e13),
		})
	}
	if err := agg.Add(rows); err != nil {
		t.Fatal(err)
	}
	return shard.EncodePartial(index, count, epoch, []string{"g", "n", "total"}, 1, aggs, agg.Partials())
}

// fakeShard serves canned partial answers; behavior can be swapped
// per request via the handler slot.
type fakeShard struct {
	ts      *httptest.Server
	handler atomic.Value // func(w http.ResponseWriter, r *http.Request)
	hits    atomic.Int64
}

func newFakeShard(t *testing.T, index, count int, epoch uint64) *fakeShard {
	t.Helper()
	fs := &fakeShard{}
	fs.serve(func(w http.ResponseWriter, r *http.Request) {
		writePartial(w, partialFor(t, index, count, epoch))
	})
	fs.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/api/health":
			fmt.Fprintf(w, `{"status":"ok","shard_index":%d,"shard_count":%d,"epoch":%d}`, index, count, epoch)
		case "/api/olap/partial":
			fs.hits.Add(1)
			fs.handler.Load().(func(http.ResponseWriter, *http.Request))(w, r)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(fs.ts.Close)
	return fs
}

func (fs *fakeShard) serve(h func(http.ResponseWriter, *http.Request)) {
	fs.handler.Store(h)
}

func writePartial(w http.ResponseWriter, pr *shard.PartialResponse) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(pr)
}

func gatherOver(t *testing.T, shards []*fakeShard, attempts, skewRetries int) *httptest.Server {
	t.Helper()
	urls := make([]string, len(shards))
	for i, s := range shards {
		urls[i] = s.ts.URL
	}
	g, err := NewShardGather(urls, &http.Client{Timeout: 5 * time.Second}, attempts, skewRetries)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postGather(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url+"/api/olap", "application/json", strings.NewReader(`{"fact":"f"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

// oracleBody is what a single node folding all 90 rows would answer.
func oracleBody(t *testing.T) string {
	t.Helper()
	solo := partialFor(t, 0, 1, 7)
	cols, rows, _, err := shard.Merge([]*shard.PartialResponse{solo})
	if err != nil {
		t.Fatal(err)
	}
	out := struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Columns: cols, Rows: [][]string{}}
	for _, row := range rows {
		vals := make([]string, len(row))
		for i, v := range row {
			if v.Kind() == expr.KindString {
				vals[i] = v.AsString()
			} else {
				vals[i] = v.String()
			}
		}
		out.Rows = append(out.Rows, vals)
	}
	b, _ := json.Marshal(out)
	return string(b) + "\n"
}

func TestGatherMergesAllShards(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 3, 7),
		newFakeShard(t, 1, 3, 7),
		newFakeShard(t, 2, 3, 7),
	}
	ts := gatherOver(t, shards, 1, 0)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if want := oracleBody(t); body != want {
		t.Fatalf("gathered body is not byte-identical to the single-node answer:\n got: %s\nwant: %s", body, want)
	}
	if got := resp.Header.Get("X-Quarry-Version"); got != "7" {
		t.Fatalf("X-Quarry-Version = %q, want 7", got)
	}
}

// Shard down at query time: after per-shard retries the whole query
// fails — never a partial answer from the survivors.
func TestGatherShardDownFailsWholeQuery(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 3, 7),
		newFakeShard(t, 1, 3, 7),
		newFakeShard(t, 2, 3, 7),
	}
	shards[1].ts.Close()
	ts := gatherOver(t, shards, 2, 0)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d (%s), want 502", resp.StatusCode, body)
	}
	if !strings.Contains(body, "shard 1") || !strings.Contains(body, "refusing partial answer") {
		t.Fatalf("error does not state the failure contract: %s", body)
	}
}

// A shard that 5xxes once and then recovers is retried within the
// same scatter; the query succeeds.
func TestGatherRetriesFlakyShard(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 7),
		newFakeShard(t, 1, 2, 7),
	}
	var failures atomic.Int64
	failures.Store(1)
	shards[1].serve(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(-1) >= 0 {
			http.Error(w, "mid-restart", http.StatusInternalServerError)
			return
		}
		writePartial(w, partialFor(t, 1, 2, 7))
	})
	ts := gatherOver(t, shards, 3, 0)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if body != oracleBody(t) {
		t.Fatalf("retried answer differs from oracle: %s", body)
	}
	if shards[1].hits.Load() < 2 {
		t.Fatalf("flaky shard was hit %d times, want >= 2", shards[1].hits.Load())
	}
}

// Shard timeout mid-gather: the slow shard exceeds the client
// timeout; the query fails with 502 rather than hanging or answering
// without the slow partition.
func TestGatherShardTimeout(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 7),
		newFakeShard(t, 1, 2, 7),
	}
	block := make(chan struct{})
	defer close(block)
	shards[1].serve(func(w http.ResponseWriter, r *http.Request) {
		<-block
	})
	urls := []string{shards[0].ts.URL, shards[1].ts.URL}
	g, err := NewShardGather(urls, &http.Client{Timeout: 150 * time.Millisecond}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d (%s), want 502", resp.StatusCode, body)
	}
	if !strings.Contains(body, "shard 1") {
		t.Fatalf("error does not name the timed-out shard: %s", body)
	}
}

// Stale epoch: one shard answers at an older warehouse version. The
// gather must never merge it — it retries the scatter and, if the
// skew persists, answers 503.
func TestGatherStaleEpochNeverMerged(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 8),
		newFakeShard(t, 1, 2, 7), // one reload behind
	}
	ts := gatherOver(t, shards, 1, 2)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	if !strings.Contains(body, "epoch") {
		t.Fatalf("error does not mention epochs: %s", body)
	}
	// The scatter was retried: each shard was asked more than once.
	if shards[0].hits.Load() != 3 || shards[1].hits.Load() != 3 {
		t.Fatalf("scatter retries = %d/%d hits, want 3/3", shards[0].hits.Load(), shards[1].hits.Load())
	}

	// The skewed shard catching up mid-retry lets the query succeed.
	shards[1].serve(func(w http.ResponseWriter, r *http.Request) {
		writePartial(w, partialFor(t, 1, 2, 8))
	})
	shards[0].serve(func(w http.ResponseWriter, r *http.Request) {
		writePartial(w, partialFor(t, 0, 2, 8))
	})
	resp, body = postGather(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after catch-up: status %d (%s)", resp.StatusCode, body)
	}
}

// A miswired fleet — a shard reporting an index that contradicts its
// position in the ring — must fail queries, not mis-assign a
// partition.
func TestGatherRejectsMiswiredTopology(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 7),
		newFakeShard(t, 0, 2, 7), // duplicate index 0
	}
	ts := gatherOver(t, shards, 1, 0)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d (%s), want 5xx refusal", resp.StatusCode, body)
	}
}

// A shard's own 4xx (e.g. a diced query, which is not distributive)
// is forwarded to the client as-is, not retried.
func TestGatherForwardsShardRejection(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, 0, 1, 7)}
	shards[0].serve(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprintln(w, `{"error":"olap: diamond dice is not distributive over shards; run it on a single node"}`)
	})
	ts := gatherOver(t, shards, 3, 0)
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	if !strings.Contains(body, "not distributive") {
		t.Fatalf("shard's rejection body was not forwarded: %s", body)
	}
	if shards[0].hits.Load() != 1 {
		t.Fatalf("4xx was retried: %d hits", shards[0].hits.Load())
	}
}

// The gather rejects writes and unrelated endpoints outright.
func TestGatherRejectsWrites(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, 0, 1, 7)}
	ts := gatherOver(t, shards, 1, 0)
	resp, err := http.Post(ts.URL+"/api/run", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("POST /api/run: status %d, want 403", resp.StatusCode)
	}
}

// The health endpoint reports per-shard liveness and epochs.
func TestGatherHealth(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 9),
		newFakeShard(t, 1, 2, 9),
	}
	shards[1].ts.Close()
	ts := gatherOver(t, shards, 1, 0)
	resp, err := http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Status string `json:"status"`
		Role   string `json:"role"`
		Shards []struct {
			Healthy bool   `json:"healthy"`
			Epoch   uint64 `json:"epoch"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body.Status != "degraded" || body.Role != "shard-gather" {
		t.Fatalf("health = %+v", body)
	}
	if len(body.Shards) != 2 || !body.Shards[0].Healthy || body.Shards[1].Healthy {
		t.Fatalf("per-shard health wrong: %+v", body.Shards)
	}
	if body.Shards[0].Epoch != 9 {
		t.Fatalf("shard 0 epoch = %d, want 9", body.Shards[0].Epoch)
	}
}

// busyShard makes a fake shard answer 429 + Retry-After while
// shedding holds — admission control on a healthy shard.
func busyShard(fs *fakeShard, shedding *atomic.Bool, index, count int, epoch uint64, t *testing.T) {
	fs.serve(func(w http.ResponseWriter, r *http.Request) {
		if shedding.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"shed":true}`, http.StatusTooManyRequests)
			return
		}
		writePartial(w, partialFor(t, index, count, epoch))
	})
}

// gatherWithOptions builds a gather whose sleep is stubbed out so
// busy-backoff tests run instantly; onSleep may mutate fleet state to
// simulate draining during the backoff.
func gatherWithOptions(t *testing.T, shards []*fakeShard, opts GatherOptions, onSleep func()) (*ShardRouter, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(shards))
	for i, s := range shards {
		urls[i] = s.ts.URL
	}
	g, err := NewShardGatherWithOptions(urls, &http.Client{Timeout: 5 * time.Second}, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.sleep = func(ctx context.Context, d time.Duration) bool {
		if d <= 0 || d > g.maxRetryAfter {
			t.Errorf("backoff %v outside (0, %v]", d, g.maxRetryAfter)
		}
		if onSleep != nil {
			onSleep()
		}
		return true
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

// TestGatherWholeFleetBusyFailsFast: when EVERY shard sheds, a retry
// could only re-offer the load that caused it — the gather answers an
// aggregated 429 + Retry-After immediately, with no backoff sleep and
// exactly one scatter, and never a 502.
func TestGatherWholeFleetBusyFailsFast(t *testing.T) {
	var shedding atomic.Bool
	shedding.Store(true)
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 7),
		newFakeShard(t, 1, 2, 7),
	}
	busyShard(shards[0], &shedding, 0, 2, 7, t)
	busyShard(shards[1], &shedding, 1, 2, 7, t)
	_, ts := gatherWithOptions(t, shards, GatherOptions{Attempts: 1, BusyRetries: 3}, func() {
		t.Error("gather slept on a whole-fleet-busy scatter; it must fail fast")
	})
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want aggregated 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("aggregated 429 carries no Retry-After")
	}
	if shards[0].hits.Load() != 1 || shards[1].hits.Load() != 1 {
		t.Fatalf("scatter count = %d/%d hits, want 1/1 (no busy retries)", shards[0].hits.Load(), shards[1].hits.Load())
	}
}

// TestGatherPartialBusyRetriesAndSucceeds: one shard shedding while
// its siblings answer triggers a jittered whole-scatter retry; once
// the busy shard drains during the backoff, the query completes with
// the full merged answer.
func TestGatherPartialBusyRetriesAndSucceeds(t *testing.T) {
	var shedding atomic.Bool
	shedding.Store(true)
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 7),
		newFakeShard(t, 1, 2, 7),
	}
	busyShard(shards[1], &shedding, 1, 2, 7, t)
	_, ts := gatherWithOptions(t, shards, GatherOptions{Attempts: 1, BusyRetries: 1}, func() {
		shedding.Store(false) // the shard drains during the backoff
	})
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want the retried scatter to succeed", resp.StatusCode, body)
	}
	if body != oracleBody(t) {
		t.Fatalf("merged answer differs from oracle after busy retry: %s", body)
	}
	if shards[1].hits.Load() != 2 {
		t.Fatalf("busy shard hit %d times, want 2 (shed, then served)", shards[1].hits.Load())
	}
}

// TestGatherBusyBudgetExhausts429: a shard that keeps shedding past
// the busy budget turns the query into an aggregated 429 — busy is
// never reported as the 502 outage contract reserved for dead shards.
func TestGatherBusyBudgetExhausts429(t *testing.T) {
	var shedding atomic.Bool
	shedding.Store(true)
	shards := []*fakeShard{
		newFakeShard(t, 0, 2, 7),
		newFakeShard(t, 1, 2, 7),
	}
	busyShard(shards[1], &shedding, 1, 2, 7, t)
	var slept atomic.Int64
	_, ts := gatherWithOptions(t, shards, GatherOptions{Attempts: 1, BusyRetries: 1}, func() {
		slept.Add(1)
	})
	resp, body := postGather(t, ts.URL)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429 after busy budget", resp.StatusCode, body)
	}
	if !strings.Contains(body, "busy") {
		t.Fatalf("429 body does not say busy: %s", body)
	}
	if slept.Load() != 1 {
		t.Fatalf("gather slept %d times, want exactly the busy budget (1)", slept.Load())
	}
	if shards[1].hits.Load() != 2 {
		t.Fatalf("busy shard hit %d times, want 2 (initial + 1 budgeted retry)", shards[1].hits.Load())
	}
}
