// Package router implements the scatter layer of the replicated
// serving deployment: a thin HTTP front that fans /api/olap across a
// fleet of read replicas with health-checked round-robin and
// retry-on-failure. Replicas answer every query byte-identically (the
// replication protocol ships the primary's committed segments
// verbatim and the OLAP stack is deterministic), so the router can
// pick any healthy backend and retry a failed request on another
// without changing the answer.
//
// The router holds no warehouse state and makes no routing decisions
// beyond liveness: it is safe to run several routers over the same
// fleet, and killing one loses nothing but its in-flight requests.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxBodyBytes bounds the buffered request body. OLAP requests are a
// few hundred bytes of SQL or xRQ; anything near the cap is abuse.
const maxBodyBytes = 1 << 20

// backend is one replica the router scatters over.
type backend struct {
	base    string
	healthy atomic.Bool
}

// Router fans read requests across replicas. It proxies /api/olap
// (and other GET endpoints) with failover and rejects writes — those
// belong on the primary.
type Router struct {
	backends []*backend
	client   *http.Client
	next     atomic.Uint64

	// probeMu serializes health sweeps (the background loop and any
	// test-triggered probe).
	probeMu sync.Mutex
}

// New builds a router over the given replica base URLs (e.g.
// "http://replica1:8081"). All backends start healthy — the first
// failed request or health probe demotes them.
func New(replicas []string, client *http.Client) (*Router, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	r := &Router{client: client}
	for _, raw := range replicas {
		base := strings.TrimRight(strings.TrimSpace(raw), "/")
		if base == "" {
			return nil, fmt.Errorf("router: empty replica URL")
		}
		b := &backend{base: base}
		b.healthy.Store(true)
		r.backends = append(r.backends, b)
	}
	return r, nil
}

// Probe health-checks every backend once (GET /api/health) and
// updates its liveness flag. Used by the background loop and called
// directly in tests.
func (r *Router) Probe(ctx context.Context) {
	r.probeMu.Lock()
	defer r.probeMu.Unlock()
	for _, b := range r.backends {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/api/health", nil)
		if err != nil {
			b.healthy.Store(false)
			continue
		}
		resp, err := r.client.Do(req)
		if err != nil {
			b.healthy.Store(false)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		b.healthy.Store(resp.StatusCode == http.StatusOK)
	}
}

// HealthLoop probes every backend each interval until ctx is
// cancelled.
func (r *Router) HealthLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		r.Probe(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// candidates returns the backends to try for one request: the healthy
// ones starting at the round-robin cursor, then — only when every
// backend is marked down — the full ring, so a fleet-wide blip is
// retried rather than instantly 502'd.
func (r *Router) candidates() []*backend {
	n := len(r.backends)
	start := int(r.next.Add(1)-1) % n
	var out []*backend
	for i := 0; i < n; i++ {
		b := r.backends[(start+i)%n]
		if b.healthy.Load() {
			out = append(out, b)
		}
	}
	if len(out) > 0 {
		return out
	}
	for i := 0; i < n; i++ {
		out = append(out, r.backends[(start+i)%n])
	}
	return out
}

// Handler returns the router's HTTP interface.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/health", r.handleHealth)
	mux.HandleFunc("/", r.handleProxy)
	return mux
}

// handleHealth reports the router's own liveness plus each backend's.
func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	type repl struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
	}
	resp := struct {
		Status   string `json:"status"`
		Role     string `json:"role"`
		Replicas []repl `json:"replicas"`
	}{Status: "degraded", Role: "router"}
	for _, b := range r.backends {
		h := b.healthy.Load()
		if h {
			resp.Status = "ok"
		}
		resp.Replicas = append(resp.Replicas, repl{URL: b.base, Healthy: h})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleProxy forwards a read request to a healthy replica, retrying
// on the next one when a backend fails mid-request. POST is allowed
// only for /api/olap (a read that travels as POST); every other
// mutating method is rejected — the router fronts replicas, which
// would themselves answer 403.
func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet, http.MethodHead:
	case http.MethodPost:
		if req.URL.Path != "/api/olap" {
			http.Error(w, "router: writes must go to the primary", http.StatusForbidden)
			return
		}
	default:
		http.Error(w, "router: writes must go to the primary", http.StatusForbidden)
		return
	}
	// Buffer the body so a failed attempt can be replayed on the next
	// backend.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(req.Body, maxBodyBytes+1))
		if err != nil {
			http.Error(w, "router: reading request body", http.StatusBadRequest)
			return
		}
		if len(body) > maxBodyBytes {
			http.Error(w, "router: request body too large", http.StatusRequestEntityTooLarge)
			return
		}
	}
	var lastErr string
	for _, b := range r.candidates() {
		status, hdr, respBody, err := r.forward(req, b, body)
		if err != nil {
			// Network-level failure: demote and try the next replica.
			b.healthy.Store(false)
			lastErr = fmt.Sprintf("%s: %v", b.base, err)
			continue
		}
		if status >= 500 {
			// The replica answered but is unwell (e.g. mid-restart).
			// Its response is not the query's answer — demote, retry.
			b.healthy.Store(false)
			lastErr = fmt.Sprintf("%s: HTTP %d", b.base, status)
			continue
		}
		for k, vs := range hdr {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	http.Error(w, "router: no replica available: "+lastErr, http.StatusBadGateway)
}

// forward sends one attempt to one backend and returns the full
// response (buffered: a response we cannot finish reading must not be
// half-streamed to the client, or the retry would corrupt it).
func (r *Router) forward(req *http.Request, b *backend, body []byte) (int, http.Header, []byte, error) {
	out, err := http.NewRequestWithContext(req.Context(), req.Method, b.base+req.URL.RequestURI(), strings.NewReader(string(body)))
	if err != nil {
		return 0, nil, nil, err
	}
	for k, vs := range req.Header {
		for _, v := range vs {
			out.Header.Add(k, v)
		}
	}
	resp, err := r.client.Do(out)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}
