// Package router implements the scatter layer of the replicated
// serving deployment: a thin HTTP front that fans /api/olap across a
// fleet of read replicas with health-checked round-robin and
// retry-on-failure. Replicas answer every query byte-identically (the
// replication protocol ships the primary's committed segments
// verbatim and the OLAP stack is deterministic), so the router can
// pick any healthy backend and retry a failed request on another
// without changing the answer.
//
// The router holds no warehouse state and makes no routing decisions
// beyond liveness: it is safe to run several routers over the same
// fleet, and killing one loses nothing but its in-flight requests.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxBodyBytes bounds the buffered request body. OLAP requests are a
// few hundred bytes of SQL or xRQ; anything near the cap is abuse.
const maxBodyBytes = 1 << 20

// Busy-backend handling, shared by the replica router and the shard
// gather. A 429 (admission-control shed) or 503 (queue refusal) is a
// HEALTHY backend protecting itself: it must never be demoted from
// the ring — during an overload spike every replica sheds, and
// demote-on-429 would turn load shedding into mass demotion and a
// fleet-wide 502. Busy answers are retried with jittered backoff
// honoring the backend's Retry-After, under a per-query retry budget
// so the retries themselves cannot amplify the overload; a query
// whose budget runs out is answered with an aggregated 429 +
// Retry-After — "come back later", not "the fleet is dead".

// defaultRetryAfter is assumed when a busy answer carries no
// (parseable) Retry-After header.
const defaultRetryAfter = time.Second

// isBusyStatus classifies the statuses that mean "healthy but
// refusing work right now".
func isBusyStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// retryAfterOf reads a Retry-After header (whole seconds — the only
// form quarryd emits; HTTP-dates fall back to the default).
func retryAfterOf(hdr http.Header) time.Duration {
	if s, err := strconv.ParseInt(strings.TrimSpace(hdr.Get("Retry-After")), 10, 64); err == nil && s > 0 {
		return time.Duration(s) * time.Second
	}
	return defaultRetryAfter
}

// jittered spreads a backoff uniformly over [d/2, d): synchronized
// clients honoring the same Retry-After verbatim would re-arrive as
// one thundering herd and be shed again together.
func jittered(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)))
}

// sleepCtx waits d unless ctx ends first; false means the caller's
// client is gone and the retry is pointless.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// backend is one replica the router scatters over.
type backend struct {
	base    string
	healthy atomic.Bool
}

// Router fans read requests across replicas. It proxies /api/olap
// (and other GET endpoints) with failover and rejects writes — those
// belong on the primary.
type Router struct {
	backends []*backend
	client   *http.Client
	next     atomic.Uint64

	// retryBudget is how many extra passes over the ring one request
	// may spend waiting out busy (429/503) backends before it is
	// answered with an aggregated 429. Bounded so retries cannot
	// multiply offered load during the very overload that caused them.
	retryBudget int
	// maxRetryAfter caps the backoff honored from a backend's
	// Retry-After header, so one absurd header cannot park requests.
	maxRetryAfter time.Duration
	// sleep is the backoff primitive (seam for tests; sleepCtx
	// otherwise).
	sleep func(ctx context.Context, d time.Duration) bool

	// probeMu serializes health sweeps (the background loop and any
	// test-triggered probe).
	probeMu sync.Mutex
}

// Options tunes a replica router beyond its defaults.
type Options struct {
	// RetryBudget: extra busy-retry passes per query (default 2;
	// negative disables busy retries entirely — busy answers 429
	// immediately once the whole ring was tried).
	RetryBudget int
	// MaxRetryAfter caps the per-pass backoff (default 2s).
	MaxRetryAfter time.Duration
}

// New builds a router over the given replica base URLs (e.g.
// "http://replica1:8081") with default options. All backends start
// healthy — the first failed request or health probe demotes them.
func New(replicas []string, client *http.Client) (*Router, error) {
	return NewWithOptions(replicas, client, Options{})
}

// NewWithOptions builds a router with explicit overload tuning.
func NewWithOptions(replicas []string, client *http.Client, opts Options) (*Router, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.RetryBudget == 0 {
		opts.RetryBudget = 2
	}
	if opts.RetryBudget < 0 {
		opts.RetryBudget = 0
	}
	if opts.MaxRetryAfter <= 0 {
		opts.MaxRetryAfter = 2 * time.Second
	}
	r := &Router{
		client:        client,
		retryBudget:   opts.RetryBudget,
		maxRetryAfter: opts.MaxRetryAfter,
		sleep:         sleepCtx,
	}
	for _, raw := range replicas {
		base := strings.TrimRight(strings.TrimSpace(raw), "/")
		if base == "" {
			return nil, fmt.Errorf("router: empty replica URL")
		}
		b := &backend{base: base}
		b.healthy.Store(true)
		r.backends = append(r.backends, b)
	}
	return r, nil
}

// Probe health-checks every backend once (GET /api/health) and
// updates its liveness flag. Used by the background loop and called
// directly in tests.
func (r *Router) Probe(ctx context.Context) {
	r.probeMu.Lock()
	defer r.probeMu.Unlock()
	for _, b := range r.backends {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/api/health", nil)
		if err != nil {
			b.healthy.Store(false)
			continue
		}
		resp, err := r.client.Do(req)
		if err != nil {
			b.healthy.Store(false)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		b.healthy.Store(resp.StatusCode == http.StatusOK)
	}
}

// HealthLoop probes every backend each interval until ctx is
// cancelled.
func (r *Router) HealthLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		r.Probe(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// candidates returns the backends to try for one request: the healthy
// ones starting at the round-robin cursor, then — only when every
// backend is marked down — the full ring, so a fleet-wide blip is
// retried rather than instantly 502'd.
func (r *Router) candidates() []*backend {
	n := len(r.backends)
	start := int(r.next.Add(1)-1) % n
	var out []*backend
	for i := 0; i < n; i++ {
		b := r.backends[(start+i)%n]
		if b.healthy.Load() {
			out = append(out, b)
		}
	}
	if len(out) > 0 {
		return out
	}
	for i := 0; i < n; i++ {
		out = append(out, r.backends[(start+i)%n])
	}
	return out
}

// Handler returns the router's HTTP interface.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/health", r.handleHealth)
	mux.HandleFunc("/", r.handleProxy)
	return mux
}

// handleHealth reports the router's own liveness plus each backend's.
func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	type repl struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
	}
	resp := struct {
		Status   string `json:"status"`
		Role     string `json:"role"`
		Replicas []repl `json:"replicas"`
	}{Status: "degraded", Role: "router"}
	for _, b := range r.backends {
		h := b.healthy.Load()
		if h {
			resp.Status = "ok"
		}
		resp.Replicas = append(resp.Replicas, repl{URL: b.base, Healthy: h})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleProxy forwards a read request to a healthy replica, retrying
// on the next one when a backend fails mid-request. POST is allowed
// only for /api/olap (a read that travels as POST); every other
// mutating method is rejected — the router fronts replicas, which
// would themselves answer 403.
func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet, http.MethodHead:
	case http.MethodPost:
		if req.URL.Path != "/api/olap" {
			http.Error(w, "router: writes must go to the primary", http.StatusForbidden)
			return
		}
	default:
		http.Error(w, "router: writes must go to the primary", http.StatusForbidden)
		return
	}
	// Buffer the body so a failed attempt can be replayed on the next
	// backend.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(req.Body, maxBodyBytes+1))
		if err != nil {
			http.Error(w, "router: reading request body", http.StatusBadRequest)
			return
		}
		if len(body) > maxBodyBytes {
			http.Error(w, "router: request body too large", http.StatusRequestEntityTooLarge)
			return
		}
	}
	var lastErr string
	for pass := 0; ; pass++ {
		sawBusy := false
		busyAfter := defaultRetryAfter
		for _, b := range r.candidates() {
			status, hdr, respBody, err := r.forward(req, b, body)
			if err != nil {
				// Network-level failure: demote and try the next replica.
				b.healthy.Store(false)
				lastErr = fmt.Sprintf("%s: %v", b.base, err)
				continue
			}
			if isBusyStatus(status) {
				// Busy, not dead: a shedding (429) or queue-refusing
				// (503) replica is healthy and protecting itself —
				// demoting it would cascade load shedding into mass
				// demotion. Stays in rotation; remember its Retry-After
				// and try a sibling.
				sawBusy = true
				if ra := retryAfterOf(hdr); ra > busyAfter {
					busyAfter = ra
				}
				lastErr = fmt.Sprintf("%s: HTTP %d (busy)", b.base, status)
				continue
			}
			if status >= 500 {
				// The replica answered but is unwell (e.g. mid-restart).
				// Its response is not the query's answer — demote, retry.
				b.healthy.Store(false)
				lastErr = fmt.Sprintf("%s: HTTP %d", b.base, status)
				continue
			}
			for k, vs := range hdr {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(status)
			w.Write(respBody)
			return
		}
		if !sawBusy {
			// Every backend is down or erroring — a real outage.
			break
		}
		if busyAfter > r.maxRetryAfter {
			busyAfter = r.maxRetryAfter
		}
		if pass >= r.retryBudget {
			// Budget exhausted with the fleet still busy: aggregate the
			// shedding into one honest 429 — the fleet is alive, the
			// client should back off, and the router must not keep
			// re-offering the load that caused the shedding.
			w.Header().Set("Retry-After", strconv.FormatInt(int64(busyAfter.Seconds()+0.5), 10))
			http.Error(w, "router: all replicas busy (shedding), retry later: "+lastErr, http.StatusTooManyRequests)
			return
		}
		if !r.sleep(req.Context(), jittered(busyAfter)) {
			// Client gone mid-backoff; nothing left to answer.
			return
		}
	}
	http.Error(w, "router: no replica available: "+lastErr, http.StatusBadGateway)
}

// forward sends one attempt to one backend and returns the full
// response (buffered: a response we cannot finish reading must not be
// half-streamed to the client, or the retry would corrupt it).
func (r *Router) forward(req *http.Request, b *backend, body []byte) (int, http.Header, []byte, error) {
	out, err := http.NewRequestWithContext(req.Context(), req.Method, b.base+req.URL.RequestURI(), strings.NewReader(string(body)))
	if err != nil {
		return 0, nil, nil, err
	}
	for k, vs := range req.Header {
		for _, v := range vs {
			out.Header.Add(k, v)
		}
	}
	resp, err := r.client.Do(out)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}
