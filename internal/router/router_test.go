package router

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeReplica answers /api/olap with its own tag and counts hits, so
// tests can observe distribution and failover.
func fakeReplica(t *testing.T, tag string, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/api/health":
			w.Write([]byte(`{"status":"ok"}`))
		case "/api/olap":
			body, _ := io.ReadAll(r.Body)
			hits.Add(1)
			fmt.Fprintf(w, "%s:%s", tag, body)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func postOLAP(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/api/olap", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestRoundRobinSpreadsLoad: consecutive requests alternate across
// healthy backends and replay the request body to whichever backend
// serves them.
func TestRoundRobinSpreadsLoad(t *testing.T) {
	var aHits, bHits atomic.Int64
	a := fakeReplica(t, "a", &aHits)
	b := fakeReplica(t, "b", &bHits)
	rt, err := New([]string{a.URL, b.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 6; i++ {
		status, body := postOLAP(t, ts.URL, "q1")
		if status != http.StatusOK || !strings.HasSuffix(body, ":q1") {
			t.Fatalf("request %d = %d %q", i, status, body)
		}
	}
	if aHits.Load() != 3 || bHits.Load() != 3 {
		t.Fatalf("round-robin skewed: a=%d b=%d", aHits.Load(), bHits.Load())
	}
}

// TestFailoverRetriesAndDemotes: a dead backend is retried past
// transparently and demoted, so later requests skip it entirely; a
// 5xx backend is treated the same. A health probe re-admits a
// recovered backend.
func TestFailoverRetriesAndDemotes(t *testing.T) {
	var aHits, bHits atomic.Int64
	a := fakeReplica(t, "a", &aHits)
	b := fakeReplica(t, "b", &bHits)
	rt, err := New([]string{a.URL, b.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	a.Close() // kill one backend before any traffic
	for i := 0; i < 4; i++ {
		status, body := postOLAP(t, ts.URL, "q")
		if status != http.StatusOK || body != "b:q" {
			t.Fatalf("request %d = %d %q, want it served by the live backend", i, status, body)
		}
	}
	if bHits.Load() != 4 {
		t.Fatalf("live backend served %d of 4", bHits.Load())
	}

	// All dead → 502, not a hang.
	b.Close()
	if status, _ := postOLAP(t, ts.URL, "q"); status != http.StatusBadGateway {
		t.Fatalf("fleet down = %d, want 502", status)
	}
}

// TestServerErrorFailsOver: a backend answering 5xx is not the
// query's answer — the router retries on the next backend.
func TestServerErrorFailsOver(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "mid-restart", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	var goodHits atomic.Int64
	good := fakeReplica(t, "g", &goodHits)
	rt, err := New([]string{bad.URL, good.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		status, body := postOLAP(t, ts.URL, "q")
		if status != http.StatusOK || body != "g:q" {
			t.Fatalf("request %d = %d %q", i, status, body)
		}
	}
}

// TestWritesRejected: only reads scatter; every mutating method is
// refused at the router.
func TestWritesRejected(t *testing.T) {
	var hits atomic.Int64
	a := fakeReplica(t, "a", &hits)
	rt, err := New([]string{a.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	for _, m := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		path := "/api/run"
		req, _ := http.NewRequest(m, ts.URL+path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s = %d, want 403", m, path, resp.StatusCode)
		}
	}
	if hits.Load() != 0 {
		t.Fatalf("a write reached a backend")
	}
}

// TestProbeRecoversBackend: a demoted backend that comes back is
// re-admitted by the next health sweep.
func TestProbeRecoversBackend(t *testing.T) {
	var flaky atomic.Bool // false = down
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !flaky.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	t.Cleanup(backend.Close)
	var hits atomic.Int64
	good := fakeReplica(t, "g", &hits)
	rt, err := New([]string{backend.URL, good.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// First probe demotes the flaky backend…
	rt.Probe(context.Background())
	if rt.backends[0].healthy.Load() {
		t.Fatal("down backend still marked healthy after probe")
	}
	// …and once it recovers, the next probe re-admits it.
	flaky.Store(true)
	rt.Probe(context.Background())
	if !rt.backends[0].healthy.Load() {
		t.Fatal("recovered backend not re-admitted by probe")
	}
}

// busyReplica answers 429 + Retry-After while shedding is true, and
// serves normally once it clears — a healthy quarryd protecting its
// SLO, not a dead node.
func busyReplica(t *testing.T, tag string, shedding *atomic.Bool, sheds *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/api/health":
			w.Write([]byte(`{"status":"ok"}`))
		case "/api/olap":
			if shedding.Load() {
				sheds.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, `{"shed":true}`, http.StatusTooManyRequests)
				return
			}
			body, _ := io.ReadAll(r.Body)
			fmt.Fprintf(w, "%s:%s", tag, body)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestSheddingBackendStaysInRotation is the regression test for the
// demote-on-429 bug: a backend shedding load must keep its healthy
// mark and keep receiving traffic — siblings absorb the overflow, and
// the moment it stops shedding it serves again with no health-probe
// round trip needed.
func TestSheddingBackendStaysInRotation(t *testing.T) {
	var shedding atomic.Bool
	var sheds atomic.Int64
	shedding.Store(true)
	a := busyReplica(t, "a", &shedding, &sheds)
	var bHits atomic.Int64
	b := fakeReplica(t, "b", &bHits)
	rt, err := New([]string{a.URL, b.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 4; i++ {
		status, body := postOLAP(t, ts.URL, "q")
		if status != http.StatusOK || body != "b:q" {
			t.Fatalf("request %d = %d %q, want the non-shedding backend's answer", i, status, body)
		}
	}
	if !rt.backends[0].healthy.Load() {
		t.Fatal("shedding backend was demoted — 429 must mean busy, not dead")
	}
	if sheds.Load() == 0 {
		t.Fatal("shedding backend received no traffic — it left the rotation")
	}

	// Shed-then-recover: once it stops shedding it serves immediately.
	shedding.Store(false)
	served := false
	for i := 0; i < 4; i++ {
		status, body := postOLAP(t, ts.URL, "q")
		if status != http.StatusOK {
			t.Fatalf("post-recovery request %d = %d %q", i, status, body)
		}
		if body == "a:q" {
			served = true
		}
	}
	if !served {
		t.Fatal("recovered backend never served — still out of rotation")
	}
}

// TestWholeFleetBusyAggregates429: when every backend sheds, the
// router answers an aggregated 429 with a Retry-After — back off, not
// a 502 outage — and demotes nobody.
func TestWholeFleetBusyAggregates429(t *testing.T) {
	var shedding atomic.Bool
	var sheds atomic.Int64
	shedding.Store(true)
	a := busyReplica(t, "a", &shedding, &sheds)
	b := busyReplica(t, "b", &shedding, &sheds)
	rt, err := NewWithOptions([]string{a.URL, b.URL}, nil, Options{RetryBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/api/olap", "application/json", strings.NewReader("q"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("whole-fleet busy = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("aggregated 429 carries no Retry-After")
	}
	for i, b := range rt.backends {
		if !b.healthy.Load() {
			t.Fatalf("backend %d demoted by shedding", i)
		}
	}
}

// TestRetryBudgetBoundsBusyRetries: with every backend busy, the
// router spends exactly retryBudget backoff passes (honoring
// Retry-After, jittered) and then answers 429 — retries never amplify
// the overload unboundedly.
func TestRetryBudgetBoundsBusyRetries(t *testing.T) {
	var shedding atomic.Bool
	var sheds atomic.Int64
	shedding.Store(true)
	a := busyReplica(t, "a", &shedding, &sheds)
	rt, err := NewWithOptions([]string{a.URL}, nil, Options{RetryBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	var slept atomic.Int64
	rt.sleep = func(ctx context.Context, d time.Duration) bool {
		slept.Add(1)
		if d <= 0 || d > rt.maxRetryAfter {
			t.Errorf("backoff %v outside (0, %v]", d, rt.maxRetryAfter)
		}
		return true
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	status, _ := postOLAP(t, ts.URL, "q")
	if status != http.StatusTooManyRequests {
		t.Fatalf("exhausted budget = %d, want 429", status)
	}
	if slept.Load() != 2 {
		t.Fatalf("router slept %d times, want exactly the retry budget (2)", slept.Load())
	}
	if sheds.Load() != 3 {
		t.Fatalf("backend saw %d attempts, want 3 (initial pass + 2 budgeted retries)", sheds.Load())
	}
}

// TestBusyRetrySucceedsAfterBackoff: a backend that sheds one pass
// and recovers before the retry serves the request — the client never
// sees the transient shed.
func TestBusyRetrySucceedsAfterBackoff(t *testing.T) {
	var shedding atomic.Bool
	var sheds atomic.Int64
	shedding.Store(true)
	a := busyReplica(t, "a", &shedding, &sheds)
	rt, err := NewWithOptions([]string{a.URL}, nil, Options{RetryBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt.sleep = func(ctx context.Context, d time.Duration) bool {
		shedding.Store(false) // backend drains during the backoff
		return true
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	status, body := postOLAP(t, ts.URL, "q")
	if status != http.StatusOK || body != "a:q" {
		t.Fatalf("retry after recovery = %d %q, want the backend's answer", status, body)
	}
}
