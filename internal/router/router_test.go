package router

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeReplica answers /api/olap with its own tag and counts hits, so
// tests can observe distribution and failover.
func fakeReplica(t *testing.T, tag string, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/api/health":
			w.Write([]byte(`{"status":"ok"}`))
		case "/api/olap":
			body, _ := io.ReadAll(r.Body)
			hits.Add(1)
			fmt.Fprintf(w, "%s:%s", tag, body)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func postOLAP(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/api/olap", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestRoundRobinSpreadsLoad: consecutive requests alternate across
// healthy backends and replay the request body to whichever backend
// serves them.
func TestRoundRobinSpreadsLoad(t *testing.T) {
	var aHits, bHits atomic.Int64
	a := fakeReplica(t, "a", &aHits)
	b := fakeReplica(t, "b", &bHits)
	rt, err := New([]string{a.URL, b.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 6; i++ {
		status, body := postOLAP(t, ts.URL, "q1")
		if status != http.StatusOK || !strings.HasSuffix(body, ":q1") {
			t.Fatalf("request %d = %d %q", i, status, body)
		}
	}
	if aHits.Load() != 3 || bHits.Load() != 3 {
		t.Fatalf("round-robin skewed: a=%d b=%d", aHits.Load(), bHits.Load())
	}
}

// TestFailoverRetriesAndDemotes: a dead backend is retried past
// transparently and demoted, so later requests skip it entirely; a
// 5xx backend is treated the same. A health probe re-admits a
// recovered backend.
func TestFailoverRetriesAndDemotes(t *testing.T) {
	var aHits, bHits atomic.Int64
	a := fakeReplica(t, "a", &aHits)
	b := fakeReplica(t, "b", &bHits)
	rt, err := New([]string{a.URL, b.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	a.Close() // kill one backend before any traffic
	for i := 0; i < 4; i++ {
		status, body := postOLAP(t, ts.URL, "q")
		if status != http.StatusOK || body != "b:q" {
			t.Fatalf("request %d = %d %q, want it served by the live backend", i, status, body)
		}
	}
	if bHits.Load() != 4 {
		t.Fatalf("live backend served %d of 4", bHits.Load())
	}

	// All dead → 502, not a hang.
	b.Close()
	if status, _ := postOLAP(t, ts.URL, "q"); status != http.StatusBadGateway {
		t.Fatalf("fleet down = %d, want 502", status)
	}
}

// TestServerErrorFailsOver: a backend answering 5xx is not the
// query's answer — the router retries on the next backend.
func TestServerErrorFailsOver(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "mid-restart", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	var goodHits atomic.Int64
	good := fakeReplica(t, "g", &goodHits)
	rt, err := New([]string{bad.URL, good.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		status, body := postOLAP(t, ts.URL, "q")
		if status != http.StatusOK || body != "g:q" {
			t.Fatalf("request %d = %d %q", i, status, body)
		}
	}
}

// TestWritesRejected: only reads scatter; every mutating method is
// refused at the router.
func TestWritesRejected(t *testing.T) {
	var hits atomic.Int64
	a := fakeReplica(t, "a", &hits)
	rt, err := New([]string{a.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	for _, m := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		path := "/api/run"
		req, _ := http.NewRequest(m, ts.URL+path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s = %d, want 403", m, path, resp.StatusCode)
		}
	}
	if hits.Load() != 0 {
		t.Fatalf("a write reached a backend")
	}
}

// TestProbeRecoversBackend: a demoted backend that comes back is
// re-admitted by the next health sweep.
func TestProbeRecoversBackend(t *testing.T) {
	var flaky atomic.Bool // false = down
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !flaky.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	t.Cleanup(backend.Close)
	var hits atomic.Int64
	good := fakeReplica(t, "g", &hits)
	rt, err := New([]string{backend.URL, good.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// First probe demotes the flaky backend…
	rt.Probe(context.Background())
	if rt.backends[0].healthy.Load() {
		t.Fatal("down backend still marked healthy after probe")
	}
	// …and once it recovers, the next probe re-admits it.
	flaky.Store(true)
	rt.Probe(context.Background())
	if !rt.backends[0].healthy.Load() {
		t.Fatal("recovered backend not re-admitted by probe")
	}
}
