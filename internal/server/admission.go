// SLO-driven admission control: the serving layer's defence against
// overload. Every OLAP answer class has a wildly different cost
// (result-cache hit ≪ materialized aggregate ≪ fast path ≪ dice ≈
// oracle), so under pressure the server refuses the cheap-to-refuse
// expensive work with 429 + Retry-After instead of letting every
// request time out together.
//
// The controller tracks a per-class EWMA of execution time (and of
// its variance — admission charges mean + 2 sigma, since a class is a
// mix of shapes and charging the mean over-admits whenever the cheap
// shape is hot) and a running "backlog" — the summed predicted cost
// of every admitted but unfinished query. An arriving request's queue
// wait is projected as backlog spread over the executor width; when
// that projection (plus, under the default expensive-first policy,
// the request's own per-class cost) blows the configured SLO, the
// request is shed.
// Because the projection includes the arriving class's own cost,
// expensive classes blow the budget at a lower backlog than cheap
// ones — the most expensive class is refused first as load rises,
// with no explicit priority table. Result-cache hits never reach the
// controller at all: they are answered before the query pool and are
// always admitted.
package server

import (
	"fmt"
	"math"
	"sync"
	"time"

	"quarry/internal/olap"
)

// queryClass indexes the controller's per-class tables.
type queryClass int

const (
	classCacheHit queryClass = iota
	classMatAgg
	classFast
	classDice
	classOracle
	numClasses
)

// classNames maps queryClass to the olap.Class* wire names.
var classNames = [numClasses]string{
	olap.ClassCacheHit, olap.ClassMatAgg, olap.ClassFast, olap.ClassDice, olap.ClassOracle,
}

// classOf maps an executor-stamped class name back to its index; an
// unknown name costs like the fast path.
func classOf(name string) queryClass {
	for c, n := range classNames {
		if n == name {
			return queryClass(c)
		}
	}
	return classFast
}

// predictClass classifies an arriving request before execution. An
// oracle request runs the star-flow executor, a dice buffers detail
// rows through the fixpoint; everything else is predicted as the
// base fast path — the conservative choice, since the only cheaper
// outcome (a materialized-aggregate rewrite) cannot be known until
// the planner runs, and the EWMA attribution on completion uses the
// class that actually answered.
func predictClass(oracle bool, dice bool) queryClass {
	switch {
	case oracle:
		return classOracle
	case dice:
		return classDice
	default:
		return classFast
	}
}

// Shed policies.
const (
	// PolicyExpensiveFirst projects queue wait + the arriving class's
	// own EWMA cost against the SLO, so expensive classes are refused
	// at a lower backlog than cheap ones (the default).
	PolicyExpensiveFirst = "expensive-first"
	// PolicyFair projects queue wait alone: every class is shed at the
	// same backlog.
	PolicyFair = "fair"
	// PolicyOff never sheds (deadlines still apply).
	PolicyOff = "off"
)

// ewmaAlpha is the per-observation weight of the service-time EWMA:
// heavy enough to track a warming cache or a republish-induced cost
// shift within tens of queries, light enough that one outlier does
// not swing admission.
const ewmaAlpha = 0.2

// ewmaPriorNs seeds each class's service-time estimate before any
// observation (rough SF-5 shape, in ns). Priors only steer the first
// few admissions; real observations dominate within ~1/alpha queries.
var ewmaPriorNs = [numClasses]float64{
	classCacheHit: float64(5 * time.Microsecond),
	classMatAgg:   float64(50 * time.Microsecond),
	classFast:     float64(250 * time.Microsecond),
	classDice:     float64(500 * time.Microsecond),
	classOracle:   float64(500 * time.Microsecond),
}

// admission is the controller. All state sits under one short-held
// mutex: admit/done do a handful of float ops, never I/O.
type admission struct {
	slo    time.Duration // 0 disables shedding
	policy string
	width  int // executor parallelism (the OLAP pool size)

	mu        sync.Mutex
	ewmaNs    [numClasses]float64
	ewmaVar   [numClasses]float64 // EWMA of squared deviation (ns²)
	served    [numClasses]int64   // completed queries per actual class
	shed      [numClasses]int64   // refused requests per predicted class
	inflight  [numClasses]int64   // admitted, not yet done, per predicted class
	backlogNs float64             // summed predicted cost of inflight work
}

// chargeLocked is the cost an arriving request of class c is admitted
// against: the class mean plus two sigma of an exponentially-weighted
// variance. Charging the MEAN is what the mean cannot survive — a
// class like "fast" spans a cheap hot rollup and a wide cross
// group-by, the EWMA tracks whichever shape is hot, and a dip
// over-admits a deep queue whose expensive members then drain for
// multiples of the SLO (a shed/over-admit limit cycle). Charging
// pessimistically keeps the backlog honest for the mix actually
// queued; for a homogeneous class the variance is ~0 and the charge
// degrades to the mean.
func (a *admission) chargeLocked(c queryClass) float64 {
	return a.ewmaNs[c] + 2*math.Sqrt(a.ewmaVar[c])
}

// ticket is one admitted request's charge against the backlog; it
// must be settled exactly once via done.
type ticket struct {
	class    queryClass // predicted class (the charge key)
	chargeNs float64
}

// ValidateShedPolicy rejects unknown policy names with a usable
// error; "" is accepted as the default. Callers turning user input
// into Options (quarryd's -shed-policy flag) check here so a typo
// fails startup instead of silently running the default.
func ValidateShedPolicy(policy string) error {
	switch policy {
	case "", PolicyExpensiveFirst, PolicyFair, PolicyOff:
		return nil
	}
	return fmt.Errorf("unknown shed policy %q (want %s, %s or %s)",
		policy, PolicyExpensiveFirst, PolicyFair, PolicyOff)
}

func newAdmission(slo time.Duration, policy string, width int) *admission {
	if ValidateShedPolicy(policy) != nil || policy == "" {
		policy = PolicyExpensiveFirst
	}
	if width < 1 {
		width = 1
	}
	a := &admission{slo: slo, policy: policy, width: width}
	a.ewmaNs = ewmaPriorNs
	return a
}

// shedding reports whether this controller can ever refuse work.
func (a *admission) shedding() bool {
	return a.slo > 0 && a.policy != PolicyOff
}

// admit decides one arriving request. Admitted requests get a ticket
// charging their predicted cost to the backlog; refused ones get the
// suggested Retry-After and the projected wait that condemned them.
func (a *admission) admit(c queryClass) (t ticket, ok bool, retryAfter, projected time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	wait := a.backlogNs / float64(a.width)
	cost := a.chargeLocked(c)
	if a.shedding() && wait > 0 {
		proj := wait
		if a.policy == PolicyExpensiveFirst {
			proj += cost
		}
		if proj > float64(a.slo) {
			a.shed[c]++
			// Suggest coming back once the excess backlog should have
			// drained; HTTP Retry-After is whole seconds, so floor at 1.
			excess := time.Duration(proj - float64(a.slo))
			ra := time.Duration(math.Ceil(excess.Seconds())) * time.Second
			if ra < time.Second {
				ra = time.Second
			}
			return ticket{}, false, ra, time.Duration(proj)
		}
	}
	a.backlogNs += cost
	a.inflight[c]++
	return ticket{class: c, chargeNs: cost}, true, 0, time.Duration(wait)
}

// done settles a ticket: the backlog charge is released, and — when
// the query actually ran (execNs >= 0) — the observed execution time
// feeds the EWMA of the class that really answered (which may be
// cheaper than predicted, e.g. a materialized-aggregate rewrite).
// Queue-abandoned requests pass execNs < 0: they burned no executor
// time, so they must not drag the estimate down.
func (a *admission) done(t ticket, actual queryClass, execNs int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.backlogNs -= t.chargeNs
	// Clamp below one nanosecond, not just below zero: charges are
	// floats, so a drained backlog can be left holding rounding dust
	// (~1e-7 ns), and the admit path treats ANY positive backlog as "a
	// queue exists". With a pessimistic per-class charge above the SLO
	// that dust would shed every request on an idle server — a total
	// lockout observed in overload testing.
	if a.backlogNs < 1 {
		a.backlogNs = 0
	}
	a.inflight[t.class]--
	if execNs >= 0 {
		a.observeLocked(actual, execNs)
	}
}

// observe records a service time for a class outside the
// ticket/backlog flow (cache hits, which never hold a ticket).
func (a *admission) observe(c queryClass, execNs int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.observeLocked(c, execNs)
}

func (a *admission) observeLocked(c queryClass, execNs int64) {
	delta := float64(execNs) - a.ewmaNs[c]
	a.ewmaNs[c] += ewmaAlpha * delta
	// West-style EW variance: delta against the old mean times delta
	// against the new keeps the estimate unbiased under drift.
	a.ewmaVar[c] += ewmaAlpha * (delta*(float64(execNs)-a.ewmaNs[c]) - a.ewmaVar[c])
	if a.ewmaVar[c] < 0 {
		a.ewmaVar[c] = 0
	}
	a.served[c]++
}

// classStats is one class's slice of the admission stats.
type classStats struct {
	// EWMAMicros is the current execution-time estimate.
	EWMAMicros float64 `json:"ewma_us"`
	// SigmaMicros is the EW standard deviation of that estimate;
	// admission charges mean + 2 sigma (see chargeLocked).
	SigmaMicros float64 `json:"sigma_us"`
	// Served counts completed queries answered by this class.
	Served int64 `json:"served"`
	// Shed counts requests refused while predicted as this class.
	Shed int64 `json:"shed"`
	// Inflight is the current admitted-but-unfinished occupancy.
	Inflight int64 `json:"inflight"`
}

// admissionStats is the admin view (GET /api/olap/stats).
type admissionStats struct {
	SLOTargetMs     float64               `json:"slo_target_ms"`
	Policy          string                `json:"policy"`
	Width           int                   `json:"width"`
	ProjectedWaitMs float64               `json:"projected_wait_ms"`
	Classes         map[string]classStats `json:"classes"`
}

func (a *admission) stats() admissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := admissionStats{
		SLOTargetMs:     float64(a.slo) / float64(time.Millisecond),
		Policy:          a.policy,
		Width:           a.width,
		ProjectedWaitMs: a.backlogNs / float64(a.width) / float64(time.Millisecond),
		Classes:         make(map[string]classStats, numClasses),
	}
	for c := queryClass(0); c < numClasses; c++ {
		out.Classes[classNames[c]] = classStats{
			EWMAMicros:  a.ewmaNs[c] / float64(time.Microsecond),
			SigmaMicros: math.Sqrt(a.ewmaVar[c]) / float64(time.Microsecond),
			Served:      a.served[c],
			Shed:        a.shed[c],
			Inflight:    a.inflight[c],
		}
	}
	return out
}
