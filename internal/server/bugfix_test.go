package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quarry/internal/core"
	"quarry/internal/expr"
	"quarry/internal/olap"
	"quarry/internal/storage"
	"quarry/internal/tpch"
)

// TestOLAPBodyPreservesApostrophes pins the rendering fix: string
// cells are the value's raw content. The old code trimmed apostrophes
// off the SQL-literal form, which also ate legitimate leading and
// trailing apostrophes that are part of the data.
func TestOLAPBodyPreservesApostrophes(t *testing.T) {
	res := &olap.Result{
		Columns: []string{"label", "plain", "n", "x"},
		Rows: [][]expr.Value{
			{expr.Str("'80s rock'"), expr.Str("SPAIN"), expr.Int(7), expr.Float(1.5)},
			{expr.Str("'"), expr.Str(""), expr.Int(-1), expr.Float(0)},
		},
	}
	body := olapBody(res)
	want := [][]string{
		{"'80s rock'", "SPAIN", "7", "1.5"},
		{"'", "", "-1", "0.0"},
	}
	for i, row := range want {
		for j, cell := range row {
			if got := body.Rows[i][j]; got != cell {
				t.Errorf("row %d col %d = %q, want %q", i, j, got, cell)
			}
		}
	}
}

// deployedTestPlatform builds an in-memory platform with IR_revenue
// deployed and run once.
func deployedTestPlatform(t *testing.T, sf float64) *core.Platform {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(sf)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	if _, err := tpch.Generate(db, sf, 42); err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return p
}

const revenueOLAPBody = `{"fact":"fact_table_revenue","group_by":["n_name"],` +
	`"measures":[{"out":"total","func":"SUM","col":"revenue"}]}`

func postOLAP(t *testing.T, client *http.Client, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := client.Post(url+"/api/olap", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	readAll(&buf, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /api/olap = %d: %s", resp.StatusCode, buf.String())
	}
	return resp, buf.String()
}

// TestOLAPCachePutKeyedByExecutedVersion is the race-shaped
// regression for the result-cache keying bug: an ETL run commits
// between the cache lookup and the query's snapshot, so the query
// executes against a NEWER version than the key computed at request
// time. The Put must be keyed by the version the query actually ran
// against (res.Version) — keying it by the stale request-time version
// files the fresh result where no future lookup can find it.
func TestOLAPCachePutKeyedByExecutedVersion(t *testing.T) {
	p := deployedTestPlatform(t, 1)
	ts := httptest.NewServer(NewWithOptions(p, Options{}).Handler())
	t.Cleanup(ts.Close)

	var fired int32
	testingOLAPBeforeQuery = func() {
		if atomic.CompareAndSwapInt32(&fired, 0, 1) {
			// Commit an ETL run inside the lookup→execute window.
			if _, err := p.Run(); err != nil {
				t.Errorf("mid-flight run: %v", err)
			}
		}
	}
	t.Cleanup(func() { testingOLAPBeforeQuery = nil })

	resp, body1 := postOLAP(t, http.DefaultClient, ts.URL, revenueOLAPBody)
	if got := resp.Header.Get("X-Quarry-Cache"); got != "miss" {
		t.Fatalf("first request cache = %q, want miss", got)
	}
	if atomic.LoadInt32(&fired) != 1 {
		t.Fatal("test seam did not fire")
	}
	// The repeat lookup happens at the post-run version — the version
	// the first query executed against. It must be a HIT: a miss here
	// means the Put was keyed by the stale request-time version.
	resp, body2 := postOLAP(t, http.DefaultClient, ts.URL, revenueOLAPBody)
	if got := resp.Header.Get("X-Quarry-Cache"); got != "hit" {
		t.Fatalf("repeat request cache = %q, want hit: the Put must be keyed by the version the query ran against", got)
	}
	if body1 != body2 {
		t.Fatalf("cached answer differs from computed answer:\n%s\nvs\n%s", body1, body2)
	}
}

// TestOLAPClientDisconnectDuringQueryFreesSlot: a client that
// disconnects after its query acquired a pool slot must have the
// query cancelled — releasing the slot promptly — and must not
// publish a result computed for nobody. The follow-up request proves
// both: it gets the slot (pool capacity is 1) and it is a cache miss.
func TestOLAPClientDisconnectDuringQueryFreesSlot(t *testing.T) {
	p := deployedTestPlatform(t, 1)
	ts := httptest.NewServer(NewWithOptions(p, Options{OLAPConcurrency: 1}).Handler())
	t.Cleanup(ts.Close)

	entered := make(chan struct{})
	release := make(chan struct{})
	var fired int32
	testingOLAPBeforeQuery = func() {
		if atomic.CompareAndSwapInt32(&fired, 0, 1) {
			close(entered)
			<-release
		}
	}
	t.Cleanup(func() { testingOLAPBeforeQuery = nil })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/api/olap", strings.NewReader(revenueOLAPBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered // the request holds the only query slot
	cancel()  // client walks away
	if err := <-errc; err == nil {
		t.Fatal("expected a client-side cancellation error")
	}
	// Give the server a beat to observe the dropped connection, then
	// let the handler proceed into the (now cancelled) query.
	time.Sleep(100 * time.Millisecond)
	close(release)

	client := &http.Client{Timeout: 30 * time.Second}
	resp, _ := postOLAP(t, client, ts.URL, revenueOLAPBody)
	if got := resp.Header.Get("X-Quarry-Cache"); got != "miss" {
		t.Fatalf("follow-up cache = %q, want miss: the abandoned query must not publish its result", got)
	}
}

// TestOLAPAbandonedClientsStress: a burst of clients with aggressive
// timeouts against a single-slot pool must not wedge the server —
// abandoned queries release their slots at the next cancellation
// checkpoint, so a patient client still gets through promptly.
func TestOLAPAbandonedClientsStress(t *testing.T) {
	p := deployedTestPlatform(t, 1)
	ts := httptest.NewServer(NewWithOptions(p, Options{OLAPConcurrency: 1}).Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%5)*time.Millisecond)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/api/olap", strings.NewReader(revenueOLAPBody))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(ts.URL+"/api/olap", "application/json", strings.NewReader(revenueOLAPBody))
	if err != nil {
		t.Fatalf("patient client after abandoned burst: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patient client = %d", resp.StatusCode)
	}
	var out struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) == 0 {
		t.Fatal("patient client got an empty answer")
	}
}
