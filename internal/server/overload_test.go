package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ---- admission controller unit tests ----

// TestAdmissionIdleAlwaysAdmits: with no backlog there is nothing to
// wait behind, so even a class whose estimate dwarfs the SLO is
// admitted — a huge oracle EWMA must never starve oracle queries on
// an idle server.
func TestAdmissionIdleAlwaysAdmits(t *testing.T) {
	a := newAdmission(time.Millisecond, PolicyExpensiveFirst, 1)
	a.ewmaNs[classOracle] = float64(10 * time.Second)
	tkt, ok, _, _ := a.admit(classOracle)
	if !ok {
		t.Fatal("idle server shed an oracle query — wait projection must require backlog")
	}
	a.done(tkt, classOracle, int64(time.Millisecond))
}

// TestAdmissionExpensiveFirstShedsExpensiveClassFirst: under the
// default policy the projection includes the arriving class's own
// cost, so at the same backlog the expensive class is refused while
// the cheap one still fits the SLO; under the fair policy both see
// only the queue wait and both are admitted.
func TestAdmissionExpensiveFirstShedsExpensiveClassFirst(t *testing.T) {
	a := newAdmission(time.Millisecond, PolicyExpensiveFirst, 1)
	a.ewmaNs[classOracle] = float64(2 * time.Millisecond)
	// One inflight fast query: backlog 250µs, projected wait 250µs.
	tkt, ok, _, _ := a.admit(classFast)
	if !ok {
		t.Fatal("first fast query shed on an idle controller")
	}
	if _, ok, retryAfter, _ := a.admit(classOracle); ok {
		t.Fatal("oracle admitted: 250µs wait + 2ms own cost must blow a 1ms SLO")
	} else if retryAfter < time.Second {
		t.Fatalf("Retry-After %v, want >= 1s (HTTP whole-second floor)", retryAfter)
	}
	tkt2, ok, _, _ := a.admit(classFast)
	if !ok {
		t.Fatal("fast query shed: 250µs wait + 250µs own cost fits a 1ms SLO")
	}
	a.done(tkt, classFast, int64(200*time.Microsecond))
	a.done(tkt2, classFast, int64(200*time.Microsecond))

	// Fair policy: class-blind — the same oracle request is admitted
	// because the queue wait alone is under the SLO.
	f := newAdmission(time.Millisecond, PolicyFair, 1)
	f.ewmaNs[classOracle] = float64(2 * time.Millisecond)
	tkt, ok, _, _ = f.admit(classFast)
	if !ok {
		t.Fatal("fair: first fast query shed")
	}
	if _, ok, _, _ := f.admit(classOracle); !ok {
		t.Fatal("fair policy shed the oracle: it must project queue wait alone")
	}
	_ = tkt
}

// TestAdmissionSettlement: a settled ticket releases its backlog
// charge, decrements occupancy, and feeds the EWMA of the class that
// ACTUALLY answered.
func TestAdmissionSettlement(t *testing.T) {
	a := newAdmission(time.Millisecond, PolicyExpensiveFirst, 2)
	tkt, ok, _, _ := a.admit(classFast)
	if !ok {
		t.Fatal("shed on idle")
	}
	// Predicted fast, answered by the materialized-aggregate store.
	a.done(tkt, classMatAgg, int64(40*time.Microsecond))
	st := a.stats()
	if st.ProjectedWaitMs != 0 {
		t.Fatalf("backlog not released: projected wait %vms", st.ProjectedWaitMs)
	}
	if got := st.Classes["matagg"].Served; got != 1 {
		t.Fatalf("matagg served = %d, want 1 (attribution by actual class)", got)
	}
	if got := st.Classes["fast"].Inflight; got != 0 {
		t.Fatalf("fast inflight = %d, want 0", got)
	}
}

// TestAdmissionIdleAfterDrainAdmits: interleaved admits and settles
// with awkward float charges must leave the drained backlog at
// exactly zero — rounding dust left behind would make the controller
// believe a queue exists forever, and a class whose pessimistic
// charge exceeds the SLO would then be locked out even on an idle
// server.
func TestAdmissionIdleAfterDrainAdmits(t *testing.T) {
	a := newAdmission(time.Millisecond, PolicyExpensiveFirst, 1)
	a.mu.Lock()
	a.ewmaNs[classFast] = float64(100*time.Microsecond) / 3 // repeating binary fraction
	a.ewmaVar[classFast] = 2e7                              // sqrt is irrational: more dust
	a.mu.Unlock()
	var open []ticket
	for i := 0; i < 500; i++ {
		if tk, ok, _, _ := a.admit(classFast); ok {
			open = append(open, tk)
		}
		// Vary the charge so out-of-order settles sum differently than
		// they were added.
		a.mu.Lock()
		a.ewmaVar[classFast] += 13.7
		a.mu.Unlock()
		if len(open) > 3 {
			a.done(open[0], classFast, -1)
			open = open[1:]
		}
	}
	for _, tk := range open {
		a.done(tk, classFast, -1)
	}
	a.mu.Lock()
	backlog := a.backlogNs
	// The lockout symptom needs a charge above the SLO; give oracle one.
	a.ewmaNs[classOracle] = float64(10 * time.Millisecond)
	a.mu.Unlock()
	if backlog != 0 {
		t.Fatalf("drained backlog = %v ns, want exactly 0", backlog)
	}
	if _, ok, _, _ := a.admit(classOracle); !ok {
		t.Fatal("idle server refused an expensive request: backlog dust lockout")
	}
}

// TestValidateShedPolicy: typos fail fast, valid names (and the empty
// default) pass.
func TestValidateShedPolicy(t *testing.T) {
	for _, p := range []string{"", PolicyExpensiveFirst, PolicyFair, PolicyOff} {
		if err := ValidateShedPolicy(p); err != nil {
			t.Fatalf("ValidateShedPolicy(%q) = %v", p, err)
		}
	}
	if err := ValidateShedPolicy("cheapest-first"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// ---- HTTP-level shed and deadline behaviour ----

const revenueOLAPBodyAlt = `{"fact":"fact_table_revenue","group_by":["n_name","o_orderpriority"],` +
	`"measures":[{"out":"total","func":"SUM","col":"revenue"}]}`

func olapStatsOf(t *testing.T, url string) olapStatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/api/olap/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st olapStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestOLAPShedsUnderBacklogAndAlwaysServesCacheHits: with a
// vanishingly small SLO, any backlog sheds new work with 429 +
// Retry-After — but result-cache hits are answered before admission
// and must keep flowing while the server sheds.
func TestOLAPShedsUnderBacklogAndAlwaysServesCacheHits(t *testing.T) {
	p := deployedTestPlatform(t, 1)
	ts := httptest.NewServer(NewWithOptions(p, Options{
		OLAPConcurrency: 1,
		SLOTarget:       time.Nanosecond, // any projected wait sheds
	}).Handler())
	t.Cleanup(ts.Close)

	// Prime the cache while the server is idle (idle always admits).
	if resp, _ := postOLAP(t, http.DefaultClient, ts.URL, revenueOLAPBody); resp.Header.Get("X-Quarry-Cache") != "miss" {
		t.Fatal("priming request unexpectedly a cache hit")
	}

	// Park one admitted query in the executor so the backlog is nonzero.
	entered := make(chan struct{})
	release := make(chan struct{})
	var fired int32
	testingOLAPBeforeQuery = func() {
		if atomic.CompareAndSwapInt32(&fired, 0, 1) {
			close(entered)
			<-release
		}
	}
	t.Cleanup(func() { testingOLAPBeforeQuery = nil })
	go func() {
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Post(ts.URL+"/api/olap", "application/json", strings.NewReader(revenueOLAPBodyAlt))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	defer close(release)

	// A fresh (uncached) query must now be shed.
	resp, err := http.Post(ts.URL+"/api/olap", "application/json",
		strings.NewReader(`{"fact":"fact_table_revenue","group_by":["c_mktsegment"],"measures":[{"out":"n","func":"COUNT"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var shedBody struct {
		Shed       bool   `json:"shed"`
		Class      string `json:"class"`
		RetryAfter int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shedBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backlogged query = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if !shedBody.Shed || shedBody.Class == "" || shedBody.RetryAfter < 1000 {
		t.Fatalf("shed body incomplete: %+v", shedBody)
	}

	// The cached query still answers while the server sheds.
	resp2, _ := postOLAP(t, http.DefaultClient, ts.URL, revenueOLAPBody)
	if got := resp2.Header.Get("X-Quarry-Cache"); got != "hit" {
		t.Fatalf("cache hit during shedding = %q, want hit: hits are always admitted", got)
	}

	st := olapStatsOf(t, ts.URL)
	if st.Shed != 1 {
		t.Fatalf("stats shed = %d, want 1", st.Shed)
	}
	if st.Admission.SLOTargetMs <= 0 || st.Admission.Policy != PolicyExpensiveFirst {
		t.Fatalf("admission config not exposed: %+v", st.Admission)
	}
}

// TestOLAPDeadlineMidQuery504: a server-side deadline that expires
// while the query is executing cancels it at the next batch boundary;
// the client gets a 504 with partial-progress stats, the pool slot is
// released, and the expired query never publishes to the result cache.
func TestOLAPDeadlineMidQuery504(t *testing.T) {
	p := deployedTestPlatform(t, 1)
	ts := httptest.NewServer(NewWithOptions(p, Options{OLAPConcurrency: 1}).Handler())
	t.Cleanup(ts.Close)

	var fired int32
	testingOLAPBeforeQuery = func() {
		if atomic.CompareAndSwapInt32(&fired, 0, 1) {
			time.Sleep(80 * time.Millisecond) // outlive the 25ms budget
		}
	}
	t.Cleanup(func() { testingOLAPBeforeQuery = nil })

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/olap", strings.NewReader(revenueOLAPBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Quarry-Deadline", "25ms")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dl deadlineResponse
	if err := json.NewDecoder(resp.Body).Decode(&dl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired mid-query = %d, want 504", resp.StatusCode)
	}
	if !dl.DeadlineExceeded || !dl.Executed || dl.BudgetMs != 25 || dl.ElapsedMs < 25 {
		t.Fatalf("partial-progress stats wrong: %+v", dl)
	}

	// Slot released and nothing published: the repeat is a MISS that
	// completes promptly on the single-slot pool.
	resp2, _ := postOLAP(t, &http.Client{Timeout: 30 * time.Second}, ts.URL, revenueOLAPBody)
	if got := resp2.Header.Get("X-Quarry-Cache"); got != "miss" {
		t.Fatalf("repeat after expiry = %q, want miss: expired queries must not publish", got)
	}

	st := olapStatsOf(t, ts.URL)
	if st.DeadlineExceeded != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", st.DeadlineExceeded)
	}
	if st.QueryErrors < st.DeadlineExceeded {
		t.Fatalf("deadline expiries must be a subset of query_errors: %d > %d", st.DeadlineExceeded, st.QueryErrors)
	}
}

// TestOLAPDeadlineWhileQueued504: a deadline that expires while the
// query is still waiting for an executor slot abandons the wait — the
// 504 reports the query never executed and the whole budget went to
// queueing.
func TestOLAPDeadlineWhileQueued504(t *testing.T) {
	p := deployedTestPlatform(t, 1)
	ts := httptest.NewServer(NewWithOptions(p, Options{OLAPConcurrency: 1}).Handler())
	t.Cleanup(ts.Close)

	entered := make(chan struct{})
	release := make(chan struct{})
	var fired int32
	testingOLAPBeforeQuery = func() {
		if atomic.CompareAndSwapInt32(&fired, 0, 1) {
			close(entered)
			<-release
		}
	}
	t.Cleanup(func() { testingOLAPBeforeQuery = nil })
	go func() {
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Post(ts.URL+"/api/olap", "application/json", strings.NewReader(revenueOLAPBody))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	defer close(release)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/olap", strings.NewReader(revenueOLAPBodyAlt))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Quarry-Deadline", "30") // integer = milliseconds
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dl deadlineResponse
	if err := json.NewDecoder(resp.Body).Decode(&dl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired in queue = %d, want 504", resp.StatusCode)
	}
	if !dl.DeadlineExceeded || dl.Executed {
		t.Fatalf("queued expiry must report executed=false: %+v", dl)
	}
	if dl.QueueWaitMs < 25 {
		t.Fatalf("queue wait %vms, want ~the whole 30ms budget", dl.QueueWaitMs)
	}
}

// TestOverloadAccountingIdentity floods a tiny pool with concurrent
// traffic — normal queries, shed-prone queries, malformed bodies, and
// hopeless deadlines — and checks the books afterwards: every request
// landed in exactly one of answered / shed / query_errors, with
// deadline expiries a subset of the errors. Run under -race this also
// shakes the admission controller's locking.
func TestOverloadAccountingIdentity(t *testing.T) {
	p := deployedTestPlatform(t, 1)
	ts := httptest.NewServer(NewWithOptions(p, Options{
		OLAPConcurrency: 2,
		SLOTarget:       500 * time.Microsecond,
	}).Handler())
	t.Cleanup(ts.Close)

	client := &http.Client{Timeout: 30 * time.Second}
	bodies := []string{
		revenueOLAPBody,
		revenueOLAPBodyAlt,
		`{"fact":"fact_table_revenue","group_by":["c_mktsegment"],"measures":[{"out":"n","func":"COUNT"}]}`,
		`{not json`,
	}
	var wg sync.WaitGroup
	for i := 0; i < 80; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/olap", strings.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if i%7 == 0 {
				req.Header.Set("X-Quarry-Deadline", "1ms") // likely hopeless under load
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}(i)
	}
	wg.Wait()

	st := olapStatsOf(t, ts.URL)
	if st.Queries != 80 {
		t.Fatalf("queries = %d, want 80", st.Queries)
	}
	if st.Queries != st.Answered+st.Shed+st.QueryErrors {
		t.Fatalf("identity broken: queries=%d != answered=%d + shed=%d + query_errors=%d",
			st.Queries, st.Answered, st.Shed, st.QueryErrors)
	}
	if st.DeadlineExceeded > st.QueryErrors {
		t.Fatalf("deadline_exceeded=%d exceeds query_errors=%d", st.DeadlineExceeded, st.QueryErrors)
	}
	// The malformed bodies guarantee errors; the drained pool
	// guarantees zero inflight occupancy afterwards.
	if st.QueryErrors < 20 {
		t.Fatalf("query_errors = %d, want >= 20 (the malformed bodies)", st.QueryErrors)
	}
	for name, cs := range st.Admission.Classes {
		if cs.Inflight != 0 {
			t.Fatalf("class %s inflight = %d after drain, want 0", name, cs.Inflight)
		}
	}
}
