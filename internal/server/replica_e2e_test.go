package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"quarry/internal/core"
	"quarry/internal/expr"
	"quarry/internal/replication"
	"quarry/internal/router"
	"quarry/internal/storage"
	"quarry/internal/tpch"
	"quarry/internal/xrq"
)

// The replica end-to-end suite: a disk-backed primary serves the
// replication feed, replicas ship its committed segments (over HTTP
// and over a shared directory), replay its requirement designs, and
// must answer every cube query byte-identically to the primary — on
// the fast path and the star-flow oracle, before and after a
// republish that lands while the replica is live.

// replicaGoldenQueries are the golden TPC-H cube queries of
// golden_test.go as /api/olap bodies: every roll-up level of the
// Supplier hierarchy plus a diamond dice.
var replicaGoldenQueries = []string{
	`{"fact":"fact_table_revenue","group_by":["s_name"],"measures":[{"out":"total","func":"SUM","col":"revenue"},{"out":"n","func":"COUNT"}]}`,
	`{"fact":"fact_table_revenue","roll_up":{"Supplier":"Nation"},"measures":[{"out":"total","func":"SUM","col":"revenue"},{"out":"n","func":"COUNT"}]}`,
	`{"fact":"fact_table_revenue","roll_up":{"Supplier":"Region"},"measures":[{"out":"total","func":"SUM","col":"revenue"},{"out":"n","func":"COUNT"}]}`,
	`{"fact":"fact_table_revenue","group_by":["p_brand"],"measures":[{"out":"total","func":"SUM","col":"revenue"}],"dice":{"func":"COUNT","thresholds":{"p_brand":4}}}`,
}

// oracleVariant turns an /api/olap body into its star-flow form.
func oracleVariant(q string) string {
	return q[:len(q)-1] + `,"oracle":true}`
}

// testPrimary is a disk-backed primary platform with IR_revenue
// deployed and run once.
type testPrimary struct {
	p   *core.Platform
	db  *storage.DB
	ts  *httptest.Server
	dir string
}

func newTestPrimary(t *testing.T, sf float64) *testPrimary {
	t.Helper()
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(sf)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	db, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpch.Generate(db, sf, 42); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: db, MatAggTopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRequirement(tpch.RevenueRequirement()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithOptions(p, Options{}).Handler())
	t.Cleanup(ts.Close)
	return &testPrimary{p: p, db: db, ts: ts, dir: dir}
}

// testReplica is a read replica of a testPrimary: segments shipped
// into its own directory, designs replayed over HTTP, serving stack
// (snapshots, matagg, result cache) entirely its own.
type testReplica struct {
	p      *core.Platform
	db     *storage.DB
	syncer *replication.Syncer
	srv    *Server
	ts     *httptest.Server
}

// newTestReplica builds a replica of primary. With sharedDir == ""
// the data transport is the primary's HTTP replication endpoints;
// otherwise segments are read straight out of sharedDir (the
// primary's data directory over a shared filesystem).
func newTestReplica(t *testing.T, primary *testPrimary, sharedDir string, sf float64) *testReplica {
	t.Helper()
	db, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var src replication.Source
	if sharedDir != "" {
		src = &replication.DirSource{Dir: sharedDir}
	} else {
		src = &replication.HTTPSource{Base: primary.ts.URL}
	}
	sy, err := replication.NewSyncer(db, src, primary.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sy.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(sf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: db, MatAggTopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := replication.FetchRequirements(context.Background(), primary.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range reqs {
		req, err := xrq.Unmarshal(rr.XML)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.AddRequirement(req); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewWithOptions(p, Options{ReadOnly: true, ReplicaStatus: sy.Status})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testReplica{p: p, db: db, syncer: sy, srv: srv, ts: ts}
}

// sync runs one replication pass and invalidates the serving caches
// when it adopted a new catalog — what quarryd's tail loop does.
func (r *testReplica) sync(t *testing.T) replication.Report {
	t.Helper()
	rep, err := r.syncer.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed {
		r.srv.WarehouseChanged()
	}
	return rep
}

type replicaHealth struct {
	Role    string `json:"role"`
	Replica *struct {
		Converged      bool   `json:"converged"`
		VersionsBehind uint64 `json:"versions_behind"`
		LocalVersion   uint64 `json:"local_version"`
		LastError      string `json:"last_error"`
	} `json:"replica"`
}

func getHealth(t *testing.T, url string) replicaHealth {
	t.Helper()
	resp, err := http.Get(url + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h replicaHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health = %d", resp.StatusCode)
	}
	return h
}

// assertIdenticalAnswers runs every golden query — fast path and
// oracle — against the primary and each replica and requires
// byte-identical bodies.
func assertIdenticalAnswers(t *testing.T, primary *testPrimary, replicas ...*testReplica) {
	t.Helper()
	for _, q := range replicaGoldenQueries {
		for _, body := range []string{q, oracleVariant(q)} {
			resp, want := postJSON(t, primary.ts.URL+"/api/olap", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("primary %s = %d: %s", body, resp.StatusCode, want)
			}
			for i, r := range replicas {
				resp, got := postJSON(t, r.ts.URL+"/api/olap", body)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("replica %d %s = %d: %s", i, body, resp.StatusCode, got)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("replica %d diverges on %s:\nprimary: %s\nreplica: %s", i, body, want, got)
				}
			}
		}
	}
}

// TestReplicaEndToEnd: cold replicas (one per transport) converge,
// serve byte-identical answers over their own stacks, reject writes,
// report their lag — and follow a republish that lands while they are
// live, including the stale window in between.
func TestReplicaEndToEnd(t *testing.T) {
	primary := newTestPrimary(t, 5)
	httpReplica := newTestReplica(t, primary, "", 5)
	dirReplica := newTestReplica(t, primary, primary.dir, 5)

	// Cold replicas converged: byte-identical on every golden query,
	// fast path and oracle, over both transports.
	assertIdenticalAnswers(t, primary, httpReplica, dirReplica)

	// Roles and lag on the health surface.
	if h := getHealth(t, primary.ts.URL); h.Role != "primary" || h.Replica != nil {
		t.Fatalf("primary health = %+v", h)
	}
	for _, r := range []*testReplica{httpReplica, dirReplica} {
		h := getHealth(t, r.ts.URL)
		if h.Role != "replica" || h.Replica == nil {
			t.Fatalf("replica health = %+v", h)
		}
		if !h.Replica.Converged || h.Replica.VersionsBehind != 0 {
			t.Fatalf("replica not converged: %+v", h.Replica)
		}
	}

	// Replicas reject every write.
	revenueXML, err := xrq.Marshal(tpch.RevenueRequirement())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []struct{ method, path, body string }{
		{http.MethodPost, "/api/requirements", revenueXML},
		{http.MethodPut, "/api/requirements/IR_revenue", revenueXML},
		{http.MethodDelete, "/api/requirements/IR_revenue", ""},
		{http.MethodPost, "/api/deploy", ""},
		{http.MethodPost, "/api/run", ""},
	} {
		req, err := http.NewRequest(w.method, httpReplica.ts.URL+w.path, strings.NewReader(w.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s on replica = %d, want 403", w.method, w.path, resp.StatusCode)
		}
	}

	// Republish while the replicas are live: one more lineitem for the
	// SPAIN supplier with a price big enough that SUM(revenue) must
	// visibly change (supplier 0 is always SPAIN; part 0 / order 0 /
	// partsupp(0,0) exist at every scale factor).
	q := replicaGoldenQueries[1] // revenue by nation
	_, before := postJSON(t, primary.ts.URL+"/api/olap", q)
	li, ok := primary.db.Table("lineitem")
	if !ok {
		t.Fatal("lineitem source missing")
	}
	if err := li.Insert(storage.Row{
		expr.Int(0), expr.Int(0), expr.Int(0), expr.Int(99),
		expr.Float(1), expr.Float(5e6), expr.Float(0), expr.Float(0),
		expr.Str("N"), expr.Str("1995-06-17"),
	}); err != nil {
		t.Fatal(err)
	}
	if resp, body := postJSON(t, primary.ts.URL+"/api/run", `{}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("republish = %d: %s", resp.StatusCode, body)
	}
	resp, after := postJSON(t, primary.ts.URL+"/api/olap", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-republish primary query = %d", resp.StatusCode)
	}
	if bytes.Equal(before, after) {
		t.Fatal("republish did not change the primary's answer")
	}

	// Until the next sync pass the replica keeps serving its last
	// committed version — stale, but consistently so.
	if resp, got := postJSON(t, httpReplica.ts.URL+"/api/olap", q); resp.StatusCode != http.StatusOK || !bytes.Equal(got, before) {
		t.Fatalf("pre-sync replica answer changed or failed (%d):\n%s\nwant pre-republish:\n%s", resp.StatusCode, got, before)
	}

	// One tail tick on each replica: fetch the delta, adopt the new
	// catalog, converge again — byte-identical on everything.
	for _, r := range []*testReplica{httpReplica, dirReplica} {
		rep := r.sync(t)
		if !rep.Changed || rep.Segments == 0 {
			t.Fatalf("post-republish sync report = %+v, want fetched segments", rep)
		}
		h := getHealth(t, r.ts.URL)
		if !h.Replica.Converged || h.Replica.VersionsBehind != 0 {
			t.Fatalf("replica not reconverged: %+v", h.Replica)
		}
	}
	assertIdenticalAnswers(t, primary, httpReplica, dirReplica)
}

// TestReplicationEndpoints: the primary's feed — manifest and
// segments — plus its refusal paths (no disk backing, unknown or
// malicious segment names).
func TestReplicationEndpoints(t *testing.T) {
	primary := newTestPrimary(t, 1)
	resp, body := get(t, primary.ts, "/api/replication/manifest", http.StatusOK), []byte(nil)
	_ = body
	var man struct {
		Version  uint64 `json:"version"`
		Segments int    `json:"-"`
	}
	if err := json.Unmarshal(resp, &man); err != nil {
		t.Fatalf("manifest not JSON: %v", err)
	}
	if man.Version == 0 {
		t.Fatalf("manifest version = 0: %s", resp)
	}
	get(t, primary.ts, "/api/replication/segment/seg-99999999.qseg", http.StatusNotFound)
	get(t, primary.ts, "/api/replication/segment/..%2Fmanifest.json", http.StatusBadRequest)
	get(t, primary.ts, "/api/replication/segment/not-a-segment", http.StatusBadRequest)

	// An in-memory primary has no feed. NewMemDB, not NewDB: this
	// must stay memory-backed even when QUARRY_STORAGE=disk redirects
	// NewDB to a disk store.
	o, err := tpch.Ontology()
	if err != nil {
		t.Fatal(err)
	}
	m, err := tpch.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	c, err := tpch.Catalog(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Ontology: o, Mapping: m, Catalog: c, DB: storage.NewMemDB()})
	if err != nil {
		t.Fatal(err)
	}
	mem := httptest.NewServer(New(p).Handler())
	t.Cleanup(mem.Close)
	get(t, mem, "/api/replication/manifest", http.StatusNotFound)
}

// TestRouterFailoverEndToEnd: a scatter router over two live replicas
// answers byte-identically to the primary, keeps answering when one
// replica is killed mid-fleet, rejects writes, and reports the dead
// backend on its health surface. With the whole fleet down it answers
// 502.
func TestRouterFailoverEndToEnd(t *testing.T) {
	primary := newTestPrimary(t, 3)
	r1 := newTestReplica(t, primary, "", 3)
	r2 := newTestReplica(t, primary, primary.dir, 3)

	rt, err := router.New([]string{r1.ts.URL, r2.ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	q := replicaGoldenQueries[1]
	_, want := postJSON(t, primary.ts.URL+"/api/olap", q)
	// Several rounds so round-robin exercises both backends.
	for i := 0; i < 4; i++ {
		resp, got := postJSON(t, rts.URL+"/api/olap", q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed query %d = %d: %s", i, resp.StatusCode, got)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("routed answer %d diverges:\n%s\nwant:\n%s", i, got, want)
		}
	}

	// Kill one replica: every request must still succeed (the router
	// demotes the dead backend and retries on the live one).
	r1.ts.Close()
	for i := 0; i < 4; i++ {
		resp, got := postJSON(t, rts.URL+"/api/olap", q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed query %d with a dead replica = %d: %s", i, resp.StatusCode, got)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("failover answer %d diverges:\n%s\nwant:\n%s", i, got, want)
		}
	}

	// The health surface reports the dead backend.
	rt.Probe(context.Background())
	resp, err := http.Get(rts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Replicas []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || len(health.Replicas) != 2 {
		t.Fatalf("router health = %+v", health)
	}
	alive := 0
	for _, r := range health.Replicas {
		if r.Healthy {
			alive++
		}
	}
	if alive != 1 {
		t.Fatalf("router health reports %d healthy backends, want 1: %+v", alive, health)
	}

	// Writes don't scatter.
	if resp, _ := postJSON(t, rts.URL+"/api/run", `{}`); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("POST /api/run via router = %d, want 403", resp.StatusCode)
	}

	// Whole fleet down: 502, not a hang.
	r2.ts.Close()
	if resp, _ := postJSON(t, rts.URL+"/api/olap", q); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("routed query with no replicas = %d, want 502", resp.StatusCode)
	}
}
